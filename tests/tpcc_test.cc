// TPC-C tests: loading, new_order correctness, consistency across layouts,
// recovery of the TPC-C database after a crash.
#include <gtest/gtest.h>

#include "src/tpcc/tpcc.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

RewindConfig TpccConfig() {
  RewindConfig c;
  c.nvm = TestNvmConfig(192);
  c.nvm.mode = NvmMode::kFast;  // functional tests; crash test overrides
  c.log_impl = LogImpl::kBatch;
  c.policy = Policy::kNoForce;
  c.bucket_capacity = 1000;
  return c;
}

class TpccTest : public ::testing::TestWithParam<TpccLayout> {};

TEST_P(TpccTest, NewOrdersKeepDatabaseConsistent) {
  RewindConfig cfg = TpccConfig();
  std::size_t parts = GetParam() == TpccLayout::kRewindDistLog ? 4 : 1;
  Runtime rt(cfg, parts);
  TpccDb db(&rt, GetParam());
  db.Load();
  std::uint64_t rng = 42;
  int committed = 0;
  for (int i = 0; i < 300; ++i) {
    committed += db.NewOrder(i % TpccScale::kTerminals, &rng) ? 1 : 0;
  }
  EXPECT_GT(committed, 250);
  EXPECT_LT(committed, 301);
  EXPECT_TRUE(db.CheckConsistency());
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, TpccTest,
    ::testing::Values(TpccLayout::kNvmPlain, TpccLayout::kRewindNaive,
                      TpccLayout::kRewindOptimized,
                      TpccLayout::kRewindDistLog),
    [](const auto& info) {
      switch (info.param) {
        case TpccLayout::kNvmPlain:
          return "NvmPlain";
        case TpccLayout::kRewindNaive:
          return "RewindNaive";
        case TpccLayout::kRewindOptimized:
          return "RewindOptimized";
        case TpccLayout::kRewindDistLog:
          return "RewindDistLog";
      }
      return "?";
    });

TEST(TpccRecovery, CrashMidWorkloadRecoversConsistentState) {
  RewindConfig cfg = TpccConfig();
  cfg.nvm.mode = NvmMode::kCrashSim;
  cfg.nvm.heap_bytes = std::size_t{192} << 20;
  Runtime rt(cfg);
  TpccDb db(&rt, TpccLayout::kRewindOptimized);
  db.Load();
  std::uint64_t rng = 7;
  bool crashed = RunWithCrashAt(
      &rt.nvm(), 40000,
      [&] {
        for (int i = 0; i < 2000; ++i) db.NewOrder(0, &rng);
      },
      /*evict_probability=*/0.2, /*seed=*/3);
  ASSERT_TRUE(crashed);
  rt.CrashAndRecover();
  EXPECT_TRUE(db.CheckConsistency());
}

TEST(TpccThroughput, MultiTerminalRunCompletes) {
  RewindConfig cfg = TpccConfig();
  Runtime rt(cfg);
  double tpm = RunTpcc(&rt, TpccLayout::kRewindOptimized,
                       /*txns_per_terminal=*/100);
  EXPECT_GT(tpm, 0.0);
}

}  // namespace
}  // namespace rwd
