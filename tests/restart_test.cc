// Durability across REAL process restarts (file-backed NVM device).
//
// Unlike the CrashAndRecover() sweeps elsewhere in the suite, these tests
// exercise the full restart path: a CHILD process opens a file-backed store,
// commits writes (including a cross-shard MultiPut), and dies via _exit or
// SIGKILL — destructors never run, exactly like a real crash. The PARENT
// then reopens the same heap file with KvStore::Open (re-mapping the arena
// at its recorded base address and running coordinator-ordered recovery)
// and verifies that every acked write survived and that the multi-shard
// batch is all-or-nothing. No in-process CrashAndRecover() involved.
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/kv/kv_store.h"

namespace rwd {
namespace {

// Child exit codes.
constexpr int kChildCompleted = 0;
constexpr int kChildCrashed = 42;

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "restart_" + name + "_" +
         std::to_string(::getpid()) + ".heap";
}

std::string Val(std::uint64_t key) {
  return "value-" + std::to_string(key) + "-" + std::string(24, 'x');
}

KvConfig SmallConfig(const std::string& heap_file, NvmMode mode,
                     std::size_t shards = 3) {
  KvConfig cfg;
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.layers = Layers::kOne;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 64;
  cfg.rewind.nvm.mode = mode;
  cfg.rewind.nvm.heap_bytes = std::size_t{16} << 20;
  cfg.rewind.nvm.write_latency_ns = 0;
  cfg.rewind.nvm.fence_latency_ns = 0;
  cfg.rewind.nvm.heap_file = heap_file;
  cfg.shards = shards;
  cfg.checkpoint_period_ms = 0;
  return cfg;
}

/// Appends one ack line to the side file with a raw write() so it survives
/// _exit exactly when the preceding store operation had returned.
void Ack(int fd, const std::string& line) {
  std::string s = line + "\n";
  ASSERT_EQ(::write(fd, s.data(), s.size()),
            static_cast<ssize_t>(s.size()));
}

std::vector<std::string> ReadAcks(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

const std::vector<std::uint64_t> kMputKeys = {1001, 1002, 1003, 1004, 1005};

/// The deterministic child op sequence: a few puts, a cross-shard MultiPut,
/// a delete, more puts. The parent replays the same list against the ack
/// log to compute the expected post-restart state.
struct OpSpec {
  char kind;  // 'P' = put, 'M' = the MultiPut, 'D' = delete
  std::uint64_t key;
};

std::vector<OpSpec> ChildOps() {
  std::vector<OpSpec> ops;
  for (std::uint64_t k = 1; k <= 6; ++k) ops.push_back({'P', k});
  ops.push_back({'M', 0});
  ops.push_back({'D', 3});
  for (std::uint64_t k = 20; k <= 24; ++k) ops.push_back({'P', k});
  return ops;
}

/// Runs the op sequence, acking each completed op to `ack_fd`. Throws
/// CrashException when the armed injector fires.
void ChildWorkload(KvStore* store, int ack_fd) {
  for (const OpSpec& op : ChildOps()) {
    switch (op.kind) {
      case 'P':
        ASSERT_TRUE(store->Put(op.key, Val(op.key)));
        break;
      case 'M': {
        std::vector<std::pair<std::uint64_t, std::string>> kvs;
        for (std::uint64_t k : kMputKeys) kvs.emplace_back(k, Val(k));
        ASSERT_TRUE(store->MultiPut(kvs));
        break;
      }
      case 'D':
        ASSERT_TRUE(store->Delete(op.key));
        break;
    }
    Ack(ack_fd, std::string(1, op.kind) + " " + std::to_string(op.key));
  }
}

/// Runs the workload in a forked child with the crash injector armed at
/// persistence event `crash_at` (0 = never). Returns the child's exit code.
int RunChild(const std::string& heap, const std::string& acks,
             std::uint64_t crash_at) {
  ::unlink(heap.c_str());
  ::unlink(acks.c_str());
  pid_t pid = ::fork();
  if (pid == 0) {
    int ack_fd = ::open(acks.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (ack_fd < 0) ::_exit(99);
    {
      KvStore store(SmallConfig(heap, NvmMode::kFast));
      if (crash_at != 0) {
        store.runtime().nvm().crash_injector().Arm(crash_at);
      }
      try {
        ChildWorkload(&store, ack_fd);
      } catch (const CrashException&) {
        // The "machine" lost power at persistence event `crash_at`: die
        // without running a single destructor, leaving the heap file
        // exactly as the crash left it.
        ::_exit(kChildCrashed);
      }
      store.runtime().nvm().crash_injector().Disarm();
      // Scope end: clean shutdown (destructor marks the boot sector clean).
    }
    // _exit skips stdio flushing; push any buffered gtest failure output to
    // the parent's capture first so child-side failures are diagnosable.
    std::fflush(stdout);
    std::fflush(stderr);
    ::_exit(::testing::Test::HasFailure() ? 98 : kChildCompleted);
  }
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << "child did not _exit cleanly";
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Reopens the heap and verifies the surviving state against the ack log.
///
/// With n acks, ops[0..n-1] committed and were acked (they MUST survive
/// exactly); op[n] — the one in flight at the crash — may have committed
/// (crash between its durability point and its ack) or not, so both
/// outcomes are legal, but the MultiPut must still be all-or-nothing; ops
/// beyond n never started (the child is sequential) and MUST NOT surface.
void VerifyAfterRestart(const std::string& heap, const std::string& acks,
                        std::uint64_t crash_at) {
  std::unique_ptr<KvStore> store;
  ASSERT_NO_THROW(store = KvStore::Open(
                      heap, SmallConfig(heap, NvmMode::kFast)))
      << "crash_at=" << crash_at;

  const std::vector<OpSpec> ops = ChildOps();
  std::size_t n = ReadAcks(acks).size();
  ASSERT_LE(n, ops.size());

  // Definite state after the acked prefix ops[0..n-1].
  std::map<std::uint64_t, std::string> expect;
  auto apply = [&expect](const OpSpec& op) {
    if (op.kind == 'P') {
      expect[op.key] = Val(op.key);
    } else if (op.kind == 'M') {
      for (std::uint64_t k : kMputKeys) expect[k] = Val(k);
    } else {
      expect.erase(op.key);
    }
  };
  for (std::size_t i = 0; i < n; ++i) apply(ops[i]);

  // Keys the ambiguous in-flight op may have changed.
  std::set<std::uint64_t> ambiguous;
  if (n < ops.size()) {
    if (ops[n].kind == 'M') {
      ambiguous.insert(kMputKeys.begin(), kMputKeys.end());
    } else {
      ambiguous.insert(ops[n].key);
    }
  }

  for (const auto& [key, value] : expect) {
    if (ambiguous.count(key) != 0) continue;
    std::string got;
    EXPECT_TRUE(store->Get(key, &got))
        << "acked key " << key << " lost (crash_at=" << crash_at << ")";
    EXPECT_EQ(got, value) << "crash_at=" << crash_at;
  }
  if (n < ops.size()) {
    const OpSpec& inflight = ops[n];
    if (inflight.kind == 'P') {
      std::string got;
      if (store->Get(inflight.key, &got)) {
        EXPECT_EQ(got, Val(inflight.key))
            << "in-flight put surfaced torn (crash_at=" << crash_at << ")";
      }
    } else if (inflight.kind == 'D') {
      std::string got;
      if (store->Get(inflight.key, &got)) {
        EXPECT_EQ(got, expect[inflight.key])
            << "in-flight delete surfaced torn (crash_at=" << crash_at
            << ")";
      }
    } else {  // 'M': all-or-nothing across shards, with intact values
      std::size_t present = 0;
      for (std::uint64_t k : kMputKeys) {
        std::string got;
        if (store->Get(k, &got)) {
          ++present;
          EXPECT_EQ(got, Val(k)) << "crash_at=" << crash_at;
        }
      }
      EXPECT_TRUE(present == 0 || present == kMputKeys.size())
          << "MultiPut surfaced " << present << " of " << kMputKeys.size()
          << " keys (crash_at=" << crash_at << ")";
    }
    // Ops past the in-flight one never started: they must not surface.
    for (std::size_t i = n + 1; i < ops.size(); ++i) {
      if (ops[i].kind == 'P' && ambiguous.count(ops[i].key) == 0) {
        EXPECT_FALSE(store->Get(ops[i].key, nullptr))
            << "unreached op surfaced key " << ops[i].key
            << " (crash_at=" << crash_at << ")";
      }
    }
  }
  // The reopened store is a working store: foreign frees (blocks from the
  // dead process) leak instead of aborting, and new writes commit.
  EXPECT_TRUE(store->Put(5000 + crash_at, "post-restart"));
  std::string value;
  EXPECT_TRUE(store->Get(5000 + crash_at, &value));
  EXPECT_EQ(value, "post-restart");
}

TEST(RestartTest, ChildCrashSweepEveryPersistenceEvent) {
  const std::string heap = TmpPath("sweep");
  const std::string acks = heap + ".acks";
  // Sweep the crash ordinal until the child completes the whole workload;
  // cap to catch runaways.
  constexpr std::uint64_t kMaxEvents = 20000;
  std::uint64_t crash_at = 1;
  for (; crash_at <= kMaxEvents; ++crash_at) {
    int code = RunChild(heap, acks, crash_at);
    ASSERT_TRUE(code == kChildCrashed || code == kChildCompleted)
        << "child failed internally (exit " << code
        << ", crash_at=" << crash_at << ")";
    VerifyAfterRestart(heap, acks, crash_at);
    if (HasFatalFailure()) break;
    if (code == kChildCompleted) break;
  }
  EXPECT_LE(crash_at, kMaxEvents) << "sweep never completed";
  ::unlink(heap.c_str());
  ::unlink((heap + ".acks").c_str());
}

TEST(RestartTest, SigkilledChildLosesNoAckedWrite) {
  const std::string heap = TmpPath("sigkill");
  ::unlink(heap.c_str());
  int pipefd[2];
  ASSERT_EQ(::pipe(pipefd), 0);
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    KvStore store(SmallConfig(heap, NvmMode::kFast, /*shards=*/4));
    // Stream writes forever; report each acked key over the pipe only
    // after Put returned (i.e. after the commit's durability point).
    for (std::uint64_t k = 1;; ++k) {
      if (!store.Put(k, Val(k))) ::_exit(99);
      if (::write(pipefd[1], &k, sizeof(k)) != sizeof(k)) ::_exit(0);
    }
  }
  ::close(pipefd[1]);
  std::uint64_t last_acked = 0, k = 0;
  while (last_acked < 300 &&
         ::read(pipefd[0], &k, sizeof(k)) == sizeof(k)) {
    last_acked = k;
  }
  ASSERT_GE(last_acked, 300u) << "child died early";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  // Drain acks that raced the kill; they too were post-return, so durable.
  while (::read(pipefd[0], &k, sizeof(k)) == sizeof(k)) last_acked = k;
  ::close(pipefd[0]);

  auto store = KvStore::Open(heap, SmallConfig(heap, NvmMode::kFast, 4));
  for (std::uint64_t key = 1; key <= last_acked; ++key) {
    std::string value;
    ASSERT_TRUE(store->Get(key, &value)) << "acked key " << key << " lost";
    ASSERT_EQ(value, Val(key));
  }
  ::unlink(heap.c_str());
}

TEST(RestartTest, CrashSimModeRedoesAckedWritesAfterUncleanExit) {
  // kCrashSim + file: the file holds the persistent image; cached (no-force)
  // user data dies with the process and restart recovery must REDO it from
  // the persisted log — the strictest restart path.
  const std::string heap = TmpPath("crashsim");
  ::unlink(heap.c_str());
  pid_t pid = ::fork();
  if (pid == 0) {
    KvStore store(SmallConfig(heap, NvmMode::kCrashSim));
    for (std::uint64_t key = 1; key <= 50; ++key) {
      if (!store.Put(key, Val(key))) ::_exit(99);
    }
    ::_exit(0);  // unclean: no destructor, boot sector still open
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  auto store = KvStore::Open(heap, SmallConfig(heap, NvmMode::kCrashSim));
  EXPECT_TRUE(store->runtime().recovered_at_boot());
  for (std::uint64_t key = 1; key <= 50; ++key) {
    std::string value;
    ASSERT_TRUE(store->Get(key, &value)) << "acked key " << key << " lost";
    ASSERT_EQ(value, Val(key));
  }
  ::unlink(heap.c_str());
}

TEST(RestartTest, CleanCloseThenReopenSameProcess) {
  const std::string heap = TmpPath("clean");
  ::unlink(heap.c_str());
  KvConfig cfg = SmallConfig(heap, NvmMode::kCrashSim);
  {
    KvStore store(cfg);
    for (std::uint64_t key = 1; key <= 100; ++key) {
      ASSERT_TRUE(store.Put(key, Val(key)));
    }
    ASSERT_TRUE(store.Put(7, "overwritten"));
    ASSERT_TRUE(store.Delete(9));
    // Destructor: clean close (flushes the cache into the image, marks the
    // boot sector clean, unmaps) — the next Open re-maps at the same base.
  }
  auto store = KvStore::Open(heap, cfg);
  EXPECT_FALSE(store->runtime().recovered_at_boot());
  EXPECT_TRUE(store->file_backed());
  EXPECT_EQ(store->Size(), 99u);
  std::string value;
  ASSERT_TRUE(store->Get(7, &value));
  EXPECT_EQ(value, "overwritten");
  EXPECT_FALSE(store->Get(9, nullptr));
  for (std::uint64_t key = 10; key <= 100; ++key) {
    ASSERT_TRUE(store->Get(key, &value));
    ASSERT_EQ(value, Val(key));
  }
  // Scans work off the re-attached B+-tree primaries.
  std::vector<std::uint64_t> keys;
  store->Scan(1, 5, [&](std::uint64_t k, std::string_view) {
    keys.push_back(k);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  // Overwriting a pre-restart key deferred-frees its old (foreign) value
  // buffer; the free executes at the covering checkpoint and must be a
  // counted leak, never an abort.
  ASSERT_TRUE(store->Put(10, "fresh"));
  store->CheckpointShard(store->ShardOf(10));
  EXPECT_GE(store->runtime().nvm().heap().foreign_free_count(), 1u);
  ::unlink(heap.c_str());
}

TEST(RestartTest, ReopenValidatesMagic) {
  const std::string heap = TmpPath("magic");
  ::unlink(heap.c_str());
  KvConfig cfg = SmallConfig(heap, NvmMode::kFast);
  { KvStore store(cfg); }
  // Corrupt the catalog magic (offset 0).
  {
    int fd = ::open(heap.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    std::uint64_t junk = 0xdeadbeefdeadbeefull;
    ASSERT_EQ(::pwrite(fd, &junk, sizeof(junk), 0),
              static_cast<ssize_t>(sizeof(junk)));
    ::close(fd);
  }
  try {
    KvStore::Open(heap, cfg);
    FAIL() << "attach with corrupt magic succeeded";
  } catch (const HeapAttachError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << e.what();
  }
  ::unlink(heap.c_str());
}

TEST(RestartTest, ReopenValidatesFormatVersion) {
  const std::string heap = TmpPath("version");
  ::unlink(heap.c_str());
  KvConfig cfg = SmallConfig(heap, NvmMode::kFast);
  { KvStore store(cfg); }
  {
    int fd = ::open(heap.c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    std::uint64_t future_version = 999;
    ASSERT_EQ(::pwrite(fd, &future_version, sizeof(future_version), 8),
              static_cast<ssize_t>(sizeof(future_version)));
    ::close(fd);
  }
  try {
    KvStore::Open(heap, cfg);
    FAIL() << "attach with wrong format version succeeded";
  } catch (const HeapAttachError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
  ::unlink(heap.c_str());
}

TEST(RestartTest, ReopenValidatesConfigFingerprint) {
  const std::string heap = TmpPath("fingerprint");
  ::unlink(heap.c_str());
  { KvStore store(SmallConfig(heap, NvmMode::kFast, /*shards=*/3)); }
  // Different shard count => different partition count => different
  // fingerprint: attaching must fail descriptively, not attach garbage.
  KvConfig other = SmallConfig(heap, NvmMode::kFast, /*shards=*/5);
  try {
    KvStore::Open(heap, other);
    FAIL() << "attach under a mismatched configuration succeeded";
  } catch (const HeapAttachError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
  // Different log layout, same shard count: also a fingerprint mismatch.
  KvConfig other2 = SmallConfig(heap, NvmMode::kFast, /*shards=*/3);
  other2.rewind.log_impl = LogImpl::kSimple;
  EXPECT_THROW(KvStore::Open(heap, other2), HeapAttachError);
  ::unlink(heap.c_str());
}

TEST(RestartTest, ReopenValidatesHeapSizeAndMode) {
  const std::string heap = TmpPath("sizemode");
  ::unlink(heap.c_str());
  { KvStore store(SmallConfig(heap, NvmMode::kFast)); }
  KvConfig bigger = SmallConfig(heap, NvmMode::kFast);
  bigger.rewind.nvm.heap_bytes = std::size_t{32} << 20;
  EXPECT_THROW(KvStore::Open(heap, bigger), HeapAttachError);
  KvConfig other_mode = SmallConfig(heap, NvmMode::kCrashSim);
  EXPECT_THROW(KvStore::Open(heap, other_mode), HeapAttachError);
  ::unlink(heap.c_str());
}

TEST(RestartTest, HeapFileIsSingleOwner) {
  // The heap file is exclusively flocked for the store's lifetime: a
  // second attacher — or a create over a live file — fails cleanly instead
  // of silently double-mapping the same arena.
  const std::string heap = TmpPath("flock");
  ::unlink(heap.c_str());
  KvConfig cfg = SmallConfig(heap, NvmMode::kFast);
  KvStore live(cfg);
  try {
    KvStore::Open(heap, cfg);
    FAIL() << "second attach to a live heap file succeeded";
  } catch (const HeapAttachError& e) {
    EXPECT_NE(std::string(e.what()).find("in use"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(KvStore second(cfg), HeapAttachError);  // create over live
  ::unlink(heap.c_str());
}

TEST(RestartTest, OpenOfMissingFileFailsCleanly) {
  const std::string heap = TmpPath("missing");
  ::unlink(heap.c_str());
  EXPECT_THROW(KvStore::Open(heap, SmallConfig(heap, NvmMode::kFast)),
               HeapAttachError);
}

}  // namespace
}  // namespace rwd
