// Parameterized property sweeps over the log-geometry grid: bucket capacity
// x batch group size, exercising bucket expansion/retirement boundaries the
// fixed-size tests never hit.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/core/transaction_manager.h"
#include "src/log/batch_log.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

using Geometry = std::tuple<std::size_t /*bucket*/, std::size_t /*group*/>;

class LogGeometryTest : public ::testing::TestWithParam<Geometry> {};

// Property: appends followed by arbitrary removals and a crash always
// recover to exactly the surviving record set, in order, for any geometry.
TEST_P(LogGeometryTest, RemovalPatternSurvivesCrash) {
  auto [bucket, group] = GetParam();
  NvmManager nvm(TestNvmConfig(4));
  BatchLog log(&nvm, bucket, group);
  std::vector<LogRecord*> recs;
  constexpr std::size_t kN = 150;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    LogRecord local{};
    local.lsn = i;
    local.tid = 1;
    local.type = LogRecordType::kUpdate;
    auto* rec = static_cast<LogRecord*>(nvm.Alloc(sizeof(LogRecord)));
    nvm.StoreObject(rec, local);
    log.Append(rec);
    recs.push_back(rec);
  }
  log.Sync();
  // Remove a pseudo-random subset (deterministic per geometry).
  std::vector<std::uint64_t> survivors;
  for (std::size_t i = 0; i < kN; ++i) {
    if ((i * 2654435761u + bucket * 7 + group) % 3 == 0) {
      log.Remove(recs[i]);
    } else {
      survivors.push_back(recs[i]->lsn);
    }
  }
  nvm.SimulateCrash();
  log.Recover();
  std::vector<std::uint64_t> got;
  log.ForEach([&](LogRecord* r) {
    got.push_back(r->lsn);
    return true;
  });
  ASSERT_EQ(got, survivors) << "bucket=" << bucket << " group=" << group;
  // Forward and backward agree.
  std::vector<std::uint64_t> back;
  log.ForEachBackward([&](LogRecord* r) {
    back.push_back(r->lsn);
    return true;
  });
  std::reverse(back.begin(), back.end());
  ASSERT_EQ(back, survivors);
  // The log remains usable: append after recovery.
  LogRecord local{};
  local.lsn = kN + 1;
  local.type = LogRecordType::kEnd;  // forces a flush
  auto* rec = static_cast<LogRecord*>(nvm.Alloc(sizeof(LogRecord)));
  nvm.StoreObject(rec, local);
  log.Append(rec);
  EXPECT_EQ(log.size(), survivors.size() + 1);
}

// Property: a transaction workload is atomic across a crash for any
// geometry (buckets much smaller and groups much larger than defaults).
TEST_P(LogGeometryTest, TransactionAtomicityAcrossGeometries) {
  auto [bucket, group] = GetParam();
  RewindConfig cfg;
  cfg.nvm = TestNvmConfig(8);
  cfg.log_impl = LogImpl::kBatch;
  cfg.policy = Policy::kNoForce;
  cfg.bucket_capacity = bucket;
  cfg.batch_group_size = group;
  NvmManager nvm(cfg.nvm);
  TransactionManager tm(&nvm, cfg);
  auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
  {
    std::uint32_t t = tm.Begin();
    for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 1);
    tm.Commit(t);
    tm.Checkpoint();
  }
  std::uint32_t t = tm.Begin();
  for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 2);
  nvm.SimulateCrash(0.5, bucket * 31 + group);
  tm.ForgetVolatileState();
  tm.Recover();
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(d[i], 1u) << "bucket=" << bucket << " group=" << group;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LogGeometryTest,
    ::testing::Combine(::testing::Values(2, 3, 8, 64, 1000),
                       ::testing::Values(1, 2, 8, 32)),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_g" +
             std::to_string(std::get<1>(info.param));
    });

// Property: Optimized-log bucket capacities down to the minimum of 2 keep
// every transaction-manager invariant.
class BucketCapacityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BucketCapacityTest, CommitRollbackCheckpointCycle) {
  RewindConfig cfg;
  cfg.nvm = TestNvmConfig(8);
  cfg.log_impl = LogImpl::kOptimized;
  cfg.policy = Policy::kNoForce;
  cfg.bucket_capacity = GetParam();
  NvmManager nvm(cfg.nvm);
  TransactionManager tm(&nvm, cfg);
  auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 4));
  for (int round = 0; round < 60; ++round) {
    std::uint32_t t = tm.Begin();
    for (int i = 0; i < 4; ++i) {
      tm.Write(t, &d[i], static_cast<std::uint64_t>(round));
    }
    if (round % 3 == 2) {
      tm.Rollback(t);
    } else {
      tm.Commit(t);
    }
    if (round % 10 == 9) tm.Checkpoint();
  }
  tm.Checkpoint();
  EXPECT_EQ(tm.LogSize(), 0u);
  EXPECT_EQ(d[0], 58u);  // last committed round
}

INSTANTIATE_TEST_SUITE_P(Capacities, BucketCapacityTest,
                         ::testing::Values(2, 3, 5, 17, 256));

}  // namespace
}  // namespace rwd
