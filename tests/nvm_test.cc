// Tests for the NVM emulation substrate: heap, persistence semantics,
// cacheline coalescing, crash simulation and crash injection.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/nvm/nvm_manager.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

TEST(NvmHeap, AllocZeroedAndAligned) {
  NvmManager nvm(TestNvmConfig(4));
  for (std::size_t sz : {1u, 8u, 17u, 64u, 1000u}) {
    auto* p = static_cast<unsigned char*>(nvm.Alloc(sz));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
    for (std::size_t i = 0; i < sz; ++i) EXPECT_EQ(p[i], 0);
    EXPECT_TRUE(nvm.heap().Contains(p));
  }
}

TEST(NvmHeap, FreeRecyclesSameSizeClass) {
  NvmManager nvm(TestNvmConfig(4));
  void* a = nvm.Alloc(128);
  std::memset(a, 0xAB, 128);
  nvm.Free(a);
  void* b = nvm.Alloc(128);
  EXPECT_EQ(a, b);  // recycled
  for (std::size_t i = 0; i < 128; ++i) {
    EXPECT_EQ(static_cast<unsigned char*>(b)[i], 0);  // scrubbed
  }
}

TEST(NvmHeap, DoubleFreeIsCountedNoOp) {
  NvmManager nvm(TestNvmConfig(4));
  void* a = nvm.Alloc(64);
  nvm.Free(a);
  EXPECT_EQ(nvm.heap().double_free_count(), 0u);
  nvm.Free(a);
  EXPECT_EQ(nvm.heap().double_free_count(), 1u);
}

TEST(NvmHeap, LiveBytesTracksAllocations) {
  NvmManager nvm(TestNvmConfig(4));
  std::size_t before = nvm.heap().live_bytes();
  void* a = nvm.Alloc(100);  // rounds to 112
  EXPECT_GE(nvm.heap().live_bytes(), before + 100);
  nvm.Free(a);
  EXPECT_EQ(nvm.heap().live_bytes(), before);
}

TEST(NvmManager, CachedStoreIsLostAtCrash) {
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  nvm.Store(x, std::uint64_t{42});
  EXPECT_EQ(*x, 42u);
  EXPECT_TRUE(nvm.IsDirty(x));
  nvm.SimulateCrash();
  EXPECT_EQ(*x, 0u);  // never persisted
}

TEST(NvmManager, NtStoreSurvivesCrash) {
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  nvm.StoreNT(x, std::uint64_t{42});
  nvm.SimulateCrash();
  EXPECT_EQ(*x, 42u);
}

TEST(NvmManager, FlushPersistsCachedStore) {
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  nvm.Store(x, std::uint64_t{7});
  nvm.Flush(x);
  nvm.Fence();
  nvm.SimulateCrash();
  EXPECT_EQ(*x, 7u);
}

TEST(NvmManager, NtStoreLeavesRestOfLineCached) {
  NvmManager nvm(TestNvmConfig(4));
  // Two words on the same cacheline: one cached, one NT.
  auto* arr = static_cast<std::uint64_t*>(nvm.Alloc(64));
  nvm.Store(&arr[0], std::uint64_t{1});  // cached: will be lost
  nvm.StoreNT(&arr[1], std::uint64_t{2});
  nvm.SimulateCrash();
  EXPECT_EQ(arr[0], 0u);
  EXPECT_EQ(arr[1], 2u);
}

TEST(NvmManager, FlushAllDirtyPersistsEverything) {
  NvmManager nvm(TestNvmConfig(4));
  std::vector<std::uint64_t*> words;
  for (int i = 0; i < 100; ++i) {
    auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
    nvm.Store(x, static_cast<std::uint64_t>(i + 1));
    words.push_back(x);
  }
  nvm.FlushAllDirty();
  nvm.SimulateCrash();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(*words[i], static_cast<std::uint64_t>(i + 1));
  }
}

TEST(NvmManager, CoalescingChargesOneWritePerLine) {
  NvmManager nvm(TestNvmConfig(4));
  auto* arr = static_cast<std::uint64_t*>(nvm.Alloc(64));
  std::uint64_t before = nvm.stats().nvm_writes.load();
  for (int i = 0; i < 8; ++i) {
    nvm.StoreNT(&arr[i], static_cast<std::uint64_t>(i));
  }
  // Eight consecutive stores to one line coalesce into one charged write.
  EXPECT_EQ(nvm.stats().nvm_writes.load() - before, 1u);
  nvm.Fence();  // ends the coalescing run
  nvm.StoreNT(&arr[0], std::uint64_t{9});
  EXPECT_EQ(nvm.stats().nvm_writes.load() - before, 2u);
}

TEST(NvmManager, StoreNTObjectPersistsWholeStruct) {
  struct Obj {
    std::uint64_t a, b, c;
  };
  NvmManager nvm(TestNvmConfig(4));
  auto* o = static_cast<Obj*>(nvm.Alloc(sizeof(Obj)));
  nvm.StoreNTObject(o, Obj{1, 2, 3});
  nvm.SimulateCrash();
  EXPECT_EQ(o->a, 1u);
  EXPECT_EQ(o->b, 2u);
  EXPECT_EQ(o->c, 3u);
}

TEST(NvmManager, RandomEvictionPersistsSomeDirtyLines) {
  NvmManager nvm(TestNvmConfig(4));
  std::vector<std::uint64_t*> words;
  for (int i = 0; i < 200; ++i) {
    // Separate allocations land on distinct lines often enough.
    auto* x = static_cast<std::uint64_t*>(nvm.Alloc(64));
    nvm.Store(x, std::uint64_t{1});
    words.push_back(x);
  }
  nvm.SimulateCrash(/*evict_probability=*/0.5, /*seed=*/123);
  int survived = 0;
  for (auto* x : words) survived += (*x == 1u) ? 1 : 0;
  EXPECT_GT(survived, 20);
  EXPECT_LT(survived, 180);
}

TEST(CrashInjector, FiresAtExactEvent) {
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  bool crashed = RunWithCrashAt(&nvm, 3, [&] {
    nvm.StoreNT(x, std::uint64_t{1});  // event 1
    nvm.StoreNT(x, std::uint64_t{2});  // event 2
    nvm.StoreNT(x, std::uint64_t{3});  // event 3 -> crash
    nvm.StoreNT(x, std::uint64_t{4});
  });
  EXPECT_TRUE(crashed);
  // A crash AT an event means the power died before that store completed:
  // the check precedes the memory effect (crash-before-store), so value 2
  // is the last persisted state. Crash-after-store states are still swept
  // — they are exactly crash-before the NEXT event.
  EXPECT_EQ(*x, 2u);
}

TEST(CrashInjector, StaysDeadAfterFiring) {
  // Sticky post-fire behavior: a power failure stops the machine, so every
  // later persistence attempt — e.g. from a thread that survived the crash
  // instant — must die too until Disarm()/SimulateCrash().
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  nvm.crash_injector().Arm(1);
  EXPECT_THROW(nvm.StoreNT(x, std::uint64_t{1}), CrashException);
  EXPECT_FALSE(nvm.crash_injector().armed());  // the shot has landed...
  EXPECT_THROW(nvm.StoreNT(x, std::uint64_t{2}), CrashException);  // ...dead
  EXPECT_THROW(nvm.Fence(), CrashException);
  EXPECT_EQ(*x, 0u) << "no store may reach a dead device";
  nvm.crash_injector().Disarm();
  nvm.StoreNT(x, std::uint64_t{3});  // serviceable again
  EXPECT_EQ(*x, 3u);
}

TEST(CrashInjector, DoesNotFireWhenBodyFinishesFirst) {
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  bool crashed =
      RunWithCrashAt(&nvm, 100, [&] { nvm.StoreNT(x, std::uint64_t{1}); });
  EXPECT_FALSE(crashed);
  EXPECT_EQ(*x, 1u);
}

TEST(NvmStats, ResetZeroesCounters) {
  NvmManager nvm(TestNvmConfig(4));
  auto* x = static_cast<std::uint64_t*>(nvm.Alloc(8));
  nvm.StoreNT(x, std::uint64_t{1});
  nvm.Fence();
  EXPECT_GT(nvm.stats().nvm_writes.load(), 0u);
  nvm.stats().Reset();
  EXPECT_EQ(nvm.stats().nvm_writes.load(), 0u);
  EXPECT_EQ(nvm.stats().fences.load(), 0u);
}

TEST(NvmHeap, RootCatalogRegistersAndResolvesNames) {
  NvmManager nvm(TestNvmConfig(4));
  NvmHeap& heap = nvm.heap();
  EXPECT_EQ(heap.GetRoot("absent"), nullptr);
  void* a = nvm.Alloc(64);
  void* b = nvm.Alloc(128);
  heap.SetRoot("alpha", a);
  heap.SetRoot("beta", b);
  EXPECT_EQ(heap.GetRoot("alpha"), a);
  EXPECT_EQ(heap.GetRoot("beta"), b);
  // Re-pointing an existing name updates in place.
  heap.SetRoot("alpha", b);
  EXPECT_EQ(heap.GetRoot("alpha"), b);
  // The catalog block itself sits at arena offset 0, below every alloc.
  EXPECT_GE(heap.OffsetOf(a), NvmCatalog::kBytes);
  EXPECT_EQ(heap.catalog()->magic, NvmCatalog::kMagic);
  EXPECT_EQ(heap.catalog()->high_watermark, heap.high_watermark());
}

TEST(NvmHeap, FileBackedAttachRebuildsAllocatorConservatively) {
  const std::string path = ::testing::TempDir() + "nvm_attach_" +
                           std::to_string(::getpid()) + ".heap";
  NvmConfig cfg = TestNvmConfig(4);
  cfg.mode = NvmMode::kFast;
  cfg.heap_file = path;
  cfg.config_fingerprint = 0x1234;
  std::size_t root_off = 0;
  std::size_t hwm = 0;
  void* old_block = nullptr;
  {
    NvmManager nvm(cfg);
    auto* p = static_cast<std::uint64_t*>(nvm.Alloc(256));
    old_block = p;
    nvm.StoreNT(&p[0], std::uint64_t{0xfeedface});
    nvm.heap().SetRoot("anchor", p);
    root_off = nvm.heap().OffsetOf(p);
    hwm = nvm.heap().high_watermark();
  }
  NvmManager nvm(cfg, /*attach=*/true);
  NvmHeap& heap = nvm.heap();
  EXPECT_TRUE(heap.attached());
  EXPECT_TRUE(heap.file_backed());
  // Same base address, so the old pointer is valid again.
  auto* p = static_cast<std::uint64_t*>(heap.GetRoot("anchor"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p, old_block);
  EXPECT_EQ(heap.OffsetOf(p), root_off);
  EXPECT_EQ(p[0], 0xfeedfaceull);
  // Conservative rebuild: the watermark survived; new blocks come from
  // above it, never overlapping pre-attach state.
  EXPECT_EQ(heap.high_watermark(), hwm);
  void* fresh = nvm.Alloc(64);
  EXPECT_GE(heap.OffsetOf(fresh), hwm);
  // Freeing a pre-attach ("foreign") block is a counted leak, not an abort.
  EXPECT_EQ(heap.foreign_free_count(), 0u);
  nvm.Free(p);
  EXPECT_EQ(heap.foreign_free_count(), 1u);
  EXPECT_EQ(p[0], 0xfeedfaceull);  // untouched: leaked, not recycled
  ::unlink(path.c_str());
}

TEST(NvmHeap, AttachRejectsMismatchedFingerprint) {
  const std::string path = ::testing::TempDir() + "nvm_fpr_" +
                           std::to_string(::getpid()) + ".heap";
  NvmConfig cfg = TestNvmConfig(4);
  cfg.mode = NvmMode::kFast;
  cfg.heap_file = path;
  cfg.config_fingerprint = 1;
  { NvmManager nvm(cfg); }
  cfg.config_fingerprint = 2;
  EXPECT_THROW(NvmManager(cfg, /*attach=*/true), HeapAttachError);
  ::unlink(path.c_str());
}

TEST(NvmHeap, AttachWithoutFileIsRejected) {
  NvmConfig cfg = TestNvmConfig(4);
  cfg.heap_file.clear();
  EXPECT_THROW(NvmManager(cfg, /*attach=*/true), HeapAttachError);
}

TEST(NvmHeap, CrashSimFileBackedPersistsOnlyFlushedLines) {
  const std::string path = ::testing::TempDir() + "nvm_img_" +
                           std::to_string(::getpid()) + ".heap";
  NvmConfig cfg = TestNvmConfig(4);  // kCrashSim
  cfg.heap_file = path;
  {
    NvmManager nvm(cfg);
    auto* p = static_cast<std::uint64_t*>(nvm.Alloc(128));
    nvm.heap().SetRoot("blk", p);
    nvm.StoreNT(&p[0], std::uint64_t{11});  // persistent (reaches the file)
    nvm.Store(&p[8], std::uint64_t{22});    // cached only: a different line
    nvm.Fence();
    // No clean close, no FlushAllDirty: drop the manager as a dying
    // process would.
  }
  NvmManager nvm(cfg, /*attach=*/true);
  auto* p = static_cast<std::uint64_t*>(nvm.heap().GetRoot("blk"));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p[0], 11u);  // NT store survived in the image file
  EXPECT_EQ(p[8], 0u);   // cached store died with the process's "cache"
  ::unlink(path.c_str());
}

TEST(Latency, SpinIsMonotoneInDuration) {
  LatencyEmulator::Calibrate();
  auto time_spin = [](std::uint32_t ns) {
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 50; ++i) LatencyEmulator::Spin(ns);
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto short_time = time_spin(100);
  auto long_time = time_spin(10000);
  EXPECT_GT(long_time, short_time);
}

}  // namespace
}  // namespace rwd
