// Crash-recovery tests: atomicity and durability across every REWIND
// configuration, with crash points swept over the persistence-event stream
// and randomized cacheline eviction.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/transaction_manager.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

class RecoveryTest : public ::testing::TestWithParam<RewindConfig> {};

// The canonical scenario: txn A commits, txn B is in flight at the crash.
// After recovery A's values must be durable and B's rolled back — at every
// possible crash point.
TEST_P(RecoveryTest, CommittedSurviveUncommittedRollBack) {
  bool completed = false;
  for (std::uint64_t at = 1; at < 2000 && !completed; ++at) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
    // Pre-state: all words 100.
    {
      std::uint32_t t = tm.Begin();
      for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 100);
      tm.Commit(t);
      if (!GetParam().force()) tm.Checkpoint();
    }
    bool a_committed = false;
    bool crashed = RunWithCrashAt(&nvm, at, [&] {
      std::uint32_t a = tm.Begin();
      for (int i = 0; i < 4; ++i) tm.Write(a, &d[i], 200 + i);
      tm.Commit(a);
      a_committed = true;
      std::uint32_t b = tm.Begin();
      for (int i = 0; i < 8; ++i) tm.Write(b, &d[i], 300 + i);
      tm.Commit(b);  // if we get here without crashing, everything applied
    });
    if (crashed) {
      tm.ForgetVolatileState();
      tm.Recover();
      if (a_committed) {
        // Durability of A, atomicity of B: either B rolled back (A's state)
        // or B's commit had logically completed before the crash (its END
        // record persisted) and all of B survives.
        bool b_rolled_back = true, b_committed = true;
        for (int i = 0; i < 4; ++i) b_rolled_back &= (d[i] == 200u + i);
        for (int i = 4; i < 8; ++i) b_rolled_back &= (d[i] == 100u);
        for (int i = 0; i < 8; ++i) b_committed &= (d[i] == 300u + i);
        ASSERT_TRUE(b_rolled_back || b_committed) << "crash at " << at;
      } else {
        // Atomicity: either all of A or none of it; B never observable
        // before A's commit completed.
        bool all_a = true, none_a = true;
        for (int i = 0; i < 4; ++i) {
          all_a &= (d[i] == 200u + i);
          none_a &= (d[i] == 100u);
        }
        ASSERT_TRUE(all_a || none_a) << "crash at " << at;
      }
      ASSERT_EQ(tm.LogSize(), 0u) << "log cleared after recovery";
    } else {
      for (int i = 0; i < 8; ++i) ASSERT_EQ(d[i], 300u + i);
      completed = true;
    }
  }
  EXPECT_TRUE(completed) << "crash sweep never reached workload completion";
}

// Same scenario but with randomized cache eviction at the crash: dirty
// lines may persist arbitrarily, which is exactly what WAL must tolerate.
TEST_P(RecoveryTest, RandomEvictionDoesNotBreakAtomicity) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
    {
      std::uint32_t t = tm.Begin();
      for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 7);
      tm.Commit(t);
      if (!GetParam().force()) tm.Checkpoint();
    }
    bool crashed = RunWithCrashAt(
        &nvm, 40 + seed * 13,
        [&] {
          std::uint32_t b = tm.Begin();
          for (int i = 0; i < 8; ++i) tm.Write(b, &d[i], 1000 + i);
          tm.Commit(b);
        },
        /*evict_probability=*/0.5, seed);
    if (!crashed) continue;
    tm.ForgetVolatileState();
    tm.Recover();
    bool all_new = true, all_old = true;
    for (int i = 0; i < 8; ++i) {
      all_new &= (d[i] == 1000u + i);
      all_old &= (d[i] == 7u);
    }
    ASSERT_TRUE(all_new || all_old) << "seed " << seed;
  }
}

// Crash during an explicit rollback: recovery must finish the rollback.
TEST_P(RecoveryTest, CrashDuringRollbackCompletesUndo) {
  bool completed = false;
  for (std::uint64_t at = 1; at < 1500 && !completed; ++at) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
    {
      std::uint32_t t = tm.Begin();
      for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 50);
      tm.Commit(t);
      if (!GetParam().force()) tm.Checkpoint();
    }
    std::uint32_t b = tm.Begin();
    for (int i = 0; i < 8; ++i) tm.Write(b, &d[i], 900 + i);
    bool crashed = RunWithCrashAt(&nvm, at, [&] { tm.Rollback(b); });
    if (crashed) {
      tm.ForgetVolatileState();
      tm.Recover();
    }
    for (int i = 0; i < 8; ++i) {
      ASSERT_EQ(d[i], 50u) << "crash at " << at << " word " << i;
    }
    if (!crashed) completed = true;
  }
  EXPECT_TRUE(completed);
}

// Crash during recovery itself, then a second recovery.
TEST_P(RecoveryTest, CrashDuringRecoveryIsRepeatable) {
  for (std::uint64_t first : {20ull, 45ull, 80ull, 130ull}) {
    for (std::uint64_t second = 1; second < 40; second += 3) {
      NvmManager nvm(GetParam().nvm);
      TransactionManager tm(&nvm, GetParam());
      auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
      {
        std::uint32_t t = tm.Begin();
        for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 3);
        tm.Commit(t);
        if (!GetParam().force()) tm.Checkpoint();
      }
      bool crashed = RunWithCrashAt(&nvm, first, [&] {
        std::uint32_t b = tm.Begin();
        for (int i = 0; i < 8; ++i) tm.Write(b, &d[i], 600 + i);
        tm.Commit(b);
      });
      if (!crashed) continue;
      tm.ForgetVolatileState();
      bool crashed_again = RunWithCrashAt(&nvm, second, [&] { tm.Recover(); });
      if (crashed_again) {
        tm.ForgetVolatileState();
        tm.Recover();
      }
      bool all_new = true, all_old = true;
      for (int i = 0; i < 8; ++i) {
        all_new &= (d[i] == 600u + i);
        all_old &= (d[i] == 3u);
      }
      ASSERT_TRUE(all_new || all_old)
          << "first=" << first << " second=" << second;
      ASSERT_EQ(tm.LogSize(), 0u);
    }
  }
}

// Crash in the middle of a checkpoint (no-force): nothing may be lost.
TEST_P(RecoveryTest, CrashDuringCheckpointLosesNothing) {
  if (GetParam().force()) return;
  bool completed = false;
  for (std::uint64_t at = 1; at < 800 && !completed; ++at) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 16));
    for (int i = 0; i < 16; ++i) {
      std::uint32_t t = tm.Begin();
      tm.Write(t, &d[i], 40 + static_cast<std::uint64_t>(i));
      tm.Commit(t);
    }
    bool crashed = RunWithCrashAt(&nvm, at, [&] { tm.Checkpoint(); });
    if (crashed) {
      tm.ForgetVolatileState();
      tm.Recover();
    }
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(d[i], 40u + i) << "crash at " << at;
    }
    if (!crashed) completed = true;
  }
  EXPECT_TRUE(completed);
}

// Crash in the middle of a force-policy commit (including its log
// clearing): the committed values must survive.
TEST_P(RecoveryTest, CrashDuringForceCommitKeepsDurability) {
  if (!GetParam().force()) return;
  bool completed = false;
  for (std::uint64_t at = 1; at < 800 && !completed; ++at) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
    std::uint32_t t = tm.Begin();
    for (int i = 0; i < 8; ++i) tm.Write(t, &d[i], 70 + i);
    bool crashed = RunWithCrashAt(&nvm, at, [&] { tm.Commit(t); });
    if (crashed) {
      tm.ForgetVolatileState();
      tm.Recover();
    }
    // The values were NT-stored during Write (force policy); whether or not
    // the END record made it, recovery must leave either all-new (commit
    // completed logically) or all-old (rolled back) — with all-old only
    // possible before the END record persisted.
    bool all_new = true, all_old = true;
    for (int i = 0; i < 8; ++i) {
      all_new &= (d[i] == 70u + i);
      all_old &= (d[i] == 0u);
    }
    ASSERT_TRUE(all_new || all_old) << "crash at " << at;
    ASSERT_EQ(tm.LogSize(), 0u);
    if (!crashed) {
      ASSERT_TRUE(all_new);
      completed = true;
    }
  }
  EXPECT_TRUE(completed);
}

// Two-phase commit participant recovery at every crash point: a
// transaction that crashed in (or on the way to) the PREPARED state rolls
// back when no commit decision exists (presumed abort) and commits when
// the resolver confirms one — in every configuration.
TEST_P(RecoveryTest, PreparedTransactionsFollowTheResolver) {
  for (bool decide_commit : {false, true}) {
    bool completed = false;
    for (std::uint64_t at = 1; at < 2000 && !completed; ++at) {
      NvmManager nvm(GetParam().nvm);
      TransactionManager tm(&nvm, GetParam());
      auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * 8));
      {
        std::uint32_t t = tm.Begin();
        for (int i = 0; i < 4; ++i) tm.Write(t, &d[i], 100);
        tm.Commit(t);
        if (!GetParam().force()) tm.Checkpoint();
      }
      std::uint32_t t = tm.Begin();
      bool crashed = RunWithCrashAt(&nvm, at, [&] {
        for (int i = 0; i < 4; ++i) {
          tm.Write(t, &d[i], 200 + static_cast<std::uint64_t>(i));
        }
        tm.Prepare(t, /*gtid=*/77);
      });
      if (!crashed) {
        // Prepare completed: every later crash point is equivalent to
        // dying right here, with the transaction durably PREPARED.
        nvm.SimulateCrash();
        completed = true;
      }
      tm.ForgetVolatileState();
      tm.Recover([&](std::uint64_t gtid) {
        EXPECT_EQ(gtid, 77u);
        return decide_commit;
      });
      bool all_new = true, all_old = true;
      for (int i = 0; i < 4; ++i) {
        all_new &= (d[i] == 200u + static_cast<std::uint64_t>(i));
        all_old &= (d[i] == 100u);
      }
      if (decide_commit) {
        ASSERT_TRUE(all_new || all_old) << "torn prepared txn at " << at;
        // A complete prepare + commit decision MUST commit.
        if (!crashed) ASSERT_TRUE(all_new) << "prepared txn lost its commit";
      } else {
        ASSERT_TRUE(all_old) << "undecided prepared txn survived at " << at;
      }
      ASSERT_EQ(tm.LogSize(), 0u);
      // The manager keeps working after resolution.
      std::uint32_t next = tm.Begin();
      tm.Write(next, &d[7], 4242);
      tm.Commit(next);
      ASSERT_EQ(tm.Read(&d[7]), 4242u);
    }
    EXPECT_TRUE(completed) << "sweep never completed a prepare";
  }
}

// Many transactions, some committed, one uncommitted; recovery resolves all
// of them and clears the log (the paper's multi-transaction recovery).
TEST_P(RecoveryTest, MultiTransactionRecovery) {
  NvmManager nvm(GetParam().nvm);
  TransactionManager tm(&nvm, GetParam());
  constexpr int kTxns = 30;
  auto* d = static_cast<std::uint64_t*>(nvm.Alloc(8 * kTxns));
  for (int i = 0; i < kTxns - 1; ++i) {
    std::uint32_t t = tm.Begin();
    tm.Write(t, &d[i], 1000 + static_cast<std::uint64_t>(i));
    tm.Commit(t);
  }
  // Last transaction left hanging at the crash.
  std::uint32_t hang = tm.Begin();
  tm.Write(hang, &d[kTxns - 1], 9999);
  nvm.SimulateCrash();
  tm.ForgetVolatileState();
  tm.Recover();
  for (int i = 0; i < kTxns - 1; ++i) {
    EXPECT_EQ(d[i], 1000u + i) << "txn " << i;
  }
  EXPECT_EQ(d[kTxns - 1], 0u);
  EXPECT_EQ(tm.LogSize(), 0u);
  // The system keeps working after recovery.
  std::uint32_t t = tm.Begin();
  tm.Write(t, &d[0], 4242);
  tm.Commit(t);
  EXPECT_EQ(tm.Read(&d[0]), 4242u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RecoveryTest, ::testing::ValuesIn(AllConfigs(4)),
    [](const ::testing::TestParamInfo<RewindConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace rwd
