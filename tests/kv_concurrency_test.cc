// Reader/writer torture tests for RewindKV's concurrent read path (PR 5):
// latch-free seqlock Gets and shared-latch Scans racing exclusive writers,
// plus a crash-at-every-persistence-event sweep variant that drives
// concurrent cross-shard MultiPuts into a simulated power failure and
// asserts the two-phase pipeline stays all-or-nothing.
#include <atomic>
#include <cstring>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/kv_store.h"
#include "tests/tm_config_util.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

constexpr std::uint64_t kSalt = 0x5Ec10C0E5A17ull;  // "seqlock salt"

/// A value whose words are mutually consistent, so a torn read (bytes from
/// two different versions, or from scrubbed/recycled memory) is detected
/// by recomputing the checksum word. 40 bytes = 5 words.
std::string TortureValue(std::uint64_t key, std::uint64_t version) {
  std::uint64_t words[5];
  words[0] = key;
  words[1] = version;
  words[2] = key ^ version ^ kSalt;
  words[3] = key * 0x9E3779B97F4A7C15ull + version;
  words[4] = words[2] ^ words[3];
  std::string out(sizeof(words), '\0');
  std::memcpy(&out[0], words, sizeof(words));
  return out;
}

/// Validates a value read for `key`; returns the version it carries.
/// EXPECT-fails (and returns ~0) on any inconsistency.
std::uint64_t CheckTortureValue(std::uint64_t key, const std::string& value) {
  if (value.size() != 40) {
    ADD_FAILURE() << "key " << key << ": torn value size " << value.size();
    return ~std::uint64_t{0};
  }
  std::uint64_t words[5];
  std::memcpy(words, value.data(), sizeof(words));
  EXPECT_EQ(words[0], key) << "value belongs to another key";
  EXPECT_EQ(words[2], words[0] ^ words[1] ^ kSalt)
      << "key " << key << ": torn checksum word 2";
  EXPECT_EQ(words[3], words[0] * 0x9E3779B97F4A7C15ull + words[1])
      << "key " << key << ": torn checksum word 3";
  EXPECT_EQ(words[4], words[2] ^ words[3])
      << "key " << key << ": torn checksum word 4";
  return words[1];
}

KvConfig FastKvConfig(std::size_t shards) {
  KvConfig config;
  config.rewind.nvm.mode = NvmMode::kFast;  // no crash tracking: pure speed
  config.rewind.nvm.heap_bytes = 64u << 20;
  config.rewind.nvm.write_latency_ns = 0;
  config.rewind.nvm.fence_latency_ns = 0;
  config.shards = shards;
  config.checkpoint_period_ms = 5;  // daemons race the traffic too
  return config;
}

// --- torture 1: raw integrity under concurrent Get/Scan vs writers ------

TEST(KvConcurrency, ReadersNeverObserveTornValues) {
  KvConfig config = FastKvConfig(/*shards=*/4);
  KvStore store(config);
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    ASSERT_TRUE(store.Put(k, TortureValue(k, 0)));
  }

  const std::size_t writer_threads = 3;
  const std::size_t reader_threads = 3;
  const std::uint64_t writer_ops = kTsan ? 2000 : 10000;
  std::atomic<std::uint64_t> next_version{1};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;

  for (std::size_t t = 0; t < writer_threads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(1000 + t);
      for (std::uint64_t i = 0; i < writer_ops; ++i) {
        std::uint64_t key = 1 + rng() % kKeys;
        std::uint64_t r = rng() % 100;
        if (r < 70) {
          std::uint64_t v = next_version.fetch_add(1);
          store.Put(key, TortureValue(key, v));
        } else if (r < 85) {
          store.Delete(key);
        } else {
          // Cross-shard MultiPut: 6 distinct-ish keys, one version.
          std::uint64_t v = next_version.fetch_add(1);
          std::vector<std::pair<std::uint64_t, std::string>> batch;
          for (int j = 0; j < 6; ++j) {
            std::uint64_t k = 1 + rng() % kKeys;
            batch.emplace_back(k, TortureValue(k, v));
          }
          store.MultiPut(batch);
        }
      }
    });
  }
  for (std::size_t t = 0; t < reader_threads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(2000 + t);
      std::string value;
      std::uint64_t reads = 0;
      while (!done.load(std::memory_order_relaxed)) {
        std::uint64_t key = 1 + rng() % kKeys;
        if (store.Get(key, &value)) CheckTortureValue(key, value);
        ++reads;
      }
      EXPECT_GT(reads, 0u);
    });
  }
  // One scanner: every (key, value) pair of every cut must be internally
  // consistent (the scan holds every shard latch shared, so writers are
  // fully excluded — a torn pair here means the latch hierarchy broke).
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      store.Scan(1, kKeys, [](std::uint64_t k, std::string_view v) {
        CheckTortureValue(k, std::string(v));
        return true;
      });
    }
  });

  for (std::size_t t = 0; t < writer_threads; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  for (std::size_t t = writer_threads; t < threads.size(); ++t) {
    threads[t].join();
  }

  // The latch-free fast path must actually have served reads, and every
  // read must be accounted to exactly one of the two read paths.
  std::uint64_t gets = 0, opt = 0, latched = 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    KvShardStats st = store.shard_stats(s);
    gets += st.gets;
    opt += st.optimistic_hits;
    latched += st.read_latch_acquires;
  }
  EXPECT_GT(opt, 0u) << "optimistic read path never engaged";
  EXPECT_EQ(gets, opt + latched)
      << "some Get was served by neither read path";

  // Final state: all live values intact.
  store.Scan(1, kKeys, [](std::uint64_t k, std::string_view v) {
    CheckTortureValue(k, std::string(v));
    return true;
  });
}

// --- torture 2: snapshot-consistent scans of atomic group writes --------

TEST(KvConcurrency, ScansSeeGroupConsistentMultiPuts) {
  KvConfig config = FastKvConfig(/*shards=*/4);
  // Force the 2PC fan-out pool on (auto sizing stands down on single-core
  // hosts): this test is the correctness torture for the parallel
  // prepare/commit path, so it must actually run parallel.
  config.prepare_threads = 4;
  KvStore store(config);
  // The store holds ONLY this group, written wholesale by every MultiPut,
  // so any scan must observe one version across all members — a mixed
  // scan means either cross-shard atomicity or the shared-latch snapshot
  // broke.
  std::vector<std::uint64_t> group = {1, 2, 3, 4, 5, 6, 7, 8};
  std::set<std::size_t> shards_touched;
  for (std::uint64_t k : group) shards_touched.insert(store.ShardOf(k));
  ASSERT_GE(shards_touched.size(), 3u) << "group does not span enough shards";

  auto group_batch = [&](std::uint64_t version) {
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    for (std::uint64_t k : group) {
      batch.emplace_back(k, TortureValue(k, version));
    }
    return batch;
  };
  ASSERT_TRUE(store.MultiPut(group_batch(0)));

  const std::size_t writer_threads = 3;
  const std::uint64_t writes_each = kTsan ? 150 : 600;
  std::atomic<std::uint64_t> next_version{1};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < writer_threads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < writes_each; ++i) {
        store.MultiPut(group_batch(next_version.fetch_add(1)));
      }
    });
  }
  for (std::size_t t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        std::map<std::uint64_t, std::uint64_t> seen;
        store.Scan(1, 64, [&](std::uint64_t k, std::string_view v) {
          seen[k] = CheckTortureValue(k, std::string(v));
          return true;
        });
        ASSERT_EQ(seen.size(), group.size())
            << "scan lost part of the group";
        std::uint64_t version = seen.begin()->second;
        for (auto& [k, ver] : seen) {
          ASSERT_EQ(ver, version)
              << "scan observed a MIXED group: key " << k << " at version "
              << ver << " vs " << version
              << " — cross-shard MultiPut was not snapshot-atomic";
        }
      }
    });
  }
  // Plus a latch-free reader hammering one group member.
  threads.emplace_back([&] {
    std::string value;
    while (!done.load(std::memory_order_relaxed)) {
      if (store.Get(group[0], &value)) CheckTortureValue(group[0], value);
    }
  });

  for (std::size_t t = 0; t < writer_threads; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  for (std::size_t t = writer_threads; t < threads.size(); ++t) {
    threads[t].join();
  }

  // The parallel prepare fan-out must have engaged for these cross-shard
  // commits and actually moved work onto the pool.
  EXPECT_GT(store.store_txn().parallel_prepares(), 0u);
  EXPECT_GE(store.store_txn().max_prepare_fanout(), 3u);
  EXPECT_GT(store.store_txn().offloaded_tasks(), 0u)
      << "prepare fan-out never ran on the pool";
}

// --- torture 3: crash sweep under concurrency ---------------------------

class KvConcurrencyCrashSweep
    : public ::testing::TestWithParam<RewindConfig> {};

TEST_P(KvConcurrencyCrashSweep, ConcurrentMultiPutsStayAtomicAcrossCrash) {
  KvConfig config;
  config.rewind = GetParam();
  config.shards = 4;
  KvStore store(config);
  NvmManager& nvm = store.runtime().nvm();

  // Each writer thread owns a private key group confined to its own pair
  // of shards. Confinement matters: after the injected crash fires on one
  // thread, the other may legitimately finish a commit before the sweep
  // takes the simulated power failure, and REWIND's physical undo of the
  // doomed transaction must not collide with that commit's cells — in a
  // real power failure nothing runs after the crash, so the test keeps
  // post-crash commits off the doomed transaction's shards entirely.
  const std::size_t writers = 2;
  std::vector<std::vector<std::uint64_t>> groups(writers);
  {
    std::vector<std::set<std::size_t>> owned(writers);
    owned[0] = {0, 1};
    owned[1] = {2, 3};
    std::uint64_t k = 1;
    for (std::size_t w = 0; w < writers; ++w) {
      while (groups[w].size() < 6) {
        if (owned[w].count(store.ShardOf(k)) != 0) groups[w].push_back(k);
        ++k;
      }
      std::set<std::size_t> spanned;
      for (std::uint64_t gk : groups[w]) spanned.insert(store.ShardOf(gk));
      ASSERT_GE(spanned.size(), 2u) << "group " << w << " is single-shard";
    }
  }

  auto check_groups = [&](const char* when, std::uint64_t at) {
    // All-or-nothing per group: every member present with one common
    // version, or (before the group's first successful write) all absent.
    for (std::size_t w = 0; w < writers; ++w) {
      std::string value;
      std::size_t present = 0;
      std::uint64_t version = 0;
      for (std::uint64_t k : groups[w]) {
        if (!store.Get(k, &value)) continue;
        std::uint64_t v = CheckTortureValue(k, value);
        if (present == 0) version = v;
        ASSERT_EQ(v, version)
            << when << " at event " << at << ": writer " << w
            << " group torn (key " << k << ")";
        ++present;
      }
      ASSERT_TRUE(present == 0 || present == groups[w].size())
          << when << " at event " << at << ": writer " << w
          << " group applied a prefix (" << present << "/"
          << groups[w].size() << " keys)";
    }
  };

  const std::uint64_t iters_each = 2;
  std::uint64_t crash_events = 0;
  std::uint64_t at = 1;
  // Every persistence event is swept; under TSan (an order of magnitude
  // slower) the sweep samples a fixed stride instead.
  const std::uint64_t step = kTsan ? 97 : 1;
  for (;;) {
    nvm.crash_injector().Arm(at);
    std::atomic<bool> crashed{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        try {
          for (std::uint64_t i = 0; i < iters_each; ++i) {
            if (crashed.load(std::memory_order_relaxed)) return;
            std::vector<std::pair<std::uint64_t, std::string>> batch;
            for (std::uint64_t k : groups[w]) {
              batch.emplace_back(k, TortureValue(k, at * 100 + i));
            }
            store.MultiPut(batch);
          }
        } catch (const CrashException&) {
          crashed.store(true, std::memory_order_relaxed);
        }
      });
    }
    threads.emplace_back([&] {
      // A latch-free reader rides along; it must never see a torn value,
      // crash or not.
      std::string value;
      std::mt19937_64 rng(7);
      while (!done.load(std::memory_order_relaxed)) {
        for (std::size_t w = 0; w < writers; ++w) {
          std::uint64_t k = groups[w][rng() % groups[w].size()];
          if (store.Get(k, &value)) CheckTortureValue(k, value);
        }
      }
    });
    for (std::size_t w = 0; w < writers; ++w) threads[w].join();
    done.store(true, std::memory_order_relaxed);
    threads.back().join();
    nvm.crash_injector().Disarm();

    if (!crashed.load()) break;  // the whole run fit under `at` events
    ++crash_events;
    nvm.SimulateCrash();
    store.CrashAndRecover();
    check_groups("post-recovery", at);
    for (std::size_t p = 0; p < store.runtime().partitions(); ++p) {
      ASSERT_EQ(store.runtime().tm(p).LogSize(), 0u)
          << "partition " << p << " dirty after recovery at event " << at;
    }
    at += step;
  }
  EXPECT_GT(crash_events, kTsan ? 3u : 50u)
      << "the sweep barely exercised the pipeline";
  check_groups("final", at);
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, KvConcurrencyCrashSweep,
                         ::testing::ValuesIn(AllConfigs(16)),
                         [](const ::testing::TestParamInfo<RewindConfig>& i) {
                           return ConfigName(i.param);
                         });

// --- torture 4: the parallel ApplyBatch fan-out (PR 8) ------------------

// ApplyBatch (the group-commit apply path) fans its per-shard apply loops
// out across the shared worker pool when a batch spans shards — and stands
// down to the sequential path the moment the crash injector is armed, so
// crash sweeps see their injected CrashException at a deterministic
// persistence-event ordinal on the calling thread.
TEST(KvConcurrency, ApplyBatchFansOutAndStandsDownWhenArmed) {
  KvConfig config;
  config.rewind.nvm = TestNvmConfig(16);
  config.rewind.log_impl = LogImpl::kBatch;
  config.rewind.policy = Policy::kNoForce;
  config.shards = 4;
  // Force the shared pool on (auto sizing stands down on single-core
  // hosts): this test is about the fan-out path actually running.
  config.prepare_threads = 4;
  KvStore store(config);

  // A batch spanning at least 3 shards.
  std::vector<KvWriteOp> ops;
  std::set<std::size_t> touched;
  for (std::uint64_t k = 1; ops.size() < 24; ++k) {
    KvWriteOp op;
    op.key = k;
    op.value = TortureValue(k, 1);
    ops.push_back(std::move(op));
    touched.insert(store.ShardOf(k));
  }
  ASSERT_GE(touched.size(), 3u);

  std::uint64_t offloaded_before = store.store_txn().offloaded_tasks();
  store.ApplyBatch(ops);
  EXPECT_EQ(store.parallel_applies(), 1u);
  EXPECT_GT(store.store_txn().offloaded_tasks(), offloaded_before)
      << "the apply fan-out never moved work onto the pool";
  std::string value;
  for (const KvWriteOp& op : ops) {
    EXPECT_TRUE(op.applied);
    ASSERT_TRUE(store.Get(op.key, &value));
    EXPECT_EQ(CheckTortureValue(op.key, value), 1u);
  }

  // Armed (target far beyond reach, so nothing fires): the same batch must
  // apply sequentially on the calling thread — the counter may not move —
  // and still apply correctly.
  store.runtime().nvm().crash_injector().Arm(std::uint64_t{1} << 40);
  for (KvWriteOp& op : ops) op.value = TortureValue(op.key, 2);
  store.ApplyBatch(ops);
  store.runtime().nvm().crash_injector().Disarm();
  EXPECT_EQ(store.parallel_applies(), 1u)
      << "apply fan-out ran while the crash injector was armed";
  for (const KvWriteOp& op : ops) {
    EXPECT_TRUE(op.applied);
    ASSERT_TRUE(store.Get(op.key, &value));
    EXPECT_EQ(CheckTortureValue(op.key, value), 2u);
  }
}

// --- torture 5: crash sweep through the parallel apply path -------------

// Concurrent ApplyBatch group commits — shared pool forced on, every group
// spanning >= 3 shards — swept with a crash at sampled persistence events.
// Each iteration first runs an UNARMED round (the fan-out genuinely runs
// on the pool, so recovery is checked against state the parallel path
// produced), then arms and lets two writer threads race until the shot
// lands. Every group must stay all-or-nothing across every crash.
TEST(KvConcurrency, ConcurrentApplyBatchGroupsStayAtomicAcrossCrash) {
  KvConfig config;
  config.rewind.nvm = TestNvmConfig(32);
  config.rewind.log_impl = LogImpl::kBatch;
  config.rewind.policy = Policy::kNoForce;
  config.rewind.batch_group_size = 4;
  config.shards = 8;
  config.prepare_threads = 4;
  KvStore store(config);
  NvmManager& nvm = store.runtime().nvm();

  // Writer w's keys stay inside its own half of the shard space (see the
  // MultiPut sweep above for why confinement matters after a crash), while
  // still spanning >= 3 shards so the fan-out is really multi-shard.
  const std::size_t writers = 2;
  std::vector<std::vector<std::uint64_t>> groups(writers);
  {
    std::vector<std::set<std::size_t>> owned = {{0, 1, 2, 3}, {4, 5, 6, 7}};
    std::uint64_t k = 1;
    for (std::size_t w = 0; w < writers; ++w) {
      while (groups[w].size() < 8) {
        if (owned[w].count(store.ShardOf(k)) != 0) groups[w].push_back(k);
        ++k;
      }
      std::set<std::size_t> spanned;
      for (std::uint64_t gk : groups[w]) spanned.insert(store.ShardOf(gk));
      ASSERT_GE(spanned.size(), 3u) << "group " << w << " spans too few shards";
    }
  }
  auto batch_for = [&](std::size_t w, std::uint64_t version) {
    std::vector<KvWriteOp> ops;
    for (std::uint64_t gk : groups[w]) {
      KvWriteOp op;
      op.key = gk;
      op.value = TortureValue(gk, version);
      ops.push_back(std::move(op));
    }
    return ops;
  };
  auto check_groups = [&](const char* when, std::uint64_t at) {
    for (std::size_t w = 0; w < writers; ++w) {
      std::string value;
      std::size_t present = 0;
      std::uint64_t version = 0;
      for (std::uint64_t k : groups[w]) {
        if (!store.Get(k, &value)) continue;
        std::uint64_t v = CheckTortureValue(k, value);
        if (present == 0) version = v;
        ASSERT_EQ(v, version)
            << when << " at event " << at << ": writer " << w
            << " group torn (key " << k << ")";
        ++present;
      }
      ASSERT_TRUE(present == 0 || present == groups[w].size())
          << when << " at event " << at << ": writer " << w
          << " group applied a prefix (" << present << "/"
          << groups[w].size() << " keys)";
    }
  };

  const std::uint64_t iters_each = 2;
  std::uint64_t crash_events = 0;
  std::uint64_t at = 1;
  const std::uint64_t step = kTsan ? 131 : 3;
  for (;;) {
    // Unarmed round: the fan-out must engage on the pool before each
    // armed run, so the sweep's recovery covers parallel-applied state.
    for (std::size_t w = 0; w < writers; ++w) {
      std::vector<KvWriteOp> ops = batch_for(w, at * 100 + 99);
      store.ApplyBatch(ops);
    }
    nvm.crash_injector().Arm(at);
    std::atomic<bool> crashed{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] {
        try {
          for (std::uint64_t i = 0; i < iters_each; ++i) {
            if (crashed.load(std::memory_order_relaxed)) return;
            std::vector<KvWriteOp> ops = batch_for(w, at * 100 + i);
            store.ApplyBatch(ops);
          }
        } catch (const CrashException&) {
          crashed.store(true, std::memory_order_relaxed);
        }
      });
    }
    threads.emplace_back([&] {
      // A latch-free reader rides along; it must never see a torn value.
      std::string value;
      std::mt19937_64 rng(11);
      while (!done.load(std::memory_order_relaxed)) {
        for (std::size_t w = 0; w < writers; ++w) {
          std::uint64_t k = groups[w][rng() % groups[w].size()];
          if (store.Get(k, &value)) CheckTortureValue(k, value);
        }
      }
    });
    for (std::size_t w = 0; w < writers; ++w) threads[w].join();
    done.store(true, std::memory_order_relaxed);
    threads.back().join();
    nvm.crash_injector().Disarm();

    if (!crashed.load()) break;  // the armed run fit under `at` events
    ++crash_events;
    nvm.SimulateCrash();
    store.CrashAndRecover();
    check_groups("post-recovery", at);
    for (std::size_t p = 0; p < store.runtime().partitions(); ++p) {
      ASSERT_EQ(store.runtime().tm(p).LogSize(), 0u)
          << "partition " << p << " dirty after recovery at event " << at;
    }
    at += step;
  }
  EXPECT_GT(crash_events, kTsan ? 2u : 30u)
      << "the sweep barely exercised the parallel apply path";
  check_groups("final", at);
  // Every iteration's unarmed round fanned out on the pool.
  EXPECT_GE(store.parallel_applies(), crash_events)
      << "the unarmed rounds never engaged the apply fan-out";
}

}  // namespace
}  // namespace rwd
