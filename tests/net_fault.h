// FaultProxy: a deterministic TCP fault-injection shim for failover
// tests. It listens on an ephemeral port and forwards byte streams to a
// real server, with per-direction faults togglable at any moment from
// the test thread:
//
//   * black-hole  — keep the connection up but deliver nothing (bytes
//     are consumed, mimicking a one-way partition: the peer sees
//     silence, not a reset);
//   * delay      — sleep before forwarding each chunk (slow link);
//   * duplicate  — forward each chunk twice (retransmit storms; a
//     correct length-prefixed protocol must reject or tolerate it);
//   * kill       — hard-close every active connection (crash/reset);
//   * refuse     — accept-and-close new connections (dead endpoint that
//     still answers SYNs).
//
// The proxy is plain blocking threads (one acceptor, two pumps per
// connection) with short recv timeouts so Stop() and fault toggles take
// effect within ~50ms. No randomness anywhere: what a test scripts is
// exactly what the wire does, run after run.
#ifndef REWIND_TESTS_NET_FAULT_H_
#define REWIND_TESTS_NET_FAULT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rwd {
namespace testfault {

class FaultProxy {
 public:
  /// Forwards connections to 127.0.0.1:`target_port`.
  explicit FaultProxy(std::uint16_t target_port)
      : target_port_(target_port) {}

  ~FaultProxy() { Stop(); }

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Binds an ephemeral listen port (see port()) and starts accepting.
  bool Start() {
    listen_fd_ =
        ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) return false;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    port_ = ntohs(bound.sin_port);
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    return true;
  }

  void Stop() {
    if (stop_.exchange(true, std::memory_order_acq_rel)) return;
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    KillConnections();
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& c : conns_) {
        if (c->a.joinable()) c->a.join();
        if (c->b.joinable()) c->b.join();
        ::close(c->client_fd);
        ::close(c->server_fd);
      }
      conns_.clear();
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  std::uint16_t port() const { return port_; }

  // --- fault controls (take effect within one recv timeout, ~50ms) ---

  /// One-way partition: consume but never deliver bytes flowing
  /// client->server and/or server->client.
  void BlackHole(bool client_to_server, bool server_to_client) {
    drop_c2s_.store(client_to_server, std::memory_order_release);
    drop_s2c_.store(server_to_client, std::memory_order_release);
  }

  /// Full partition: silence in both directions AND refuse new
  /// connections (a black-holed endpoint, not a resetting one).
  void Partition(bool on) {
    BlackHole(on, on);
    refuse_.store(on, std::memory_order_release);
  }

  /// Per-chunk forwarding delay, both directions.
  void SetDelayMs(std::uint32_t ms) {
    delay_ms_.store(ms, std::memory_order_release);
  }

  /// Forward every chunk twice (stream protocols must not re-apply).
  void SetDuplicate(bool on) {
    duplicate_.store(on, std::memory_order_release);
  }

  /// Accept-and-close new connections without forwarding.
  void RefuseNew(bool on) { refuse_.store(on, std::memory_order_release); }

  /// Hard-close every active proxied connection (both sides see EOF /
  /// reset — the crash-style fault, vs BlackHole's silence).
  void KillConnections() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& c : conns_) {
      ::shutdown(c->client_fd, SHUT_RDWR);
      ::shutdown(c->server_fd, SHUT_RDWR);
    }
  }

  std::uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t forwarded_c2s() const {
    return fwd_c2s_.load(std::memory_order_relaxed);
  }
  std::uint64_t forwarded_s2c() const {
    return fwd_s2c_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped_bytes() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int client_fd = -1;
    int server_fd = -1;
    std::thread a, b;  ///< client->server and server->client pumps
  };

  static void SetRecvTimeout(int fd) {
    timeval tv{};
    tv.tv_usec = 50 * 1000;  // 50ms: the fault-toggle reaction bound
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  int ConnectTarget() {
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(target_port_);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }

  void AcceptLoop() {
    while (!stop_.load(std::memory_order_acquire)) {
      int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) {
        if (errno == EINTR) continue;
        break;  // listener shut down
      }
      if (refuse_.load(std::memory_order_acquire) ||
          stop_.load(std::memory_order_acquire)) {
        ::close(cfd);
        continue;
      }
      int sfd = ConnectTarget();
      if (sfd < 0) {
        ::close(cfd);
        continue;
      }
      int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      SetRecvTimeout(cfd);
      SetRecvTimeout(sfd);
      connections_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Conn>();
      conn->client_fd = cfd;
      conn->server_fd = sfd;
      Conn* c = conn.get();
      c->a = std::thread([this, c] {
        Pump(c->client_fd, c->server_fd, &drop_c2s_, &fwd_c2s_);
      });
      c->b = std::thread([this, c] {
        Pump(c->server_fd, c->client_fd, &drop_s2c_, &fwd_s2c_);
      });
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(std::move(conn));
    }
  }

  /// One direction of one connection: recv on `from`, apply the faults,
  /// send to `to`. Ends on EOF/error of either side or Stop().
  void Pump(int from, int to, std::atomic<bool>* drop,
            std::atomic<std::uint64_t>* fwd) {
    char buf[16384];
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) break;
      ssize_t n = ::recv(from, buf, sizeof(buf), 0);
      if (n == 0) break;
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;  // timeout tick: re-check stop and fault flags
        }
        break;
      }
      if (drop->load(std::memory_order_acquire)) {
        // Black-holed: the bytes vanish. The sender's TCP stack saw
        // them acked by the proxy, so from its view the network simply
        // went silent — exactly a one-way partition.
        dropped_.fetch_add(static_cast<std::uint64_t>(n),
                           std::memory_order_relaxed);
        continue;
      }
      std::uint32_t delay = delay_ms_.load(std::memory_order_acquire);
      if (delay != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        // Re-check: a partition raised during the delay wins.
        if (drop->load(std::memory_order_acquire)) {
          dropped_.fetch_add(static_cast<std::uint64_t>(n),
                             std::memory_order_relaxed);
          continue;
        }
      }
      int copies = duplicate_.load(std::memory_order_acquire) ? 2 : 1;
      bool sent = true;
      for (int k = 0; k < copies && sent; ++k) {
        sent = SendAll(to, buf, static_cast<std::size_t>(n));
      }
      if (!sent) break;
      fwd->fetch_add(static_cast<std::uint64_t>(n),
                     std::memory_order_relaxed);
    }
    // Half-close propagation: when one direction dies, wake the other
    // side so the peer observes EOF instead of hanging.
    ::shutdown(to, SHUT_WR);
    ::shutdown(from, SHUT_RD);
  }

  static bool SendAll(int fd, const char* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    return true;
  }

  std::uint16_t target_port_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> drop_c2s_{false};
  std::atomic<bool> drop_s2c_{false};
  std::atomic<bool> refuse_{false};
  std::atomic<bool> duplicate_{false};
  std::atomic<std::uint32_t> delay_ms_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> fwd_c2s_{0};
  std::atomic<std::uint64_t> fwd_s2c_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace testfault
}  // namespace rwd

#endif  // REWIND_TESTS_NET_FAULT_H_
