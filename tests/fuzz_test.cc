// Randomized property tests: long mixed operation sequences checked against
// volatile reference structures, with periodic crash/recovery cycles.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <random>

#include "src/core/transaction_manager.h"
#include "src/log/adll.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

// ADLL vs std::deque under a random append/remove stream with periodic
// simulated crashes (clean-point crashes: between operations).
TEST(AdllFuzz, MatchesDequeUnderRandomOpsAndCrashes) {
  NvmManager nvm(TestNvmConfig(16));
  auto* ctrl = static_cast<Adll::Control*>(nvm.Alloc(sizeof(Adll::Control)));
  Adll list(&nvm, ctrl);
  std::deque<AdllNode*> ref;
  std::mt19937_64 rng(2025);
  std::uintptr_t next_elem = 1;
  for (int step = 0; step < 20000; ++step) {
    int dice = static_cast<int>(rng() % 10);
    if (dice < 6 || ref.empty()) {
      AdllNode* n = list.Append(reinterpret_cast<void*>(next_elem++));
      ref.push_back(n);
    } else {
      std::size_t idx = rng() % ref.size();
      AdllNode* n = ref[idx];
      list.Remove(n);
      nvm.Free(n);
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    if (step % 2500 == 2499) {
      // All ADLL updates are non-temporal: a between-ops crash loses
      // nothing.
      nvm.SimulateCrash();
      list.Recover();
    }
    if (step % 500 == 0) {
      std::size_t i = 0;
      for (AdllNode* n = list.head(); n != nullptr; n = n->next, ++i) {
        ASSERT_LT(i, ref.size());
        ASSERT_EQ(n, ref[i]) << "step " << step;
      }
      ASSERT_EQ(i, ref.size());
    }
  }
  EXPECT_EQ(list.CountNodes(), ref.size());
}

// Long-running TM fuzz: random transactions over a word array, some
// committed, some rolled back, periodic checkpoints and crash/recovery
// cycles; the array must always equal the committed reference.
class TmFuzzTest : public ::testing::TestWithParam<RewindConfig> {};

TEST_P(TmFuzzTest, RandomTransactionsWithCrashes) {
  NvmManager nvm(GetParam().nvm);
  TransactionManager tm(&nvm, GetParam());
  constexpr std::size_t kWords = 64;
  auto* d = static_cast<std::uint64_t*>(nvm.Alloc(kWords * 8));
  std::uint64_t ref[kWords] = {0};
  std::mt19937_64 rng(GetParam().force() ? 11 : 22);
  for (int round = 0; round < 120; ++round) {
    std::uint32_t tid = tm.Begin();
    std::uint64_t staged[kWords];
    std::copy(std::begin(ref), std::end(ref), std::begin(staged));
    int writes = 1 + static_cast<int>(rng() % 12);
    for (int w = 0; w < writes; ++w) {
      std::size_t i = rng() % kWords;
      std::uint64_t v = rng();
      tm.Write(tid, &d[i], v);
      staged[i] = v;
    }
    int outcome = static_cast<int>(rng() % 10);
    if (outcome < 6) {
      tm.Commit(tid);
      std::copy(std::begin(staged), std::end(staged), std::begin(ref));
    } else if (outcome < 9) {
      tm.Rollback(tid);
    } else {
      // Crash with the transaction in flight; random eviction.
      nvm.SimulateCrash(/*evict_probability=*/0.3, rng());
      tm.ForgetVolatileState();
      tm.Recover();
    }
    if (round % 25 == 24 && !GetParam().force()) tm.Checkpoint();
    for (std::size_t i = 0; i < kWords; ++i) {
      ASSERT_EQ(tm.Read(&d[i]), ref[i]) << "round " << round << " word " << i;
    }
  }
  if (!GetParam().force()) tm.Checkpoint();
  EXPECT_EQ(tm.LogSize(), 0u);
  EXPECT_EQ(nvm.heap().double_free_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, TmFuzzTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<RewindConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace rwd
