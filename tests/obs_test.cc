// RewindScope (src/obs) unit tests: histogram bucket math against a
// sorted-vector oracle, snapshot merging, concurrent recording (the TSan
// job runs this torture), the crash-injector recording gate, and the
// trace ring's JSON dump.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "src/nvm/crash.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace rwd {
namespace obs {
namespace {

// --- bucket boundaries -----------------------------------------------------

TEST(HistogramBuckets, SmallValuesMapExactly) {
  // Below kSubBuckets (32) every nanosecond value has its own bucket.
  for (std::uint64_t ns = 0; ns < Histogram::kSubBuckets; ++ns) {
    EXPECT_EQ(Histogram::BucketIndex(ns), ns);
  }
  EXPECT_EQ(Histogram::BucketIndex(32), Histogram::kSubBuckets);
}

TEST(HistogramBuckets, PowerOfTwoEdges) {
  // Each power of two >= 32 starts a fresh chunk of 32 sub-buckets, and
  // the value one below it lands in the previous chunk's last bucket.
  for (int exp = 5; exp < 36; ++exp) {
    std::uint64_t lo = std::uint64_t{1} << exp;
    std::size_t chunk_start =
        static_cast<std::size_t>(exp - 5 + 1) * Histogram::kSubBuckets;
    EXPECT_EQ(Histogram::BucketIndex(lo), chunk_start) << "exp=" << exp;
    EXPECT_EQ(Histogram::BucketIndex(lo - 1), chunk_start - 1)
        << "exp=" << exp;
  }
}

TEST(HistogramBuckets, MonotoneAndClamped) {
  // Index never decreases as the value grows, and values at or above
  // 2^36 ns all clamp into the final bucket.
  std::size_t prev = 0;
  for (std::uint64_t ns = 0; ns < (1u << 20); ns += 97) {
    std::size_t b = Histogram::BucketIndex(ns);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, Histogram::kBuckets);
    prev = b;
  }
  EXPECT_EQ(Histogram::BucketIndex(std::uint64_t{1} << 36),
            Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
}

TEST(HistogramBuckets, MidpointLandsInItsOwnBucket) {
  for (std::size_t b = 0; b < Histogram::kBuckets - 1; ++b) {
    auto mid = static_cast<std::uint64_t>(Histogram::BucketMidNs(b));
    EXPECT_EQ(Histogram::BucketIndex(mid), b) << "bucket=" << b;
  }
}

// --- percentiles against a sorted oracle -----------------------------------

double OraclePercentile(std::vector<std::uint64_t> values, double p) {
  std::sort(values.begin(), values.end());
  std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p / 100.0 * values.size())));
  return static_cast<double>(values[rank - 1]);
}

TEST(HistogramPercentiles, TracksSortedOracle) {
  Histogram h;
  std::mt19937_64 rng(42);
  // Log-uniform over [100 ns, 10 ms] — the range real phase timings span.
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    double e = std::uniform_real_distribution<double>(2.0, 7.0)(rng);
    auto v = static_cast<std::uint64_t>(std::pow(10.0, e));
    values.push_back(v);
    h.Record(v);
  }
  Histogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.count, values.size());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    double got = snap.PercentileNs(p);
    double want = OraclePercentile(values, p);
    // Bucket quantization bounds the relative error by 1/32 ≈ 3.1%;
    // allow 6% for the interaction with nearest-rank rounding.
    EXPECT_NEAR(got, want, want * 0.06) << "p=" << p;
  }
  EXPECT_LE(snap.PercentileNs(100),
            static_cast<double>(
                *std::max_element(values.begin(), values.end())));
}

TEST(HistogramPercentiles, EmptyAndSingle) {
  Histogram h;
  EXPECT_EQ(h.Snap().PercentileNs(99), 0.0);
  h.Record(1000);
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 1u);
  // One sample: every percentile is that sample (within bucket width),
  // and never above the recorded max.
  EXPECT_NEAR(snap.PercentileNs(50), 1000.0, 1000.0 * 0.04);
  EXPECT_LE(snap.PercentileNs(99.9), 1000.0);
}

TEST(HistogramSnapshot, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = rng() % 1000000;
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  Histogram::Snapshot merged = a.Snap();
  merged.Merge(b.Snap());
  Histogram::Snapshot want = combined.Snap();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum_ns, want.sum_ns);
  EXPECT_EQ(merged.max_ns, want.max_ns);
  EXPECT_EQ(merged.buckets, want.buckets);
  EXPECT_EQ(merged.PercentileNs(99), want.PercentileNs(99));
}

// --- concurrent torture (meaningful under TSan) ----------------------------

TEST(HistogramConcurrency, ParallelRecordersLoseNothing) {
  Histogram h;
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::mt19937_64 rng(t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(rng() % 100000);
        c.Add();
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Concurrent snapshots while recorders run: mid-flight counts are only
  // bounded (count/sum/bucket increments are separate relaxed ops), but
  // snapping must be race-free (TSan) and never read garbage.
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  for (int i = 0; i < 50; ++i) {
    Histogram::Snapshot s = h.Snap();
    EXPECT_LE(s.count, kTotal);
    (void)s.PercentileNs(99);
  }
  for (auto& t : threads) t.join();
  // Quiesced: nothing was lost, and the buckets account for every sample.
  Histogram::Snapshot s = h.Snap();
  EXPECT_EQ(s.count, kTotal);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t bc : s.buckets) bucket_sum += bc;
  EXPECT_EQ(bucket_sum, kTotal);
  EXPECT_EQ(c.Value(), kTotal);
}

// --- registry --------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStablePointers) {
  Registry& reg = Registry::Get();
  Histogram* h1 = reg.GetHistogram("obs_test.stable");
  Histogram* h2 = reg.GetHistogram("obs_test.stable");
  EXPECT_EQ(h1, h2);
  EXPECT_NE(reg.GetCounter("obs_test.stable"),
            nullptr);  // same name, distinct metric kind is fine
}

TEST(Registry, SnapshotExpandsHistograms) {
  Registry& reg = Registry::Get();
  reg.GetHistogram("obs_test.expand")->Record(5000);
  reg.GetCounter("obs_test.expand_counter")->Add(3);
  reg.GetGauge("obs_test.expand_gauge")->Set(1.5);
  std::vector<std::string> names;
  for (const Sample& s : reg.Snapshot()) names.push_back(s.name);
  for (const char* want :
       {"obs_test.expand.count", "obs_test.expand.p50_us",
        "obs_test.expand.p90_us", "obs_test.expand.p99_us",
        "obs_test.expand.p999_us", "obs_test.expand.mean_us",
        "obs_test.expand.max_us", "obs_test.expand_counter",
        "obs_test.expand_gauge"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end())
        << "missing " << want;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

// --- the crash-injector recording gate -------------------------------------

TEST(RecordingGate, ArmedInjectorSilencesHistogramsNotCounters) {
  Histogram h;
  Counter c;
  h.Record(100);
  ASSERT_EQ(h.Snap().count, 1u);
  {
    CrashInjector inj;
    inj.Arm(1u << 30);  // far away: armed but never fires
    EXPECT_FALSE(RecordingEnabled());
    h.Record(100);              // gated: must not land...
    c.Add();                    // ...but counters still count
    { ScopedTimer t(&h, "gated.scope"); }
    EXPECT_EQ(h.Snap().count, 1u);
    EXPECT_EQ(c.Value(), 1u);
    inj.Disarm();
    EXPECT_TRUE(RecordingEnabled());
    h.Record(100);  // resumed
    EXPECT_EQ(h.Snap().count, 2u);
  }
  // Re-arm/destructor balance: the gate must be open again.
  EXPECT_TRUE(RecordingEnabled());
}

TEST(RecordingGate, DestructorReleasesArmedPause) {
  {
    CrashInjector inj;
    inj.Arm(1u << 30);
    inj.Arm(1u << 30);  // re-arming must not double-pause
    EXPECT_FALSE(RecordingEnabled());
  }  // destroyed while armed
  EXPECT_TRUE(RecordingEnabled());
}

TEST(RecordingGate, TraceEmitGatedWhileArmed) {
  TraceEnable(1024);
  TraceEmit("gate.visible", NowNs(), 10);
  std::size_t before = TraceEventCount();
  EXPECT_GE(before, 1u);
  {
    CrashInjector inj;
    inj.Arm(1u << 30);
    TraceEmit("gate.hidden", NowNs(), 10);
    EXPECT_EQ(TraceEventCount(), before);
    inj.Disarm();
  }
  TraceDisable();
}

// --- tracing ---------------------------------------------------------------

TEST(Trace, DisabledEmitIsNoOp) {
  TraceDisable();
  EXPECT_FALSE(TraceEnabled());
  TraceEmit("never.stored", 1, 1);  // must not crash or allocate rings
}

TEST(Trace, EmitsAndDumpsChromeJson) {
  TraceEnable(1024);
  EXPECT_TRUE(TraceEnabled());
  TraceEmit("obs_test.phase", 1000000, 2500);
  std::thread other([] { TraceEmit("obs_test.other_thread", 2000000, 500); });
  other.join();
  EXPECT_GE(TraceEventCount(), 2u);

  std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(TraceDumpJson(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::string json = ss.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.other_thread\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  TraceDisable();
  std::remove(path.c_str());
}

TEST(Trace, RingWrapsKeepingMostRecent) {
  // A thread's ring keeps its FIRST-allocation capacity across
  // Disable/Enable cycles (1024 from the earlier test in this binary);
  // re-enabling clears contents but cannot shrink it.
  TraceEnable(16);
  for (int i = 0; i < 3000; ++i) {
    TraceEmit("obs_test.wrap", static_cast<std::uint64_t>(i) * 1000, 10);
  }
  // Bounded: event count never exceeds ring capacity, however many emits.
  EXPECT_LE(TraceEventCount(), 1024u + 16u);
  TraceDisable();
}

// --- slow-op log -----------------------------------------------------------

TEST(SlowOp, ThresholdZeroDisables) {
  // Nothing to assert beyond "does not crash / does not log": a zero
  // threshold must return immediately even for huge durations.
  SlowOpLog("TEST", 1, ~std::uint64_t{0} / 2, 0);
  SlowOpLog("TEST", 1, 50, 100);  // under threshold
}

}  // namespace
}  // namespace obs
}  // namespace rwd
