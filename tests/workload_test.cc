// Tests of the YCSB-style workload subsystem: distribution properties,
// the A-F presets, and the driver running against RewindKV.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

KvConfig SmallKvConfig() {
  KvConfig cfg;
  cfg.rewind.nvm = TestNvmConfig(64);
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 32;
  cfg.rewind.batch_group_size = 4;
  cfg.shards = 4;
  return cfg;
}

TEST(Choosers, ZipfianStaysInRangeAndIsSkewed) {
  ZipfianChooser zipf(1000);
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t r = zipf.Next(rng);
    ASSERT_LT(r, 1000u);
    ++counts[r];
  }
  // Rank 0 must dominate a mid-pack rank by a wide margin (theta=0.99).
  EXPECT_GT(counts[0], 20u * (counts[500] + 1));
  // ... and the hottest ~1% of ranks should carry a large share.
  std::uint64_t head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, 20000u / 5);
}

TEST(Choosers, ScrambledZipfianSpreadsTheHotSet) {
  ScrambledZipfianChooser scrambled(1000);
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> counts(1000, 0);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t r = scrambled.Next(rng);
    ASSERT_LT(r, 1000u);
    ++counts[r];
  }
  // The hottest item is no longer item 0 in general, but the skew remains:
  std::uint64_t max_count = 0;
  for (auto c : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 20000u / 100);
}

TEST(Workload, PresetsMatchTheYcsbMixes) {
  WorkloadSpec a = WorkloadSpec::Preset('a');
  EXPECT_DOUBLE_EQ(a.read_prop, 0.5);
  EXPECT_DOUBLE_EQ(a.update_prop, 0.5);
  WorkloadSpec c = WorkloadSpec::Preset('C');  // case-insensitive
  EXPECT_DOUBLE_EQ(c.read_prop, 1.0);
  WorkloadSpec d = WorkloadSpec::Preset('d');
  EXPECT_EQ(d.dist, KeyDist::kLatest);
  EXPECT_DOUBLE_EQ(d.insert_prop, 0.05);
  WorkloadSpec e = WorkloadSpec::Preset('e');
  EXPECT_DOUBLE_EQ(e.scan_prop, 0.95);
  WorkloadSpec f = WorkloadSpec::Preset('f');
  EXPECT_DOUBLE_EQ(f.rmw_prop, 0.5);
}

TEST(Workload, MakeValueIsDeterministicAndSized) {
  EXPECT_EQ(WorkloadDriver::MakeValue(42, 7, 100),
            WorkloadDriver::MakeValue(42, 7, 100));
  EXPECT_NE(WorkloadDriver::MakeValue(42, 7, 100),
            WorkloadDriver::MakeValue(42, 8, 100));
  EXPECT_EQ(WorkloadDriver::MakeValue(1, 0, 37).size(), 37u);
  EXPECT_EQ(WorkloadDriver::MakeValue(1, 0, 0).size(), 0u);
}

TEST(Workload, EveryPresetRunsToCompletion) {
  for (char w : {'a', 'b', 'c', 'd', 'e', 'f'}) {
    KvStore store(SmallKvConfig());
    WorkloadSpec spec = WorkloadSpec::Preset(w);
    spec.record_count = 300;
    spec.op_count = 600;
    spec.value_size = 64;
    spec.max_scan_len = 20;
    spec.threads = 2;
    WorkloadDriver driver(&store, spec);
    EXPECT_EQ(driver.Load(), 300u);
    EXPECT_EQ(store.Size(), 300u);
    WorkloadResult r = driver.Run();
    EXPECT_EQ(r.ops(), 600u) << "workload " << w;
    if (w == 'd') {
      // The latest distribution may race a concurrent insert whose commit
      // is not yet published; a small miss rate is legitimate (as in YCSB).
      EXPECT_LE(r.read_misses, r.reads / 10) << "workload d";
    } else {
      EXPECT_EQ(r.read_misses, 0u) << "workload " << w;
    }
    EXPECT_EQ(store.Size(), 300u + r.inserts) << "workload " << w;
    if (w == 'e') {
      EXPECT_GT(r.scanned_items, 0u);
    }
  }
}

TEST(Workload, CrashMidWorkloadRecoversTheLoadedKeySpace) {
  KvStore store(SmallKvConfig());
  WorkloadSpec spec = WorkloadSpec::Preset('a');
  spec.record_count = 200;
  spec.op_count = 2000;
  spec.value_size = 48;
  spec.threads = 1;
  WorkloadDriver driver(&store, spec);
  driver.Load();
  bool crashed = RunWithCrashAt(&store.runtime().nvm(), 5000,
                                [&] { driver.Run(); });
  if (crashed) store.CrashAndRecover();
  // Every loaded key survives with SOME committed value; the interrupted
  // update (if any) rolled back to its predecessor.
  for (std::uint64_t k = 1; k <= 200; ++k) {
    EXPECT_TRUE(store.Get(k, nullptr)) << "key " << k;
  }
  EXPECT_GE(store.Size(), 200u);
  for (std::size_t s = 0; s < store.shards(); ++s) {
    EXPECT_EQ(store.runtime().tm(s).LogSize(), 0u) << "shard " << s;
  }
}

}  // namespace
}  // namespace rwd
