// RewindGuard crash tests (fork/SIGKILL — deliberately NOT part of the
// TSan job; the thread-based guard tests live in guard_test.cc).
//
// Same topology as repl_restart_test.cc: every node is a forked child
// running a full KvStore + RewindGuard + KvServer, reporting its
// ephemeral port through a pipe and parking until SIGKILLed. The parent
// verifies the two PR 10 crash guarantees from the outside:
//
//  * the "repl_epoch" catalog root survives SIGKILL on a file-backed
//    heap: a restarted node re-promotes to a strictly HIGHER epoch than
//    any it led at before the crash — two leaderships never share an
//    epoch, even across power loss;
//  * the automatic failover sweep: a guarded leader is SIGKILLed with a
//    pipeline of writes in flight and the follower self-promotes — NO
//    PROMOTE op is ever issued — within two lease intervals, after
//    which every write the client saw acked is served by the new
//    leader, reachable through the FailoverClient rotation path.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/kv/kv_store.h"
#include "src/repl/applier.h"
#include "src/repl/follower_agent.h"
#include "src/repl/guard.h"
#include "src/repl/replication_log.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace rwd {
namespace {

constexpr std::uint32_t kLeaseMs = 400;

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "guard_" + name + "_" +
         std::to_string(::getpid()) + ".heap";
}

std::string Val(std::uint64_t key, std::uint64_t version) {
  return "g" + std::to_string(version) + "-" + std::to_string(key) + "-" +
         std::string(24, 'q');
}

KvConfig NodeConfig(const std::string& heap_file = "") {
  KvConfig cfg;
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.layers = Layers::kOne;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 64;
  cfg.rewind.nvm.mode = NvmMode::kFast;
  cfg.rewind.nvm.heap_bytes = std::size_t{32} << 20;
  cfg.rewind.nvm.write_latency_ns = 0;
  cfg.rewind.nvm.fence_latency_ns = 0;
  cfg.rewind.nvm.heap_file = heap_file;
  cfg.shards = 3;
  cfg.checkpoint_period_ms = 0;
  return cfg;
}

/// A forked server node (see repl_restart_test.cc): SIGKILL only, so
/// destructors never run — exactly like a real crash.
struct ChildNode {
  pid_t pid = -1;
  std::uint16_t port = 0;

  ChildNode() = default;
  ChildNode(ChildNode&& other) noexcept
      : pid(other.pid), port(other.port) {
    other.pid = -1;
  }
  ChildNode& operator=(ChildNode&& other) noexcept {
    if (this != &other) {
      Kill();
      pid = other.pid;
      port = other.port;
      other.pid = -1;
    }
    return *this;
  }
  ChildNode(const ChildNode&) = delete;
  ChildNode& operator=(const ChildNode&) = delete;

  void Kill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
  ~ChildNode() { Kill(); }
};

/// Forks a node. `setup` runs in the child and must return the
/// listening port (0 = failure, child exits 1). The child never returns.
template <typename Setup>
ChildNode ForkNode(Setup setup) {
  int pipe_fd[2];
  if (::pipe(pipe_fd) != 0) return {};
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipe_fd[0]);
    std::uint16_t port = setup();
    if (port == 0) ::_exit(1);
    if (::write(pipe_fd[1], &port, sizeof(port)) != sizeof(port)) ::_exit(1);
    ::close(pipe_fd[1]);
    for (;;) ::pause();
  }
  ::close(pipe_fd[1]);
  ChildNode node;
  node.pid = pid;
  ssize_t n = ::read(pipe_fd[0], &node.port, sizeof(node.port));
  ::close(pipe_fd[0]);
  if (n != sizeof(node.port)) {
    node.Kill();
    node.port = 0;
  }
  return node;
}

/// Guarded leader child: DRAM store + log + RewindGuard (leader role) +
/// semi-synchronous KvServer. A huge lease would mask nothing here —
/// the leader dies by SIGKILL, not by fencing — but the guard stamps
/// epochs on acks and heartbeats on the stream.
ChildNode ForkGuardLeader() {
  return ForkNode([]() -> std::uint16_t {
    static KvStore store(NodeConfig());
    static repl::ReplicationLog log(8192);
    store.SetReplicationLog(&log);
    repl::GuardConfig gcfg;
    gcfg.lease_ms = kLeaseMs;
    gcfg.start_leader = true;
    gcfg.jitter_seed = 21;
    static repl::RewindGuard guard(&store, gcfg);
    serve::ServerConfig cfg;
    cfg.port = 0;
    cfg.workers = 2;
    cfg.batch_window_us = 100;
    cfg.sync_repl = true;
    cfg.sync_repl_timeout_ms = 2000;
    cfg.guard = &guard;
    static serve::KvServer server(&store, cfg);
    if (!server.Start()) return 0;
    guard.Start();
    return server.port();
  });
}

/// Guarded follower child: applier + agent chasing `leader_port`, with
/// the guard's election wired to KvServer::Promote — the ONLY path to
/// leadership in this test; the parent never sends a PROMOTE op.
ChildNode ForkGuardFollower(std::uint16_t leader_port) {
  return ForkNode([leader_port]() -> std::uint16_t {
    static KvStore store(NodeConfig());
    static repl::ReplicationLog log(8192);
    store.SetReplicationLog(&log);
    static repl::ReplApplier applier(&store);
    repl::GuardConfig gcfg;
    gcfg.lease_ms = kLeaseMs;
    gcfg.start_leader = false;
    gcfg.jitter_seed = 22;
    static repl::RewindGuard guard(&store, gcfg);
    static repl::FollowerAgent agent(&applier, "127.0.0.1", leader_port,
                                     &guard);
    serve::ServerConfig cfg;
    cfg.port = 0;
    cfg.workers = 2;
    cfg.batch_window_us = 100;
    cfg.read_only = true;
    cfg.applier = &applier;
    cfg.guard = &guard;
    cfg.on_promote = [] { agent.Stop(); };
    static serve::KvServer server(&store, cfg);
    if (!server.Start()) return 0;
    guard.on_election = [] { server.Promote(); };
    guard.Start();
    agent.Start();
    return server.port();
  });
}

/// Epoch-persistence child: file-backed store (re-attached when the
/// heap exists) whose guard promotes once at boot, then serves so the
/// parent can read the epoch back via REPL_STATUS.
ChildNode ForkEpochNode(const std::string& heap_file) {
  return ForkNode([heap_file]() -> std::uint16_t {
    KvConfig kv_cfg = NodeConfig(heap_file);
    static std::unique_ptr<KvStore> store;
    struct stat st;
    bool reattach =
        ::stat(heap_file.c_str(), &st) == 0 && st.st_size > 0;
    try {
      store = reattach ? KvStore::Open(heap_file, kv_cfg)
                       : std::make_unique<KvStore>(kv_cfg);
    } catch (...) {
      return 0;
    }
    static repl::ReplicationLog log(1024);
    store->SetReplicationLog(&log);
    repl::GuardConfig gcfg;
    gcfg.lease_ms = 60000;  // no peer: the lease never matters here
    gcfg.start_leader = true;
    static repl::RewindGuard guard(store.get(), gcfg);
    guard.Promote();  // epoch = persisted max + 1, persisted again
    serve::ServerConfig cfg;
    cfg.port = 0;
    cfg.workers = 2;
    cfg.batch_window_us = 100;
    cfg.guard = &guard;
    static serve::KvServer server(store.get(), cfg);
    if (!server.Start()) return 0;
    return server.port();
  });
}

/// Polls `port`'s STATS until `pred(keys)` holds. False on timeout.
bool WaitForKeys(std::uint16_t port,
                 const std::function<bool(std::uint64_t)>& pred,
                 std::uint32_t timeout_ms = 15000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    serve::KvClient probe;
    serve::StatsReply stats;
    if (probe.Connect("127.0.0.1", port, 2000) && probe.Stats(&stats) &&
        pred(stats.keys)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Reads the node's guard state over REPL_STATUS. False when the node
/// is unreachable or runs without a guard.
bool ReadGuardStatus(std::uint16_t port, serve::ReplStatusReply* out) {
  serve::KvClient probe;
  return probe.Connect("127.0.0.1", port, 2000) && probe.ReplStatus(out) &&
         out->has_role;
}

// The epoch root outlives SIGKILL: each reborn node promotes past every
// epoch it ever persisted, alongside the surviving user data.
TEST(GuardRestart, EpochRootSurvivesSigkill) {
  std::string heap = TmpPath("epoch");
  ::unlink(heap.c_str());

  std::uint64_t prev_epoch = 0;
  for (int boot = 0; boot < 3; ++boot) {
    SCOPED_TRACE("boot " + std::to_string(boot));
    ChildNode node = ForkEpochNode(heap);
    ASSERT_NE(node.port, 0u);

    serve::ReplStatusReply status;
    ASSERT_TRUE(ReadGuardStatus(node.port, &status));
    EXPECT_TRUE(status.leader);
    // Boot N has promoted N+1 times across history; SIGKILL between
    // boots must never hand an already-used epoch out again.
    EXPECT_GT(status.epoch, prev_epoch);
    EXPECT_EQ(status.epoch, static_cast<std::uint64_t>(boot) + 1);
    prev_epoch = status.epoch;

    // Data and epoch share the heap: both must come back.
    serve::KvClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", node.port, 5000));
    ASSERT_TRUE(client.Put(100 + static_cast<std::uint64_t>(boot),
                           Val(100, static_cast<std::uint64_t>(boot))));
    std::string value;
    for (int b = 0; b <= boot; ++b) {
      ASSERT_TRUE(
          client.Get(100 + static_cast<std::uint64_t>(b), &value));
      EXPECT_EQ(value, Val(100, static_cast<std::uint64_t>(b)));
    }
    node.Kill();  // SIGKILL: no destructors, no clean close
  }
  ::unlink(heap.c_str());
}

// The acceptance sweep: SIGKILL the guarded leader with writes in
// flight. The follower's lease lapses and it elects itself — the
// parent never issues PROMOTE — within two lease intervals, serving
// every write whose ack the client read, and taking new writes through
// the FailoverClient rotation path.
TEST(GuardRestart, AutoFailoverServesEveryAckedWriteWithoutPromote) {
  ChildNode leader = ForkGuardLeader();
  ASSERT_NE(leader.port, 0u);
  ChildNode follower = ForkGuardFollower(leader.port);
  ASSERT_NE(follower.port, 0u);

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", leader.port, 5000));
  // Establish the replication link before the sweep (the first write
  // can race the subscription) and pin down the pre-crash roles.
  ASSERT_TRUE(client.Put(1, Val(1, 0)));
  ASSERT_TRUE(WaitForKeys(follower.port,
                          [](std::uint64_t keys) { return keys >= 1; }));
  serve::ReplStatusReply status;
  ASSERT_TRUE(ReadGuardStatus(follower.port, &status));
  ASSERT_FALSE(status.leader);

  // Pipeline writes; kill the leader once 60 acks have been read, with
  // more still in flight. Every ack READ is a durability promise.
  std::map<std::uint64_t, std::string> acked = {{1, Val(1, 0)}};
  constexpr std::size_t kDepth = 32;
  constexpr std::size_t kKillAfter = 60;
  std::vector<std::uint64_t> queued;
  std::size_t read_at = 0;
  bool leader_dead = false;
  for (std::uint64_t key = 2; key <= 300 && !leader_dead; ++key) {
    client.QueuePut(key, Val(key, 0));
    queued.push_back(key);
    while (client.pending() >= kDepth) {
      serve::KvClient::Reply reply;
      if (!client.Flush() || !client.ReadReply(&reply)) {
        leader_dead = true;
        break;
      }
      if (reply.status == serve::Status::kOk) {
        std::uint64_t k = queued[read_at];
        acked[k] = Val(k, 0);
      }
      ++read_at;
      if (acked.size() == kKillAfter) leader.Kill();
    }
  }
  while (!leader_dead && read_at < queued.size()) {
    serve::KvClient::Reply reply;
    if (!client.Flush() || !client.ReadReply(&reply)) break;
    if (reply.status == serve::Status::kOk) {
      std::uint64_t k = queued[read_at];
      acked[k] = Val(k, 0);
    }
    ++read_at;
    if (acked.size() == kKillAfter) leader.Kill();
  }
  leader.Kill();  // idempotent
  auto killed_at = std::chrono::steady_clock::now();
  ASSERT_GE(acked.size(), kKillAfter);

  // The follower must self-promote. Design bound: election delay is
  // clamped under 15/8 lease, so role=leader lands within two lease
  // intervals of the last heartbeat; allow scheduling slack on top.
  bool promoted = false;
  while (!promoted &&
         std::chrono::steady_clock::now() - killed_at <
             std::chrono::milliseconds(2 * kLeaseMs + 2000)) {
    if (ReadGuardStatus(follower.port, &status) && status.leader) {
      promoted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(promoted) << "follower never self-promoted";
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - killed_at)
                     .count();
  // Soft-assert the latency bound with slack for a loaded CI box: the
  // guard's own clamp is 15/8 lease = 750ms after the last heartbeat.
  EXPECT_LE(elapsed, 2 * kLeaseMs + 2000)
      << "promotion took " << elapsed << "ms";
  EXPECT_GT(status.epoch, 0u);

  // Every acked write is served by the self-promoted leader, reached
  // the way a real client would: FailoverClient rotating off the dead
  // endpoint (which refuses connections — the hint path is exercised
  // by the in-process partition test, where the old leader still runs).
  serve::FailoverClient::Config fc;
  fc.endpoints = {"127.0.0.1:" + std::to_string(leader.port),
                  "127.0.0.1:" + std::to_string(follower.port)};
  fc.timeout_ms = 2000;
  fc.max_attempts = 8;
  fc.backoff_base_ms = 10;
  fc.backoff_cap_ms = 50;
  serve::FailoverClient fclient(fc);
  std::string value;
  for (const auto& [key, expect] : acked) {
    ASSERT_TRUE(fclient.Get(key, &value))
        << "acked key " << key << " lost after auto-failover";
    EXPECT_EQ(value, expect);
  }
  EXPECT_EQ(fclient.endpoint(),
            "127.0.0.1:" + std::to_string(follower.port));

  // The new leader takes writes, stamped with its (bumped) epoch.
  std::uint64_t gtid = 0;
  ASSERT_TRUE(fclient.Put(9999, Val(9999, 1), &gtid));
  EXPECT_EQ(fclient.last_epoch(), status.epoch);
  ASSERT_TRUE(fclient.Get(9999, &value));
  EXPECT_EQ(value, Val(9999, 1));
}

}  // namespace
}  // namespace rwd
