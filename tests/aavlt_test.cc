// Tests for the Atomic AVL Tree (paper Section 3.4): functional behaviour
// against a reference map, AVL invariants, and crash-point sweeps.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <vector>

#include "src/log/aavlt.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

LogRecord* NewRec(NvmManager* nvm, std::uint64_t lsn, std::uint32_t tid) {
  LogRecord local{};
  local.lsn = lsn;
  local.tid = tid;
  local.type = LogRecordType::kUpdate;
  local.flags = LogRecord::kFlagUndoable;
  auto* rec = static_cast<LogRecord*>(nvm->Alloc(sizeof(LogRecord)));
  nvm->StoreNTObject(rec, local);
  nvm->Fence();
  return rec;
}

std::vector<std::uint64_t> ChainLsns(const Aavlt& t, std::uint32_t tid) {
  std::vector<std::uint64_t> out;
  for (LogRecord* r = t.ChainOf(tid); r != nullptr;
       r = r->hint.chain.tx_prev) {
    out.push_back(r->lsn);
  }
  return out;  // newest first
}

TEST(Aavlt, InsertChainsRecordsNewestFirst) {
  NvmManager nvm(TestNvmConfig(2));
  Aavlt tree(&nvm);
  tree.Insert(NewRec(&nvm, 1, 7));
  tree.Insert(NewRec(&nvm, 2, 7));
  tree.Insert(NewRec(&nvm, 3, 7));
  auto lsns = ChainLsns(tree, 7);
  ASSERT_EQ(lsns.size(), 3u);
  EXPECT_EQ(lsns[0], 3u);
  EXPECT_EQ(lsns[1], 2u);
  EXPECT_EQ(lsns[2], 1u);
  EXPECT_EQ(tree.txn_count(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(Aavlt, ManyTransactionsKeepAvlBalanced) {
  NvmManager nvm(TestNvmConfig(4));
  Aavlt tree(&nvm);
  std::uint64_t lsn = 0;
  // Ascending keys: the worst case for an unbalanced BST.
  for (std::uint32_t tid = 1; tid <= 1024; ++tid) {
    tree.Insert(NewRec(&nvm, ++lsn, tid));
  }
  EXPECT_EQ(tree.txn_count(), 1024u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_LE(tree.HeightOf(), 15);  // ~1.44*log2(1024) + 2
}

TEST(Aavlt, RemoveTxnDropsOnlyThatTransaction) {
  NvmManager nvm(TestNvmConfig(2));
  Aavlt tree(&nvm);
  std::uint64_t lsn = 0;
  for (std::uint32_t tid = 1; tid <= 50; ++tid) {
    tree.Insert(NewRec(&nvm, ++lsn, tid));
    tree.Insert(NewRec(&nvm, ++lsn, tid));
  }
  tree.RemoveTxn(25);
  EXPECT_EQ(tree.txn_count(), 49u);
  EXPECT_EQ(tree.ChainOf(25), nullptr);
  EXPECT_EQ(ChainLsns(tree, 24).size(), 2u);
  EXPECT_EQ(ChainLsns(tree, 26).size(), 2u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(Aavlt, RemoveAbsentTxnIsNoOp) {
  NvmManager nvm(TestNvmConfig(2));
  Aavlt tree(&nvm);
  tree.Insert(NewRec(&nvm, 1, 1));
  tree.RemoveTxn(99);
  EXPECT_EQ(tree.txn_count(), 1u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST(Aavlt, RandomizedAgainstReference) {
  NvmManager nvm(TestNvmConfig(4));
  Aavlt tree(&nvm);
  std::map<std::uint32_t, std::vector<std::uint64_t>> ref;
  std::mt19937_64 rng(42);
  std::uint64_t lsn = 0;
  for (int step = 0; step < 4000; ++step) {
    std::uint32_t tid = 1 + rng() % 100;
    if (rng() % 4 != 0 || ref.empty()) {
      auto* r = NewRec(&nvm, ++lsn, tid);
      tree.Insert(r);
      ref[tid].push_back(r->lsn);
    } else {
      auto it = ref.begin();
      std::advance(it, rng() % ref.size());
      tree.RemoveTxn(it->first);
      ref.erase(it);
    }
  }
  ASSERT_TRUE(tree.CheckInvariants());
  ASSERT_EQ(tree.txn_count(), ref.size());
  for (const auto& [tid, lsns] : ref) {
    auto got = ChainLsns(tree, tid);  // newest first
    ASSERT_EQ(got.size(), lsns.size()) << "tid " << tid;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], lsns[lsns.size() - 1 - i]);
    }
  }
  // ForEachTxn visits keys in ascending order.
  std::uint64_t prev = 0;
  tree.ForEachTxn([&](std::uint64_t key, LogRecord*) {
    EXPECT_GT(key, prev);
    prev = key;
    return true;
  });
}

// Crash-point sweep over inserts: after recovery the tree must satisfy its
// invariants and hold a prefix of the inserted records per transaction.
TEST(Aavlt, CrashDuringInsertsRecoversConsistently) {
  bool completed = false;
  for (std::uint64_t at = 1; at < 600 && !completed; at += 1) {
    NvmManager nvm(TestNvmConfig(2));
    Aavlt tree(&nvm);
    std::uint64_t lsn = 0;
    bool crashed = RunWithCrashAt(&nvm, at, [&] {
      for (std::uint32_t tid : {5u, 3u, 8u, 1u, 4u, 7u, 2u, 6u, 9u, 10u}) {
        tree.Insert(NewRec(&nvm, ++lsn, tid));
        tree.Insert(NewRec(&nvm, ++lsn, tid));
      }
    });
    tree.Recover();
    ASSERT_TRUE(tree.CheckInvariants()) << "crash at " << at;
    // Each indexed transaction's chain must be intact (1 or 2 records, the
    // interrupted insert rolled back).
    tree.ForEachTxn([&](std::uint64_t tid, LogRecord* tail) {
      std::size_t n = 0;
      for (LogRecord* r = tail; r != nullptr; r = r->hint.chain.tx_prev) {
        EXPECT_EQ(r->tid, tid);
        ++n;
      }
      EXPECT_GE(n, 1u);
      EXPECT_LE(n, 2u);
      return true;
    });
    if (!crashed) {
      EXPECT_EQ(tree.txn_count(), 10u);
      completed = true;
    }
  }
  EXPECT_TRUE(completed);
}

// Crash-point sweep over removals, including a second crash during
// recovery itself.
TEST(Aavlt, CrashDuringRemovalAndRecoveryIsSafe) {
  for (std::uint64_t at = 1; at < 250; at += 3) {
    NvmManager nvm(TestNvmConfig(2));
    Aavlt tree(&nvm);
    std::uint64_t lsn = 0;
    for (std::uint32_t tid = 1; tid <= 20; ++tid) {
      tree.Insert(NewRec(&nvm, ++lsn, tid));
    }
    bool crashed = RunWithCrashAt(&nvm, at, [&] {
      tree.RemoveTxn(10);
      tree.RemoveTxn(1);
      tree.RemoveTxn(20);
    });
    if (crashed) {
      // Crash again during the first recovery attempt.
      RunWithCrashAt(&nvm, 5, [&] { tree.Recover(); });
    }
    tree.Recover();
    ASSERT_TRUE(tree.CheckInvariants()) << "crash at " << at;
    // Each removal is atomic: the surviving set is a prefix of the removal
    // sequence applied to {1..20}.
    std::set<std::uint64_t> keys;
    tree.ForEachTxn([&](std::uint64_t k, LogRecord*) {
      keys.insert(k);
      return true;
    });
    std::set<std::uint64_t> full;
    for (std::uint64_t k = 1; k <= 20; ++k) full.insert(k);
    std::vector<std::set<std::uint64_t>> valid;
    valid.push_back(full);
    full.erase(10);
    valid.push_back(full);
    full.erase(1);
    valid.push_back(full);
    full.erase(20);
    valid.push_back(full);
    bool match = false;
    for (const auto& v : valid) match |= (v == keys);
    ASSERT_TRUE(match) << "crash at " << at;
    if (!crashed) break;
  }
}

}  // namespace
}  // namespace rwd
