// Tests of the Runtime facade: boot protocol, crash-and-recover helper,
// checkpoint daemon, distributed log partitions.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/core/runtime.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

RewindConfig BaseConfig() {
  RewindConfig c;
  c.nvm = TestNvmConfig(16);
  c.log_impl = LogImpl::kBatch;
  c.policy = Policy::kNoForce;
  c.bucket_capacity = 32;
  c.batch_group_size = 4;
  return c;
}

TEST(Runtime, CleanBootDoesNotRecover) {
  Runtime rt(BaseConfig());
  EXPECT_FALSE(rt.recovered_at_boot());
}

TEST(Runtime, CrashAndRecoverRestoresConsistency) {
  Runtime rt(BaseConfig());
  auto& tm = rt.tm();
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8 * 4));
  auto t = tm.Begin();
  for (int i = 0; i < 4; ++i) tm.Write(t, &d[i], 9);
  tm.Commit(t);
  auto hang = tm.Begin();
  tm.Write(hang, &d[0], 1000);
  rt.CrashAndRecover();
  EXPECT_EQ(d[0], 9u);
  EXPECT_EQ(tm.LogSize(), 0u);
}

TEST(Runtime, CheckpointDaemonClearsCommittedRecords) {
  Runtime rt(BaseConfig());
  auto& tm = rt.tm();
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8));
  rt.StartCheckpointDaemon(5);
  for (int i = 0; i < 50; ++i) {
    auto t = tm.Begin();
    tm.Write(t, d, static_cast<std::uint64_t>(i));
    tm.Commit(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.StopCheckpointDaemon();
  tm.Checkpoint();
  EXPECT_EQ(tm.LogSize(), 0u);
  EXPECT_GT(tm.stats().checkpoints, 1u);
  EXPECT_EQ(*d, 49u);
}

TEST(Runtime, DistributedLogPartitionsAreIndependent) {
  Runtime rt(BaseConfig(), /*partitions=*/4);
  EXPECT_EQ(rt.partitions(), 4u);
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8 * 4));
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      auto& tm = rt.tm(p);
      for (int i = 0; i < 100; ++i) {
        auto t = tm.Begin();
        tm.Write(t, &d[p], static_cast<std::uint64_t>(i));
        tm.Commit(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int p = 0; p < 4; ++p) EXPECT_EQ(d[p], 99u);
  // Crash with one hanging txn per partition; all partitions recover.
  for (int p = 0; p < 4; ++p) {
    auto t = rt.tm(p).Begin();
    rt.tm(p).Write(t, &d[p], 12345);
  }
  rt.CrashAndRecover();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d[p], 99u) << "partition " << p;
    EXPECT_EQ(rt.tm(p).LogSize(), 0u);
  }
}

}  // namespace
}  // namespace rwd
