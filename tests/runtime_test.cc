// Tests of the Runtime facade: boot protocol, crash-and-recover helper,
// checkpoint daemon, distributed log partitions.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "src/core/runtime.h"
#include "src/core/store_txn.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

RewindConfig BaseConfig() {
  RewindConfig c;
  c.nvm = TestNvmConfig(16);
  c.log_impl = LogImpl::kBatch;
  c.policy = Policy::kNoForce;
  c.bucket_capacity = 32;
  c.batch_group_size = 4;
  return c;
}

TEST(Runtime, CleanBootDoesNotRecover) {
  Runtime rt(BaseConfig());
  EXPECT_FALSE(rt.recovered_at_boot());
}

TEST(Runtime, CrashAndRecoverRestoresConsistency) {
  Runtime rt(BaseConfig());
  auto& tm = rt.tm();
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8 * 4));
  auto t = tm.Begin();
  for (int i = 0; i < 4; ++i) tm.Write(t, &d[i], 9);
  tm.Commit(t);
  auto hang = tm.Begin();
  tm.Write(hang, &d[0], 1000);
  rt.CrashAndRecover();
  EXPECT_EQ(d[0], 9u);
  EXPECT_EQ(tm.LogSize(), 0u);
}

TEST(Runtime, CheckpointDaemonClearsCommittedRecords) {
  Runtime rt(BaseConfig());
  auto& tm = rt.tm();
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8));
  rt.StartCheckpointDaemon(5);
  for (int i = 0; i < 50; ++i) {
    auto t = tm.Begin();
    tm.Write(t, d, static_cast<std::uint64_t>(i));
    tm.Commit(t);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.StopCheckpointDaemon();
  tm.Checkpoint();
  EXPECT_EQ(tm.LogSize(), 0u);
  EXPECT_GT(tm.stats().checkpoints, 1u);
  EXPECT_EQ(*d, 49u);
}

TEST(Runtime, DistributedLogPartitionsAreIndependent) {
  Runtime rt(BaseConfig(), /*partitions=*/4);
  EXPECT_EQ(rt.partitions(), 4u);
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8 * 4));
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      auto& tm = rt.tm(p);
      for (int i = 0; i < 100; ++i) {
        auto t = tm.Begin();
        tm.Write(t, &d[p], static_cast<std::uint64_t>(i));
        tm.Commit(t);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int p = 0; p < 4; ++p) EXPECT_EQ(d[p], 99u);
  // Crash with one hanging txn per partition; all partitions recover.
  for (int p = 0; p < 4; ++p) {
    auto t = rt.tm(p).Begin();
    rt.tm(p).Write(t, &d[p], 12345);
  }
  rt.CrashAndRecover();
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(d[p], 99u) << "partition " << p;
    EXPECT_EQ(rt.tm(p).LogSize(), 0u);
  }
}

TEST(Runtime, RecoverPartitionRollsBackOnlyThatPartition) {
  Runtime rt(BaseConfig(), /*partitions=*/2);
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8 * 2));
  auto t0 = rt.tm(0).Begin();
  rt.tm(0).Write(t0, &d[0], 5);
  rt.tm(0).Commit(t0);
  auto t1 = rt.tm(1).Begin();
  rt.tm(1).Write(t1, &d[1], 6);
  rt.tm(1).Commit(t1);
  // Leave a transaction hanging on partition 1 and recover just it.
  auto hang = rt.tm(1).Begin();
  rt.tm(1).Write(hang, &d[1], 999);
  rt.RecoverPartition(1);
  EXPECT_EQ(d[1], 6u);
  EXPECT_EQ(rt.tm(1).LogSize(), 0u);
  // Partition 0 is untouched and still live.
  EXPECT_EQ(d[0], 5u);
  auto t2 = rt.tm(0).Begin();
  rt.tm(0).Write(t2, &d[0], 7);
  rt.tm(0).Commit(t2);
  EXPECT_EQ(d[0], 7u);
}

// Direct StoreTxn exercise against a coordinator-equipped Runtime: the
// two-phase commit path applies both partitions' writes, the abort path
// undoes them, the prepared gauge returns to zero, and the decision log
// is empty afterwards in both cases.
TEST(Runtime, StoreTxnCommitsAndAbortsAcrossPartitions) {
  Runtime rt(BaseConfig(), /*partitions=*/3, /*coordinator_partition=*/2);
  StoreTxn st(&rt);
  auto* d0 = static_cast<std::uint64_t*>(rt.nvm().Alloc(8));
  auto* d1 = static_cast<std::uint64_t*>(rt.nvm().Alloc(8));

  std::uint32_t t0 = rt.tm(0).Begin();
  rt.tm(0).Write(t0, d0, 1);
  std::uint32_t t1 = rt.tm(1).Begin();
  rt.tm(1).Write(t1, d1, 2);
  st.Commit({{0, t0}, {1, t1}});
  EXPECT_EQ(rt.tm(0).Read(d0), 1u);
  EXPECT_EQ(rt.tm(1).Read(d1), 2u);
  EXPECT_EQ(st.two_phase_commits(), 1u);
  EXPECT_EQ(st.prepared_now(), 0u);
  // Decision truncation is lazy: the consumed record waits in the backlog
  // (it is harmless to recovery — all participants ENDed) until a batch
  // flush erases a run of them with one pass of log bookkeeping.
  EXPECT_EQ(rt.tm(2).LogSize(), 1u) << "decision erased eagerly?";
  EXPECT_EQ(st.decision_backlog(), 1u);
  st.FlushDecisionBacklog();
  EXPECT_EQ(st.decision_log_truncations(), 1u);
  EXPECT_EQ(st.decision_backlog(), 0u);
  EXPECT_EQ(rt.tm(2).LogSize(), 0u) << "decision log kept residue";

  t0 = rt.tm(0).Begin();
  rt.tm(0).Write(t0, d0, 10);
  t1 = rt.tm(1).Begin();
  rt.tm(1).Write(t1, d1, 20);
  st.Abort({{0, t0}, {1, t1}});
  EXPECT_EQ(rt.tm(0).Read(d0), 1u);
  EXPECT_EQ(rt.tm(1).Read(d1), 2u);
  EXPECT_EQ(st.prepared_now(), 0u);

  std::uint32_t single = rt.tm(0).Begin();
  rt.tm(0).Write(single, d0, 7);
  st.Commit({{0, single}});
  EXPECT_EQ(rt.tm(0).Read(d0), 7u);
  EXPECT_EQ(st.fast_commits(), 1u);
}

// A Runtime without a coordinator partition cannot host a StoreTxn.
TEST(Runtime, StoreTxnRequiresACoordinator) {
  Runtime rt(BaseConfig(), /*partitions=*/2);
  EXPECT_THROW(StoreTxn{&rt}, std::logic_error);
}

TEST(Runtime, CheckpointDaemonSurvivesInjectedCrash) {
  Runtime rt(BaseConfig());
  auto& tm = rt.tm();
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8));
  auto t = tm.Begin();
  tm.Write(t, d, 1);
  tm.Commit(t);
  rt.StartCheckpointDaemon(1);
  // The daemon's next checkpoint hits the armed event; it must catch the
  // simulated power failure and stop, not std::terminate the process.
  rt.nvm().crash_injector().Arm(1);
  for (int i = 0; i < 400 && rt.nvm().crash_injector().armed(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(rt.nvm().crash_injector().armed());
  rt.CrashAndRecover();
  EXPECT_EQ(*d, 1u);
}

TEST(Runtime, PerPartitionCheckpointDaemonsDrainTheirOwnLogs) {
  Runtime rt(BaseConfig(), /*partitions=*/2);
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(8 * 2));
  rt.StartPartitionCheckpointDaemon(0, 5);
  rt.StartPartitionCheckpointDaemon(1, 5);
  for (int i = 0; i < 20; ++i) {
    for (int p = 0; p < 2; ++p) {
      auto t = rt.tm(p).Begin();
      rt.tm(p).Write(t, &d[p], static_cast<std::uint64_t>(i));
      rt.tm(p).Commit(t);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rt.StopCheckpointDaemon();
  for (int p = 0; p < 2; ++p) {
    rt.CheckpointPartition(p);
    EXPECT_EQ(rt.tm(p).LogSize(), 0u) << "partition " << p;
    EXPECT_GT(rt.tm(p).stats().checkpoints, 0u) << "partition " << p;
  }
}

}  // namespace
}  // namespace rwd
