// RewindKV tests: round-trips, ordered snapshot scans, cross-shard
// MultiPut atomicity, and exhaustive crash-at-every-persistence-event
// recovery across all shards.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

KvConfig TestKvConfig(std::size_t shards = 4) {
  KvConfig cfg;
  cfg.rewind.nvm = TestNvmConfig(64);
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 32;
  cfg.rewind.batch_group_size = 4;
  cfg.shards = shards;
  return cfg;
}

std::string ValueFor(std::uint64_t key, std::uint64_t version) {
  // Varying sizes (including empty) exercise the buffer layout.
  return WorkloadDriver::MakeValue(key, version, (key * 7 + version) % 200);
}

TEST(KvStore, PutGetDeleteRoundTrip) {
  KvStore store(TestKvConfig());
  for (std::uint64_t k = 1; k <= 500; ++k) {
    EXPECT_TRUE(store.Put(k, ValueFor(k, 0)));
  }
  EXPECT_EQ(store.Size(), 500u);
  std::string value;
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ASSERT_TRUE(store.Get(k, &value)) << "key " << k;
    EXPECT_EQ(value, ValueFor(k, 0)) << "key " << k;
  }
  // Overwrites replace the value buffer in place.
  for (std::uint64_t k = 1; k <= 500; k += 3) {
    EXPECT_TRUE(store.Put(k, ValueFor(k, 1)));
  }
  EXPECT_EQ(store.Size(), 500u);
  for (std::uint64_t k = 1; k <= 500; ++k) {
    ASSERT_TRUE(store.Get(k, &value));
    EXPECT_EQ(value, ValueFor(k, k % 3 == 1 ? 1 : 0)) << "key " << k;
  }
  // Deletes drop both indexes and report presence.
  for (std::uint64_t k = 2; k <= 500; k += 5) {
    EXPECT_TRUE(store.Delete(k));
    EXPECT_FALSE(store.Delete(k));
    EXPECT_FALSE(store.Get(k, nullptr));
  }
  EXPECT_EQ(store.Size(), 500u - 100u);
  // Invalid keys are rejected.
  EXPECT_FALSE(store.Put(0, "x"));
  EXPECT_FALSE(store.Put(~std::uint64_t{0}, "x"));
  EXPECT_FALSE(store.Get(0, nullptr));
  EXPECT_FALSE(store.Delete(0));
}

TEST(KvStore, ScanIsOrderedBoundedAndComplete) {
  KvStore store(TestKvConfig(/*shards=*/3));
  // Insert in a scattered order; scan must come back globally sorted even
  // though keys are hash-distributed over shards.
  for (std::uint64_t k = 200; k >= 1; --k) store.Put(k, ValueFor(k, 9));
  std::vector<std::uint64_t> keys;
  std::size_t n = store.Scan(
      50, 30, [&](std::uint64_t key, std::string_view value) {
        keys.push_back(key);
        EXPECT_EQ(value, ValueFor(key, 9));
        return true;
      });
  EXPECT_EQ(n, 30u);
  ASSERT_EQ(keys.size(), 30u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], 50 + i);
  }
  // Unbounded scan sees everything; early stop is honoured.
  std::size_t all = store.Scan(
      1, 10000, [](std::uint64_t, std::string_view) { return true; });
  EXPECT_EQ(all, 200u);
  std::size_t stopped = store.Scan(
      1, 10000, [](std::uint64_t key, std::string_view) { return key < 5; });
  EXPECT_EQ(stopped, 5u);
}

TEST(KvStore, MultiPutSpansShardsAndRejectsInvalidBatches) {
  KvStore store(TestKvConfig());
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  for (std::uint64_t k = 1; k <= 64; ++k) batch.emplace_back(k, ValueFor(k, 3));
  ASSERT_TRUE(store.MultiPut(batch));
  EXPECT_EQ(store.Size(), 64u);
  // The batch really did hit more than one shard.
  std::set<std::size_t> touched;
  for (std::uint64_t k = 1; k <= 64; ++k) touched.insert(store.ShardOf(k));
  EXPECT_GT(touched.size(), 1u);
  std::string value;
  for (std::uint64_t k = 1; k <= 64; ++k) {
    ASSERT_TRUE(store.Get(k, &value));
    EXPECT_EQ(value, ValueFor(k, 3));
  }
  // Later duplicates win within one batch.
  ASSERT_TRUE(store.MultiPut({{7, "first"}, {7, "second"}}));
  ASSERT_TRUE(store.Get(7, &value));
  EXPECT_EQ(value, "second");
  // An invalid key poisons the whole batch before anything applies.
  EXPECT_FALSE(store.MultiPut({{100, "x"}, {0, "bad"}}));
  EXPECT_FALSE(store.Get(100, nullptr));
}

// Readers that latch every shard (Scan) must never observe a MultiPut
// half-applied: all keys of a batch carry the same version or none do.
TEST(KvStore, MultiPutIsAtomicForSnapshotReaders) {
  KvStore store(TestKvConfig());
  const std::vector<std::uint64_t> keys = {11, 22, 33, 44, 55, 66};
  std::vector<std::pair<std::uint64_t, std::string>> v0;
  for (auto k : keys) v0.emplace_back(k, WorkloadDriver::MakeValue(k, 0, 32));
  ASSERT_TRUE(store.MultiPut(v0));

  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    for (std::uint64_t version = 1; version <= 200; ++version) {
      std::vector<std::pair<std::uint64_t, std::string>> batch;
      for (auto k : keys) {
        batch.emplace_back(k, WorkloadDriver::MakeValue(k, version, 32));
      }
      store.MultiPut(batch);
    }
    stop.store(true);
  });
  while (!stop.load()) {
    std::map<std::uint64_t, std::string> snap;
    store.Scan(1, 1000, [&](std::uint64_t key, std::string_view value) {
      snap[key] = std::string(value);
      return true;
    });
    ASSERT_EQ(snap.size(), keys.size());
    // Recover the version of the first key, then demand uniformity.
    std::uint64_t version = ~std::uint64_t{0};
    for (std::uint64_t v = 0; v <= 200; ++v) {
      if (snap[keys[0]] == WorkloadDriver::MakeValue(keys[0], v, 32)) {
        version = v;
        break;
      }
    }
    ASSERT_NE(version, ~std::uint64_t{0});
    for (auto k : keys) {
      if (snap[k] != WorkloadDriver::MakeValue(k, version, 32)) {
        torn.store(true);
      }
    }
  }
  writer.join();
  EXPECT_FALSE(torn.load()) << "a scan observed a half-applied MultiPut";
}

// Heavy contention on the shard-ordered latching: several writer threads
// each MultiPut their own key group with ever-newer versions while
// scanner threads and point writers hammer the store. Every Scan must see
// each group internally version-uniform (one consistent cut), and the
// test completing at all shows Scan / MultiPut / Put latch ordering is
// deadlock-free.
TEST(KvStoreContention, ConcurrentScanVsMultiPutSnapshotStress) {
  KvStore store(TestKvConfig(/*shards=*/4));
  constexpr std::uint64_t kWriters = 3;
  constexpr std::uint64_t kKeysPerGroup = 8;
  constexpr std::uint64_t kRounds = 150;
  constexpr std::size_t kValueSize = 32;

  auto group_keys = [](std::uint64_t g) {
    std::vector<std::uint64_t> keys;
    for (std::uint64_t i = 0; i < kKeysPerGroup; ++i) {
      keys.push_back(g * 100 + 1 + i);
    }
    return keys;
  };

  std::atomic<std::uint64_t> writers_done{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  // Group writers: whole-group MultiPuts with increasing versions.
  for (std::uint64_t g = 0; g < kWriters; ++g) {
    threads.emplace_back([&, g] {
      for (std::uint64_t version = 1; version <= kRounds; ++version) {
        std::vector<std::pair<std::uint64_t, std::string>> batch;
        for (std::uint64_t k : group_keys(g)) {
          batch.emplace_back(
              k, WorkloadDriver::MakeValue(k, version, kValueSize));
        }
        store.MultiPut(batch);
      }
      writers_done.fetch_add(1);
    });
  }
  // A point writer on a disjoint range adds single-shard Put contention.
  threads.emplace_back([&] {
    for (std::uint64_t i = 0; i < kRounds * 4; ++i) {
      std::uint64_t k = 5000 + i % 64;
      store.Put(k, WorkloadDriver::MakeValue(k, i, kValueSize));
    }
    writers_done.fetch_add(1);
  });
  // Scanners: each full Scan is one consistent cut, so within one scan
  // every group must carry exactly one version.
  for (int s = 0; s < 2; ++s) {
    threads.emplace_back([&] {
      while (writers_done.load() < kWriters + 1 && !torn.load()) {
        std::map<std::uint64_t, std::string> snap;
        store.Scan(1, 100000,
                   [&](std::uint64_t key, std::string_view value) {
                     snap[key] = std::string(value);
                     return true;
                   });
        for (std::uint64_t g = 0; g < kWriters; ++g) {
          std::vector<std::uint64_t> keys = group_keys(g);
          if (snap.count(keys[0]) == 0) continue;  // group not loaded yet
          std::uint64_t version = ~std::uint64_t{0};
          for (std::uint64_t v = 1; v <= kRounds; ++v) {
            if (snap[keys[0]] ==
                WorkloadDriver::MakeValue(keys[0], v, kValueSize)) {
              version = v;
              break;
            }
          }
          if (version == ~std::uint64_t{0}) {
            torn.store(true);
            break;
          }
          for (std::uint64_t k : keys) {
            if (snap.count(k) == 0 ||
                snap[k] != WorkloadDriver::MakeValue(k, version, kValueSize)) {
              torn.store(true);
              break;
            }
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load())
      << "a scan observed a half-applied MultiPut under contention";
}

// Crash at EVERY persistence event of a Put and of a Delete: after
// recovery the key is in exactly its old or its new state, never between,
// and untouched keys keep their values.
TEST(KvStoreRecovery, CrashAtEveryEventDuringPutAndDelete) {
  KvStore store(TestKvConfig());
  NvmManager& nvm = store.runtime().nvm();
  std::map<std::uint64_t, std::string> expected;
  for (std::uint64_t k = 1; k <= 40; ++k) {
    std::string v = ValueFor(k, 0);
    ASSERT_TRUE(store.Put(k, v));
    expected[k] = v;
  }
  const std::uint64_t target = 17;
  std::uint64_t version = 1;
  // Overwrite crash sweep.
  for (std::uint64_t at = 1;; ++at) {
    std::string next = ValueFor(target, version);
    bool crashed = RunWithCrashAt(&nvm, at, [&] { store.Put(target, next); });
    if (!crashed) {
      expected[target] = next;
      break;
    }
    store.CrashAndRecover();
    std::string value;
    ASSERT_TRUE(store.Get(target, &value)) << "crash at event " << at;
    EXPECT_TRUE(value == expected[target] || value == next)
        << "torn value after crash at event " << at;
    if (value == next) expected[target] = next;
    ++version;  // use a fresh value each round so old/new are distinct
    for (auto& [k, v] : expected) {
      if (k == target) continue;
      ASSERT_TRUE(store.Get(k, &value)) << "key " << k;
      EXPECT_EQ(value, v) << "bystander key " << k << " after crash " << at;
    }
  }
  // Delete crash sweep: the key is fully present or fully absent.
  for (std::uint64_t at = 1;; ++at) {
    store.Put(target, expected[target]);  // ensure present
    bool crashed = RunWithCrashAt(&nvm, at, [&] { store.Delete(target); });
    if (!crashed) break;
    store.CrashAndRecover();
    std::string value;
    if (store.Get(target, &value)) {
      EXPECT_EQ(value, expected[target]) << "crash at event " << at;
    }
    EXPECT_TRUE(store.runtime().tm(store.ShardOf(target)).LogSize() == 0u);
  }
}

// Crash at every persistence event of a cross-shard MultiPut: each shard's
// slice of the batch applies all-or-nothing, and recovery never loses a
// committed bystander key on any shard.
TEST(KvStoreRecovery, MultiPutCrashIsAtomicPerShard) {
  KvStore store(TestKvConfig());
  NvmManager& nvm = store.runtime().nvm();
  std::map<std::uint64_t, std::string> expected;
  for (std::uint64_t k = 1; k <= 32; ++k) {
    std::string v = ValueFor(k, 0);
    ASSERT_TRUE(store.Put(k, v));
    expected[k] = v;
  }
  const std::vector<std::uint64_t> batch_keys = {3, 9, 14, 20, 27, 31};
  std::uint64_t version = 1;
  for (std::uint64_t at = 1;; ++at) {
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    for (auto k : batch_keys) batch.emplace_back(k, ValueFor(k, version));
    bool crashed = RunWithCrashAt(&nvm, at, [&] { store.MultiPut(batch); });
    if (!crashed) {
      for (auto& [k, v] : batch) expected[k] = v;
      break;
    }
    store.CrashAndRecover();
    // Per shard: the slice moved entirely or not at all.
    std::map<std::size_t, std::set<bool>> shard_outcomes;
    std::string value;
    for (auto& [k, v] : batch) {
      ASSERT_TRUE(store.Get(k, &value)) << "key " << k;
      if (value == v) {
        shard_outcomes[store.ShardOf(k)].insert(true);
        expected[k] = v;
      } else {
        EXPECT_EQ(value, expected[k]) << "torn key " << k << " at " << at;
        shard_outcomes[store.ShardOf(k)].insert(false);
      }
    }
    for (auto& [shard, outcomes] : shard_outcomes) {
      EXPECT_EQ(outcomes.size(), 1u)
          << "shard " << shard << " applied a partial batch at event " << at;
    }
    for (auto& [k, v] : expected) {
      ASSERT_TRUE(store.Get(k, &value)) << "key " << k;
      EXPECT_EQ(value, v) << "key " << k << " after crash at " << at;
    }
    ++version;
  }
  std::string value;
  for (auto& [k, v] : expected) {
    ASSERT_TRUE(store.Get(k, &value));
    EXPECT_EQ(value, v);
  }
}

// The tentpole acceptance sweep: a MultiPut spanning >= 3 shards must be
// all-or-nothing across the WHOLE STORE — not merely per shard — when the
// machine dies at EVERY persistence event of the operation, including
// every event between the first shard's prepare and the final commit
// fence of the two-phase pipeline.
TEST(KvStoreRecovery, MultiPutCrashIsAtomicAcrossShards) {
  KvStore store(TestKvConfig(/*shards=*/4));
  NvmManager& nvm = store.runtime().nvm();
  // Enough keys that the batch provably spans at least 3 shards.
  std::vector<std::uint64_t> batch_keys = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::set<std::size_t> touched;
  for (auto k : batch_keys) touched.insert(store.ShardOf(k));
  ASSERT_GE(touched.size(), 3u) << "batch does not span enough shards";

  std::map<std::uint64_t, std::string> expected;
  for (auto k : batch_keys) {
    std::string v = ValueFor(k, 0);
    ASSERT_TRUE(store.Put(k, v));
    expected[k] = v;
  }
  // A committed bystander key on some shard must never be disturbed.
  ASSERT_TRUE(store.Put(1000, "bystander"));

  std::uint64_t version = 1;
  std::uint64_t crash_events = 0;
  for (std::uint64_t at = 1;; ++at) {
    std::vector<std::pair<std::uint64_t, std::string>> batch;
    for (auto k : batch_keys) batch.emplace_back(k, ValueFor(k, version));
    bool crashed = RunWithCrashAt(&nvm, at, [&] { store.MultiPut(batch); });
    if (!crashed) {
      for (auto& [k, v] : batch) expected[k] = v;
      break;
    }
    ++crash_events;
    store.CrashAndRecover();
    // All-or-nothing across the whole batch: whatever the first key says,
    // every other key must agree.
    std::string value;
    ASSERT_TRUE(store.Get(batch_keys[0], &value));
    bool applied = value == ValueFor(batch_keys[0], version);
    if (!applied) {
      EXPECT_EQ(value, expected[batch_keys[0]])
          << "torn key " << batch_keys[0] << " at event " << at;
    }
    for (auto& [k, v] : batch) {
      ASSERT_TRUE(store.Get(k, &value)) << "key " << k;
      EXPECT_EQ(value, applied ? v : expected[k])
          << "batch applied a PREFIX of shards at event " << at;
    }
    if (applied) {
      for (auto& [k, v] : batch) expected[k] = v;
    }
    ASSERT_TRUE(store.Get(1000, &value));
    EXPECT_EQ(value, "bystander") << "at event " << at;
    // Every shard's log — and the coordinator's decision log — is clean.
    for (std::size_t s = 0; s < store.runtime().partitions(); ++s) {
      EXPECT_EQ(store.runtime().tm(s).LogSize(), 0u)
          << "partition " << s << " dirty after recovery at event " << at;
    }
    ++version;
  }
  EXPECT_GT(crash_events, 10u) << "the sweep barely exercised the pipeline";
  std::string value;
  for (auto& [k, v] : expected) {
    ASSERT_TRUE(store.Get(k, &value));
    EXPECT_EQ(value, v);
  }
}

// The same guarantee for the group-commit path: an ApplyBatch mixing
// overwrites, deletes and fresh inserts across shards recovers to all of
// its effects or none of them at every crash point.
TEST(KvStoreRecovery, ApplyBatchCrashIsAtomicAcrossShards) {
  KvStore store(TestKvConfig(/*shards=*/4));
  NvmManager& nvm = store.runtime().nvm();
  for (std::uint64_t k = 1; k <= 9; ++k) {
    ASSERT_TRUE(store.Put(k, ValueFor(k, 0)));
  }
  std::uint64_t version = 1;
  for (std::uint64_t at = 1;; ++at) {
    // Overwrite 1..3, delete 4..6, insert 10..12 — then undo the batch's
    // effects before the next round so every round starts identically.
    std::vector<KvWriteOp> ops;
    for (std::uint64_t k = 1; k <= 3; ++k) {
      ops.push_back({KvWriteOp::Kind::kPut, k, ValueFor(k, version), false});
    }
    for (std::uint64_t k = 4; k <= 6; ++k) {
      ops.push_back({KvWriteOp::Kind::kDelete, k, "", false});
    }
    for (std::uint64_t k = 10; k <= 12; ++k) {
      ops.push_back({KvWriteOp::Kind::kPut, k, ValueFor(k, version), false});
    }
    bool crashed = RunWithCrashAt(&nvm, at, [&] { store.ApplyBatch(ops); });
    if (crashed) store.CrashAndRecover();
    std::string value;
    bool applied = store.Get(10, &value) && value == ValueFor(10, version);
    for (std::uint64_t k = 1; k <= 3; ++k) {
      ASSERT_TRUE(store.Get(k, &value)) << "key " << k;
      EXPECT_EQ(value, ValueFor(k, applied ? version : version - 1))
          << "torn overwrite " << k << " at event " << at;
    }
    for (std::uint64_t k = 4; k <= 6; ++k) {
      EXPECT_EQ(store.Get(k, &value), !applied)
          << "half-applied delete " << k << " at event " << at;
    }
    for (std::uint64_t k = 10; k <= 12; ++k) {
      EXPECT_EQ(store.Get(k, &value), applied)
          << "half-applied insert " << k << " at event " << at;
    }
    if (!crashed) {
      EXPECT_TRUE(applied);
      break;
    }
    // Reset for the next round: restore the deleted keys at the new
    // version, drop the inserts, and advance the baseline — every round
    // then starts from "1..6 present at version-1, 10..12 absent".
    if (applied) {
      for (std::uint64_t k = 4; k <= 6; ++k) {
        ASSERT_TRUE(store.Put(k, ValueFor(k, version)));
      }
      for (std::uint64_t k = 10; k <= 12; ++k) store.Delete(k);
      ++version;
    }
  }
}

// The acceptance scenario: a mixed committed workload across all shards,
// a crash mid-stream, and recovery restoring every committed key.
TEST(KvStoreRecovery, RecoveryRestoresEveryCommittedKeyAcrossShards) {
  KvStore store(TestKvConfig(/*shards=*/4));
  NvmManager& nvm = store.runtime().nvm();
  std::map<std::uint64_t, std::string> committed;
  std::uint64_t next_key = 1;
  for (int round = 0; round < 6; ++round) {
    std::uint64_t in_flight = 0;
    bool crashed = RunWithCrashAt(
        &nvm, 400 + 97 * static_cast<std::uint64_t>(round), [&] {
          for (int i = 0; i < 120; ++i) {
            std::uint64_t k = next_key++;
            std::string v = ValueFor(k, static_cast<std::uint64_t>(round));
            in_flight = k;
            store.Put(k, v);
            committed[k] = v;  // reached only if Put returned
          }
          in_flight = 0;
        });
    if (crashed) store.CrashAndRecover();
    std::string value;
    for (auto& [k, v] : committed) {
      if (k == in_flight) continue;  // may legitimately be old or new
      ASSERT_TRUE(store.Get(k, &value))
          << "committed key " << k << " lost in round " << round;
      EXPECT_EQ(value, v) << "committed key " << k;
    }
    // Every shard's log is clean after recovery.
    if (crashed) {
      for (std::size_t s = 0; s < store.shards(); ++s) {
        EXPECT_EQ(store.runtime().tm(s).LogSize(), 0u) << "shard " << s;
      }
    }
  }
  EXPECT_GE(store.Size(), committed.size());
}

TEST(KvStore, PerShardStatsAndCheckpointDaemons) {
  KvConfig cfg = TestKvConfig();
  cfg.checkpoint_period_ms = 5;
  KvStore store(cfg);
  for (std::uint64_t k = 1; k <= 200; ++k) store.Put(k, ValueFor(k, 0));
  for (std::uint64_t k = 1; k <= 200; ++k) store.Get(k, nullptr);
  std::uint64_t puts = 0, gets = 0, hits = 0, keys = 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    KvShardStats st = store.shard_stats(s);
    EXPECT_GT(st.keys, 0u) << "shard " << s << " got no keys";
    puts += st.puts;
    gets += st.gets;
    hits += st.hits;
    keys += st.keys;
  }
  EXPECT_EQ(puts, 200u);
  EXPECT_EQ(gets, 200u);
  EXPECT_EQ(hits, 200u);
  EXPECT_EQ(keys, 200u);
  // Daemons checkpoint each partition independently; give them a beat,
  // then checkpoint each shard explicitly so the drain check is
  // deterministic (no-force clears records at checkpoints).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  store.StopCheckpointDaemons();
  std::size_t total_log = 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    store.CheckpointShard(s);
    total_log += store.runtime().tm(s).LogSize();
  }
  EXPECT_EQ(total_log, 0u);
  store.ResetStats();
  EXPECT_EQ(store.shard_stats(0).puts, 0u);
}

}  // namespace
}  // namespace rwd
