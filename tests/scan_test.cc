// PR 9 scan tests: range-partitioned shard layout (persisted ownership,
// ordered per-shard cursor scans, optimistic sub-scans), ScanPage
// truncation/resume semantics on both layouts, concurrent scan torture,
// a crash sweep with a scanner in flight, and the SCAN_STREAM protocol
// (chunked streaming, buffered-scan truncation trailer, kill-mid-stream
// on both ends).
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/kv/kv_store.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

constexpr std::uint64_t kSalt = 0x5Ec10C0E5A17ull;

/// Checksummed 40-byte value (see kv_concurrency_test.cc): any torn or
/// recycled read fails the checksum recomputation.
std::string TortureValue(std::uint64_t key, std::uint64_t version) {
  std::uint64_t words[5];
  words[0] = key;
  words[1] = version;
  words[2] = key ^ version ^ kSalt;
  words[3] = key * 0x9E3779B97F4A7C15ull + version;
  words[4] = words[2] ^ words[3];
  std::string out(sizeof(words), '\0');
  std::memcpy(&out[0], words, sizeof(words));
  return out;
}

std::uint64_t CheckTortureValue(std::uint64_t key, const std::string& value) {
  if (value.size() != 40) {
    ADD_FAILURE() << "key " << key << ": torn value size " << value.size();
    return ~std::uint64_t{0};
  }
  std::uint64_t words[5];
  std::memcpy(words, value.data(), sizeof(words));
  EXPECT_EQ(words[0], key) << "value belongs to another key";
  EXPECT_EQ(words[2], words[0] ^ words[1] ^ kSalt)
      << "key " << key << ": torn checksum word 2";
  EXPECT_EQ(words[3], words[0] * 0x9E3779B97F4A7C15ull + words[1])
      << "key " << key << ": torn checksum word 3";
  EXPECT_EQ(words[4], words[2] ^ words[3])
      << "key " << key << ": torn checksum word 4";
  return words[1];
}

KvConfig LayoutConfig(ShardLayout layout, std::size_t shards = 4,
                      std::uint64_t range_max = 400,
                      std::size_t heap_mb = 64) {
  KvConfig cfg;
  cfg.rewind.nvm = TestNvmConfig(heap_mb);
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 32;
  cfg.rewind.batch_group_size = 4;
  cfg.shards = shards;
  cfg.shard_layout = layout;
  cfg.range_max_key = range_max;
  return cfg;
}

std::string Val(std::uint64_t key) {
  return "v-" + std::to_string(key) + "-" + std::string(13, 'x');
}

// --- range layout: ordering, ownership, paging --------------------------

TEST(ScanRange, OrderedCompleteAndResumable) {
  KvStore store(LayoutConfig(ShardLayout::kRange, 4, 400));
  // Insert out of order so ordering comes from the structures, not luck.
  for (std::uint64_t k = 300; k >= 1; --k) ASSERT_TRUE(store.Put(k, Val(k)));

  // One full scan: every key, ascending, correct values.
  std::uint64_t expect = 1;
  std::size_t n = store.Scan(1, 100000,
                             [&](std::uint64_t k, std::string_view v) {
                               EXPECT_EQ(k, expect);
                               EXPECT_EQ(v, Val(k));
                               ++expect;
                               return true;
                             });
  EXPECT_EQ(n, 300u);

  // Page through with ScanPage: completeness and ordering across resume
  // points, including pages that straddle shard boundaries.
  std::vector<std::uint64_t> keys;
  std::uint64_t from = 1;
  for (;;) {
    KvStore::ScanPageResult page =
        store.ScanPage(from, 37, [&](std::uint64_t k, std::string_view) {
          keys.push_back(k);
          return true;
        });
    if (!page.more) break;
    from = page.next_key;
  }
  ASSERT_EQ(keys.size(), 300u);
  for (std::uint64_t k = 1; k <= 300; ++k) EXPECT_EQ(keys[k - 1], k);
}

TEST(ScanRange, ShardOwnershipIsContiguousAndOrdered) {
  KvStore store(LayoutConfig(ShardLayout::kRange, 4, 400));
  // Shard index is non-decreasing in key order, uses every shard, and
  // keys past the creation ceiling land in the last shard.
  std::size_t prev = 0;
  std::set<std::size_t> used;
  for (std::uint64_t k = 1; k <= 400; ++k) {
    std::size_t s = store.ShardOf(k);
    EXPECT_GE(s, prev) << "key " << k;
    prev = s;
    used.insert(s);
  }
  EXPECT_EQ(used.size(), 4u);
  EXPECT_EQ(store.ShardOf(401), 3u);
  EXPECT_EQ(store.ShardOf(~std::uint64_t{0} - 1), 3u);
  EXPECT_TRUE(store.partitioner().ordered());
}

class ScanPageSemantics : public ::testing::TestWithParam<ShardLayout> {};

TEST_P(ScanPageSemantics, TruncationAndCallbackStop) {
  KvStore store(LayoutConfig(GetParam(), 4, 400));
  for (std::uint64_t k = 1; k <= 200; ++k) ASSERT_TRUE(store.Put(k, Val(k)));

  // max_items stop: 50 delivered, next_key names the 51st.
  std::size_t delivered = 0;
  KvStore::ScanPageResult page = store.ScanPage(
      1, 50, [&](std::uint64_t, std::string_view) {
        ++delivered;
        return true;
      });
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(page.visited, 50u);
  EXPECT_TRUE(page.more);
  EXPECT_EQ(page.next_key, 51u);

  // Callback-false stop: the rejected pair counts as visited and a resume
  // from next_key RE-delivers it.
  page = store.ScanPage(1, 100, [&](std::uint64_t k, std::string_view) {
    return k < 5;
  });
  EXPECT_EQ(page.visited, 5u);
  EXPECT_TRUE(page.more);
  EXPECT_EQ(page.next_key, 5u);
  bool saw_5_again = false;
  store.ScanPage(page.next_key, 1, [&](std::uint64_t k, std::string_view) {
    saw_5_again = (k == 5);
    return true;
  });
  EXPECT_TRUE(saw_5_again);

  // Full drain reports no more.
  page = store.ScanPage(1, 100000,
                        [](std::uint64_t, std::string_view) { return true; });
  EXPECT_EQ(page.visited, 200u);
  EXPECT_FALSE(page.more);
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, ScanPageSemantics,
                         ::testing::Values(ShardLayout::kHash,
                                           ShardLayout::kRange),
                         [](const ::testing::TestParamInfo<ShardLayout>& i) {
                           return i.param == ShardLayout::kRange ? "range"
                                                                 : "hash";
                         });

// --- persistence: range bounds survive restart, layout is enforced ------

TEST(ScanRange, BoundsSurviveRestartAndLayoutMismatchIsRejected) {
  std::string heap = ::testing::TempDir() + "scan_range_" +
                     std::to_string(::getpid()) + ".heap";
  std::remove(heap.c_str());
  KvConfig create_cfg = LayoutConfig(ShardLayout::kRange, 3, 64, 16);
  create_cfg.rewind.nvm.heap_file = heap;
  std::vector<std::size_t> owner(101);
  {
    KvStore store(create_cfg);
    for (std::uint64_t k = 1; k <= 100; ++k) {
      ASSERT_TRUE(store.Put(k, Val(k)));
      owner[k] = store.ShardOf(k);
    }
    // Keys above the creation ceiling (64) all sit in the last shard.
    EXPECT_EQ(owner[100], 2u);
  }
  {
    // Re-attach with a WILDLY different range_max_key: the persisted
    // bounds must win, or keys silently change owner and vanish.
    KvConfig attach_cfg = LayoutConfig(ShardLayout::kRange, 3, 1u << 20, 16);
    attach_cfg.rewind.nvm.heap_file = heap;
    std::unique_ptr<KvStore> store = KvStore::Open(heap, attach_cfg);
    EXPECT_EQ(store->Size(), 100u);
    std::string value;
    for (std::uint64_t k = 1; k <= 100; ++k) {
      EXPECT_EQ(store->ShardOf(k), owner[k]) << "key " << k;
      ASSERT_TRUE(store->Get(k, &value)) << "key " << k;
      EXPECT_EQ(value, Val(k));
    }
    // Ordered full scan still complete after re-attach.
    std::uint64_t seen = 0;
    store->Scan(1, 100000, [&](std::uint64_t k, std::string_view) {
      EXPECT_EQ(k, seen + 1);
      ++seen;
      return true;
    });
    EXPECT_EQ(seen, 100u);
  }
  {
    // A hash-config attach against a range-created heap must refuse
    // loudly, not scatter the key space.
    KvConfig wrong = LayoutConfig(ShardLayout::kHash, 3, 64, 16);
    wrong.rewind.nvm.heap_file = heap;
    EXPECT_THROW(KvStore::Open(heap, wrong), HeapAttachError);
  }
  std::remove(heap.c_str());

  // And the mirror image: hash-created heap, range-config attach.
  std::string heap2 = ::testing::TempDir() + "scan_hash_" +
                      std::to_string(::getpid()) + ".heap";
  std::remove(heap2.c_str());
  KvConfig hash_cfg = LayoutConfig(ShardLayout::kHash, 3, 64, 16);
  hash_cfg.rewind.nvm.heap_file = heap2;
  {
    KvStore store(hash_cfg);
    ASSERT_TRUE(store.Put(1, Val(1)));
  }
  KvConfig range_cfg = LayoutConfig(ShardLayout::kRange, 3, 64, 16);
  range_cfg.rewind.nvm.heap_file = heap2;
  EXPECT_THROW(KvStore::Open(heap2, range_cfg), HeapAttachError);
  std::remove(heap2.c_str());
}

// --- concurrency: scan torture on both layouts --------------------------

// Hash layout: the all-shard shared-latch merge gives one GLOBAL cut, so
// a scan must never observe a cross-shard MultiPut group at mixed
// versions.
TEST(ScanConcurrency, HashScansNeverSeeTornCrossShardGroups) {
  KvConfig config = LayoutConfig(ShardLayout::kHash, 4);
  config.rewind.nvm.mode = NvmMode::kFast;
  KvStore store(config);
  std::vector<std::uint64_t> group = {1, 2, 3, 4, 5, 6, 7, 8};
  std::set<std::size_t> spanned;
  for (std::uint64_t k : group) spanned.insert(store.ShardOf(k));
  ASSERT_GE(spanned.size(), 3u);
  auto batch = [&](std::uint64_t version) {
    std::vector<std::pair<std::uint64_t, std::string>> b;
    for (std::uint64_t k : group) b.emplace_back(k, TortureValue(k, version));
    return b;
  };
  ASSERT_TRUE(store.MultiPut(batch(0)));

  const std::uint64_t writes_each = kTsan ? 120 : 500;
  std::atomic<std::uint64_t> next_version{1};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < writes_each; ++i) {
        store.MultiPut(batch(next_version.fetch_add(1)));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        std::map<std::uint64_t, std::uint64_t> seen;
        store.Scan(1, 64, [&](std::uint64_t k, std::string_view v) {
          seen[k] = CheckTortureValue(k, std::string(v));
          return true;
        });
        ASSERT_EQ(seen.size(), group.size());
        std::uint64_t version = seen.begin()->second;
        for (auto& [k, ver] : seen) {
          ASSERT_EQ(ver, version)
              << "hash-layout scan observed a MIXED group at key " << k;
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();
}

// Range layout: the cut is PER SHARD, so the invariant a scan may rely on
// is shard-local: a group confined to one shard is all-or-one-version.
// The optimistic (latch-free, seqlock-validated) sub-scan path must both
// engage and never leak a torn cut.
TEST(ScanConcurrency, RangeScansSeeShardConsistentGroups) {
  KvConfig config = LayoutConfig(ShardLayout::kRange, 4, 400);
  config.rewind.nvm.mode = NvmMode::kFast;
  KvStore store(config);
  // Shard s owns [1+100s, 100(s+1)]: one 6-key group per shard, fully
  // shard-confined.
  std::vector<std::vector<std::uint64_t>> groups(4);
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::uint64_t j = 0; j < 6; ++j) {
      std::uint64_t k = 100 * s + 1 + j;
      ASSERT_EQ(store.ShardOf(k), s);
      groups[s].push_back(k);
    }
  }
  auto batch = [&](std::size_t s, std::uint64_t version) {
    std::vector<std::pair<std::uint64_t, std::string>> b;
    for (std::uint64_t k : groups[s]) {
      b.emplace_back(k, TortureValue(k, version));
    }
    return b;
  };
  for (std::size_t s = 0; s < 4; ++s) ASSERT_TRUE(store.MultiPut(batch(s, 0)));

  const std::uint64_t writes_each = kTsan ? 150 : 800;
  std::atomic<std::uint64_t> next_version{1};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(100 + t);
      for (std::uint64_t i = 0; i < writes_each; ++i) {
        store.MultiPut(batch(rng() % 4, next_version.fetch_add(1)));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(200 + t);
      while (!done.load(std::memory_order_relaxed)) {
        std::size_t s = rng() % 4;
        // Short scan over one shard's group: remaining <= the optimistic
        // sub-scan ceiling, so this exercises the latch-free path.
        std::map<std::uint64_t, std::uint64_t> seen;
        store.Scan(100 * s + 1, 6,
                   [&](std::uint64_t k, std::string_view v) {
                     seen[k] = CheckTortureValue(k, std::string(v));
                     return true;
                   });
        ASSERT_EQ(seen.size(), 6u);
        std::uint64_t version = seen.begin()->second;
        for (auto& [k, ver] : seen) {
          ASSERT_EQ(ver, version)
              << "range-layout scan tore shard " << s << "'s group at key "
              << k << " (per-shard cut broke)";
        }
      }
    });
  }
  // Plus one full-range scanner: cross-shard uniformity is NOT promised
  // (per-shard cut), but every pair must still be internally consistent.
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      store.Scan(1, 400, [](std::uint64_t k, std::string_view v) {
        CheckTortureValue(k, std::string(v));
        return true;
      });
    }
  });
  for (int t = 0; t < 2; ++t) threads[t].join();
  done.store(true, std::memory_order_relaxed);
  for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();

  std::uint64_t opt_hits = 0;
  for (std::size_t s = 0; s < store.shards(); ++s) {
    opt_hits += store.shard_stats(s).scan_optimistic_hits;
  }
  EXPECT_GT(opt_hits, 0u) << "optimistic sub-scan path never engaged";
}

// --- crash sweep with a scanner in flight -------------------------------

TEST(ScanCrash, RangeLayoutSweepWithScannerRidingAlong) {
  KvConfig config = LayoutConfig(ShardLayout::kRange, 4, 400, 16);
  config.rewind.bucket_capacity = 16;
  KvStore store(config);
  NvmManager& nvm = store.runtime().nvm();

  // One cross-shard group per writer, confined to its own shard pair
  // (same post-crash-commit reasoning as the kv_concurrency sweep).
  std::vector<std::vector<std::uint64_t>> groups = {
      {1, 2, 3, 101, 102, 103},        // shards 0+1
      {201, 202, 203, 301, 302, 303},  // shards 2+3
  };
  for (std::uint64_t k : groups[0]) ASSERT_LE(store.ShardOf(k), 1u);
  for (std::uint64_t k : groups[1]) ASSERT_GE(store.ShardOf(k), 2u);

  auto check_groups = [&](std::uint64_t at) {
    for (std::size_t w = 0; w < groups.size(); ++w) {
      std::string value;
      std::size_t present = 0;
      std::uint64_t version = 0;
      for (std::uint64_t k : groups[w]) {
        if (!store.Get(k, &value)) continue;
        std::uint64_t v = CheckTortureValue(k, value);
        if (present == 0) version = v;
        ASSERT_EQ(v, version) << "event " << at << ": group " << w
                              << " torn at key " << k;
        ++present;
      }
      ASSERT_TRUE(present == 0 || present == groups[w].size())
          << "event " << at << ": group " << w << " applied a prefix";
    }
  };

  std::uint64_t crash_events = 0;
  std::uint64_t at = 1;
  const std::uint64_t step = kTsan ? 97 : 3;
  for (;;) {
    nvm.crash_injector().Arm(at);
    std::atomic<bool> crashed{false};
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < groups.size(); ++w) {
      threads.emplace_back([&, w] {
        try {
          for (std::uint64_t i = 0; i < 2; ++i) {
            if (crashed.load(std::memory_order_relaxed)) return;
            std::vector<std::pair<std::uint64_t, std::string>> batch;
            for (std::uint64_t k : groups[w]) {
              batch.emplace_back(k, TortureValue(k, at * 100 + i));
            }
            store.MultiPut(batch);
          }
        } catch (const CrashException&) {
          crashed.store(true, std::memory_order_relaxed);
        }
      });
    }
    // The in-flight scanner: pages across the whole range (and through
    // the optimistic sub-scan path) while the crash fires; it must never
    // surface a torn pair, before or after the simulated failure.
    threads.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        store.Scan(1, 400, [](std::uint64_t k, std::string_view v) {
          CheckTortureValue(k, std::string(v));
          return true;
        });
      }
    });
    for (std::size_t w = 0; w < groups.size(); ++w) threads[w].join();
    done.store(true, std::memory_order_relaxed);
    threads.back().join();
    nvm.crash_injector().Disarm();

    if (!crashed.load()) break;
    ++crash_events;
    nvm.SimulateCrash();
    store.CrashAndRecover();
    check_groups(at);
    for (std::size_t p = 0; p < store.runtime().partitions(); ++p) {
      ASSERT_EQ(store.runtime().tm(p).LogSize(), 0u)
          << "partition " << p << " dirty after recovery at event " << at;
    }
    at += step;
  }
  EXPECT_GT(crash_events, kTsan ? 3u : 20u);
  check_groups(at);
}

// --- server: SCAN_STREAM and the buffered-scan trailer ------------------

serve::ServerConfig StreamServerConfig(std::uint32_t chunk_bytes) {
  serve::ServerConfig sc;
  sc.port = 0;
  sc.workers = 2;
  sc.batch_window_us = 100;
  sc.scan_chunk_bytes = chunk_bytes;
  return sc;
}

void LoadKeys(serve::KvClient* client, std::uint64_t count,
              std::size_t value_size) {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  for (std::uint64_t k = 1; k <= count; ++k) {
    batch.emplace_back(k, std::string(value_size, 'a' + k % 26));
    if (batch.size() == 128 || k == count) {
      ASSERT_TRUE(client->MultiPut(batch));
      batch.clear();
    }
  }
}

class StreamLayouts : public ::testing::TestWithParam<ShardLayout> {};

TEST_P(StreamLayouts, StreamedScanIsChunkedOrderedAndComplete) {
  KvStore store(LayoutConfig(GetParam(), 4, 4096));
  // Tiny chunks force many frames for a modest result set.
  serve::KvServer server(&store, StreamServerConfig(/*chunk_bytes=*/512));
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));
  const std::uint64_t kKeys = 600;
  LoadKeys(&client, kKeys, 40);

  std::vector<std::pair<std::uint64_t, std::string>> items;
  ASSERT_TRUE(client.ScanStreamBegin(1, 100000));
  std::size_t chunks = 0;
  bool done = false;
  while (!done) {
    ASSERT_TRUE(client.ScanStreamNext(&items, &done));
    ++chunks;
  }
  EXPECT_FALSE(client.stream_open());
  EXPECT_GT(chunks, 1u) << "result set should not fit one 512-byte chunk";
  ASSERT_EQ(items.size(), kKeys);
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    EXPECT_EQ(items[k - 1].first, k);
    EXPECT_EQ(items[k - 1].second, std::string(40, 'a' + k % 26));
  }
  // The connection is reusable after a completed stream.
  std::string value;
  ASSERT_TRUE(client.Get(1, &value));

  // STATS v2 carries the streaming counters.
  std::vector<serve::MetricSample> samples;
  ASSERT_TRUE(client.Stats2(&samples));
  std::map<std::string, double> by_name;
  for (const serve::MetricSample& m : samples) by_name[m.name] = m.value;
  EXPECT_GE(by_name["server.scan_chunks"], static_cast<double>(chunks));
  EXPECT_GT(by_name["server.scan_stream_bytes"], 0.0);
  ASSERT_TRUE(by_name.count("server.op.scan_stream.count"));
  ASSERT_TRUE(by_name.count("server.op.scan_stream.first_chunk.count"));

  server.Stop();
  EXPECT_FALSE(server.crashed());
}

INSTANTIATE_TEST_SUITE_P(BothLayouts, StreamLayouts,
                         ::testing::Values(ShardLayout::kHash,
                                           ShardLayout::kRange),
                         [](const ::testing::TestParamInfo<ShardLayout>& i) {
                           return i.param == ShardLayout::kRange ? "range"
                                                                 : "hash";
                         });

TEST(ScanServer, BufferedScanReportsItemCapTruncationWithResumeKey) {
  KvStore store(LayoutConfig(ShardLayout::kRange, 4, 8192));
  serve::ServerConfig sc = StreamServerConfig(256 << 10);
  sc.max_scan_items = 100;  // small server-side cap to hit cheaply
  serve::KvServer server(&store, sc);
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));
  LoadKeys(&client, 250, 16);

  // Ask past the server's item cap: the reply is short AND says so.
  std::vector<std::pair<std::uint64_t, std::string>> items;
  bool truncated = false;
  std::uint64_t next_key = 0;
  ASSERT_TRUE(client.Scan(1, 250, &items, &truncated, &next_key));
  EXPECT_EQ(items.size(), 100u);
  EXPECT_TRUE(truncated) << "silent truncation: the client had no way to "
                            "know 150 items are missing";
  EXPECT_EQ(next_key, 101u);
  // Resuming from the continuation key completes the result.
  while (truncated) {
    ASSERT_TRUE(client.Scan(next_key, 250, &items, &truncated, &next_key));
  }
  EXPECT_EQ(items.size(), 250u);
  for (std::uint64_t k = 1; k <= 250; ++k) EXPECT_EQ(items[k - 1].first, k);

  // An in-bounds scan is NOT flagged: asking for exactly 50 and getting
  // 50 is a complete answer even though more keys exist.
  items.clear();
  ASSERT_TRUE(client.Scan(1, 50, &items, &truncated, &next_key));
  EXPECT_EQ(items.size(), 50u);
  EXPECT_FALSE(truncated);

  server.Stop();
  EXPECT_FALSE(server.crashed());
}

TEST(ScanServer, StreamedScanLargerThanBufferedByteCapCompletes) {
  if (kTsan) GTEST_SKIP() << "12 MB value set is too slow under TSan";
  // 3000 * 4 KiB = ~12 MB of values: past the 8 MiB buffered-reply cap.
  KvStore store(LayoutConfig(ShardLayout::kRange, 4, 8192, 192));
  serve::KvServer server(&store, StreamServerConfig(256 << 10));
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 10000));
  const std::uint64_t kKeys = 3000;
  const std::size_t kValue = 4096;
  LoadKeys(&client, kKeys, kValue);

  // Buffered: hits the byte cap, reports the cut instead of lying.
  std::vector<std::pair<std::uint64_t, std::string>> items;
  bool truncated = false;
  std::uint64_t next_key = 0;
  ASSERT_TRUE(client.Scan(1, static_cast<std::uint32_t>(kKeys), &items,
                          &truncated, &next_key));
  EXPECT_LT(items.size(), kKeys);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(next_key, items.size() + 1);

  // Streamed: the same ask completes whole.
  items.clear();
  ASSERT_TRUE(
      client.ScanStream(1, static_cast<std::uint32_t>(kKeys), &items));
  ASSERT_EQ(items.size(), kKeys);
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    EXPECT_EQ(items[k - 1].first, k);
    ASSERT_EQ(items[k - 1].second.size(), kValue);
  }
  server.Stop();
  EXPECT_FALSE(server.crashed());
}

TEST(ScanServer, ClientVanishingMidStreamLeavesServerServing) {
  KvStore store(LayoutConfig(ShardLayout::kRange, 4, 65536));
  serve::KvServer server(&store, StreamServerConfig(/*chunk_bytes=*/512));
  ASSERT_TRUE(server.Start());
  {
    serve::KvClient loader;
    ASSERT_TRUE(loader.Connect("127.0.0.1", server.port(), 5000));
    LoadKeys(&loader, kTsan ? 2000 : 20000, 100);
  }
  {
    // Open a long stream, read one chunk, vanish.
    serve::KvClient victim;
    ASSERT_TRUE(victim.Connect("127.0.0.1", server.port(), 5000));
    ASSERT_TRUE(victim.ScanStreamBegin(1, 1000000));
    std::vector<std::pair<std::uint64_t, std::string>> items;
    bool done = false;
    ASSERT_TRUE(victim.ScanStreamNext(&items, &done));
    ASSERT_FALSE(done);
    victim.Close();
  }
  // The server must shrug the dead stream off and keep serving.
  serve::KvClient after;
  ASSERT_TRUE(after.Connect("127.0.0.1", server.port(), 5000));
  std::string value;
  ASSERT_TRUE(after.Get(1, &value));
  std::vector<std::pair<std::uint64_t, std::string>> items;
  ASSERT_TRUE(after.ScanStream(1, 64, &items));
  EXPECT_EQ(items.size(), 64u);
  server.Stop();
  EXPECT_FALSE(server.crashed());
}

TEST(ScanServer, ServerStoppingMidStreamFailsTheClientCleanly) {
  KvStore store(LayoutConfig(ShardLayout::kRange, 4, 65536));
  // Small out-buffer cap so a big stream is guaranteed to be parked on
  // backpressure (still incomplete) when the server stops.
  serve::ServerConfig sc = StreamServerConfig(/*chunk_bytes=*/4096);
  sc.max_conn_out_bytes = 64 << 10;
  serve::KvServer server(&store, sc);
  ASSERT_TRUE(server.Start());
  const std::uint64_t kKeys = kTsan ? 4000 : 20000;
  {
    serve::KvClient loader;
    ASSERT_TRUE(loader.Connect("127.0.0.1", server.port(), 5000));
    LoadKeys(&loader, kKeys, 100);
  }
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));
  ASSERT_TRUE(client.ScanStreamBegin(1, 1000000));
  std::vector<std::pair<std::uint64_t, std::string>> items;
  bool done = false;
  ASSERT_TRUE(client.ScanStreamNext(&items, &done));
  ASSERT_FALSE(done);
  server.Stop();
  EXPECT_FALSE(server.crashed());
  // The client drains whatever chunks were already on the wire, then gets
  // a clean failure — never a hang, never a "complete" lie.
  bool failed = false;
  for (int i = 0; i < 1000000 && !done; ++i) {
    if (!client.ScanStreamNext(&items, &done)) {
      failed = true;
      break;
    }
  }
  EXPECT_TRUE(failed) << "stream claimed completion after " << items.size()
                      << " of " << kKeys << " items";
  EXPECT_LT(items.size(), kKeys);
  EXPECT_FALSE(client.connected());
}

// --- protocol: trailer tolerance ----------------------------------------

TEST(ScanProtocol, DecodeScanPayloadAcceptsTrailerAndLegacyReplies) {
  // Build an items blob: 2 items.
  std::string payload;
  serve::AppendU32(&payload, 2);
  serve::AppendU64(&payload, 7);
  serve::AppendU32(&payload, 3);
  payload.append("abc");
  serve::AppendU64(&payload, 9);
  serve::AppendU32(&payload, 0);

  // Legacy shape (no trailer): decodes, reports not-truncated.
  std::vector<std::pair<std::uint64_t, std::string>> items;
  bool truncated = true;
  std::uint64_t next_key = 99;
  ASSERT_TRUE(
      serve::DecodeScanPayload(payload, &items, &truncated, &next_key));
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].first, 7u);
  EXPECT_EQ(items[0].second, "abc");
  EXPECT_EQ(items[1].first, 9u);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(next_key, 0u);

  // Trailer shape: flag and continuation key decode.
  std::string with_trailer = payload;
  with_trailer.push_back(1);
  serve::AppendU64(&with_trailer, 10);
  items.clear();
  ASSERT_TRUE(serve::DecodeScanPayload(with_trailer, &items, &truncated,
                                       &next_key));
  EXPECT_EQ(items.size(), 2u);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(next_key, 10u);
  // Old-style callers that ignore the trailer still decode fine.
  items.clear();
  EXPECT_TRUE(serve::DecodeScanPayload(with_trailer, &items));

  // Anything between 0 and 9 trailing bytes is a framing error.
  for (std::size_t junk = 1; junk < 9; ++junk) {
    std::string bad = payload + std::string(junk, '\0');
    items.clear();
    EXPECT_FALSE(serve::DecodeScanPayload(bad, &items)) << junk << " bytes";
  }
}

TEST(ScanProtocol, DecodeScanChunkPayloadRoundTrips) {
  std::string payload;
  payload.push_back(1);  // more
  serve::AppendU64(&payload, 42);
  serve::AppendU32(&payload, 1);
  serve::AppendU64(&payload, 41);
  serve::AppendU32(&payload, 2);
  payload.append("hi");
  serve::ScanChunk chunk;
  ASSERT_TRUE(serve::DecodeScanChunkPayload(payload, &chunk));
  EXPECT_TRUE(chunk.more);
  EXPECT_EQ(chunk.next_key, 42u);
  ASSERT_EQ(chunk.items.size(), 1u);
  EXPECT_EQ(chunk.items[0].first, 41u);
  EXPECT_EQ(chunk.items[0].second, "hi");
  // Truncated or padded payloads are rejected.
  EXPECT_FALSE(serve::DecodeScanChunkPayload(
      std::string_view(payload).substr(0, 12), &chunk));
  EXPECT_FALSE(serve::DecodeScanChunkPayload(payload + "x", &chunk));
}

}  // namespace
}  // namespace rwd
