// Tests for the recoverable doubly-linked list (the paper's running
// example) and the persistent hash table.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

#include "src/core/transaction_manager.h"
#include "src/structures/phash.h"
#include "src/structures/pdlist.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

std::vector<std::uint64_t> Values(PDList& list, StorageOps* ops) {
  std::vector<std::uint64_t> out;
  list.ForEach(ops, [&](std::uint64_t v) { out.push_back(v); });
  return out;
}

class PDListTest : public ::testing::TestWithParam<RewindConfig> {};

TEST_P(PDListTest, PushAndRemoveSemantics) {
  NvmManager nvm(GetParam().nvm);
  TransactionManager tm(&nvm, GetParam());
  RewindOps ops(&tm);
  PDList list(&ops);
  list.PushBack(&ops, 2);
  list.PushBack(&ops, 3);
  list.PushFront(&ops, 1);
  EXPECT_EQ(Values(list, &ops), (std::vector<std::uint64_t>{1, 2, 3}));
  // Remove middle / head / tail, each the paper's Listing 1 transaction.
  list.Remove(&ops, list.Find(&ops, 2));
  EXPECT_EQ(Values(list, &ops), (std::vector<std::uint64_t>{1, 3}));
  list.Remove(&ops, list.Find(&ops, 1));
  list.Remove(&ops, list.Find(&ops, 3));
  EXPECT_TRUE(Values(list, &ops).empty());
  EXPECT_EQ(list.head(&ops), nullptr);
  EXPECT_EQ(list.tail(&ops), nullptr);
  EXPECT_EQ(nvm.heap().double_free_count(), 0u);
}

TEST_P(PDListTest, CrashSweepDuringRemovals) {
  // Crash at a spread of events while removing nodes; each Remove is one
  // persistent_atomic block, so the surviving list must be a prefix of the
  // removal sequence applied to {1..6}.
  for (std::uint64_t at = 1; at < 900; at += 17) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    RewindOps ops(&tm);
    PDList list(&ops);
    for (std::uint64_t v = 1; v <= 6; ++v) list.PushBack(&ops, v);
    if (!GetParam().force()) tm.Checkpoint();
    bool crashed = RunWithCrashAt(
        &nvm, at,
        [&] {
          list.Remove(&ops, list.Find(&ops, 3));
          list.Remove(&ops, list.Find(&ops, 1));
          list.Remove(&ops, list.Find(&ops, 6));
        },
        /*evict_probability=*/0.4, at);
    if (crashed) {
      tm.ForgetVolatileState();
      tm.Recover();
    }
    auto got = Values(list, &ops);
    std::vector<std::vector<std::uint64_t>> valid = {{1, 2, 3, 4, 5, 6},
                                                     {1, 2, 4, 5, 6},
                                                     {2, 4, 5, 6},
                                                     {2, 4, 5}};
    bool match = false;
    for (const auto& v : valid) match |= (v == got);
    ASSERT_TRUE(match) << "crash at " << at << " size " << got.size();
    if (!crashed) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PDListTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<RewindConfig>& info) {
      return ConfigName(info.param);
    });

class PHashTest : public ::testing::TestWithParam<RewindConfig> {};

TEST_P(PHashTest, PutGetEraseAndGrowth) {
  NvmManager nvm(GetParam().nvm);
  TransactionManager tm(&nvm, GetParam());
  RewindOps ops(&tm);
  PHash h(&ops, 8);
  std::map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(99);
  for (int step = 0; step < 5000; ++step) {
    std::uint64_t key = 1 + rng() % 700;
    if (rng() % 3 != 0) {
      std::uint64_t val = rng();
      h.Put(&ops, key, val);
      ref[key] = val;
    } else {
      EXPECT_EQ(h.Erase(&ops, key), ref.erase(key) > 0);
    }
    if (!GetParam().force() && step % 1000 == 999) tm.Checkpoint();
  }
  EXPECT_EQ(h.size(&ops), ref.size());
  EXPECT_GT(h.capacity(&ops), 700u);  // grew past the initial 8
  for (const auto& [k, v] : ref) {
    std::uint64_t got = 0;
    ASSERT_TRUE(h.Get(&ops, k, &got)) << k;
    ASSERT_EQ(got, v);
  }
  std::uint64_t ignored;
  EXPECT_FALSE(h.Get(&ops, 100000, &ignored));
}

TEST_P(PHashTest, CrashSweepKeepsCommittedEntries) {
  for (std::uint64_t at = 10; at < 2500; at += 113) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    RewindOps ops(&tm);
    PHash h(&ops, 8);
    std::map<std::uint64_t, std::uint64_t> committed;
    std::mt19937_64 rng(at);
    // The Put in flight at the crash may have committed just before the
    // exception propagated; both outcomes are valid for that one key.
    std::uint64_t pending_key = 0, pending_val = 0;
    bool crashed = RunWithCrashAt(
        &nvm, at,
        [&] {
          for (int step = 0; step < 150; ++step) {
            std::uint64_t key = 1 + rng() % 60;
            std::uint64_t val = rng();
            pending_key = key;
            pending_val = val;
            h.Put(&ops, key, val);  // one txn; committed on return
            committed[key] = val;
            pending_key = 0;
          }
        },
        /*evict_probability=*/0.3, at);
    if (!crashed) break;
    tm.ForgetVolatileState();
    tm.Recover();
    std::size_t expected_size = committed.size();
    for (const auto& [k, v] : committed) {
      std::uint64_t got = 0;
      ASSERT_TRUE(h.Get(&ops, k, &got)) << "crash at " << at << " key " << k;
      if (k == pending_key) {
        ASSERT_TRUE(got == v || got == pending_val) << "crash at " << at;
      } else {
        ASSERT_EQ(got, v) << "crash at " << at << " key " << k;
      }
    }
    if (pending_key != 0 &&
        committed.find(pending_key) == committed.end()) {
      std::uint64_t got = 0;
      if (h.Get(&ops, pending_key, &got)) {
        ASSERT_EQ(got, pending_val) << "crash at " << at;
        ++expected_size;
      }
    }
    ASSERT_EQ(h.size(&ops), expected_size) << "crash at " << at;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PHashTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<RewindConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace rwd
