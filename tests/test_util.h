// Shared helpers for the REWIND test suites.
#ifndef REWIND_TESTS_TEST_UTIL_H_
#define REWIND_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <functional>

#include "src/nvm/crash.h"
#include "src/nvm/nvm_config.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// NVM config for unit tests: crash simulation on, latency off, small heap.
inline NvmConfig TestNvmConfig(std::size_t heap_mb = 64) {
  NvmConfig cfg;
  cfg.mode = NvmMode::kCrashSim;
  cfg.heap_bytes = heap_mb << 20;
  cfg.write_latency_ns = 0;
  cfg.fence_latency_ns = 0;
  return cfg;
}

/// Runs `body` with a crash injected at persistence event `at` (1-based).
/// Returns true if the crash fired (false means the body completed with
/// fewer than `at` events). The simulated power failure is taken before
/// returning, so the caller can immediately run recovery.
///
/// `evict_probability`/`seed` control the randomized cacheline eviction the
/// crash applies to dirty lines.
inline bool RunWithCrashAt(NvmManager* nvm, std::uint64_t at,
                           const std::function<void()>& body,
                           double evict_probability = 0.0,
                           std::uint64_t seed = 0) {
  nvm->crash_injector().Arm(at);
  bool crashed = false;
  try {
    body();
  } catch (const CrashException&) {
    crashed = true;
  }
  nvm->crash_injector().Disarm();
  if (crashed) nvm->SimulateCrash(evict_probability, seed);
  return crashed;
}

}  // namespace rwd

#endif  // REWIND_TESTS_TEST_UTIL_H_
