// RewindRepl tests (thread-based, TSan-clean — the fork/SIGKILL sweeps
// live in repl_restart_test.cc): the ReplicationLog ring and subscriber
// cursors, in-process shipping into a second KvStore, TCP cold-join
// catch-up over a live KvServer (both the stream and the snapshot path),
// gap-forced resnapshot with delete reconciliation, follower read-only
// semantics with PROMOTE, read-your-writes tokens, and semi-synchronous
// leader acks.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/repl/applier.h"
#include "src/repl/follower_agent.h"
#include "src/repl/replication_log.h"
#include "src/repl/shipper.h"
#include "src/repl/snapshot.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

KvConfig ReplKvConfig(std::size_t shards = 4) {
  KvConfig cfg;
  cfg.rewind.nvm = TestNvmConfig(64);
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 32;
  cfg.rewind.batch_group_size = 4;
  cfg.shards = shards;
  return cfg;
}

serve::ServerConfig TestServerConfig(std::uint32_t batch_window_us = 100) {
  serve::ServerConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.workers = 2;
  cfg.batch_window_us = batch_window_us;
  return cfg;
}

std::string ValueFor(std::uint64_t key, std::uint64_t version) {
  return WorkloadDriver::MakeValue(key, version, 48);
}

/// Polls `pred` every 2 ms until it holds or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred,
               std::uint32_t timeout_ms = 10000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

KvWriteOp PutOp(std::uint64_t key, std::string value) {
  KvWriteOp op;
  op.kind = KvWriteOp::Kind::kPut;
  op.key = key;
  op.value = std::move(value);
  return op;
}

// The ring hands back exactly the published records, positions that fell
// out of the ring report a gap, and subscriber cursors drive lag and the
// semi-sync WaitAcked barrier.
TEST(ReplicationLog, RingPollAndSubscriberCursors) {
  repl::ReplicationLog log(/*capacity=*/4);
  EXPECT_EQ(log.last_gtid(), 0u);
  EXPECT_TRUE(log.CanResume(0));  // empty log: nothing to miss

  for (std::uint64_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(log.Publish({PutOp(i, "v" + std::to_string(i))}), i);
  }
  std::vector<repl::ReplRecord> out;
  ASSERT_EQ(log.Poll(0, 16, 0, &out), repl::ReplicationLog::PollResult::kOk);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].gtid, 1u);
  EXPECT_EQ(out[2].gtid, 3u);
  ASSERT_EQ(out[1].ops.size(), 1u);
  EXPECT_EQ(out[1].ops[0].key, 2u);
  EXPECT_EQ(out[1].ops[0].value, "v2");

  // Overflow the capacity-4 ring: position 0 now gaps, recent resumes.
  for (std::uint64_t i = 4; i <= 9; ++i) {
    log.Publish({PutOp(i, "x")});
  }
  EXPECT_FALSE(log.CanResume(0));
  EXPECT_TRUE(log.CanResume(5));  // ring holds 6..9
  out.clear();
  EXPECT_EQ(log.Poll(0, 16, 0, &out),
            repl::ReplicationLog::PollResult::kGap);
  ASSERT_EQ(log.Poll(7, 16, 0, &out),
            repl::ReplicationLog::PollResult::kOk);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].gtid, 8u);

  // Cursors: lag tracks the slowest subscriber; WaitAcked releases once
  // every cursor reaches the gtid and fails fast on timeout before that.
  std::uint64_t a = log.Subscribe("a");
  std::uint64_t b = log.Subscribe("b");
  EXPECT_EQ(log.subscriber_count(), 2u);
  log.Ack(a, 9);
  log.Ack(b, 7);
  EXPECT_EQ(log.lag_batches(), 2u);
  EXPECT_FALSE(log.WaitAcked(9, 20));
  log.Ack(b, 9);
  EXPECT_TRUE(log.WaitAcked(9, 1000));
  EXPECT_EQ(log.lag_batches(), 0u);
  log.Unsubscribe(a);
  log.Unsubscribe(b);
  EXPECT_TRUE(log.WaitAcked(42, 0));  // no subscribers: trivially acked
}

// The record codec round-trips puts and deletes byte-exactly.
TEST(ReplicationLog, RecordCodecRoundTrip) {
  repl::ReplRecord rec;
  rec.gtid = 77;
  rec.ops.push_back(PutOp(5, std::string(300, 'z')));
  KvWriteOp del;
  del.kind = KvWriteOp::Kind::kDelete;
  del.key = 6;
  rec.ops.push_back(del);

  std::string wire;
  repl::EncodeRecordPayload(rec, &wire);
  repl::ReplRecord back;
  ASSERT_TRUE(repl::DecodeRecordPayload(wire, &back));
  EXPECT_EQ(back.gtid, 77u);
  ASSERT_EQ(back.ops.size(), 2u);
  EXPECT_EQ(back.ops[0].kind, KvWriteOp::Kind::kPut);
  EXPECT_EQ(back.ops[0].value, rec.ops[0].value);
  EXPECT_EQ(back.ops[1].kind, KvWriteOp::Kind::kDelete);
  EXPECT_EQ(back.ops[1].key, 6u);

  // Truncated payloads fail cleanly instead of over-reading.
  EXPECT_FALSE(repl::DecodeRecordPayload(
      std::string_view(wire).substr(0, wire.size() - 1), &back));
}

// In-process topology: a Shipper pumps the leader's log straight into a
// second store's applier. The follower converges, and re-delivering an
// already-applied record is skipped, not double-applied.
TEST(Replication, InProcessShipperConverges) {
  KvStore leader(ReplKvConfig());
  // Big enough that the synchronous apply sink can never fall out of the
  // ring while the put loop sprints ahead.
  repl::ReplicationLog log(1024);
  leader.SetReplicationLog(&log);

  KvStore follower(ReplKvConfig(/*shards=*/3));
  repl::ReplApplier applier(&follower);

  repl::Shipper shipper(&log, /*start_after=*/0,
                        [&](const repl::ReplRecord& rec) {
                          return applier.Apply(rec);
                        });
  shipper.Start();

  for (std::uint64_t k = 1; k <= 200; ++k) {
    ASSERT_TRUE(leader.Put(k, ValueFor(k, 0)));
  }
  ASSERT_TRUE(leader.Delete(50));
  ASSERT_TRUE(leader.MultiPut({{500, "a"}, {501, "b"}}));

  std::uint64_t last = log.last_gtid();
  ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= last; }));
  shipper.Stop();
  EXPECT_FALSE(shipper.gapped());

  EXPECT_EQ(follower.Size(), leader.Size());
  std::string value;
  ASSERT_TRUE(follower.Get(7, &value));
  EXPECT_EQ(value, ValueFor(7, 0));
  EXPECT_FALSE(follower.Get(50, &value));
  ASSERT_TRUE(follower.Get(501, &value));
  EXPECT_EQ(value, "b");

  // Idempotence: replay the last record by hand — counted as skipped.
  std::vector<repl::ReplRecord> out;
  ASSERT_EQ(log.Poll(last - 1, 1, 0, &out),
            repl::ReplicationLog::PollResult::kOk);
  std::uint64_t skipped_before = applier.records_skipped();
  EXPECT_TRUE(applier.Apply(out[0]));
  EXPECT_EQ(applier.records_skipped(), skipped_before + 1);
  EXPECT_EQ(follower.Size(), leader.Size());
}

// TakeSnapshot orders the gtid read before the scan so concurrent commits
// land either in the snapshot or in the stream the follower replays next —
// here, statically: snapshot matches store content at the recorded gtid.
TEST(Replication, SnapshotCapturesStoreAtGtid) {
  KvStore leader(ReplKvConfig());
  repl::ReplicationLog log(64);
  leader.SetReplicationLog(&log);
  for (std::uint64_t k = 1; k <= 30; ++k) {
    ASSERT_TRUE(leader.Put(k, ValueFor(k, 0)));
  }
  ASSERT_TRUE(leader.Delete(11));

  repl::StoreSnapshot snap = repl::TakeSnapshot(&leader, &log);
  EXPECT_EQ(snap.gtid, log.last_gtid());
  EXPECT_EQ(snap.kvs.size(), 29u);
  for (const auto& [key, value] : snap.kvs) {
    EXPECT_NE(key, 11u);
    EXPECT_EQ(value, ValueFor(key, 0));
  }
}

// TCP cold join while the whole history is still in the ring: the follower
// resumes from gtid 0 and streams everything — no snapshot involved.
TEST(Replication, TcpColdJoinStreamsFromRing) {
  KvStore leader(ReplKvConfig());
  repl::ReplicationLog log(4096);
  leader.SetReplicationLog(&log);
  serve::KvServer server(&leader, TestServerConfig());
  ASSERT_TRUE(server.Start());

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));
  std::uint64_t gtid = 0;
  for (std::uint64_t k = 1; k <= 120; ++k) {
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0), &gtid));
    EXPECT_GT(gtid, 0u) << "write acks must carry the replication gtid";
  }

  KvStore fstore(ReplKvConfig(/*shards=*/2));
  repl::ReplApplier applier(&fstore);
  repl::FollowerAgent agent(&applier, "127.0.0.1", server.port());
  agent.Start();

  std::uint64_t last = log.last_gtid();
  ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= last; }));
  EXPECT_EQ(agent.snapshots_loaded(), 0u);
  EXPECT_EQ(fstore.Size(), 120u);

  // The stream stays live: new leader writes keep flowing.
  ASSERT_TRUE(client.Put(7, ValueFor(7, 1), &gtid));
  ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= gtid; }));
  std::string value;
  ASSERT_TRUE(fstore.Get(7, &value));
  EXPECT_EQ(value, ValueFor(7, 1));

  agent.Stop();
  server.Stop();
}

// TCP cold join after the ring rolled over: the leader pushes a full
// snapshot first (delete already folded in), then streams from the
// snapshot position.
TEST(Replication, TcpColdJoinFallsBackToSnapshot) {
  KvStore leader(ReplKvConfig());
  repl::ReplicationLog log(/*capacity=*/8);  // tiny: force the gap
  leader.SetReplicationLog(&log);
  serve::KvServer server(&leader, TestServerConfig());
  ASSERT_TRUE(server.Start());

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));
  for (std::uint64_t k = 1; k <= 60; ++k) {
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0)));
  }
  ASSERT_TRUE(client.Delete(33));
  ASSERT_FALSE(log.CanResume(0));  // a cold joiner cannot stream

  KvStore fstore(ReplKvConfig(/*shards=*/2));
  repl::ReplApplier applier(&fstore);
  repl::FollowerAgent agent(&applier, "127.0.0.1", server.port());
  agent.Start();

  std::uint64_t last = log.last_gtid();
  ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= last; }));
  EXPECT_EQ(agent.snapshots_loaded(), 1u);
  EXPECT_EQ(fstore.Size(), 59u);
  std::string value;
  EXPECT_FALSE(fstore.Get(33, &value));
  ASSERT_TRUE(fstore.Get(60, &value));
  EXPECT_EQ(value, ValueFor(60, 0));

  // Post-snapshot the link is a normal stream.
  std::uint64_t gtid = 0;
  ASSERT_TRUE(client.Put(1000, "after-snap", &gtid));
  ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= gtid; }));
  ASSERT_TRUE(fstore.Get(1000, &value));
  EXPECT_EQ(value, "after-snap");

  agent.Stop();
  server.Stop();
}

// A follower that disconnects and falls further behind than the ring must
// resynchronize from a snapshot, and the install reconciles deletes: keys
// removed on the leader during the gap disappear on the follower too.
TEST(Replication, GapForcesResnapshotAndReconcilesDeletes) {
  KvStore leader(ReplKvConfig());
  repl::ReplicationLog log(/*capacity=*/8);
  leader.SetReplicationLog(&log);
  serve::KvServer server(&leader, TestServerConfig());
  ASSERT_TRUE(server.Start());

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));
  for (std::uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0)));
  }

  KvStore fstore(ReplKvConfig(/*shards=*/2));
  repl::ReplApplier applier(&fstore);
  {
    repl::FollowerAgent agent(&applier, "127.0.0.1", server.port());
    agent.Start();
    std::uint64_t last = log.last_gtid();
    ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= last; }));
    agent.Stop();  // follower drops off the air
  }

  // While the follower is away: delete a key it holds and publish more
  // records than the ring keeps, so its position gaps out.
  ASSERT_TRUE(client.Delete(2));
  for (std::uint64_t k = 100; k < 120; ++k) {
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0)));
  }
  ASSERT_FALSE(log.CanResume(applier.applied_gtid()));

  repl::FollowerAgent rejoin(&applier, "127.0.0.1", server.port());
  rejoin.Start();
  std::uint64_t last = log.last_gtid();
  ASSERT_TRUE(WaitUntil([&] { return applier.applied_gtid() >= last; }));
  EXPECT_EQ(rejoin.snapshots_loaded(), 1u);
  std::string value;
  EXPECT_FALSE(fstore.Get(2, &value));  // delete reconciled
  EXPECT_EQ(fstore.Size(), leader.Size());

  rejoin.Stop();
  server.Stop();
}

// Follower serving semantics over TCP: writes bounce with NOT_LEADER,
// GET_RYW honors the token (waits for the apply, times out when the
// position never arrives), and PROMOTE flips the node to a writable
// leader, firing the promotion hook exactly once.
TEST(Replication, FollowerReadsRywAndPromote) {
  KvStore leader(ReplKvConfig());
  repl::ReplicationLog log(4096);
  leader.SetReplicationLog(&log);
  serve::KvServer lserver(&leader, TestServerConfig());
  ASSERT_TRUE(lserver.Start());

  KvStore fstore(ReplKvConfig(/*shards=*/2));
  repl::ReplApplier applier(&fstore);
  repl::FollowerAgent agent(&applier, "127.0.0.1", lserver.port());

  int promotions = 0;
  serve::ServerConfig fconfig = TestServerConfig();
  fconfig.read_only = true;
  fconfig.applier = &applier;
  fconfig.ryw_wait_ms = 150;
  fconfig.on_promote = [&] {
    ++promotions;
    agent.Stop();
  };
  serve::KvServer fserver(&fstore, fconfig);
  ASSERT_TRUE(fserver.Start());
  agent.Start();

  serve::KvClient to_leader;
  ASSERT_TRUE(to_leader.Connect("127.0.0.1", lserver.port(), 5000));
  serve::KvClient to_follower;
  ASSERT_TRUE(to_follower.Connect("127.0.0.1", fserver.port(), 5000));

  // Writes on the follower are refused with NOT_LEADER.
  to_follower.QueuePut(1, "nope");
  serve::KvClient::Reply reply;
  ASSERT_TRUE(to_follower.Flush());
  ASSERT_TRUE(to_follower.ReadReply(&reply));
  EXPECT_EQ(reply.status, serve::Status::kNotLeader);

  // RYW: the leader's ack gtid is a token the follower honors — the read
  // blocks until the covering batch applied, then returns the value.
  std::uint64_t gtid = 0;
  ASSERT_TRUE(to_leader.Put(42, ValueFor(42, 3), &gtid));
  ASSERT_GT(gtid, 0u);
  std::string value;
  ASSERT_TRUE(to_follower.GetRyw(42, gtid, &value));
  EXPECT_EQ(value, ValueFor(42, 3));

  // A token from the future times out with SERVER_ERROR instead of
  // returning stale data.
  to_follower.QueueGetRyw(42, gtid + 1000000);
  ASSERT_TRUE(to_follower.Flush());
  ASSERT_TRUE(to_follower.ReadReply(&reply));
  EXPECT_EQ(reply.status, serve::Status::kServerError);

  // PROMOTE: the node starts taking writes and the hook fired once.
  ASSERT_TRUE(to_follower.Promote());
  ASSERT_TRUE(to_follower.Promote());  // idempotent
  EXPECT_EQ(promotions, 1);
  ASSERT_TRUE(to_follower.Put(4242, "post-promotion"));
  ASSERT_TRUE(to_follower.Get(4242, &value));
  EXPECT_EQ(value, "post-promotion");
  // On the (now) leader the RYW wait is trivially satisfied.
  ASSERT_TRUE(to_follower.GetRyw(4242, gtid, &value));

  fserver.Stop();
  lserver.Stop();
}

// Semi-synchronous mode: with a follower subscribed, a write ack implies
// the follower already applied the covering batch — the client can turn
// around and read its write on the follower with a plain GET.
TEST(Replication, SyncReplAcksAfterFollowerApplied) {
  KvStore leader(ReplKvConfig());
  repl::ReplicationLog log(4096);
  leader.SetReplicationLog(&log);
  serve::ServerConfig lconfig = TestServerConfig();
  lconfig.sync_repl = true;
  lconfig.sync_repl_timeout_ms = 5000;
  serve::KvServer lserver(&leader, lconfig);
  ASSERT_TRUE(lserver.Start());

  KvStore fstore(ReplKvConfig(/*shards=*/2));
  repl::ReplApplier applier(&fstore);
  repl::FollowerAgent agent(&applier, "127.0.0.1", lserver.port());
  agent.Start();

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", lserver.port(), 5000));
  // First write races the subscription (no subscriber -> no wait); make
  // sure the cursor is registered before asserting the sync property.
  ASSERT_TRUE(client.Put(1, ValueFor(1, 0)));
  ASSERT_TRUE(WaitUntil([&] { return log.subscriber_count() > 0; }));

  for (std::uint64_t k = 2; k <= 40; ++k) {
    std::uint64_t gtid = 0;
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0), &gtid));
    EXPECT_GE(applier.applied_gtid(), gtid)
        << "sync ack returned before follower applied gtid " << gtid;
    std::string value;
    ASSERT_TRUE(fstore.Get(k, &value));
    EXPECT_EQ(value, ValueFor(k, 0));
  }

  agent.Stop();
  lserver.Stop();
}

}  // namespace
}  // namespace rwd
