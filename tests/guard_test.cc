// RewindGuard tests (thread-based, TSan-clean — the fork/SIGKILL epoch
// and auto-failover sweeps live in guard_restart_test.cc). Covered here:
//
//  * the deterministic timing functions (reconnect backoff, election
//    delay) and the PR 10 wire codecs (kNotLeader hint payload, epoch-
//    carrying repl frames, the REPL_STATUS role trailer);
//  * the FaultProxy harness itself — transparent forwarding, one-way
//    black-holes, connection kills, refused endpoints — since every
//    failover guarantee below is only as trustworthy as the faults;
//  * guard role mechanics: epoch monotonicity across promotions, stale-
//    heartbeat rejection, fencing on a higher observed epoch, election
//    on heartbeat silence, and the disarmed-follower rule;
//  * the end-to-end pair: leader + follower with guards on both sides,
//    partitioned by the proxy — the follower self-promotes, the old
//    leader self-fences, no write is ever acked by both, and a
//    FailoverClient rides the redirect to the new leader.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/repl/applier.h"
#include "src/repl/follower_agent.h"
#include "src/repl/guard.h"
#include "src/repl/replication_log.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "tests/net_fault.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

KvConfig GuardKvConfig(std::size_t shards = 2) {
  KvConfig cfg;
  cfg.rewind.nvm = TestNvmConfig(32);
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 32;
  cfg.shards = shards;
  return cfg;
}

serve::ServerConfig GuardServerConfig() {
  serve::ServerConfig cfg;
  cfg.port = 0;
  cfg.workers = 2;
  cfg.batch_window_us = 100;
  return cfg;
}

/// Polls `pred` every 2 ms until it holds or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred,
               std::uint32_t timeout_ms = 10000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

// --- deterministic timing units -------------------------------------

// Same (attempt, seed) always yields the same delay; the base doubles
// from 50ms to the 2s cap; jitter stays under half the base.
TEST(GuardUnits, ReconnectBackoffDeterministicAndCapped) {
  for (std::uint32_t attempt = 0; attempt < 12; ++attempt) {
    std::uint32_t a = repl::ReconnectBackoffMs(attempt, 42);
    std::uint32_t b = repl::ReconnectBackoffMs(attempt, 42);
    EXPECT_EQ(a, b) << "attempt " << attempt;
  }
  EXPECT_GE(repl::ReconnectBackoffMs(0, 7), 50u);
  EXPECT_LT(repl::ReconnectBackoffMs(0, 7), 50u + 26u);
  // From attempt 6 on the base is pinned at the 2s cap.
  for (std::uint32_t attempt = 6; attempt < 10; ++attempt) {
    std::uint32_t d = repl::ReconnectBackoffMs(attempt, 99);
    EXPECT_GE(d, 2000u);
    EXPECT_LE(d, 3000u);
  }
  // Different seeds spread a follower fleet out (true for these seeds;
  // the jitter space is 25ms wide at attempt 0).
  EXPECT_NE(repl::ReconnectBackoffMs(0, 1), repl::ReconnectBackoffMs(0, 3));
}

// The election delay always exceeds the leader's self-fence point
// (lease), grows with replication lag, and clamps under 15/8 lease so
// promotion lands within two lease intervals.
TEST(GuardUnits, ElectionDelayExceedsLeaseAndClamps) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 200;
  cfg.start_leader = false;
  cfg.jitter_seed = 5;
  repl::RewindGuard guard(&store, cfg);
  EXPECT_EQ(guard.heartbeat_ms(), 50u);  // lease / 4

  std::uint32_t base = guard.ElectionDelayMs(0);
  EXPECT_GT(base, 200u + 50u);  // strictly past lease + heartbeat
  EXPECT_GE(guard.ElectionDelayMs(8), base);
  EXPECT_GE(guard.ElectionDelayMs(16), guard.ElectionDelayMs(8));
  // Lag beyond 16 batches adds nothing (the penalty saturates).
  EXPECT_EQ(guard.ElectionDelayMs(16), guard.ElectionDelayMs(1000));
  for (std::uint64_t lag : {0ull, 4ull, 16ull, 1000ull}) {
    EXPECT_LE(guard.ElectionDelayMs(lag), 200u * 15 / 8);
  }
  EXPECT_EQ(base, guard.ElectionDelayMs(0));  // deterministic

  // A tiny lease still clamps: everything fits under 15/8 * lease.
  repl::GuardConfig tiny = cfg;
  tiny.lease_ms = 8;
  repl::RewindGuard tguard(&store, tiny);
  EXPECT_LE(tguard.ElectionDelayMs(1000), 15u);
}

// --- PR 10 wire codecs ----------------------------------------------

// The kNotLeader payload round-trips epoch + address; an empty payload
// (pre-guard server) and an addr-less hint both decode cleanly; junk
// ports degrade to "epoch only", truncation is rejected.
TEST(GuardCodec, NotLeaderPayloadRoundTrip) {
  std::string wire;
  serve::AppendNotLeaderPayload(&wire, 7, "127.0.0.1:7171");
  serve::NotLeaderHint hint;
  ASSERT_TRUE(serve::DecodeNotLeaderPayload(wire, &hint));
  EXPECT_EQ(hint.epoch, 7u);
  ASSERT_TRUE(hint.has_addr);
  EXPECT_EQ(hint.host, "127.0.0.1");
  EXPECT_EQ(hint.port, 7171);

  wire.clear();
  serve::AppendNotLeaderPayload(&wire, 3, "");
  ASSERT_TRUE(serve::DecodeNotLeaderPayload(wire, &hint));
  EXPECT_EQ(hint.epoch, 3u);
  EXPECT_FALSE(hint.has_addr);

  ASSERT_TRUE(serve::DecodeNotLeaderPayload("", &hint));  // legacy
  EXPECT_EQ(hint.epoch, 0u);
  EXPECT_FALSE(hint.has_addr);

  for (const char* bad : {"host-without-colon", "h:0", "h:99999", "h:2x"}) {
    wire.clear();
    serve::AppendNotLeaderPayload(&wire, 9, bad);
    ASSERT_TRUE(serve::DecodeNotLeaderPayload(wire, &hint)) << bad;
    EXPECT_EQ(hint.epoch, 9u);
    EXPECT_FALSE(hint.has_addr) << bad;
  }

  wire.clear();
  serve::AppendNotLeaderPayload(&wire, 9, "127.0.0.1:7171");
  EXPECT_FALSE(serve::DecodeNotLeaderPayload(
      std::string_view(wire).substr(0, wire.size() - 1), &hint));
  EXPECT_FALSE(serve::DecodeNotLeaderPayload("12345", &hint));
}

// Subscribe / ack / heartbeat frames all carry [u64][u64] bodies with
// the epoch in the documented slot.
TEST(GuardCodec, ReplFramesCarryEpoch) {
  struct Case {
    std::function<void(std::string*)> enc;
    serve::Op op;
    std::uint64_t first, second;
  };
  std::vector<Case> cases = {
      {[](std::string* o) { serve::EncodeReplSubscribe(o, 55, 4); },
       serve::Op::kReplSubscribe, 55, 4},
      {[](std::string* o) { serve::EncodeReplAck(o, 90, 6); },
       serve::Op::kReplAck, 90, 6},
      {[](std::string* o) { serve::EncodeReplHeartbeat(o, 6, 90); },
       serve::Op::kReplHeartbeat, 6, 90},
  };
  for (const Case& c : cases) {
    std::string wire;
    c.enc(&wire);
    ASSERT_EQ(wire.size(), 4u + 1 + 16);
    EXPECT_EQ(serve::ReadU32(wire.data()), 17u);  // tag + 16-byte body
    EXPECT_EQ(wire[4], static_cast<char>(c.op));
    EXPECT_EQ(serve::ReadU64(wire.data() + 5), c.first);
    EXPECT_EQ(serve::ReadU64(wire.data() + 13), c.second);
  }
}

// REPL_STATUS decodes both the pre-guard shape (no trailer) and the
// PR 10 [epoch][role] trailer; a torn trailer is a framing error.
TEST(GuardCodec, ReplStatusRoleTrailer) {
  std::string payload;
  serve::AppendU64(&payload, 120);  // last_gtid
  serve::AppendU32(&payload, 1);    // one subscriber
  serve::AppendU16(&payload, 4);
  payload += "foll";
  serve::AppendU64(&payload, 118);  // acked
  serve::AppendU64(&payload, 2);    // lag
  serve::AppendU64(&payload, 30);   // staleness

  serve::ReplStatusReply r;
  ASSERT_TRUE(serve::DecodeReplStatusPayload(payload, &r));
  EXPECT_EQ(r.last_gtid, 120u);
  ASSERT_EQ(r.subs.size(), 1u);
  EXPECT_EQ(r.subs[0].name, "foll");
  EXPECT_FALSE(r.has_role);
  EXPECT_EQ(r.epoch, 0u);

  std::string with_role = payload;
  serve::AppendU64(&with_role, 12);
  with_role.push_back('\1');
  ASSERT_TRUE(serve::DecodeReplStatusPayload(with_role, &r));
  EXPECT_TRUE(r.has_role);
  EXPECT_EQ(r.epoch, 12u);
  EXPECT_TRUE(r.leader);

  std::string torn = payload;
  serve::AppendU32(&torn, 1);  // neither 0 nor 9 trailing bytes
  EXPECT_FALSE(serve::DecodeReplStatusPayload(torn, &r));
}

// --- the fault harness itself ---------------------------------------

// With no fault armed the proxy is invisible: a client through it sees
// the same server, and both direction counters advance.
TEST(FaultProxy, ForwardsTransparently) {
  KvStore store(GuardKvConfig());
  serve::KvServer server(&store, GuardServerConfig());
  ASSERT_TRUE(server.Start());
  testfault::FaultProxy proxy(server.port());
  ASSERT_TRUE(proxy.Start());

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port(), 5000));
  ASSERT_TRUE(client.Put(1, "through-the-proxy"));
  std::string value;
  ASSERT_TRUE(client.Get(1, &value));
  EXPECT_EQ(value, "through-the-proxy");
  EXPECT_EQ(proxy.connections(), 1u);
  EXPECT_GT(proxy.forwarded_c2s(), 0u);
  EXPECT_GT(proxy.forwarded_s2c(), 0u);
  EXPECT_EQ(proxy.dropped_bytes(), 0u);

  client.Close();
  proxy.Stop();
  server.Stop();
}

// A server->client black-hole consumes the reply (the client times out
// against silence, not a reset); KillConnections then breaks the link
// outright, and a reconnect through the healed proxy works.
TEST(FaultProxy, BlackHoleSilencesAndKillBreaks) {
  KvStore store(GuardKvConfig());
  serve::KvServer server(&store, GuardServerConfig());
  ASSERT_TRUE(server.Start());
  testfault::FaultProxy proxy(server.port());
  ASSERT_TRUE(proxy.Start());

  serve::KvClient client;
  // Short recv timeout: the black-holed reply must fail the read fast.
  ASSERT_TRUE(client.Connect("127.0.0.1", proxy.port(), 400));
  ASSERT_TRUE(client.Put(5, "pre-fault"));

  proxy.BlackHole(/*client_to_server=*/false, /*server_to_client=*/true);
  client.QueueGet(5);
  serve::KvClient::Reply reply;
  ASSERT_TRUE(client.Flush());  // request still flows c2s
  EXPECT_FALSE(client.ReadReply(&reply));
  EXPECT_TRUE(WaitUntil([&] { return proxy.dropped_bytes() > 0; }, 2000));

  proxy.BlackHole(false, false);
  proxy.KillConnections();
  client.Close();

  serve::KvClient again;
  ASSERT_TRUE(again.Connect("127.0.0.1", proxy.port(), 5000));
  std::string value;
  ASSERT_TRUE(again.Get(5, &value));
  EXPECT_EQ(value, "pre-fault");

  again.Close();
  proxy.Stop();
  server.Stop();
}

// A refusing endpoint never hangs a FailoverClient: it burns one
// transport attempt and rotates to the healthy endpoint.
TEST(FaultProxy, RefusedEndpointRotates) {
  KvStore store(GuardKvConfig());
  serve::KvServer server(&store, GuardServerConfig());
  ASSERT_TRUE(server.Start());
  testfault::FaultProxy proxy(server.port());
  ASSERT_TRUE(proxy.Start());
  proxy.RefuseNew(true);

  serve::FailoverClient::Config fc;
  fc.endpoints = {"127.0.0.1:" + std::to_string(proxy.port()),
                  "127.0.0.1:" + std::to_string(server.port())};
  fc.timeout_ms = 500;
  fc.max_attempts = 6;
  fc.backoff_base_ms = 5;
  fc.backoff_cap_ms = 20;
  serve::FailoverClient fclient(fc);
  ASSERT_TRUE(fclient.Put(9, "rotated"));
  EXPECT_EQ(fclient.endpoint(),
            "127.0.0.1:" + std::to_string(server.port()));
  EXPECT_GE(fclient.retries(), 1u);
  std::string value;
  ASSERT_TRUE(fclient.Get(9, &value));
  EXPECT_EQ(value, "rotated");

  fclient.Close();
  proxy.Stop();
  server.Stop();
}

// --- guard role mechanics -------------------------------------------

// Promotions bump past everything ever seen on the wire, so any two
// leaderships in history carry distinct, ordered epochs.
TEST(GuardRoles, PromoteBumpsEpochPastMaxSeen) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 200;
  cfg.start_leader = false;
  repl::RewindGuard guard(&store, cfg);
  EXPECT_EQ(guard.epoch(), 0u);
  EXPECT_FALSE(guard.is_leader());

  guard.ObserveRemoteEpoch(5);  // follower adopts immediately
  EXPECT_EQ(guard.epoch(), 5u);
  EXPECT_EQ(guard.Promote(), 6u);
  EXPECT_TRUE(guard.is_leader());
  EXPECT_EQ(guard.Promote(), 7u);  // re-promotion fences epoch-6 peers

  guard.DemoteToFollower();
  EXPECT_FALSE(guard.is_leader());
  EXPECT_EQ(guard.epoch(), 7u);  // demotion never rolls the epoch back
  EXPECT_EQ(guard.demotions(), 1u);
}

// Heartbeats from a lower epoch are refused (the caller drops that
// stale leader's session); equal/higher epochs renew and adopt.
TEST(GuardRoles, StaleHeartbeatRejected) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 200;
  cfg.start_leader = false;
  repl::RewindGuard guard(&store, cfg);
  guard.AdoptEpoch(5);

  EXPECT_FALSE(guard.ObserveLeaderHeartbeat(3, 100, 90));
  EXPECT_EQ(guard.lease_renewals(), 0u);
  EXPECT_TRUE(guard.ObserveLeaderHeartbeat(5, 100, 90));
  EXPECT_TRUE(guard.ObserveLeaderHeartbeat(7, 120, 100));
  EXPECT_EQ(guard.epoch(), 7u);
  EXPECT_EQ(guard.lease_renewals(), 2u);
}

// A leader that sees a higher epoch on the wire fences itself from the
// monitor thread: role drops, the epoch is adopted, on_fence fires.
TEST(GuardRoles, LeaderFencesOnHigherObservedEpoch) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 100;
  cfg.start_leader = true;
  repl::RewindGuard guard(&store, cfg);
  std::atomic<int> fenced{0};
  guard.on_fence = [&] { fenced.fetch_add(1); };
  guard.Start();
  EXPECT_TRUE(guard.is_leader());

  guard.ObserveRemoteEpoch(guard.epoch() + 9);
  ASSERT_TRUE(WaitUntil([&] { return !guard.is_leader(); }, 3000));
  EXPECT_GE(guard.epoch(), 9u);
  EXPECT_EQ(guard.demotions(), 1u);
  ASSERT_TRUE(WaitUntil([&] { return fenced.load() == 1; }, 1000));
  guard.Stop();
}

// While heartbeats keep arriving a follower never elects; once they
// stop, it elects within the (clamped) election delay and the election
// callback substitutes for self-promotion.
TEST(GuardRoles, FollowerElectsOnlyAfterHeartbeatSilence) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 100;
  cfg.start_leader = false;
  cfg.jitter_seed = 11;
  repl::RewindGuard guard(&store, cfg);
  std::atomic<int> elected{0};
  guard.on_election = [&] {
    elected.fetch_add(1);
    guard.Promote();
  };
  guard.Start();

  // Feed heartbeats for ~3 lease intervals: silence never accumulates.
  auto feed_until = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < feed_until) {
    ASSERT_TRUE(guard.ObserveLeaderHeartbeat(4, 50, 50));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(guard.elections(), 0u);
  EXPECT_FALSE(guard.is_leader());

  // Silence: election no later than 15/8 lease + one monitor tick.
  ASSERT_TRUE(WaitUntil([&] { return elected.load() > 0; }, 2000));
  EXPECT_TRUE(guard.is_leader());
  EXPECT_EQ(guard.elections(), 1u);
  EXPECT_GE(guard.epoch(), 5u);  // past the heartbeat epoch it adopted
  guard.Stop();
}

// The disarmed-follower rule: a node that never heard a leader — or
// was just fenced — must not elect itself against silence. Only a
// fresh heartbeat re-arms the lease.
TEST(GuardRoles, DisarmedFollowerNeverElects) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 60;
  cfg.start_leader = false;
  repl::RewindGuard guard(&store, cfg);
  guard.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // 5 leases
  EXPECT_EQ(guard.elections(), 0u);
  EXPECT_FALSE(guard.is_leader());

  // Arm, then demote (the fenced ex-leader path): disarmed again.
  ASSERT_TRUE(guard.ObserveLeaderHeartbeat(1, 0, 0));
  guard.DemoteToFollower();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(guard.elections(), 0u);
  guard.Stop();
}

// A solo leader with no follower history must keep serving: the lease
// only fences leaders that once HAD a follower (expects_follower).
TEST(GuardRoles, SoloLeaderNeverSelfFences) {
  KvStore store(GuardKvConfig());
  repl::GuardConfig cfg;
  cfg.lease_ms = 60;
  cfg.start_leader = true;
  repl::RewindGuard guard(&store, cfg);
  guard.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(guard.is_leader());
  EXPECT_EQ(guard.demotions(), 0u);

  // With follower contact on record, a lapse does fence.
  guard.ObserveFollowerContact();
  EXPECT_TRUE(guard.expects_follower());
  ASSERT_TRUE(WaitUntil([&] { return !guard.is_leader(); }, 2000));
  EXPECT_EQ(guard.demotions(), 1u);
  guard.Stop();
}

// --- end-to-end failover under the fault harness --------------------

// The split-brain acceptance scenario, in-process: a semi-synchronous
// leader + guarded follower replicate through the FaultProxy. A full
// partition makes the follower self-promote (no PROMOTE op anywhere)
// and the old leader self-fence. Every write acked before the
// partition is served by the new leader; writes aimed at the fenced
// ex-leader bounce with kNotLeader (never acked by both nodes); a
// FailoverClient follows the redirect hint to the new leader.
TEST(Failover, PartitionPromotesFollowerAndFencesOldLeader) {
  // Leader node.
  KvStore lstore(GuardKvConfig());
  repl::ReplicationLog llog(4096);
  lstore.SetReplicationLog(&llog);

  // Follower node (its own log, so it could lead onward replication).
  KvStore fstore(GuardKvConfig());
  repl::ReplicationLog flog(4096);
  fstore.SetReplicationLog(&flog);
  repl::ReplApplier applier(&fstore);

  // Follower server first: the leader's redirect hint needs its port.
  repl::GuardConfig fg;
  fg.lease_ms = 150;
  fg.start_leader = false;
  fg.jitter_seed = 2;
  repl::RewindGuard fguard(&fstore, fg);
  serve::ServerConfig fcfg = GuardServerConfig();
  fcfg.read_only = true;
  fcfg.applier = &applier;
  fcfg.guard = &fguard;
  serve::KvServer fserver(&fstore, fcfg);
  ASSERT_TRUE(fserver.Start());
  std::string faddr = "127.0.0.1:" + std::to_string(fserver.port());

  repl::GuardConfig lg;
  lg.lease_ms = 150;
  lg.start_leader = true;
  lg.peer_addr = faddr;
  lg.jitter_seed = 3;
  repl::RewindGuard lguard(&lstore, lg);
  serve::ServerConfig lcfg = GuardServerConfig();
  lcfg.sync_repl = true;
  lcfg.sync_repl_timeout_ms = 4000;
  lcfg.guard = &lguard;
  serve::KvServer lserver(&lstore, lcfg);
  ASSERT_TRUE(lserver.Start());

  // The replication link runs through the proxy; the guards' clocks
  // only ever see what the proxy lets through.
  testfault::FaultProxy proxy(lserver.port());
  ASSERT_TRUE(proxy.Start());
  repl::FollowerAgent agent(&applier, "127.0.0.1", proxy.port(), &fguard);
  fguard.on_election = [&] { fserver.Promote(); };
  lguard.on_fence = [&] { lserver.Demote(); };
  fguard.Start();
  lguard.Start();
  agent.Start();

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", lserver.port(), 8000));
  ASSERT_TRUE(WaitUntil([&] { return lguard.expects_follower(); }));
  // Semi-sync acked writes: on the follower by the time the ack lands.
  std::uint64_t acked_epoch = 0;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    std::uint64_t gtid = 0;
    ASSERT_TRUE(client.Put(k, "v" + std::to_string(k), &gtid));
    EXPECT_GT(gtid, 0u);
  }
  acked_epoch = lguard.epoch();
  ASSERT_TRUE(WaitUntil([&] { return fguard.lease_renewals() > 0; }));

  // Partition. The follower's silence fences the leader within one
  // lease; the follower elects after its (longer) election delay.
  proxy.Partition(true);
  ASSERT_TRUE(WaitUntil([&] { return fguard.is_leader(); }, 5000));
  ASSERT_TRUE(WaitUntil([&] { return !lguard.is_leader(); }, 5000));
  EXPECT_EQ(fguard.elections(), 1u);
  EXPECT_GT(fguard.epoch(), acked_epoch);
  // Note the agent's TCP link may still LOOK up: a black-hole is
  // silence, not a reset — exactly why the lease exists.

  // Zero dual-leader acks: the fenced ex-leader refuses writes with a
  // redirect hint at the follower, and counts the fenced attempt.
  serve::KvClient to_old;
  ASSERT_TRUE(to_old.Connect("127.0.0.1", lserver.port(), 5000));
  to_old.QueuePut(777, "must-not-ack");
  serve::KvClient::Reply reply;
  ASSERT_TRUE(to_old.Flush());
  ASSERT_TRUE(to_old.ReadReply(&reply));
  EXPECT_EQ(reply.status, serve::Status::kNotLeader);
  serve::NotLeaderHint hint;
  ASSERT_TRUE(serve::DecodeNotLeaderPayload(reply.payload, &hint));
  EXPECT_GE(hint.epoch, acked_epoch);
  ASSERT_TRUE(hint.has_addr);
  EXPECT_EQ(hint.port, fserver.port());
  EXPECT_GE(lguard.fenced_writes(), 1u);

  // Every pre-partition acked write is on the new leader, which is
  // writable without any PROMOTE op having been issued.
  serve::KvClient to_new;
  ASSERT_TRUE(to_new.Connect("127.0.0.1", fserver.port(), 5000));
  std::string value;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    ASSERT_TRUE(to_new.Get(k, &value)) << "acked key " << k << " lost";
    EXPECT_EQ(value, "v" + std::to_string(k));
  }
  std::uint64_t gtid = 0;
  ASSERT_TRUE(to_new.Put(900, "post-failover", &gtid));
  EXPECT_FALSE(to_new.Get(777, &value));  // the fenced write never landed

  // A FailoverClient aimed at the dead endpoint rides the kNotLeader
  // hint to the new leader.
  serve::FailoverClient::Config fc;
  fc.endpoints = {"127.0.0.1:" + std::to_string(lserver.port())};
  fc.timeout_ms = 1000;
  fc.max_attempts = 6;
  fc.backoff_base_ms = 5;
  fc.backoff_cap_ms = 20;
  serve::FailoverClient fclient(fc);
  ASSERT_TRUE(fclient.Put(901, "via-redirect"));
  EXPECT_GE(fclient.redirects(), 1u);
  EXPECT_EQ(fclient.endpoint(), faddr);
  EXPECT_EQ(fclient.last_epoch(), fguard.epoch());
  ASSERT_TRUE(to_new.Get(901, &value));
  EXPECT_EQ(value, "via-redirect");

  fclient.Close();
  to_new.Close();
  to_old.Close();
  client.Close();
  lguard.Stop();
  fguard.Stop();
  agent.Stop();
  proxy.Stop();
  lserver.Stop();
  fserver.Stop();
}

}  // namespace
}  // namespace rwd
