// Concurrency stress: multithreaded transactions with mixed outcomes, the
// checkpoint daemon racing writers, distributed-log partitions, and a crash
// after a multithreaded phase.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/structures/btree.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

RewindConfig StressConfig(LogImpl impl, Policy policy) {
  RewindConfig c;
  c.nvm = TestNvmConfig(64);
  c.log_impl = impl;
  c.policy = policy;
  c.bucket_capacity = 64;
  c.batch_group_size = 8;
  return c;
}

class ConcurrencyTest
    : public ::testing::TestWithParam<std::pair<LogImpl, Policy>> {};

TEST_P(ConcurrencyTest, MixedOutcomeThreadsSettleCorrectly) {
  auto [impl, policy] = GetParam();
  NvmManager nvm(StressConfig(impl, policy).nvm);
  TransactionManager tm(&nvm, StressConfig(impl, policy));
  constexpr int kThreads = 4;
  constexpr int kRounds = 150;
  auto* d =
      static_cast<std::uint64_t*>(nvm.Alloc(kThreads * kRounds * 8));
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int r = 0; r < kRounds; ++r) {
        std::uint64_t* slot = &d[th * kRounds + r];
        std::uint32_t t = tm.Begin();
        tm.Write(t, slot, 1000 + static_cast<std::uint64_t>(r));
        if (r % 5 == 4) {
          tm.Rollback(t);
        } else {
          tm.Commit(t);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int th = 0; th < kThreads; ++th) {
    for (int r = 0; r < kRounds; ++r) {
      std::uint64_t expect = r % 5 == 4 ? 0 : 1000 + r;
      ASSERT_EQ(tm.Read(&d[th * kRounds + r]), expect)
          << "thread " << th << " round " << r;
    }
  }
  if (policy == Policy::kNoForce) tm.Checkpoint();
  EXPECT_EQ(tm.LogSize(), 0u);
}

TEST_P(ConcurrencyTest, CheckpointDaemonRacesWriters) {
  auto [impl, policy] = GetParam();
  if (policy == Policy::kForce) return;  // checkpoints are no-force only
  Runtime rt(StressConfig(impl, policy));
  auto& tm = rt.tm();
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(64 * 8));
  rt.StartCheckpointDaemon(2);
  std::vector<std::thread> threads;
  for (int th = 0; th < 3; ++th) {
    threads.emplace_back([&, th] {
      for (int r = 0; r < 400; ++r) {
        std::uint32_t t = tm.Begin();
        tm.Write(t, &d[th * 16 + (r % 16)], static_cast<std::uint64_t>(r));
        tm.Commit(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  rt.StopCheckpointDaemon();
  tm.Checkpoint();
  EXPECT_EQ(tm.LogSize(), 0u);
  for (int th = 0; th < 3; ++th) {
    for (int i = 0; i < 16; ++i) {
      EXPECT_GE(tm.Read(&d[th * 16 + i]), 384u - 16u);
    }
  }
}

TEST_P(ConcurrencyTest, CrashAfterParallelPhaseRecovers) {
  auto [impl, policy] = GetParam();
  NvmManager nvm(StressConfig(impl, policy).nvm);
  TransactionManager tm(&nvm, StressConfig(impl, policy));
  constexpr int kThreads = 4;
  auto* d = static_cast<std::uint64_t*>(nvm.Alloc(kThreads * 8));
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int r = 0; r < 50; ++r) {
        std::uint32_t t = tm.Begin();
        tm.Write(t, &d[th], static_cast<std::uint64_t>(r + 1));
        tm.Commit(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  // One straggler transaction per thread left open at the crash.
  std::vector<std::uint32_t> open;
  for (int th = 0; th < kThreads; ++th) {
    std::uint32_t t = tm.Begin();
    tm.Write(t, &d[th], 9999);
    open.push_back(t);
  }
  nvm.SimulateCrash(/*evict_probability=*/0.4, /*seed=*/17);
  tm.ForgetVolatileState();
  tm.Recover();
  for (int th = 0; th < kThreads; ++th) {
    ASSERT_EQ(d[th], 50u) << "thread " << th;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConcurrencyTest,
    ::testing::Values(std::pair{LogImpl::kSimple, Policy::kNoForce},
                      std::pair{LogImpl::kOptimized, Policy::kNoForce},
                      std::pair{LogImpl::kBatch, Policy::kNoForce},
                      std::pair{LogImpl::kOptimized, Policy::kForce},
                      std::pair{LogImpl::kBatch, Policy::kForce}),
    [](const auto& info) {
      std::string s;
      switch (info.param.first) {
        case LogImpl::kSimple:
          s = "Simple";
          break;
        case LogImpl::kOptimized:
          s = "Opt";
          break;
        case LogImpl::kBatch:
          s = "Batch";
          break;
      }
      s += info.param.second == Policy::kForce ? "_FP" : "_NFP";
      return s;
    });

// Distributed-log stress: per-partition managers running in parallel over a
// shared heap with a crash at the end.
TEST(DistributedLog, ParallelPartitionsCrashAndRecover) {
  RewindConfig cfg = StressConfig(LogImpl::kBatch, Policy::kNoForce);
  Runtime rt(cfg, /*partitions=*/4);
  auto* d = static_cast<std::uint64_t*>(rt.nvm().Alloc(4 * 8));
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      auto& tm = rt.tm(p);
      for (int r = 0; r < 200; ++r) {
        std::uint32_t t = tm.Begin();
        tm.Write(t, &d[p], static_cast<std::uint64_t>(r + 1));
        if (r % 7 == 6) {
          tm.Rollback(t);
        } else {
          tm.Commit(t);
        }
      }
      // Leave a hanging transaction in each partition.
      std::uint32_t t = tm.Begin();
      tm.Write(t, &d[p], 77777);
    });
  }
  for (auto& t : threads) t.join();
  rt.CrashAndRecover(/*evict_probability=*/0.3, /*seed=*/5);
  for (int p = 0; p < 4; ++p) {
    // Round 199 was rolled back (199 % 7 == 3? -> committed); compute the
    // last committed round: rounds with r % 7 == 6 roll back.
    std::uint64_t expect = 199 % 7 == 6 ? 199 : 200;
    ASSERT_EQ(d[p], expect) << "partition " << p;
    ASSERT_EQ(rt.tm(p).LogSize(), 0u);
  }
}

}  // namespace
}  // namespace rwd
