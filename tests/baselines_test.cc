// Tests for the baseline engines (Stasis / BerkeleyDB / Shore-MT analogues)
// and the shared B+-tree running on top of them.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "src/baselines/baselines.h"
#include "src/structures/btree.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

enum class Which { kStasis, kBdb, kShore };

std::unique_ptr<AriesEngine> Make(Which w, NvmManager* nvm) {
  switch (w) {
    case Which::kStasis:
      return MakeStasisLike(nvm, 2048);
    case Which::kBdb:
      return MakeBdbLike(nvm, 2048);
    case Which::kShore:
      return MakeShoreLike(nvm, 2048);
  }
  return nullptr;
}

class BaselineTest : public ::testing::TestWithParam<Which> {
 protected:
  BaselineTest() : nvm_(TestNvmConfig(96)) {
    engine_ = Make(GetParam(), &nvm_);
  }
  NvmManager nvm_;
  std::unique_ptr<AriesEngine> engine_;
};

TEST_P(BaselineTest, CommitAppliesAndPersists) {
  auto* d = static_cast<std::uint64_t*>(engine_->Alloc(8 * 4));
  auto t = engine_->Begin();
  for (int i = 0; i < 4; ++i) engine_->Write(t, &d[i], 10 + i);
  engine_->Commit(t);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], 10u + i);
  // Crash after commit: the durable log replays the committed updates.
  engine_->SimulateCrashAndRecover();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], 10u + i);
}

TEST_P(BaselineTest, RollbackRestoresValues) {
  auto* d = static_cast<std::uint64_t*>(engine_->Alloc(8 * 4));
  auto t0 = engine_->Begin();
  for (int i = 0; i < 4; ++i) engine_->Write(t0, &d[i], 5);
  engine_->Commit(t0);
  auto t1 = engine_->Begin();
  for (int i = 0; i < 4; ++i) engine_->Write(t1, &d[i], 99);
  engine_->Rollback(t1);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], 5u);
}

TEST_P(BaselineTest, UncommittedLostAtCrash) {
  auto* d = static_cast<std::uint64_t*>(engine_->Alloc(8 * 2));
  auto t0 = engine_->Begin();
  engine_->Write(t0, &d[0], 7);
  engine_->Commit(t0);
  auto t1 = engine_->Begin();
  engine_->Write(t1, &d[0], 1000);
  engine_->Write(t1, &d[1], 1000);
  engine_->SimulateCrashAndRecover();
  EXPECT_EQ(d[0], 7u);
  EXPECT_EQ(d[1], 0u);
}

TEST_P(BaselineTest, CheckpointTruncatesLogWhenQuiescent) {
  auto* d = static_cast<std::uint64_t*>(engine_->Alloc(8));
  for (int i = 0; i < 20; ++i) {
    auto t = engine_->Begin();
    engine_->Write(t, d, static_cast<std::uint64_t>(i));
    engine_->Commit(t);
  }
  EXPECT_GT(engine_->log_bytes_durable(), 0u);
  engine_->Checkpoint();
  EXPECT_EQ(engine_->log_bytes_durable(), 0u);
  // Data persists through a crash purely from the page file now.
  engine_->SimulateCrashAndRecover();
  EXPECT_EQ(*d, 19u);
}

TEST_P(BaselineTest, BTreeOverBaselineMatchesReference) {
  BaselineOps ops(engine_.get());
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  std::map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(21);
  std::uint64_t p[4];
  for (int step = 0; step < 800; ++step) {
    std::uint64_t key = 1 + rng() % 200;
    if (rng() % 2 == 0) {
      std::uint64_t salt = rng();
      p[0] = key;
      p[1] = salt;
      p[2] = 0;
      p[3] = 0;
      bool ok = tree.InsertTxn(&ops, key, p);
      EXPECT_EQ(ok, ref.emplace(key, salt).second);
    } else {
      bool ok = tree.RemoveTxn(&ops, key);
      EXPECT_EQ(ok, ref.erase(key) > 0);
    }
  }
  EXPECT_EQ(tree.size(&ops), ref.size());
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  // Committed tree state survives a crash.
  engine_->SimulateCrashAndRecover();
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  std::uint64_t out[4];
  for (const auto& [k, salt] : ref) {
    ASSERT_TRUE(tree.Lookup(&ops, k, out)) << k;
    ASSERT_EQ(out[1], salt);
  }
}

TEST_P(BaselineTest, LoggingIsHeavierThanRewind) {
  // Sanity on the cost model: per committed update the baseline moves far
  // more bytes to its log file than REWIND's 64-byte records.
  auto* d = static_cast<std::uint64_t*>(engine_->Alloc(8));
  for (int i = 0; i < 100; ++i) {
    auto t = engine_->Begin();
    engine_->Write(t, d, static_cast<std::uint64_t>(i));
    engine_->Commit(t);
  }
  EXPECT_GT(engine_->log_bytes_durable(), 100u * 48u);
}

INSTANTIATE_TEST_SUITE_P(AllBaselines, BaselineTest,
                         ::testing::Values(Which::kStasis, Which::kBdb,
                                           Which::kShore),
                         [](const auto& info) {
                           switch (info.param) {
                             case Which::kStasis:
                               return "StasisLike";
                             case Which::kBdb:
                               return "BdbLike";
                             case Which::kShore:
                               return "ShoreLike";
                           }
                           return "?";
                         });

}  // namespace
}  // namespace rwd
