// Tests for the Atomic Doubly-Linked List (paper Section 3.2, Algorithm 1),
// including exhaustive crash injection at every persistence event.
#include <gtest/gtest.h>

#include <vector>

#include "src/log/adll.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

class AdllTest : public ::testing::Test {
 protected:
  AdllTest() : nvm_(TestNvmConfig(2)) {
    control_ =
        static_cast<Adll::Control*>(nvm_.Alloc(sizeof(Adll::Control)));
    list_ = std::make_unique<Adll>(&nvm_, control_);
  }

  std::vector<void*> Elements() const {
    std::vector<void*> out;
    for (AdllNode* n = list_->head(); n != nullptr; n = n->next) {
      out.push_back(n->element);
    }
    return out;
  }

  /// Checks structural sanity: forward and backward walks agree, no pending
  /// operation markers.
  void ExpectConsistent() const {
    std::vector<AdllNode*> fwd;
    for (AdllNode* n = list_->head(); n != nullptr; n = n->next) {
      fwd.push_back(n);
    }
    std::vector<AdllNode*> bwd;
    for (AdllNode* n = list_->tail(); n != nullptr; n = n->prior) {
      bwd.push_back(n);
    }
    ASSERT_EQ(fwd.size(), bwd.size());
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      EXPECT_EQ(fwd[i], bwd[bwd.size() - 1 - i]);
    }
    if (!fwd.empty()) {
      EXPECT_EQ(fwd.front(), list_->head());
      EXPECT_EQ(fwd.back(), list_->tail());
      EXPECT_EQ(list_->head()->prior, nullptr);
      EXPECT_EQ(list_->tail()->next, nullptr);
    }
  }

  NvmManager nvm_;
  Adll::Control* control_;
  std::unique_ptr<Adll> list_;
};

std::uintptr_t E(std::uintptr_t v) { return v; }

TEST_F(AdllTest, AppendBuildsOrderedList) {
  for (std::uintptr_t i = 1; i <= 5; ++i) {
    list_->Append(reinterpret_cast<void*>(E(i)));
  }
  auto elems = Elements();
  ASSERT_EQ(elems.size(), 5u);
  for (std::uintptr_t i = 0; i < 5; ++i) {
    EXPECT_EQ(elems[i], reinterpret_cast<void*>(i + 1));
  }
  ExpectConsistent();
}

TEST_F(AdllTest, RemoveHeadMiddleTail) {
  std::vector<AdllNode*> nodes;
  for (std::uintptr_t i = 1; i <= 5; ++i) {
    nodes.push_back(list_->Append(reinterpret_cast<void*>(E(i))));
  }
  list_->Remove(nodes[2]);  // middle
  ExpectConsistent();
  list_->Remove(nodes[0]);  // head
  ExpectConsistent();
  list_->Remove(nodes[4]);  // tail
  ExpectConsistent();
  auto elems = Elements();
  ASSERT_EQ(elems.size(), 2u);
  EXPECT_EQ(elems[0], reinterpret_cast<void*>(E(2)));
  EXPECT_EQ(elems[1], reinterpret_cast<void*>(E(4)));
}

TEST_F(AdllTest, RemoveOnlyNodeEmptiesList) {
  AdllNode* n = list_->Append(reinterpret_cast<void*>(E(1)));
  list_->Remove(n);
  EXPECT_TRUE(list_->empty());
  EXPECT_EQ(list_->tail(), nullptr);
  ExpectConsistent();
}

TEST_F(AdllTest, ClearEmptiesAndRecyclesNodes) {
  for (std::uintptr_t i = 1; i <= 10; ++i) {
    list_->Append(reinterpret_cast<void*>(E(i)));
  }
  std::size_t live_before = nvm_.heap().live_bytes();
  list_->Clear();
  EXPECT_TRUE(list_->empty());
  EXPECT_LT(nvm_.heap().live_bytes(), live_before);
}

TEST_F(AdllTest, RecoverOnCleanListIsNoOp) {
  for (std::uintptr_t i = 1; i <= 3; ++i) {
    list_->Append(reinterpret_cast<void*>(E(i)));
  }
  list_->Recover();
  EXPECT_EQ(Elements().size(), 3u);
  ExpectConsistent();
}

// Exhaustive crash-point sweep: crash at every persistence event during a
// sequence of appends; after recovery the list must be consistent and
// contain a prefix of the appends (the pending one either completed via
// recovery or never reached its critical point).
TEST_F(AdllTest, CrashDuringAppendsRecoversToConsistentPrefix) {
  for (std::uint64_t at = 1; at < 60; ++at) {
    NvmManager nvm(TestNvmConfig(2));
    auto* ctrl = static_cast<Adll::Control*>(nvm.Alloc(sizeof(Adll::Control)));
    Adll list(&nvm, ctrl);
    bool crashed = RunWithCrashAt(&nvm, at, [&] {
      for (std::uintptr_t i = 1; i <= 6; ++i) {
        list.Append(reinterpret_cast<void*>(E(i)));
      }
    });
    list.Recover();
    // Consistency: forward/backward agree and elements are 1..k.
    std::vector<void*> fwd;
    for (AdllNode* n = list.head(); n != nullptr; n = n->next) {
      fwd.push_back(n->element);
    }
    for (std::size_t i = 0; i < fwd.size(); ++i) {
      ASSERT_EQ(fwd[i], reinterpret_cast<void*>(i + 1)) << "crash at " << at;
    }
    ASSERT_EQ(ctrl->to_append, nullptr);
    ASSERT_EQ(ctrl->to_remove, nullptr);
    if (!crashed) {
      ASSERT_EQ(fwd.size(), 6u);
      break;  // later events never fire
    }
  }
}

// Crash at every persistence event during removals (head, middle, tail).
TEST_F(AdllTest, CrashDuringRemovalsRecoversConsistently) {
  for (std::uint64_t at = 1; at < 60; ++at) {
    NvmManager nvm(TestNvmConfig(2));
    auto* ctrl = static_cast<Adll::Control*>(nvm.Alloc(sizeof(Adll::Control)));
    Adll list(&nvm, ctrl);
    std::vector<AdllNode*> nodes;
    for (std::uintptr_t i = 1; i <= 5; ++i) {
      nodes.push_back(list.Append(reinterpret_cast<void*>(E(i))));
    }
    bool crashed = RunWithCrashAt(&nvm, at, [&] {
      list.Remove(nodes[2]);
      list.Remove(nodes[0]);
      list.Remove(nodes[4]);
    });
    list.Recover();
    std::vector<void*> fwd;
    for (AdllNode* n = list.head(); n != nullptr; n = n->next) {
      fwd.push_back(n->element);
    }
    // After recovery the element multiset must be one of the four valid
    // states of the removal sequence (each removal is atomic).
    std::vector<std::vector<std::uintptr_t>> valid = {
        {1, 2, 3, 4, 5}, {1, 2, 4, 5}, {2, 4, 5}, {2, 4}};
    std::vector<std::uintptr_t> got;
    for (void* e : fwd) got.push_back(reinterpret_cast<std::uintptr_t>(e));
    bool match = false;
    for (const auto& v : valid) match |= (v == got);
    ASSERT_TRUE(match) << "crash at " << at << " size " << got.size();
    ASSERT_EQ(ctrl->to_append, nullptr);
    ASSERT_EQ(ctrl->to_remove, nullptr);
    if (!crashed) break;
  }
}

// Crash during recovery itself: recovery must be idempotent under repeated
// partial executions.
TEST_F(AdllTest, CrashDuringRecoveryIsSafe) {
  for (std::uint64_t first = 1; first < 25; ++first) {
    for (std::uint64_t second = 1; second < 12; ++second) {
      NvmManager nvm(TestNvmConfig(2));
      auto* ctrl =
          static_cast<Adll::Control*>(nvm.Alloc(sizeof(Adll::Control)));
      Adll list(&nvm, ctrl);
      RunWithCrashAt(&nvm, first, [&] {
        for (std::uintptr_t i = 1; i <= 3; ++i) {
          list.Append(reinterpret_cast<void*>(E(i)));
        }
      });
      // First recovery attempt may itself crash...
      RunWithCrashAt(&nvm, second, [&] { list.Recover(); });
      // ...the second one must complete and leave a consistent prefix.
      list.Recover();
      std::vector<void*> fwd;
      for (AdllNode* n = list.head(); n != nullptr; n = n->next) {
        fwd.push_back(n->element);
      }
      for (std::size_t i = 0; i < fwd.size(); ++i) {
        ASSERT_EQ(fwd[i], reinterpret_cast<void*>(i + 1))
            << "first=" << first << " second=" << second;
      }
      ASSERT_LE(fwd.size(), 3u);
      ASSERT_EQ(ctrl->to_append, nullptr);
    }
  }
}

}  // namespace
}  // namespace rwd
