// RewindServe tests: protocol round-trips over real sockets, pipelined
// clients with read-your-writes ordering, group-commit coalescing, the
// network workload driver, and the acceptance sweep — kill the "machine"
// mid-batch and verify every acked write survives recovery with no
// partially-applied batch visible.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/server/batcher.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/workload/net_driver.h"
#include "src/workload/workload.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

KvConfig ServerKvConfig(std::size_t shards = 4) {
  KvConfig cfg;
  cfg.rewind.nvm = TestNvmConfig(64);
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 32;
  cfg.rewind.batch_group_size = 4;
  cfg.shards = shards;
  return cfg;
}

serve::ServerConfig TestServerConfig(std::uint32_t batch_window_us = 100) {
  serve::ServerConfig cfg;
  cfg.port = 0;  // ephemeral
  cfg.workers = 2;
  cfg.batch_window_us = batch_window_us;
  return cfg;
}

std::string ValueFor(std::uint64_t key, std::uint64_t version) {
  return WorkloadDriver::MakeValue(key, version, 48);
}

TEST(KvServer, RoundTripAllOps) {
  KvStore store(ServerKvConfig());
  serve::KvServer server(&store, TestServerConfig());
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));

  // Put / Get / overwrite.
  for (std::uint64_t k = 1; k <= 50; ++k) {
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0)));
  }
  std::string value;
  for (std::uint64_t k = 1; k <= 50; ++k) {
    ASSERT_TRUE(client.Get(k, &value)) << "key " << k;
    EXPECT_EQ(value, ValueFor(k, 0));
  }
  ASSERT_TRUE(client.Put(7, ValueFor(7, 1)));
  ASSERT_TRUE(client.Get(7, &value));
  EXPECT_EQ(value, ValueFor(7, 1));
  EXPECT_FALSE(client.Get(999, nullptr));  // miss

  // Delete reports presence exactly once.
  EXPECT_TRUE(client.Delete(13));
  EXPECT_FALSE(client.Delete(13));
  EXPECT_FALSE(client.Get(13, nullptr));

  // Scan is ordered and bounded.
  std::vector<std::pair<std::uint64_t, std::string>> items;
  ASSERT_TRUE(client.Scan(10, 5, &items));
  ASSERT_EQ(items.size(), 5u);
  std::uint64_t prev = 0;
  for (const auto& [k, v] : items) {
    EXPECT_GT(k, prev);
    EXPECT_EQ(v, ValueFor(k, k == 7 ? 1 : 0));
    prev = k;
  }
  EXPECT_EQ(items[0].first, 10u);
  EXPECT_EQ(items[1].first, 11u);
  EXPECT_EQ(items[2].first, 12u);
  EXPECT_EQ(items[3].first, 14u);  // 13 was deleted

  // MultiPut lands atomically and later duplicates win.
  ASSERT_TRUE(client.MultiPut(
      {{201, "alice"}, {202, "bob"}, {203, "carol"}, {203, "carol2"}}));
  ASSERT_TRUE(client.Get(203, &value));
  EXPECT_EQ(value, "carol2");

  // Bad requests are rejected per-frame without dropping the connection.
  client.QueuePut(0, "x");
  serve::KvClient::Reply reply;
  ASSERT_TRUE(client.Flush());
  ASSERT_TRUE(client.ReadReply(&reply));
  EXPECT_EQ(reply.status, serve::Status::kBadRequest);
  EXPECT_TRUE(client.Get(201, &value));  // still alive
  EXPECT_EQ(value, "alice");

  // Stats reflect the session.
  serve::StatsReply stats;
  ASSERT_TRUE(client.Stats(&stats));
  EXPECT_EQ(stats.keys, store.Size());
  EXPECT_GE(stats.acked_writes, 56u);  // 51 puts + 1 del + 4 mput keys
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GT(stats.gets, 0u);
  EXPECT_GT(stats.scans, 0u);
  EXPECT_EQ(stats.shards, store.shards());

  server.Stop();
  EXPECT_FALSE(server.crashed());
}

// STATS v2: the self-describing metric dump round-trips over a live
// server and carries both the v1-derived samples and RewindScope's
// latency histograms (non-zero percentiles, no kStatsWords involved).
TEST(KvServer, Stats2SelfDescribingMetrics) {
  KvStore store(ServerKvConfig());
  serve::KvServer server(&store, TestServerConfig());
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));

  for (std::uint64_t k = 1; k <= 20; ++k) {
    ASSERT_TRUE(client.Put(k, ValueFor(k, 0)));
  }
  // A multi-key MPUT spans shards, forcing the 2PC (prepare) path.
  ASSERT_TRUE(client.MultiPut(
      {{101, "a"}, {102, "b"}, {103, "c"}, {104, "d"}, {105, "e"}}));
  std::string value;
  for (std::uint64_t k = 1; k <= 20; ++k) {
    ASSERT_TRUE(client.Get(k, &value));
  }

  std::vector<serve::MetricSample> samples;
  ASSERT_TRUE(client.Stats2(&samples));
  std::map<std::string, serve::MetricSample> by_name;
  for (const serve::MetricSample& m : samples) by_name[m.name] = m;

  // The v1-derived samples agree with the v1 STATS reply (still served).
  serve::StatsReply v1;
  ASSERT_TRUE(client.Stats(&v1));
  ASSERT_TRUE(by_name.count("server.keys"));
  EXPECT_EQ(by_name["server.keys"].value, static_cast<double>(v1.keys));
  EXPECT_EQ(by_name["server.keys"].type, 1);  // gauge
  ASSERT_TRUE(by_name.count("server.gets"));
  EXPECT_GE(by_name["server.gets"].value, 20.0);
  EXPECT_EQ(by_name["server.gets"].type, 0);  // counter

  // RewindScope histograms (process-global registry, so >=): the timed
  // GETs landed and sub-µs phases still export non-zero µs doubles.
  ASSERT_TRUE(by_name.count("server.op.get.count"));
  EXPECT_GE(by_name["server.op.get.count"].value, 20.0);
  ASSERT_TRUE(by_name.count("server.op.get.p99_us"));
  EXPECT_GT(by_name["server.op.get.p99_us"].value, 0.0);
  ASSERT_TRUE(by_name.count("server.op.put.count"));
  EXPECT_GE(by_name["server.op.put.count"].value, 20.0);
  ASSERT_TRUE(by_name.count("txn.prepare.count"));
  EXPECT_GT(by_name["txn.prepare.count"].value, 0.0);
  ASSERT_TRUE(by_name.count("txn.prepare.p99_us"));
  EXPECT_GT(by_name["txn.prepare.p99_us"].value, 0.0);
  ASSERT_TRUE(by_name.count("batcher.commit.count"));
  EXPECT_GT(by_name["batcher.commit.count"].value, 0.0);

  server.Stop();
  EXPECT_FALSE(server.crashed());
}

// Forward compatibility at the wire level: the generic STATS v2 decoder
// accepts metric names and sample-type bytes it has never seen (an older
// scraper must keep working against a newer server), while truncation
// and trailing garbage fail cleanly.
TEST(Stats2Wire, DecodeAcceptsUnknownMetricsRejectsTruncation) {
  std::string payload;
  serve::AppendU32(&payload, 3);
  serve::AppendMetricSample(&payload, {"metric.from.the.future", 7, 42.5});
  serve::AppendMetricSample(&payload, {"server.keys", 1, 10.0});
  serve::AppendMetricSample(&payload, {"", 0, -1.0});  // empty name is legal

  std::vector<serve::MetricSample> out;
  ASSERT_TRUE(serve::DecodeStats2Payload(payload, &out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].name, "metric.from.the.future");
  EXPECT_EQ(out[0].type, 7);  // unknown type byte passes through verbatim
  EXPECT_EQ(out[0].value, 42.5);
  EXPECT_EQ(out[1].name, "server.keys");
  EXPECT_EQ(out[1].value, 10.0);
  EXPECT_EQ(out[2].name, "");
  EXPECT_EQ(out[2].value, -1.0);

  // Truncation at every byte boundary fails without crashing.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<serve::MetricSample> tmp;
    EXPECT_FALSE(
        serve::DecodeStats2Payload(payload.substr(0, cut), &tmp))
        << "cut=" << cut;
  }
  std::vector<serve::MetricSample> tmp;
  EXPECT_FALSE(serve::DecodeStats2Payload(payload + "x", &tmp));
}

// One connection streams a deep pipeline of interleaved writes and reads
// in a single flush; replies come back in request order and every read
// observes the writes queued before it (the per-connection barrier).
TEST(KvServer, PipelinedClientRoundTripWithReadYourWrites) {
  KvStore store(ServerKvConfig());
  serve::KvServer server(&store, TestServerConfig());
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));

  enum class Expect { kOk, kNotFound, kValue };
  std::vector<std::pair<Expect, std::string>> expected;
  for (std::uint64_t k = 1; k <= 40; ++k) {
    client.QueuePut(k, ValueFor(k, 1));
    expected.emplace_back(Expect::kOk, "");
    client.QueueGet(k);
    expected.emplace_back(Expect::kValue, ValueFor(k, 1));
    if (k % 2 == 0) {
      client.QueuePut(k, ValueFor(k, 2));
      expected.emplace_back(Expect::kOk, "");
      client.QueueGet(k);
      expected.emplace_back(Expect::kValue, ValueFor(k, 2));
    }
    if (k % 5 == 0) {
      client.QueueDel(k);
      expected.emplace_back(Expect::kOk, "");
      client.QueueGet(k);
      expected.emplace_back(Expect::kNotFound, "");
    }
  }
  ASSERT_TRUE(client.Flush());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    serve::KvClient::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply)) << "reply " << i;
    switch (expected[i].first) {
      case Expect::kOk:
        EXPECT_EQ(reply.status, serve::Status::kOk) << "reply " << i;
        break;
      case Expect::kNotFound:
        EXPECT_EQ(reply.status, serve::Status::kNotFound) << "reply " << i;
        break;
      case Expect::kValue:
        ASSERT_EQ(reply.status, serve::Status::kOk) << "reply " << i;
        EXPECT_EQ(reply.payload, expected[i].second) << "reply " << i;
        break;
    }
  }
  EXPECT_EQ(client.pending(), 0u);
}

// With a wide batch window, a deep pipeline of writes from one flush must
// coalesce into a handful of group commits, not one commit per request.
TEST(KvServer, GroupCommitCoalescesPipelinedWrites) {
  KvStore store(ServerKvConfig());
  serve::KvServer server(&store, TestServerConfig(/*batch_window_us=*/50000));
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 10000));

  constexpr std::uint64_t kWrites = 100;
  for (std::uint64_t k = 1; k <= kWrites; ++k) {
    client.QueuePut(k, ValueFor(k, 3));
  }
  ASSERT_TRUE(client.Flush());
  for (std::uint64_t k = 1; k <= kWrites; ++k) {
    serve::KvClient::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply));
    EXPECT_EQ(reply.status, serve::Status::kOk);
  }
  serve::StatsReply stats;
  ASSERT_TRUE(client.Stats(&stats));
  EXPECT_EQ(stats.acked_writes, kWrites);
  EXPECT_EQ(stats.batched_writes, kWrites);
  EXPECT_LE(stats.batches, 10u)
      << "writes were not coalesced into group commits";
  EXPECT_EQ(store.Size(), kWrites);
}

// Backpressure: with tiny caps the server pauses reading a connection
// whose writes outpace group commit (and whose replies outgrow the out
// buffer), resumes as things drain, and still answers every request in
// order — throttled, never wedged and never dropped.
TEST(KvServer, BackpressurePausesAndResumesUnderTinyCaps) {
  KvStore store(ServerKvConfig());
  serve::ServerConfig cfg = TestServerConfig(/*batch_window_us=*/200);
  cfg.max_unacked_writes = 4;
  cfg.max_conn_out_bytes = 1 << 12;
  cfg.max_batch_queue_ops = 8;
  serve::KvServer server(&store, cfg);
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 10000));

  constexpr std::uint64_t kWrites = 300;
  for (std::uint64_t k = 1; k <= kWrites; ++k) {
    client.QueuePut(k, ValueFor(k, 6));
  }
  ASSERT_TRUE(client.Flush());
  for (std::uint64_t k = 1; k <= kWrites; ++k) {
    serve::KvClient::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply)) << "reply " << k;
    EXPECT_EQ(reply.status, serve::Status::kOk) << "reply " << k;
  }
  // The connection is live and reads resume normally after the squeeze.
  std::string value;
  ASSERT_TRUE(client.Get(kWrites, &value));
  EXPECT_EQ(value, ValueFor(kWrites, 6));
  EXPECT_EQ(store.Size(), kWrites);
  server.Stop();
  EXPECT_FALSE(server.crashed());
}

// The AIMD batch-window controller: latency-first (zero window) until
// sustained traffic shows up — a queue refilling faster than half a batch
// per commit, OR new batches collected while earlier ones were still in
// the completion pipeline (the signal closed-loop clients actually
// produce, since they drain the queue every batch by construction) — then
// multiplicative widening toward the cap; decays back to zero only when
// tiny batches with an idle pipeline prove the traffic actually stopped,
// and re-seeds (not 0*2 = 0 forever) on its return.
TEST(AdaptiveWindow, WidensUnderLoadDecaysWhenIdle) {
  serve::AdaptiveWindow w(/*cap_us=*/500);
  EXPECT_EQ(w.window_us(), 0u);

  // Backlog: seed out of zero, then double every commit, clamped at cap.
  w.Observe(/*batch_ops=*/64, /*queued_after=*/64, /*pipeline_busy=*/false);
  EXPECT_EQ(w.window_us(), serve::AdaptiveWindow::kSeedUs);
  std::uint32_t prev = w.window_us();
  for (int i = 0; i < 10; ++i) {
    w.Observe(64, 64, false);
    EXPECT_GE(w.window_us(), prev);
    EXPECT_LE(w.window_us(), 500u);
    prev = w.window_us();
  }
  EXPECT_EQ(w.window_us(), 500u) << "sustained backlog must reach the cap";

  // A small residual queue (nonzero but <= half a batch) holds steady,
  // and so does a LARGE batch that drained the queue — closed-loop
  // saturation empties the queue every commit by construction.
  w.Observe(64, 10, false);
  EXPECT_EQ(w.window_us(), 500u);
  for (int i = 0; i < 4; ++i) w.Observe(64, 0, false);
  EXPECT_EQ(w.window_us(), 500u)
      << "large drained batches must hold the window, not decay it";

  // Tiny batches with nothing waiting and an idle pipeline: traffic
  // stopped, decay to zero.
  for (int i = 0; i < 16 && w.window_us() > 0; ++i) {
    w.Observe(serve::AdaptiveWindow::kIdleBatchOps - 1, 0, false);
  }
  EXPECT_EQ(w.window_us(), 0u);

  // The tiny-batch trap escape: batches of 1-2 ops with an empty queue
  // but a BUSY pipeline are sustained load (new work arrived before old
  // work acked), so the window must widen, never shrink — otherwise a
  // small window makes small fast batches that keep the queue empty and
  // the controller pins itself at zero under full load.
  w.Observe(/*batch_ops=*/1, /*queued_after=*/0, /*pipeline_busy=*/true);
  EXPECT_EQ(w.window_us(), serve::AdaptiveWindow::kSeedUs);
  prev = w.window_us();
  for (int i = 0; i < 10; ++i) {
    w.Observe(2, 0, true);
    EXPECT_GE(w.window_us(), prev);
    prev = w.window_us();
  }
  EXPECT_EQ(w.window_us(), 500u) << "busy pipeline alone must reach the cap";

  // Back to idle, then load returning re-seeds rather than sticking at 0.
  for (int i = 0; i < 16 && w.window_us() > 0; ++i) {
    w.Observe(1, 0, false);
  }
  EXPECT_EQ(w.window_us(), 0u);
  w.Observe(64, 64, false);
  EXPECT_EQ(w.window_us(), serve::AdaptiveWindow::kSeedUs);
}

// The PR 8 batcher pipelines: batch N+1 collects and applies while batch
// N's completion stage (semi-sync replication wait, stats, ack dispatch)
// is still running. The single completion consumer must release acks in
// strict batch order regardless — a tiny window forces a long stream of
// small group commits under one deep client pipeline, and read-your-writes
// across every batch boundary proves neither applies nor acks reordered.
TEST(KvServer, PipelinedBatchesAckInOrderAcrossGroupCommits) {
  KvStore store(ServerKvConfig());
  serve::KvServer server(&store, TestServerConfig(/*batch_window_us=*/5));
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 10000));

  constexpr std::uint64_t kKeys = 150;
  enum class Expect { kOk, kValue };
  std::vector<std::pair<Expect, std::string>> expected;
  for (std::uint64_t k = 1; k <= kKeys; ++k) {
    client.QueuePut(k, ValueFor(k, 1));
    expected.emplace_back(Expect::kOk, "");
    client.QueueGet(k);
    expected.emplace_back(Expect::kValue, ValueFor(k, 1));
    client.QueuePut(k, ValueFor(k, 2));
    expected.emplace_back(Expect::kOk, "");
    client.QueueGet(k);
    expected.emplace_back(Expect::kValue, ValueFor(k, 2));
  }
  ASSERT_TRUE(client.Flush());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    serve::KvClient::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply)) << "reply " << i;
    ASSERT_EQ(reply.status, serve::Status::kOk) << "reply " << i;
    if (expected[i].first == Expect::kValue) {
      EXPECT_EQ(reply.payload, expected[i].second) << "reply " << i;
    }
  }

  // The stream really was split into many group commits (material for the
  // pipeline to overlap), every write was acked exactly once, and STATS v2
  // exports the pipeline gauges.
  serve::StatsReply stats;
  ASSERT_TRUE(client.Stats(&stats));
  EXPECT_EQ(stats.acked_writes, 2 * kKeys);
  EXPECT_GE(stats.batches, 4u) << "everything landed in a single batch";
  std::vector<serve::MetricSample> samples;
  ASSERT_TRUE(client.Stats2(&samples));
  bool saw_depth = false, saw_window = false;
  for (const serve::MetricSample& m : samples) {
    saw_depth |= m.name == "batcher.pipeline_depth";
    saw_window |= m.name == "batcher.window_us";
  }
  EXPECT_TRUE(saw_depth);
  EXPECT_TRUE(saw_window);

  server.Stop();
  EXPECT_FALSE(server.crashed());
}

// `--batch-window-us=auto` end to end: the server runs the adaptive
// controller and keeps every guarantee through a write burst — all writes
// acked through the batcher, values correct, clean shutdown.
TEST(KvServer, AdaptiveWindowServerServesBurstsCorrectly) {
  KvStore store(ServerKvConfig());
  serve::ServerConfig cfg = TestServerConfig();
  cfg.adaptive_batch_window = true;
  cfg.batch_window_cap_us = 200;
  serve::KvServer server(&store, cfg);
  ASSERT_TRUE(server.Start());
  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 10000));

  constexpr std::uint64_t kWrites = 400;
  for (std::uint64_t k = 1; k <= kWrites; ++k) {
    client.QueuePut(k, ValueFor(k, 4));
  }
  ASSERT_TRUE(client.Flush());
  for (std::uint64_t k = 1; k <= kWrites; ++k) {
    serve::KvClient::Reply reply;
    ASSERT_TRUE(client.ReadReply(&reply)) << "reply " << k;
    EXPECT_EQ(reply.status, serve::Status::kOk) << "reply " << k;
  }
  serve::StatsReply stats;
  ASSERT_TRUE(client.Stats(&stats));
  EXPECT_EQ(stats.acked_writes, kWrites);
  EXPECT_EQ(stats.batched_writes, kWrites);
  std::string value;
  ASSERT_TRUE(client.Get(kWrites, &value));
  EXPECT_EQ(value, ValueFor(kWrites, 4));
  EXPECT_EQ(store.Size(), kWrites);
  server.Stop();
  EXPECT_FALSE(server.crashed());
}

// The network driver reuses the YCSB mixes over many pipelined
// connections; everything it loads and writes is served and survives a
// whole-store crash+recovery.
TEST(KvServer, NetWorkloadDriverRunsMixOverManyConnections) {
  KvStore store(ServerKvConfig());
  serve::KvServer server(&store, TestServerConfig());
  ASSERT_TRUE(server.Start());

  WorkloadSpec spec = WorkloadSpec::Preset('a');
  spec.record_count = 1500;
  spec.op_count = 6000;
  spec.threads = 4;
  spec.value_size = 64;
  NetDriverSpec net;
  net.host = "127.0.0.1";
  net.port = server.port();
  net.pipeline_depth = 16;
  NetWorkloadDriver driver(net, spec);
  ASSERT_EQ(driver.Load(), spec.record_count);
  bool ok = true;
  WorkloadResult r = driver.Run(&ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(r.ops(), spec.op_count);
  EXPECT_EQ(r.read_misses, 0u);  // workload A only reads loaded keys
  EXPECT_EQ(store.Size(), spec.record_count);

  server.Stop();
  store.CrashAndRecover();
  EXPECT_EQ(store.Size(), spec.record_count);
  std::string value;
  ASSERT_TRUE(store.Get(1, &value));  // loaded key still present
}

// The acceptance sweep: crash the "machine" at many different persistence
// events while pipelined clients stream writes through the batcher. After
// recovery every ACKED write must be present with its exact value, and
// un-acked writes are fully present or fully absent — never torn.
TEST(KvServerRecovery, KillMidBatchDurabilitySweep) {
  constexpr std::uint64_t kKeys = 120;
  const std::uint64_t version = 5;
  bool completed_without_crash = false;
  int crashes = 0;
  for (std::uint64_t at = 60; !completed_without_crash; at += 211) {
    KvStore store(ServerKvConfig());
    NvmManager& nvm = store.runtime().nvm();
    serve::KvServer server(&store, TestServerConfig(/*batch_window_us=*/50));
    ASSERT_TRUE(server.Start());
    serve::KvClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));

    std::map<std::uint64_t, std::string> sent;
    std::map<std::uint64_t, std::string> acked;
    std::deque<std::uint64_t> inflight;
    bool conn_lost = false;
    nvm.crash_injector().Arm(at);
    auto read_one = [&]() -> bool {
      serve::KvClient::Reply reply;
      if (!client.Flush() || !client.ReadReply(&reply)) return false;
      if (reply.status == serve::Status::kOk) {
        acked[inflight.front()] = sent[inflight.front()];
      }
      inflight.pop_front();
      return true;
    };
    for (std::uint64_t k = 1; k <= kKeys && !conn_lost; ++k) {
      std::string v = ValueFor(k, version);
      sent[k] = v;
      client.QueuePut(k, v);
      inflight.push_back(k);
      while (inflight.size() >= 16 && !conn_lost) {
        conn_lost = !read_one();
      }
    }
    while (!conn_lost && !inflight.empty()) {
      conn_lost = !read_one();
    }
    nvm.crash_injector().Disarm();

    if (conn_lost) {
      // The armed crash fired inside a group commit; the server dropped
      // every connection and stopped acking.
      EXPECT_TRUE(server.crashed()) << "connection lost without a crash";
      ++crashes;
    } else {
      EXPECT_FALSE(server.crashed());
      EXPECT_EQ(acked.size(), kKeys);
      completed_without_crash = true;  // sweep passed every crash point
    }
    server.Stop();
    // Whole-store power failure + recovery (also exercised on the clean
    // final round: committed state must survive losing the cache).
    store.CrashAndRecover();

    std::string value;
    for (const auto& [k, v] : acked) {
      ASSERT_TRUE(store.Get(k, &value))
          << "acked key " << k << " lost (crash at event " << at << ")";
      EXPECT_EQ(value, v) << "acked key " << k << " torn at event " << at;
    }
    for (const auto& [k, v] : sent) {
      if (acked.count(k) != 0) continue;
      if (store.Get(k, &value)) {
        EXPECT_EQ(value, v)
            << "unacked key " << k << " torn at event " << at;
      }
    }
    for (std::size_t s = 0; s < store.shards(); ++s) {
      EXPECT_EQ(store.runtime().tm(s).LogSize(), 0u)
          << "shard " << s << " log dirty after recovery at event " << at;
    }
  }
  EXPECT_GT(crashes, 0) << "the sweep never hit a mid-batch crash";
}

// The cross-shard acceptance sweep: every networked batch is an MPUT whose
// key group spans ALL shards, and the "machine" is killed at swept
// persistence events inside the group commit. After recovery each group
// must be fully at its new version or fully absent — a prefix of shards is
// the exact torn state the two-phase pipeline exists to prevent — and
// every ACKED group is fully present.
TEST(KvServerRecovery, KillMidBatchMputSpanningAllShardsIsAtomic) {
  constexpr std::uint64_t kGroups = 24;
  const std::uint64_t version = 3;
  // Build the groups once from the (deterministic) key->shard map: two
  // keys from every shard per group, so every MPUT provably spans all of
  // them.
  std::vector<std::vector<std::uint64_t>> groups(kGroups);
  {
    KvStore probe(ServerKvConfig());
    std::vector<std::vector<std::uint64_t>> by_shard(probe.shards());
    for (std::uint64_t k = 1; ; ++k) {
      std::size_t s = probe.ShardOf(k);
      if (by_shard[s].size() < kGroups * 2) by_shard[s].push_back(k);
      bool full = true;
      for (auto& v : by_shard) full &= v.size() == kGroups * 2;
      if (full) break;
    }
    for (std::uint64_t g = 0; g < kGroups; ++g) {
      for (auto& v : by_shard) {
        groups[g].push_back(v[g * 2]);
        groups[g].push_back(v[g * 2 + 1]);
      }
    }
  }
  auto group_keys = [&](std::uint64_t g) { return groups[g]; };
  bool completed_without_crash = false;
  int crashes = 0;
  for (std::uint64_t at = 60; !completed_without_crash; at += 173) {
    KvStore store(ServerKvConfig());
    NvmManager& nvm = store.runtime().nvm();
    // Every group really does span every shard.
    for (std::uint64_t g = 0; g < kGroups; ++g) {
      std::set<std::size_t> touched;
      for (auto k : group_keys(g)) touched.insert(store.ShardOf(k));
      ASSERT_EQ(touched.size(), store.shards()) << "group " << g;
    }
    serve::KvServer server(&store, TestServerConfig(/*batch_window_us=*/50));
    ASSERT_TRUE(server.Start());
    serve::KvClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));

    std::set<std::uint64_t> acked;
    std::deque<std::uint64_t> inflight;
    bool conn_lost = false;
    nvm.crash_injector().Arm(at);
    auto read_one = [&]() -> bool {
      serve::KvClient::Reply reply;
      if (!client.Flush() || !client.ReadReply(&reply)) return false;
      if (reply.status == serve::Status::kOk) acked.insert(inflight.front());
      inflight.pop_front();
      return true;
    };
    for (std::uint64_t g = 0; g < kGroups && !conn_lost; ++g) {
      std::vector<std::pair<std::uint64_t, std::string>> kvs;
      for (auto k : group_keys(g)) {
        kvs.emplace_back(k, ValueFor(k, version));
      }
      client.QueueMput(kvs);
      inflight.push_back(g);
      while (inflight.size() >= 4 && !conn_lost) conn_lost = !read_one();
    }
    while (!conn_lost && !inflight.empty()) conn_lost = !read_one();
    nvm.crash_injector().Disarm();

    if (conn_lost) {
      EXPECT_TRUE(server.crashed()) << "connection lost without a crash";
      ++crashes;
    } else {
      EXPECT_FALSE(server.crashed());
      EXPECT_EQ(acked.size(), kGroups);
      completed_without_crash = true;
    }
    server.Stop();
    store.CrashAndRecover();

    std::string value;
    for (std::uint64_t g = 0; g < kGroups; ++g) {
      std::vector<std::uint64_t> keys = group_keys(g);
      std::size_t present = 0;
      for (auto k : keys) {
        if (store.Get(k, &value)) {
          EXPECT_EQ(value, ValueFor(k, version))
              << "group " << g << " key " << k << " torn at event " << at;
          ++present;
        }
      }
      EXPECT_TRUE(present == 0 || present == keys.size())
          << "group " << g << " applied on a PREFIX of shards (" << present
          << "/" << keys.size() << ") at event " << at;
      if (acked.count(g) != 0) {
        EXPECT_EQ(present, keys.size())
            << "acked group " << g << " lost at event " << at;
      }
    }
    for (std::size_t s = 0; s < store.runtime().partitions(); ++s) {
      EXPECT_EQ(store.runtime().tm(s).LogSize(), 0u)
          << "partition " << s << " dirty after recovery at event " << at;
    }
  }
  EXPECT_GT(crashes, 0) << "the sweep never hit a mid-batch crash";
}

// The PR 8 acceptance sweep: unlike KillMidBatchDurabilitySweep (armed
// before any traffic, so the batcher runs synchronously throughout), here
// the injector is armed MID-STREAM — after the batcher has been pipelining
// freely with batches in flight while earlier ones ack. Arming forces the
// drain-then-synchronous stand-down transition, and the swept crash then
// fires at a deterministic persistence event. Recovery must show every
// ACKED write intact and no torn unacked write: the pipelined-to-standdown
// handover may not lose, reorder, or prematurely ack anything.
TEST(KvServerRecovery, KillMidPipelineDurabilitySweep) {
  constexpr std::uint64_t kKeys = 150;
  constexpr std::uint64_t kArmAt = kKeys / 3;  // writes sent before arming
  const std::uint64_t version = 8;
  bool completed_without_crash = false;
  int crashes = 0;
  for (std::uint64_t at = 60; !completed_without_crash; at += 223) {
    KvStore store(ServerKvConfig());
    NvmManager& nvm = store.runtime().nvm();
    serve::KvServer server(&store, TestServerConfig(/*batch_window_us=*/30));
    ASSERT_TRUE(server.Start());
    serve::KvClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), 5000));

    std::map<std::uint64_t, std::string> sent;
    std::map<std::uint64_t, std::string> acked;
    std::deque<std::uint64_t> inflight;
    bool conn_lost = false;
    auto read_one = [&]() -> bool {
      serve::KvClient::Reply reply;
      if (!client.Flush() || !client.ReadReply(&reply)) return false;
      if (reply.status == serve::Status::kOk) {
        acked[inflight.front()] = sent[inflight.front()];
      }
      inflight.pop_front();
      return true;
    };
    for (std::uint64_t k = 1; k <= kKeys && !conn_lost; ++k) {
      if (k == kArmAt) nvm.crash_injector().Arm(at);
      std::string v = ValueFor(k, version);
      sent[k] = v;
      client.QueuePut(k, v);
      inflight.push_back(k);
      while (inflight.size() >= 32 && !conn_lost) {
        conn_lost = !read_one();
      }
    }
    while (!conn_lost && !inflight.empty()) {
      conn_lost = !read_one();
    }
    nvm.crash_injector().Disarm();

    if (conn_lost) {
      EXPECT_TRUE(server.crashed()) << "connection lost without a crash";
      ++crashes;
    } else {
      EXPECT_FALSE(server.crashed());
      EXPECT_EQ(acked.size(), kKeys);
      completed_without_crash = true;
    }
    server.Stop();
    store.CrashAndRecover();

    std::string value;
    for (const auto& [k, v] : acked) {
      ASSERT_TRUE(store.Get(k, &value))
          << "acked key " << k << " lost (crash at event " << at << ")";
      EXPECT_EQ(value, v) << "acked key " << k << " torn at event " << at;
    }
    for (const auto& [k, v] : sent) {
      if (acked.count(k) != 0) continue;
      if (store.Get(k, &value)) {
        EXPECT_EQ(value, v)
            << "unacked key " << k << " torn at event " << at;
      }
    }
    for (std::size_t s = 0; s < store.shards(); ++s) {
      EXPECT_EQ(store.runtime().tm(s).LogSize(), 0u)
          << "shard " << s << " log dirty after recovery at event " << at;
    }
  }
  EXPECT_GT(crashes, 0) << "the sweep never hit a mid-pipeline crash";
}

}  // namespace
}  // namespace rwd
