// Parameterization helpers: the REWIND configuration space for TEST_P.
#ifndef REWIND_TESTS_TM_CONFIG_UTIL_H_
#define REWIND_TESTS_TM_CONFIG_UTIL_H_

#include <string>
#include <vector>

#include "src/core/config.h"
#include "tests/test_util.h"

namespace rwd {

/// All meaningful configurations: one-layer logging with each of the three
/// log layouts, and two-layer logging (whose bottom layer is always the
/// optimized bucket log, as in the paper), each under force and no-force.
inline std::vector<RewindConfig> AllConfigs(std::size_t heap_mb = 8) {
  std::vector<RewindConfig> out;
  for (Policy policy : {Policy::kForce, Policy::kNoForce}) {
    for (LogImpl impl :
         {LogImpl::kSimple, LogImpl::kOptimized, LogImpl::kBatch}) {
      RewindConfig c;
      c.nvm = TestNvmConfig(heap_mb);
      c.layers = Layers::kOne;
      c.log_impl = impl;
      c.policy = policy;
      c.bucket_capacity = 16;  // small buckets exercise expansion
      c.batch_group_size = 4;
      out.push_back(c);
    }
    RewindConfig c;
    c.nvm = TestNvmConfig(heap_mb);
    c.layers = Layers::kTwo;
    c.log_impl = LogImpl::kOptimized;
    c.policy = policy;
    c.bucket_capacity = 16;
    out.push_back(c);
  }
  return out;
}

inline std::string ConfigName(const RewindConfig& c) {
  std::string s = c.Label();
  for (char& ch : s) {
    if (ch == '-' || ch == '/') ch = '_';
  }
  return s;
}

}  // namespace rwd

#endif  // REWIND_TESTS_TM_CONFIG_UTIL_H_
