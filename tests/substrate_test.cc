// Unit tests for the baseline substrate (PMFS, WAL file, buffer pool) and
// small library pieces (record rendering, config labels).
#include <gtest/gtest.h>

#include <cstring>

#include "src/baselines/buffer_pool.h"
#include "src/baselines/pmfs.h"
#include "src/baselines/wal_file.h"
#include "src/core/config.h"
#include "src/log/log_record.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

TEST(Pmfs, CreateWriteRead) {
  NvmManager nvm(TestNvmConfig(8));
  Pmfs fs(&nvm);
  Pmfs::File* f = fs.Create("data", 4096);
  const char msg[] = "hello persistent world";
  fs.Write(f, 100, msg, sizeof(msg));
  char out[sizeof(msg)] = {0};
  fs.Read(f, 100, out, sizeof(msg));
  EXPECT_STREQ(out, msg);
  EXPECT_EQ(fs.Open("data"), f);
  EXPECT_EQ(fs.Open("missing"), nullptr);
}

TEST(Pmfs, WritesAreDurable) {
  NvmManager nvm(TestNvmConfig(8));
  Pmfs fs(&nvm);
  Pmfs::File* f = fs.Create("data", 4096);
  std::uint64_t v = 42;
  fs.Write(f, 0, &v, sizeof(v));
  nvm.SimulateCrash();
  std::uint64_t out = 0;
  fs.Read(f, 0, &out, sizeof(out));
  EXPECT_EQ(out, 42u);
}

TEST(Pmfs, AppendAdvancesCursor) {
  NvmManager nvm(TestNvmConfig(8));
  Pmfs fs(&nvm);
  Pmfs::File* f = fs.Create("log", 4096);
  EXPECT_EQ(fs.Append(f, "aaaa", 4), 0u);
  EXPECT_EQ(fs.Append(f, "bbbb", 4), 4u);
  EXPECT_EQ(f->append_off, 8u);
}

TEST(WalFile, BufferedUntilFlush) {
  NvmManager nvm(TestNvmConfig(8));
  Pmfs fs(&nvm);
  WalFile log(&fs, "wal", 1 << 20);
  WalRecordHeader h;
  h.tid = 1;
  h.type = 1;
  h.payload_bytes = 8;
  std::uint64_t payload = 7;
  log.Append(h, &payload);
  EXPECT_EQ(log.durable_lsn(), 0u);  // still buffered
  log.Flush();
  EXPECT_GT(log.durable_lsn(), 0u);
  int seen = 0;
  log.ForEachDurable([&](const WalRecordHeader& hdr, const char* p) {
    EXPECT_EQ(hdr.tid, 1u);
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    EXPECT_EQ(v, 7u);
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1);
}

TEST(WalFile, LoseBufferDropsUnflushed) {
  NvmManager nvm(TestNvmConfig(8));
  Pmfs fs(&nvm);
  WalFile log(&fs, "wal", 1 << 20);
  WalRecordHeader h;
  h.payload_bytes = 0;
  log.Append(h, nullptr);
  log.Flush();
  log.Append(h, nullptr);
  log.LoseBuffer();  // crash
  int seen = 0;
  log.ForEachDurable([&](const WalRecordHeader&, const char*) {
    ++seen;
    return true;
  });
  EXPECT_EQ(seen, 1);
}

TEST(BufferPool, WriteBackAndReload) {
  NvmManager nvm(TestNvmConfig(16));
  Pmfs fs(&nvm);
  BufferPool pool(&fs, "db", 16);
  auto* words = reinterpret_cast<std::uint64_t*>(pool.frame_data(3));
  pool.FixExclusive(3);
  words[0] = 77;
  pool.set_page_lsn(3, 5);
  pool.Unfix(3);
  EXPECT_TRUE(pool.dirty(3));
  EXPECT_EQ(pool.PidOf(&words[0]), 3u);
  pool.WriteBack(3);
  EXPECT_FALSE(pool.dirty(3));
  // Scribble the frame, reload from the durable file.
  words[0] = 0;
  pool.ReloadAll();
  EXPECT_EQ(words[0], 77u);
}

TEST(BufferPool, WriteBackAllFlushesOnlyDirty) {
  NvmManager nvm(TestNvmConfig(16));
  Pmfs fs(&nvm);
  BufferPool pool(&fs, "db", 8);
  pool.set_page_lsn(1, 1);
  pool.set_page_lsn(5, 2);
  EXPECT_EQ(pool.WriteBackAll(), 2u);
  EXPECT_EQ(pool.WriteBackAll(), 0u);
}

TEST(LogRecordRendering, TypeNamesAndToString) {
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kUpdate), "UPDATE");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kClr), "CLR");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kEnd), "END");
  EXPECT_STREQ(LogRecordTypeName(LogRecordType::kCheckpoint), "CHECKPOINT");
  LogRecord r{};
  r.lsn = 9;
  r.tid = 3;
  r.type = LogRecordType::kUpdate;
  r.addr = 0x1000;
  r.old_value = 1;
  r.new_value = 2;
  std::string s = r.ToString();
  EXPECT_NE(s.find("UPDATE"), std::string::npos);
  EXPECT_NE(s.find("lsn=9"), std::string::npos);
  EXPECT_NE(s.find("old=1"), std::string::npos);
}

TEST(ConfigLabels, CoverTheDesignSpace) {
  RewindConfig c;
  c.layers = Layers::kOne;
  c.policy = Policy::kNoForce;
  c.log_impl = LogImpl::kBatch;
  EXPECT_EQ(c.Label(), "1L-NFP/Batch");
  c.layers = Layers::kTwo;
  c.policy = Policy::kForce;
  c.log_impl = LogImpl::kOptimized;
  EXPECT_EQ(c.Label(), "2L-FP/Opt");
  EXPECT_TRUE(c.force());
  EXPECT_TRUE(c.two_layer());
}

}  // namespace
}  // namespace rwd
