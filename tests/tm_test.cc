// Functional tests of the transaction manager across every REWIND
// configuration (no crashes here; see recovery_test.cc for those).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/core/transaction_manager.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

class TmTest : public ::testing::TestWithParam<RewindConfig> {
 protected:
  TmTest()
      : nvm_(GetParam().nvm),
        tm_(&nvm_, GetParam()),
        data_(static_cast<std::uint64_t*>(nvm_.Alloc(8 * 64))) {}

  bool force() const { return GetParam().force(); }

  NvmManager nvm_;
  TransactionManager tm_;
  std::uint64_t* data_;
};

TEST_P(TmTest, CommitAppliesWrites) {
  std::uint32_t t = tm_.Begin();
  tm_.Write(t, &data_[0], 11);
  tm_.Write(t, &data_[1], 22);
  tm_.Commit(t);
  EXPECT_EQ(tm_.Read(&data_[0]), 11u);
  EXPECT_EQ(tm_.Read(&data_[1]), 22u);
  EXPECT_EQ(data_[0], 11u);  // applied, not just buffered
  EXPECT_EQ(tm_.stats().commits, 1u);
}

TEST_P(TmTest, ForcePolicyClearsLogAtCommit) {
  std::uint32_t t = tm_.Begin();
  for (int i = 0; i < 10; ++i) {
    tm_.Write(t, &data_[i % 8], static_cast<std::uint64_t>(i));
  }
  EXPECT_GT(tm_.LogSize(), 0u);
  tm_.Commit(t);
  if (force()) {
    EXPECT_EQ(tm_.LogSize(), 0u);  // cleared at commit
  } else {
    EXPECT_GT(tm_.LogSize(), 0u);  // awaiting checkpoint
    tm_.Checkpoint();
    EXPECT_EQ(tm_.LogSize(), 0u);
  }
}

TEST_P(TmTest, RollbackRestoresOldValues) {
  std::uint32_t t0 = tm_.Begin();
  tm_.Write(t0, &data_[0], 5);
  tm_.Write(t0, &data_[1], 6);
  tm_.Commit(t0);
  std::uint32_t t1 = tm_.Begin();
  tm_.Write(t1, &data_[0], 50);
  tm_.Write(t1, &data_[1], 60);
  tm_.Write(t1, &data_[0], 500);  // second write to the same word
  tm_.Rollback(t1);
  EXPECT_EQ(tm_.Read(&data_[0]), 5u);
  EXPECT_EQ(tm_.Read(&data_[1]), 6u);
  EXPECT_EQ(tm_.stats().rollbacks, 1u);
}

TEST_P(TmTest, RollbackOfReadOnlyTxnIsHarmless) {
  std::uint32_t t = tm_.Begin();
  tm_.Rollback(t);
  EXPECT_EQ(tm_.Read(&data_[0]), 0u);
}

TEST_P(TmTest, InterleavedTransactionsCommitIndependently) {
  std::uint32_t a = tm_.Begin();
  std::uint32_t b = tm_.Begin();
  tm_.Write(a, &data_[0], 1);
  tm_.Write(b, &data_[1], 2);
  tm_.Write(a, &data_[2], 3);
  tm_.Write(b, &data_[3], 4);
  tm_.Commit(a);
  tm_.Rollback(b);
  EXPECT_EQ(tm_.Read(&data_[0]), 1u);
  EXPECT_EQ(tm_.Read(&data_[1]), 0u);
  EXPECT_EQ(tm_.Read(&data_[2]), 3u);
  EXPECT_EQ(tm_.Read(&data_[3]), 0u);
}

TEST_P(TmTest, ReadYourWritesBeforeGroupFlush) {
  // Under the Batch log a write may be parked in the WAL deferral buffer;
  // Read() must still observe it immediately.
  std::uint32_t t = tm_.Begin();
  tm_.Write(t, &data_[0], 77);
  EXPECT_EQ(tm_.Read(&data_[0]), 77u);
  tm_.Write(t, &data_[0], 78);
  EXPECT_EQ(tm_.Read(&data_[0]), 78u);
  tm_.Commit(t);
  EXPECT_EQ(data_[0], 78u);
}

TEST_P(TmTest, WalOrderRecordBeforeData) {
  // Under force + non-batch, the data word is NT-stored right after its
  // record; under no-force it sits in cache. Either way the record count
  // grows with each Write.
  std::uint32_t t = tm_.Begin();
  auto before = tm_.stats().records_logged;
  tm_.Write(t, &data_[0], 9);
  EXPECT_EQ(tm_.stats().records_logged, before + 1);
  tm_.Commit(t);
}

TEST_P(TmTest, DeferredFreeHonoursCommit) {
  void* blk = nvm_.Alloc(64);
  std::uint32_t t = tm_.Begin();
  tm_.Write(t, &data_[0], 1);
  tm_.LogDelete(t, blk);
  EXPECT_TRUE(nvm_.heap().IsLive(blk));  // not freed yet
  tm_.Commit(t);
  if (!force()) tm_.Checkpoint();
  EXPECT_FALSE(nvm_.heap().IsLive(blk));  // freed after commit
  EXPECT_EQ(nvm_.heap().double_free_count(), 0u);
}

TEST_P(TmTest, DeferredFreeSkippedOnRollback) {
  void* blk = nvm_.Alloc(64);
  std::uint32_t t = tm_.Begin();
  tm_.Write(t, &data_[0], 1);
  tm_.LogDelete(t, blk);
  tm_.Rollback(t);
  if (!force()) tm_.Checkpoint();
  EXPECT_TRUE(nvm_.heap().IsLive(blk));  // kept alive
  nvm_.Free(blk);
  EXPECT_EQ(nvm_.heap().double_free_count(), 0u);
}

TEST_P(TmTest, CheckpointKeepsActiveTransactionsRecords) {
  std::uint32_t done = tm_.Begin();
  std::uint32_t active = tm_.Begin();
  tm_.Write(done, &data_[0], 1);
  tm_.Write(active, &data_[1], 2);
  tm_.Commit(done);
  if (force()) return;  // checkpoints are a no-force mechanism
  tm_.Checkpoint();
  EXPECT_GT(tm_.LogSize(), 0u);  // active txn's record survives
  tm_.Commit(active);
  tm_.Checkpoint();
  EXPECT_EQ(tm_.LogSize(), 0u);
}

TEST_P(TmTest, ManySmallTransactionsStayBalanced) {
  for (std::uint64_t i = 0; i < 500; ++i) {
    std::uint32_t t = tm_.Begin();
    tm_.Write(t, &data_[i % 8], i);
    if (i % 7 == 0) {
      tm_.Rollback(t);
    } else {
      tm_.Commit(t);
    }
    if (!force() && i % 100 == 99) tm_.Checkpoint();
  }
  if (!force()) tm_.Checkpoint();
  EXPECT_EQ(tm_.LogSize(), 0u);
  if (tm_.index() != nullptr) {
    EXPECT_TRUE(tm_.index()->CheckInvariants());
    EXPECT_EQ(tm_.index()->txn_count(), 0u);
  }
}

TEST_P(TmTest, ConcurrentWritersToDistinctWords) {
  constexpr int kThreads = 4;
  constexpr int kOps = 200;
  auto* arr = static_cast<std::uint64_t*>(nvm_.Alloc(kThreads * kOps * 8));
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kOps; ++i) {
        std::uint32_t t = tm_.Begin();
        tm_.Write(t, &arr[th * kOps + i], static_cast<std::uint64_t>(th + 1));
        tm_.Commit(t);
      }
    });
  }
  for (auto& t : threads) threads[&t - &threads[0]].join();
  for (int th = 0; th < kThreads; ++th) {
    for (int i = 0; i < kOps; ++i) {
      EXPECT_EQ(tm_.Read(&arr[th * kOps + i]),
                static_cast<std::uint64_t>(th + 1));
    }
  }
  EXPECT_EQ(tm_.stats().commits, kThreads * kOps);
}

// Two-phase commit, participant side: a prepared transaction's records
// survive checkpoints (its fate belongs to the coordinator) and
// CommitPrepared finishes it exactly like a normal commit.
TEST_P(TmTest, PreparedTransactionSurvivesCheckpointThenCommits) {
  std::uint32_t t = tm_.Begin();
  tm_.Write(t, &data_[0], 7);
  tm_.Write(t, &data_[1], 8);
  tm_.Prepare(t, /*gtid=*/42);
  EXPECT_EQ(tm_.stats().prepares, 1u);
  EXPECT_GT(tm_.LogSize(), 0u);
  if (!force()) {
    tm_.Checkpoint();
    EXPECT_GT(tm_.LogSize(), 0u) << "checkpoint cleared a prepared txn";
  }
  tm_.CommitPrepared(t);
  EXPECT_EQ(tm_.Read(&data_[0]), 7u);
  EXPECT_EQ(tm_.Read(&data_[1]), 8u);
  EXPECT_EQ(tm_.stats().commits, 1u);
  if (!force()) tm_.Checkpoint();
  EXPECT_EQ(tm_.LogSize(), 0u);
}

// Coordinator side: decision records are queryable while live and leave
// no residue once erased.
TEST_P(TmTest, DecisionRecordsRoundTrip) {
  LogRecord* commit7 = tm_.LogDecision(7, /*commit=*/true);
  LogRecord* abort9 = tm_.LogDecision(9, /*commit=*/false);
  EXPECT_TRUE(tm_.HasCommitDecision(7));
  EXPECT_FALSE(tm_.HasCommitDecision(9));  // TXN_ABORT is not a commit
  EXPECT_FALSE(tm_.HasCommitDecision(8));
  tm_.EraseDecision(commit7);
  EXPECT_FALSE(tm_.HasCommitDecision(7));
  tm_.EraseDecision(abort9);
  EXPECT_EQ(tm_.LogSize(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, TmTest, ::testing::ValuesIn(AllConfigs()),
    [](const ::testing::TestParamInfo<RewindConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace rwd
