// RewindRepl crash tests (fork/SIGKILL — deliberately NOT part of the
// TSan job; the thread-based replication tests live in repl_test.cc).
//
// Topology: the gtest parent holds no store and no threads — every node
// (leader, follower, late joiner) is a forked CHILD running a full
// KvStore + KvServer, reporting its ephemeral port back through a pipe
// and then parking until the parent kills it. The parent drives writes
// over KvClient connections, delivers real SIGKILLs, and verifies the
// replication guarantees from the outside:
//
//  * kill-the-leader sweep: under semi-synchronous replication, every
//    write the client saw acked is served by the promoted follower, at
//    several different kill points — and a late-joining follower chained
//    off the promoted node converges to the same state.
//  * follower SIGKILL: a file-backed follower killed mid-catch-up
//    restarts, resumes from its persisted applied gtid, re-applies
//    idempotently, and converges including writes issued while it was
//    down.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/kv/kv_store.h"
#include "src/repl/applier.h"
#include "src/repl/follower_agent.h"
#include "src/repl/replication_log.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace rwd {
namespace {

std::string TmpPath(const char* name) {
  return ::testing::TempDir() + "repl_" + name + "_" +
         std::to_string(::getpid()) + ".heap";
}

std::string Val(std::uint64_t key, std::uint64_t version) {
  return "v" + std::to_string(version) + "-" + std::to_string(key) + "-" +
         std::string(24, 'r');
}

KvConfig NodeConfig(const std::string& heap_file = "") {
  KvConfig cfg;
  cfg.rewind.log_impl = LogImpl::kBatch;
  cfg.rewind.layers = Layers::kOne;
  cfg.rewind.policy = Policy::kNoForce;
  cfg.rewind.bucket_capacity = 64;
  cfg.rewind.nvm.mode = NvmMode::kFast;
  cfg.rewind.nvm.heap_bytes = std::size_t{32} << 20;
  cfg.rewind.nvm.write_latency_ns = 0;
  cfg.rewind.nvm.fence_latency_ns = 0;
  cfg.rewind.nvm.heap_file = heap_file;
  cfg.shards = 3;
  cfg.checkpoint_period_ms = 0;
  return cfg;
}

/// A forked server node. The child builds the store + server, writes the
/// ephemeral port (u16) to a pipe, then parks in pause() until killed —
/// SIGKILL only, so destructors never run, exactly like a real crash.
struct ChildNode {
  pid_t pid = -1;
  std::uint16_t port = 0;

  ChildNode() = default;
  // Owning handle: moves transfer the pid (NRVO is optional, and a copy
  // whose twin's destructor reaps the child would kill it silently).
  ChildNode(ChildNode&& other) noexcept
      : pid(other.pid), port(other.port) {
    other.pid = -1;
  }
  ChildNode& operator=(ChildNode&& other) noexcept {
    if (this != &other) {
      Kill();
      pid = other.pid;
      port = other.port;
      other.pid = -1;
    }
    return *this;
  }
  ChildNode(const ChildNode&) = delete;
  ChildNode& operator=(const ChildNode&) = delete;

  void Kill() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }
  ~ChildNode() { Kill(); }
};

/// Forks a node. `setup` runs in the child and must return the listening
/// port (0 = failure, child exits 1). The child never returns.
template <typename Setup>
ChildNode ForkNode(Setup setup) {
  int pipe_fd[2];
  if (::pipe(pipe_fd) != 0) return {};
  pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipe_fd[0]);
    std::uint16_t port = setup();
    if (port == 0) ::_exit(1);
    if (::write(pipe_fd[1], &port, sizeof(port)) != sizeof(port)) ::_exit(1);
    ::close(pipe_fd[1]);
    for (;;) ::pause();
  }
  ::close(pipe_fd[1]);
  ChildNode node;
  node.pid = pid;
  ssize_t n = ::read(pipe_fd[0], &node.port, sizeof(node.port));
  ::close(pipe_fd[0]);
  if (n != sizeof(node.port)) {
    node.Kill();
    node.port = 0;
  }
  return node;
}

/// Leader child: DRAM store + ReplicationLog + KvServer, optionally in
/// semi-synchronous mode.
ChildNode ForkLeader(bool sync_repl) {
  return ForkNode([sync_repl]() -> std::uint16_t {
    static KvStore store(NodeConfig());
    static repl::ReplicationLog log(8192);
    store.SetReplicationLog(&log);
    serve::ServerConfig cfg;
    cfg.port = 0;
    cfg.workers = 2;
    cfg.batch_window_us = 100;
    cfg.sync_repl = sync_repl;
    cfg.sync_repl_timeout_ms = 2000;
    static serve::KvServer server(&store, cfg);
    if (!server.Start()) return 0;
    return server.port();
  });
}

/// Follower child: store (file-backed when `heap_file` is set) + applier
/// + agent chasing `leader_port`, fronted by a read-only KvServer. The
/// follower carries its OWN ReplicationLog and publishes what it applies,
/// so after a promotion new followers can chain off it directly.
ChildNode ForkFollower(std::uint16_t leader_port,
                       const std::string& heap_file = "") {
  return ForkNode([leader_port, heap_file]() -> std::uint16_t {
    KvConfig kv_cfg = NodeConfig(heap_file);
    static std::unique_ptr<KvStore> store;
    struct stat st;
    bool reattach = !heap_file.empty() &&
                    ::stat(heap_file.c_str(), &st) == 0 && st.st_size > 0;
    try {
      store = reattach ? KvStore::Open(heap_file, kv_cfg)
                       : std::make_unique<KvStore>(kv_cfg);
    } catch (...) {
      return 0;
    }
    static repl::ReplicationLog log(8192);
    store->SetReplicationLog(&log);
    static repl::ReplApplier applier(store.get());
    static repl::FollowerAgent agent(&applier, "127.0.0.1", leader_port);
    serve::ServerConfig cfg;
    cfg.port = 0;
    cfg.workers = 2;
    cfg.batch_window_us = 100;
    cfg.read_only = true;
    cfg.applier = &applier;
    cfg.on_promote = [] { agent.Stop(); };
    static serve::KvServer server(store.get(), cfg);
    if (!server.Start()) return 0;
    agent.Start();
    return server.port();
  });
}

/// Polls `port`'s STATS until `pred(keys)` holds. False on timeout.
bool WaitForKeys(std::uint16_t port,
                 const std::function<bool(std::uint64_t)>& pred,
                 std::uint32_t timeout_ms = 15000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    serve::KvClient probe;
    serve::StatsReply stats;
    if (probe.Connect("127.0.0.1", port, 2000) && probe.Stats(&stats) &&
        pred(stats.keys)) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

// The acceptance sweep: a semi-synchronous leader is SIGKILLed with a
// pipeline of writes in flight, at several kill points. Every write whose
// ack the client READ must be on the promoted follower; a late joiner
// chained off the promoted node converges to the identical state.
TEST(ReplRestart, KillTheLeaderSweepServesEveryAckedWrite) {
  for (std::size_t acks_before_kill : {20u, 60u, 140u}) {
    SCOPED_TRACE("kill after " + std::to_string(acks_before_kill) +
                 " acked writes");
    ChildNode leader = ForkLeader(/*sync_repl=*/true);
    ASSERT_NE(leader.port, 0u);
    ChildNode follower = ForkFollower(leader.port);
    ASSERT_NE(follower.port, 0u);

    serve::KvClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", leader.port, 5000));
    // The first write can race the follower's subscription (no cursor ->
    // no semi-sync wait), so establish the link before the sweep proper.
    ASSERT_TRUE(client.Put(1, Val(1, 0)));
    ASSERT_TRUE(WaitForKeys(follower.port,
                            [](std::uint64_t keys) { return keys >= 1; }));

    // Pipeline writes; kill the leader once `acks_before_kill` acks have
    // been READ, with more writes still in flight. Every ack the client
    // saw is a durability promise the promoted follower must honour.
    std::map<std::uint64_t, std::string> acked = {{1, Val(1, 0)}};
    constexpr std::size_t kDepth = 32;
    constexpr std::uint64_t kTotal = 400;
    std::vector<std::uint64_t> queued;
    std::size_t read_at = 0;
    bool leader_dead = false;
    for (std::uint64_t key = 2; key <= kTotal && !leader_dead; ++key) {
      client.QueuePut(key, Val(key, 0));
      queued.push_back(key);
      while (client.pending() >= kDepth) {
        serve::KvClient::Reply reply;
        if (!client.Flush() || !client.ReadReply(&reply)) {
          leader_dead = true;
          break;
        }
        if (reply.status == serve::Status::kOk) {
          std::uint64_t k = queued[read_at];
          acked[k] = Val(k, 0);
        }
        ++read_at;
        if (acked.size() == acks_before_kill) leader.Kill();
      }
    }
    // Drain what the kernel already delivered: those acks count too.
    while (!leader_dead && read_at < queued.size()) {
      serve::KvClient::Reply reply;
      if (!client.Flush() || !client.ReadReply(&reply)) break;
      if (reply.status == serve::Status::kOk) {
        std::uint64_t k = queued[read_at];
        acked[k] = Val(k, 0);
      }
      ++read_at;
      if (acked.size() == acks_before_kill) leader.Kill();
    }
    leader.Kill();  // idempotent: in case the loop never reached the count
    ASSERT_GE(acked.size(), acks_before_kill);

    // Promote the survivor and audit every acked write against it.
    serve::KvClient to_follower;
    ASSERT_TRUE(to_follower.Connect("127.0.0.1", follower.port, 5000));
    ASSERT_TRUE(to_follower.Promote());
    std::string value;
    for (const auto& [key, expect] : acked) {
      ASSERT_TRUE(to_follower.Get(key, &value))
          << "acked key " << key << " lost after promotion";
      EXPECT_EQ(value, expect);
    }
    // The promoted node is a real leader: it takes writes again.
    ASSERT_TRUE(to_follower.Put(9999, Val(9999, 1)));

    // Late joiner: chain a brand-new follower off the promoted node and
    // wait until it has everything, acked writes included.
    serve::StatsReply promoted_stats;
    ASSERT_TRUE(to_follower.Stats(&promoted_stats));
    ChildNode late = ForkFollower(follower.port);
    ASSERT_NE(late.port, 0u);
    std::uint64_t want = promoted_stats.keys;
    ASSERT_TRUE(WaitForKeys(
        late.port, [want](std::uint64_t keys) { return keys >= want; }));
    serve::KvClient to_late;
    ASSERT_TRUE(to_late.Connect("127.0.0.1", late.port, 5000));
    for (const auto& [key, expect] : acked) {
      ASSERT_TRUE(to_late.Get(key, &value)) << "late joiner missing " << key;
      EXPECT_EQ(value, expect);
    }
    ASSERT_TRUE(to_late.Get(9999, &value));
    EXPECT_EQ(value, Val(9999, 1));
  }
}

// A file-backed follower SIGKILLed mid-catch-up restarts on the same heap,
// resumes from the persisted applied gtid (re-applying any suffix
// idempotently), and converges — including overwrites and writes issued
// while it was down.
TEST(ReplRestart, FollowerSigkillResumesFromPersistedGtid) {
  std::string heap = TmpPath("follower");
  ::unlink(heap.c_str());

  ChildNode leader = ForkLeader(/*sync_repl=*/false);
  ASSERT_NE(leader.port, 0u);

  serve::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", leader.port, 5000));
  for (std::uint64_t k = 1; k <= 60; ++k) {
    ASSERT_TRUE(client.Put(k, Val(k, 0)));
  }

  // Cold-join the follower against the 60-key backlog and SIGKILL it
  // almost immediately — with luck mid-apply; either way the persisted
  // gtid can only lag the applied state, never lead it.
  {
    ChildNode follower = ForkFollower(leader.port, heap);
    ASSERT_NE(follower.port, 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    follower.Kill();
  }

  // While the follower is down: new keys, overwrites, a delete.
  for (std::uint64_t k = 61; k <= 80; ++k) {
    ASSERT_TRUE(client.Put(k, Val(k, 0)));
  }
  for (std::uint64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE(client.Put(k, Val(k, 1)));
  }
  ASSERT_TRUE(client.Delete(42));

  // Restart on the same heap file: re-attach, resume, converge.
  ChildNode follower = ForkFollower(leader.port, heap);
  ASSERT_NE(follower.port, 0u);
  ASSERT_TRUE(WaitForKeys(follower.port,
                          [](std::uint64_t keys) { return keys >= 79; }));

  serve::KvClient to_follower;
  ASSERT_TRUE(to_follower.Connect("127.0.0.1", follower.port, 5000));
  std::string value;
  for (std::uint64_t k = 1; k <= 80; ++k) {
    if (k == 42) {
      EXPECT_FALSE(to_follower.Get(k, &value)) << "deleted key resurrected";
      continue;
    }
    ASSERT_TRUE(to_follower.Get(k, &value)) << "key " << k;
    EXPECT_EQ(value, Val(k, k <= 10 ? 1 : 0));
  }

  ::unlink(heap.c_str());
}

}  // namespace
}  // namespace rwd
