// B+-tree tests: functional fuzz against std::map on every storage layer,
// plus transactional crash recovery on REWIND.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <random>

#include "src/core/transaction_manager.h"
#include "src/structures/btree.h"
#include "tests/tm_config_util.h"

namespace rwd {
namespace {

void FillPayload(std::uint64_t key, std::uint64_t salt, void* out) {
  auto* w = static_cast<std::uint64_t*>(out);
  w[0] = key;
  w[1] = key ^ salt;
  w[2] = salt;
  w[3] = key + salt;
}

TEST(BTreeDram, InsertLookupRemoveBasic) {
  DramOps ops;
  BTree tree(&ops);
  std::uint64_t p[4];
  FillPayload(5, 1, p);
  EXPECT_TRUE(tree.Insert(&ops, 5, p));
  EXPECT_FALSE(tree.Insert(&ops, 5, p));  // duplicate
  std::uint64_t out[4] = {0};
  EXPECT_TRUE(tree.Lookup(&ops, 5, out));
  EXPECT_EQ(std::memcmp(p, out, 32), 0);
  EXPECT_FALSE(tree.Lookup(&ops, 6, nullptr));
  EXPECT_TRUE(tree.Remove(&ops, 5));
  EXPECT_FALSE(tree.Remove(&ops, 5));
  EXPECT_FALSE(tree.Lookup(&ops, 5, nullptr));
  EXPECT_EQ(tree.size(&ops), 0u);
}

TEST(BTreeDram, SequentialInsertsSplitCorrectly) {
  DramOps ops;
  BTree tree(&ops);
  std::uint64_t p[4];
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    FillPayload(k, 7, p);
    ASSERT_TRUE(tree.Insert(&ops, k, p));
  }
  EXPECT_EQ(tree.size(&ops), 5000u);
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    std::uint64_t out[4];
    ASSERT_TRUE(tree.Lookup(&ops, k, out)) << k;
    ASSERT_EQ(out[0], k);
  }
}

TEST(BTreeDram, ReverseAndStridedInserts) {
  DramOps ops;
  BTree tree(&ops);
  std::uint64_t p[4];
  for (std::uint64_t k = 3000; k >= 1; --k) {
    FillPayload(k, 9, p);
    ASSERT_TRUE(tree.Insert(&ops, k, p));
  }
  for (std::uint64_t k = 100000; k < 103000; k += 3) {
    FillPayload(k, 9, p);
    ASSERT_TRUE(tree.Insert(&ops, k, p));
  }
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  EXPECT_EQ(tree.size(&ops), 4000u);
}

TEST(BTreeDram, ScanVisitsInOrder) {
  DramOps ops;
  BTree tree(&ops);
  std::uint64_t p[4];
  for (std::uint64_t k = 2; k <= 200; k += 2) {
    FillPayload(k, 3, p);
    tree.Insert(&ops, k, p);
  }
  std::uint64_t prev = 0;
  std::size_t n = 0;
  tree.Scan(&ops, 50, [&](std::uint64_t k, const void*) {
    EXPECT_GE(k, 50u);
    EXPECT_GT(k, prev);
    prev = k;
    ++n;
    return true;
  });
  EXPECT_EQ(n, 76u);  // keys 50..200 step 2
}

TEST(BTreeDram, FuzzAgainstStdMap) {
  DramOps ops;
  BTree tree(&ops);
  std::map<std::uint64_t, std::uint64_t> ref;  // key -> salt
  std::mt19937_64 rng(7);
  std::uint64_t p[4], out[4];
  for (int step = 0; step < 30000; ++step) {
    std::uint64_t key = 1 + rng() % 2000;
    switch (rng() % 3) {
      case 0: {  // insert
        std::uint64_t salt = rng();
        FillPayload(key, salt, p);
        bool ok = tree.Insert(&ops, key, p);
        EXPECT_EQ(ok, ref.emplace(key, salt).second);
        break;
      }
      case 1: {  // remove
        bool ok = tree.Remove(&ops, key);
        EXPECT_EQ(ok, ref.erase(key) > 0);
        break;
      }
      case 2: {  // lookup
        bool ok = tree.Lookup(&ops, key, out);
        auto it = ref.find(key);
        ASSERT_EQ(ok, it != ref.end());
        if (ok) {
          FillPayload(key, it->second, p);
          ASSERT_EQ(std::memcmp(p, out, 32), 0);
        }
        break;
      }
    }
  }
  EXPECT_EQ(tree.size(&ops), ref.size());
  EXPECT_TRUE(tree.CheckInvariants(&ops));
}

TEST(BTreeNvm, WorksOnPersistentLayer) {
  NvmManager nvm(TestNvmConfig(16));
  NvmOps ops(&nvm);
  BTree tree(&ops);
  std::uint64_t p[4];
  for (std::uint64_t k = 1; k <= 2000; ++k) {
    FillPayload(k, 11, p);
    ASSERT_TRUE(tree.Insert(&ops, k, p));
  }
  for (std::uint64_t k = 1; k <= 2000; k += 2) {
    ASSERT_TRUE(tree.Remove(&ops, k));
  }
  EXPECT_EQ(tree.size(&ops), 1000u);
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  // Persistent non-recoverable: quiescent state survives a crash.
  nvm.SimulateCrash();
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  for (std::uint64_t k = 2; k <= 2000; k += 2) {
    ASSERT_TRUE(tree.Lookup(&ops, k, nullptr)) << k;
  }
}

class BTreeRewindTest : public ::testing::TestWithParam<RewindConfig> {};

TEST_P(BTreeRewindTest, TransactionalOpsMatchReference) {
  NvmManager nvm(GetParam().nvm);
  TransactionManager tm(&nvm, GetParam());
  RewindOps ops(&tm);
  ops.BeginOp();
  BTree tree(&ops);
  ops.CommitOp();
  std::map<std::uint64_t, std::uint64_t> ref;
  std::mt19937_64 rng(13);
  std::uint64_t p[4], out[4];
  for (int step = 0; step < 3000; ++step) {
    std::uint64_t key = 1 + rng() % 300;
    if (rng() % 2 == 0) {
      std::uint64_t salt = rng();
      FillPayload(key, salt, p);
      bool ok = tree.InsertTxn(&ops, key, p);
      EXPECT_EQ(ok, ref.emplace(key, salt).second);
    } else {
      bool ok = tree.RemoveTxn(&ops, key);
      EXPECT_EQ(ok, ref.erase(key) > 0);
    }
    if (!GetParam().force() && step % 500 == 499) tm.Checkpoint();
  }
  EXPECT_EQ(tree.size(&ops), ref.size());
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  for (const auto& [k, salt] : ref) {
    ASSERT_TRUE(tree.Lookup(&ops, k, out));
    FillPayload(k, salt, p);
    ASSERT_EQ(std::memcmp(p, out, 32), 0);
  }
}

TEST_P(BTreeRewindTest, AbortedOperationLeavesTreeUntouched) {
  NvmManager nvm(GetParam().nvm);
  TransactionManager tm(&nvm, GetParam());
  RewindOps ops(&tm);
  ops.BeginOp();
  BTree tree(&ops);
  std::uint64_t p[4];
  for (std::uint64_t k = 1; k <= 100; ++k) {
    FillPayload(k, 5, p);
    tree.Insert(&ops, k, p);
  }
  ops.CommitOp();
  // A multi-insert transaction that rolls back.
  ops.BeginOp();
  for (std::uint64_t k = 200; k <= 260; ++k) {
    FillPayload(k, 6, p);
    tree.Insert(&ops, k, p);
  }
  tree.Remove(&ops, 50);
  ops.AbortOp();
  EXPECT_EQ(tree.size(&ops), 100u);
  EXPECT_TRUE(tree.CheckInvariants(&ops));
  EXPECT_TRUE(tree.Lookup(&ops, 50, nullptr));
  EXPECT_FALSE(tree.Lookup(&ops, 230, nullptr));
}

TEST_P(BTreeRewindTest, CrashSweepPreservesCommittedState) {
  // Crash at a spread of persistence events during transactional inserts
  // and deletes; after recovery the tree must exactly match the reference
  // of the committed transactions.
  for (std::uint64_t at = 25; at < 3000; at += 151) {
    NvmManager nvm(GetParam().nvm);
    TransactionManager tm(&nvm, GetParam());
    RewindOps ops(&tm);
    ops.BeginOp();
    BTree tree(&ops);
    ops.CommitOp();
    if (!GetParam().force()) tm.Checkpoint();
    std::map<std::uint64_t, std::uint64_t> committed;
    std::mt19937_64 rng(at);
    std::uint64_t p[4];
    // The operation in flight at the crash: its commit may have become
    // logically durable just before the exception propagated, so both
    // outcomes are acceptable for that one key.
    enum { kNone, kInsert, kRemove } pending_kind = kNone;
    std::uint64_t pending_key = 0, pending_salt = 0;
    bool crashed = RunWithCrashAt(
        &nvm, at,
        [&] {
          for (int step = 0; step < 200; ++step) {
            std::uint64_t key = 1 + rng() % 100;
            std::uint64_t salt = rng();
            if (step % 3 != 2) {
              pending_kind = kInsert;
              pending_key = key;
              pending_salt = salt;
              FillPayload(key, salt, p);
              ops.BeginOp();
              bool ok = tree.Insert(&ops, key, p);
              ops.CommitOp();
              if (ok) committed.emplace(key, salt);
            } else {
              pending_kind = kRemove;
              pending_key = key;
              ops.BeginOp();
              bool ok = tree.Remove(&ops, key);
              ops.CommitOp();
              if (ok) committed.erase(key);
            }
            pending_kind = kNone;
          }
        },
        /*evict_probability=*/0.3, /*seed=*/at);
    if (!crashed) break;
    tm.ForgetVolatileState();
    tm.Recover();
    ASSERT_TRUE(tree.CheckInvariants(&ops)) << "crash at " << at;
    std::uint64_t out[4];
    std::size_t expected_size = committed.size();
    for (const auto& [k, salt] : committed) {
      if (pending_kind == kRemove && k == pending_key) {
        // May or may not have been removed; if present, value unchanged.
        if (tree.Lookup(&ops, k, out)) {
          FillPayload(k, salt, p);
          ASSERT_EQ(std::memcmp(p, out, 32), 0) << "crash at " << at;
        } else {
          --expected_size;
        }
        continue;
      }
      ASSERT_TRUE(tree.Lookup(&ops, k, out))
          << "crash at " << at << " key " << k;
      FillPayload(k, salt, p);
      ASSERT_EQ(std::memcmp(p, out, 32), 0) << "crash at " << at;
    }
    if (pending_kind == kInsert && committed.find(pending_key) ==
                                       committed.end()) {
      // A new-key insert may have committed unrecorded.
      if (tree.Lookup(&ops, pending_key, out)) {
        FillPayload(pending_key, pending_salt, p);
        ASSERT_EQ(std::memcmp(p, out, 32), 0) << "crash at " << at;
        ++expected_size;
      }
    }
    EXPECT_EQ(tree.size(&ops), expected_size) << "crash at " << at;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BTreeRewindTest, ::testing::ValuesIn(AllConfigs(32)),
    [](const ::testing::TestParamInfo<RewindConfig>& info) {
      return ConfigName(info.param);
    });

}  // namespace
}  // namespace rwd
