// Tests for the hybrid bucketed log ("Optimized") and its batched variant
// ("Batch"), paper Section 3.3.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/log/batch_log.h"
#include "src/log/bucket_log.h"
#include "src/log/simple_log.h"
#include "tests/test_util.h"

namespace rwd {
namespace {

LogRecord* NewRec(NvmManager* nvm, std::uint64_t lsn, std::uint32_t tid,
                  LogRecordType type = LogRecordType::kUpdate) {
  LogRecord local{};
  local.lsn = lsn;
  local.tid = tid;
  local.type = type;
  local.flags = LogRecord::kFlagUndoable;
  auto* rec = static_cast<LogRecord*>(nvm->Alloc(sizeof(LogRecord)));
  nvm->StoreNTObject(rec, local);
  nvm->Fence();
  return rec;
}

std::vector<std::uint64_t> Lsns(const ILog& log) {
  std::vector<std::uint64_t> out;
  log.ForEach([&](LogRecord* r) {
    out.push_back(r->lsn);
    return true;
  });
  return out;
}

enum class Kind { kSimple, kOptimized, kBatch };

class LogParamTest : public ::testing::TestWithParam<Kind> {
 protected:
  LogParamTest() : nvm_(TestNvmConfig(2)) { log_ = Make(&nvm_); }

  std::unique_ptr<ILog> Make(NvmManager* nvm) {
    switch (GetParam()) {
      case Kind::kSimple:
        return std::make_unique<SimpleLog>(nvm);
      case Kind::kOptimized:
        return std::make_unique<BucketLog>(nvm, 8, 0);
      case Kind::kBatch:
        return std::make_unique<BatchLog>(nvm, 8, 4);
    }
    return nullptr;
  }

  NvmManager nvm_;
  std::unique_ptr<ILog> log_;
};

TEST_P(LogParamTest, AppendPreservesOrder) {
  for (std::uint64_t i = 1; i <= 30; ++i) {
    log_->Append(NewRec(&nvm_, i, 1));
  }
  log_->Sync();
  EXPECT_EQ(log_->size(), 30u);
  auto lsns = Lsns(*log_);
  ASSERT_EQ(lsns.size(), 30u);
  for (std::uint64_t i = 0; i < 30; ++i) EXPECT_EQ(lsns[i], i + 1);
}

TEST_P(LogParamTest, BackwardIterationReverses) {
  for (std::uint64_t i = 1; i <= 20; ++i) {
    log_->Append(NewRec(&nvm_, i, 1));
  }
  log_->Sync();
  std::vector<std::uint64_t> back;
  log_->ForEachBackward([&](LogRecord* r) {
    back.push_back(r->lsn);
    return true;
  });
  ASSERT_EQ(back.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(back[i], 20 - i);
}

TEST_P(LogParamTest, RemoveLeavesOthersIntact) {
  std::vector<LogRecord*> recs;
  for (std::uint64_t i = 1; i <= 20; ++i) {
    recs.push_back(NewRec(&nvm_, i, 1));
    log_->Append(recs.back());
  }
  log_->Sync();
  for (std::uint64_t i = 0; i < 20; i += 2) log_->Remove(recs[i]);
  EXPECT_EQ(log_->size(), 10u);
  auto lsns = Lsns(*log_);
  ASSERT_EQ(lsns.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(lsns[i], 2 * i + 2);
}

TEST_P(LogParamTest, EarlyStopInIteration) {
  for (std::uint64_t i = 1; i <= 10; ++i) {
    log_->Append(NewRec(&nvm_, i, 1));
  }
  log_->Sync();
  int seen = 0;
  log_->ForEach([&](LogRecord*) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST_P(LogParamTest, ClearEmptiesLog) {
  for (std::uint64_t i = 1; i <= 25; ++i) {
    log_->Append(NewRec(&nvm_, i, 1));
  }
  log_->Sync();
  log_->Clear();
  EXPECT_EQ(log_->size(), 0u);
  EXPECT_TRUE(Lsns(*log_).empty());
  // Usable again after clearing.
  log_->Append(NewRec(&nvm_, 100, 2));
  log_->Sync();
  EXPECT_EQ(log_->size(), 1u);
}

TEST_P(LogParamTest, RecoverAfterCleanRunKeepsEverything) {
  for (std::uint64_t i = 1; i <= 23; ++i) {
    log_->Append(NewRec(&nvm_, i, 1));
  }
  log_->Sync();
  log_->Recover();
  auto lsns = Lsns(*log_);
  ASSERT_EQ(lsns.size(), 23u);
  for (std::uint64_t i = 0; i < 23; ++i) EXPECT_EQ(lsns[i], i + 1);
  // Appends continue to work after recovery.
  log_->Append(NewRec(&nvm_, 24, 1));
  log_->Sync();
  EXPECT_EQ(log_->size(), 24u);
}

// Crash-point sweep: appended records recovered must form a prefix
// (Optimized persists per record; Batch per group — either way a prefix).
TEST_P(LogParamTest, CrashDuringAppendsRecoversPrefix) {
  bool done = false;
  for (std::uint64_t at = 1; at < 500 && !done; ++at) {
    NvmManager nvm(TestNvmConfig(2));
    auto log = Make(&nvm);
    bool crashed = RunWithCrashAt(&nvm, at, [&] {
      for (std::uint64_t i = 1; i <= 20; ++i) {
        log->Append(NewRec(&nvm, i, 1));
      }
      log->Sync();
    });
    log->Recover();
    auto lsns = Lsns(*log);
    ASSERT_LE(lsns.size(), 20u);
    for (std::uint64_t i = 0; i < lsns.size(); ++i) {
      ASSERT_EQ(lsns[i], i + 1) << "crash at " << at;
    }
    if (!crashed) {
      ASSERT_EQ(lsns.size(), 20u);
      done = true;
    }
  }
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(AllLogs, LogParamTest,
                         ::testing::Values(Kind::kSimple, Kind::kOptimized,
                                           Kind::kBatch),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kSimple:
                               return "Simple";
                             case Kind::kOptimized:
                               return "Optimized";
                             case Kind::kBatch:
                               return "Batch";
                           }
                           return "?";
                         });

TEST(BucketLog, BucketsAreRetiredWhenEmpty) {
  NvmManager nvm(TestNvmConfig(2));
  BucketLog log(&nvm, 4, 0);
  std::vector<LogRecord*> recs;
  for (std::uint64_t i = 1; i <= 12; ++i) {  // 3 full buckets
    recs.push_back(NewRec(&nvm, i, 1));
    log.Append(recs.back());
  }
  EXPECT_EQ(log.bucket_count(), 3u);
  // Empty the middle bucket (records 5..8).
  for (int i = 4; i < 8; ++i) log.Remove(recs[i]);
  log.ReclaimBuckets();
  EXPECT_EQ(log.bucket_count(), 2u);
  auto lsns = Lsns(log);
  ASSERT_EQ(lsns.size(), 8u);
}

TEST(BucketLog, TombstonesSurviveRecovery) {
  NvmManager nvm(TestNvmConfig(2));
  BucketLog log(&nvm, 8, 0);
  std::vector<LogRecord*> recs;
  for (std::uint64_t i = 1; i <= 6; ++i) {
    recs.push_back(NewRec(&nvm, i, 1));
    log.Append(recs.back());
  }
  log.Remove(recs[1]);
  log.Remove(recs[3]);
  nvm.SimulateCrash();
  log.Recover();
  auto lsns = Lsns(log);
  ASSERT_EQ(lsns.size(), 4u);
  EXPECT_EQ(lsns[0], 1u);
  EXPECT_EQ(lsns[1], 3u);
  EXPECT_EQ(lsns[2], 5u);
  EXPECT_EQ(lsns[3], 6u);
  EXPECT_EQ(log.size(), 4u);
}

TEST(BatchLog, UnsyncedRecordsAreDiscardedAtCrash) {
  NvmManager nvm(TestNvmConfig(2));
  BatchLog log(&nvm, 100, 8);
  // 10 records: first 8 flushed as a group, last 2 pending.
  for (std::uint64_t i = 1; i <= 10; ++i) {
    log.Append(NewRec(&nvm, i, 1));
  }
  nvm.SimulateCrash();
  log.Recover();
  auto lsns = Lsns(log);
  ASSERT_EQ(lsns.size(), 8u);  // only the flushed group survives
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(lsns[i], i + 1);
}

TEST(BatchLog, EndRecordForcesGroupFlush) {
  NvmManager nvm(TestNvmConfig(2));
  BatchLog log(&nvm, 100, 8);
  log.Append(NewRec(&nvm, 1, 1));
  log.Append(NewRec(&nvm, 2, 1, LogRecordType::kEnd));  // forces flush
  nvm.SimulateCrash();
  log.Recover();
  EXPECT_EQ(log.size(), 2u);
}

TEST(BatchLog, GroupFlushCallbackReleasesEveryGroup) {
  // The callback contract: whenever it fires, every appended record is
  // persistent; and Sync() always ends with a callback so the transaction
  // manager can release deferred user writes. Exact firing counts are an
  // implementation detail (the callback is idempotent by design).
  NvmManager nvm(TestNvmConfig(2));
  BatchLog log(&nvm, 100, 4);
  std::uint64_t appended = 0;
  std::uint64_t released_upto = 0;
  log.set_group_flush_callback([&] { released_upto = appended; });
  for (std::uint64_t i = 1; i <= 4; ++i) {
    log.Append(NewRec(&nvm, i, 1));
    ++appended;
  }
  // The boundary flush fires *inside* the 4th Append, so the caller-side
  // count it observed was 3 — mirroring how the transaction manager's
  // fourth user write stays deferred until the next flush.
  EXPECT_EQ(released_upto, 3u);
  log.Append(NewRec(&nvm, 5, 1));
  ++appended;
  EXPECT_LT(released_upto, 5u);  // open group still deferred
  log.Sync();
  EXPECT_EQ(released_upto, 5u);  // Sync always releases
  log.Sync();
  EXPECT_EQ(released_upto, 5u);
}

TEST(BatchLog, FencesAmortizedAcrossGroup) {
  // Mirror the transaction manager's record creation: the Batch log's
  // records are written with cached stores (no per-record fence; the group
  // flush persists them), whereas the Optimized log persists and fences
  // each record before insertion.
  NvmConfig cfg = TestNvmConfig(2);
  cfg.mode = NvmMode::kFast;
  NvmManager nvm_batch(cfg);
  BatchLog batch(&nvm_batch, 1000, 8);
  for (std::uint64_t i = 1; i <= 800; ++i) {
    LogRecord local{};
    local.lsn = i;
    local.tid = 1;
    local.type = LogRecordType::kUpdate;
    auto* rec = static_cast<LogRecord*>(nvm_batch.Alloc(sizeof(LogRecord)));
    nvm_batch.StoreObject(rec, local);  // cached; persisted by group flush
    batch.Append(rec);
  }
  batch.Sync();
  NvmManager nvm_opt(cfg);
  BucketLog opt(&nvm_opt, 1000, 0);
  for (std::uint64_t i = 1; i <= 800; ++i) {
    opt.Append(NewRec(&nvm_opt, i, 1));  // NT store + fence per record
  }
  // ~1 fence per 8 records vs ~1 per record.
  EXPECT_LT(nvm_batch.stats().fences.load() * 4,
            nvm_opt.stats().fences.load());
}

}  // namespace
}  // namespace rwd
