// RewindKV quickstart: the paper's motivating use-case — application data
// structures co-designed with recoverable logging — packaged as an
// embedded, sharded key-value store. Each shard owns one log partition
// (the paper's distributed log, Fig. 11) plus a recoverable B+-tree
// primary index and hash-table secondary index updated atomically in one
// REWIND transaction.
//
// Build: cmake --build build && ./build/examples/kv_store
#include <cstdio>
#include <string>

#include "src/kv/kv_store.h"
#include "src/workload/workload.h"

int main() {
  using namespace rwd;
  KvConfig config;
  config.rewind.nvm.mode = NvmMode::kCrashSim;
  config.rewind.nvm.heap_bytes = 128 << 20;
  config.rewind.nvm.write_latency_ns = 0;
  config.rewind.nvm.fence_latency_ns = 0;
  config.rewind.log_impl = LogImpl::kBatch;
  config.rewind.policy = Policy::kNoForce;
  config.shards = 4;
  KvStore store(config);

  // Single-key operations: each Put updates the shard's B+-tree and hash
  // index in ONE transaction, so a crash can never leave them disagreeing.
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    store.Put(id, "profile-" + std::to_string(id));
  }
  std::printf("loaded %lu profiles across %zu shards\n",
              static_cast<unsigned long>(store.Size()), store.shards());

  // A cross-shard batch: every involved shard moves together or not at
  // all for concurrent readers.
  store.MultiPut({{2001, "alice"}, {2002, "bob"}, {2003, "carol"}});

  // Snapshot-consistent ordered scan across every shard.
  std::printf("users 2001..: ");
  store.Scan(2001, 3, [](std::uint64_t key, std::string_view value) {
    std::printf("[%lu=%.*s] ", static_cast<unsigned long>(key),
                static_cast<int>(value.size()), value.data());
    return true;
  });
  std::printf("\n");

  // Crash mid-overwrite, recover, verify: the interrupted transaction
  // rolls back; every committed key survives on every shard.
  store.Put(7, "before-crash");
  store.runtime().nvm().crash_injector().Arm(500);
  try {
    for (std::uint64_t id = 1; id <= 1000; ++id) {
      store.Put(id, "bulk-overwrite-" + std::to_string(id));
    }
  } catch (const CrashException&) {
    std::printf("power failure during the bulk overwrite...\n");
  }
  store.CrashAndRecover();

  std::string value;
  store.Get(7, &value);
  std::printf("after recovery user 7 -> \"%s\" (committed value survives)\n",
              value.c_str());
  bool found = store.Get(2002, &value);
  std::printf("cross-shard batch intact: %s -> %s\n",
              found ? "yes" : "no", value.c_str());

  // Drive a quick YCSB workload A mix (50/50 read/update, zipfian).
  WorkloadSpec spec = WorkloadSpec::Preset('a');
  spec.record_count = 2000;
  spec.op_count = 5000;
  spec.threads = 2;
  KvConfig bench_cfg = config;
  bench_cfg.checkpoint_period_ms = 20;
  KvStore bench_store(bench_cfg);
  WorkloadDriver driver(&bench_store, spec);
  driver.Load();
  WorkloadResult r = driver.Run();
  std::printf("ycsb-a: %lu ops in %.3f s (%.0f ops/s)\n",
              static_cast<unsigned long>(r.ops()), r.seconds,
              r.throughput());
  return 0;
}
