// A persistent key-value store: the paper's motivating use-case of
// co-designing application data structures with their persistent
// representation. Combines a recoverable B+-tree (ordered index, 32-byte
// values) with a recoverable hash table (secondary index), both updated in
// a single transaction — multi-structure atomicity is exactly what the
// REWIND transaction manager provides and ad-hoc persistence cannot.
//
// Build: cmake --build build && ./build/examples/kv_store
#include <cstdio>
#include <cstring>

#include "src/core/runtime.h"
#include "src/structures/btree.h"
#include "src/structures/phash.h"

namespace {

// A tiny "user profile" record packed into the tree's 32-byte payload.
struct Profile {
  std::uint64_t user_id;
  std::uint64_t follower_count;
  std::uint64_t post_count;
  std::uint64_t flags;
};
static_assert(sizeof(Profile) == rwd::BTree::kPayloadBytes);

constexpr std::uint64_t kHandleSalt = 0x9E3779B97F4A7C15ull;

}  // namespace

int main() {
  using namespace rwd;
  RewindConfig config;
  config.nvm.mode = NvmMode::kCrashSim;
  config.nvm.heap_bytes = 128 << 20;
  config.nvm.write_latency_ns = 0;
  config.nvm.fence_latency_ns = 0;
  config.log_impl = LogImpl::kBatch;
  config.policy = Policy::kNoForce;
  Runtime runtime(config);
  RewindOps ops(&runtime.tm());

  // Primary store: user_id -> profile. Secondary index: handle -> user_id.
  ops.BeginOp();
  BTree profiles(&ops);
  PHash handle_index(&ops, 64);
  ops.CommitOp();

  // Insert users: both structures change in ONE transaction, so a crash can
  // never leave the index pointing at a missing profile.
  auto create_user = [&](std::uint64_t id, std::uint64_t handle_hash) {
    ops.BeginOp();
    Profile p{id, 0, 0, 1};
    profiles.Insert(&ops, id, &p);
    ops.CommitOp();
    handle_index.Put(&ops, handle_hash, id);  // its own transaction
  };
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    create_user(id, kHandleSalt * id);
  }
  std::printf("loaded %lu profiles, %lu handles\n",
              profiles.size(&ops), handle_index.size(&ops));

  // In-place transactional updates (follower bump across two users).
  ops.BeginOp();
  profiles.UpdatePayloadWord(&ops, 7, 1, 42);    // user 7 gains followers
  profiles.UpdatePayloadWord(&ops, 9, 2, 1000);  // user 9 posts a lot
  ops.CommitOp();

  // A transaction that changes many profiles, then aborts: nothing sticks.
  ops.BeginOp();
  for (std::uint64_t id = 1; id <= 50; ++id) {
    profiles.UpdatePayloadWord(&ops, id, 3, 0xDEAD);
  }
  ops.AbortOp();

  Profile out{};
  profiles.Lookup(&ops, 7, &out);
  std::printf("user 7: followers=%lu (expected 42)\n", out.follower_count);
  profiles.Lookup(&ops, 1, &out);
  std::printf("user 1: flags=%lu (expected 1; the abort rolled back)\n",
              out.flags);

  // Crash mid-bulk-update, recover, verify.
  runtime.nvm().crash_injector().Arm(500);
  try {
    ops.BeginOp();
    for (std::uint64_t id = 1; id <= 1000; ++id) {
      profiles.UpdatePayloadWord(&ops, id, 1, 777);
    }
    ops.CommitOp();
  } catch (const CrashException&) {
    std::printf("power failure during the bulk update...\n");
  }
  runtime.CrashAndRecover();
  profiles.Lookup(&ops, 7, &out);
  std::printf("after recovery user 7: followers=%lu (42 = rolled back, "
              "777 = committed before crash)\n",
              out.follower_count);
  std::uint64_t id_out = 0;
  bool found = handle_index.Get(&ops, kHandleSalt * 7, &id_out);
  std::printf("handle lookup intact: %s -> user %lu\n",
              found ? "yes" : "no", id_out);
  return 0;
}
