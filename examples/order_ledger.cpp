// An order-processing ledger: the write-intensive, multi-table scenario the
// paper evaluates with TPC-C's new_order. Shows composing a multi-step
// business transaction over several persistent B+-trees, user-initiated
// rollback, throughput accounting, and the distributed-log co-design knob.
//
// Build: cmake --build build && ./build/examples/order_ledger
#include <cstdio>
#include <thread>
#include <vector>

#include "src/core/runtime.h"
#include "src/tpcc/tpcc.h"

int main() {
  using namespace rwd;
  RewindConfig config;
  config.nvm.mode = NvmMode::kFast;  // throughput demo: latency emulation on
  config.nvm.heap_bytes = std::size_t{1024} << 20;
  config.log_impl = LogImpl::kBatch;
  config.policy = Policy::kNoForce;

  std::printf("running %u new_order transactions on %u terminals...\n",
              500 * TpccScale::kTerminals, TpccScale::kTerminals);

  // Shared-log configuration.
  {
    Runtime runtime(config);
    double tpm = RunTpcc(&runtime, TpccLayout::kRewindOptimized,
                         /*txns_per_terminal=*/500);
    std::printf("  co-designed layout, shared log:      %8.0f txns/min\n",
                tpm);
  }
  // Distributed-log configuration: one log per terminal. In REWIND the use
  // of distributed logging is up to the user (paper Section 5.3) — a
  // per-transaction-manager log is one constructor argument away.
  {
    Runtime runtime(config, /*partitions=*/TpccScale::kTerminals);
    double tpm = RunTpcc(&runtime, TpccLayout::kRewindDistLog,
                         /*txns_per_terminal=*/500);
    std::printf("  co-designed layout, distributed log: %8.0f txns/min\n",
                tpm);
  }
  // Naive layout for contrast.
  {
    Runtime runtime(config);
    double tpm = RunTpcc(&runtime, TpccLayout::kRewindNaive,
                         /*txns_per_terminal=*/500);
    std::printf("  naive layout, shared log:            %8.0f txns/min\n",
                tpm);
  }

  // The consistency story: run a workload, crash, recover, re-verify.
  {
    RewindConfig crash_cfg = config;
    crash_cfg.nvm.mode = NvmMode::kCrashSim;
    crash_cfg.nvm.heap_bytes = std::size_t{256} << 20;
    crash_cfg.nvm.write_latency_ns = 0;
    crash_cfg.nvm.fence_latency_ns = 0;
    Runtime runtime(crash_cfg);
    TpccDb db(&runtime, TpccLayout::kRewindOptimized);
    db.Load();
    std::uint64_t rng = 2024;
    runtime.nvm().crash_injector().Arm(30000);
    bool crashed = false;
    try {
      for (int i = 0; i < 2000; ++i) db.NewOrder(0, &rng);
    } catch (const CrashException&) {
      crashed = true;
    }
    if (crashed) {
      std::printf("crashed mid-order; recovering...\n");
      runtime.CrashAndRecover();
    }
    std::printf("ledger consistent after %s: %s\n",
                crashed ? "crash+recovery" : "clean run",
                db.CheckConsistency() ? "yes" : "NO");
  }
  return 0;
}
