// RewindServe standalone server: a sharded, crash-recoverable KvStore
// behind the epoll serving layer, with cross-connection group commit.
// Runs until SIGINT/SIGTERM, then shuts down gracefully (drains and acks
// queued writes) and prints the serving counters.
//
//   ./build/examples/kv_server --port=7170 --shards=4 --workers=2 &
//   ./build/bench/server_loadgen --port=7170 --workload=a
//
// Flags: --port=N (0 = ephemeral)  --shards=N  --workers=N
//        --shard-layout=hash|range (range: each shard owns a contiguous
//        key slice — ordered scans stream shard by shard without the
//        all-shard merge; recorded in the heap, enforced on re-attach)
//        --range-max-key=N (range layout: creation-time key-space ceiling
//        for the even split; keys above it land in the last shard)
//        --batch-window-us=N|auto (auto: the batcher's adaptive
//        controller sizes the window per batch — zero while idle, up to
//        --batch-window-cap-us under sustained load)
//        --checkpoint-ms=N (0 = off)  --heap-mb=N
//        --heap-file=PATH (durable store: creates the file on first run,
//        re-attaches and recovers on every later run — a SIGTERM'd or even
//        SIGKILL'd server restarts with its data)
//        --slow-op-us=N (rate-limited stderr report for ops over N µs;
//        0 = off)  --trace-out=PATH (record phase events to per-thread
//        rings; dumped as Chrome trace_event JSON on shutdown and on
//        SIGUSR1 — load it in chrome://tracing or Perfetto)
//
// Replication (RewindRepl):
//        --follower-of=HOST:PORT  start as a read-only follower of that
//        leader: subscribe, catch up (snapshot if needed), apply the
//        stream, refuse writes with NOT_LEADER until a client sends
//        PROMOTE (kv_client promote). With --heap-file the applied
//        position survives restarts.
//        --sync-repl=1  leader-side semi-synchronous mode: client write
//        acks wait until every connected follower applied the batch.
//        --repl-ring=N  leader-side replication ring capacity (records).
//
// Failover (RewindGuard):
//        --lease-ms=N  enable the guard: the leader heartbeats its
//        followers and self-fences after N ms without follower contact;
//        a follower self-promotes (NO explicit PROMOTE needed) when the
//        heartbeats stop. The fencing epoch persists in the heap file,
//        so SIGKILL + restart cannot resurrect a stale leader.
//        --heartbeat-ms=N  heartbeat cadence (default lease/4).
//        --peer=HOST:PORT  the other node: the redirect hint in
//        NOT_LEADER replies and the rejoin target after a demotion
//        (defaults to --follower-of on a follower).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>
#include <unistd.h>

#include <memory>
#include <mutex>

#include "bench/bench_util.h"
#include "src/kv/kv_store.h"
#include "src/obs/trace.h"
#include "src/repl/applier.h"
#include "src/repl/follower_agent.h"
#include "src/repl/guard.h"
#include "src/repl/replication_log.h"
#include "src/server/server.h"

namespace {

// Self-pipe: the handler writes one byte, main blocks on the read end.
// Byte values: 1 = shut down (INT/TERM), 2 = dump the trace (USR1).
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleSignal(int) {
  char byte = 1;
  [[maybe_unused]] ssize_t r = ::write(g_signal_pipe[1], &byte, 1);
}

extern "C" void HandleDumpSignal(int) {
  char byte = 2;
  [[maybe_unused]] ssize_t r = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rwd;

  KvConfig config;
  config.rewind =
      BenchConfig(LogImpl::kBatch, Layers::kOne, Policy::kNoForce,
                  FlagOr(argc, argv, "heap-mb", 512));
  config.shards =
      std::max<std::uint64_t>(FlagOr(argc, argv, "shards", 4), 1);
  config.checkpoint_period_ms =
      static_cast<std::uint32_t>(FlagOr(argc, argv, "checkpoint-ms", 50));
  std::string heap_file = StringFlag(argc, argv, "heap-file");
  config.rewind.nvm.heap_file = heap_file;
  std::string layout_flag =
      StringFlag(argc, argv, "shard-layout", "hash");
  if (layout_flag == "range") {
    config.shard_layout = ShardLayout::kRange;
    config.range_max_key = std::max<std::uint64_t>(
        FlagOr(argc, argv, "range-max-key", 1u << 20), 1);
  } else if (layout_flag != "hash") {
    std::fprintf(stderr,
                 "kv_server: --shard-layout wants 'hash' or 'range'\n");
    return 1;
  }

  serve::ServerConfig server_config;
  server_config.port =
      static_cast<std::uint16_t>(FlagOr(argc, argv, "port", 7170));
  server_config.workers =
      static_cast<std::uint32_t>(FlagOr(argc, argv, "workers", 2));
  std::string window_flag =
      StringFlag(argc, argv, "batch-window-us", "150");
  if (window_flag == "auto") {
    server_config.adaptive_batch_window = true;
    server_config.batch_window_cap_us = static_cast<std::uint32_t>(
        FlagOr(argc, argv, "batch-window-cap-us", 500));
  } else {
    server_config.batch_window_us = static_cast<std::uint32_t>(
        std::strtoul(window_flag.c_str(), nullptr, 10));
  }
  server_config.slow_op_threshold_us =
      FlagOr(argc, argv, "slow-op-us", 0);
  server_config.sync_repl = FlagOr(argc, argv, "sync-repl", 0) != 0;
  std::string follower_of = StringFlag(argc, argv, "follower-of");
  std::string trace_out = StringFlag(argc, argv, "trace-out");
  if (!trace_out.empty()) obs::TraceEnable();

  // Handlers go in before the "listening" line: a supervisor may TERM us
  // the moment it reads it, and that must already take the graceful path.
  if (::pipe(g_signal_pipe) != 0) return 1;
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  if (!trace_out.empty()) std::signal(SIGUSR1, HandleDumpSignal);

  // With --heap-file: first run creates the durable heap, later runs
  // re-attach to it and recover (a real restart, not CrashAndRecover()).
  std::unique_ptr<KvStore> store;
  struct stat st;
  bool reattach = !heap_file.empty() &&
                  ::stat(heap_file.c_str(), &st) == 0 && st.st_size > 0;
  try {
    if (reattach) {
      store = KvStore::Open(heap_file, config);
      std::printf("kv_server: re-attached heap file %s (%lu keys, "
                  "recovered=%d)\n",
                  heap_file.c_str(),
                  static_cast<unsigned long>(store->Size()),
                  store->runtime().recovered_at_boot() ? 1 : 0);
    } else {
      store = std::make_unique<KvStore>(config);
    }
  } catch (const HeapAttachError& e) {
    std::fprintf(stderr, "kv_server: %s\n", e.what());
    return 1;
  }
  // Every server carries a ReplicationLog so followers can subscribe at
  // any time; the ring is tiny relative to the store. A follower also
  // publishes what it applies — after promotion its own followers can
  // chain off it without a restart.
  repl::ReplicationLog repl_log(
      static_cast<std::size_t>(FlagOr(argc, argv, "repl-ring", 4096)));
  store->SetReplicationLog(&repl_log);

  // Failover: with --lease-ms the guard owns the node's fencing epoch
  // and lease; its monitor elects / fences autonomously.
  std::uint32_t lease_ms =
      static_cast<std::uint32_t>(FlagOr(argc, argv, "lease-ms", 0));
  std::string peer = StringFlag(argc, argv, "peer");
  if (peer.empty()) peer = follower_of;
  std::unique_ptr<repl::RewindGuard> guard;
  if (lease_ms != 0) {
    repl::GuardConfig gcfg;
    gcfg.lease_ms = lease_ms;
    gcfg.heartbeat_ms =
        static_cast<std::uint32_t>(FlagOr(argc, argv, "heartbeat-ms", 0));
    gcfg.start_leader = follower_of.empty();
    gcfg.peer_addr = peer;
    gcfg.jitter_seed = static_cast<std::uint64_t>(server_config.port) ^
                       (static_cast<std::uint64_t>(::getpid()) << 16);
    guard = std::make_unique<repl::RewindGuard>(store.get(), gcfg);
    server_config.guard = guard.get();
  }

  // Follower role: replay the leader's stream through our own ApplyBatch
  // and refuse client writes until promoted. With a guard, even an
  // initial leader needs the applier — after a fence it rejoins the new
  // leader as a follower (forced snapshot: its never-acked divergent
  // writes are discarded by the keep-set reconciliation).
  std::unique_ptr<repl::ReplApplier> applier;
  std::unique_ptr<repl::FollowerAgent> agent;
  std::mutex agent_mu;  // guard callbacks run on the monitor thread
  auto start_agent = [&](const std::string& addr, bool force_snapshot) {
    std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos || applier == nullptr) return;
    std::lock_guard<std::mutex> lock(agent_mu);
    if (agent) agent->Stop();
    agent = std::make_unique<repl::FollowerAgent>(
        applier.get(), addr.substr(0, colon),
        static_cast<std::uint16_t>(std::stoul(addr.substr(colon + 1))),
        guard.get(), force_snapshot);
    agent->Start();
  };
  auto stop_agent = [&] {
    std::lock_guard<std::mutex> lock(agent_mu);
    if (agent) {
      agent->Stop();
      agent.reset();
    }
  };
  if (!follower_of.empty() || guard) {
    if (!follower_of.empty() && follower_of.rfind(':') == std::string::npos) {
      std::fprintf(stderr, "kv_server: --follower-of wants HOST:PORT\n");
      return 1;
    }
    applier = std::make_unique<repl::ReplApplier>(store.get());
    server_config.applier = applier.get();
    server_config.on_promote = stop_agent;
  }
  server_config.read_only = !follower_of.empty();

  serve::KvServer server(store.get(), server_config);
  if (!server.Start()) {
    std::fprintf(stderr, "kv_server: cannot bind port %u\n",
                 server_config.port);
    return 1;
  }
  if (guard) {
    // Election runs the same path as an explicit PROMOTE (epoch bump
    // before the read_only flip); a fence flips read-only and rejoins
    // the new leader's stream from a forced snapshot.
    guard->on_election = [&server] { server.Promote(); };
    guard->on_fence = [&server, &start_agent, peer] {
      server.Demote();
      start_agent(peer, /*force_snapshot=*/true);
    };
    guard->Start();
  }
  if (!follower_of.empty()) start_agent(follower_of, false);
  std::string window_label =
      server_config.adaptive_batch_window
          ? "auto(cap=" + std::to_string(server_config.batch_window_cap_us) +
                "us)"
          : std::to_string(server_config.batch_window_us) + "us";
  std::printf("kv_server listening on port %u — shards=%zu layout=%s "
              "workers=%u batch-window=%s rewind=%s heap=%s role=%s\n",
              server.port(), store->shards(),
              store->partitioner().layout() == ShardLayout::kRange
                  ? "range"
                  : "hash",
              server_config.workers, window_label.c_str(),
              config.rewind.Label().c_str(),
              heap_file.empty() ? "dram" : heap_file.c_str(),
              follower_of.empty()
                  ? (server_config.sync_repl ? "leader(sync)" : "leader")
                  : "follower");
  if (!follower_of.empty()) {
    std::printf("kv_server: following %s (applied_gtid=%lu)\n",
                follower_of.c_str(),
                static_cast<unsigned long>(applier->applied_gtid()));
  }
  if (guard) {
    std::printf("kv_server: guard lease=%ums heartbeat=%ums epoch=%lu "
                "peer=%s\n",
                guard->lease_ms(), guard->heartbeat_ms(),
                static_cast<unsigned long>(guard->epoch()),
                peer.empty() ? "(none)" : peer.c_str());
  }
  std::fflush(stdout);

  for (;;) {
    char byte;
    ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n == 1 && byte == 2) {
      // SIGUSR1: snapshot the trace rings and keep serving.
      if (obs::TraceDumpJson(trace_out)) {
        std::printf("kv_server: dumped %zu trace events to %s\n",
                    obs::TraceEventCount(), trace_out.c_str());
        std::fflush(stdout);
      }
      continue;
    }
    break;  // shutdown byte, EOF or unrecoverable pipe error
  }

  std::printf("kv_server: shutting down...\n");
  // Guard first (no more role flips or rejoin agents), then the agent,
  // then the server (whose batcher may hold a guarded semi-sync wait —
  // Stop() halts it).
  if (guard) guard->Stop();
  stop_agent();
  server.Stop();
  if (guard) {
    std::printf("kv_server: guard epoch=%lu role=%s elections=%lu "
                "demotions=%lu lease_renewals=%lu fenced_writes=%lu\n",
                static_cast<unsigned long>(guard->epoch()),
                guard->is_leader() ? "leader" : "follower",
                static_cast<unsigned long>(guard->elections()),
                static_cast<unsigned long>(guard->demotions()),
                static_cast<unsigned long>(guard->lease_renewals()),
                static_cast<unsigned long>(guard->fenced_writes()));
  }
  std::string applied_note;
  if (applier) {
    applied_note =
        " applied_gtid=" + std::to_string(applier->applied_gtid());
  }
  std::printf("kv_server: repl published=%lu last_gtid=%lu lag=%lu%s\n",
              static_cast<unsigned long>(repl_log.records_published()),
              static_cast<unsigned long>(repl_log.last_gtid()),
              static_cast<unsigned long>(repl_log.lag_batches()),
              applied_note.c_str());
  if (!trace_out.empty() && obs::TraceDumpJson(trace_out)) {
    std::printf("kv_server: dumped %zu trace events to %s\n",
                obs::TraceEventCount(), trace_out.c_str());
  }
  serve::StatsReply stats = server.StatsSnapshot();
  std::printf("kv_server: served keys=%lu acked_writes=%lu batches=%lu "
              "(%.1f writes/batch) gets=%lu scans=%lu conns=%lu\n",
              static_cast<unsigned long>(stats.keys),
              static_cast<unsigned long>(stats.acked_writes),
              static_cast<unsigned long>(stats.batches),
              stats.batches ? static_cast<double>(stats.batched_writes) /
                                  static_cast<double>(stats.batches)
                            : 0.0,
              static_cast<unsigned long>(stats.gets),
              static_cast<unsigned long>(stats.scans),
              static_cast<unsigned long>(stats.connections));
  std::printf("kv_server: commit pipeline batcher_depth=%lu "
              "prepared_txns=%lu 2pc_commits=%lu fast_commits=%lu "
              "parallel_applies=%lu presumed_commits=%lu\n",
              static_cast<unsigned long>(stats.batcher_depth),
              static_cast<unsigned long>(stats.prepared_txns),
              static_cast<unsigned long>(
                  store->store_txn().two_phase_commits()),
              static_cast<unsigned long>(store->store_txn().fast_commits()),
              static_cast<unsigned long>(stats.parallel_applies),
              static_cast<unsigned long>(stats.presumed_commits));
  std::printf("kv_server: read path optimistic_hits=%lu "
              "optimistic_retries=%lu read_latch_acquires=%lu; 2pc fan-out "
              "parallel_prepares=%lu max_width=%lu\n",
              static_cast<unsigned long>(stats.optimistic_hits),
              static_cast<unsigned long>(stats.optimistic_retries),
              static_cast<unsigned long>(stats.read_latch_acquires),
              static_cast<unsigned long>(stats.parallel_prepares),
              static_cast<unsigned long>(stats.max_prepare_fanout));
  std::printf("kv_server: heap mode=%s used_bytes=%lu high_watermark=%lu\n",
              stats.heap_mode != 0 ? "file" : "dram",
              static_cast<unsigned long>(stats.heap_used_bytes),
              static_cast<unsigned long>(stats.heap_high_watermark));
  for (std::size_t s = 0; s < stats.shard_log_bytes.size(); ++s) {
    std::printf("kv_server: shard %zu log_bytes=%lu read_latches=%lu\n", s,
                static_cast<unsigned long>(stats.shard_log_bytes[s]),
                s < stats.shard_read_latches.size()
                    ? static_cast<unsigned long>(stats.shard_read_latches[s])
                    : 0ul);
  }
  return 0;
}
