// Minimal command-line client for RewindServe: one operation per
// invocation, built on the blocking client library. Used by the CI restart
// smoke (write, SIGKILL the server, restart on the same heap file, read
// back) and handy for poking a live server by hand.
//
//   ./build/examples/kv_client --port=7170 put 42 hello  # prints the gtid
//   ./build/examples/kv_client --port=7170 get 42        # prints "hello"
//   ./build/examples/kv_client --port=7170 del 42
//   ./build/examples/kv_client --port=7170 scan 1 5000  # streamed scan:
//                                                    # one "KEY VALUE" line
//                                                    # per item, in order
//   ./build/examples/kv_client --port=7170 stats
//   ./build/examples/kv_client --port=7170 metrics   # STATS v2, one
//                                                    # "name value" per line
//   ./build/examples/kv_client --port=7171 getryw 42 GTID  # follower read
//                                                    # honoring the token
//   ./build/examples/kv_client --port=7171 promote   # follower -> leader
//   ./build/examples/kv_client --port=7170 replstatus  # follower health
//                                                    # as seen by the leader
//
// --replica-of=HOST:PORT routes `get` to that replica instead of the
// primary endpoint (reads scale out; writes keep going to --host/--port).
//
// Failover (RewindGuard): put/get/del ride a leader-following client —
// a NOT_LEADER reply follows the server's redirect hint, a dead endpoint
// rotates, each attempt bounded by --timeout-ms (connect AND read, so a
// half-open/black-holed server can never hang the command).
//   --timeout-ms=N   per-attempt connect/read deadline (default 10000)
//   --retries=N      extra attempts after the first (default 2)
//   --also=HOST:PORT a second candidate endpoint to rotate toward
//
// Exit status: 0 on success, 2 on NOT_FOUND, 1 on usage/connection errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/server/client.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: kv_client [--host=H] [--port=N] "
               "[--replica-of=H:P] put KEY VALUE | get KEY | "
               "getryw KEY GTID | del KEY | scan FROM COUNT | promote | "
               "stats | metrics | replstatus\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rwd;

  std::string host = StringFlag(argc, argv, "host", "127.0.0.1");
  auto port = static_cast<std::uint16_t>(FlagOr(argc, argv, "port", 7170));

  // First non-flag argument is the command.
  int cmd_at = 1;
  while (cmd_at < argc && std::strncmp(argv[cmd_at], "--", 2) == 0) ++cmd_at;
  if (cmd_at >= argc) return Usage();
  std::string cmd = argv[cmd_at];
  int args_left = argc - cmd_at - 1;

  // Read routing: with --replica-of, plain `get` goes to the replica; all
  // other commands keep talking to the primary endpoint.
  std::string replica = StringFlag(argc, argv, "replica-of");
  if (!replica.empty() && cmd == "get") {
    std::size_t colon = replica.rfind(':');
    if (colon == std::string::npos) return Usage();
    host = replica.substr(0, colon);
    port = static_cast<std::uint16_t>(
        std::strtoul(replica.c_str() + colon + 1, nullptr, 10));
  }

  int timeout_ms =
      static_cast<int>(FlagOr(argc, argv, "timeout-ms", 10000));
  std::uint32_t retries =
      static_cast<std::uint32_t>(FlagOr(argc, argv, "retries", 2));
  std::string also = StringFlag(argc, argv, "also");

  // put/get/del ride the leader-following FailoverClient: redirect
  // hints, endpoint rotation, bounded timeouts per attempt.
  if (cmd == "put" || cmd == "get" || cmd == "del") {
    serve::FailoverClient::Config fc;
    fc.endpoints.push_back(host + ":" + std::to_string(port));
    if (!also.empty()) fc.endpoints.push_back(also);
    fc.timeout_ms = timeout_ms;
    fc.max_attempts = retries + 1;
    fc.jitter_seed = static_cast<std::uint64_t>(port) + 1;
    serve::FailoverClient fclient(fc);
    if (cmd == "put" && args_left >= 2) {
      std::uint64_t key = std::strtoull(argv[cmd_at + 1], nullptr, 10);
      std::uint64_t gtid = 0;
      if (!fclient.Put(key, argv[cmd_at + 2], &gtid)) {
        std::fprintf(stderr, "kv_client: put failed (%s)\n",
                     fclient.endpoint().c_str());
        return 1;
      }
      // The replication gtid: feed it to `getryw` against a follower for
      // a read guaranteed to observe this write.
      std::printf("%lu\n", static_cast<unsigned long>(gtid));
      return 0;
    }
    if (cmd == "get" && args_left >= 1) {
      std::uint64_t key = std::strtoull(argv[cmd_at + 1], nullptr, 10);
      std::string value;
      if (!fclient.Get(key, &value)) return 2;
      std::printf("%s\n", value.c_str());
      return 0;
    }
    if (cmd == "del" && args_left >= 1) {
      std::uint64_t key = std::strtoull(argv[cmd_at + 1], nullptr, 10);
      return fclient.Delete(key) ? 0 : 2;
    }
    return Usage();
  }

  serve::KvClient client;
  if (!client.Connect(host, port, timeout_ms, timeout_ms)) {
    std::fprintf(stderr, "kv_client: cannot connect to %s:%u\n",
                 host.c_str(), port);
    return 1;
  }

  if (cmd == "getryw" && args_left >= 2) {
    std::uint64_t key = std::strtoull(argv[cmd_at + 1], nullptr, 10);
    std::uint64_t gtid = std::strtoull(argv[cmd_at + 2], nullptr, 10);
    std::string value;
    if (!client.GetRyw(key, gtid, &value)) return 2;
    std::printf("%s\n", value.c_str());
    return 0;
  }
  if (cmd == "scan" && args_left >= 2) {
    std::uint64_t from = std::strtoull(argv[cmd_at + 1], nullptr, 10);
    std::uint64_t count = std::strtoull(argv[cmd_at + 2], nullptr, 10);
    // Streamed (SCAN_STREAM): chunks print as they arrive, and a result
    // set larger than the buffered-reply byte cap arrives untruncated.
    if (!client.ScanStreamBegin(
            from, static_cast<std::uint32_t>(
                      std::min<std::uint64_t>(count, 0xffffffffu)))) {
      std::fprintf(stderr, "kv_client: scan failed\n");
      return 1;
    }
    bool done = false;
    while (!done) {
      std::vector<std::pair<std::uint64_t, std::string>> items;
      if (!client.ScanStreamNext(&items, &done)) {
        std::fprintf(stderr, "kv_client: scan stream broke mid-flight\n");
        return 1;
      }
      for (const auto& [key, value] : items) {
        std::printf("%lu %s\n", static_cast<unsigned long>(key),
                    value.c_str());
      }
    }
    return 0;
  }
  if (cmd == "promote") {
    if (!client.Promote()) {
      std::fprintf(stderr, "kv_client: promote failed\n");
      return 1;
    }
    return 0;
  }
  if (cmd == "stats") {
    serve::StatsReply s;
    if (!client.Stats(&s)) {
      std::fprintf(stderr, "kv_client: stats failed\n");
      return 1;
    }
    std::printf("keys=%lu acked_writes=%lu batches=%lu gets=%lu scans=%lu "
                "connections=%lu shards=%lu batcher_depth=%lu "
                "prepared_txns=%lu heap_mode=%s heap_used_bytes=%lu "
                "heap_high_watermark=%lu optimistic_hits=%lu "
                "optimistic_retries=%lu read_latch_acquires=%lu "
                "parallel_prepares=%lu max_prepare_fanout=%lu\n",
                static_cast<unsigned long>(s.keys),
                static_cast<unsigned long>(s.acked_writes),
                static_cast<unsigned long>(s.batches),
                static_cast<unsigned long>(s.gets),
                static_cast<unsigned long>(s.scans),
                static_cast<unsigned long>(s.connections),
                static_cast<unsigned long>(s.shards),
                static_cast<unsigned long>(s.batcher_depth),
                static_cast<unsigned long>(s.prepared_txns),
                s.heap_mode != 0 ? "file" : "dram",
                static_cast<unsigned long>(s.heap_used_bytes),
                static_cast<unsigned long>(s.heap_high_watermark),
                static_cast<unsigned long>(s.optimistic_hits),
                static_cast<unsigned long>(s.optimistic_retries),
                static_cast<unsigned long>(s.read_latch_acquires),
                static_cast<unsigned long>(s.parallel_prepares),
                static_cast<unsigned long>(s.max_prepare_fanout));
    return 0;
  }
  if (cmd == "metrics") {
    // STATS v2: one "name value" line per metric, awk/grep-friendly (the
    // CI metrics smoke asserts on these lines).
    std::vector<serve::MetricSample> samples;
    if (!client.Stats2(&samples)) {
      std::fprintf(stderr, "kv_client: metrics failed\n");
      return 1;
    }
    for (const serve::MetricSample& m : samples) {
      std::printf("%s %.6f\n", m.name.c_str(), m.value);
    }
    return 0;
  }
  if (cmd == "replstatus") {
    serve::ReplStatusReply r;
    if (!client.ReplStatus(&r)) {
      std::fprintf(stderr, "kv_client: replstatus failed\n");
      return 1;
    }
    if (r.has_role) {
      std::printf("last_gtid=%lu subscribers=%lu epoch=%lu role=%s\n",
                  static_cast<unsigned long>(r.last_gtid),
                  static_cast<unsigned long>(r.subs.size()),
                  static_cast<unsigned long>(r.epoch),
                  r.leader ? "leader" : "follower");
    } else {
      std::printf("last_gtid=%lu subscribers=%lu\n",
                  static_cast<unsigned long>(r.last_gtid),
                  static_cast<unsigned long>(r.subs.size()));
    }
    for (const serve::ReplSubStatus& s : r.subs) {
      std::printf("sub=%s acked_gtid=%lu lag_batches=%lu staleness_ms=%lu\n",
                  s.name.c_str(), static_cast<unsigned long>(s.acked_gtid),
                  static_cast<unsigned long>(s.lag_batches),
                  static_cast<unsigned long>(s.staleness_ms));
    }
    return 0;
  }
  return Usage();
}
