// Quickstart: transactional updates to persistent memory with REWIND.
//
// Mirrors the paper's Listings 1 and 2: a recoverable doubly-linked list
// whose critical updates are wrapped in "persistent atomic" transactions,
// plus a demonstration that a crash in the middle of an operation is
// recovered cleanly.
//
// Build: cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "src/core/runtime.h"
#include "src/structures/pdlist.h"

int main() {
  using namespace rwd;

  // 1. Configure the runtime: Batch log (one fence per 8 records),
  //    one-layer logging, no-force policy — the paper's best-performing
  //    configuration. Crash simulation is enabled so we can demo recovery.
  RewindConfig config;
  config.nvm.mode = NvmMode::kCrashSim;
  config.nvm.heap_bytes = 64 << 20;
  config.nvm.write_latency_ns = 0;  // no latency emulation in the demo
  config.nvm.fence_latency_ns = 0;
  config.log_impl = LogImpl::kBatch;
  config.policy = Policy::kNoForce;
  Runtime runtime(config);

  // 2. A persistent data structure in NVM. Every mutation is one
  //    transaction: log calls precede each critical CPU write, exactly as
  //    the paper's expanded Listing 2.
  RewindOps ops(&runtime.tm());
  PDList list(&ops);
  for (std::uint64_t v = 1; v <= 5; ++v) list.PushBack(&ops, v * 10);
  std::printf("list after five appends: ");
  list.ForEach(&ops, [](std::uint64_t v) { std::printf("%lu ", v); });
  std::printf("\n");

  // 3. The paper's remove() — unlink a node, de-allocation deferred past
  //    commit via a DELETE record.
  list.Remove(&ops, list.Find(&ops, 30));
  std::printf("after removing 30:       ");
  list.ForEach(&ops, [](std::uint64_t v) { std::printf("%lu ", v); });
  std::printf("\n");

  // 4. Crash in the middle of a removal: arm the injector so the "machine"
  //    loses power partway through the transaction.
  runtime.nvm().crash_injector().Arm(3);
  try {
    list.Remove(&ops, list.Find(&ops, 50));
    std::printf("no crash this time\n");
  } catch (const CrashException&) {
    std::printf("simulated power failure mid-transaction!\n");
  }

  // 5. Recovery: analysis, redo, undo — the half-done removal is rolled
  //    back and the list is consistent again.
  runtime.CrashAndRecover();
  std::printf("after crash + recovery:  ");
  list.ForEach(&ops, [](std::uint64_t v) { std::printf("%lu ", v); });
  std::printf("\n");
  std::printf("recoveries run: %lu\n", runtime.tm().stats().recoveries);
  return 0;
}
