#include "src/nvm/latency.h"

#include <atomic>
#include <chrono>

namespace rwd {

std::uint64_t LatencyEmulator::iters_per_ns_q8_ = 0;

namespace {

// Opaque counter the optimizer cannot elide.
std::atomic<std::uint64_t> g_spin_sink{0};

inline void SpinIterations(std::uint64_t iters) {
  std::uint64_t x = g_spin_sink.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < iters; ++i) {
    x += i ^ (x >> 7);
    asm volatile("" : "+r"(x));  // keep the loop body alive
  }
  g_spin_sink.store(x, std::memory_order_relaxed);
}

}  // namespace

void LatencyEmulator::Calibrate() {
  if (iters_per_ns_q8_ != 0) return;
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kProbeIters = 4'000'000;
  // Warm up, then time the probe loop.
  SpinIterations(kProbeIters / 8);
  auto start = Clock::now();
  SpinIterations(kProbeIters);
  auto end = Clock::now();
  auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
                .count();
  if (ns <= 0) ns = 1;
  std::uint64_t q8 = (kProbeIters << 8) / static_cast<std::uint64_t>(ns);
  iters_per_ns_q8_ = q8 == 0 ? 1 : q8;
}

void LatencyEmulator::Spin(std::uint32_t ns) {
  if (ns == 0) return;
  if (iters_per_ns_q8_ == 0) Calibrate();
  SpinIterations((static_cast<std::uint64_t>(ns) * iters_per_ns_q8_) >> 8);
}

}  // namespace rwd
