// Relaxed-atomic word accessors for emulated-NVM memory.
//
// The concurrent read path (RewindKV's seqlock Gets) probes arena memory
// without holding any shard latch, validating a per-shard sequence counter
// afterwards and discarding whatever it read on conflict. For that to be a
// defined execution (and ThreadSanitizer-clean), every racing access to
// arena words must be atomic: readers use relaxed loads, and every store
// the device emulation performs — cached stores, non-temporal stores,
// recycled-block scrubbing, persistent-image writeback — uses relaxed
// stores. On x86-64 and AArch64 a relaxed aligned load/store of 8 bytes
// compiles to a plain MOV/LDR, so the "DRAM speed" read path stays exactly
// that; the only effect is to give the race the semantics the seqlock
// already assumes (a racy read returns *some* bytes, never UB).
#ifndef REWIND_NVM_ATOMIC_MEM_H_
#define REWIND_NVM_ATOMIC_MEM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace rwd {

inline std::uint64_t RelaxedLoad64(const std::uint64_t* addr) {
  return __atomic_load_n(addr, __ATOMIC_RELAXED);
}

inline void RelaxedStore64(std::uint64_t* addr, std::uint64_t value) {
  __atomic_store_n(addr, value, __ATOMIC_RELAXED);
}

/// memcpy with relaxed-atomic element accesses: whole words where both
/// pointers are 8-aligned, bytes otherwise. Used wherever the device
/// emulation bulk-copies memory that a latch-free reader may be probing.
inline void AtomicCopy(void* dst, const void* src, std::size_t bytes) {
  auto* d = static_cast<unsigned char*>(dst);
  auto* s = static_cast<const unsigned char*>(src);
  if ((reinterpret_cast<std::uintptr_t>(d) & 7) == 0 &&
      (reinterpret_cast<std::uintptr_t>(s) & 7) == 0) {
    for (; bytes >= 8; bytes -= 8, d += 8, s += 8) {
      RelaxedStore64(reinterpret_cast<std::uint64_t*>(d),
                     RelaxedLoad64(reinterpret_cast<const std::uint64_t*>(s)));
    }
  }
  for (; bytes > 0; --bytes, ++d, ++s) {
    __atomic_store_n(d, __atomic_load_n(s, __ATOMIC_RELAXED),
                     __ATOMIC_RELAXED);
  }
}

/// Relaxed store of any trivially-copyable value of power-of-two size up
/// to a word; larger objects fall back to AtomicCopy.
template <typename T>
inline void RelaxedStore(T* addr, const T& value) {
  if constexpr (sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                sizeof(T) == 8) {
    __atomic_store(addr, const_cast<T*>(&value), __ATOMIC_RELAXED);
  } else {
    AtomicCopy(addr, &value, sizeof(T));
  }
}

/// Release store of a word-or-smaller value. The device emulation uses
/// this for every *critical* (publishing) store — a latch-free reader
/// that observes the stored value through an acquire fence then also
/// observes everything the writer wrote before it (off-line buffer
/// initialization, the new hash table behind a swung table pointer, a
/// doubled capacity's table). Free on x86 (plain MOV); one STLR on ARM,
/// paid by writers only. Word-sized only BY DESIGN: a multi-word value
/// cannot be published atomically, so accepting one here would silently
/// void the ordering contract — publish a pointer to it instead.
template <typename T>
inline void ReleaseStore(T* addr, const T& value) {
  static_assert(sizeof(T) == 1 || sizeof(T) == 2 || sizeof(T) == 4 ||
                    sizeof(T) == 8,
                "ReleaseStore publishes single words; store a pointer to "
                "larger objects");
  __atomic_store(addr, const_cast<T*>(&value), __ATOMIC_RELEASE);
}

/// memset(0) with relaxed-atomic stores (recycled-block scrubbing).
inline void AtomicZero(void* dst, std::size_t bytes) {
  auto* d = static_cast<unsigned char*>(dst);
  if ((reinterpret_cast<std::uintptr_t>(d) & 7) == 0) {
    for (; bytes >= 8; bytes -= 8, d += 8) {
      RelaxedStore64(reinterpret_cast<std::uint64_t*>(d), 0);
    }
  }
  for (; bytes > 0; --bytes, ++d) {
    __atomic_store_n(d, static_cast<unsigned char>(0), __ATOMIC_RELAXED);
  }
}

}  // namespace rwd

#endif  // REWIND_NVM_ATOMIC_MEM_H_
