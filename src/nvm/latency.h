// Busy-wait latency emulation, as in the paper's methodology (Section 5):
// "We emulated NVM by adding latency through a busy loop".
#ifndef REWIND_NVM_LATENCY_H_
#define REWIND_NVM_LATENCY_H_

#include <cstdint>

namespace rwd {

/// Calibrated busy-wait used to charge emulated NVM latencies.
class LatencyEmulator {
 public:
  /// Calibrates the spin loop against the steady clock. Idempotent and cheap
  /// after the first call.
  static void Calibrate();

  /// Spins for approximately `ns` nanoseconds. No-op when `ns` is zero.
  static void Spin(std::uint32_t ns);

 private:
  // Spin-loop iterations per nanosecond, fixed-point with 8 fractional bits.
  static std::uint64_t iters_per_ns_q8_;
};

}  // namespace rwd

#endif  // REWIND_NVM_LATENCY_H_
