#include "src/nvm/nvm_manager.h"

#include <algorithm>
#include <atomic>

namespace rwd {

thread_local NvmManager::NtRun NvmManager::last_nt_ = {nullptr, 0, 0};

NvmManager::NvmManager(const NvmConfig& config, bool attach)
    : config_(config),
      heap_(config, attach ? NvmHeap::Open::kAttach : NvmHeap::Open::kCreate),
      tracking_(config.mode == NvmMode::kCrashSim),
      line_bytes_(config.cacheline_bytes) {
  if (config_.write_latency_ns != 0 || config_.fence_latency_ns != 0) {
    LatencyEmulator::Calibrate();
  }
  if (tracking_) {
    dirty_.assign((heap_.size() + line_bytes_ - 1) / line_bytes_, 0);
  }
  // Unique generation: stale per-thread coalescing state from a destroyed
  // manager whose address got recycled can never match this device, on any
  // thread (see NtRun).
  static std::atomic<std::uint64_t> next_generation{1};
  generation_ = next_generation.fetch_add(1, std::memory_order_relaxed);
}

void NvmManager::MarkDirty(const void* addr, std::size_t bytes) {
  if (!heap_.Contains(addr)) return;  // volatile (stack/DRAM) address
  std::size_t first = heap_.OffsetOf(addr) / line_bytes_;
  std::size_t last = (heap_.OffsetOf(addr) + bytes - 1) / line_bytes_;
  std::lock_guard<std::mutex> lock(dirty_mu_);
  for (std::size_t l = first; l <= last; ++l) dirty_[l] = 1;
}

void NvmManager::PersistLine(std::size_t line) {
  std::size_t off = line * line_bytes_;
  std::size_t n = std::min<std::size_t>(line_bytes_, heap_.size() - off);
  // Word-atomic copy: the view side may be racing with writers' cached
  // stores (a flush writes back whatever the line holds mid-race) and with
  // latch-free seqlock readers; the image side may be racing with an
  // unlatched PersistBytes of a word in the same line.
  AtomicCopy(heap_.image() + off, heap_.data() + off, n);
  dirty_[line] = 0;
}

void NvmManager::PersistBytes(const void* addr, std::size_t bytes) {
  if (!heap_.Contains(addr)) return;
  std::size_t off = heap_.OffsetOf(addr);
  AtomicCopy(heap_.image() + off, heap_.data() + off, bytes);
  // A non-temporal store leaves the rest of its line untouched in NVM; the
  // line may still be dirty from earlier cached stores, so the dirty bit is
  // left alone.
}

void NvmManager::ChargeWrite(const void* addr) {
  auto line = reinterpret_cast<std::uintptr_t>(addr) / line_bytes_;
  if (last_nt_.mgr == this && last_nt_.gen == generation_ &&
      last_nt_.line == line) {
    return;  // coalesced with the immediately preceding store
  }
  last_nt_ = {this, generation_, line};
  stats_.nvm_writes.fetch_add(1, std::memory_order_relaxed);
  LatencyEmulator::Spin(config_.write_latency_ns);
}

void NvmManager::PersistRangeNT(const void* addr, std::size_t bytes) {
  // Crash check before the image copy: an injected crash at this event
  // means none of the range reached NVM (see StoreNT).
  crash_injector_.OnPersistEvent();
  if (tracking_) PersistBytes(addr, bytes);
  auto p = reinterpret_cast<std::uintptr_t>(addr);
  auto end = p + bytes;
  for (auto line = p / line_bytes_; line * line_bytes_ < end; ++line) {
    ChargeWrite(reinterpret_cast<const void*>(line * line_bytes_));
  }
}

void NvmManager::Flush(const void* addr) {
  // Crash check before the writeback: a crash at this event loses the
  // line (see StoreNT).
  crash_injector_.OnPersistEvent();
  stats_.flushes.fetch_add(1, std::memory_order_relaxed);
  if (tracking_ && heap_.Contains(addr)) {
    // Persist unconditionally: a flush writes back whatever the cacheline
    // currently holds, whether or not our bookkeeping saw the stores.
    std::size_t line = heap_.OffsetOf(addr) / line_bytes_;
    std::lock_guard<std::mutex> lock(dirty_mu_);
    PersistLine(line);
  }
  ChargeWrite(addr);
}

void NvmManager::FlushRange(const void* addr, std::size_t bytes) {
  auto p = reinterpret_cast<const char*>(addr);
  auto line0 = reinterpret_cast<std::uintptr_t>(p) / line_bytes_;
  auto line1 =
      (reinterpret_cast<std::uintptr_t>(p) + (bytes ? bytes - 1 : 0)) /
      line_bytes_;
  for (auto l = line0; l <= line1; ++l) {
    Flush(reinterpret_cast<const void*>(l * line_bytes_));
  }
}

void NvmManager::Fence() {
  crash_injector_.OnPersistEvent();
  stats_.fences.fetch_add(1, std::memory_order_relaxed);
  LatencyEmulator::Spin(config_.fence_latency_ns);
  last_nt_ = {nullptr, 0, 0};  // a fence ends any coalescing run
}

std::size_t NvmManager::FlushAllDirty() {
  if (!tracking_) {
    // In fast mode a full cache flush is approximated by a fence.
    Fence();
    return 0;
  }
  // One crash check for the whole bulk writeback (the per-line fast path
  // deliberately skips the per-Flush accounting), so a dead machine's
  // checkpoint cannot keep persisting lines.
  crash_injector_.OnPersistEvent();
  std::size_t flushed = 0;
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    for (std::size_t l = 0; l < dirty_.size(); ++l) {
      if (dirty_[l]) {
        PersistLine(l);
        ++flushed;
      }
    }
  }
  Fence();
  return flushed;
}

void NvmManager::SimulateCrash(double evict_probability, std::uint64_t seed) {
  stats_.crashes.fetch_add(1, std::memory_order_relaxed);
  crash_injector_.Disarm();
  last_nt_ = {nullptr, 0, 0};
  if (!tracking_) return;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::lock_guard<std::mutex> lock(dirty_mu_);
  for (std::size_t l = 0; l < dirty_.size(); ++l) {
    if (!dirty_[l]) continue;
    if (evict_probability > 0.0 && coin(rng) < evict_probability) {
      PersistLine(l);  // the hardware happened to evict this line
    } else {
      dirty_[l] = 0;  // contents lost with the cache
    }
  }
  // The surviving image becomes the post-reboot view.
  std::memcpy(heap_.data(), heap_.image(), heap_.size());
}

bool NvmManager::IsDirty(const void* addr) const {
  if (!tracking_ || !heap_.Contains(addr)) return false;
  std::size_t line = heap_.OffsetOf(addr) / line_bytes_;
  std::lock_guard<std::mutex> lock(dirty_mu_);
  return dirty_[line] != 0;
}

}  // namespace rwd
