#include "src/nvm/stats.h"

#include <sstream>

namespace rwd {

void NvmStats::Reset() {
  nvm_writes.store(0, std::memory_order_relaxed);
  fences.store(0, std::memory_order_relaxed);
  flushes.store(0, std::memory_order_relaxed);
  cached_stores.store(0, std::memory_order_relaxed);
  crashes.store(0, std::memory_order_relaxed);
}

std::string NvmStats::ToString() const {
  std::ostringstream os;
  os << "nvm_writes=" << nvm_writes.load() << " fences=" << fences.load()
     << " flushes=" << flushes.load() << " cached_stores="
     << cached_stores.load() << " crashes=" << crashes.load();
  return os.str();
}

}  // namespace rwd
