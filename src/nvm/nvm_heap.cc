#include "src/nvm/nvm_heap.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "src/nvm/atomic_mem.h"
#include <cstring>

#ifndef MAP_FIXED_NOREPLACE
// Linux >= 4.17; define the constant for older toolchain headers. Kernels
// without support ignore the flag and fall back to hint behaviour, which the
// post-mmap address check below still catches.
#define MAP_FIXED_NOREPLACE 0x100000
#endif

namespace rwd {

namespace {

char* AlignUp64(char* p) {
  auto v = reinterpret_cast<std::uintptr_t>(p);
  return reinterpret_cast<char*>((v + 63) & ~std::uintptr_t{63});
}

[[noreturn]] void ThrowAttach(const std::string& path, const std::string& why) {
  throw HeapAttachError("NvmHeap: cannot attach '" + path + "': " + why);
}

}  // namespace

NvmHeap::NvmHeap(const NvmConfig& config, Open open)
    : size_(config.heap_bytes), file_path_(config.heap_file) {
  if (size_ < 2 * NvmCatalog::kBytes) {
    std::fprintf(stderr, "NvmHeap: heap_bytes too small (%zu)\n", size_);
    std::abort();
  }
  if (open == Open::kAttach) {
    if (file_path_.empty()) {
      throw HeapAttachError(
          "NvmHeap: attach requires a heap file (config.heap_file is empty; "
          "DRAM-backed heaps do not survive process exit)");
    }
    try {
      AttachMappings(config);
    } catch (...) {
      // The destructor will not run for a throwing constructor: release
      // the fd (and any mapping made before the failing check) here.
      ReleaseMappings();
      throw;
    }
    base_ = reinterpret_cast<std::uintptr_t>(view_);
    const NvmCatalog* cat = catalog();
    bump_ = cat->high_watermark;
    attach_floor_ = bump_;
    attached_ = true;
    // Conservative allocator rebuild: everything below the high watermark
    // is treated as allocated (crash-leak semantics); guard allocations
    // against the catalog-reachable roots.
    live_bytes_ = bump_ - NvmCatalog::kBytes;
    for (const NvmCatalog::Root& r : cat->roots) {
      if (r.offset != 0) root_offsets_.push_back(r.offset);
    }
    std::sort(root_offsets_.begin(), root_offsets_.end());
    return;
  }

  try {
    CreateMappings(config);
  } catch (...) {
    ReleaseMappings();
    throw;
  }
  base_ = reinterpret_cast<std::uintptr_t>(view_);
  bump_ = NvmCatalog::kBytes;
  NvmCatalog* cat = MutableCatalog();
  CatalogStore(&cat->magic, NvmCatalog::kMagic);
  CatalogStore(&cat->format_version, NvmCatalog::kVersion);
  CatalogStore(&cat->base_address, base_);
  CatalogStore(&cat->heap_bytes, size_);
  CatalogStore(&cat->mode, static_cast<std::uint64_t>(config.mode));
  CatalogStore(&cat->config_fingerprint, config.config_fingerprint);
  CatalogStore(&cat->high_watermark, bump_);
}

void NvmHeap::CreateMappings(const NvmConfig& config) {
  if (file_path_.empty()) {
    view_storage_ = std::make_unique<char[]>(size_ + 64);
    view_ = AlignUp64(view_storage_.get());
    std::memset(view_, 0, size_);
    if (config.mode == NvmMode::kCrashSim) {
      image_storage_ = std::make_unique<char[]>(size_ + 64);
      image_ = AlignUp64(image_storage_.get());
      std::memset(image_, 0, size_);
    }
    return;
  }
  fd_ = ::open(file_path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    ThrowAttach(file_path_, std::string("create failed: ") +
                                std::strerror(errno));
  }
  LockFile();
  // Truncate only once the exclusive lock is held, so creating over a file
  // another process has live cannot wipe it.
  if (::ftruncate(fd_, 0) != 0 ||
      ::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
    ThrowAttach(file_path_, std::string("ftruncate failed: ") +
                                std::strerror(errno));
  }
  if (config.mode == NvmMode::kCrashSim) {
    // The file holds the persistent image; the view is anonymous (cache
    // contents are volatile and die with the process, as on power loss).
    void* img = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd_, 0);
    if (img == MAP_FAILED) {
      ThrowAttach(file_path_, "mmap of persistent image failed");
    }
    image_ = static_cast<char*>(img);
    image_is_mapped_ = true;
    void* v = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (v == MAP_FAILED) ThrowAttach(file_path_, "mmap of view failed");
    view_ = static_cast<char*>(v);
    view_is_mapped_ = true;
  } else {
    // kFast: the file *is* the arena — every store is durable once the
    // page cache holds it, which survives any process death (an
    // eADR-style device where the cache is inside the persistence domain).
    void* v = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                     fd_, 0);
    if (v == MAP_FAILED) ThrowAttach(file_path_, "mmap of heap file failed");
    view_ = static_cast<char*>(v);
    view_is_mapped_ = true;
  }
}

void NvmHeap::LockFile() {
  // One live process per heap file: a second attacher (or a create over a
  // live file) MAP_FIXED_NOREPLACE would not catch — it only guards one
  // address space — so exclusive-lock the file for the heap's lifetime.
  if (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
    ThrowAttach(file_path_,
                std::string("heap file is in use by another process "
                            "(flock: ") +
                    std::strerror(errno) + ")");
  }
}

void NvmHeap::AttachMappings(const NvmConfig& config) {
  fd_ = ::open(file_path_.c_str(), O_RDWR);
  if (fd_ < 0) {
    ThrowAttach(file_path_, std::string("open failed: ") +
                                std::strerror(errno));
  }
  LockFile();
  struct stat st {};
  if (::fstat(fd_, &st) != 0 ||
      st.st_size != static_cast<off_t>(config.heap_bytes)) {
    ThrowAttach(file_path_,
                "file size " + std::to_string(st.st_size) +
                    " does not match configured heap_bytes " +
                    std::to_string(config.heap_bytes));
  }
  // Validate the catalog before mapping anything at a fixed address.
  NvmCatalog cat;
  if (::pread(fd_, &cat, sizeof(cat), 0) !=
      static_cast<ssize_t>(sizeof(cat))) {
    ThrowAttach(file_path_, "short read of catalog block");
  }
  if (cat.magic != NvmCatalog::kMagic) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "bad magic 0x%llx (not a REWIND heap)",
                  static_cast<unsigned long long>(cat.magic));
    ThrowAttach(file_path_, buf);
  }
  if (cat.format_version != NvmCatalog::kVersion) {
    ThrowAttach(file_path_,
                "format version " + std::to_string(cat.format_version) +
                    " != supported version " +
                    std::to_string(NvmCatalog::kVersion));
  }
  if (cat.heap_bytes != config.heap_bytes) {
    ThrowAttach(file_path_,
                "catalog heap_bytes " + std::to_string(cat.heap_bytes) +
                    " != configured " + std::to_string(config.heap_bytes));
  }
  if (cat.mode != static_cast<std::uint64_t>(config.mode)) {
    ThrowAttach(file_path_,
                "catalog NVM mode " + std::to_string(cat.mode) +
                    " != configured mode " +
                    std::to_string(static_cast<std::uint64_t>(config.mode)));
  }
  // Fingerprint 0 = caller opted out (raw NvmManager users / inspection
  // tools); Runtime always stamps and checks a real one.
  if (config.config_fingerprint != 0 &&
      cat.config_fingerprint != config.config_fingerprint) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "config fingerprint mismatch (file 0x%llx vs runtime "
                  "0x%llx): the store was created under a different "
                  "configuration",
                  static_cast<unsigned long long>(cat.config_fingerprint),
                  static_cast<unsigned long long>(config.config_fingerprint));
    ThrowAttach(file_path_, buf);
  }
  if (cat.high_watermark < NvmCatalog::kBytes ||
      cat.high_watermark > cat.heap_bytes) {
    ThrowAttach(file_path_, "corrupt high watermark " +
                                std::to_string(cat.high_watermark));
  }
  // Root offsets must land inside the allocated arena, or GetRoot would
  // hand out out-of-mapping pointers — exactly the garbage the catalog
  // validation exists to refuse.
  for (const NvmCatalog::Root& r : cat.roots) {
    if (r.offset == 0) continue;
    if (r.offset < NvmCatalog::kBytes || r.offset >= cat.high_watermark) {
      ThrowAttach(file_path_,
                  "corrupt catalog: root '" +
                      std::string(r.name,
                                  ::strnlen(r.name,
                                            NvmCatalog::kRootNameBytes)) +
                      "' at offset " + std::to_string(r.offset) +
                      " lies outside the allocated arena");
    }
  }
  // Re-map the view at the recorded base so raw pointers in persistent
  // state stay valid. MAP_FIXED_NOREPLACE fails (rather than clobbers)
  // when the range is already occupied in this process.
  void* want = reinterpret_cast<void*>(cat.base_address);
  if (config.mode == NvmMode::kCrashSim) {
    void* img = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                       fd_, 0);
    if (img == MAP_FAILED) {
      ThrowAttach(file_path_, "mmap of persistent image failed");
    }
    image_ = static_cast<char*>(img);
    image_is_mapped_ = true;
    void* v = ::mmap(want, size_, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED_NOREPLACE, -1,
                     0);
    if (v == MAP_FAILED || v != want) {
      if (v != MAP_FAILED) ::munmap(v, size_);
      ThrowAttach(file_path_,
                  "base address collision: cannot map the view at the "
                  "recorded address (something else occupies it in this "
                  "process); retry from a fresh process");
    }
    view_ = static_cast<char*>(v);
    view_is_mapped_ = true;
    // Post-reboot view: what survived is exactly the persistent image.
    std::memcpy(view_, image_, size_);
  } else {
    void* v = ::mmap(want, size_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_FIXED_NOREPLACE, fd_, 0);
    if (v == MAP_FAILED || v != want) {
      if (v != MAP_FAILED) ::munmap(v, size_);
      ThrowAttach(file_path_,
                  "base address collision: cannot map the heap file at the "
                  "recorded address (something else occupies it in this "
                  "process); retry from a fresh process");
    }
    view_ = static_cast<char*>(v);
    view_is_mapped_ = true;
  }
}

NvmHeap::~NvmHeap() {
  SyncFile();
  ReleaseMappings();
}

void NvmHeap::ReleaseMappings() {
  if (view_is_mapped_ && view_ != nullptr) ::munmap(view_, size_);
  view_is_mapped_ = false;
  view_ = nullptr;
  if (image_is_mapped_ && image_ != nullptr) ::munmap(image_, size_);
  image_is_mapped_ = false;
  image_ = nullptr;
  if (fd_ >= 0) ::close(fd_);  // also drops the flock
  fd_ = -1;
}

void NvmHeap::SyncFile() {
  if (fd_ < 0) return;
  // The durable buffer is the file mapping: the view in kFast mode, the
  // persistent image in kCrashSim mode.
  char* durable = image_is_mapped_ ? image_ : view_;
  if (durable != nullptr) ::msync(durable, size_, MS_SYNC);
}

void NvmHeap::CatalogStore(std::uint64_t* view_addr, std::uint64_t value) {
  *view_addr = value;
  if (image_ != nullptr) {
    std::memcpy(image_ + OffsetOf(view_addr), &value, sizeof(value));
  }
}

void NvmHeap::SetRoot(const char* name, const void* ptr) {
  std::size_t len = std::strlen(name);
  if (len == 0 || len >= NvmCatalog::kRootNameBytes) {
    std::fprintf(stderr, "NvmHeap: invalid root name '%s'\n", name);
    std::abort();
  }
  if (!Contains(ptr)) {
    std::fprintf(stderr, "NvmHeap: root '%s' outside the arena\n", name);
    std::abort();
  }
  std::size_t off = OffsetOf(ptr);
  std::lock_guard<std::mutex> lock(mu_);
  NvmCatalog* cat = MutableCatalog();
  NvmCatalog::Root* slot = nullptr;
  for (NvmCatalog::Root& r : cat->roots) {
    if (std::strncmp(r.name, name, NvmCatalog::kRootNameBytes) == 0) {
      slot = &r;
      break;
    }
    if (slot == nullptr && r.offset == 0 && r.name[0] == '\0') slot = &r;
  }
  if (slot == nullptr) {
    std::fprintf(stderr, "NvmHeap: root catalog full (max %zu roots)\n",
                 NvmCatalog::kMaxRoots);
    std::abort();
  }
  if (slot->offset != 0) {
    // Re-pointing an existing root: retire its old offset from the
    // allocation guard so it cannot veto legitimate recycling.
    auto it = std::lower_bound(root_offsets_.begin(), root_offsets_.end(),
                               slot->offset);
    if (it != root_offsets_.end() && *it == slot->offset) {
      root_offsets_.erase(it);
    }
  }
  // Name first, offset last: a torn update leaves either an unused entry
  // (offset still 0) or a complete one, never a named entry pointing at
  // garbage from a previous use of the slot.
  std::memset(slot->name, 0, NvmCatalog::kRootNameBytes);
  std::memcpy(slot->name, name, len);
  if (image_ != nullptr) {
    std::memcpy(image_ + OffsetOf(slot->name), slot->name,
                NvmCatalog::kRootNameBytes);
  }
  CatalogStore(&slot->offset, off);
  root_offsets_.insert(
      std::lower_bound(root_offsets_.begin(), root_offsets_.end(), off), off);
}

void* NvmHeap::GetRoot(const char* name) const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  for (const NvmCatalog::Root& r : catalog()->roots) {
    if (r.offset != 0 &&
        std::strncmp(r.name, name, NvmCatalog::kRootNameBytes) == 0) {
      return const_cast<char*>(view_) + r.offset;
    }
  }
  return nullptr;
}

void NvmHeap::AssertNoRootOverlap(std::size_t off, std::size_t bytes) const {
  if (!attached_ || root_offsets_.empty()) return;
  auto it =
      std::lower_bound(root_offsets_.begin(), root_offsets_.end(), off);
  if (it != root_offsets_.end() && *it < off + bytes) {
    std::fprintf(stderr,
                 "NvmHeap: allocator handed out block [%zu, %zu) overlapping "
                 "catalog root at offset %zu after attach — allocator "
                 "rebuild is corrupt\n",
                 off, off + bytes, *it);
    std::abort();
  }
}

void* NvmHeap::Alloc(std::size_t bytes) {
  // Round every block up to a whole cacheline: log records are sized and
  // aligned to one line (paper Section 3.3), and line-granular blocks keep
  // the NVM write accounting exact.
  bytes = (bytes + 63) & ~std::size_t{63};
  std::lock_guard<std::mutex> lock(mu_);
  live_bytes_ += bytes;
  auto it = free_lists_.find(bytes);
  if (it != free_lists_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    blocks_[p].live = true;
    AssertNoRootOverlap(OffsetOf(p), bytes);
    // Word-atomic scrub: a latch-free seqlock reader may still be probing
    // the recycled block through a stale index pointer (it will discard
    // what it reads when the shard's sequence counter fails to validate).
    AtomicZero(p, bytes);
    if (image_ != nullptr) {
      // Allocator contract: blocks are handed out persistently zeroed (a
      // real NVM allocator scrubs recycled blocks the same way), so callers
      // need not persist bytes they never write.
      AtomicZero(image_ + OffsetOf(p), bytes);
    }
    return p;
  }
  if (bump_ + bytes > size_) {
    std::fprintf(stderr,
                 "NvmHeap: arena exhausted (%zu bytes requested, %zu used of "
                 "%zu)\n",
                 bytes, bump_, size_);
    std::abort();
  }
  void* p = view_ + bump_;
  AssertNoRootOverlap(bump_, bytes);
  bump_ += bytes;
  // Persist the high watermark with the block: a crash right after can at
  // worst over-count (leak) the block, never hand it out twice on attach.
  CatalogStore(&MutableCatalog()->high_watermark, bump_);
  blocks_.emplace(p, BlockInfo{bytes, true});
  return p;
}

void NvmHeap::Free(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(ptr);
  if (it == blocks_.end()) {
    std::size_t off = OffsetOf(ptr);
    if (attached_ && Contains(ptr) && off >= NvmCatalog::kBytes &&
        off < attach_floor_) {
      // A block handed out by a previous process: the conservative
      // allocator rebuild does not know its size, so the free is a counted
      // leak (crash-leak semantics, paper Section 4.3).
      ++foreign_free_count_;
      return;
    }
    std::fprintf(stderr, "NvmHeap: Free of unknown block\n");
    std::abort();
  }
  if (!it->second.live) {
    ++double_free_count_;  // recovery replay; see header comment
    return;
  }
  it->second.live = false;
  live_bytes_ -= it->second.bytes;
  free_lists_[it->second.bytes].push_back(ptr);
}

bool NvmHeap::IsLive(const void* ptr) const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  auto it = blocks_.find(const_cast<void*>(ptr));
  return it != blocks_.end() && it->second.live;
}

}  // namespace rwd
