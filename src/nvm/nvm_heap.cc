#include "src/nvm/nvm_heap.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rwd {

namespace {
char* AlignUp64(char* p) {
  auto v = reinterpret_cast<std::uintptr_t>(p);
  return reinterpret_cast<char*>((v + 63) & ~std::uintptr_t{63});
}
}  // namespace

NvmHeap::NvmHeap(const NvmConfig& config) : size_(config.heap_bytes) {
  view_storage_ = std::make_unique<char[]>(size_ + 64);
  view_ = AlignUp64(view_storage_.get());
  std::memset(view_, 0, size_);
  if (config.mode == NvmMode::kCrashSim) {
    image_storage_ = std::make_unique<char[]>(size_ + 64);
    image_ = AlignUp64(image_storage_.get());
    std::memset(image_, 0, size_);
  }
  base_ = reinterpret_cast<std::uintptr_t>(view_);
}

void* NvmHeap::Alloc(std::size_t bytes) {
  // Round every block up to a whole cacheline: log records are sized and
  // aligned to one line (paper Section 3.3), and line-granular blocks keep
  // the NVM write accounting exact.
  bytes = (bytes + 63) & ~std::size_t{63};
  std::lock_guard<std::mutex> lock(mu_);
  live_bytes_ += bytes;
  auto it = free_lists_.find(bytes);
  if (it != free_lists_.end() && !it->second.empty()) {
    void* p = it->second.back();
    it->second.pop_back();
    blocks_[p].live = true;
    std::memset(p, 0, bytes);
    if (image_ != nullptr) {
      // Allocator contract: blocks are handed out persistently zeroed (a
      // real NVM allocator scrubs recycled blocks the same way), so callers
      // need not persist bytes they never write.
      std::memset(image_ + OffsetOf(p), 0, bytes);
    }
    return p;
  }
  if (bump_ + bytes > size_) {
    std::fprintf(stderr,
                 "NvmHeap: arena exhausted (%zu bytes requested, %zu used of "
                 "%zu)\n",
                 bytes, bump_, size_);
    std::abort();
  }
  void* p = view_ + bump_;
  bump_ += bytes;
  blocks_.emplace(p, BlockInfo{bytes, true});
  return p;
}

void NvmHeap::Free(void* ptr) {
  if (ptr == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(ptr);
  if (it == blocks_.end()) {
    std::fprintf(stderr, "NvmHeap: Free of unknown block\n");
    std::abort();
  }
  if (!it->second.live) {
    ++double_free_count_;  // recovery replay; see header comment
    return;
  }
  it->second.live = false;
  live_bytes_ -= it->second.bytes;
  free_lists_[it->second.bytes].push_back(ptr);
}

bool NvmHeap::IsLive(const void* ptr) const {
  std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
  auto it = blocks_.find(const_cast<void*>(ptr));
  return it != blocks_.end() && it->second.live;
}

}  // namespace rwd
