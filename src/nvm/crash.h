// Deterministic crash injection for recovery testing.
#ifndef REWIND_NVM_CRASH_H_
#define REWIND_NVM_CRASH_H_

#include <atomic>
#include <cstdint>
#include <exception>

namespace rwd {

/// Thrown by the NVM manager at an injected crash point. Test code catches
/// this at the outermost level, calls NvmManager::SimulateCrash(), and then
/// runs recovery against the surviving persistent image.
class CrashException : public std::exception {
 public:
  explicit CrashException(std::uint64_t event) : event_(event) {}
  const char* what() const noexcept override {
    return "simulated NVM crash";
  }
  /// Ordinal of the persistence event at which the crash fired.
  std::uint64_t event() const { return event_; }

 private:
  std::uint64_t event_;
};

/// Counts persistence events (non-temporal stores, flushes, fences) and
/// throws CrashException when a preset ordinal is reached. Disarmed by
/// default. Exhaustive recovery tests arm it at every ordinal in turn.
class CrashInjector {
 public:
  /// Arms the injector: the `at_event`-th subsequent persistence event
  /// (1-based) throws.
  void Arm(std::uint64_t at_event) {
    counter_.store(0, std::memory_order_relaxed);
    target_.store(at_event, std::memory_order_relaxed);
  }

  /// Disarms the injector.
  void Disarm() { target_.store(0, std::memory_order_relaxed); }

  bool armed() const { return target_.load(std::memory_order_relaxed) != 0; }

  /// Number of persistence events observed since the last Arm().
  std::uint64_t events() const {
    return counter_.load(std::memory_order_relaxed);
  }

  /// Called by the NVM manager on every persistence event.
  void OnPersistEvent() {
    std::uint64_t target = target_.load(std::memory_order_relaxed);
    if (target == 0) return;
    std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == target) {
      target_.store(0, std::memory_order_relaxed);
      throw CrashException(n);
    }
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> target_{0};
};

}  // namespace rwd

#endif  // REWIND_NVM_CRASH_H_
