// Deterministic crash injection for recovery testing.
#ifndef REWIND_NVM_CRASH_H_
#define REWIND_NVM_CRASH_H_

#include <atomic>
#include <cstdint>
#include <exception>

#include "src/obs/metrics.h"

namespace rwd {

/// Thrown by the NVM manager at an injected crash point. Test code catches
/// this at the outermost level, calls NvmManager::SimulateCrash(), and then
/// runs recovery against the surviving persistent image.
class CrashException : public std::exception {
 public:
  explicit CrashException(std::uint64_t event) : event_(event) {}
  const char* what() const noexcept override {
    return "simulated NVM crash";
  }
  /// Ordinal of the persistence event at which the crash fired.
  std::uint64_t event() const { return event_; }

 private:
  std::uint64_t event_;
};

/// Counts persistence events (non-temporal stores, flushes, fences) and
/// throws CrashException when a preset ordinal is reached. Disarmed by
/// default. Exhaustive recovery tests arm it at every ordinal in turn.
///
/// The crash is STICKY: once it has fired, every subsequent persistence
/// event — on any thread — throws too, until Disarm()/SimulateCrash().
/// A power failure stops the whole machine, not one thread: without
/// stickiness, a concurrent test's other threads would keep appending to
/// shared logs *through the crash point*, building on the interrupted
/// thread's half-updated volatile state and persisting structures no real
/// crash could produce (recovery then walks garbage). With stickiness a
/// surviving thread completes at most the persistence event it is already
/// inside — indistinguishable from a store that was in flight when the
/// power died — and aborts at its next one.
class CrashInjector {
 public:
  ~CrashInjector() {
    // A store torn down while still armed must not leave the global
    // recording gate held.
    if (pausing_.exchange(false, std::memory_order_relaxed)) {
      obs::ResumeRecording();
    }
  }

  /// Arms the injector: the `at_event`-th subsequent persistence event
  /// (1-based) throws. Arming pauses ALL RewindScope recording (histogram
  /// samples, trace events) until Disarm(): instrumentation timing must
  /// not perturb a deterministic crash sweep, and nothing may allocate or
  /// log between the shot landing and recovery.
  void Arm(std::uint64_t at_event) {
    if (!pausing_.exchange(true, std::memory_order_relaxed)) {
      obs::PauseRecording();
    }
    counter_.store(0, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    target_.store(at_event, std::memory_order_relaxed);
  }

  /// Disarms the injector ("the machine is serviceable again"); always
  /// called before recovery runs (SimulateCrash disarms internally).
  /// Resumes recording, so recovery itself IS timed.
  void Disarm() {
    target_.store(0, std::memory_order_relaxed);
    fired_.store(false, std::memory_order_relaxed);
    if (pausing_.exchange(false, std::memory_order_relaxed)) {
      obs::ResumeRecording();
    }
  }

  /// True while armed and not yet fired (the post-fire dead-machine state
  /// reports false, so sweep loops can wait for the shot to land).
  bool armed() const { return target_.load(std::memory_order_relaxed) != 0; }

  /// Number of persistence events observed since the last Arm().
  std::uint64_t events() const {
    return counter_.load(std::memory_order_relaxed);
  }

  /// Called by the NVM manager on every persistence event.
  void OnPersistEvent() {
    if (fired_.load(std::memory_order_relaxed)) {
      // The machine is dead; every further persistence attempt dies too.
      throw CrashException(counter_.load(std::memory_order_relaxed));
    }
    std::uint64_t target = target_.load(std::memory_order_relaxed);
    if (target == 0) return;
    std::uint64_t n = counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == target) {
      fired_.store(true, std::memory_order_relaxed);
      target_.store(0, std::memory_order_relaxed);
      throw CrashException(n);
    }
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
  std::atomic<std::uint64_t> target_{0};
  std::atomic<bool> fired_{false};
  /// True while this injector holds the global recording pause (spans the
  /// whole armed-through-fired window; re-arming does not double-pause).
  std::atomic<bool> pausing_{false};
};

}  // namespace rwd

#endif  // REWIND_NVM_CRASH_H_
