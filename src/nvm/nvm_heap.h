// Persistent arena: the emulated NVM device.
#ifndef REWIND_NVM_NVM_HEAP_H_
#define REWIND_NVM_NVM_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nvm/nvm_config.h"

namespace rwd {

/// Thrown when a heap file cannot be created or re-attached: bad magic,
/// format version or config fingerprint, a size mismatch, or a base-address
/// collision (the recorded mapping address is already occupied in this
/// process). The message always says which check failed.
class HeapAttachError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The root/catalog block at arena offset 0 (file-backed heaps persist it;
/// DRAM heaps keep it too so the root API is uniform).
///
/// The catalog is what makes a heap file self-describing: recovery starts
/// from here. `base_address` is the virtual address the arena must be
/// re-mapped at so that raw pointers stored in persistent state stay valid;
/// `high_watermark` is the conservative allocator-rebuild point (everything
/// below it is treated as allocated on attach — crash-leak semantics, paper
/// Section 4.3); `roots` is a small table of named persistent anchors
/// (boot sector, per-partition log control blocks, the KV shard directory)
/// stored as arena *offsets* so the table itself is position-independent.
struct NvmCatalog {
  static constexpr std::uint64_t kMagic = 0x5245'5749'4e44'4856ull;
  static constexpr std::uint64_t kVersion = 1;
  static constexpr std::size_t kBytes = 4096;
  static constexpr std::size_t kRootNameBytes = 24;
  static constexpr std::size_t kMaxRoots = 126;

  struct Root {
    char name[kRootNameBytes];  // NUL-padded; all-zero = unused entry
    std::uint64_t offset;       // arena offset of the anchor; 0 = unused
  };

  std::uint64_t magic;
  std::uint64_t format_version;
  std::uint64_t base_address;  // where the view must map on attach
  std::uint64_t heap_bytes;
  std::uint64_t mode;  // NvmMode at creation
  std::uint64_t config_fingerprint;
  std::uint64_t high_watermark;  // next never-allocated offset
  std::uint64_t reserved;
  Root roots[kMaxRoots];
};
static_assert(sizeof(NvmCatalog) == NvmCatalog::kBytes,
              "catalog must fill exactly its reserved arena prefix");

/// A contiguous arena backing the emulated NVM device, with a recycling
/// allocator.
///
/// The arena holds the *volatile view*: what the CPU (caches included) sees.
/// In kCrashSim mode a second buffer of equal size holds the *persistent
/// image*: what has actually reached NVM. The NvmManager moves cachelines
/// from the view to the image on flushes/non-temporal stores and restores
/// the view from the image on a simulated crash.
///
/// With `config.heap_file` set the device is file-backed and survives real
/// process exits: kFast maps the file itself as the view (every store is
/// durable, an eADR-style device), kCrashSim maps the file as the persistent
/// image and keeps the view anonymous (cache contents die with the process,
/// exactly as on power loss). Attaching re-maps the view at the catalog's
/// recorded base address with MAP_FIXED_NOREPLACE so raw pointers in
/// persistent state remain valid; a collision raises HeapAttachError.
///
/// Allocator metadata (free lists and block sizes) is kept *outside* the
/// arena and is volatile by design: REWIND defers de-allocation past commit
/// via DELETE log records, and a crash may at worst leak memory (paper
/// Section 4.3). On attach the allocator is rebuilt conservatively: the
/// catalog's high watermark is treated as allocated, and frees of blocks
/// from a previous process ("foreign" blocks) become counted leaks instead
/// of errors. Allocation is thread-safe.
class NvmHeap {
 public:
  enum class Open { kCreate, kAttach };

  explicit NvmHeap(const NvmConfig& config, Open open = Open::kCreate);
  ~NvmHeap();
  NvmHeap(const NvmHeap&) = delete;
  NvmHeap& operator=(const NvmHeap&) = delete;

  /// Allocates `bytes` (cacheline aligned, zero-initialized) from the
  /// arena. Never returns null; aborts if the arena is exhausted. Asserts
  /// that the block does not overlap any catalog-reachable root (guards
  /// against allocator-rebuild bugs silently corrupting live data after a
  /// file-backed attach).
  void* Alloc(std::size_t bytes);

  /// Returns a block to the free list. `ptr` must come from Alloc().
  /// Freeing an already-free block is a counted no-op: recovery may replay
  /// the de-allocation of a DELETE record whose first free preceded a crash
  /// (see TransactionManager), which is legitimate; unit tests assert
  /// double_free_count() == 0 for crash-free executions. After an attach,
  /// freeing a block handed out by a *previous* process is also a counted
  /// no-op (the conservative allocator rebuild does not know its size, so
  /// the block is leaked — crash-leak semantics).
  void Free(void* ptr);

  /// Number of ignored repeat frees (see Free()).
  std::uint64_t double_free_count() const { return double_free_count_; }

  /// Number of frees of pre-attach ("foreign") blocks, each a counted leak.
  std::uint64_t foreign_free_count() const { return foreign_free_count_; }

  /// True if `ptr` is a currently allocated block (test/diagnostic hook).
  bool IsLive(const void* ptr) const;

  /// True if `ptr` points into the arena.
  bool Contains(const void* ptr) const {
    auto p = reinterpret_cast<std::uintptr_t>(ptr);
    return p >= base_ && p < base_ + size_;
  }

  /// Offset of an arena pointer from the base (persistent address).
  std::size_t OffsetOf(const void* ptr) const {
    return reinterpret_cast<std::uintptr_t>(ptr) - base_;
  }

  // --- persistent root catalog ---

  /// Registers (or re-points) a named persistent root. `ptr` must lie in
  /// the arena; `name` must fit NvmCatalog::kRootNameBytes - 1 characters.
  /// The catalog entry is persisted immediately (it is written to the
  /// persistent image / file directly, not through the cache emulation).
  void SetRoot(const char* name, const void* ptr);

  /// Looks up a named root; null when absent.
  void* GetRoot(const char* name) const;

  /// Read-only view of the catalog (tests/diagnostics).
  const NvmCatalog* catalog() const {
    return reinterpret_cast<const NvmCatalog*>(view_);
  }

  /// True when the arena is backed by a file (durable across process exit).
  bool file_backed() const { return fd_ >= 0; }
  /// True when this heap re-attached to an existing file.
  bool attached() const { return attached_; }
  const std::string& file_path() const { return file_path_; }

  /// Flushes the file-backed buffer to stable storage (msync); no-op for
  /// DRAM heaps.
  void SyncFile();

  char* data() { return view_; }
  char* image() { return image_; }
  std::size_t size() const { return size_; }
  bool crash_sim() const { return image_ != nullptr; }

  /// Bytes currently handed out (allocated minus freed). After an attach
  /// this includes the whole pre-attach region below the high watermark.
  /// Takes the allocator lock: safe to call from stats threads while
  /// other threads allocate.
  std::size_t live_bytes() const {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
    return live_bytes_;
  }

  /// Next never-allocated arena offset (persisted in the catalog). Locked
  /// like live_bytes().
  std::size_t high_watermark() const {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(mu_));
    return bump_;
  }

 private:
  void CreateMappings(const NvmConfig& config);
  void AttachMappings(const NvmConfig& config);
  /// Takes the exclusive per-file flock (held for the heap's lifetime);
  /// throws when another process has the file live.
  void LockFile();
  /// Unmaps/closes whatever CreateMappings/AttachMappings established.
  /// Used by the destructor and by the constructor's failure paths (a
  /// throwing constructor never runs the destructor).
  void ReleaseMappings();
  NvmCatalog* MutableCatalog() { return reinterpret_cast<NvmCatalog*>(view_); }
  /// Writes a catalog word to the view and mirrors it into the persistent
  /// image (catalog updates are synchronously persistent by construction).
  void CatalogStore(std::uint64_t* view_addr, std::uint64_t value);
  /// Aborts if [off, off+bytes) overlaps a registered root after an attach.
  void AssertNoRootOverlap(std::size_t off, std::size_t bytes) const;

  // Owning buffers (DRAM mode) plus cacheline-aligned bases into them:
  // heap offsets and absolute addresses must agree on cacheline boundaries
  // for the flush and coalescing accounting to be exact. File-backed mode
  // uses mmap (page-aligned) instead and leaves these null.
  std::unique_ptr<char[]> view_storage_;
  std::unique_ptr<char[]> image_storage_;
  char* view_ = nullptr;
  char* image_ = nullptr;  // null in kFast mode
  std::uintptr_t base_ = 0;
  std::size_t size_ = 0;

  int fd_ = -1;  // >= 0 iff file-backed
  std::string file_path_;
  bool view_is_mapped_ = false;   // view_ came from mmap
  bool image_is_mapped_ = false;  // image_ came from mmap
  bool attached_ = false;
  std::size_t attach_floor_ = 0;  // pre-attach region is [catalog, floor)

  struct BlockInfo {
    std::size_t bytes;
    bool live;
  };

  std::mutex mu_;
  std::size_t bump_ = 0;  // next never-allocated offset
  std::unordered_map<std::size_t, std::vector<void*>> free_lists_;
  std::unordered_map<void*, BlockInfo> blocks_;
  std::vector<std::size_t> root_offsets_;  // sorted; guards Alloc
  std::size_t live_bytes_ = 0;
  std::uint64_t double_free_count_ = 0;
  std::uint64_t foreign_free_count_ = 0;
};

}  // namespace rwd

#endif  // REWIND_NVM_NVM_HEAP_H_
