// Persistent arena: the emulated NVM device.
#ifndef REWIND_NVM_NVM_HEAP_H_
#define REWIND_NVM_NVM_HEAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/nvm/nvm_config.h"

namespace rwd {

/// A contiguous arena backing the emulated NVM device, with a recycling
/// allocator.
///
/// The arena holds the *volatile view*: what the CPU (caches included) sees.
/// In kCrashSim mode a second buffer of equal size holds the *persistent
/// image*: what has actually reached NVM. The NvmManager moves cachelines
/// from the view to the image on flushes/non-temporal stores and restores
/// the view from the image on a simulated crash.
///
/// Allocator metadata (free lists and block sizes) is kept *outside* the
/// arena and is volatile by design: REWIND defers de-allocation past commit
/// via DELETE log records, and a crash may at worst leak memory (paper
/// Section 4.3). Keeping it external also means a simulated crash cannot
/// corrupt it, mirroring a real system where the allocator would be
/// reinitialized conservatively after a failure. Allocation is thread-safe.
class NvmHeap {
 public:
  explicit NvmHeap(const NvmConfig& config);
  NvmHeap(const NvmHeap&) = delete;
  NvmHeap& operator=(const NvmHeap&) = delete;

  /// Allocates `bytes` (16-byte aligned, zero-initialized) from the arena.
  /// Never returns null; aborts if the arena is exhausted.
  void* Alloc(std::size_t bytes);

  /// Returns a block to the free list. `ptr` must come from Alloc().
  /// Freeing an already-free block is a counted no-op: recovery may replay
  /// the de-allocation of a DELETE record whose first free preceded a crash
  /// (see TransactionManager), which is legitimate; unit tests assert
  /// double_free_count() == 0 for crash-free executions.
  void Free(void* ptr);

  /// Number of ignored repeat frees (see Free()).
  std::uint64_t double_free_count() const { return double_free_count_; }

  /// True if `ptr` is a currently allocated block (test/diagnostic hook).
  bool IsLive(const void* ptr) const;

  /// True if `ptr` points into the arena.
  bool Contains(const void* ptr) const {
    auto p = reinterpret_cast<std::uintptr_t>(ptr);
    return p >= base_ && p < base_ + size_;
  }

  /// Offset of an arena pointer from the base (persistent address).
  std::size_t OffsetOf(const void* ptr) const {
    return reinterpret_cast<std::uintptr_t>(ptr) - base_;
  }

  char* data() { return view_; }
  char* image() { return image_; }
  std::size_t size() const { return size_; }
  bool crash_sim() const { return image_ != nullptr; }

  /// Bytes currently handed out (allocated minus freed).
  std::size_t live_bytes() const { return live_bytes_; }

 private:
  // Owning buffers plus cacheline-aligned bases into them: heap offsets and
  // absolute addresses must agree on cacheline boundaries for the flush and
  // coalescing accounting to be exact.
  std::unique_ptr<char[]> view_storage_;
  std::unique_ptr<char[]> image_storage_;
  char* view_ = nullptr;
  char* image_ = nullptr;  // null in kFast mode
  std::uintptr_t base_ = 0;
  std::size_t size_ = 0;

  struct BlockInfo {
    std::size_t bytes;
    bool live;
  };

  std::mutex mu_;
  std::size_t bump_ = 0;  // next never-allocated offset
  std::unordered_map<std::size_t, std::vector<void*>> free_lists_;
  std::unordered_map<void*, BlockInfo> blocks_;
  std::size_t live_bytes_ = 0;
  std::uint64_t double_free_count_ = 0;
};

}  // namespace rwd

#endif  // REWIND_NVM_NVM_HEAP_H_
