// The persistence facade: every access to emulated NVM goes through here.
#ifndef REWIND_NVM_NVM_MANAGER_H_
#define REWIND_NVM_NVM_MANAGER_H_

#include <cstdint>
#include <cstring>
#include <mutex>
#include <random>
#include <type_traits>
#include <vector>

#include "src/nvm/atomic_mem.h"
#include "src/nvm/crash.h"
#include "src/nvm/latency.h"
#include "src/nvm/nvm_config.h"
#include "src/nvm/nvm_heap.h"
#include "src/nvm/stats.h"

namespace rwd {

/// Emulates the persistence primitives REWIND relies on (paper Section 3.1):
///
///  - Store:   a regular cached CPU store. Reaches NVM only when its
///             cacheline is flushed (or randomly evicted at a crash).
///  - StoreNT: a non-temporal, synchronous store that bypasses the cache and
///             "does not complete before reaching NVM".
///  - Flush:   a cacheline flush (clflush) with persistence guarantee.
///  - Fence:   a persistent memory fence ordering and persisting preceding
///             writes.
///
/// Latency accounting follows the paper: every non-temporal store is an
/// individual NVM write, but consecutive stores to the same cacheline are
/// grouped into a single charged write; fences carry their own (sweepable)
/// latency.
///
/// In kCrashSim mode the manager additionally tracks which cachelines of the
/// heap are dirty (cached but not persistent) and maintains the persistent
/// image, so tests can crash the "machine" at any persistence event and run
/// recovery against exactly what would have survived.
class NvmManager {
 public:
  /// `attach` re-opens the file-backed heap named by `config.heap_file`
  /// (validating its catalog and re-mapping at the recorded base address)
  /// instead of creating a fresh arena; see NvmHeap. Throws HeapAttachError
  /// when the file cannot be attached.
  explicit NvmManager(const NvmConfig& config, bool attach = false);

  NvmHeap& heap() { return heap_; }
  const NvmConfig& config() const { return config_; }
  NvmStats& stats() { return stats_; }
  CrashInjector& crash_injector() { return crash_injector_; }

  /// Changes the fence latency (Fig 10 sensitivity sweep).
  void set_fence_latency_ns(std::uint32_t ns) { config_.fence_latency_ns = ns; }
  /// Changes the write latency.
  void set_write_latency_ns(std::uint32_t ns) { config_.write_latency_ns = ns; }

  /// Allocates zeroed persistent memory.
  void* Alloc(std::size_t bytes) { return heap_.Alloc(bytes); }
  template <typename T>
  T* AllocArray(std::size_t n) {
    return static_cast<T*>(Alloc(sizeof(T) * n));
  }
  /// Frees persistent memory (callers must obey REWIND's deferred-free
  /// discipline; the heap itself does not check).
  void Free(void* ptr) { heap_.Free(ptr); }

  /// Regular cached store: volatile until flushed/evicted. Atomic at word
  /// granularity so a latch-free seqlock reader racing with it is a
  /// defined (and TSan-clean) execution, and RELEASE-ordered because this
  /// is the critical-store path that publishes pointers (a value-buffer
  /// cell, a grown hash table and its capacity): a reader whose relaxed
  /// load observes the published word through an acquire fence must also
  /// observe everything stored before it — see atomic_mem.h.
  template <typename T>
  void Store(T* addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    ReleaseStore(addr, value);
    stats_.cached_stores.fetch_add(1, std::memory_order_relaxed);
    if (tracking_) MarkDirty(addr, sizeof(T));
  }

  /// Cached store of a whole trivially-copyable object (volatile until
  /// flushed/evicted, like Store()).
  template <typename T>
  void StoreObject(T* addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    AtomicCopy(static_cast<void*>(addr), &value, sizeof(T));
    stats_.cached_stores.fetch_add(1, std::memory_order_relaxed);
    if (tracking_) MarkDirty(addr, sizeof(T));
  }

  /// Non-temporal store of a word-sized value: persistent on completion.
  /// Charges one NVM write unless it coalesces with the immediately
  /// preceding non-temporal store to the same cacheline on this thread.
  /// Release-ordered like Store(): under the force policy the critical
  /// (publishing) user stores come through here.
  template <typename T>
  void StoreNT(T* addr, const T& value) {
    static_assert(sizeof(T) <= 8 && std::is_trivially_copyable_v<T>);
    // The crash check comes FIRST: an injected crash at this event means
    // the power died before the store completed, so it must not reach the
    // view or the persistent image at all. This also protects a sticky
    // post-crash injector (see CrashInjector): a thread that survived the
    // crash instant may reach here with an address computed from another
    // thread's interrupted volatile state, and must die before
    // dereferencing it.
    crash_injector_.OnPersistEvent();
    ReleaseStore(addr, value);
    if (tracking_) PersistBytes(addr, sizeof(T));
    ChargeWrite(addr);
  }

  /// Non-temporal store of an arbitrary trivially-copyable object, emulating
  /// a sequence of word-sized non-temporal stores (with coalescing).
  template <typename T>
  void StoreNTObject(T* addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    AtomicCopy(static_cast<void*>(addr), &value, sizeof(T));
    PersistRangeNT(addr, sizeof(T));
  }

  /// Emulates non-temporal persistence of `bytes` bytes already written at
  /// `addr` (charging one NVM write per cacheline touched).
  void PersistRangeNT(const void* addr, std::size_t bytes);

  /// Cacheline flush: persists the line containing `addr`.
  void Flush(const void* addr);

  /// Flushes every cacheline in [addr, addr+bytes).
  void FlushRange(const void* addr, std::size_t bytes);

  /// Persistent memory fence: orders and persists preceding writes.
  void Fence();

  /// Flushes the entire cache (all dirty lines), as a checkpoint does.
  /// Returns the number of lines flushed.
  std::size_t FlushAllDirty();

  /// kCrashSim only: models a power failure. Every dirty (unflushed)
  /// cacheline is either lost or — with probability `evict_probability` —
  /// persisted, modelling arbitrary cache eviction. The volatile view is
  /// then replaced by the persistent image.
  void SimulateCrash(double evict_probability = 0.0, std::uint64_t seed = 0);

  /// kCrashSim only: true if the line containing `addr` is dirty in cache.
  bool IsDirty(const void* addr) const;

  /// Resets the per-thread cacheline-coalescing state (e.g. between
  /// benchmark phases).
  void ResetCoalescing() { last_nt_ = {nullptr, 0, 0}; }

 private:
  void MarkDirty(const void* addr, std::size_t bytes);
  void PersistBytes(const void* addr, std::size_t bytes);
  void PersistLine(std::size_t line);
  void ChargeWrite(const void* addr);

  NvmConfig config_;
  NvmStats stats_;
  CrashInjector crash_injector_;
  NvmHeap heap_;
  bool tracking_;
  std::uint32_t line_bytes_;
  std::uint64_t generation_;  // unique per manager instance, ever

  // Dirty-line bitmap (one byte per line; only in kCrashSim mode).
  std::vector<std::uint8_t> dirty_;
  mutable std::mutex dirty_mu_;

  // Per-thread coalescing state: the last line non-temporally stored to,
  // tagged with the owning manager AND its generation — the address alone
  // is not enough, since a destroyed manager's address (and arena) can be
  // recycled for a new one on any thread, and stale state would silently
  // swallow the new device's first charged write.
  struct NtRun {
    const void* mgr;
    std::uint64_t gen;
    std::uintptr_t line;
  };
  static thread_local NtRun last_nt_;
};

}  // namespace rwd

#endif  // REWIND_NVM_NVM_MANAGER_H_
