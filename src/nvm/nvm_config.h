// Configuration for the NVM emulation substrate.
#ifndef REWIND_NVM_NVM_CONFIG_H_
#define REWIND_NVM_NVM_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace rwd {

/// How the emulator models persistence.
enum class NvmMode {
  /// No persistence tracking; only latency is charged. Used for benchmarks.
  kFast,
  /// Cacheline-granularity persistence tracking with a shadow persistent
  /// image, enabling simulated crashes. Used for recovery tests.
  kCrashSim,
};

/// Tunable parameters of the emulated NVM device.
///
/// Defaults follow the paper's methodology: 150 ns per NVM write (510 cycles
/// at 2.5 GHz), 64-byte cachelines, consecutive stores to one cacheline
/// coalesced into a single charged write.
struct NvmConfig {
  NvmMode mode = NvmMode::kFast;
  /// Size of the persistent arena in bytes.
  std::size_t heap_bytes = std::size_t{256} << 20;
  /// Latency charged for each NVM write (non-temporal store or flushed
  /// cacheline). 0 disables latency emulation (unit tests).
  std::uint32_t write_latency_ns = 150;
  /// Latency charged for each persistent memory fence. Swept by Fig 10.
  std::uint32_t fence_latency_ns = 100;
  /// Cacheline size used for coalescing and dirty tracking.
  std::uint32_t cacheline_bytes = 64;
  /// When non-empty, the emulated NVM device is backed by this file instead
  /// of DRAM and survives real process exits: in kFast mode the arena is a
  /// shared mapping of the file; in kCrashSim mode the *persistent image*
  /// is (the volatile view stays anonymous, exactly as caches are volatile).
  /// The file records the view's base address so raw pointers in persistent
  /// state stay valid when a fresh process re-attaches.
  std::string heap_file;
  /// Fingerprint of the owning runtime's configuration, stamped into the
  /// heap file's catalog at creation and validated on attach so a file
  /// cannot be reopened under an incompatible configuration. Filled by
  /// Runtime; 0 skips the check (raw NvmManager users).
  std::uint64_t config_fingerprint = 0;
};

}  // namespace rwd

#endif  // REWIND_NVM_NVM_CONFIG_H_
