// Counters for emulated NVM traffic.
#ifndef REWIND_NVM_STATS_H_
#define REWIND_NVM_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rwd {

/// Aggregate statistics of the emulated NVM device. All counters are
/// monotonically increasing and thread-safe.
struct NvmStats {
  /// Charged NVM writes (after cacheline coalescing).
  std::atomic<std::uint64_t> nvm_writes{0};
  /// Persistent memory fences issued.
  std::atomic<std::uint64_t> fences{0};
  /// Explicit cacheline flushes issued.
  std::atomic<std::uint64_t> flushes{0};
  /// Cached (volatile-path) stores issued.
  std::atomic<std::uint64_t> cached_stores{0};
  /// Simulated crashes taken.
  std::atomic<std::uint64_t> crashes{0};

  void Reset();
  /// One-line human-readable rendering, for bench harness output.
  std::string ToString() const;
};

}  // namespace rwd

#endif  // REWIND_NVM_STATS_H_
