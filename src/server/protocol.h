// RewindServe wire protocol: a compact length-prefixed binary framing
// shared by the server, the blocking client library and the load
// generator. Full client-side pipelining is the design center: a client
// may stream any number of request frames before reading; the server
// answers every frame in order on the same connection.
//
// Request frame:   [u32 len][u8 op][payload]      (len covers op+payload)
// Response frame:  [u32 len][u8 status][payload]
//
// All integers are little-endian. Payloads per op:
//   GET   key:u64                      -> OK value-bytes | NOT_FOUND
//   PUT   key:u64 value-bytes          -> OK   (acked after group commit)
//   DEL   key:u64                      -> OK | NOT_FOUND (after commit)
//   SCAN  from:u64 max:u32             -> OK n:u32 n*(key:u64 len:u32 bytes)
//                                         [truncated:u8 next:u64]
//                                         (trailer present since PR 9: set
//                                         when the server cut the result
//                                         short — byte cap or server item
//                                         cap — with `next` the key to
//                                         resume from; old replies simply
//                                         omit the 9 bytes)
//   SCAN_STREAM from:u64 max:u32       -> a SEQUENCE of OK chunk frames:
//                                         [flags:u8][next:u64][n:u32]
//                                         n*(key:u64 len:u32 bytes);
//                                         flags bit0 = more chunks follow.
//                                         The stream ends with the first
//                                         chunk whose bit0 is clear. `next`
//                                         resumes a broken stream.
//   MPUT  n:u32 n*(key:u64 len:u32 bytes) -> OK (cross-shard atomic batch)
//   STATS (empty)                      -> OK 18*u64 + 2*shards*u64
//                                         (see StatsReply; the trailing
//                                         arrays are per-shard log bytes,
//                                         then per-shard read-latch
//                                         acquisitions)
//   STATS2 (empty)                     -> OK n:u32 n*(name_len:u16 name
//                                         type:u8 value:f64-bits-as-u64)
//                                         — the self-describing metrics
//                                         snapshot. New metrics never
//                                         change this format (no more
//                                         kStatsWords bumps): decoders
//                                         read triples generically and
//                                         ignore names/types they do not
//                                         know, so old clients stay
//                                         forward compatible.
#ifndef REWIND_SERVER_PROTOCOL_H_
#define REWIND_SERVER_PROTOCOL_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rwd {
namespace serve {

enum class Op : std::uint8_t {
  kGet = 1,
  kPut = 2,
  kDel = 3,
  kScan = 4,
  kMput = 5,
  kStats = 6,
  kStats2 = 7,  ///< self-describing metrics snapshot (RewindScope)
  // --- RewindRepl (replication) ---
  /// Client->leader: become a replication stream. Payload: the follower's
  /// applied gtid (u64). The reply is [kOk][mode:u8][start:u64] — mode 0
  /// resumes the record stream after `start`, mode 1 means a full
  /// snapshot (kReplSnapshot frames) precedes the stream. After the
  /// reply, the connection leaves the request/response protocol: the
  /// leader pushes kReplBatch frames, the follower answers with
  /// kReplAck frames.
  kReplSubscribe = 8,
  /// Leader->follower push: one replication record.
  /// Payload: [gtid:u64][n:u32] n*([kind:u8][key:u64][vlen:u32][bytes]).
  kReplBatch = 9,
  /// Follower->leader: records applied through `gtid` (u64).
  kReplAck = 10,
  /// Leader->follower: one snapshot chunk.
  /// Payload: [last:u8][snap_gtid:u64][n:u32] n*([key:u64][vlen:u32][bytes]);
  /// `last` flags the final chunk, after which the record stream begins.
  kReplSnapshot = 11,
  /// GET with a read-your-writes token: [key:u64][min_gtid:u64]. The
  /// server answers only once its applied gtid reaches min_gtid (or
  /// fails kServerError on timeout). On a leader the token is trivially
  /// satisfied.
  kGetRyw = 12,
  /// Promotes a read-only follower to leader (idempotent; empty payload).
  kPromote = 13,
  /// Leader-side replication health (empty payload). Reply:
  /// [last_gtid:u64][n:u32] n*([name_len:u16][name][acked_gtid:u64]
  /// [lag_batches:u64][staleness_ms:u64]) — one entry per subscribed
  /// follower. On a node with no ReplicationLog: last_gtid 0, n 0.
  kReplStatus = 14,
  /// Streaming scan: same request payload as kScan ([from:u64][max:u32]),
  /// but the server answers with a SEQUENCE of kOk chunk frames written
  /// onto the wire as shards produce them — the reply is never buffered
  /// whole, so a scan larger than kMaxScanReplyBytes completes without
  /// truncation. Chunk payload:
  ///   [flags:u8][next_key:u64][n:u32] n*(key:u64 len:u32 bytes)
  /// flags bit0 (more) set = further chunks follow; the chunk with bit0
  /// clear ends the stream. `next_key` is where a resumed SCAN_STREAM
  /// would continue (meaningful while `more` is set).
  kScanStream = 15,
  /// Leader->follower (RewindGuard): lease heartbeat pushed on the
  /// replication stream while it is idle. Payload:
  /// [epoch:u64][last_gtid:u64]. The follower renews its leader lease,
  /// adopts the epoch, and answers with a kReplAck (its applied gtid) —
  /// the ack doubles as the follower-contact signal that keeps the
  /// LEADER's own lease alive, so liveness is checked in both directions
  /// even on a write-idle stream.
  kReplHeartbeat = 16,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kNotFound = 1,
  kBadRequest = 2,
  kServerError = 3,  ///< shutting down / batcher unavailable
  /// Write refused: this node is a read-only follower (or a fenced
  /// ex-leader). With RewindGuard the payload carries a redirect hint —
  /// [epoch:u64][addr_len:u16][addr-bytes] — naming the current epoch and
  /// (when known) the leader's host:port; pre-guard replies carry an
  /// empty payload and clients must fall back to their endpoint list.
  kNotLeader = 4,
};

/// REPL_SUBSCRIBE position sentinel (RewindGuard): "discard my state and
/// send a full snapshot". A demoted ex-leader's applied gtid is from its
/// OWN former epoch — meaningless against the new leader's epoch-local
/// gtids — so rejoin always resyncs via snapshot (whose keep-set
/// reconciliation also discards any divergent, never-replicated writes).
constexpr std::uint64_t kReplSubscribeSnapshot = ~0ull;

/// Upper bound on one frame (guards the server against hostile lengths).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;
/// Server-side cap on SCAN result counts.
constexpr std::uint32_t kMaxScanItems = 4096;
/// Server-side cap on SCAN reply payload bytes: a scan over large values
/// truncates (returns fewer than the requested items) rather than build a
/// frame the kMaxFrameBytes check would reject.
constexpr std::uint32_t kMaxScanReplyBytes = 8u << 20;

/// STATS response payload: 18 fixed words in wire order, then two
/// `shards`-sized trailing arrays (per-shard log-partition bytes, then
/// per-shard shared-mode read-latch acquisitions).
struct StatsReply {
  std::uint64_t keys = 0;           ///< live keys across all shards
  std::uint64_t acked_writes = 0;   ///< write ops acked (PUT/DEL/MPUT keys)
  std::uint64_t batches = 0;        ///< group commits executed
  std::uint64_t batched_writes = 0; ///< write ops carried by those batches
  std::uint64_t gets = 0;
  std::uint64_t scans = 0;
  std::uint64_t connections = 0;    ///< connections accepted so far
  std::uint64_t shards = 0;
  std::uint64_t batcher_depth = 0;  ///< write ops queued, not yet committed
  std::uint64_t prepared_txns = 0;  ///< 2PC participants currently PREPARED
  std::uint64_t heap_mode = 0;      ///< 0 = DRAM-backed, 1 = file-backed
  std::uint64_t heap_used_bytes = 0;      ///< NVM allocator live bytes
  std::uint64_t heap_high_watermark = 0;  ///< arena bump offset
  // --- concurrent read path / parallel 2PC (PR 5) ---
  std::uint64_t optimistic_hits = 0;     ///< Gets served latch-free
  std::uint64_t optimistic_retries = 0;  ///< seqlock validation conflicts
  std::uint64_t read_latch_acquires = 0; ///< shared-latch reads (all shards)
  std::uint64_t parallel_prepares = 0;   ///< 2PC commits run on the pool
  std::uint64_t max_prepare_fanout = 0;  ///< widest parallel commit seen
  std::vector<std::uint64_t> shard_log_bytes;  ///< live log bytes per shard
  /// Per-shard shared-mode read-latch acquisitions (optimistic fallbacks
  /// plus scans), exposing per-shard read skew.
  std::vector<std::uint64_t> shard_read_latches;
  // --- STATS2-only (PR 7): not part of the 18-word v1 wire payload ---
  std::uint64_t starvation_fallbacks = 0;  ///< reader anti-starvation trips
  std::uint64_t decision_log_truncations = 0;  ///< batched decision erases
  // --- STATS2-only (PR 8): parallel write pipeline ---
  std::uint64_t parallel_applies = 0;   ///< batches applied with shard fan-out
  std::uint64_t presumed_commits = 0;   ///< 2PC commits that skipped the erase
  // --- STATS2-only (PR 9): streaming scans / range layout ---
  std::uint64_t scan_chunks = 0;        ///< SCAN_STREAM chunks sent
  std::uint64_t scan_stream_bytes = 0;  ///< SCAN_STREAM item bytes sent
  std::uint64_t scan_optimistic_hits = 0;     ///< latch-free sub-scans
  std::uint64_t scan_optimistic_retries = 0;  ///< sub-scan seqlock conflicts
};
constexpr std::size_t kStatsWords = 18;

/// One follower's health in a REPL_STATUS reply.
struct ReplSubStatus {
  std::string name;               ///< the follower's subscriber name
  std::uint64_t acked_gtid = 0;   ///< last gtid the follower acked
  std::uint64_t lag_batches = 0;  ///< published batches not yet acked
  std::uint64_t staleness_ms = 0; ///< time since the follower's last ack
};

/// REPL_STATUS response: the leader's replication head plus one health
/// entry per subscribed follower. Since PR 10 the payload may end with a
/// 9-byte [epoch:u64][role:u8] trailer (role 1 = leader, 0 = follower);
/// pre-guard replies omit it and decode with `has_role` false.
struct ReplStatusReply {
  std::uint64_t last_gtid = 0;  ///< leader's last published gtid
  std::vector<ReplSubStatus> subs;
  std::uint64_t epoch = 0;  ///< fencing epoch (0 when no guard)
  bool leader = false;      ///< role at reply time
  bool has_role = false;    ///< trailer present (server has PR 10)
};

/// Decoded kNotLeader payload: the rejecting node's view of the current
/// epoch and, when it knows one, the leader's address to redirect to.
struct NotLeaderHint {
  std::uint64_t epoch = 0;
  std::string host;
  std::uint16_t port = 0;
  bool has_addr = false;
};

/// One decoded SCAN_STREAM chunk.
struct ScanChunk {
  bool more = false;           ///< further chunks follow on this stream
  std::uint64_t next_key = 0;  ///< resume point (meaningful while `more`)
  std::vector<std::pair<std::uint64_t, std::string>> items;
};

/// One STATS2 (name, type, value) triple. `type` mirrors
/// obs::SampleType's wire values — 0 counter, 1 gauge, 2 derived value —
/// but is carried as a raw byte so decoders accept types they do not know
/// yet (the value field is always IEEE-754 f64 bits regardless of type).
struct MetricSample {
  std::string name;
  std::uint8_t type = 2;
  double value = 0;
};

inline void AppendU16(std::string* s, std::uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  s->append(b, 2);
}

inline std::uint16_t ReadU16(const char* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

inline void AppendU32(std::string* s, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  s->append(b, 4);
}

inline void AppendU64(std::string* s, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  s->append(b, 8);
}

inline std::uint32_t ReadU32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t ReadU64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// Starts a frame in `out`, returning the offset of its length field;
/// callers append the body then call EndFrame with the same offset.
inline std::size_t BeginFrame(std::string* out, std::uint8_t tag) {
  std::size_t at = out->size();
  AppendU32(out, 0);  // patched by EndFrame
  out->push_back(static_cast<char>(tag));
  return at;
}

inline void EndFrame(std::string* out, std::size_t at) {
  std::uint32_t len = static_cast<std::uint32_t>(out->size() - at - 4);
  std::memcpy(&(*out)[at], &len, 4);
}

// --- request encoders (client side) ---

inline void EncodeGet(std::string* out, std::uint64_t key) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kGet));
  AppendU64(out, key);
  EndFrame(out, at);
}

inline void EncodePut(std::string* out, std::uint64_t key,
                      std::string_view value) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kPut));
  AppendU64(out, key);
  out->append(value.data(), value.size());
  EndFrame(out, at);
}

inline void EncodeDel(std::string* out, std::uint64_t key) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kDel));
  AppendU64(out, key);
  EndFrame(out, at);
}

inline void EncodeScan(std::string* out, std::uint64_t from_key,
                       std::uint32_t max_items) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kScan));
  AppendU64(out, from_key);
  AppendU32(out, max_items);
  EndFrame(out, at);
}

inline void EncodeScanStream(std::string* out, std::uint64_t from_key,
                             std::uint32_t max_items) {
  std::size_t at =
      BeginFrame(out, static_cast<std::uint8_t>(Op::kScanStream));
  AppendU64(out, from_key);
  AppendU32(out, max_items);
  EndFrame(out, at);
}

inline void EncodeMput(
    std::string* out,
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kMput));
  AppendU32(out, static_cast<std::uint32_t>(kvs.size()));
  for (const auto& [key, value] : kvs) {
    AppendU64(out, key);
    AppendU32(out, static_cast<std::uint32_t>(value.size()));
    out->append(value);
  }
  EndFrame(out, at);
}

inline void EncodeStats(std::string* out) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kStats));
  EndFrame(out, at);
}

inline void EncodeStats2(std::string* out) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kStats2));
  EndFrame(out, at);
}

/// REPL_SUBSCRIBE request. Since PR 10 the payload carries the follower's
/// fencing epoch after its applied gtid (16 bytes); the server accepts
/// the old 8-byte form with epoch 0. `applied` may be
/// kReplSubscribeSnapshot to force a full snapshot resync. The reply is
/// [kOk][mode:u8][start:u64][epoch:u64] (the trailing leader epoch added
/// in PR 10; followers accept the 9-byte pre-guard form too).
inline void EncodeReplSubscribe(std::string* out, std::uint64_t applied,
                                std::uint64_t epoch = 0) {
  std::size_t at =
      BeginFrame(out, static_cast<std::uint8_t>(Op::kReplSubscribe));
  AppendU64(out, applied);
  AppendU64(out, epoch);
  EndFrame(out, at);
}

/// REPL_ACK frame. Since PR 10 the payload carries the follower's epoch
/// after the applied gtid (16 bytes); leaders accept the old 8-byte form.
inline void EncodeReplAck(std::string* out, std::uint64_t gtid,
                          std::uint64_t epoch = 0) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kReplAck));
  AppendU64(out, gtid);
  AppendU64(out, epoch);
  EndFrame(out, at);
}

/// REPL_HEARTBEAT frame (leader -> follower on the replication stream).
inline void EncodeReplHeartbeat(std::string* out, std::uint64_t epoch,
                                std::uint64_t last_gtid) {
  std::size_t at =
      BeginFrame(out, static_cast<std::uint8_t>(Op::kReplHeartbeat));
  AppendU64(out, epoch);
  AppendU64(out, last_gtid);
  EndFrame(out, at);
}

/// Appends a kNotLeader redirect payload: [epoch:u64][addr_len:u16][addr].
/// `addr` is "host:port" or empty when this node has no leader hint.
inline void AppendNotLeaderPayload(std::string* out, std::uint64_t epoch,
                                   std::string_view addr) {
  AppendU64(out, epoch);
  std::uint16_t len = static_cast<std::uint16_t>(
      std::min<std::size_t>(addr.size(), 0xffff));
  AppendU16(out, len);
  out->append(addr.data(), len);
}

/// Parses a kNotLeader payload. An EMPTY payload is valid (pre-guard
/// server: no epoch, no hint) and yields epoch 0 / has_addr false. A
/// hint without a ':' or with a bad port parses as addr-less.
inline bool DecodeNotLeaderPayload(std::string_view payload,
                                   NotLeaderHint* out) {
  *out = NotLeaderHint{};
  if (payload.empty()) return true;
  if (payload.size() < 10) return false;
  out->epoch = ReadU64(payload.data());
  std::uint16_t len = ReadU16(payload.data() + 8);
  if (payload.size() != std::size_t{10} + len) return false;
  std::string_view addr = payload.substr(10, len);
  std::size_t colon = addr.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= addr.size()) {
    return true;
  }
  std::uint32_t port = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    char c = addr[i];
    if (c < '0' || c > '9') return true;
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    if (port > 0xffff) return true;
  }
  if (port == 0) return true;
  out->host = std::string(addr.substr(0, colon));
  out->port = static_cast<std::uint16_t>(port);
  out->has_addr = true;
  return true;
}

inline void EncodeGetRyw(std::string* out, std::uint64_t key,
                         std::uint64_t min_gtid) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kGetRyw));
  AppendU64(out, key);
  AppendU64(out, min_gtid);
  EndFrame(out, at);
}

inline void EncodePromote(std::string* out) {
  std::size_t at = BeginFrame(out, static_cast<std::uint8_t>(Op::kPromote));
  EndFrame(out, at);
}

inline void EncodeReplStatus(std::string* out) {
  std::size_t at =
      BeginFrame(out, static_cast<std::uint8_t>(Op::kReplStatus));
  EndFrame(out, at);
}

/// Appends one STATS2 triple (server side / test fixtures). Names longer
/// than 64 KiB truncate (never happens for registry names).
inline void AppendMetricSample(std::string* out, const MetricSample& m) {
  std::uint16_t len = static_cast<std::uint16_t>(
      std::min<std::size_t>(m.name.size(), 0xffff));
  AppendU16(out, len);
  out->append(m.name.data(), len);
  out->push_back(static_cast<char>(m.type));
  std::uint64_t bits;
  std::memcpy(&bits, &m.value, 8);
  AppendU64(out, bits);
}

// --- payload decoders shared by client and tests ---

/// Parses a SCAN response payload into (key, value) pairs. Since PR 9 the
/// reply may carry a 9-byte [truncated:u8][next_key:u64] trailer after the
/// items — set when the server cut the result short of the client's ask
/// (reply-byte cap, server-side item cap); `next_key` is where a follow-up
/// scan resumes. Pre-trailer replies (and in-bound results, which omit it)
/// decode identically: `truncated`/`next_key` (optional) then report
/// false/0. Exactly 0 or 9 trailing bytes are accepted — anything else is
/// a framing error.
inline bool DecodeScanPayload(
    std::string_view payload,
    std::vector<std::pair<std::uint64_t, std::string>>* out,
    bool* truncated = nullptr, std::uint64_t* next_key = nullptr) {
  if (truncated != nullptr) *truncated = false;
  if (next_key != nullptr) *next_key = 0;
  if (payload.size() < 4) return false;
  std::uint32_t n = ReadU32(payload.data());
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (payload.size() - off < 12) return false;
    std::uint64_t key = ReadU64(payload.data() + off);
    std::uint32_t vlen = ReadU32(payload.data() + off + 8);
    off += 12;
    if (payload.size() - off < vlen) return false;
    out->emplace_back(key, std::string(payload.substr(off, vlen)));
    off += vlen;
  }
  std::size_t rem = payload.size() - off;
  if (rem == 0) return true;
  if (rem != 9) return false;
  if (truncated != nullptr) {
    *truncated = payload[off] != 0;
  }
  if (next_key != nullptr) *next_key = ReadU64(payload.data() + off + 1);
  return true;
}

/// Parses one SCAN_STREAM chunk payload.
inline bool DecodeScanChunkPayload(std::string_view payload,
                                   ScanChunk* out) {
  if (payload.size() < 13) return false;
  out->more = (static_cast<std::uint8_t>(payload[0]) & 1) != 0;
  out->next_key = ReadU64(payload.data() + 1);
  std::uint32_t n = ReadU32(payload.data() + 9);
  std::size_t off = 13;
  out->items.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (payload.size() - off < 12) return false;
    std::uint64_t key = ReadU64(payload.data() + off);
    std::uint32_t vlen = ReadU32(payload.data() + off + 8);
    off += 12;
    if (payload.size() - off < vlen) return false;
    out->items.emplace_back(key, std::string(payload.substr(off, vlen)));
    off += vlen;
  }
  return off == payload.size();
}

/// Parses a STATS response payload (fixed words + the per-shard array).
inline bool DecodeStatsPayload(std::string_view payload, StatsReply* out) {
  if (payload.size() < kStatsWords * 8) return false;
  const char* p = payload.data();
  out->keys = ReadU64(p);
  out->acked_writes = ReadU64(p + 8);
  out->batches = ReadU64(p + 16);
  out->batched_writes = ReadU64(p + 24);
  out->gets = ReadU64(p + 32);
  out->scans = ReadU64(p + 40);
  out->connections = ReadU64(p + 48);
  out->shards = ReadU64(p + 56);
  out->batcher_depth = ReadU64(p + 64);
  out->prepared_txns = ReadU64(p + 72);
  out->heap_mode = ReadU64(p + 80);
  out->heap_used_bytes = ReadU64(p + 88);
  out->heap_high_watermark = ReadU64(p + 96);
  out->optimistic_hits = ReadU64(p + 104);
  out->optimistic_retries = ReadU64(p + 112);
  out->read_latch_acquires = ReadU64(p + 120);
  out->parallel_prepares = ReadU64(p + 128);
  out->max_prepare_fanout = ReadU64(p + 136);
  // Divide, don't multiply: a hostile shards count must not overflow the
  // size check and walk the loop past the payload. Two trailing per-shard
  // arrays follow the fixed words.
  if (out->shards != (payload.size() - kStatsWords * 8) / 8 / 2 ||
      payload.size() % 8 != 0 ||
      (payload.size() - kStatsWords * 8) % 16 != 0) {
    return false;
  }
  out->shard_log_bytes.clear();
  out->shard_read_latches.clear();
  for (std::uint64_t s = 0; s < out->shards; ++s) {
    out->shard_log_bytes.push_back(ReadU64(p + (kStatsWords + s) * 8));
  }
  for (std::uint64_t s = 0; s < out->shards; ++s) {
    out->shard_read_latches.push_back(
        ReadU64(p + (kStatsWords + out->shards + s) * 8));
  }
  return true;
}

/// Parses a REPL_STATUS response payload. Exactly 0 or 9 bytes may follow
/// the subscriber entries (the PR 10 [epoch:u64][role:u8] trailer, same
/// idiom as the SCAN truncation trailer); anything else is a framing
/// error.
inline bool DecodeReplStatusPayload(std::string_view payload,
                                    ReplStatusReply* out) {
  if (payload.size() < 12) return false;
  out->last_gtid = ReadU64(payload.data());
  std::uint32_t n = ReadU32(payload.data() + 8);
  std::size_t off = 12;
  out->subs.clear();
  out->epoch = 0;
  out->leader = false;
  out->has_role = false;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (payload.size() - off < 2) return false;
    std::uint16_t name_len = ReadU16(payload.data() + off);
    off += 2;
    if (payload.size() - off < static_cast<std::size_t>(name_len) + 24) {
      return false;
    }
    ReplSubStatus s;
    s.name.assign(payload.data() + off, name_len);
    off += name_len;
    s.acked_gtid = ReadU64(payload.data() + off);
    s.lag_batches = ReadU64(payload.data() + off + 8);
    s.staleness_ms = ReadU64(payload.data() + off + 16);
    off += 24;
    out->subs.push_back(std::move(s));
  }
  std::size_t rem = payload.size() - off;
  if (rem == 0) return true;
  if (rem != 9) return false;
  out->epoch = ReadU64(payload.data() + off);
  out->leader = payload[off + 8] != 0;
  out->has_role = true;
  return true;
}

/// Parses a STATS2 response payload into samples. Deliberately generic:
/// every triple is (length-prefixed name, type byte, f64 bits), so
/// metrics added by a NEWER server — unknown names, unknown type bytes —
/// decode fine and callers simply skip names they do not recognize.
inline bool DecodeStats2Payload(std::string_view payload,
                                std::vector<MetricSample>* out) {
  if (payload.size() < 4) return false;
  std::uint32_t n = ReadU32(payload.data());
  std::size_t off = 4;
  out->clear();
  out->reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    if (payload.size() - off < 2) return false;
    std::uint16_t name_len = ReadU16(payload.data() + off);
    off += 2;
    if (payload.size() - off < static_cast<std::size_t>(name_len) + 9) {
      return false;
    }
    MetricSample m;
    m.name.assign(payload.data() + off, name_len);
    off += name_len;
    m.type = static_cast<std::uint8_t>(payload[off]);
    off += 1;
    std::uint64_t bits = ReadU64(payload.data() + off);
    std::memcpy(&m.value, &bits, 8);
    off += 8;
    out->push_back(std::move(m));
  }
  return off == payload.size();
}

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_PROTOCOL_H_
