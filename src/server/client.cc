#include "src/server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rwd {
namespace serve {

KvClient::~KvClient() { Close(); }

bool KvClient::Connect(const std::string& host, std::uint16_t port,
                       int recv_timeout_ms) {
  Close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return false;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                    res->ai_protocol);
  bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
  ::freeaddrinfo(res);
  if (!ok) {
    if (fd >= 0) ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  fd_ = fd;
  return true;
}

void KvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_.clear();
  recv_.clear();
  recv_off_ = 0;
  pending_ = 0;
  stream_open_ = false;
}

void KvClient::QueueGet(std::uint64_t key) {
  EncodeGet(&send_, key);
  ++pending_;
}

void KvClient::QueuePut(std::uint64_t key, std::string_view value) {
  EncodePut(&send_, key, value);
  ++pending_;
}

void KvClient::QueueDel(std::uint64_t key) {
  EncodeDel(&send_, key);
  ++pending_;
}

void KvClient::QueueScan(std::uint64_t from_key, std::uint32_t max_items) {
  EncodeScan(&send_, from_key, max_items);
  ++pending_;
}

void KvClient::QueueMput(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs) {
  EncodeMput(&send_, kvs);
  ++pending_;
}

void KvClient::QueueStats() {
  EncodeStats(&send_);
  ++pending_;
}

void KvClient::QueueStats2() {
  EncodeStats2(&send_);
  ++pending_;
}

void KvClient::QueueReplStatus() {
  EncodeReplStatus(&send_);
  ++pending_;
}

void KvClient::QueueGetRyw(std::uint64_t key, std::uint64_t min_gtid) {
  EncodeGetRyw(&send_, key, min_gtid);
  ++pending_;
}

bool KvClient::SendAll(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;
  }
  return true;
}

bool KvClient::Flush() {
  if (fd_ < 0) return false;
  if (send_.empty()) return true;
  bool ok = SendAll(send_.data(), send_.size());
  if (ok) send_.clear();
  return ok;
}

bool KvClient::FillTo(std::size_t need) {
  while (recv_.size() - recv_off_ < need) {
    char buf[65536];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();  // EOF, timeout or error: the pipeline is unrecoverable
    return false;
  }
  return true;
}

bool KvClient::ReadFrame(Reply* out) {
  if (fd_ < 0) return false;
  if (!FillTo(4)) return false;
  std::uint32_t len = ReadU32(recv_.data() + recv_off_);
  if (len < 1 || len > kMaxFrameBytes) {
    Close();
    return false;
  }
  if (!FillTo(4 + static_cast<std::size_t>(len))) return false;
  const char* p = recv_.data() + recv_off_ + 4;
  out->status = static_cast<Status>(static_cast<std::uint8_t>(*p));
  out->payload.assign(p + 1, len - 1);
  recv_off_ += 4 + len;
  if (recv_off_ == recv_.size()) {
    recv_.clear();
    recv_off_ = 0;
  }
  return true;
}

bool KvClient::ReadReply(Reply* out) {
  if (!ReadFrame(out)) return false;
  if (pending_ > 0) --pending_;
  return true;
}

bool KvClient::RoundTrip(Reply* reply) {
  return Flush() && ReadReply(reply);
}

namespace {

/// Pulls the replication gtid out of a write-ack payload (0 on the wire
/// format of a pre-replication server, whose acks were empty).
std::uint64_t AckGtid(const KvClient::Reply& r) {
  return r.payload.size() >= 8 ? ReadU64(r.payload.data()) : 0;
}

}  // namespace

bool KvClient::Put(std::uint64_t key, std::string_view value,
                   std::uint64_t* gtid_out) {
  if (pending_ != 0) return false;
  QueuePut(key, value);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (gtid_out != nullptr) *gtid_out = AckGtid(r);
  return true;
}

bool KvClient::Get(std::uint64_t key, std::string* value_out) {
  if (pending_ != 0) return false;
  QueueGet(key);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (value_out != nullptr) *value_out = std::move(r.payload);
  return true;
}

bool KvClient::GetRyw(std::uint64_t key, std::uint64_t min_gtid,
                      std::string* value_out) {
  if (pending_ != 0) return false;
  QueueGetRyw(key, min_gtid);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (value_out != nullptr) *value_out = std::move(r.payload);
  return true;
}

bool KvClient::Delete(std::uint64_t key, std::uint64_t* gtid_out) {
  if (pending_ != 0) return false;
  QueueDel(key);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (gtid_out != nullptr) *gtid_out = AckGtid(r);
  return true;
}

bool KvClient::Scan(
    std::uint64_t from_key, std::uint32_t max_items,
    std::vector<std::pair<std::uint64_t, std::string>>* out,
    bool* truncated, std::uint64_t* next_key) {
  if (pending_ != 0) return false;
  QueueScan(from_key, max_items);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeScanPayload(r.payload, out, truncated, next_key);
}

bool KvClient::ScanStreamBegin(std::uint64_t from_key,
                               std::uint32_t max_items) {
  if (pending_ != 0 || stream_open_ || fd_ < 0) return false;
  EncodeScanStream(&send_, from_key, max_items);
  ++pending_;  // the stream counts as one outstanding request
  if (!Flush()) {
    pending_ = 0;
    return false;
  }
  stream_open_ = true;
  return true;
}

bool KvClient::ScanStreamNext(
    std::vector<std::pair<std::uint64_t, std::string>>* out, bool* done) {
  if (!stream_open_) return false;
  Reply r;
  ScanChunk chunk;
  if (!ReadFrame(&r) || r.status != Status::kOk ||
      !DecodeScanChunkPayload(r.payload, &chunk)) {
    // A broken stream is unrecoverable mid-flight: later frames could be
    // chunks or some other reply, so drop the connection cleanly.
    Close();
    return false;
  }
  for (auto& item : chunk.items) out->push_back(std::move(item));
  if (done != nullptr) *done = !chunk.more;
  if (!chunk.more) {
    stream_open_ = false;
    if (pending_ > 0) --pending_;
  }
  return true;
}

bool KvClient::ScanStream(
    std::uint64_t from_key, std::uint32_t max_items,
    std::vector<std::pair<std::uint64_t, std::string>>* out) {
  if (!ScanStreamBegin(from_key, max_items)) return false;
  bool done = false;
  while (!done) {
    if (!ScanStreamNext(out, &done)) return false;
  }
  return true;
}

bool KvClient::MultiPut(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs,
    std::uint64_t* gtid_out) {
  if (pending_ != 0) return false;
  QueueMput(kvs);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (gtid_out != nullptr) *gtid_out = AckGtid(r);
  return true;
}

bool KvClient::Promote() {
  if (pending_ != 0) return false;
  EncodePromote(&send_);
  ++pending_;
  Reply r;
  return RoundTrip(&r) && r.status == Status::kOk;
}

bool KvClient::Stats(StatsReply* out) {
  if (pending_ != 0) return false;
  QueueStats();
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeStatsPayload(r.payload, out);
}

bool KvClient::Stats2(std::vector<MetricSample>* out) {
  if (pending_ != 0) return false;
  QueueStats2();
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeStats2Payload(r.payload, out);
}

bool KvClient::ReplStatus(ReplStatusReply* out) {
  if (pending_ != 0) return false;
  QueueReplStatus();
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeReplStatusPayload(r.payload, out);
}

}  // namespace serve
}  // namespace rwd
