#include "src/server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace rwd {
namespace serve {
namespace {

/// connect(2) with a deadline: non-blocking connect, poll for
/// writability, then read back SO_ERROR. Returns false (socket left for
/// the caller to close) on timeout or connection failure.
bool ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addrlen,
                        int timeout_ms) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return false;
  }
  int rc = ::connect(fd, addr, addrlen);
  if (rc != 0) {
    if (errno != EINPROGRESS) return false;
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) return false;  // timeout or poll error
    int err = 0;
    socklen_t errlen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) != 0 ||
        err != 0) {
      return false;
    }
  }
  return ::fcntl(fd, F_SETFL, flags) == 0;  // back to blocking
}

}  // namespace

KvClient::~KvClient() { Close(); }

bool KvClient::Connect(const std::string& host, std::uint16_t port,
                       int recv_timeout_ms, int connect_timeout_ms) {
  Close();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return false;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                    res->ai_protocol);
  bool ok = fd >= 0 &&
            (connect_timeout_ms > 0
                 ? ConnectWithTimeout(fd, res->ai_addr, res->ai_addrlen,
                                      connect_timeout_ms)
                 : ::connect(fd, res->ai_addr, res->ai_addrlen) == 0);
  ::freeaddrinfo(res);
  if (!ok) {
    if (fd >= 0) ::close(fd);
    return false;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    // Bound sends too: a black-holed peer stops draining its window and
    // send() would otherwise block forever once the buffer fills.
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  fd_ = fd;
  return true;
}

void KvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  send_.clear();
  recv_.clear();
  recv_off_ = 0;
  pending_ = 0;
  stream_open_ = false;
}

void KvClient::QueueGet(std::uint64_t key) {
  EncodeGet(&send_, key);
  ++pending_;
}

void KvClient::QueuePut(std::uint64_t key, std::string_view value) {
  EncodePut(&send_, key, value);
  ++pending_;
}

void KvClient::QueueDel(std::uint64_t key) {
  EncodeDel(&send_, key);
  ++pending_;
}

void KvClient::QueueScan(std::uint64_t from_key, std::uint32_t max_items) {
  EncodeScan(&send_, from_key, max_items);
  ++pending_;
}

void KvClient::QueueMput(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs) {
  EncodeMput(&send_, kvs);
  ++pending_;
}

void KvClient::QueueStats() {
  EncodeStats(&send_);
  ++pending_;
}

void KvClient::QueueStats2() {
  EncodeStats2(&send_);
  ++pending_;
}

void KvClient::QueueReplStatus() {
  EncodeReplStatus(&send_);
  ++pending_;
}

void KvClient::QueueGetRyw(std::uint64_t key, std::uint64_t min_gtid) {
  EncodeGetRyw(&send_, key, min_gtid);
  ++pending_;
}

bool KvClient::SendAll(const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();
    return false;
  }
  return true;
}

bool KvClient::Flush() {
  if (fd_ < 0) return false;
  if (send_.empty()) return true;
  bool ok = SendAll(send_.data(), send_.size());
  if (ok) send_.clear();
  return ok;
}

bool KvClient::FillTo(std::size_t need) {
  while (recv_.size() - recv_off_ < need) {
    char buf[65536];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      recv_.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Close();  // EOF, timeout or error: the pipeline is unrecoverable
    return false;
  }
  return true;
}

bool KvClient::ReadFrame(Reply* out) {
  if (fd_ < 0) return false;
  if (!FillTo(4)) return false;
  std::uint32_t len = ReadU32(recv_.data() + recv_off_);
  if (len < 1 || len > kMaxFrameBytes) {
    Close();
    return false;
  }
  if (!FillTo(4 + static_cast<std::size_t>(len))) return false;
  const char* p = recv_.data() + recv_off_ + 4;
  out->status = static_cast<Status>(static_cast<std::uint8_t>(*p));
  out->payload.assign(p + 1, len - 1);
  recv_off_ += 4 + len;
  if (recv_off_ == recv_.size()) {
    recv_.clear();
    recv_off_ = 0;
  }
  return true;
}

bool KvClient::ReadReply(Reply* out) {
  if (!ReadFrame(out)) return false;
  if (pending_ > 0) --pending_;
  return true;
}

bool KvClient::RoundTrip(Reply* reply) {
  return Flush() && ReadReply(reply);
}

namespace {

/// Pulls the replication gtid out of a write-ack payload (0 on the wire
/// format of a pre-replication server, whose acks were empty).
std::uint64_t AckGtid(const KvClient::Reply& r) {
  return r.payload.size() >= 8 ? ReadU64(r.payload.data()) : 0;
}

}  // namespace

bool KvClient::Put(std::uint64_t key, std::string_view value,
                   std::uint64_t* gtid_out) {
  if (pending_ != 0) return false;
  QueuePut(key, value);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (gtid_out != nullptr) *gtid_out = AckGtid(r);
  return true;
}

bool KvClient::Get(std::uint64_t key, std::string* value_out) {
  if (pending_ != 0) return false;
  QueueGet(key);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (value_out != nullptr) *value_out = std::move(r.payload);
  return true;
}

bool KvClient::GetRyw(std::uint64_t key, std::uint64_t min_gtid,
                      std::string* value_out) {
  if (pending_ != 0) return false;
  QueueGetRyw(key, min_gtid);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (value_out != nullptr) *value_out = std::move(r.payload);
  return true;
}

bool KvClient::Delete(std::uint64_t key, std::uint64_t* gtid_out) {
  if (pending_ != 0) return false;
  QueueDel(key);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (gtid_out != nullptr) *gtid_out = AckGtid(r);
  return true;
}

bool KvClient::Scan(
    std::uint64_t from_key, std::uint32_t max_items,
    std::vector<std::pair<std::uint64_t, std::string>>* out,
    bool* truncated, std::uint64_t* next_key) {
  if (pending_ != 0) return false;
  QueueScan(from_key, max_items);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeScanPayload(r.payload, out, truncated, next_key);
}

bool KvClient::ScanStreamBegin(std::uint64_t from_key,
                               std::uint32_t max_items) {
  if (pending_ != 0 || stream_open_ || fd_ < 0) return false;
  EncodeScanStream(&send_, from_key, max_items);
  ++pending_;  // the stream counts as one outstanding request
  if (!Flush()) {
    pending_ = 0;
    return false;
  }
  stream_open_ = true;
  return true;
}

bool KvClient::ScanStreamNext(
    std::vector<std::pair<std::uint64_t, std::string>>* out, bool* done) {
  if (!stream_open_) return false;
  Reply r;
  ScanChunk chunk;
  if (!ReadFrame(&r) || r.status != Status::kOk ||
      !DecodeScanChunkPayload(r.payload, &chunk)) {
    // A broken stream is unrecoverable mid-flight: later frames could be
    // chunks or some other reply, so drop the connection cleanly.
    Close();
    return false;
  }
  for (auto& item : chunk.items) out->push_back(std::move(item));
  if (done != nullptr) *done = !chunk.more;
  if (!chunk.more) {
    stream_open_ = false;
    if (pending_ > 0) --pending_;
  }
  return true;
}

bool KvClient::ScanStream(
    std::uint64_t from_key, std::uint32_t max_items,
    std::vector<std::pair<std::uint64_t, std::string>>* out) {
  if (!ScanStreamBegin(from_key, max_items)) return false;
  bool done = false;
  while (!done) {
    if (!ScanStreamNext(out, &done)) return false;
  }
  return true;
}

bool KvClient::MultiPut(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs,
    std::uint64_t* gtid_out) {
  if (pending_ != 0) return false;
  QueueMput(kvs);
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  if (gtid_out != nullptr) *gtid_out = AckGtid(r);
  return true;
}

bool KvClient::Promote() {
  if (pending_ != 0) return false;
  EncodePromote(&send_);
  ++pending_;
  Reply r;
  return RoundTrip(&r) && r.status == Status::kOk;
}

bool KvClient::Stats(StatsReply* out) {
  if (pending_ != 0) return false;
  QueueStats();
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeStatsPayload(r.payload, out);
}

bool KvClient::Stats2(std::vector<MetricSample>* out) {
  if (pending_ != 0) return false;
  QueueStats2();
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeStats2Payload(r.payload, out);
}

bool KvClient::ReplStatus(ReplStatusReply* out) {
  if (pending_ != 0) return false;
  QueueReplStatus();
  Reply r;
  if (!RoundTrip(&r) || r.status != Status::kOk) return false;
  return DecodeReplStatusPayload(r.payload, out);
}

// --- FailoverClient ---

namespace {

/// The epoch trailer of a guard-era write ack ([gtid:u64][epoch:u64]);
/// 0 against a pre-guard server whose acks carry only the gtid.
std::uint64_t AckEpoch(const KvClient::Reply& r) {
  return r.payload.size() >= 16 ? ReadU64(r.payload.data() + 8) : 0;
}

/// Splits "host:port"; false (and untouched outputs) on a bad spec.
bool SplitEndpoint(const std::string& spec, std::string* host,
                   std::uint16_t* port) {
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  std::uint32_t p = 0;
  for (std::size_t i = colon + 1; i < spec.size(); ++i) {
    if (spec[i] < '0' || spec[i] > '9') return false;
    p = p * 10 + static_cast<std::uint32_t>(spec[i] - '0');
    if (p > 0xffff) return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<std::uint16_t>(p);
  return p != 0;
}

}  // namespace

FailoverClient::FailoverClient(Config config)
    : config_(std::move(config)) {
  if (!config_.endpoints.empty()) endpoint_ = config_.endpoints.front();
  rr_ = 1;
}

void FailoverClient::Close() { client_.Close(); }

std::uint32_t FailoverClient::BackoffMs(std::uint32_t attempt) const {
  std::uint32_t backoff = std::min(
      config_.backoff_cap_ms,
      config_.backoff_base_ms << std::min<std::uint32_t>(attempt, 10));
  backoff = std::max<std::uint32_t>(backoff, 1);
  std::uint64_t x =
      config_.jitter_seed ^ (0x9E3779B97F4A7C15ull * (attempt + 1));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return backoff + static_cast<std::uint32_t>(x % (backoff / 2 + 1));
}

bool FailoverClient::EnsureConnected() {
  if (client_.connected()) return true;
  std::string host;
  std::uint16_t port = 0;
  if (!SplitEndpoint(endpoint_, &host, &port)) return false;
  return client_.Connect(host, port, config_.timeout_ms,
                         config_.timeout_ms);
}

FailoverClient::Outcome FailoverClient::Classify(
    const KvClient::Reply& r) {
  last_status_ = r.status;
  if (r.status == Status::kOk) return Outcome::kDone;
  if (r.status != Status::kNotLeader) return Outcome::kFailed;
  // Fenced node: follow its redirect hint when it knows the leader,
  // otherwise rotate endpoints. The reply frame itself was well-formed,
  // but this connection points at a non-leader — drop it either way.
  NotLeaderHint hint;
  if (DecodeNotLeaderPayload(r.payload, &hint) && hint.has_addr) {
    endpoint_ = hint.host + ":" + std::to_string(hint.port);
    use_hint_ = true;
  } else {
    use_hint_ = false;
    if (!config_.endpoints.empty()) {
      endpoint_ = config_.endpoints[rr_++ % config_.endpoints.size()];
    }
  }
  ++redirects_;
  client_.Close();
  return Outcome::kRedirect;
}

bool FailoverClient::Run(const std::function<Outcome(KvClient&)>& op) {
  for (std::uint32_t attempt = 0; attempt < config_.max_attempts;
       ++attempt) {
    if (attempt > 0) {
      ++retries_;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(BackoffMs(attempt - 1)));
    }
    if (!EnsureConnected()) {
      // Unreachable endpoint: a followed hint falls back to the
      // configured set, otherwise rotate.
      use_hint_ = false;
      if (!config_.endpoints.empty()) {
        endpoint_ = config_.endpoints[rr_++ % config_.endpoints.size()];
      }
      continue;
    }
    Outcome o = op(client_);
    switch (o) {
      case Outcome::kDone:
        return true;
      case Outcome::kFailed:
        return false;
      case Outcome::kTransport:
        // The op closed the client (send/recv failure). Rotate unless we
        // were aimed by a fresh hint, which deserves one direct retry.
        if (!use_hint_ && !config_.endpoints.empty()) {
          endpoint_ = config_.endpoints[rr_++ % config_.endpoints.size()];
        }
        use_hint_ = false;
        break;
      case Outcome::kRedirect:
        break;  // Classify already re-aimed endpoint_
    }
  }
  return false;
}

bool FailoverClient::Put(std::uint64_t key, std::string_view value,
                         std::uint64_t* gtid_out) {
  return Run([&](KvClient& c) {
    KvClient::Reply r;
    c.QueuePut(key, value);
    if (!c.Flush() || !c.ReadReply(&r)) return Outcome::kTransport;
    Outcome o = Classify(r);
    if (o == Outcome::kDone) {
      if (gtid_out != nullptr) *gtid_out = AckGtid(r);
      last_epoch_ = AckEpoch(r);
    }
    return o;
  });
}

bool FailoverClient::Get(std::uint64_t key, std::string* value_out) {
  return Run([&](KvClient& c) {
    KvClient::Reply r;
    c.QueueGet(key);
    if (!c.Flush() || !c.ReadReply(&r)) return Outcome::kTransport;
    Outcome o = Classify(r);
    if (o == Outcome::kDone && value_out != nullptr) {
      *value_out = std::move(r.payload);
    }
    return o;
  });
}

bool FailoverClient::GetRyw(std::uint64_t key, std::uint64_t min_gtid,
                            std::string* value_out) {
  return Run([&](KvClient& c) {
    KvClient::Reply r;
    c.QueueGetRyw(key, min_gtid);
    if (!c.Flush() || !c.ReadReply(&r)) return Outcome::kTransport;
    Outcome o = Classify(r);
    if (o == Outcome::kDone && value_out != nullptr) {
      *value_out = std::move(r.payload);
    }
    return o;
  });
}

bool FailoverClient::Delete(std::uint64_t key, std::uint64_t* gtid_out) {
  return Run([&](KvClient& c) {
    KvClient::Reply r;
    c.QueueDel(key);
    if (!c.Flush() || !c.ReadReply(&r)) return Outcome::kTransport;
    Outcome o = Classify(r);
    if (o == Outcome::kDone) {
      if (gtid_out != nullptr) *gtid_out = AckGtid(r);
      last_epoch_ = AckEpoch(r);
    }
    return o;
  });
}

}  // namespace serve
}  // namespace rwd
