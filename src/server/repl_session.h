// ReplSession: the leader-side half of one TCP replication stream. When a
// connection sends REPL_SUBSCRIBE, the epoll worker detaches its fd and
// hands it here; a dedicated thread then answers the subscribe (stream
// resume or full snapshot first), registers a subscriber cursor on the
// ReplicationLog, and pumps a Shipper whose sink is a socket send of
// REPL_BATCH frames. Follower REPL_ACK frames are received on a second,
// blocking thread and advance the cursor the moment they arrive — semi-sync
// write acks never wait out a shipper poll interval.
//
// A dedicated blocking thread per follower is the right shape: follower
// counts are small (1..a few), the stream is long-lived and mostly
// throughput-bound, and it keeps the epoll workers' request/response state
// machine free of half-duplex streaming cases.
#ifndef REWIND_SERVER_REPL_SESSION_H_
#define REWIND_SERVER_REPL_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "src/kv/kv_store.h"
#include "src/repl/guard.h"
#include "src/repl/replication_log.h"
#include "src/repl/shipper.h"

namespace rwd {
namespace serve {

class ReplSession {
 public:
  /// Takes ownership of `fd`. `start_after` is the follower's applied
  /// gtid from its subscribe frame (kReplSubscribeSnapshot forces a full
  /// resync); `pre_out` is unsent reply residue for requests pipelined
  /// BEFORE the subscribe, `pre_in` any bytes that arrived after it
  /// (early acks) — both are honoured before streaming. With a guard
  /// attached (RewindGuard), `follower_epoch` is the epoch the follower
  /// presented: a subscriber from a HIGHER epoch is refused with
  /// kNotLeader (this node is the stale one), and the stream carries
  /// lease heartbeats while this node leads.
  ReplSession(KvStore* store, repl::ReplicationLog* log, int fd,
              std::uint64_t start_after, std::string pre_out,
              std::string pre_in, repl::RewindGuard* guard = nullptr,
              std::uint64_t follower_epoch = 0);
  ~ReplSession();

  ReplSession(const ReplSession&) = delete;
  ReplSession& operator=(const ReplSession&) = delete;

  void Start();
  /// Idempotent: wakes the stream (socket shutdown + log nudge) and joins.
  void Stop();

  /// True once the streaming thread exited (the session can be reaped).
  bool done() const { return done_.load(std::memory_order_acquire); }

 private:
  void Run();
  bool SendAll(const char* data, std::size_t n);
  /// Sends the full-store snapshot as chunked kReplSnapshot frames.
  /// Returns the stream resume position, or ~0 on a send failure.
  std::uint64_t SendSnapshot();
  /// Ack-receiver thread body: blocking recv of kReplAck frames, each one
  /// advancing the subscriber cursor. Sets `peer_gone_` (and nudges the
  /// log so the shipper notices) when the peer closes or breaks protocol.
  void RecvAcks();

  KvStore* store_;
  repl::ReplicationLog* log_;
  int fd_;
  std::uint64_t start_after_;
  repl::RewindGuard* guard_;
  std::uint64_t follower_epoch_;
  std::string pre_out_;
  std::string in_;  ///< unparsed inbound bytes (ack frames)
  std::uint64_t sub_id_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> peer_gone_{false};
  std::atomic<bool> done_{false};
  std::thread thread_;
  std::thread ack_thread_;
};

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_REPL_SESSION_H_
