#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "src/obs/metrics.h"
#include "src/repl/applier.h"
#include "src/repl/guard.h"
#include "src/repl/replication_log.h"
#include "src/server/repl_session.h"

namespace rwd {
namespace serve {
namespace {

// epoll user-data ids below the first connection id.
constexpr std::uint64_t kIdWake = 0;
constexpr std::uint64_t kIdListen = 1;

/// Read-path server op latencies (request execution through reply
/// serialization). Write ops are timed in batcher.cc, where the covering
/// batch's fence — the durability point — is known.
struct ServerMetrics {
  obs::Registry& reg = obs::Registry::Get();
  obs::Histogram* op_get = reg.GetHistogram("server.op.get");
  obs::Histogram* op_scan = reg.GetHistogram("server.op.scan");
  /// SCAN_STREAM: request arrival to the first chunk hitting the out
  /// buffer (what a streaming consumer waits for), and to the final chunk.
  obs::Histogram* op_scan_stream_first =
      reg.GetHistogram("server.op.scan_stream.first_chunk");
  obs::Histogram* op_scan_stream =
      reg.GetHistogram("server.op.scan_stream");
};

ServerMetrics& SrvMetrics() {
  static ServerMetrics m;
  return m;
}

bool ValidWriteKey(std::uint64_t key) {
  return key != 0 && key != ~std::uint64_t{0};
}

/// STATS v2 payload: registry metrics (histograms pre-expanded into
/// .count/.p50_us/.p90_us/.p99_us/.p999_us/.mean_us/.max_us samples) plus
/// the v1 counters republished under stable dotted names. A generic
/// scraper decodes it without knowing kStatsWords or any metric name.
/// `rlog`, when attached, contributes per-subscriber follower health.
void AppendStats2Payload(const StatsReply& stats, repl::ReplicationLog* rlog,
                         std::string* out) {
  std::vector<MetricSample> samples;
  auto counter = [&samples](const char* name, std::uint64_t v) {
    samples.push_back({name,
                       static_cast<std::uint8_t>(obs::SampleType::kCounter),
                       static_cast<double>(v)});
  };
  auto gauge = [&samples](const char* name, std::uint64_t v) {
    samples.push_back({name,
                       static_cast<std::uint8_t>(obs::SampleType::kGauge),
                       static_cast<double>(v)});
  };
  gauge("server.keys", stats.keys);
  counter("server.acked_writes", stats.acked_writes);
  counter("server.batches", stats.batches);
  counter("server.batched_writes", stats.batched_writes);
  counter("server.gets", stats.gets);
  counter("server.scans", stats.scans);
  counter("server.connections", stats.connections);
  gauge("server.shards", stats.shards);
  gauge("server.batcher_depth", stats.batcher_depth);
  gauge("server.prepared_txns", stats.prepared_txns);
  gauge("server.heap_used_bytes", stats.heap_used_bytes);
  gauge("server.heap_high_watermark", stats.heap_high_watermark);
  counter("kv.optimistic_hits", stats.optimistic_hits);
  counter("kv.optimistic_retries", stats.optimistic_retries);
  counter("kv.read_latch_acquires", stats.read_latch_acquires);
  counter("kv.starvation_fallbacks", stats.starvation_fallbacks);
  counter("txn.parallel_prepares", stats.parallel_prepares);
  gauge("txn.max_prepare_fanout", stats.max_prepare_fanout);
  counter("txn.decision_log_truncations", stats.decision_log_truncations);
  counter("kv.parallel_applies", stats.parallel_applies);
  counter("txn.presumed_commits", stats.presumed_commits);
  counter("server.scan_chunks", stats.scan_chunks);
  counter("server.scan_stream_bytes", stats.scan_stream_bytes);
  counter("kv.scan_optimistic_hits", stats.scan_optimistic_hits);
  counter("kv.scan_optimistic_retries", stats.scan_optimistic_retries);
  if (rlog != nullptr) {
    // Per-follower health: one sample triple per subscriber per column,
    // named by the follower so dashboards need no extra protocol op.
    for (const repl::ReplicationLog::SubscriberInfo& sub :
         rlog->Subscribers()) {
      std::string prefix = "repl.sub." + sub.name;
      gauge((prefix + ".acked_gtid").c_str(), sub.acked);
      gauge((prefix + ".lag_batches").c_str(), sub.lag_batches);
      gauge((prefix + ".staleness_ms").c_str(), sub.staleness_ms);
    }
  }
  for (const obs::Sample& s : obs::Registry::Get().Snapshot()) {
    samples.push_back(
        {s.name, static_cast<std::uint8_t>(s.type), s.value});
  }
  AppendU32(out, static_cast<std::uint32_t>(samples.size()));
  for (const MetricSample& m : samples) AppendMetricSample(out, m);
}

/// One parsed request frame, queued per connection in arrival order.
struct Request {
  Op op = Op::kGet;
  bool bad = false;  ///< malformed payload or invalid write key
  std::uint64_t key = 0;
  std::uint32_t max_items = 0;
  std::uint64_t gtid = 0;  ///< GET_RYW read-your-writes token
  std::string value;
  std::vector<std::pair<std::uint64_t, std::string>> kvs;
};

}  // namespace

struct KvServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string in;
  std::size_t in_off = 0;
  std::string out;
  std::size_t out_off = 0;
  std::deque<Request> reqs;
  /// Writes submitted to the batcher whose acks are still pending; reads
  /// (and responses generally) are barriered behind them so replies go out
  /// in request order and a pipelined read sees the connection's writes.
  std::uint32_t unacked = 0;
  bool want_write = false;     ///< out buffer has unsent residue
  std::uint32_t interest = 0;  ///< epoll event mask currently registered
  /// Set by Drive on REPL_SUBSCRIBE (once the unacked barrier drained):
  /// the caller must hand this connection to DetachRepl instead of
  /// flushing it.
  bool repl_detach = false;
  std::uint64_t repl_start = 0;  ///< the follower's applied gtid
  std::uint64_t repl_epoch = 0;  ///< the follower's epoch (0 = pre-guard)
  // --- SCAN_STREAM state (one stream at a time per connection; later
  // requests queue behind it, preserving reply order) ---
  bool stream_active = false;
  std::uint64_t stream_next = 0;       ///< first key of the next chunk
  std::uint64_t stream_remaining = 0;  ///< items still owed to the client
  std::uint64_t stream_t0 = 0;         ///< request arrival (ns, if timed)
  bool stream_timed = false;
  bool stream_first_sent = false;
};

struct KvServer::Worker {
  std::uint32_t idx = 0;
  int epfd = -1;
  int evfd = -1;
  std::thread thread;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  // Inbox: filled by the acceptor and the batcher thread, drained by this
  // worker after an eventfd wake. All other Conn state is worker-private.
  std::mutex mu;
  std::vector<int> inbox_fds;
  std::vector<WriteCompletion> inbox_completions;
};

KvServer::KvServer(KvStore* store, const ServerConfig& config)
    : store_(store), config_(config) {}

KvServer::~KvServer() { Stop(); }

bool KvServer::Start() {
  if (started_) return true;
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  std::uint32_t n = std::max<std::uint32_t>(config_.workers, 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->idx = i;
    w->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    w->evfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kIdWake;
    ::epoll_ctl(w->epfd, EPOLL_CTL_ADD, w->evfd, &ev);
    workers_.push_back(std::move(w));
  }
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.u64 = kIdListen;
  ::epoll_ctl(workers_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &lev);

  batcher_ = std::make_unique<GroupCommitBatcher>(
      store_, config_.batch_window_us, config_.max_batch_queue_ops,
      [this](std::uint32_t worker, std::vector<WriteCompletion> completions) {
        Worker& w = *workers_[worker];
        {
          std::lock_guard<std::mutex> lock(w.mu);
          for (const WriteCompletion& c : completions) {
            w.inbox_completions.push_back(c);
          }
        }
        WakeWorker(w);
      },
      [this] {
        for (auto& w : workers_) WakeWorker(*w);
      },
      config_.slow_op_threshold_us, config_.sync_repl,
      config_.sync_repl_timeout_ms, config_.adaptive_batch_window,
      config_.batch_window_cap_us, config_.guard);
  batcher_->Start();
  read_only_.store(config_.read_only, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  for (auto& w : workers_) {
    std::uint32_t idx = w->idx;
    w->thread = std::thread([this, idx] { WorkerLoop(idx); });
  }
  started_ = true;
  return true;
}

void KvServer::Stop() {
  if (!started_) return;
  // Commit and ack everything already queued while the workers are still
  // alive to deliver the final completions, then wind the workers down.
  batcher_->Stop();
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) WakeWorker(*w);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  for (auto& w : workers_) {
    // Accepted fds the worker never adopted (e.g. handed over just as it
    // exited, or on the crash path which skips the final inbox drain)
    // would otherwise leak.
    std::lock_guard<std::mutex> lock(w->mu);
    for (int fd : w->inbox_fds) ::close(fd);
    w->inbox_fds.clear();
    w->inbox_completions.clear();
    ::close(w->evfd);
    ::close(w->epfd);
  }
  workers_.clear();
  {
    // After the batcher: a semi-sync drain may still be waiting on these
    // sessions' acks, and their Unsubscribe releases it either way.
    std::lock_guard<std::mutex> lock(repl_mu_);
    for (auto& s : repl_sessions_) s->Stop();
    repl_sessions_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
}

void KvServer::WakeWorker(Worker& w) {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(w.evfd, &one, sizeof(one));
}

void KvServer::WorkerLoop(std::uint32_t idx) {
  Worker& w = *workers_[idx];
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire) && !crashed()) {
    int n = ::epoll_wait(w.epfd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t id = events[i].data.u64;
      if (id == kIdWake) {
        std::uint64_t junk;
        while (::read(w.evfd, &junk, sizeof(junk)) == sizeof(junk)) {
        }
        HandleInbox(w);
      } else if (id == kIdListen) {
        AcceptReady(w);
      } else {
        auto it = w.conns.find(id);
        if (it == w.conns.end()) continue;
        Conn& c = *it->second;
        bool ok = (events[i].events & (EPOLLERR | EPOLLHUP)) == 0;
        if (ok && (events[i].events & EPOLLIN)) ok = HandleReadable(w, c);
        if (ok && (events[i].events & EPOLLOUT)) {
          ok = TryFlush(w, c);
          // A drained out buffer hands control back to an active scan
          // stream: produce the next chunks, then flush what they added.
          if (ok && c.stream_active) {
            Drive(w, c);
            ok = TryFlush(w, c);
          }
        }
        if (!ok) CloseConn(w, c);
      }
    }
  }
  // Wind-down: deliver the batcher's final completions first (a graceful
  // Stop() commits and acks everything already queued), best-effort flush,
  // then drop every connection so blocked clients observe EOF. After a
  // simulated power failure nothing is delivered — a crashed server acks
  // nothing.
  if (!crashed()) HandleInbox(w);
  for (auto& [id, conn] : w.conns) {
    if (!crashed()) TryFlush(w, *conn);
    ::close(conn->fd);
  }
  w.conns.clear();
}

void KvServer::HandleInbox(Worker& w) {
  std::vector<int> fds;
  std::vector<WriteCompletion> completions;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    fds.swap(w.inbox_fds);
    completions.swap(w.inbox_completions);
  }
  for (int fd : fds) AdoptConn(w, fd);
  // Append every ack frame first, then drive/flush each touched
  // connection once — a group commit of N pipelined writes costs one
  // send(), not N.
  std::vector<Conn*> touched;
  for (const WriteCompletion& comp : completions) {
    auto it = w.conns.find(comp.conn_id);
    if (it == w.conns.end()) continue;  // connection closed while in flight
    Conn& c = *it->second;
    std::size_t at =
        BeginFrame(&c.out, static_cast<std::uint8_t>(comp.status));
    if (comp.status == Status::kNotLeader && config_.guard != nullptr) {
      // A batch fenced mid-commit (the guard lost the lease while the
      // semi-sync wait was pending): redirect the writer instead of an
      // ack payload. Counted by the batcher, not here.
      AppendNotLeaderPayload(&c.out, config_.guard->epoch(),
                             config_.guard->leader_hint());
    } else {
      // Write acks carry the covering batch's replication gtid (0 without
      // replication) — the client's read-your-writes token for follower
      // reads — plus the acking leader's epoch since PR 10.
      AppendU64(&c.out, comp.gtid);
      AppendU64(&c.out,
                config_.guard != nullptr ? config_.guard->epoch() : 0);
    }
    EndFrame(&c.out, at);
    if (c.unacked > 0) --c.unacked;
    if (std::find(touched.begin(), touched.end(), &c) == touched.end()) {
      touched.push_back(&c);
    }
  }
  for (Conn* c : touched) {
    Drive(w, *c);
    if (c->repl_detach) {
      DetachRepl(w, *c);  // frees the Conn, keeps the fd
      continue;
    }
    if (!TryFlush(w, *c)) CloseConn(w, *c);
  }
}

void KvServer::AcceptReady(Worker& w0) {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) break;
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::uint32_t target = static_cast<std::uint32_t>(
        rr_next_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
    if (target == w0.idx) {
      AdoptConn(w0, fd);
    } else {
      Worker& t = *workers_[target];
      {
        std::lock_guard<std::mutex> lock(t.mu);
        t.inbox_fds.push_back(fd);
      }
      WakeWorker(t);
    }
  }
}

void KvServer::AdoptConn(Worker& w, int fd) {
  auto c = std::make_unique<Conn>();
  c->fd = fd;
  c->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  c->interest = EPOLLIN;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c->id;
  if (::epoll_ctl(w.epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  w.conns.emplace(c->id, std::move(c));
}

bool KvServer::HandleReadable(Worker& w, Conn& c) {
  char buf[65536];
  for (;;) {
    ssize_t r = ::read(c.fd, buf, sizeof(buf));
    if (r > 0) {
      c.in.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (!ParseFrames(c)) return false;  // protocol error
  Drive(w, c);
  if (c.repl_detach) {
    DetachRepl(w, c);  // frees the Conn, keeps the fd
    return true;
  }
  return TryFlush(w, c);
}

bool KvServer::ParseFrames(Conn& c) {
  for (;;) {
    std::size_t avail = c.in.size() - c.in_off;
    if (avail < 4) break;
    std::uint32_t len = ReadU32(c.in.data() + c.in_off);
    if (len < 1 || len > kMaxFrameBytes) return false;
    if (avail < 4 + static_cast<std::size_t>(len)) break;
    const char* p = c.in.data() + c.in_off + 4;
    const char* q = p + 1;
    std::uint32_t body = len - 1;
    c.in_off += 4 + len;
    Request req;
    switch (static_cast<Op>(static_cast<std::uint8_t>(*p))) {
      case Op::kGet:
      case Op::kDel:
        req.op = static_cast<Op>(static_cast<std::uint8_t>(*p));
        if (body != 8) {
          req.bad = true;
        } else {
          req.key = ReadU64(q);
          if (req.op == Op::kDel && !ValidWriteKey(req.key)) req.bad = true;
        }
        break;
      case Op::kPut:
        req.op = Op::kPut;
        if (body < 8) {
          req.bad = true;
        } else {
          req.key = ReadU64(q);
          req.value.assign(q + 8, body - 8);
          if (!ValidWriteKey(req.key)) req.bad = true;
        }
        break;
      case Op::kScan:
      case Op::kScanStream:
        req.op = static_cast<Op>(static_cast<std::uint8_t>(*p));
        if (body != 12) {
          req.bad = true;
        } else {
          req.key = ReadU64(q);
          req.max_items = ReadU32(q + 8);
        }
        break;
      case Op::kMput: {
        req.op = Op::kMput;
        if (body < 4) {
          req.bad = true;
          break;
        }
        std::uint32_t count = ReadU32(q);
        std::size_t off = 4;
        for (std::uint32_t i = 0; i < count; ++i) {
          if (body - off < 12) {
            req.bad = true;
            break;
          }
          std::uint64_t key = ReadU64(q + off);
          std::uint32_t vlen = ReadU32(q + off + 8);
          off += 12;
          if (body - off < vlen) {
            req.bad = true;
            break;
          }
          if (!ValidWriteKey(key)) req.bad = true;
          req.kvs.emplace_back(key, std::string(q + off, vlen));
          off += vlen;
        }
        if (!req.bad && off != body) req.bad = true;
        break;
      }
      case Op::kStats:
      case Op::kStats2:
      case Op::kPromote:
      case Op::kReplStatus:
        req.op = static_cast<Op>(static_cast<std::uint8_t>(*p));
        if (body != 0) req.bad = true;
        break;
      case Op::kGetRyw:
        req.op = Op::kGetRyw;
        if (body != 16) {
          req.bad = true;
        } else {
          req.key = ReadU64(q);
          req.gtid = ReadU64(q + 8);
        }
        break;
      case Op::kReplSubscribe:
        req.op = Op::kReplSubscribe;
        // 8 bytes pre-guard, 16 with the subscriber's epoch (PR 10).
        if (body != 8 && body != 16) {
          req.bad = true;
        } else {
          req.key = ReadU64(q);  // the follower's applied gtid
          if (body == 16) req.gtid = ReadU64(q + 8);  // follower's epoch
        }
        break;
      default:
        // Unknown opcode — and kReplBatch/kReplSnapshot/kReplAck, which
        // never flow toward a serving socket: drop the connection.
        return false;
    }
    c.reqs.push_back(std::move(req));
  }
  if (c.in_off == c.in.size()) {
    c.in.clear();
    c.in_off = 0;
  } else if (c.in_off > (1u << 20)) {
    c.in.erase(0, c.in_off);
    c.in_off = 0;
  }
  return true;
}

void KvServer::Drive(Worker& w, Conn& c) {
  for (;;) {
    // An active stream owns the reply channel: its chunks go out before
    // any later request's reply (reply order == request order). The pump
    // parks on the out-buffer cap; EPOLLOUT drains and re-enters here.
    if (c.stream_active) {
      PumpScanStream(w, c);
      if (c.stream_active) return;
      continue;
    }
    if (c.reqs.empty()) return;
    Request& req = c.reqs.front();
    // Every response — including errors and reads — waits behind the
    // connection's unacked writes, so replies keep request order and a
    // pipelined read observes the writes issued before it.
    bool is_write = !req.bad && (req.op == Op::kPut || req.op == Op::kDel ||
                                 req.op == Op::kMput);
    if (is_write && read_only_.load(std::memory_order_acquire)) {
      // Follower role: refuse the write, but never jump ahead of acks
      // still in flight (a promotion race could have let some through).
      if (c.unacked > 0) return;
      std::size_t at = BeginFrame(
          &c.out, static_cast<std::uint8_t>(Status::kNotLeader));
      if (config_.guard != nullptr) {
        // Redirect hint: the epoch we know of plus the leader's address
        // (learned from its heartbeats), so the client can follow the
        // topology instead of polling every endpoint.
        AppendNotLeaderPayload(&c.out, config_.guard->epoch(),
                               config_.guard->leader_hint());
        config_.guard->CountFencedWrites(1);
      }
      EndFrame(&c.out, at);
      c.reqs.pop_front();
      continue;
    }
    if (!is_write) {
      if (c.unacked > 0) return;  // parked until the acks drain
      if (req.bad) {
        std::size_t at = BeginFrame(
            &c.out, static_cast<std::uint8_t>(Status::kBadRequest));
        EndFrame(&c.out, at);
      } else if (req.op == Op::kGet || req.op == Op::kGetRyw) {
        // GET_RYW on a follower first waits for the applier to reach the
        // token (on a leader the token is trivially satisfied — an acked
        // write is already local). The wait blocks this epoll worker for
        // up to ryw_wait_ms; acceptable for the follower read topology,
        // where RYW reads are rare relative to plain reads.
        if (req.op == Op::kGetRyw && req.gtid != 0 &&
            config_.applier != nullptr &&
            !config_.applier->WaitForApplied(req.gtid, config_.ryw_wait_ms)) {
          std::size_t at = BeginFrame(
              &c.out, static_cast<std::uint8_t>(Status::kServerError));
          EndFrame(&c.out, at);
          c.reqs.pop_front();
          continue;
        }
        gets_.fetch_add(1, std::memory_order_relaxed);
        // One clock pair per server GET (not per KvStore::Get — clocks in
        // the latch-free read path itself would halve its throughput).
        bool timed = obs::RecordingEnabled();
        std::uint64_t t0 = timed ? obs::NowNs() : 0;
        std::string value;
        bool found = store_->Get(req.key, &value);
        std::size_t at = BeginFrame(
            &c.out, static_cast<std::uint8_t>(found ? Status::kOk
                                                    : Status::kNotFound));
        if (found) c.out.append(value);
        EndFrame(&c.out, at);
        if (timed) {
          std::uint64_t dur = obs::NowNs() - t0;
          SrvMetrics().op_get->Record(dur);
          obs::SlowOpLog("GET", req.key, dur, config_.slow_op_threshold_us);
        }
      } else if (req.op == Op::kScan) {
        scans_.fetch_add(1, std::memory_order_relaxed);
        bool timed = obs::RecordingEnabled();
        std::uint64_t t0 = timed ? obs::NowNs() : 0;
        std::uint32_t max_items =
            std::min(req.max_items, config_.max_scan_items);
        std::string items;
        std::uint32_t count = 0;
        bool byte_capped = false;
        KvStore::ScanPageResult page = store_->ScanPage(
            req.key, max_items,
            [&](std::uint64_t key, std::string_view value) {
              // Byte budget: the whole frame must stay under
              // kMaxFrameBytes or the client (rightly) drops the
              // connection; large-value scans truncate instead.
              if (items.size() + 12 + value.size() > kMaxScanReplyBytes) {
                byte_capped = true;
                return false;
              }
              AppendU64(&items, key);
              AppendU32(&items, static_cast<std::uint32_t>(value.size()));
              items.append(value);
              ++count;
              return true;
            });
        // Truncated = the client got fewer items than it asked for while
        // the store had more: the byte cap fired mid-result, or the
        // server-side item cap undercut the request. next_key (which
        // ScanPage points at the first undelivered item) lets the client
        // resume instead of silently believing the scan was complete.
        bool truncated =
            byte_capped || (page.more && req.max_items > max_items);
        std::size_t at =
            BeginFrame(&c.out, static_cast<std::uint8_t>(Status::kOk));
        AppendU32(&c.out, count);
        c.out.append(items);
        c.out.push_back(truncated ? 1 : 0);
        AppendU64(&c.out, truncated ? page.next_key : 0);
        EndFrame(&c.out, at);
        if (timed) {
          std::uint64_t dur = obs::NowNs() - t0;
          SrvMetrics().op_scan->Record(dur);
          obs::SlowOpLog("SCAN", req.key, dur, config_.slow_op_threshold_us);
        }
      } else if (req.op == Op::kScanStream) {
        // Arm the stream and let the loop head pump it: chunks are
        // produced straight into the out buffer, so nothing is buffered
        // beyond the backpressure cap and no byte-cap truncation exists.
        scans_.fetch_add(1, std::memory_order_relaxed);
        c.stream_active = true;
        c.stream_next = req.key;
        c.stream_remaining = req.max_items;
        c.stream_timed = obs::RecordingEnabled();
        c.stream_t0 = c.stream_timed ? obs::NowNs() : 0;
        c.stream_first_sent = false;
      } else if (req.op == Op::kPromote) {
        // Idempotent: the first promote flips the role and runs the hook
        // (the host stops its follower agent there); repeats just ack.
        Promote();
        std::size_t at =
            BeginFrame(&c.out, static_cast<std::uint8_t>(Status::kOk));
        EndFrame(&c.out, at);
      } else if (req.op == Op::kReplSubscribe) {
        if (store_->replication_log() == nullptr) {
          std::size_t at = BeginFrame(
              &c.out, static_cast<std::uint8_t>(Status::kBadRequest));
          EndFrame(&c.out, at);
        } else {
          // Leave the request/response protocol: the caller detaches this
          // connection into a dedicated ReplSession streaming thread,
          // which sends the subscribe reply itself (it decides stream vs
          // snapshot). Anything pipelined after the subscribe is the
          // stream's business now.
          c.repl_detach = true;
          c.repl_start = req.key;
          c.repl_epoch = req.gtid;
          c.reqs.pop_front();
          return;
        }
      } else if (req.op == Op::kStats2) {
        std::size_t at =
            BeginFrame(&c.out, static_cast<std::uint8_t>(Status::kOk));
        AppendStats2Payload(StatsSnapshot(), store_->replication_log(),
                            &c.out);
        EndFrame(&c.out, at);
      } else if (req.op == Op::kReplStatus) {
        repl::ReplicationLog* rlog = store_->replication_log();
        std::size_t at =
            BeginFrame(&c.out, static_cast<std::uint8_t>(Status::kOk));
        if (rlog == nullptr) {
          AppendU64(&c.out, 0);
          AppendU32(&c.out, 0);
        } else {
          auto subs = rlog->Subscribers();
          AppendU64(&c.out, rlog->last_gtid());
          AppendU32(&c.out, static_cast<std::uint32_t>(subs.size()));
          for (const repl::ReplicationLog::SubscriberInfo& sub : subs) {
            AppendU16(&c.out, static_cast<std::uint16_t>(std::min<
                                  std::size_t>(sub.name.size(), 0xffff)));
            c.out.append(sub.name.data(),
                         std::min<std::size_t>(sub.name.size(), 0xffff));
            AppendU64(&c.out, sub.acked);
            AppendU64(&c.out, sub.lag_batches);
            AppendU64(&c.out, sub.staleness_ms);
          }
        }
        // Guard trailer (PR 10): [epoch:u64][role:u8]. Absent without a
        // guard; pre-guard clients never read past the subscriber list.
        if (config_.guard != nullptr) {
          AppendU64(&c.out, config_.guard->epoch());
          c.out.push_back(config_.guard->is_leader() ? '\1' : '\0');
        }
        EndFrame(&c.out, at);
      } else {  // Op::kStats
        StatsReply stats = StatsSnapshot();
        std::size_t at =
            BeginFrame(&c.out, static_cast<std::uint8_t>(Status::kOk));
        AppendU64(&c.out, stats.keys);
        AppendU64(&c.out, stats.acked_writes);
        AppendU64(&c.out, stats.batches);
        AppendU64(&c.out, stats.batched_writes);
        AppendU64(&c.out, stats.gets);
        AppendU64(&c.out, stats.scans);
        AppendU64(&c.out, stats.connections);
        AppendU64(&c.out, stats.shards);
        AppendU64(&c.out, stats.batcher_depth);
        AppendU64(&c.out, stats.prepared_txns);
        AppendU64(&c.out, stats.heap_mode);
        AppendU64(&c.out, stats.heap_used_bytes);
        AppendU64(&c.out, stats.heap_high_watermark);
        AppendU64(&c.out, stats.optimistic_hits);
        AppendU64(&c.out, stats.optimistic_retries);
        AppendU64(&c.out, stats.read_latch_acquires);
        AppendU64(&c.out, stats.parallel_prepares);
        AppendU64(&c.out, stats.max_prepare_fanout);
        for (std::uint64_t bytes : stats.shard_log_bytes) {
          AppendU64(&c.out, bytes);
        }
        for (std::uint64_t latches : stats.shard_read_latches) {
          AppendU64(&c.out, latches);
        }
        EndFrame(&c.out, at);
      }
      c.reqs.pop_front();
      continue;
    }
    // A logged write: hand it to the group-commit batcher; the ack frame
    // is emitted by HandleInbox once the covering batch has fenced.
    std::vector<KvWriteOp> ops;
    if (req.op == Op::kMput) {
      ops.resize(req.kvs.size());
      for (std::size_t i = 0; i < req.kvs.size(); ++i) {
        ops[i].kind = KvWriteOp::Kind::kPut;
        ops[i].key = req.kvs[i].first;
        ops[i].value = std::move(req.kvs[i].second);
      }
    } else {
      ops.resize(1);
      ops[0].kind = req.op == Op::kPut ? KvWriteOp::Kind::kPut
                                       : KvWriteOp::Kind::kDelete;
      ops[0].key = req.key;
      ops[0].value = std::move(req.value);
    }
    if (batcher_->Submit(w.idx, c.id, req.op, std::move(ops))) {
      ++c.unacked;
      c.reqs.pop_front();
      continue;
    }
    // Batcher stopped (shutdown) or crashed — permanently. Fail the
    // request fast, but never jump ahead of acks still in flight: leave
    // it queued (its payload is already consumed; only the error reply
    // matters) until the acks drain, keeping replies in request order.
    if (c.unacked > 0) return;
    std::size_t at = BeginFrame(
        &c.out, static_cast<std::uint8_t>(Status::kServerError));
    EndFrame(&c.out, at);
    c.reqs.pop_front();
  }
}

void KvServer::PumpScanStream(Worker& w, Conn& c) {
  while (c.stream_active) {
    if (c.out.size() - c.out_off >= config_.max_conn_out_bytes) {
      // Parked on backpressure. UpdateInterest keeps EPOLLOUT subscribed
      // for an active stream, so the drain re-enters Drive -> here even
      // though want_write may already be false after a full flush.
      UpdateInterest(w, c);
      return;
    }
    std::uint64_t item_budget =
        std::min<std::uint64_t>(c.stream_remaining, config_.max_scan_items);
    std::size_t at =
        BeginFrame(&c.out, static_cast<std::uint8_t>(Status::kOk));
    std::size_t flags_at = c.out.size();
    c.out.push_back(0);    // flags — patched below
    AppendU64(&c.out, 0);  // next_key — patched below
    std::size_t n_at = c.out.size();
    AppendU32(&c.out, 0);  // n — patched below
    std::size_t body_start = c.out.size();
    std::uint32_t appended = 0;
    KvStore::ScanPageResult page{0, 0, false};
    if (item_budget > 0) {
      page = store_->ScanPage(
          c.stream_next, item_budget,
          [&](std::uint64_t key, std::string_view value) {
            // Per-chunk byte budget; the first item always fits, so a
            // value wider than the chunk target stretches its chunk
            // instead of wedging the stream.
            if (appended > 0 && c.out.size() - body_start + 12 +
                                        value.size() >
                                    config_.scan_chunk_bytes) {
              return false;
            }
            AppendU64(&c.out, key);
            AppendU32(&c.out, static_cast<std::uint32_t>(value.size()));
            c.out.append(value);
            ++appended;
            return true;
          });
    }
    // page.visited counts the budget-rejected item too (next_key points
    // at it for re-delivery), so the stream's item budget shrinks by the
    // chunk's own appended count, never by `visited`.
    c.stream_remaining -= appended;
    bool more = page.more && c.stream_remaining > 0;
    c.out[flags_at] = static_cast<char>(more ? 1 : 0);
    std::memcpy(&c.out[flags_at + 1], &page.next_key, 8);
    std::memcpy(&c.out[n_at], &appended, 4);
    EndFrame(&c.out, at);
    c.stream_next = page.next_key;
    scan_chunks_.fetch_add(1, std::memory_order_relaxed);
    scan_stream_bytes_.fetch_add(c.out.size() - body_start,
                                 std::memory_order_relaxed);
    if (c.stream_timed && !c.stream_first_sent) {
      SrvMetrics().op_scan_stream_first->Record(obs::NowNs() -
                                                c.stream_t0);
    }
    c.stream_first_sent = true;
    if (!more) {
      c.stream_active = false;
      if (c.stream_timed) {
        std::uint64_t dur = obs::NowNs() - c.stream_t0;
        SrvMetrics().op_scan_stream->Record(dur);
        obs::SlowOpLog("SCAN_STREAM", c.stream_next, dur,
                       config_.slow_op_threshold_us);
      }
    }
  }
}

bool KvServer::TryFlush(Worker& w, Conn& c) {
  while (c.out_off < c.out.size()) {
    ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                       c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
    c.want_write = false;
  } else {
    c.want_write = true;
  }
  UpdateInterest(w, c);
  return true;
}

void KvServer::UpdateInterest(Worker& w, Conn& c) {
  // Backpressure: a connection whose replies are not draining — response
  // bytes parked past the out-buffer cap, or too many writes still waiting
  // for group commit — stops being read instead of buffering unboundedly.
  // Flush progress and ack delivery both land back here, re-subscribing
  // EPOLLIN once the connection is under its caps again.
  bool paused = c.out.size() - c.out_off >= config_.max_conn_out_bytes ||
                c.unacked >= config_.max_unacked_writes;
  // An active scan stream holds EPOLLOUT even when the out buffer is
  // fully flushed (want_write false): writability is what re-enters the
  // pump to produce the next chunks.
  std::uint32_t want =
      (paused ? 0u : EPOLLIN) |
      ((c.want_write || c.stream_active) ? EPOLLOUT : 0u);
  if (want == c.interest) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = c.id;
  if (::epoll_ctl(w.epfd, EPOLL_CTL_MOD, c.fd, &ev) == 0) c.interest = want;
}

void KvServer::CloseConn(Worker& w, Conn& c) {
  ::epoll_ctl(w.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  ::close(c.fd);
  w.conns.erase(c.id);  // frees `c`
}

void KvServer::DetachRepl(Worker& w, Conn& c) {
  ::epoll_ctl(w.epfd, EPOLL_CTL_DEL, c.fd, nullptr);
  int fd = c.fd;
  std::uint64_t start = c.repl_start;
  std::uint64_t follower_epoch = c.repl_epoch;
  // Unsent reply residue (requests pipelined before the subscribe) and
  // unparsed inbound bytes both move into the session.
  std::string pre_out = c.out.substr(c.out_off);
  std::string pre_in = c.in.substr(c.in_off);
  w.conns.erase(c.id);  // frees `c`; the fd lives on in the session
  auto session = std::make_unique<ReplSession>(
      store_, store_->replication_log(), fd, start, std::move(pre_out),
      std::move(pre_in), config_.guard, follower_epoch);
  session->Start();
  std::lock_guard<std::mutex> lock(repl_mu_);
  // Opportunistically reap sessions whose follower already went away.
  for (auto it = repl_sessions_.begin(); it != repl_sessions_.end();) {
    if ((*it)->done()) {
      (*it)->Stop();
      it = repl_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  repl_sessions_.push_back(std::move(session));
}

void KvServer::Promote() {
  // Epoch first, role second: by the time any write can be acked under
  // the new role, the bumped epoch is already durable (guard.cc persists
  // it before returning), so a SIGKILL after the first ack can never
  // resurrect a node claiming the old epoch.
  if (config_.guard != nullptr && !config_.guard->is_leader()) {
    config_.guard->Promote();
  }
  bool was_follower =
      read_only_.exchange(false, std::memory_order_acq_rel);
  if (was_follower && config_.on_promote) config_.on_promote();
}

void KvServer::Demote() {
  read_only_.store(true, std::memory_order_release);
}

StatsReply KvServer::StatsSnapshot() {
  StatsReply r;
  r.keys = store_->Size();
  if (batcher_) {
    r.acked_writes = batcher_->acked_writes();
    r.batches = batcher_->batches();
    r.batched_writes = batcher_->batched_writes();
    r.batcher_depth = batcher_->depth();
  }
  r.gets = gets_.load(std::memory_order_relaxed);
  r.scans = scans_.load(std::memory_order_relaxed);
  r.scan_chunks = scan_chunks_.load(std::memory_order_relaxed);
  r.scan_stream_bytes =
      scan_stream_bytes_.load(std::memory_order_relaxed);
  r.connections = connections_.load(std::memory_order_relaxed);
  r.shards = store_->shards();
  r.prepared_txns = store_->prepared_txns();
  r.heap_mode = store_->file_backed() ? 1 : 0;
  r.heap_used_bytes = store_->heap_live_bytes();
  r.heap_high_watermark = store_->heap_high_watermark();
  r.parallel_prepares = store_->store_txn().parallel_prepares();
  r.max_prepare_fanout = store_->store_txn().max_prepare_fanout();
  r.decision_log_truncations =
      store_->store_txn().decision_log_truncations();
  r.parallel_applies = store_->parallel_applies();
  r.presumed_commits = store_->store_txn().presumed_commits();
  for (std::size_t s = 0; s < store_->shards(); ++s) {
    KvShardStats shard = store_->shard_stats(s);
    r.optimistic_hits += shard.optimistic_hits;
    r.optimistic_retries += shard.optimistic_retries;
    r.read_latch_acquires += shard.read_latch_acquires;
    r.starvation_fallbacks += shard.starvation_fallbacks;
    r.scan_optimistic_hits += shard.scan_optimistic_hits;
    r.scan_optimistic_retries += shard.scan_optimistic_retries;
    r.shard_log_bytes.push_back(store_->ShardLogBytes(s));
    r.shard_read_latches.push_back(shard.read_latch_acquires);
  }
  return r;
}

}  // namespace serve
}  // namespace rwd
