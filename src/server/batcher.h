// RewindServe's group-commit batcher: coalesces logged writes from many
// connections into one KvStore::ApplyBatch (one transaction per involved
// shard, committed through the store's two-phase pipeline as ONE atomic
// decision, + one durability fence) per batch window, so the
// per-transaction logging/ordering cost the paper measures in its
// fence-sensitivity experiments (Fig. 3/10) is paid once per batch instead
// of once per request. Acks are released only after the covering batch has
// committed and fenced — every acked write is durable, and a batch
// spanning shards recovers all-or-nothing.
#ifndef REWIND_SERVER_BATCHER_H_
#define REWIND_SERVER_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/server/protocol.h"

namespace rwd {
namespace serve {

/// Delivered to the owning worker once a submitted write group's batch has
/// committed and fenced (or failed fast at submit time).
struct WriteCompletion {
  std::uint64_t conn_id = 0;
  Op op = Op::kPut;
  Status status = Status::kOk;
  /// Replication gtid covering this write (0 without a ReplicationLog):
  /// the read-your-writes token carried in the ack frame, valid on any
  /// follower whose applied gtid has reached it.
  std::uint64_t gtid = 0;
};

class GroupCommitBatcher {
 public:
  /// Routes a batch's completions to the worker that owns the connections.
  /// Called on the batcher thread; implementations must only enqueue+wake.
  using CompletionSink =
      std::function<void(std::uint32_t worker, std::vector<WriteCompletion>)>;
  /// Called (once, on the batcher thread) when ApplyBatch hits a simulated
  /// power failure; the server uses it to drop every connection.
  using CrashHook = std::function<void()>;

  /// `max_pending_ops` caps the coalescing queue: once that many write ops
  /// are pending the batch thread forfeits the coalescing window and
  /// commits immediately, so the queue drains at full speed instead of
  /// growing while the window timer runs. (The server additionally stops
  /// reading from connections whose own writes are not draining.)
  /// `slow_op_threshold_us` feeds the rate-limited slow-op log: a write
  /// group whose submit-to-ack latency exceeds it is reported to stderr
  /// (0 disables).
  /// `sync_repl` turns on semi-synchronous replication: after a batch
  /// fences, its completions are held until every subscribed follower has
  /// acked the batch's gtid (or `sync_repl_timeout_ms` elapses — the batch
  /// is durable locally either way, so the ack still goes out, and a
  /// `repl.sync_timeouts` counter records the breach). With no
  /// ReplicationLog attached or no subscribers the wait is a no-op.
  GroupCommitBatcher(KvStore* store, std::uint32_t window_us,
                     std::size_t max_pending_ops, CompletionSink sink,
                     CrashHook on_crash,
                     std::uint64_t slow_op_threshold_us = 0,
                     bool sync_repl = false,
                     std::uint32_t sync_repl_timeout_ms = 2000);
  ~GroupCommitBatcher();

  void Start();
  /// Drains and commits everything still queued (unless a crash was
  /// observed), then joins the batch thread. Idempotent.
  void Stop();

  /// Enqueues one logical client write — 1 op for PUT/DEL, n for MPUT — as
  /// an unsplittable group; all of a group's ops land in the same batch, so
  /// an MPUT stays atomic even across shards. Returns false (and takes
  /// nothing) when the batcher is stopped or crashed; the caller fails the
  /// request fast.
  bool Submit(std::uint32_t worker, std::uint64_t conn_id, Op op,
              std::vector<KvWriteOp> ops);

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  std::uint64_t batches() const { return batches_.load(); }
  std::uint64_t batched_writes() const { return batched_writes_.load(); }
  std::uint64_t acked_writes() const { return acked_writes_.load(); }
  /// Write ops queued or mid-commit, not yet acked (the STATS gauge).
  std::uint64_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  /// One submitted write group: `count` ops starting at `first` in the
  /// pending op vector, acked as a unit.
  struct Group {
    std::uint32_t worker;
    std::uint64_t conn_id;
    Op op;
    std::size_t first;
    std::size_t count;
    /// Submit timestamp for the write-latency histograms (0 while
    /// recording is paused — then nothing is recorded at commit either).
    std::uint64_t submit_ns;
  };

  void Loop();
  /// Applies one swapped-out batch and dispatches its completions.
  /// Returns false when a simulated crash fired mid-batch.
  bool CommitBatch(std::vector<KvWriteOp>& ops, std::vector<Group>& groups);

  KvStore* store_;
  std::uint32_t window_us_;
  std::size_t max_pending_ops_;
  CompletionSink sink_;
  CrashHook on_crash_;
  std::uint64_t slow_op_threshold_us_;
  bool sync_repl_;
  std::uint32_t sync_repl_timeout_ms_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<KvWriteOp> pending_ops_;
  std::vector<Group> pending_groups_;
  bool stop_ = false;

  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> depth_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_writes_{0};
  std::atomic<std::uint64_t> acked_writes_{0};
  std::thread thread_;
};

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_BATCHER_H_
