// RewindServe's group-commit batcher: coalesces logged writes from many
// connections into one KvStore::ApplyBatch (one transaction per involved
// shard, committed through the store's two-phase pipeline as ONE atomic
// decision, + one durability fence) per batch window, so the
// per-transaction logging/ordering cost the paper measures in its
// fence-sensitivity experiments (Fig. 3/10) is paid once per batch instead
// of once per request. Acks are released only after the covering batch has
// committed and fenced — every acked write is durable, and a batch
// spanning shards recovers all-or-nothing.
//
// The commit is PIPELINED (two stages, one thread each):
//
//   apply thread      collect window -> swap -> ApplyBatch (incl. the
//                     batch fence) -> hand the fenced batch to ...
//   completion thread ... which runs the post-fence tail: the semi-sync
//                     replication wait, latency recording and the per-
//                     group ack dispatch.
//
// So batch N+1 coalesces and applies while batch N waits for follower
// acks and dispatches completions — a slow follower can no longer stall
// unrelated writes, and the apply thread never sleeps inside WaitAcked.
// A small in-flight window (kPipelineDepth fenced batches) bounds the
// overlap; the single completion consumer pops in FIFO order, so acks are
// released strictly in batch order and a batch is never acked before its
// own fence (ApplyBatch returns post-fence). While the crash injector is
// armed the pipeline stands down: the in-flight window drains, then every
// batch runs apply+finish synchronously on the apply thread — crash
// sweeps keep their deterministic single-threaded persistence-event
// schedule.
#ifndef REWIND_SERVER_BATCHER_H_
#define REWIND_SERVER_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/server/protocol.h"

namespace rwd {
namespace repl {
class RewindGuard;
}  // namespace repl
namespace serve {

/// Delivered to the owning worker once a submitted write group's batch has
/// committed and fenced (or failed fast at submit time).
struct WriteCompletion {
  std::uint64_t conn_id = 0;
  Op op = Op::kPut;
  Status status = Status::kOk;
  /// Replication gtid covering this write (0 without a ReplicationLog):
  /// the read-your-writes token carried in the ack frame, valid on any
  /// follower whose applied gtid has reached it.
  std::uint64_t gtid = 0;
};

/// AIMD controller for the coalescing window (`--batch-window-us=auto`):
/// starts at zero (latency-first), doubles toward `cap_us` while write
/// traffic is continuous, and halves back toward zero when the server
/// goes genuinely idle (an idle server should not sleep on the first
/// write of a burst). "Continuous" is detected two ways, because
/// closed-loop clients (pipelined connections gated on acks) drain the
/// queue every batch by construction and so defeat any queue-depth-only
/// signal: either the queue refilled behind the commit, or the
/// completion pipeline still had earlier batches in flight when this one
/// was collected — new work arriving before old work finished acking IS
/// sustained load, whatever the instantaneous queue depth says. Without
/// the second signal the controller falls into a tiny-batch trap: a
/// small window produces small batches, small batches commit fast and
/// never let the queue build, and the observed "empty queue" shrinks the
/// window further. Driven and read by the apply thread only; the wide
/// window costs nothing when traffic stops mid-burst because the apply
/// loop sleeps it in arrival-gated quanta (see Loop). Genuinely idle
/// means a TINY batch committed, nothing queued behind it, and an empty
/// pipeline.
class AdaptiveWindow {
 public:
  /// First nonzero window when widening out of 0.
  static constexpr std::uint32_t kSeedUs = 16;
  /// A committed batch at least this big proves real coalescing demand,
  /// holding the window even when the queue drained behind it.
  static constexpr std::size_t kIdleBatchOps = 8;
  /// Arrival-gated sleep quantum for the adaptive window (see the
  /// batcher's Loop): the window is slept in slices this long, stopping
  /// early once a whole quantum passes without a new op arriving.
  static constexpr std::uint32_t kQuantumUs = 25;

  explicit AdaptiveWindow(std::uint32_t cap_us) : cap_us_(cap_us) {}

  /// Feeds one finished commit: `batch_ops` write ops committed,
  /// `queued_after` write ops already waiting when it finished, and
  /// whether earlier batches were still in the completion pipeline when
  /// this batch was collected.
  void Observe(std::size_t batch_ops, std::size_t queued_after,
               bool pipeline_busy) {
    if (pipeline_busy || queued_after > batch_ops / 2) {
      // Sustained traffic: widen multiplicatively toward the cap —
      // coalescing harder amortizes the fence better than committing
      // sooner.
      window_us_ =
          window_us_ == 0 ? kSeedUs : std::min(cap_us_, window_us_ * 2);
      if (window_us_ > cap_us_) window_us_ = cap_us_;
    } else if (queued_after == 0 && batch_ops < kIdleBatchOps) {
      // Idle pipeline, empty queue, near-empty batch: the traffic
      // stopped, decay toward no window at all.
      window_us_ /= 2;
    }
  }

  std::uint32_t window_us() const { return window_us_; }

 private:
  std::uint32_t cap_us_;
  std::uint32_t window_us_ = 0;
};

class GroupCommitBatcher {
 public:
  /// Fenced-but-unacked batches the apply thread may run ahead of the
  /// completion thread (the pipeline's in-flight window).
  static constexpr std::size_t kPipelineDepth = 3;

  /// Routes a batch's completions to the worker that owns the connections.
  /// Called on the completion (or, standing down, the apply) thread;
  /// implementations must only enqueue+wake.
  using CompletionSink =
      std::function<void(std::uint32_t worker, std::vector<WriteCompletion>)>;
  /// Called (once, on the apply thread) when ApplyBatch hits a simulated
  /// power failure; the server uses it to drop every connection.
  using CrashHook = std::function<void()>;

  /// `max_pending_ops` caps the coalescing queue: once that many write ops
  /// are pending the batch thread forfeits the coalescing window and
  /// commits immediately, so the queue drains at full speed instead of
  /// growing while the window timer runs. (The server additionally stops
  /// reading from connections whose own writes are not draining.)
  /// `slow_op_threshold_us` feeds the rate-limited slow-op log: a write
  /// group whose submit-to-ack latency exceeds it is reported to stderr
  /// (0 disables).
  /// `sync_repl` turns on semi-synchronous replication: after a batch
  /// fences, its completions are held until every subscribed follower has
  /// acked the batch's gtid (or `sync_repl_timeout_ms` elapses — the batch
  /// is durable locally either way, so the ack still goes out, and a
  /// `repl.sync_timeouts` counter records the breach). With no
  /// ReplicationLog attached or no subscribers the wait is a no-op. The
  /// wait runs on the completion thread, off the apply critical path.
  /// `adaptive_window` replaces the fixed `window_us` sleep with the
  /// AdaptiveWindow controller above, capped at `window_cap_us`.
  /// With a `guard` (RewindGuard) AND sync_repl, the semi-sync wait
  /// hardens into a fence: once a follower has ever subscribed, a
  /// write's ack is released only when a live follower has acked its
  /// gtid — an ack never times out into an unreplicated success. If the
  /// guard demotes this node while a batch waits, the batch's groups
  /// complete kNotLeader instead (the writes are durable locally but
  /// were never promised; the forced rejoin snapshot reconciles them
  /// away).
  GroupCommitBatcher(KvStore* store, std::uint32_t window_us,
                     std::size_t max_pending_ops, CompletionSink sink,
                     CrashHook on_crash,
                     std::uint64_t slow_op_threshold_us = 0,
                     bool sync_repl = false,
                     std::uint32_t sync_repl_timeout_ms = 2000,
                     bool adaptive_window = false,
                     std::uint32_t window_cap_us = 500,
                     repl::RewindGuard* guard = nullptr);
  ~GroupCommitBatcher();

  void Start();
  /// Drains and commits everything still queued (unless a crash was
  /// observed), then joins both pipeline threads. Idempotent.
  void Stop();

  /// Enqueues one logical client write — 1 op for PUT/DEL, n for MPUT — as
  /// an unsplittable group; all of a group's ops land in the same batch, so
  /// an MPUT stays atomic even across shards. Returns false (and takes
  /// nothing) when the batcher is stopped or crashed; the caller fails the
  /// request fast.
  bool Submit(std::uint32_t worker, std::uint64_t conn_id, Op op,
              std::vector<KvWriteOp> ops);

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  std::uint64_t batches() const { return batches_.load(); }
  std::uint64_t batched_writes() const { return batched_writes_.load(); }
  std::uint64_t acked_writes() const { return acked_writes_.load(); }
  /// Write ops queued or mid-commit, not yet acked (the STATS gauge).
  std::uint64_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  /// The coalescing window the next batch will use (µs); tracks the
  /// controller in adaptive mode, constant otherwise.
  std::uint32_t current_window_us() const {
    return window_now_.load(std::memory_order_relaxed);
  }

 private:
  /// One submitted write group: `count` ops starting at `first` in the
  /// pending op vector, acked as a unit.
  struct Group {
    std::uint32_t worker;
    std::uint64_t conn_id;
    Op op;
    std::size_t first;
    std::size_t count;
    /// Submit timestamp for the write-latency histograms (0 while
    /// recording is paused — then nothing is recorded at commit either).
    std::uint64_t submit_ns;
  };

  /// One batch travelling the pipeline: applied and fenced by the apply
  /// thread, finished (repl wait + ack dispatch) by the completion thread.
  struct InFlight {
    std::vector<KvWriteOp> ops;
    std::vector<Group> groups;
    std::uint64_t gtid = 0;
  };

  void Loop();
  void CompletionLoop();
  /// Applies one swapped-out batch (window metric, timed ApplyBatch —
  /// which ends with the batch fence — and gtid capture). Returns false
  /// when a simulated crash fired mid-batch.
  bool ApplyOne(InFlight& batch);
  /// Post-fence tail: semi-sync wait, latency records, per-group status
  /// computation, ack dispatch, depth release.
  void FinishBatch(InFlight& batch);
  /// Blocks until every pipelined batch has fully dispatched.
  void DrainPipeline();
  /// Stops and joins the completion thread; with `discard`, pending
  /// in-flight batches are dropped unacked (they are durable — the crash
  /// path is dropping every connection anyway).
  void ShutdownPipeline(bool discard);

  KvStore* store_;
  std::uint32_t window_us_;
  std::size_t max_pending_ops_;
  CompletionSink sink_;
  CrashHook on_crash_;
  std::uint64_t slow_op_threshold_us_;
  bool sync_repl_;
  std::uint32_t sync_repl_timeout_ms_;
  repl::RewindGuard* guard_;
  /// Escape hatch for the guarded semi-sync wait (which has no overall
  /// timeout): set on Stop/ShutdownPipeline so a batch stuck waiting for
  /// a follower that will never ack lets shutdown proceed.
  std::atomic<bool> halt_{false};
  bool adaptive_;
  AdaptiveWindow adaptive_window_;
  std::atomic<std::uint32_t> window_now_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<KvWriteOp> pending_ops_;
  std::vector<Group> pending_groups_;
  bool stop_ = false;

  // Pipeline hand-off (apply thread -> completion thread).
  std::mutex fly_mu_;
  std::condition_variable fly_cv_;        ///< completion thread waits here
  std::condition_variable fly_space_cv_;  ///< apply thread waits for space
  std::deque<InFlight> in_flight_;
  /// Batches applied but not yet fully dispatched: the queue above plus
  /// the one the completion thread is finishing. Bounds the pipeline and
  /// drives DrainPipeline.
  std::size_t in_flight_count_ = 0;
  bool fly_stop_ = false;
  std::thread completion_thread_;

  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> depth_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_writes_{0};
  std::atomic<std::uint64_t> acked_writes_{0};
  std::thread thread_;
};

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_BATCHER_H_
