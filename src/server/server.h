// RewindServe: a TCP serving layer over KvStore — epoll event loop with N
// worker threads, the length-prefixed protocol of protocol.h with full
// client-side pipelining, and a group-commit batcher that coalesces logged
// writes from many connections into one shard transaction per shard per
// batch window before acking (batcher.h).
//
// Consistency contract per connection: responses are sent in request
// order, and a read (GET/SCAN/STATS) issued after a write on the same
// connection observes that write — reads act as a barrier behind the
// connection's unacked writes. Reads on other connections may observe a
// batch's writes as soon as its shard transactions commit.
#ifndef REWIND_SERVER_SERVER_H_
#define REWIND_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/server/batcher.h"
#include "src/server/protocol.h"

namespace rwd {

namespace repl {
class ReplApplier;
class RewindGuard;
}  // namespace repl

namespace serve {

class ReplSession;

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 7170;
  /// Epoll worker threads; connections are assigned round-robin.
  std::uint32_t workers = 2;
  /// Group-commit coalescing window (microseconds; 0 commits eagerly).
  /// Ignored when `adaptive_batch_window` is set.
  std::uint32_t batch_window_us = 150;
  /// Adaptive coalescing window (`--batch-window-us=auto`): the batcher's
  /// AIMD controller sizes the window each batch — zero while idle,
  /// widening toward `batch_window_cap_us` while the queue outgrows the
  /// drain rate.
  bool adaptive_batch_window = false;
  std::uint32_t batch_window_cap_us = 500;
  /// Server-side cap on one SCAN's item count. Buffered SCAN replies are
  /// additionally capped at kMaxScanReplyBytes and report truncation via
  /// the reply trailer; SCAN_STREAM has no byte cap (it chunks).
  std::uint32_t max_scan_items = kMaxScanItems;
  /// Target payload bytes per SCAN_STREAM chunk: the granularity at which
  /// a streamed scan yields the shard latch and the wire. A chunk always
  /// carries at least one item, so oversized values stretch a chunk rather
  /// than wedge the stream.
  std::uint32_t scan_chunk_bytes = 256u << 10;
  // --- backpressure caps (overload protection, not request limits) ---
  /// Batcher queue cap: at this many pending write ops the batcher stops
  /// coalescing (commits immediately) until the queue drains.
  std::size_t max_batch_queue_ops = 8192;
  /// Per-connection cap on un-flushed response bytes; a connection over it
  /// stops being read (epoll interest drops EPOLLIN) until it drains.
  std::size_t max_conn_out_bytes = 1 << 20;
  /// Per-connection cap on writes awaiting group commit; over it the
  /// connection likewise stops being read until acks arrive.
  std::uint32_t max_unacked_writes = 512;
  /// Slow-op threshold (microseconds) for the rate-limited stderr report:
  /// reads slower than this at execution, and writes slower than this
  /// from submit to post-fence ack, get logged. 0 disables.
  std::uint64_t slow_op_threshold_us = 0;
  // --- replication (RewindRepl) ---
  /// Start read-only: writes answer kNotLeader until a PROMOTE arrives
  /// (the follower role). Reads, STATS and GET_RYW stay available.
  bool read_only = false;
  /// Semi-synchronous replication: hold each batch's acks until every
  /// subscribed follower acked its gtid (see GroupCommitBatcher).
  bool sync_repl = false;
  std::uint32_t sync_repl_timeout_ms = 2000;
  /// How long a GET_RYW may wait for the applier to reach its token.
  std::uint32_t ryw_wait_ms = 1000;
  /// Follower role: the applier whose gtid GET_RYW waits on (nullptr on a
  /// leader — tokens are then trivially satisfied, the data is local).
  repl::ReplApplier* applier = nullptr;
  /// Invoked once when a PROMOTE flips this node to leader (the host
  /// stops its follower agent here). Called on a worker thread.
  std::function<void()> on_promote;
  /// RewindGuard (PR 10): lease/epoch authority for this node. With a
  /// guard attached, writes bounced with kNotLeader carry an epoch +
  /// leader-address redirect hint, semi-sync acks are fenced on role
  /// loss, and REPL_SUBSCRIBE/REPL_ACK exchange epochs. Not owned.
  repl::RewindGuard* guard = nullptr;
};

class KvServer {
 public:
  KvServer(KvStore* store, const ServerConfig& config);
  ~KvServer();

  KvServer(const KvServer&) = delete;
  KvServer& operator=(const KvServer&) = delete;

  /// Binds, listens and launches the worker + batcher threads. Returns
  /// false (with everything torn down) when the socket setup fails.
  bool Start();

  /// Graceful shutdown: commits and acks everything already queued, then
  /// stops the workers and closes every connection. Idempotent.
  void Stop();

  /// The bound port (after Start; meaningful with config.port == 0).
  std::uint16_t port() const { return port_; }

  /// True once a simulated power failure fired inside a group commit; the
  /// server has dropped every connection and stopped acking.
  bool crashed() const { return batcher_ && batcher_->crashed(); }

  /// True while writes are refused with kNotLeader (follower role).
  bool read_only() const {
    return read_only_.load(std::memory_order_acquire);
  }

  /// Take the leader role: bumps the guard's epoch (persisted before the
  /// role flip, when a guard is attached), clears read_only, and runs
  /// on_promote once per follower->leader transition. Idempotent; also
  /// the PROMOTE op's handler and the guard's election callback.
  void Promote();

  /// Drop to the follower role (fencing): writes answer kNotLeader with
  /// a redirect hint until a future Promote(). Reads stay available.
  void Demote();

  /// Aggregate counters (also the STATS op's payload).
  StatsReply StatsSnapshot();

 private:
  struct Conn;
  struct Worker;

  void WorkerLoop(std::uint32_t idx);
  void HandleInbox(Worker& w);
  void AcceptReady(Worker& w0);
  void AdoptConn(Worker& w, int fd);
  /// Reads, parses and drives one connection; false = close it.
  bool HandleReadable(Worker& w, Conn& c);
  bool ParseFrames(Conn& c);
  /// Executes runnable requests in order (reads inline, writes to the
  /// batcher) honouring the read-after-write barrier. Stops early when a
  /// response must wait behind unacked writes.
  void Drive(Worker& w, Conn& c);
  /// Produces SCAN_STREAM chunks for a connection's active stream until
  /// the stream completes or the out buffer reaches its backpressure cap;
  /// cooperates with epoll (EPOLLOUT re-enters Drive, which re-enters
  /// here) so one giant scan never wedges a worker or buffers unboundedly.
  void PumpScanStream(Worker& w, Conn& c);
  /// Flushes the out buffer; false = close.
  bool TryFlush(Worker& w, Conn& c);
  /// Recomputes the connection's epoll interest: EPOLLOUT while the out
  /// buffer has residue, EPOLLIN unless the connection is over a
  /// backpressure cap (out-buffer bytes or unacked writes).
  void UpdateInterest(Worker& w, Conn& c);
  void CloseConn(Worker& w, Conn& c);
  void WakeWorker(Worker& w);
  /// Pulls a connection that sent REPL_SUBSCRIBE out of the epoll loop and
  /// hands its fd (plus unsent reply bytes) to a dedicated ReplSession
  /// streaming thread.
  void DetachRepl(Worker& w, Conn& c);

  KvStore* store_;
  ServerConfig config_;
  std::unique_ptr<GroupCommitBatcher> batcher_;
  std::vector<std::unique_ptr<Worker>> workers_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_conn_id_{2};  // 0/1 mark eventfd/listener
  std::atomic<std::uint64_t> rr_next_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> gets_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> scan_chunks_{0};        ///< stream chunks sent
  std::atomic<std::uint64_t> scan_stream_bytes_{0};  ///< stream item bytes

  // --- replication ---
  std::atomic<bool> read_only_{false};
  /// Leader-side per-follower streaming threads (REPL_SUBSCRIBE detaches
  /// the connection here). Guarded by repl_mu_; reaped on Stop().
  std::mutex repl_mu_;
  std::vector<std::unique_ptr<ReplSession>> repl_sessions_;
};

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_SERVER_H_
