// A small blocking client for RewindServe: synchronous conveniences plus
// an explicit pipelining interface (queue N requests, flush once, read the
// N replies in order) used by tests and the network load generator.
#ifndef REWIND_SERVER_CLIENT_H_
#define REWIND_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/server/protocol.h"

namespace rwd {
namespace serve {

class KvClient {
 public:
  struct Reply {
    Status status = Status::kServerError;
    std::string payload;
  };

  KvClient() = default;
  ~KvClient();
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Connects to a RewindServe endpoint (numeric IPv4 or a resolvable
  /// host name). `recv_timeout_ms` bounds every blocking read; a timeout
  /// closes the connection so callers never hang on a dead server.
  bool Connect(const std::string& host, std::uint16_t port,
               int recv_timeout_ms = 30000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- pipelining: queue requests, flush, then read replies in order ---
  void QueueGet(std::uint64_t key);
  void QueuePut(std::uint64_t key, std::string_view value);
  void QueueDel(std::uint64_t key);
  void QueueScan(std::uint64_t from_key, std::uint32_t max_items);
  void QueueMput(
      const std::vector<std::pair<std::uint64_t, std::string>>& kvs);
  void QueueStats();
  void QueueStats2();
  void QueueReplStatus();
  /// GET with a read-your-writes token (`min_gtid` from a write ack):
  /// against a follower the server answers only once it applied that far.
  void QueueGetRyw(std::uint64_t key, std::uint64_t min_gtid);
  /// Sends everything queued. False on socket error (connection closed).
  bool Flush();
  /// Reads the next reply frame; replies arrive in request order. False on
  /// socket error, EOF or timeout (connection closed).
  bool ReadReply(Reply* out);
  /// Requests queued or flushed whose replies have not been read yet.
  std::size_t pending() const { return pending_; }

  // --- blocking conveniences (require pending() == 0) ---
  /// Write acks carry the covering batch's replication gtid — the
  /// read-your-writes token for follower reads. `gtid_out` (optional)
  /// receives it; 0 when the server runs without replication.
  bool Put(std::uint64_t key, std::string_view value,
           std::uint64_t* gtid_out = nullptr);
  bool Get(std::uint64_t key, std::string* value_out);
  /// GET honoring a read-your-writes token (see QueueGetRyw).
  bool GetRyw(std::uint64_t key, std::uint64_t min_gtid,
              std::string* value_out);
  bool Delete(std::uint64_t key, std::uint64_t* gtid_out = nullptr);
  /// Returns items via `out`; false on error (out left partial on parse
  /// failure). An empty result is success. `truncated` (optional) reports
  /// whether the server cut the result short of the request — byte cap or
  /// server item cap — with `next_key` the key a follow-up scan resumes
  /// from; pre-trailer servers simply report false/0.
  bool Scan(std::uint64_t from_key, std::uint32_t max_items,
            std::vector<std::pair<std::uint64_t, std::string>>* out,
            bool* truncated = nullptr, std::uint64_t* next_key = nullptr);

  // --- streaming scans (SCAN_STREAM): pull chunks as the server emits
  // them, so a result set larger than the buffered-reply byte cap arrives
  // whole without truncation ---
  /// Sends a SCAN_STREAM request (requires pending() == 0). While the
  /// stream is open only ScanStreamNext may touch the connection.
  bool ScanStreamBegin(std::uint64_t from_key, std::uint32_t max_items);
  /// Reads one chunk, appending its items to `out` (never cleared) and
  /// setting *done on the final chunk. False on socket/protocol error —
  /// the connection is closed (a half-consumed stream is unrecoverable).
  bool ScanStreamNext(std::vector<std::pair<std::uint64_t, std::string>>* out,
                      bool* done);
  /// Convenience: streams the whole result set into `out`.
  bool ScanStream(std::uint64_t from_key, std::uint32_t max_items,
                  std::vector<std::pair<std::uint64_t, std::string>>* out);
  bool stream_open() const { return stream_open_; }
  bool MultiPut(
      const std::vector<std::pair<std::uint64_t, std::string>>& kvs,
      std::uint64_t* gtid_out = nullptr);
  /// Promotes a read-only follower to leader (idempotent).
  bool Promote();
  bool Stats(StatsReply* out);
  /// STATS v2: the self-describing metric dump. Unknown names and sample
  /// types decode fine — callers filter by the names they understand.
  bool Stats2(std::vector<MetricSample>* out);
  /// Leader-side replication health: last published gtid plus one entry
  /// per subscribed follower (empty on a node without replication).
  bool ReplStatus(ReplStatusReply* out);

 private:
  bool SendAll(const char* data, std::size_t size);
  /// Ensures `recv_` holds at least `need` unconsumed bytes.
  bool FillTo(std::size_t need);
  /// Reads one frame off the wire without touching pending_ (a streamed
  /// reply is many frames for one request).
  bool ReadFrame(Reply* out);
  /// Runs one queued request to completion and returns its reply.
  bool RoundTrip(Reply* reply);

  int fd_ = -1;
  std::string send_;
  std::string recv_;
  std::size_t recv_off_ = 0;
  std::size_t pending_ = 0;
  bool stream_open_ = false;
};

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_CLIENT_H_
