// A small blocking client for RewindServe: synchronous conveniences plus
// an explicit pipelining interface (queue N requests, flush once, read the
// N replies in order) used by tests and the network load generator.
#ifndef REWIND_SERVER_CLIENT_H_
#define REWIND_SERVER_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/server/protocol.h"

namespace rwd {
namespace serve {

class KvClient {
 public:
  struct Reply {
    Status status = Status::kServerError;
    std::string payload;
  };

  KvClient() = default;
  ~KvClient();
  KvClient(const KvClient&) = delete;
  KvClient& operator=(const KvClient&) = delete;

  /// Connects to a RewindServe endpoint (numeric IPv4 or a resolvable
  /// host name). `recv_timeout_ms` bounds every blocking read AND send
  /// (a black-holed peer that never drains its window times out instead
  /// of wedging the caller); a timeout closes the connection so callers
  /// never hang on a dead server. `connect_timeout_ms` > 0 bounds the
  /// TCP connect itself (0 = the OS default, which can be minutes
  /// against a dropped-SYN partition).
  bool Connect(const std::string& host, std::uint16_t port,
               int recv_timeout_ms = 30000, int connect_timeout_ms = 0);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- pipelining: queue requests, flush, then read replies in order ---
  void QueueGet(std::uint64_t key);
  void QueuePut(std::uint64_t key, std::string_view value);
  void QueueDel(std::uint64_t key);
  void QueueScan(std::uint64_t from_key, std::uint32_t max_items);
  void QueueMput(
      const std::vector<std::pair<std::uint64_t, std::string>>& kvs);
  void QueueStats();
  void QueueStats2();
  void QueueReplStatus();
  /// GET with a read-your-writes token (`min_gtid` from a write ack):
  /// against a follower the server answers only once it applied that far.
  void QueueGetRyw(std::uint64_t key, std::uint64_t min_gtid);
  /// Sends everything queued. False on socket error (connection closed).
  bool Flush();
  /// Reads the next reply frame; replies arrive in request order. False on
  /// socket error, EOF or timeout (connection closed).
  bool ReadReply(Reply* out);
  /// Requests queued or flushed whose replies have not been read yet.
  std::size_t pending() const { return pending_; }

  // --- blocking conveniences (require pending() == 0) ---
  /// Write acks carry the covering batch's replication gtid — the
  /// read-your-writes token for follower reads. `gtid_out` (optional)
  /// receives it; 0 when the server runs without replication.
  bool Put(std::uint64_t key, std::string_view value,
           std::uint64_t* gtid_out = nullptr);
  bool Get(std::uint64_t key, std::string* value_out);
  /// GET honoring a read-your-writes token (see QueueGetRyw).
  bool GetRyw(std::uint64_t key, std::uint64_t min_gtid,
              std::string* value_out);
  bool Delete(std::uint64_t key, std::uint64_t* gtid_out = nullptr);
  /// Returns items via `out`; false on error (out left partial on parse
  /// failure). An empty result is success. `truncated` (optional) reports
  /// whether the server cut the result short of the request — byte cap or
  /// server item cap — with `next_key` the key a follow-up scan resumes
  /// from; pre-trailer servers simply report false/0.
  bool Scan(std::uint64_t from_key, std::uint32_t max_items,
            std::vector<std::pair<std::uint64_t, std::string>>* out,
            bool* truncated = nullptr, std::uint64_t* next_key = nullptr);

  // --- streaming scans (SCAN_STREAM): pull chunks as the server emits
  // them, so a result set larger than the buffered-reply byte cap arrives
  // whole without truncation ---
  /// Sends a SCAN_STREAM request (requires pending() == 0). While the
  /// stream is open only ScanStreamNext may touch the connection.
  bool ScanStreamBegin(std::uint64_t from_key, std::uint32_t max_items);
  /// Reads one chunk, appending its items to `out` (never cleared) and
  /// setting *done on the final chunk. False on socket/protocol error —
  /// the connection is closed (a half-consumed stream is unrecoverable).
  bool ScanStreamNext(std::vector<std::pair<std::uint64_t, std::string>>* out,
                      bool* done);
  /// Convenience: streams the whole result set into `out`.
  bool ScanStream(std::uint64_t from_key, std::uint32_t max_items,
                  std::vector<std::pair<std::uint64_t, std::string>>* out);
  bool stream_open() const { return stream_open_; }
  bool MultiPut(
      const std::vector<std::pair<std::uint64_t, std::string>>& kvs,
      std::uint64_t* gtid_out = nullptr);
  /// Promotes a read-only follower to leader (idempotent).
  bool Promote();
  bool Stats(StatsReply* out);
  /// STATS v2: the self-describing metric dump. Unknown names and sample
  /// types decode fine — callers filter by the names they understand.
  bool Stats2(std::vector<MetricSample>* out);
  /// Leader-side replication health: last published gtid plus one entry
  /// per subscribed follower (empty on a node without replication).
  bool ReplStatus(ReplStatusReply* out);

 private:
  bool SendAll(const char* data, std::size_t size);
  /// Ensures `recv_` holds at least `need` unconsumed bytes.
  bool FillTo(std::size_t need);
  /// Reads one frame off the wire without touching pending_ (a streamed
  /// reply is many frames for one request).
  bool ReadFrame(Reply* out);
  /// Runs one queued request to completion and returns its reply.
  bool RoundTrip(Reply* reply);

  int fd_ = -1;
  std::string send_;
  std::string recv_;
  std::size_t recv_off_ = 0;
  std::size_t pending_ = 0;
  bool stream_open_ = false;
};

/// FailoverClient: a leader-following wrapper over KvClient (PR 10). It
/// holds a set of candidate endpoints, connects with bounded connect/recv
/// timeouts, and retries each operation through failures:
///   - transport errors (refused, timeout, reset) rotate to the next
///     endpoint after a capped, jittered backoff;
///   - kNotLeader replies follow the redirect hint when the fenced node
///     knows the leader's address, else rotate.
/// Every operation either succeeds against exactly one leader or fails
/// after `max_attempts` tries — it never blocks unboundedly.
class FailoverClient {
 public:
  struct Config {
    /// Candidate "host:port" endpoints, tried round-robin.
    std::vector<std::string> endpoints;
    /// Per-attempt connect AND recv timeout.
    int timeout_ms = 2000;
    /// Total connection/operation attempts before giving up.
    std::uint32_t max_attempts = 16;
    /// Retry backoff: base doubling to cap, plus deterministic jitter of
    /// up to half the base (seeded so tests replay exactly).
    std::uint32_t backoff_base_ms = 20;
    std::uint32_t backoff_cap_ms = 500;
    std::uint64_t jitter_seed = 1;
  };

  explicit FailoverClient(Config config);

  FailoverClient(const FailoverClient&) = delete;
  FailoverClient& operator=(const FailoverClient&) = delete;

  bool Put(std::uint64_t key, std::string_view value,
           std::uint64_t* gtid_out = nullptr);
  bool Get(std::uint64_t key, std::string* value_out);
  /// GET honoring a read-your-writes token from a prior write ack.
  bool GetRyw(std::uint64_t key, std::uint64_t min_gtid,
              std::string* value_out);
  bool Delete(std::uint64_t key, std::uint64_t* gtid_out = nullptr);
  void Close();

  /// Redirects followed (kNotLeader replies) across all operations.
  std::uint64_t redirects() const { return redirects_; }
  /// Reconnect/retry attempts beyond each operation's first try.
  std::uint64_t retries() const { return retries_; }
  /// The epoch carried by the last successful write ack (0 = no guard).
  std::uint64_t last_epoch() const { return last_epoch_; }
  /// Status of the last reply frame seen (kServerError before any).
  Status last_status() const { return last_status_; }
  /// The endpoint the current/most recent connection targets.
  const std::string& endpoint() const { return endpoint_; }

 private:
  enum class Outcome { kDone, kFailed, kTransport, kRedirect };

  /// Runs `op` against a connected client, retrying through transport
  /// failures and redirects up to max_attempts.
  bool Run(const std::function<Outcome(KvClient&)>& op);
  bool EnsureConnected();
  /// Classifies a reply: kOk -> kDone; kNotLeader -> aim at the hint (or
  /// rotate) and kRedirect; anything else -> kFailed.
  Outcome Classify(const KvClient::Reply& r);
  std::uint32_t BackoffMs(std::uint32_t attempt) const;

  Config config_;
  KvClient client_;
  std::string endpoint_;     ///< "host:port" currently targeted
  std::size_t rr_ = 0;       ///< next endpoints_ index on rotation
  bool use_hint_ = false;    ///< endpoint_ came from a redirect hint
  std::uint64_t redirects_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t last_epoch_ = 0;
  Status last_status_ = Status::kServerError;
};

}  // namespace serve
}  // namespace rwd

#endif  // REWIND_SERVER_CLIENT_H_
