#include "src/server/batcher.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "src/nvm/crash.h"
#include "src/obs/metrics.h"
#include "src/repl/guard.h"
#include "src/repl/replication_log.h"

namespace rwd {
namespace serve {
namespace {

/// Guarded semi-sync waits in short slices so demotion (guard) and
/// shutdown (halt_) are noticed promptly; there is no overall timeout by
/// design.
constexpr std::uint32_t kGuardWaitSliceMs = 20;

/// Batcher phase + per-write-op latency histograms. The server-side write
/// latency (submit to post-fence ack dispatch) lives here because only
/// the batcher knows when a group's covering batch fenced.
struct BatchMetrics {
  obs::Registry& reg = obs::Registry::Get();
  obs::Histogram* window = reg.GetHistogram("batcher.window");
  obs::Histogram* commit = reg.GetHistogram("batcher.commit");
  obs::Histogram* op_put = reg.GetHistogram("server.op.put");
  obs::Histogram* op_del = reg.GetHistogram("server.op.del");
  obs::Histogram* op_mput = reg.GetHistogram("server.op.mput");
  obs::Gauge* pipeline_depth = reg.GetGauge("batcher.pipeline_depth");
  obs::Gauge* window_us = reg.GetGauge("batcher.window_us");
};

BatchMetrics& Metrics() {
  static BatchMetrics m;
  return m;
}

}  // namespace

GroupCommitBatcher::GroupCommitBatcher(KvStore* store, std::uint32_t window_us,
                                       std::size_t max_pending_ops,
                                       CompletionSink sink, CrashHook on_crash,
                                       std::uint64_t slow_op_threshold_us,
                                       bool sync_repl,
                                       std::uint32_t sync_repl_timeout_ms,
                                       bool adaptive_window,
                                       std::uint32_t window_cap_us,
                                       repl::RewindGuard* guard)
    : store_(store),
      window_us_(window_us),
      max_pending_ops_(max_pending_ops == 0 ? 1 : max_pending_ops),
      sink_(std::move(sink)),
      on_crash_(std::move(on_crash)),
      slow_op_threshold_us_(slow_op_threshold_us),
      sync_repl_(sync_repl),
      sync_repl_timeout_ms_(sync_repl_timeout_ms),
      guard_(guard),
      adaptive_(adaptive_window),
      adaptive_window_(window_cap_us),
      window_now_(adaptive_window ? 0 : window_us) {}

GroupCommitBatcher::~GroupCommitBatcher() { Stop(); }

void GroupCommitBatcher::Start() {
  completion_thread_ = std::thread([this] { CompletionLoop(); });
  thread_ = std::thread([this] { Loop(); });
}

void GroupCommitBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  halt_.store(true, std::memory_order_release);
  cv_.notify_all();
  // Join outside the latch: the batch thread takes mu_ to drain. The
  // apply thread shuts the completion thread down on its own way out.
  if (thread_.joinable()) thread_.join();
}

bool GroupCommitBatcher::Submit(std::uint32_t worker, std::uint64_t conn_id,
                                Op op, std::vector<KvWriteOp> ops) {
  if (crashed()) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    std::size_t first = pending_ops_.size();
    for (KvWriteOp& w : ops) pending_ops_.push_back(std::move(w));
    std::uint64_t now = obs::RecordingEnabled() ? obs::NowNs() : 0;
    pending_groups_.push_back({worker, conn_id, op, first, ops.size(), now});
    depth_.fetch_add(ops.size(), std::memory_order_relaxed);
  }
  cv_.notify_one();
  return true;
}

void GroupCommitBatcher::Loop() {
  for (;;) {
    InFlight batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !pending_groups_.empty(); });
      if (pending_groups_.empty()) {
        // Stop requested, queue drained; flush whatever is still in
        // flight, then exit.
        ShutdownPipeline(/*discard=*/false);
        return;
      }
      bool draining = stop_;
      // Backpressure: a queue already at its cap forfeits the coalescing
      // window — committing immediately drains faster than coalescing
      // further, and the cap bounds how much a window can accumulate.
      bool saturated = pending_ops_.size() >= max_pending_ops_;
      std::uint32_t window =
          adaptive_ ? adaptive_window_.window_us() : window_us_;
      if (!draining && !saturated && window != 0) {
        // The coalescing window: the first write of a batch waits briefly
        // so concurrent connections' writes share its commit and fence.
        if (!adaptive_) {
          lock.unlock();
          std::this_thread::sleep_for(std::chrono::microseconds(window));
          lock.lock();
        } else {
          // Adaptive mode sleeps the window in arrival-gated quanta: once
          // a quantum passes with no new ops the burst is fully collected
          // and further sleeping is pure added latency, so stop early. A
          // cap-wide window therefore costs nothing beyond one quantum of
          // overshoot, which lets the controller widen aggressively.
          std::uint32_t slept = 0;
          while (slept < window) {
            std::size_t before = pending_ops_.size();
            std::uint32_t quantum = std::min<std::uint32_t>(
                window - slept, AdaptiveWindow::kQuantumUs);
            lock.unlock();
            std::this_thread::sleep_for(std::chrono::microseconds(quantum));
            lock.lock();
            slept += quantum;
            if (stop_ || pending_ops_.size() >= max_pending_ops_) break;
            if (pending_ops_.size() == before) break;
          }
        }
      }
      batch.ops.swap(pending_ops_);
      batch.groups.swap(pending_groups_);
    }
    std::size_t batch_ops = batch.ops.size();
    // Sampled at collect time, BEFORE this batch enters the pipeline: were
    // earlier batches still unacked while this one's ops arrived? That is
    // the controller's sustained-load signal (see AdaptiveWindow).
    bool pipeline_busy = false;
    if (adaptive_) {
      std::lock_guard<std::mutex> lock(fly_mu_);
      pipeline_busy = in_flight_count_ > 0;
    }
    // Crash sweeps arm the injector and count persistence events on ONE
    // deterministic thread: stand the pipeline down (drain, then run the
    // full commit synchronously) whenever the injector is armed.
    bool standdown = store_->runtime().nvm().crash_injector().armed();
    if (standdown) {
      // Everything already in flight acks first — the order-preserving
      // hand-over from pipelined to synchronous operation.
      DrainPipeline();
      if (!ApplyOne(batch)) {
        ShutdownPipeline(/*discard=*/true);
        if (on_crash_) on_crash_();
        return;
      }
      FinishBatch(batch);
    } else {
      // Reserve a pipeline slot BEFORE applying: with kPipelineDepth
      // fenced batches unacked, the apply thread waits — bounded overlap.
      {
        std::unique_lock<std::mutex> lock(fly_mu_);
        fly_space_cv_.wait(
            lock, [this] { return in_flight_count_ < kPipelineDepth; });
      }
      if (!ApplyOne(batch)) {
        ShutdownPipeline(/*discard=*/true);
        if (on_crash_) on_crash_();
        return;
      }
      {
        std::lock_guard<std::mutex> lock(fly_mu_);
        in_flight_.push_back(std::move(batch));
        ++in_flight_count_;
        Metrics().pipeline_depth->Set(
            static_cast<double>(in_flight_count_));
      }
      fly_cv_.notify_one();
    }
    if (adaptive_) {
      std::size_t queued_after;
      {
        std::lock_guard<std::mutex> lock(mu_);
        queued_after = pending_ops_.size();
      }
      adaptive_window_.Observe(batch_ops, queued_after, pipeline_busy);
      std::uint32_t w = adaptive_window_.window_us();
      window_now_.store(w, std::memory_order_relaxed);
      Metrics().window_us->Set(static_cast<double>(w));
    }
  }
}

void GroupCommitBatcher::CompletionLoop() {
  for (;;) {
    InFlight batch;
    {
      std::unique_lock<std::mutex> lock(fly_mu_);
      fly_cv_.wait(lock, [this] { return fly_stop_ || !in_flight_.empty(); });
      if (in_flight_.empty()) return;  // stopped and drained
      batch = std::move(in_flight_.front());
      in_flight_.pop_front();
    }
    // Popping before finishing keeps `in_flight_count_` (not the queue
    // size) as the pipeline bound: this batch still occupies its slot
    // until its acks are dispatched.
    FinishBatch(batch);
    {
      std::lock_guard<std::mutex> lock(fly_mu_);
      --in_flight_count_;
    }
    fly_space_cv_.notify_all();
  }
}

bool GroupCommitBatcher::ApplyOne(InFlight& batch) {
  // Coalescing window actually achieved by this batch: oldest submit to
  // commit start (window sleep + queue wait, what an acked write waited
  // before its commit even began).
  if (!batch.groups.empty() && batch.groups.front().submit_ns != 0 &&
      obs::RecordingEnabled()) {
    Metrics().window->Record(obs::NowNs() - batch.groups.front().submit_ns);
  }
  try {
    obs::ScopedTimer commit_timer(Metrics().commit, "batch.commit");
    store_->ApplyBatch(batch.ops);
  } catch (const CrashException&) {
    // The "machine" lost power mid-batch: nothing from this batch is
    // acked (earlier batches already fenced before their acks went out).
    crashed_.store(true, std::memory_order_release);
    depth_.fetch_sub(batch.ops.size(), std::memory_order_relaxed);
    return false;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_writes_.fetch_add(batch.ops.size(), std::memory_order_relaxed);
  // Replication gtid covering this batch: the highest gtid the store has
  // published. All this batch's publishes happened inside ApplyBatch
  // (under the shard latches), so by now the value covers every op here.
  // Captured on the apply thread — the next batch's ApplyBatch may bump
  // the store-wide gtid before the completion thread runs.
  batch.gtid = store_->replication_gtid();
  return true;
}

void GroupCommitBatcher::FinishBatch(InFlight& batch) {
  repl::ReplicationLog* rlog = store_->replication_log();
  bool fenced = false;
  if (sync_repl_ && rlog != nullptr && batch.gtid != 0 &&
      guard_ != nullptr && guard_->expects_follower()) {
    // Guarded semi-sync (RewindGuard): the ack releases only on a REAL
    // follower ack — never on a timeout, never because the subscriber
    // set is momentarily empty (a partition tears the session down, and
    // acking into that gap is exactly the lost-acked-write semi-sync
    // exists to prevent). The wait ends three ways: a follower acked
    // (ack the writes), the guard fenced this node (fail them
    // kNotLeader), or shutdown (halt_).
    bool acked = false;
    while (!acked && guard_->is_leader() &&
           !halt_.load(std::memory_order_acquire)) {
      acked = rlog->WaitAckedBySome(batch.gtid, kGuardWaitSliceMs);
    }
    if (!acked) {
      if (!guard_->is_leader()) {
        fenced = true;
      } else {
        static obs::Counter* timeouts =
            obs::Registry::Get().GetCounter("repl.sync_timeouts");
        timeouts->Add(1);  // shutdown with the follower still behind
      }
    }
  } else if (sync_repl_ && rlog != nullptr && batch.gtid != 0 &&
             rlog->subscriber_count() > 0) {
    // Semi-sync: hold the acks until every follower caught up to this
    // batch. On timeout the write is still durable locally — ack anyway,
    // but count the breach so operators see the degradation. Runs on the
    // completion thread, so a slow follower stalls only ack release, not
    // the apply pipeline.
    if (!rlog->WaitAcked(batch.gtid, sync_repl_timeout_ms_)) {
      static obs::Counter* timeouts =
          obs::Registry::Get().GetCounter("repl.sync_timeouts");
      timeouts->Add(1);
    }
  }
  // The batch has fenced: every group's writes are durable. Record each
  // group's submit-to-ack-dispatch latency as the server-side write
  // latency (the epoll worker's send() is not included — acceptable for a
  // server-internal SLO).
  std::uint64_t ack_ns = obs::RecordingEnabled() ? obs::NowNs() : 0;
  for (const Group& g : batch.groups) {
    if (ack_ns != 0 && g.submit_ns != 0) {
      std::uint64_t dur = ack_ns - g.submit_ns;
      obs::Histogram* hist = g.op == Op::kPut   ? Metrics().op_put
                             : g.op == Op::kDel ? Metrics().op_del
                                                : Metrics().op_mput;
      hist->Record(dur);
      obs::SlowOpLog(g.op == Op::kPut   ? "PUT"
                     : g.op == Op::kDel ? "DEL"
                                        : "MPUT",
                     g.count, dur, slow_op_threshold_us_);
    }
  }
  std::map<std::uint32_t, std::vector<WriteCompletion>> by_worker;
  for (const Group& g : batch.groups) {
    Status status = Status::kOk;
    std::uint64_t applied = 0;
    for (std::size_t i = 0; i < g.count; ++i) {
      if (batch.ops[g.first + i].applied) ++applied;
    }
    if (fenced) {
      // Demoted mid-wait: the write reached this node's store but was
      // never replicated and must not be acked — the client retries
      // against the new leader.
      status = Status::kNotLeader;
    } else if (g.op == Op::kDel) {
      status = applied != 0 ? Status::kOk : Status::kNotFound;
    } else if (applied != g.count) {
      // A put ApplyBatch refused (invalid key that slipped past the
      // server's validation) must never be acked as durable.
      status = Status::kBadRequest;
    }
    by_worker[g.worker].push_back({g.conn_id, g.op, status, batch.gtid});
    if (!fenced) {
      acked_writes_.fetch_add(applied, std::memory_order_relaxed);
    }
  }
  if (fenced && guard_ != nullptr) {
    guard_->CountFencedWrites(batch.groups.size());
  }
  for (auto& [worker, completions] : by_worker) {
    sink_(worker, std::move(completions));
  }
  depth_.fetch_sub(batch.ops.size(), std::memory_order_relaxed);
}

void GroupCommitBatcher::DrainPipeline() {
  std::unique_lock<std::mutex> lock(fly_mu_);
  fly_space_cv_.wait(lock, [this] { return in_flight_count_ == 0; });
}

void GroupCommitBatcher::ShutdownPipeline(bool discard) {
  // The completion thread may be parked in a guarded semi-sync wait;
  // release it before joining.
  halt_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(fly_mu_);
    if (discard) {
      // Crash path: the queued batches are fenced and durable, but every
      // connection is about to be dropped — release their slots without
      // dispatching acks. (A batch the completion thread already popped
      // finishes normally; the join below waits for it.)
      for (InFlight& b : in_flight_) {
        depth_.fetch_sub(b.ops.size(), std::memory_order_relaxed);
        --in_flight_count_;
      }
      in_flight_.clear();
    }
    fly_stop_ = true;
  }
  fly_cv_.notify_all();
  if (completion_thread_.joinable()) completion_thread_.join();
}

}  // namespace serve
}  // namespace rwd
