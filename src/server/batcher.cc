#include "src/server/batcher.h"

#include <chrono>
#include <map>
#include <utility>

#include "src/nvm/crash.h"
#include "src/obs/metrics.h"
#include "src/repl/replication_log.h"

namespace rwd {
namespace serve {
namespace {

/// Batcher phase + per-write-op latency histograms. The server-side write
/// latency (submit to post-fence ack dispatch) lives here because only
/// the batcher knows when a group's covering batch fenced.
struct BatchMetrics {
  obs::Registry& reg = obs::Registry::Get();
  obs::Histogram* window = reg.GetHistogram("batcher.window");
  obs::Histogram* commit = reg.GetHistogram("batcher.commit");
  obs::Histogram* op_put = reg.GetHistogram("server.op.put");
  obs::Histogram* op_del = reg.GetHistogram("server.op.del");
  obs::Histogram* op_mput = reg.GetHistogram("server.op.mput");
};

BatchMetrics& Metrics() {
  static BatchMetrics m;
  return m;
}

}  // namespace

GroupCommitBatcher::GroupCommitBatcher(KvStore* store, std::uint32_t window_us,
                                       std::size_t max_pending_ops,
                                       CompletionSink sink, CrashHook on_crash,
                                       std::uint64_t slow_op_threshold_us,
                                       bool sync_repl,
                                       std::uint32_t sync_repl_timeout_ms)
    : store_(store),
      window_us_(window_us),
      max_pending_ops_(max_pending_ops == 0 ? 1 : max_pending_ops),
      sink_(std::move(sink)),
      on_crash_(std::move(on_crash)),
      slow_op_threshold_us_(slow_op_threshold_us),
      sync_repl_(sync_repl),
      sync_repl_timeout_ms_(sync_repl_timeout_ms) {}

GroupCommitBatcher::~GroupCommitBatcher() { Stop(); }

void GroupCommitBatcher::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void GroupCommitBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Join outside the latch: the batch thread takes mu_ to drain.
  if (thread_.joinable()) thread_.join();
}

bool GroupCommitBatcher::Submit(std::uint32_t worker, std::uint64_t conn_id,
                                Op op, std::vector<KvWriteOp> ops) {
  if (crashed()) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return false;
    std::size_t first = pending_ops_.size();
    for (KvWriteOp& w : ops) pending_ops_.push_back(std::move(w));
    std::uint64_t now = obs::RecordingEnabled() ? obs::NowNs() : 0;
    pending_groups_.push_back({worker, conn_id, op, first, ops.size(), now});
    depth_.fetch_add(ops.size(), std::memory_order_relaxed);
  }
  cv_.notify_one();
  return true;
}

void GroupCommitBatcher::Loop() {
  for (;;) {
    std::vector<KvWriteOp> ops;
    std::vector<Group> groups;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !pending_groups_.empty(); });
      if (pending_groups_.empty()) return;  // stop requested, queue drained
      bool draining = stop_;
      // Backpressure: a queue already at its cap forfeits the coalescing
      // window — committing immediately drains faster than coalescing
      // further, and the cap bounds how much a window can accumulate.
      bool saturated = pending_ops_.size() >= max_pending_ops_;
      if (!draining && !saturated && window_us_ != 0) {
        // The coalescing window: the first write of a batch waits briefly
        // so concurrent connections' writes share its commit and fence.
        lock.unlock();
        std::this_thread::sleep_for(std::chrono::microseconds(window_us_));
        lock.lock();
      }
      ops.swap(pending_ops_);
      groups.swap(pending_groups_);
    }
    bool ok = CommitBatch(ops, groups);
    depth_.fetch_sub(ops.size(), std::memory_order_relaxed);
    if (!ok) return;  // simulated power failure
  }
}

bool GroupCommitBatcher::CommitBatch(std::vector<KvWriteOp>& ops,
                                     std::vector<Group>& groups) {
  // Coalescing window actually achieved by this batch: oldest submit to
  // commit start (window sleep + queue wait, what an acked write waited
  // before its commit even began).
  if (!groups.empty() && groups.front().submit_ns != 0 &&
      obs::RecordingEnabled()) {
    Metrics().window->Record(obs::NowNs() - groups.front().submit_ns);
  }
  try {
    obs::ScopedTimer commit_timer(Metrics().commit, "batch.commit");
    store_->ApplyBatch(ops);
  } catch (const CrashException&) {
    // The "machine" lost power mid-batch: nothing from this batch is
    // acked (earlier batches already fenced before their acks went out).
    crashed_.store(true, std::memory_order_release);
    if (on_crash_) on_crash_();
    return false;
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_writes_.fetch_add(ops.size(), std::memory_order_relaxed);
  // Replication gtid covering this batch: the highest gtid the store has
  // published. All this batch's publishes happened inside ApplyBatch
  // (under the shard latches), so by now the value covers every op here.
  std::uint64_t gtid = store_->replication_gtid();
  repl::ReplicationLog* rlog = store_->replication_log();
  if (sync_repl_ && rlog != nullptr && gtid != 0 &&
      rlog->subscriber_count() > 0) {
    // Semi-sync: hold the acks until every follower caught up to this
    // batch. On timeout the write is still durable locally — ack anyway,
    // but count the breach so operators see the degradation.
    if (!rlog->WaitAcked(gtid, sync_repl_timeout_ms_)) {
      static obs::Counter* timeouts =
          obs::Registry::Get().GetCounter("repl.sync_timeouts");
      timeouts->Add(1);
    }
  }
  // The batch has fenced: every group's writes are durable. Record each
  // group's submit-to-ack-dispatch latency as the server-side write
  // latency (the epoll worker's send() is not included — acceptable for a
  // server-internal SLO).
  std::uint64_t ack_ns =
      obs::RecordingEnabled() ? obs::NowNs() : 0;
  std::map<std::uint32_t, std::vector<WriteCompletion>> by_worker;
  for (const Group& g : groups) {
    if (ack_ns != 0 && g.submit_ns != 0) {
      std::uint64_t dur = ack_ns - g.submit_ns;
      obs::Histogram* hist = g.op == Op::kPut   ? Metrics().op_put
                             : g.op == Op::kDel ? Metrics().op_del
                                                : Metrics().op_mput;
      hist->Record(dur);
      obs::SlowOpLog(g.op == Op::kPut   ? "PUT"
                     : g.op == Op::kDel ? "DEL"
                                        : "MPUT",
                     g.count, dur, slow_op_threshold_us_);
    }
  }
  for (const Group& g : groups) {
    Status status = Status::kOk;
    std::uint64_t applied = 0;
    for (std::size_t i = 0; i < g.count; ++i) {
      if (ops[g.first + i].applied) ++applied;
    }
    if (g.op == Op::kDel) {
      status = applied != 0 ? Status::kOk : Status::kNotFound;
    } else if (applied != g.count) {
      // A put ApplyBatch refused (invalid key that slipped past the
      // server's validation) must never be acked as durable.
      status = Status::kBadRequest;
    }
    by_worker[g.worker].push_back({g.conn_id, g.op, status, gtid});
    acked_writes_.fetch_add(applied, std::memory_order_relaxed);
  }
  for (auto& [worker, completions] : by_worker) {
    sink_(worker, std::move(completions));
  }
  return true;
}

}  // namespace serve
}  // namespace rwd
