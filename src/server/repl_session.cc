#include "src/server/repl_session.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/repl/snapshot.h"
#include "src/server/protocol.h"

namespace rwd {
namespace serve {
namespace {

/// Soft cap on one snapshot chunk's item bytes; frames stay far below
/// kMaxFrameBytes even with max-size values in the store.
constexpr std::size_t kSnapshotChunkBytes = 1u << 20;

}  // namespace

ReplSession::ReplSession(KvStore* store, repl::ReplicationLog* log, int fd,
                         std::uint64_t start_after, std::string pre_out,
                         std::string pre_in, repl::RewindGuard* guard,
                         std::uint64_t follower_epoch)
    : store_(store),
      log_(log),
      fd_(fd),
      start_after_(start_after),
      guard_(guard),
      follower_epoch_(follower_epoch),
      pre_out_(std::move(pre_out)),
      in_(std::move(pre_in)) {
  // The fd arrives non-blocking from the epoll loop; both session threads
  // (record sender, ack receiver) want plain blocking I/O.
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags & ~O_NONBLOCK);
}

ReplSession::~ReplSession() { Stop(); }

void ReplSession::Start() {
  thread_ = std::thread([this] { Run(); });
}

void ReplSession::Stop() {
  stop_.store(true, std::memory_order_release);
  ::shutdown(fd_, SHUT_RDWR);  // unblocks any in-flight send
  log_->Nudge();               // unblocks the shipper's poll wait
  if (thread_.joinable()) thread_.join();
  // Closed here, after the join, so Stop's shutdown() can never race a
  // close and hit a recycled descriptor.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool ReplSession::SendAll(const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    if (stop_.load(std::memory_order_acquire)) return false;
    ssize_t r = ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
    if (r > 0) {
      off += static_cast<std::size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::uint64_t ReplSession::SendSnapshot() {
  repl::StoreSnapshot snap = repl::TakeSnapshot(store_, log_);
  // Chunked so one giant store never builds a near-kMaxFrameBytes frame.
  // Every chunk repeats snap_gtid; the follower acts on the `last` one.
  std::size_t i = 0;
  do {
    std::string frame;
    std::size_t at =
        BeginFrame(&frame, static_cast<std::uint8_t>(Op::kReplSnapshot));
    std::size_t count_at = frame.size() + 9;  // after [last][snap_gtid]
    frame.push_back('\0');                    // `last`, patched below
    AppendU64(&frame, snap.gtid);
    AppendU32(&frame, 0);  // item count, patched below
    std::uint32_t items = 0;
    std::size_t body_start = frame.size();
    while (i < snap.kvs.size() &&
           frame.size() - body_start < kSnapshotChunkBytes) {
      AppendU64(&frame, snap.kvs[i].first);
      AppendU32(&frame,
                static_cast<std::uint32_t>(snap.kvs[i].second.size()));
      frame.append(snap.kvs[i].second);
      ++items;
      ++i;
    }
    bool last = i == snap.kvs.size();
    frame[count_at - 9] = last ? '\1' : '\0';
    std::memcpy(&frame[count_at], &items, 4);
    EndFrame(&frame, at);
    if (!SendAll(frame.data(), frame.size())) return ~std::uint64_t{0};
  } while (i < snap.kvs.size());
  return snap.gtid;
}

void ReplSession::RecvAcks() {
  char buf[4096];
  for (;;) {
    // Parse whatever is buffered (the detach residue on the first pass),
    // then block for more. Each ack advances the cursor immediately —
    // Ack() notifies the log's cv, releasing semi-sync WaitAcked callers.
    std::size_t off = 0;
    bool broken = false;
    while (in_.size() - off >= 4) {
      std::uint32_t len = ReadU32(in_.data() + off);
      if (len < 1 || len > kMaxFrameBytes) {
        broken = true;
        break;
      }
      if (in_.size() - off < 4 + static_cast<std::size_t>(len)) break;
      const char* p = in_.data() + off + 4;
      // Only acks flow leader-ward on a stream: 9 bytes pre-guard,
      // 17 with the follower's epoch appended (PR 10).
      if (static_cast<Op>(static_cast<std::uint8_t>(*p)) != Op::kReplAck ||
          (len != 9 && len != 17)) {
        broken = true;
        break;
      }
      log_->Ack(sub_id_, ReadU64(p + 1));
      if (guard_ != nullptr) {
        // Every ack — data or heartbeat reply — renews our own lease.
        guard_->ObserveFollowerContact();
        if (len == 17) guard_->ObserveRemoteEpoch(ReadU64(p + 9));
      }
      off += 4 + len;
    }
    in_.erase(0, off);
    if (broken) break;
    ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
    if (r > 0) {
      in_.append(buf, static_cast<std::size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // peer closed, Stop()'s shutdown, or a hard error
  }
  peer_gone_.store(true, std::memory_order_release);
  log_->Nudge();  // wake the shipper so its idle hook sees peer_gone_
}

void ReplSession::Run() {
  // Residue first: replies to requests the follower pipelined before its
  // subscribe must reach it before the subscribe reply.
  bool ok = pre_out_.empty() || SendAll(pre_out_.data(), pre_out_.size());
  pre_out_.clear();
  if (ok && guard_ != nullptr && follower_epoch_ > guard_->epoch()) {
    // The subscriber is from a later epoch than ours: WE are the stale
    // node. Refuse with a redirect hint and let the guard's monitor run
    // the demotion (fence + rejoin) on its own thread.
    guard_->ObserveRemoteEpoch(follower_epoch_);
    std::string reply;
    std::size_t at =
        BeginFrame(&reply, static_cast<std::uint8_t>(Status::kNotLeader));
    AppendNotLeaderPayload(&reply, guard_->epoch(), guard_->leader_hint());
    EndFrame(&reply, at);
    SendAll(reply.data(), reply.size());
    done_.store(true, std::memory_order_release);
    return;
  }
  bool forced = start_after_ == kReplSubscribeSnapshot;
  std::uint64_t resume = forced ? 0 : start_after_;
  // The sentinel must short-circuit CanResume: ~0 is "past the ring's
  // head" and would otherwise read as resumable.
  bool snapshot_first = ok && (forced || !log_->CanResume(resume));
  if (ok) {
    // Subscribe reply: [kOk][mode:u8][start:u64][epoch:u64] (the epoch
    // trailer since PR 10; pre-guard followers ignore unknown bytes by
    // accepting either length).
    std::string reply;
    std::size_t at =
        BeginFrame(&reply, static_cast<std::uint8_t>(Status::kOk));
    reply.push_back(snapshot_first ? '\1' : '\0');
    AppendU64(&reply, resume);
    AppendU64(&reply, guard_ != nullptr ? guard_->epoch() : 0);
    EndFrame(&reply, at);
    ok = SendAll(reply.data(), reply.size());
  }
  if (ok && snapshot_first) {
    resume = SendSnapshot();
    ok = resume != ~std::uint64_t{0};
  }
  if (ok) {
    sub_id_ = log_->Subscribe("tcp-follower");
    // Seed the cursor at the resume point so a fresh follower does not
    // stall semi-sync acks for gtids it was never shipped.
    log_->Ack(sub_id_, resume);
    // Acks ride their own blocking thread: the cursor advances the moment
    // an ack frame lands instead of at the next shipper poll boundary.
    ack_thread_ = std::thread([this] { RecvAcks(); });
    // With a guard, heartbeats ride the shipper's idle hook, so the poll
    // wait must undercut the heartbeat interval or a quiet log would
    // starve the lease.
    std::uint32_t hb_ms = guard_ != nullptr ? guard_->heartbeat_ms() : 0;
    std::uint32_t poll_wait_ms =
        hb_ms != 0 ? std::max<std::uint32_t>(2, std::min(hb_ms / 2, 100u))
                   : 100;
    auto last_hb = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(hb_ms);  // first one now
    repl::Shipper shipper(
        log_, resume,
        [this](const repl::ReplRecord& rec) {
          std::string frame;
          std::size_t at =
              BeginFrame(&frame, static_cast<std::uint8_t>(Op::kReplBatch));
          repl::EncodeRecordPayload(rec, &frame);
          EndFrame(&frame, at);
          return SendAll(frame.data(), frame.size());
        },
        [this, hb_ms, &last_hb] {
          if (stop_.load(std::memory_order_acquire) ||
              peer_gone_.load(std::memory_order_acquire)) {
            return false;
          }
          // Leaders only: a demoted node keeps streaming what it applies
          // (chained topology) but stops claiming the lease.
          if (guard_ != nullptr && guard_->is_leader()) {
            auto now = std::chrono::steady_clock::now();
            if (now - last_hb >= std::chrono::milliseconds(hb_ms)) {
              std::string frame;
              EncodeReplHeartbeat(&frame, guard_->epoch(),
                                  log_->last_gtid());
              if (!SendAll(frame.data(), frame.size())) return false;
              last_hb = now;
              guard_->CountHeartbeatSent();
            }
          }
          return true;
        },
        poll_wait_ms);
    shipper.Run();
    // A gap means the ring rotated past this follower mid-stream. The
    // stream just ends; the follower reconnects and resynchronizes from
    // a snapshot. (The fd is closed by Stop(), after the joins.)
    ::shutdown(fd_, SHUT_RD);  // unblock the ack receiver
    ack_thread_.join();
    log_->Unsubscribe(sub_id_);
  }
  done_.store(true, std::memory_order_release);
}

}  // namespace serve
}  // namespace rwd
