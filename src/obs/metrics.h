// RewindScope metrics: a dependency-free observability layer shared by
// every subsystem — named counters, gauges and log-linear latency
// histograms behind a process-wide registry, designed so that recording
// on the latch-free read path costs ONE relaxed increment to a
// thread-striped cacheline (no locks, no clock reads, no allocation).
//
// Design rules, learned the hard way on the PR 5 read path:
//   * Hot-path recording never reads a clock. Histograms are fed by the
//     callers that already paid for timestamps (server ops, batch
//     commits, 2PC phases, checkpoint/recovery) — KvStore::Get bumps
//     striped counters only.
//   * Everything is pre-allocated at metric-creation time; Record() and
//     Add() never allocate, so they are safe from any context.
//   * Recording is globally gated: while the deterministic crash
//     injector is armed (PauseRecording), Histogram::Record, ScopedTimer
//     and trace emission become no-ops — instrumentation must not add
//     persistence events or timing jitter to a crash sweep.
//   * Metrics live forever once created (the registry never erases), so
//     cached `Histogram*`/`Counter*` pointers in hot paths stay valid
//     for the life of the process.
#ifndef REWIND_OBS_METRICS_H_
#define REWIND_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rwd {
namespace obs {

// --- global recording gate -------------------------------------------------

/// True unless recording is paused (crash injector armed). A relaxed load;
/// callers use it to skip clock reads as well as the Record itself.
bool RecordingEnabled();
/// Nestable pause/resume of ALL histogram recording and trace emission.
void PauseRecording();
void ResumeRecording();

/// Monotonic nanoseconds (steady clock) for phase timing.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- striping --------------------------------------------------------------

/// Stripes per counter/histogram. Power of two; 16 spreads a 2×-hyperthreaded
/// 8-core box with no sharing in the common case.
constexpr std::size_t kStripes = 16;

/// This thread's stable stripe index in [0, kStripes): assigned round-robin
/// on first use, so threads land on distinct cachelines until there are
/// more threads than stripes.
std::size_t ThreadStripe();

// Emits one complete trace event (defined in trace.cc; declared here so
// ScopedTimer needs no trace.h include). No-op unless tracing is enabled
// and recording is not paused.
void TraceEmit(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns);

// --- metric kinds ----------------------------------------------------------

/// A monotonically increasing striped counter. Add() is one relaxed
/// fetch_add on a thread-local stripe's own cacheline. NOT gated by the
/// recording pause: counters carry correctness-adjacent accounting (ops
/// observed) that tests assert on even during crash sweeps.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t n = 1) {
    cells_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// A last-value gauge (double, stored as bits in one atomic word).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double Value() const {
    std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<std::uint64_t> bits_{0};
};

/// A log-linear latency histogram over nanosecond values (HdrHistogram's
/// bucketing scheme): 32 linear sub-buckets per power of two, so the
/// relative quantization error is bounded by 1/32 ≈ 3.1% everywhere.
/// Values below 32 ns map exactly; values at or above 2^36 ns (~69 s)
/// clamp into the last bucket. Recording is striped (kHistStripes
/// cacheline-padded bucket arrays summed at snapshot time) and gated by
/// the global recording pause; it never allocates and is a no-op before
/// any registry exists (the histogram itself owns all its storage).
class Histogram {
 public:
  static constexpr std::size_t kSubBits = 5;
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  static constexpr std::size_t kMaxExp = 36;  ///< clamp at 2^36 ns
  static constexpr std::size_t kBuckets =
      (kMaxExp - kSubBits + 1) * kSubBuckets;  // 1024
  /// Stripes per histogram (fewer than Counter's: each stripe is ~8 KiB).
  static constexpr std::size_t kHistStripes = 8;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one nanosecond value: 4 relaxed atomic ops on this thread's
  /// stripe. No-op while recording is paused.
  void Record(std::uint64_t ns);

  /// Bucket index for a value (exposed for boundary tests).
  static std::size_t BucketIndex(std::uint64_t ns) {
    if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
    int b = 63 - __builtin_clzll(ns);  // position of the highest set bit
    if (b >= static_cast<int>(kMaxExp)) return kBuckets - 1;
    std::size_t sub =
        (ns >> (b - static_cast<int>(kSubBits))) & (kSubBuckets - 1);
    return (static_cast<std::size_t>(b) - kSubBits + 1) * kSubBuckets + sub;
  }

  /// Representative (midpoint) nanosecond value of a bucket.
  static double BucketMidNs(std::size_t bucket) {
    if (bucket < kSubBuckets) return static_cast<double>(bucket) + 0.5;
    std::size_t chunk = bucket / kSubBuckets;  // >= 1
    std::size_t sub = bucket % kSubBuckets;
    double scale = static_cast<double>(std::uint64_t{1} << (chunk - 1));
    return (static_cast<double>(kSubBuckets + sub) + 0.5) * scale;
  }

  /// A merged point-in-time view; also the merge unit (snapshots from
  /// different histograms — e.g. per-shard instances — combine with
  /// Merge, preserving percentile math).
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t max_ns = 0;
    std::vector<std::uint64_t> buckets;  ///< kBuckets entries

    void Merge(const Snapshot& other);
    /// Percentile in nanoseconds (p in [0, 100]); 0 with no samples.
    /// Never exceeds max_ns (bucket midpoints are clamped to it).
    double PercentileNs(double p) const;
    double MeanNs() const {
      return count ? static_cast<double>(sum_ns) / count : 0.0;
    }
  };
  Snapshot Snap() const;

 private:
  struct alignas(64) Stripe {
    Stripe() {
      for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::atomic<std::uint64_t> buckets[kBuckets];
  };
  std::unique_ptr<Stripe[]> stripes_;
};

// --- registry --------------------------------------------------------------

/// Wire/display type of one exported sample (STATS v2 `type` byte).
enum class SampleType : std::uint8_t {
  kCounter = 0,  ///< monotonic count
  kGauge = 1,    ///< last value
  kValue = 2,    ///< derived statistic (percentile, mean, ...)
};

/// One exported (name, type, value) triple.
struct Sample {
  std::string name;
  SampleType type = SampleType::kValue;
  double value = 0;
};

/// Process-wide metric registry. Get* calls find-or-create under a mutex
/// (call once and cache the pointer in hot paths); returned pointers stay
/// valid for the life of the process — entries are never erased, so a
/// cached pointer can never dangle. Snapshot() expands each histogram
/// into `<name>.count`, `.p50_us`, `.p90_us`, `.p99_us`, `.p999_us`,
/// `.mean_us` and `.max_us` samples (microseconds, double).
class Registry {
 public:
  static Registry& Get();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// All samples, sorted by name.
  std::vector<Sample> Snapshot() const;

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Rate-limited slow-operation report to stderr: logs when `dur_ns`
/// exceeds `threshold_us` (0 disables), at most one line per second
/// process-wide so a pathological phase cannot flood the log.
void SlowOpLog(const char* op, std::uint64_t detail, std::uint64_t dur_ns,
               std::uint64_t threshold_us);

// --- scoped phase timer ----------------------------------------------------

/// Times a scope into a histogram, optionally mirroring the duration into
/// a `.last_us` gauge and emitting a trace event. Decides everything at
/// construction: when recording is paused (crash injector armed) it takes
/// no clock reads and records nothing, keeping crash sweeps deterministic.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, const char* trace_name = nullptr,
                       Gauge* last_us = nullptr)
      : hist_(RecordingEnabled() ? hist : nullptr),
        trace_name_(trace_name),
        last_us_(last_us),
        start_ns_(hist_ != nullptr ? NowNs() : 0) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    std::uint64_t dur = NowNs() - start_ns_;
    hist_->Record(dur);
    if (last_us_ != nullptr) last_us_->Set(static_cast<double>(dur) / 1e3);
    if (trace_name_ != nullptr) TraceEmit(trace_name_, start_ns_, dur);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  const char* trace_name_;
  Gauge* last_us_;
  std::uint64_t start_ns_;
};

}  // namespace obs
}  // namespace rwd

#endif  // REWIND_OBS_METRICS_H_
