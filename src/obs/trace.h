// RewindScope tracing: a lock-free per-thread event ring buffer dumped as
// Chrome trace_event JSON (load the file at chrome://tracing or
// https://ui.perfetto.dev). Emission is wait-free on the recording thread
// — one relaxed fetch_add plus three relaxed stores into a
// thread-private ring slot — and a disabled tracer costs one relaxed
// load. Rings are bounded: each thread keeps its most recent
// `events_per_thread` events, older ones are overwritten.
//
// Event names must be string literals (or otherwise immortal): only the
// pointer is stored in the ring.
#ifndef REWIND_OBS_TRACE_H_
#define REWIND_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace rwd {
namespace obs {

/// Turns tracing on. Rings are allocated lazily per emitting thread (and
/// reused — with their original capacity — across Disable/Enable cycles);
/// already-buffered events are cleared so a new session starts empty.
void TraceEnable(std::size_t events_per_thread = 65536);

/// Turns tracing off. Rings are retained (threads may be mid-emit; nothing
/// is ever freed), just no longer written.
void TraceDisable();

bool TraceEnabled();

/// Records one complete-duration event. No-op unless tracing is enabled
/// AND recording is not paused (see metrics.h — the crash injector pauses
/// recording, so crash sweeps see zero instrumentation activity). `name`
/// must outlive the tracing session (use a string literal).
void TraceEmit(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns);

/// Events currently buffered across all rings (test/diagnostic hook).
std::size_t TraceEventCount();

/// Writes everything buffered as a Chrome trace_event JSON file
/// (`{"traceEvents": [...]}`, "ph":"X" complete events, microsecond
/// timestamps). Returns false when the file cannot be written. May be
/// called while tracing is live (SIGUSR1 handler path); events emitted
/// concurrently with the dump may or may not be included.
bool TraceDumpJson(const std::string& path);

}  // namespace obs
}  // namespace rwd

#endif  // REWIND_OBS_TRACE_H_
