#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/metrics.h"

namespace rwd {
namespace obs {
namespace {

/// One thread's bounded event ring. Slots are written with relaxed atomic
/// stores, name last with release so a concurrent dump that observes the
/// name also observes the timestamps (a dump racing an in-flight emit may
/// read a slot mid-overwrite — tolerable for a diagnostic trace; what it
/// can never do is fault or tear a pointer).
struct Ring {
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> dur_ns{0};
  };

  Ring(std::size_t capacity, std::uint32_t tid)
      : capacity(capacity), tid(tid), slots(new Slot[capacity]) {}

  const std::size_t capacity;
  const std::uint32_t tid;  ///< stable display id for the JSON "tid" field
  std::unique_ptr<Slot[]> slots;
  std::atomic<std::uint64_t> next{0};  ///< total events ever emitted
};

std::atomic<bool> g_enabled{false};

/// Guards the ring registry and capacity; never held during Emit's fast
/// path. Rings live for the life of the process (threads keep raw
/// pointers), so a dump can walk them without lifetime games.
std::mutex g_mu;
std::vector<std::unique_ptr<Ring>>& Rings() {
  static auto* rings = new std::vector<std::unique_ptr<Ring>>();
  return *rings;
}
std::size_t g_capacity = 65536;
std::uint32_t g_next_tid = 1;

Ring* RegisterThisThread() {
  std::lock_guard<std::mutex> lock(g_mu);
  Rings().push_back(std::make_unique<Ring>(g_capacity, g_next_tid++));
  return Rings().back().get();
}

}  // namespace

void TraceEnable(std::size_t events_per_thread) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_capacity = std::max<std::size_t>(events_per_thread, 16);
  for (auto& ring : Rings()) {
    // Start the session empty; a slot being written right now by a thread
    // that has not yet observed the enable flip is a lost event, not a
    // hazard (every field is atomic).
    for (std::size_t i = 0; i < ring->capacity; ++i) {
      ring->slots[i].name.store(nullptr, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  g_enabled.store(true, std::memory_order_release);
}

void TraceDisable() { g_enabled.store(false, std::memory_order_release); }

bool TraceEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void TraceEmit(const char* name, std::uint64_t ts_ns, std::uint64_t dur_ns) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (!RecordingEnabled()) return;
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) ring = RegisterThisThread();
  std::uint64_t i =
      ring->next.fetch_add(1, std::memory_order_relaxed) % ring->capacity;
  Ring::Slot& slot = ring->slots[i];
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_release);
}

std::size_t TraceEventCount() {
  std::lock_guard<std::mutex> lock(g_mu);
  std::size_t total = 0;
  for (const auto& ring : Rings()) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->next.load(std::memory_order_relaxed), ring->capacity));
  }
  return total;
}

bool TraceDumpJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\"traceEvents\": [");
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    for (const auto& ring : Rings()) {
      std::uint64_t filled = std::min<std::uint64_t>(
          ring->next.load(std::memory_order_relaxed), ring->capacity);
      for (std::uint64_t i = 0; i < filled; ++i) {
        const Ring::Slot& slot = ring->slots[i];
        const char* name = slot.name.load(std::memory_order_acquire);
        if (name == nullptr) continue;  // cleared or mid-first-write
        std::fprintf(
            f, "%s\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
            "\"ts\":%.3f,\"dur\":%.3f}",
            first ? "" : ",", name, ring->tid,
            static_cast<double>(slot.ts_ns.load(std::memory_order_relaxed)) /
                1e3,
            static_cast<double>(slot.dur_ns.load(std::memory_order_relaxed)) /
                1e3);
        first = false;
      }
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace rwd
