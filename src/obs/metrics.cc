#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rwd {
namespace obs {
namespace {

/// Depth of nested PauseRecording() calls; recording runs at depth 0.
std::atomic<int> g_pause_depth{0};

/// Round-robin stripe assignment source.
std::atomic<std::uint32_t> g_next_stripe{0};

}  // namespace

bool RecordingEnabled() {
  return g_pause_depth.load(std::memory_order_relaxed) == 0;
}

void PauseRecording() {
  g_pause_depth.fetch_add(1, std::memory_order_relaxed);
}

void ResumeRecording() {
  g_pause_depth.fetch_sub(1, std::memory_order_relaxed);
}

std::size_t ThreadStripe() {
  thread_local std::size_t stripe =
      g_next_stripe.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

// --- Histogram -------------------------------------------------------------

Histogram::Histogram() : stripes_(new Stripe[kHistStripes]) {}

void Histogram::Record(std::uint64_t ns) {
  if (!RecordingEnabled()) return;
  Stripe& s = stripes_[ThreadStripe() & (kHistStripes - 1)];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = s.max.load(std::memory_order_relaxed);
  while (cur < ns && !s.max.compare_exchange_weak(cur, ns,
                                                  std::memory_order_relaxed)) {
  }
  s.buckets[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.buckets.assign(kBuckets, 0);
  for (std::size_t i = 0; i < kHistStripes; ++i) {
    const Stripe& s = stripes_[i];
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum_ns += s.sum.load(std::memory_order_relaxed);
    snap.max_ns =
        std::max(snap.max_ns, s.max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < kBuckets; ++b) {
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (buckets.empty()) buckets.assign(kBuckets, 0);
  count += other.count;
  sum_ns += other.sum_ns;
  max_ns = std::max(max_ns, other.max_ns);
  for (std::size_t b = 0; b < other.buckets.size() && b < buckets.size();
       ++b) {
    buckets[b] += other.buckets[b];
  }
}

double Histogram::Snapshot::PercentileNs(double p) const {
  if (count == 0) return 0.0;
  p = std::min(std::max(p, 0.0), 100.0);
  // Rank of the percentile sample, 1-based, matching the nearest-rank
  // definition a sorted-vector oracle uses.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      // The midpoint can overshoot the true maximum in a sparse top
      // bucket; the recorded max is a tighter bound.
      return std::min(BucketMidNs(b), static_cast<double>(max_ns));
    }
  }
  return static_cast<double>(max_ns);
}

// --- Registry --------------------------------------------------------------

Registry& Registry::Get() {
  static Registry* instance = new Registry();  // never destroyed: metric
  return *instance;  // pointers must outlive static-destruction order
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::vector<Sample> Registry::Snapshot() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(counters_.size() + gauges_.size() + 7 * histograms_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, SampleType::kCounter,
                   static_cast<double>(c->Value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, SampleType::kGauge, g->Value()});
  }
  for (const auto& [name, h] : histograms_) {
    Histogram::Snapshot s = h->Snap();
    out.push_back({name + ".count", SampleType::kCounter,
                   static_cast<double>(s.count)});
    out.push_back({name + ".p50_us", SampleType::kValue,
                   s.PercentileNs(50) / 1e3});
    out.push_back({name + ".p90_us", SampleType::kValue,
                   s.PercentileNs(90) / 1e3});
    out.push_back({name + ".p99_us", SampleType::kValue,
                   s.PercentileNs(99) / 1e3});
    out.push_back({name + ".p999_us", SampleType::kValue,
                   s.PercentileNs(99.9) / 1e3});
    out.push_back({name + ".mean_us", SampleType::kValue, s.MeanNs() / 1e3});
    out.push_back({name + ".max_us", SampleType::kValue,
                   static_cast<double>(s.max_ns) / 1e3});
  }
  std::sort(out.begin(), out.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return out;
}

void SlowOpLog(const char* op, std::uint64_t detail, std::uint64_t dur_ns,
               std::uint64_t threshold_us) {
  if (threshold_us == 0 || dur_ns < threshold_us * 1000) return;
  // One line per second process-wide: losing reports under a flood is the
  // point — the first one already says where to look.
  static std::atomic<std::uint64_t> last_log_ns{0};
  std::uint64_t now = NowNs();
  std::uint64_t last = last_log_ns.load(std::memory_order_relaxed);
  if (now - last < 1'000'000'000ull) return;
  if (!last_log_ns.compare_exchange_strong(last, now,
                                           std::memory_order_relaxed)) {
    return;  // another thread claimed this second's slot
  }
  std::fprintf(stderr, "[rewind] slow op: %s detail=%llu took %.1f us\n", op,
               static_cast<unsigned long long>(detail),
               static_cast<double>(dur_ns) / 1e3);
}

}  // namespace obs
}  // namespace rwd
