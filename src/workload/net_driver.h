// Network-driver mode of the YCSB workload subsystem: the same key
// choosers and standard A-F mixes as WorkloadDriver, executed against a
// RewindServe endpoint through pipelined KvClient connections — one
// connection per driver thread, up to `pipeline_depth` requests in flight
// each, so the server's group-commit batcher sees the concurrency it was
// built to amortize.
#ifndef REWIND_WORKLOAD_NET_DRIVER_H_
#define REWIND_WORKLOAD_NET_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/workload/workload.h"

namespace rwd {

/// Where and how hard to drive a RewindServe endpoint.
struct NetDriverSpec {
  std::string host = "127.0.0.1";
  std::uint16_t port = 7170;
  /// Requests each connection keeps in flight before blocking on a reply.
  std::size_t pipeline_depth = 16;
  /// Read scale-out (RewindRepl): when non-zero, odd-indexed driver
  /// threads connect to `host:follower_port` instead of the leader.
  /// Meant for read-dominated mixes (YCSB C): a follower answers writes
  /// with kNotLeader, which the accounting simply drops. Load() always
  /// goes to the leader.
  std::uint16_t follower_port = 0;
  /// Execute scans via SCAN_STREAM instead of buffered SCAN. A stream
  /// owns the connection's reply channel, so the driver drains its
  /// pipeline first and runs the scan synchronously — the trade YCSB E
  /// makes for untruncated, backpressured results.
  bool stream_scans = false;
  /// Failover ride-through (PR 10): with a non-zero reconnect budget a
  /// connection survives transport failures and fenced-leader bounces
  /// instead of failing the run. On a dropped link — or a kNotLeader
  /// streak as long as the pipeline — it reconnects after a capped,
  /// jittered backoff, following the kNotLeader redirect hint when one
  /// was seen, else alternating toward `host:failover_port`. Requests
  /// in flight on the broken link are abandoned unaccounted: only acked
  /// operations ever count, so the result reflects real completions.
  std::uint16_t failover_port = 0;
  std::uint32_t max_reconnects = 0;
};

/// Drives a remote KvStore with a WorkloadSpec over TCP. Latency samples
/// (spec.collect_latencies) measure enqueue-to-reply under pipelining, the
/// client-observed figure a closed-loop loadgen reports.
class NetWorkloadDriver {
 public:
  NetWorkloadDriver(const NetDriverSpec& net, const WorkloadSpec& spec,
                    std::uint64_t seed = 42);

  /// Loads keys [1, record_count] via pipelined MPUT batches on one
  /// connection. Returns keys inserted (0 on connection failure).
  std::uint64_t Load();

  /// Marks keys [1, record_count] as already loaded (server reuse) so the
  /// key choosers draw from the full space without a fresh Load().
  void AssumeLoaded() { chooser_.SetLoaded(spec_.record_count); }

  /// Runs the mix from spec.threads connections. `*ok` (may be null) is
  /// cleared when any connection failed mid-run; counters then reflect
  /// only the completed operations.
  WorkloadResult Run(bool* ok = nullptr);

  std::uint64_t max_key() const { return chooser_.max_key(); }

 private:
  void RunConn(std::size_t thread_idx, std::uint64_t ops,
               WorkloadResult* result, bool* conn_ok);

  NetDriverSpec net_;
  WorkloadSpec spec_;
  std::uint64_t seed_;
  /// Shared chooser state; inserts are published only once acked.
  KeyChooser chooser_;
};

}  // namespace rwd

#endif  // REWIND_WORKLOAD_NET_DRIVER_H_
