#include "src/workload/net_driver.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include "src/repl/follower_agent.h"
#include "src/server/client.h"
#include "src/server/protocol.h"

namespace rwd {
namespace {

using Clock = std::chrono::steady_clock;

/// What one in-flight request was, so its reply can be accounted.
struct Inflight {
  enum class Kind : std::uint8_t {
    kGet,
    kUpdate,
    kInsert,
    kScan,
    kRmwGet,   // the read half of an RMW; not counted as an op
    kRmwPut,   // the write half; counts the RMW
    kMput,     // atomic batch insert of `count` contiguous keys
  };
  Kind kind;
  std::uint64_t key;  // kMput: first key of the contiguous range
  Clock::time_point sent_at;
  std::uint32_t count = 1;  // kMput: keys in the range
                            // kScan: items still owed to this scan op
};

}  // namespace

NetWorkloadDriver::NetWorkloadDriver(const NetDriverSpec& net,
                                     const WorkloadSpec& spec,
                                     std::uint64_t seed)
    : net_(net), spec_(spec), seed_(seed), chooser_(spec) {}

std::uint64_t NetWorkloadDriver::Load() {
  serve::KvClient client;
  if (!client.Connect(net_.host, net_.port)) return 0;
  std::size_t batch_size = spec_.load_batch == 0 ? 1 : spec_.load_batch;
  std::size_t depth = net_.pipeline_depth == 0 ? 1 : net_.pipeline_depth;
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  batch.reserve(batch_size);
  for (std::uint64_t key = 1; key <= spec_.record_count; ++key) {
    batch.emplace_back(
        key, WorkloadDriver::MakeValue(key, 0, spec_.value_size));
    if (batch.size() == batch_size || key == spec_.record_count) {
      client.QueueMput(batch);
      batch.clear();
      while (client.pending() >= depth) {
        serve::KvClient::Reply reply;
        if (!client.Flush() || !client.ReadReply(&reply) ||
            reply.status != serve::Status::kOk) {
          return 0;
        }
      }
    }
  }
  serve::KvClient::Reply reply;
  while (client.pending() > 0) {
    if (!client.Flush() || !client.ReadReply(&reply) ||
        reply.status != serve::Status::kOk) {
      return 0;
    }
  }
  chooser_.SetLoaded(spec_.record_count);
  return spec_.record_count;
}

void NetWorkloadDriver::RunConn(std::size_t thread_idx, std::uint64_t ops,
                                WorkloadResult* result, bool* conn_ok) {
  // Read scale-out: with a follower endpoint configured, odd threads
  // drive it while even threads stay on the leader — fan the read load
  // across both nodes without splitting a single connection's pipeline.
  bool to_follower = net_.follower_port != 0 && thread_idx % 2 == 1;
  serve::KvClient client;
  std::string cur_host = net_.host;
  std::uint16_t cur_port = to_follower ? net_.follower_port : net_.port;
  // Failover ride-through state: with a reconnect budget, connects get
  // bounded timeouts (a black-holed leader must fail fast, not wedge the
  // run) and kNotLeader hints re-aim the next reconnect.
  std::uint32_t reconnects_left = net_.max_reconnects;
  std::string hint_host;
  std::uint16_t hint_port = 0;
  std::uint64_t notleader_streak = 0;
  std::uint32_t backoff_attempt = 0;
  auto connect_now = [&]() {
    return net_.max_reconnects != 0
               ? client.Connect(cur_host, cur_port, 5000, 2000)
               : client.Connect(cur_host, cur_port);
  };
  if (!connect_now() && reconnects_left == 0) {
    *conn_ok = false;
    return;
  }
  std::mt19937_64 rng(seed_ ^ (0x9E3779B97F4A7C15ull * (thread_idx + 1)));
  std::size_t depth = net_.pipeline_depth == 0 ? 1 : net_.pipeline_depth;
  std::size_t scan_len_cap = spec_.max_scan_len == 0 ? 1 : spec_.max_scan_len;
  ZipfianChooser scan_len_zipf(scan_len_cap);  // YCSB E scan lengths
  std::deque<Inflight> inflight;
  if (spec_.collect_latencies) result->latencies_us.reserve(ops);

  // Only successfully executed operations count (a kServerError reply
  // during shutdown is not a completed op), and an insert is published
  // to the shared chooser only once its Put really was acked.
  auto account = [&](const Inflight& sent,
                     const serve::KvClient::Reply& reply) {
    bool ok = reply.status == serve::Status::kOk;
    if (reply.status == serve::Status::kNotLeader) {
      // Fenced or follower target: remember the redirect hint; a streak
      // as long as the pipeline triggers a reconnect toward it.
      ++notleader_streak;
      serve::NotLeaderHint hint;
      if (serve::DecodeNotLeaderPayload(reply.payload, &hint) &&
          hint.has_addr) {
        hint_host = hint.host;
        hint_port = hint.port;
      }
    } else {
      notleader_streak = 0;
    }
    switch (sent.kind) {
      case Inflight::Kind::kGet:
        if (!ok && reply.status != serve::Status::kNotFound) return;
        ++result->reads;
        if (!ok) ++result->read_misses;
        break;
      case Inflight::Kind::kUpdate:
        if (!ok) return;
        ++result->updates;
        break;
      case Inflight::Kind::kInsert:
        if (!ok) return;
        ++result->inserts;
        chooser_.PublishInserted(sent.key);
        break;
      case Inflight::Kind::kScan: {
        if (!ok) return;
        // Decode the items a real consumer would materialize, and finish
        // what the server cut short: a truncated reply (byte cap or
        // server item cap) carries a continuation key, so the driver
        // re-issues the remainder — a scan op completes only when its
        // full result set arrived, same contract as streamed mode.
        std::vector<std::pair<std::uint64_t, std::string>> items;
        bool truncated = false;
        std::uint64_t next_key = 0;
        if (!serve::DecodeScanPayload(reply.payload, &items, &truncated,
                                      &next_key)) {
          return;
        }
        result->scanned_items += items.size();
        std::uint32_t remaining =
            sent.count > items.size()
                ? sent.count - static_cast<std::uint32_t>(items.size())
                : 0;
        if (truncated && remaining > 0) {
          client.QueueScan(next_key, remaining);
          inflight.push_back(
              {Inflight::Kind::kScan, 0, sent.sent_at, remaining});
          return;  // the op (and its latency sample) ends with the tail
        }
        ++result->scans;
        break;
      }
      case Inflight::Kind::kRmwGet:
        return;  // the write half carries the op count and the sample
      case Inflight::Kind::kRmwPut:
        if (!ok) return;
        ++result->rmws;
        break;
      case Inflight::Kind::kMput:
        if (!ok) return;
        ++result->mputs;
        result->mput_keys += sent.count;
        chooser_.PublishInserted(sent.key + sent.count - 1);
        break;
    }
    if (spec_.collect_latencies) {
      result->latencies_us.push_back(static_cast<std::uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - sent.sent_at)
              .count()));
    }
  };

  auto read_one = [&]() -> bool {
    serve::KvClient::Reply reply;
    if (!client.Flush() || !client.ReadReply(&reply)) return false;
    account(inflight.front(), reply);
    inflight.pop_front();
    return true;
  };

  // Drops the broken connection's in-flight requests (abandoned, never
  // accounted) and reconnects — to the hinted leader when one was seen,
  // else alternating toward the failover endpoint. False once the
  // reconnect budget is spent.
  auto reconnect = [&]() -> bool {
    while (reconnects_left > 0) {
      --reconnects_left;
      inflight.clear();
      notleader_streak = 0;
      if (hint_port != 0) {
        cur_host = hint_host;
        cur_port = hint_port;
        hint_port = 0;
      } else if (net_.failover_port != 0) {
        cur_port = cur_port == net_.failover_port ? net_.port
                                                  : net_.failover_port;
      }
      std::uint32_t delay = repl::ReconnectBackoffMs(
          backoff_attempt++,
          seed_ ^ (0xD1B54A32D192ED03ull * (thread_idx + 1)));
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      if (connect_now()) {
        backoff_attempt = 0;
        return true;
      }
    }
    return false;
  };

  // One reply off the pipeline, riding through failures when a budget
  // remains: a dead link reconnects, and a pipeline-deep kNotLeader
  // streak (every slot bounced — the target is fenced for good) re-aims
  // at the hinted leader rather than burning the whole op budget.
  auto pump = [&]() -> bool {
    if (!client.connected() || !read_one()) {
      if (!reconnect()) return false;
    } else if (notleader_streak >= std::max<std::uint64_t>(depth, 4) &&
               reconnects_left > 0) {
      client.Close();
      if (!reconnect()) return false;
    }
    return true;
  };

  for (std::uint64_t i = 0; i < ops; ++i) {
    KvOp op = PickOp(spec_, rng);
    Clock::time_point now = Clock::now();
    switch (op) {
      case KvOp::kRead:
        client.QueueGet(chooser_.Choose(rng));
        inflight.push_back({Inflight::Kind::kGet, 0, now});
        break;
      case KvOp::kUpdate: {
        std::uint64_t key = chooser_.Choose(rng);
        client.QueuePut(
            key, WorkloadDriver::MakeValue(key, rng(), spec_.value_size));
        inflight.push_back({Inflight::Kind::kUpdate, key, now});
        break;
      }
      case KvOp::kInsert: {
        std::uint64_t key = chooser_.AllocateInsertKey();
        client.QueuePut(key,
                        WorkloadDriver::MakeValue(key, 0, spec_.value_size));
        inflight.push_back({Inflight::Kind::kInsert, key, now});
        break;
      }
      case KvOp::kScan: {
        std::uint64_t from = chooser_.Choose(rng);
        std::uint32_t len = static_cast<std::uint32_t>(
            spec_.scan_len_zipfian ? 1 + scan_len_zipf.Next(rng)
                                   : 1 + rng() % scan_len_cap);
        if (net_.stream_scans) {
          // SCAN_STREAM owns the reply channel: drain the pipeline, then
          // pull chunks synchronously. Latency covers begin-to-last-chunk
          // — what a streaming consumer experiences end to end.
          while (!inflight.empty()) {
            if (!pump()) {
              *conn_ok = false;
              return;
            }
          }
          Clock::time_point t0 = Clock::now();
          if (!client.ScanStreamBegin(from, len)) {
            *conn_ok = false;
            return;
          }
          bool done = false;
          std::vector<std::pair<std::uint64_t, std::string>> items;
          while (!done) {
            if (!client.ScanStreamNext(&items, &done)) {
              *conn_ok = false;
              return;
            }
            result->scanned_items += items.size();
            items.clear();
          }
          ++result->scans;
          if (spec_.collect_latencies) {
            result->latencies_us.push_back(static_cast<std::uint32_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - t0)
                    .count()));
          }
          break;
        }
        client.QueueScan(from, len);
        inflight.push_back({Inflight::Kind::kScan, 0, now, len});
        break;
      }
      case KvOp::kReadModifyWrite: {
        // The read and the successor write travel the pipeline together;
        // the server's per-connection ordering executes the read first.
        std::uint64_t key = chooser_.Choose(rng);
        client.QueueGet(key);
        inflight.push_back({Inflight::Kind::kRmwGet, key, now});
        client.QueuePut(
            key, WorkloadDriver::MakeValue(key, rng(), spec_.value_size));
        inflight.push_back({Inflight::Kind::kRmwPut, key, now});
        break;
      }
      case KvOp::kMultiPut: {
        std::uint32_t n = static_cast<std::uint32_t>(
            spec_.mput_batch == 0 ? 1 : spec_.mput_batch);
        std::uint64_t first = chooser_.AllocateInsertRange(n);
        std::vector<std::pair<std::uint64_t, std::string>> kvs;
        kvs.reserve(n);
        for (std::uint32_t j = 0; j < n; ++j) {
          kvs.emplace_back(
              first + j,
              WorkloadDriver::MakeValue(first + j, 0, spec_.value_size));
        }
        client.QueueMput(kvs);
        inflight.push_back({Inflight::Kind::kMput, first, now, n});
        break;
      }
    }
    while (inflight.size() >= depth) {
      if (!pump()) {
        *conn_ok = false;
        return;
      }
    }
  }
  while (!inflight.empty()) {
    if (!pump()) {
      *conn_ok = false;
      return;
    }
  }
}

WorkloadResult NetWorkloadDriver::Run(bool* ok) {
  std::size_t threads = spec_.threads == 0 ? 1 : spec_.threads;
  std::vector<WorkloadResult> partial(threads);
  // Not vector<bool>: distinct elements must be writable from distinct
  // threads without sharing a word.
  std::vector<char> conn_ok(threads, 1);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  auto start = Clock::now();
  std::uint64_t per_thread = spec_.op_count / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    std::uint64_t thread_ops =
        per_thread + (t == 0 ? spec_.op_count % threads : 0);
    pool.emplace_back([this, t, thread_ops, &partial, &conn_ok] {
      bool good = true;
      RunConn(t, thread_ops, &partial[t], &good);
      conn_ok[t] = good ? 1 : 0;
    });
  }
  for (auto& th : pool) th.join();
  WorkloadResult total;
  total.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  bool all_ok = true;
  for (std::size_t t = 0; t < threads; ++t) {
    WorkloadResult& r = partial[t];
    total.reads += r.reads;
    total.read_misses += r.read_misses;
    total.updates += r.updates;
    total.inserts += r.inserts;
    total.scans += r.scans;
    total.scanned_items += r.scanned_items;
    total.rmws += r.rmws;
    total.mputs += r.mputs;
    total.mput_keys += r.mput_keys;
    if (total.latencies_us.empty()) {
      total.latencies_us = std::move(r.latencies_us);
    } else {
      total.latencies_us.insert(total.latencies_us.end(),
                                r.latencies_us.begin(),
                                r.latencies_us.end());
    }
    if (conn_ok[t] == 0) all_ok = false;
  }
  if (ok != nullptr) *ok = all_ok;
  return total;
}

}  // namespace rwd
