#include "src/workload/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "src/core/hash.h"

namespace rwd {
namespace {

/// splitmix64 step: the deterministic byte stream behind MakeValue.
std::uint64_t SplitMix(std::uint64_t& state) {
  return Mix64(state += 0x9E3779B97F4A7C15ull);
}

double Uniform01(std::mt19937_64& rng) {
  return (rng() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

}  // namespace

ZipfianChooser::ZipfianChooser(std::uint64_t items, double theta)
    : items_(items == 0 ? 1 : items), theta_(theta) {
  zetan_ = Zeta(items_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianChooser::Zeta(std::uint64_t n, double theta) {
  double sum = 0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfianChooser::Next(std::mt19937_64& rng) const {
  double u = Uniform01(rng);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  auto rank = static_cast<std::uint64_t>(
      static_cast<double>(items_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= items_ ? items_ - 1 : rank;
}

std::uint64_t ScrambledZipfianChooser::Next(std::mt19937_64& rng) const {
  std::uint64_t state = zipf_.Next(rng);
  return SplitMix(state) % items_;
}

KvOp PickOp(const WorkloadSpec& spec, std::mt19937_64& rng) {
  double p = Uniform01(rng);
  if (p < spec.read_prop) return KvOp::kRead;
  p -= spec.read_prop;
  if (p < spec.update_prop) return KvOp::kUpdate;
  p -= spec.update_prop;
  if (p < spec.insert_prop) return KvOp::kInsert;
  p -= spec.insert_prop;
  if (p < spec.scan_prop) return KvOp::kScan;
  p -= spec.scan_prop;
  if (p < spec.mput_prop) return KvOp::kMultiPut;
  return KvOp::kReadModifyWrite;
}

double WorkloadResult::LatencyPercentileUs(double p) const {
  if (latencies_us.empty()) return 0;
  std::vector<std::uint32_t> sorted = latencies_us;
  std::size_t idx = static_cast<std::size_t>(
      (p / 100.0) * static_cast<double>(sorted.size() - 1) + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  std::nth_element(sorted.begin(), sorted.begin() + idx, sorted.end());
  return sorted[idx];
}

WorkloadSpec WorkloadSpec::Preset(char workload) {
  WorkloadSpec s;
  switch (workload | 0x20) {  // tolower for ASCII letters
    default:
    case 'a':
      s.read_prop = 0.5;
      s.update_prop = 0.5;
      break;
    case 'b':
      s.read_prop = 0.95;
      s.update_prop = 0.05;
      break;
    case 'c':
      s.read_prop = 1.0;
      s.update_prop = 0.0;
      break;
    case 'd':
      s.read_prop = 0.95;
      s.update_prop = 0.0;
      s.insert_prop = 0.05;
      s.dist = KeyDist::kLatest;
      break;
    case 'e':
      s.read_prop = 0.0;
      s.update_prop = 0.0;
      s.scan_prop = 0.95;
      s.insert_prop = 0.05;
      s.scan_len_zipfian = true;
      break;
    case 'f':
      s.read_prop = 0.5;
      s.update_prop = 0.0;
      s.rmw_prop = 0.5;
      break;
    case 'w':
      // Write-heavy ingest: no reads at all, every op exercises the
      // group-commit write pipeline; the MPUT share adds cross-shard
      // atomic groups.
      s.read_prop = 0.0;
      s.update_prop = 0.4;
      s.insert_prop = 0.4;
      s.mput_prop = 0.2;
      break;
  }
  return s;
}

std::uint64_t KeyChooser::Choose(std::mt19937_64& rng) const {
  std::uint64_t maxk = max_key_.load(std::memory_order_relaxed);
  if (maxk == 0) return 1;
  switch (dist_) {
    case KeyDist::kUniform:
      return 1 + UniformChooser(maxk).Next(rng);
    case KeyDist::kZipfian:
      return 1 + zipf_.Next(rng) % maxk;
    case KeyDist::kLatest:
      // Rank 0 is the most recently inserted key.
      return maxk - latest_skew_.Next(rng) % maxk;
  }
  return 1;
}

WorkloadDriver::WorkloadDriver(KvStore* store, const WorkloadSpec& spec,
                               std::uint64_t seed)
    : store_(store), spec_(spec), seed_(seed), chooser_(spec) {}

std::string WorkloadDriver::MakeValue(std::uint64_t key,
                                      std::uint64_t version,
                                      std::size_t size) {
  std::string value(size, '\0');
  std::uint64_t state = key ^ (version * 0xD6E8FEB86659FD93ull);
  for (std::size_t off = 0; off < size; off += 8) {
    std::uint64_t word = SplitMix(state);
    for (std::size_t b = 0; b < 8 && off + b < size; ++b) {
      value[off + b] =
          static_cast<char>('a' + ((word >> (8 * b)) % 26));
    }
  }
  return value;
}

std::uint64_t WorkloadDriver::Load() {
  std::vector<std::pair<std::uint64_t, std::string>> batch;
  std::size_t batch_size = spec_.load_batch == 0 ? 1 : spec_.load_batch;
  batch.reserve(batch_size);
  for (std::uint64_t key = 1; key <= spec_.record_count; ++key) {
    batch.emplace_back(key, MakeValue(key, 0, spec_.value_size));
    if (batch.size() == batch_size || key == spec_.record_count) {
      store_->MultiPut(batch);
      chooser_.SetLoaded(key);
      batch.clear();
    }
  }
  return spec_.record_count;
}

void WorkloadDriver::RunThread(std::size_t thread_idx, std::uint64_t ops,
                               const std::atomic<bool>* stop,
                               WorkloadResult* result,
                               std::exception_ptr* error) {
  try {
    RunThreadBody(thread_idx, ops, stop, result);
  } catch (...) {
    // Surfaced by Run() after the join, so crash-injection tests can catch
    // the simulated power failure on the driving thread.
    *error = std::current_exception();
  }
}

void WorkloadDriver::RunThreadBody(std::size_t thread_idx, std::uint64_t ops,
                                   const std::atomic<bool>* stop,
                                   WorkloadResult* result) {
  std::mt19937_64 rng(seed_ ^ (0x9E3779B97F4A7C15ull * (thread_idx + 1)));
  // Scan-length distribution: YCSB E draws zipfian lengths (mostly short,
  // heavy tail to max_scan_len); other mixes keep the uniform draw.
  std::size_t scan_len_cap = spec_.max_scan_len == 0 ? 1 : spec_.max_scan_len;
  ZipfianChooser scan_len_zipf(scan_len_cap);
  auto next_scan_len = [&](std::mt19937_64& r) {
    return spec_.scan_len_zipfian ? 1 + scan_len_zipf.Next(r)
                                  : 1 + r() % scan_len_cap;
  };
  if (spec_.collect_latencies && stop == nullptr) {
    result->latencies_us.reserve(ops);
  }
  // Fixed-time mode (stop != nullptr): run until the driver flips the stop
  // flag, checking every kStopStride ops so the flag's cacheline is not a
  // shared hot spot. In op-count mode (stop == nullptr) run exactly `ops`
  // iterations — zero ops means zero iterations, e.g. when op_count <
  // threads leaves some threads with no share.
  constexpr std::uint64_t kStopStride = 64;
  for (std::uint64_t i = 0; stop != nullptr || i < ops; ++i) {
    if (stop != nullptr && (i % kStopStride) == 0 &&
        stop->load(std::memory_order_relaxed)) {
      break;
    }
    KvOp op = PickOp(spec_, rng);
    std::chrono::steady_clock::time_point op_start;
    if (spec_.collect_latencies) op_start = std::chrono::steady_clock::now();
    switch (op) {
      case KvOp::kRead:
        if (!store_->Get(chooser_.Choose(rng), nullptr)) {
          ++result->read_misses;
        }
        ++result->reads;
        break;
      case KvOp::kUpdate: {
        std::uint64_t key = chooser_.Choose(rng);
        store_->Put(key, MakeValue(key, rng(), spec_.value_size));
        ++result->updates;
        break;
      }
      case KvOp::kInsert: {
        std::uint64_t key = chooser_.AllocateInsertKey();
        store_->Put(key, MakeValue(key, 0, spec_.value_size));
        // Publish only after the Put committed, so the latest
        // distribution reads keys that actually exist.
        chooser_.PublishInserted(key);
        ++result->inserts;
        break;
      }
      case KvOp::kScan: {
        std::uint64_t from = chooser_.Choose(rng);
        std::size_t len = next_scan_len(rng);
        result->scanned_items += store_->Scan(
            from, len, [](std::uint64_t, std::string_view) { return true; });
        ++result->scans;
        break;
      }
      case KvOp::kReadModifyWrite: {
        // Read the value, write a successor version.
        std::uint64_t key = chooser_.Choose(rng);
        std::string value;
        store_->Get(key, &value);
        store_->Put(key, MakeValue(key, rng(), spec_.value_size));
        ++result->rmws;
        break;
      }
      case KvOp::kMultiPut: {
        // Batch insert over a contiguous fresh key range: one atomic
        // cross-shard group through the store.
        std::size_t n = spec_.mput_batch == 0 ? 1 : spec_.mput_batch;
        std::uint64_t first = chooser_.AllocateInsertRange(n);
        std::vector<std::pair<std::uint64_t, std::string>> kvs;
        kvs.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
          kvs.emplace_back(first + j,
                           MakeValue(first + j, 0, spec_.value_size));
        }
        store_->MultiPut(kvs);
        chooser_.PublishInserted(first + n - 1);
        ++result->mputs;
        result->mput_keys += n;
        break;
      }
    }
    if (spec_.collect_latencies) {
      result->latencies_us.push_back(static_cast<std::uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - op_start)
              .count()));
    }
  }
}

WorkloadResult WorkloadDriver::Run() {
  std::size_t threads = spec_.threads == 0 ? 1 : spec_.threads;
  bool timed = spec_.duration_seconds > 0;
  std::vector<WorkloadResult> partial(threads);
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::atomic<bool> stop{false};
  auto start = std::chrono::steady_clock::now();
  std::uint64_t per_thread = spec_.op_count / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    std::uint64_t ops =
        timed ? 0 : per_thread + (t == 0 ? spec_.op_count % threads : 0);
    pool.emplace_back([this, t, ops, timed, &stop, &partial, &errors] {
      RunThread(t, ops, timed ? &stop : nullptr, &partial[t], &errors[t]);
    });
  }
  if (timed) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(spec_.duration_seconds));
    stop.store(true, std::memory_order_relaxed);
  }
  for (auto& th : pool) th.join();
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  WorkloadResult total;
  total.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (auto& r : partial) {
    total.reads += r.reads;
    total.read_misses += r.read_misses;
    total.updates += r.updates;
    total.inserts += r.inserts;
    total.scans += r.scans;
    total.scanned_items += r.scanned_items;
    total.rmws += r.rmws;
    total.mputs += r.mputs;
    total.mput_keys += r.mput_keys;
    if (total.latencies_us.empty()) {
      total.latencies_us = std::move(r.latencies_us);
    } else {
      total.latencies_us.insert(total.latencies_us.end(),
                                r.latencies_us.begin(),
                                r.latencies_us.end());
    }
  }
  return total;
}

}  // namespace rwd
