// YCSB-style workload generation for RewindKV: key-choice distributions,
// the standard A-F workload mixes, and a multi-threaded driver reusable
// from benches and tests.
#ifndef REWIND_WORKLOAD_WORKLOAD_H_
#define REWIND_WORKLOAD_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <exception>
#include <random>
#include <string>
#include <vector>

#include "src/kv/kv_store.h"

namespace rwd {

/// Draws keys uniformly from [0, items).
class UniformChooser {
 public:
  explicit UniformChooser(std::uint64_t items) : items_(items) {}
  std::uint64_t Next(std::mt19937_64& rng) const { return rng() % items_; }

 private:
  std::uint64_t items_;
};

/// Zipf-distributed choice over [0, items) with the YCSB constant
/// theta = 0.99, using Gray et al.'s rejection-free inversion (the
/// algorithm YCSB's ZipfianGenerator implements). Rank 0 is the hottest.
class ZipfianChooser {
 public:
  explicit ZipfianChooser(std::uint64_t items, double theta = 0.99);
  std::uint64_t Next(std::mt19937_64& rng) const;
  std::uint64_t items() const { return items_; }

 private:
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

/// Zipfian rank scrambled across the key space by a 64-bit hash, so the
/// hot set is spread over the whole domain (YCSB's ScrambledZipfian).
class ScrambledZipfianChooser {
 public:
  explicit ScrambledZipfianChooser(std::uint64_t items)
      : items_(items == 0 ? 1 : items), zipf_(items) {}
  std::uint64_t Next(std::mt19937_64& rng) const;

 private:
  std::uint64_t items_;
  ZipfianChooser zipf_;
};

/// Operation mix of one YCSB workload (kMultiPut is the write-heavy 'w'
/// preset's cross-shard atomic batch insert).
enum class KvOp { kRead, kUpdate, kInsert, kScan, kReadModifyWrite,
                  kMultiPut };

/// Key-choice distribution for reads/updates.
enum class KeyDist {
  kUniform,
  kZipfian,  ///< scrambled zipfian over the loaded key space
  kLatest,   ///< zipfian skewed toward the most recently inserted keys
};

/// A YCSB-style workload specification. The standard presets:
///   A: 50% read / 50% update, zipfian          (session store)
///   B: 95% read /  5% update, zipfian          (photo tagging)
///   C: 100% read, zipfian                      (profile cache)
///   D: 95% read /  5% insert, latest           (status feed)
///   E: 95% scan /  5% insert, zipfian          (threaded conversations)
///   F: 50% read / 50% read-modify-write, zipfian (user database)
/// plus the non-standard write-heavy preset:
///   W: 100% writes — 40% update / 40% insert / 20% MPUT batch insert
///      (ingest; drives the group-commit write pipeline to saturation)
struct WorkloadSpec {
  double read_prop = 0.5;
  double update_prop = 0.5;
  double insert_prop = 0.0;
  double scan_prop = 0.0;
  double rmw_prop = 0.0;
  double mput_prop = 0.0;        ///< cross-shard atomic batch inserts
  std::size_t mput_batch = 8;    ///< keys per MPUT operation
  KeyDist dist = KeyDist::kZipfian;
  std::uint64_t record_count = 10000;  ///< keys loaded before the run
  std::uint64_t op_count = 10000;      ///< total operations in the run
  /// Fixed-time mode: when > 0, Run() ignores op_count and every thread
  /// executes operations until this much wall clock has elapsed (checked
  /// every few ops against a shared stop flag). Sub-second op-count runs
  /// are too noisy to judge a perf change; a fixed window makes ops/s
  /// comparable across configurations.
  double duration_seconds = 0;
  std::size_t value_size = 100;        ///< bytes per value
  std::size_t max_scan_len = 100;      ///< scan length ~ U[1, max]
  /// Zipfian scan lengths (YCSB E's ScrambledZipfian length generator):
  /// mostly short scans with a heavy tail up to max_scan_len, instead of
  /// the uniform draw. Set by Preset('e').
  bool scan_len_zipfian = false;
  std::size_t threads = 1;
  std::size_t load_batch = 64;  ///< keys per MultiPut during Load()

  /// When set, drivers record one per-operation latency sample (µs) into
  /// WorkloadResult::latencies_us for percentile reporting.
  bool collect_latencies = false;

  /// Returns the preset for workload 'a'..'f' or 'w' (case-insensitive).
  /// Unknown letters fall back to workload A.
  static WorkloadSpec Preset(char workload);
};

/// Draws the next operation from a spec's mix (shared by the embedded
/// WorkloadDriver and the network driver).
KvOp PickOp(const WorkloadSpec& spec, std::mt19937_64& rng);

/// Shared key-selection state for the drivers: the read-key distributions
/// plus the insert bookkeeping — an allocation counter that may run ahead,
/// and the published-key ceiling advanced (monotonic CAS-max) only after a
/// key's write completed, so readers rarely pick a not-yet-inserted key.
/// A small race window remains when inserts complete out of key order —
/// the same NOT_FOUND tolerance real YCSB has under workload D.
class KeyChooser {
 public:
  explicit KeyChooser(const WorkloadSpec& spec)
      : dist_(spec.dist),
        zipf_(spec.record_count),
        latest_skew_(spec.record_count),
        next_key_(spec.record_count),
        max_key_(0) {}

  /// Key for a read/update/scan, drawn over the published key space.
  std::uint64_t Choose(std::mt19937_64& rng) const;

  /// Allocates the next insert key.
  std::uint64_t AllocateInsertKey() {
    return next_key_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Allocates `n` contiguous insert keys, returning the first (for MPUT
  /// batches; publish first + n - 1 once the batch committed).
  std::uint64_t AllocateInsertRange(std::uint64_t n) {
    return next_key_.fetch_add(n, std::memory_order_relaxed) + 1;
  }

  /// Publishes an inserted key as readable once its write completed.
  void PublishInserted(std::uint64_t key) {
    std::uint64_t cur = max_key_.load(std::memory_order_relaxed);
    while (cur < key && !max_key_.compare_exchange_weak(
                            cur, key, std::memory_order_relaxed)) {
    }
  }

  /// Marks keys [1, max] loaded (bulk-load progress / server reuse).
  void SetLoaded(std::uint64_t max) {
    max_key_.store(max, std::memory_order_relaxed);
  }

  std::uint64_t max_key() const {
    return max_key_.load(std::memory_order_relaxed);
  }

 private:
  KeyDist dist_;
  ScrambledZipfianChooser zipf_;
  ZipfianChooser latest_skew_;
  std::atomic<std::uint64_t> next_key_;
  std::atomic<std::uint64_t> max_key_;
};

/// Aggregate result of one Run().
struct WorkloadResult {
  std::uint64_t reads = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t scans = 0;
  std::uint64_t scanned_items = 0;
  std::uint64_t rmws = 0;
  std::uint64_t mputs = 0;       ///< MPUT operations (each mput_batch keys)
  std::uint64_t mput_keys = 0;   ///< keys written by those MPUTs
  double seconds = 0;
  /// Per-op latency samples (µs); filled when spec.collect_latencies.
  std::vector<std::uint32_t> latencies_us;

  std::uint64_t ops() const {
    return reads + updates + inserts + scans + rmws + mputs;
  }
  double throughput() const { return seconds > 0 ? ops() / seconds : 0; }
  /// Latency percentile in µs (p in [0,100]); 0 when no samples were
  /// collected. Sorts a copy — call once per percentile at report time.
  double LatencyPercentileUs(double p) const;
};

/// Drives a KvStore with a WorkloadSpec: Load() populates keys
/// [1, record_count] via batched MultiPut, Run() executes the operation
/// mix from `spec.threads` threads. Values are deterministic functions of
/// (key, version, size) so correctness checks can recompute them.
class WorkloadDriver {
 public:
  WorkloadDriver(KvStore* store, const WorkloadSpec& spec,
                 std::uint64_t seed = 42);

  /// Inserts the initial records; returns the number inserted.
  std::uint64_t Load();

  /// Runs the mixed workload and returns aggregate counters: op_count
  /// operations split across the threads, or — when spec.duration_seconds
  /// is set — as many operations as fit the wall-clock window. An
  /// exception thrown by a worker (notably an injected CrashException) is
  /// rethrown on the calling thread after every worker has joined.
  WorkloadResult Run();

  /// The deterministic value for a key at a write version.
  static std::string MakeValue(std::uint64_t key, std::uint64_t version,
                               std::size_t size);

  /// Largest key published as readable so far (load + committed inserts).
  std::uint64_t max_key() const { return chooser_.max_key(); }

 private:
  /// One thread's share of the run; stores any exception into `*error`.
  /// A non-null `stop` selects fixed-time mode ("run until *stop reads
  /// true", `ops` ignored); null runs exactly `ops` iterations.
  void RunThread(std::size_t thread_idx, std::uint64_t ops,
                 const std::atomic<bool>* stop, WorkloadResult* result,
                 std::exception_ptr* error);
  void RunThreadBody(std::size_t thread_idx, std::uint64_t ops,
                     const std::atomic<bool>* stop, WorkloadResult* result);

  KvStore* store_;
  WorkloadSpec spec_;
  std::uint64_t seed_;
  KeyChooser chooser_;
};

}  // namespace rwd

#endif  // REWIND_WORKLOAD_WORKLOAD_H_
