#include "src/tpcc/tpcc.h"

#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

namespace rwd {

namespace {

// Compound-key encodings for the naive layout.
std::uint64_t DistrictKey(std::uint32_t w, std::uint32_t d) {
  return std::uint64_t{w} * 100 + d;
}
std::uint64_t CustomerKey(std::uint32_t w, std::uint32_t d, std::uint32_t c) {
  return (std::uint64_t{w} * 100 + d) * 100000 + c;
}
std::uint64_t StockKey(std::uint32_t w, std::uint32_t i) {
  return std::uint64_t{w} * 1000000 + i;
}
std::uint64_t OrderKey(std::uint32_t w, std::uint32_t d, std::uint64_t o) {
  return (std::uint64_t{w} * 100 + d) * 10000000 + o;
}
std::uint64_t OrderLineKey(std::uint64_t order_key, std::uint32_t line) {
  return order_key * 16 + line;
}

}  // namespace

const char* TpccLayoutName(TpccLayout layout) {
  switch (layout) {
    case TpccLayout::kNvmPlain:
      return "Simple NVM B+Trees";
    case TpccLayout::kRewindNaive:
      return "REWIND Naive Data Structure";
    case TpccLayout::kRewindOptimized:
      return "REWIND Opt. Data Structure";
    case TpccLayout::kRewindDistLog:
      return "REWIND Opt. Data Structure D.Log";
  }
  return "?";
}

struct TpccDb::Tables {
  // Shared tables (all layouts).
  std::unique_ptr<BTree> warehouse;
  std::unique_ptr<BTree> district;
  std::unique_ptr<BTree> customer;
  std::unique_ptr<BTree> item;
  std::unique_ptr<BTree> stock;
  // Naive: one compound-key tree per order table.
  std::unique_ptr<BTree> orders;
  std::unique_ptr<BTree> new_order;
  std::unique_ptr<BTree> order_line;
  // Optimized: one tree per district per order table.
  std::vector<std::unique_ptr<BTree>> orders_d;
  std::vector<std::unique_ptr<BTree>> new_order_d;
  std::vector<std::unique_ptr<BTree>> order_line_d;
};

TpccDb::TpccDb(Runtime* runtime, TpccLayout layout)
    : runtime_(runtime), layout_(layout), t_(std::make_unique<Tables>()) {
  for (std::uint32_t term = 0; term < TpccScale::kTerminals; ++term) {
    if (layout_ == TpccLayout::kNvmPlain) {
      per_terminal_ops_.push_back(std::make_unique<NvmOps>(&runtime->nvm()));
    } else {
      // Distributed log: each terminal logs to its own partition's manager;
      // shared log otherwise.
      std::size_t part = layout_ == TpccLayout::kRewindDistLog
                             ? term % runtime->partitions()
                             : 0;
      per_terminal_ops_.push_back(
          std::make_unique<RewindOps>(&runtime->tm(part)));
    }
  }
  if (layout_ == TpccLayout::kRewindNaive) {
    global_lock_ = std::make_unique<std::mutex>();
  } else {
    for (std::uint32_t d = 0; d < TpccScale::kDistricts; ++d) {
      district_locks_.push_back(std::make_unique<std::mutex>());
    }
  }
}

TpccDb::~TpccDb() = default;

StorageOps* TpccDb::OpsFor(std::uint32_t terminal) {
  return per_terminal_ops_[terminal].get();
}

std::uint64_t TpccDb::Rand(std::uint64_t* state, std::uint64_t bound) const {
  // xorshift64*: fast, per-thread, deterministic.
  std::uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return (x * 0x2545F4914F6CDD1Dull) % bound;
}

void TpccDb::Load() {
  StorageOps* ops = OpsFor(0);
  ops->BeginOp();
  t_->warehouse = std::make_unique<BTree>(ops);
  t_->district = std::make_unique<BTree>(ops);
  t_->customer = std::make_unique<BTree>(ops);
  t_->item = std::make_unique<BTree>(ops);
  t_->stock = std::make_unique<BTree>(ops);
  // All layouts except the naive one use the co-designed per-district order
  // tables (the paper's non-recoverable NVM baseline runs the optimized
  // structures too).
  bool split_orders = layout_ != TpccLayout::kRewindNaive;
  if (split_orders) {
    for (std::uint32_t d = 0; d < TpccScale::kDistricts; ++d) {
      t_->orders_d.push_back(std::make_unique<BTree>(ops));
      t_->new_order_d.push_back(std::make_unique<BTree>(ops));
      t_->order_line_d.push_back(std::make_unique<BTree>(ops));
    }
  } else {
    t_->orders = std::make_unique<BTree>(ops);
    t_->new_order = std::make_unique<BTree>(ops);
    t_->order_line = std::make_unique<BTree>(ops);
  }
  ops->CommitOp();

  std::uint64_t payload[4];
  auto put = [&](BTree* tree, std::uint64_t key, std::uint64_t a,
                 std::uint64_t b, std::uint64_t c, std::uint64_t d2) {
    payload[0] = a;
    payload[1] = b;
    payload[2] = c;
    payload[3] = d2;
    tree->Insert(ops, key, payload);
  };
  ops->BeginOp();
  // warehouse: (ytd, tax, -, -)
  put(t_->warehouse.get(), 1, 0, 7, 0, 0);
  // district: (next_o_id, ytd, tax, -)
  for (std::uint32_t d = 1; d <= TpccScale::kDistricts; ++d) {
    put(t_->district.get(), DistrictKey(1, d), 1, 0, 5, 0);
  }
  ops->CommitOp();
  // customer: (balance, ytd_payment, payment_cnt, delivery_cnt)
  for (std::uint32_t d = 1; d <= TpccScale::kDistricts; ++d) {
    ops->BeginOp();
    for (std::uint32_t c = 1; c <= TpccScale::kCustomersPerDistrict; ++c) {
      put(t_->customer.get(), CustomerKey(1, d, c), 0, 0, 0, 0);
    }
    ops->CommitOp();
  }
  // item: (price, -, -, -); stock: (quantity, ytd, order_cnt, remote_cnt)
  ops->BeginOp();
  for (std::uint32_t i = 1; i <= TpccScale::kItems; ++i) {
    put(t_->item.get(), i, 100 + i % 900, 0, 0, 0);
  }
  ops->CommitOp();
  ops->BeginOp();
  for (std::uint32_t i = 1; i <= TpccScale::kItems; ++i) {
    put(t_->stock.get(), StockKey(1, i), 91, 0, 0, 0);
  }
  ops->CommitOp();
}

bool TpccDb::NewOrder(std::uint32_t terminal, std::uint64_t* rng_state) {
  StorageOps* ops = OpsFor(terminal);
  std::uint32_t d = 1 + static_cast<std::uint32_t>(
                            Rand(rng_state, TpccScale::kDistricts));
  std::uint32_t c = 1 + static_cast<std::uint32_t>(Rand(
                            rng_state, TpccScale::kCustomersPerDistrict));
  std::uint32_t n_lines = 5 + static_cast<std::uint32_t>(Rand(rng_state, 11));
  bool user_abort = Rand(rng_state, 100) == 0;  // 1% per TPC-C

  // Programmer-level isolation (paper Section 4.7: thread safety of user
  // data is the programmer's job). The naive schema forces one big lock;
  // the co-designed schema locks only the district.
  std::unique_lock<std::mutex> naive_lock;
  std::unique_lock<std::mutex> district_lock;
  if (layout_ == TpccLayout::kRewindNaive) {
    naive_lock = std::unique_lock<std::mutex>(*global_lock_);
  } else {
    district_lock = std::unique_lock<std::mutex>(*district_locks_[d - 1]);
  }

  ops->BeginOp();
  std::uint64_t row[4];
  // Warehouse tax (read) and district: read + bump next_o_id.
  t_->warehouse->Lookup(ops, 1, row);
  std::uint64_t dkey = DistrictKey(1, d);
  t_->district->Lookup(ops, dkey, row);
  std::uint64_t o_id = row[0];
  t_->district->UpdatePayloadWord(ops, dkey, 0, o_id + 1);
  // Customer read.
  t_->customer->Lookup(ops, CustomerKey(1, d, c), row);

  bool split = t_->orders == nullptr;
  BTree* orders = split ? t_->orders_d[d - 1].get() : t_->orders.get();
  BTree* new_order =
      split ? t_->new_order_d[d - 1].get() : t_->new_order.get();
  BTree* order_line =
      split ? t_->order_line_d[d - 1].get() : t_->order_line.get();
  std::uint64_t okey = split ? o_id : OrderKey(1, d, o_id);

  // ORDER and NEW-ORDER rows: (c_id, n_lines, all_local, -).
  std::uint64_t orow[4] = {c, n_lines, 1, 0};
  orders->Insert(ops, okey, orow);
  new_order->Insert(ops, okey, orow);

  std::uint64_t total = 0;
  for (std::uint32_t l = 1; l <= n_lines; ++l) {
    std::uint32_t item =
        1 + static_cast<std::uint32_t>(Rand(rng_state, TpccScale::kItems));
    if (user_abort && l == n_lines) {
      // TPC-C models the abort as an unused item number on the last line.
      ops->AbortOp();
      return false;
    }
    t_->item->Lookup(ops, item, row);
    std::uint64_t price = row[0];
    std::uint64_t qty = 1 + Rand(rng_state, 10);
    // Stock update: quantity, ytd, order_cnt.
    std::uint64_t skey = StockKey(1, item);
    t_->stock->Lookup(ops, skey, row);
    std::uint64_t s_qty = row[0] >= qty + 10 ? row[0] - qty : row[0] + 91 -
                                                                  qty;
    t_->stock->UpdatePayloadWord(ops, skey, 0, s_qty);
    t_->stock->UpdatePayloadWord(ops, skey, 1, row[1] + qty);
    t_->stock->UpdatePayloadWord(ops, skey, 2, row[2] + 1);
    // ORDER-LINE row: (item, qty, amount, -).
    std::uint64_t lrow[4] = {item, qty, price * qty, 0};
    order_line->Insert(ops, OrderLineKey(okey, l), lrow);
    total += price * qty;
  }
  (void)total;
  ops->CommitOp();
  return true;
}

bool TpccDb::CheckConsistency() {
  StorageOps* ops = OpsFor(0);
  std::uint64_t row[4];
  for (std::uint32_t d = 1; d <= TpccScale::kDistricts; ++d) {
    if (!t_->district->Lookup(ops, DistrictKey(1, d), row)) return false;
    std::uint64_t next_o = row[0];
    std::uint64_t count = 0;
    if (t_->orders != nullptr) {
      std::uint64_t lo = OrderKey(1, d, 0);
      std::uint64_t hi = OrderKey(1, d + 1, 0);
      t_->orders->Scan(ops, lo, [&](std::uint64_t k, const void*) {
        if (k >= hi) return false;
        ++count;
        return true;
      });
    } else {
      count = t_->orders_d[d - 1]->size(ops);
    }
    if (count != next_o - 1) return false;
  }
  return true;
}

double RunTpcc(Runtime* runtime, TpccLayout layout,
               std::uint32_t txns_per_terminal, std::uint32_t terminals) {
  TpccDb db(runtime, layout);
  db.Load();
  std::atomic<std::uint64_t> committed{0};
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::uint32_t term = 0; term < terminals; ++term) {
    threads.emplace_back([&, term] {
      std::uint64_t rng = 0x9E3779B97F4A7C15ull * (term + 1);
      std::uint64_t ok = 0;
      for (std::uint32_t i = 0; i < txns_per_terminal; ++i) {
        ok += db.NewOrder(term, &rng) ? 1 : 0;
      }
      committed.fetch_add(ok, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  auto secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  return static_cast<double>(committed.load()) / secs * 60.0;
}

}  // namespace rwd
