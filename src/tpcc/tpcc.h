// TPC-C variant of paper Section 5.3: scale factor 1, ten terminals issuing
// only new_order (the most write-intensive transaction), 1% user aborts,
// schema stored in B+-trees, four data layouts.
#ifndef REWIND_TPCC_TPCC_H_
#define REWIND_TPCC_TPCC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/structures/btree.h"
#include "src/structures/storage_ops.h"

namespace rwd {

/// The four data layouts of Figure 11.
enum class TpccLayout {
  /// Standard persistent but non-recoverable B+-trees in NVM.
  kNvmPlain,
  /// Straightforward compound-key B+-trees over REWIND; coarse (whole-
  /// database) programmer locking.
  kRewindNaive,
  /// Co-designed layout: the order tables become arrays of ten per-district
  /// B+-trees keyed by order id, enabling per-district locking.
  kRewindOptimized,
  /// The optimized layout plus a distributed (per-terminal) log.
  kRewindDistLog,
};

const char* TpccLayoutName(TpccLayout layout);

/// TPC-C constants for scale factor 1.
struct TpccScale {
  static constexpr std::uint32_t kWarehouses = 1;
  static constexpr std::uint32_t kDistricts = 10;
  static constexpr std::uint32_t kCustomersPerDistrict = 300;  // scaled down
  static constexpr std::uint32_t kItems = 1000;                // scaled down
  static constexpr std::uint32_t kTerminals = 10;
};

/// The TPC-C database: schema tables over a chosen layout.
///
/// Rows are packed into the B+-tree's 32-byte payloads (the fields new_order
/// touches); compound keys are encoded into one 64-bit key for the naive
/// layout and split into per-district trees for the optimized layouts.
class TpccDb {
 public:
  TpccDb(Runtime* runtime, TpccLayout layout);
  ~TpccDb();

  /// Loads warehouses, districts, customers, items and stock.
  void Load();

  /// Runs one new_order transaction for `terminal`; `rng_state` drives the
  /// input generation. Returns true if committed, false if it hit the 1%
  /// user abort (rolled back under REWIND, ignored under kNvmPlain).
  bool NewOrder(std::uint32_t terminal, std::uint64_t* rng_state);

  TpccLayout layout() const { return layout_; }

  /// Consistency check: for every district, next_o_id - 1 equals the number
  /// of orders inserted for it.
  bool CheckConsistency();

 private:
  struct Tables;
  StorageOps* OpsFor(std::uint32_t terminal);
  std::uint64_t Rand(std::uint64_t* state, std::uint64_t bound) const;

  Runtime* runtime_;
  TpccLayout layout_;
  std::unique_ptr<Tables> t_;
  std::vector<std::unique_ptr<StorageOps>> per_terminal_ops_;
  std::unique_ptr<std::mutex> global_lock_;          // naive layout
  std::vector<std::unique_ptr<std::mutex>> district_locks_;  // optimized
};

/// Drives `terminals` worker threads for `txns_per_terminal` transactions;
/// returns throughput in transactions per minute.
double RunTpcc(Runtime* runtime, TpccLayout layout,
               std::uint32_t txns_per_terminal,
               std::uint32_t terminals = TpccScale::kTerminals);

}  // namespace rwd

#endif  // REWIND_TPCC_TPCC_H_
