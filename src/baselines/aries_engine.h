// A configurable ARIES-style engine over the buffer pool + WAL file: the
// common machinery behind the Stasis / BerkeleyDB / Shore-MT analogues.
#ifndef REWIND_BASELINES_ARIES_ENGINE_H_
#define REWIND_BASELINES_ARIES_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/baselines/buffer_pool.h"
#include "src/baselines/pmfs.h"
#include "src/baselines/wal_file.h"
#include "src/structures/storage_ops.h"

namespace rwd {

/// Cost-profile knobs distinguishing the three baselines (see DESIGN.md's
/// substitution table).
struct BaselineTuning {
  /// Bytes of page context logged around every word update. Small for
  /// operation (logical) logging (Stasis-like), large for page-level
  /// physical logging (BerkeleyDB / Shore-MT-like).
  std::size_t log_region_bytes = 16;
  /// Log both before and after images (physical) or a compact op record.
  bool before_and_after_images = false;
  /// Number of log partitions (Shore-MT: one per core, up to 4).
  std::size_t log_partitions = 1;
  /// Keep undo information in volatile per-transaction buffers so rollback
  /// does not touch the log file (Shore-MT's fast rollback).
  bool undo_buffers = false;
  /// Capacity of each log partition's file. 0 = 8x the page-file size.
  std::size_t log_file_bytes = 0;

  /// Software-path costs (busy-wait ns) standing in for the parts of the
  /// original systems we do not re-implement line-by-line — slotted pages,
  /// lock tables, record serialization, catalog lookups. Calibrated so the
  /// per-operation costs land in the regime the paper measured for each
  /// system (DESIGN.md, substitution table). The update path is charged
  /// inside the log latch: that serialization is what makes the baselines
  /// scale poorly with threads (paper Fig. 9).
  std::uint32_t update_path_ns = 0;  ///< per update record inserted
  std::uint32_t undo_path_ns = 0;    ///< per record undone (rollback)
  std::uint32_t redo_path_ns = 0;    ///< per record replayed (recovery)
};

/// Word-granularity transactional engine with no-force/steal buffer
/// management, ARIES recovery (analysis, redo, undo) from the durable log,
/// and synchronous log flush at commit.
class AriesEngine {
 public:
  AriesEngine(NvmManager* nvm, const BaselineTuning& tuning,
              std::size_t num_pages = 16384, const std::string& tag = "db");
  ~AriesEngine();

  std::uint32_t Begin();
  void Commit(std::uint32_t tid);
  void Rollback(std::uint32_t tid);

  /// Allocates working-memory storage inside pages (zeroed).
  void* Alloc(std::size_t bytes);

  /// Transactional word write: fix page, log, apply, maintain page LSN.
  void Write(std::uint32_t tid, std::uint64_t* addr, std::uint64_t value);
  std::uint64_t Read(const std::uint64_t* addr) const { return *addr; }

  /// Fuzzy checkpoint: flush dirty pages, truncate the durable log prefix.
  void Checkpoint();

  /// Restart: reload pages, analysis + redo + undo from the durable log.
  void Recover();

  /// Crash: drop DRAM state (frames and log buffer), then Recover().
  void SimulateCrashAndRecover();

  BufferPool& pool() { return *pool_; }
  NvmManager* nvm() { return nvm_; }
  std::uint64_t log_bytes_durable() const;

 private:
  enum RecType : std::uint16_t {
    kUpdate = 1,
    kClr = 2,
    kCommit = 3,
    kAbort = 4,
  };
  struct UndoEntry {
    std::uint64_t* addr;
    std::uint64_t old_value;
  };
  struct TxnState {
    std::uint64_t last_lsn = 0;
    std::vector<UndoEntry> undo;  // undo_buffers mode
    std::size_t partition = 0;
  };

  WalFile& LogOf(std::size_t partition) { return *logs_[partition]; }
  std::size_t PartitionOf(std::uint32_t tid) const {
    return tid % tuning_.log_partitions;
  }
  /// Serializes an update/CLR record (addresses as page offsets) and
  /// appends it to the transaction's log partition.
  std::uint64_t AppendUpdateRecord(std::uint32_t tid, RecType type,
                                   std::uint64_t* addr, std::uint64_t old_v,
                                   std::uint64_t new_v,
                                   std::uint64_t prev_lsn);

  NvmManager* nvm_;
  BaselineTuning tuning_;
  std::unique_ptr<Pmfs> fs_;
  std::unique_ptr<BufferPool> pool_;
  std::vector<std::unique_ptr<WalFile>> logs_;

  std::atomic<std::uint32_t> next_tid_{1};
  std::atomic<std::uint64_t> next_gsn_{1};
  mutable std::mutex txn_mu_;
  std::unordered_map<std::uint32_t, TxnState> txns_;

  std::mutex alloc_mu_;
  std::size_t alloc_page_ = 0;
  std::size_t alloc_off_ = 0;
};

/// StorageOps adapter so the identical B+-tree runs over a baseline engine
/// (paper Section 5.2: one B+-tree per persistence layer).
class BaselineOps : public StorageOps {
 public:
  explicit BaselineOps(AriesEngine* engine) : engine_(engine) {}

  void* AllocRaw(std::size_t bytes) override { return engine_->Alloc(bytes); }
  void FreeRaw(void*) override {}      // page space is reclaimed wholesale
  void DeferredFree(void*) override {}
  std::uint64_t Load(const std::uint64_t* addr) override {
    return engine_->Read(addr);
  }
  void Store(std::uint64_t* addr, std::uint64_t value) override {
    engine_->Write(tid_, addr, value);
  }
  void InitStore(std::uint64_t* addr, std::uint64_t value) override {
    // Baselines have no off-line path: every write is logged.
    engine_->Write(tid_, addr, value);
  }
  void PublishInit(void*, std::size_t) override {}
  void BeginOp() override { tid_ = engine_->Begin(); }
  void CommitOp() override { engine_->Commit(tid_); }
  void AbortOp() override { engine_->Rollback(tid_); }

 private:
  AriesEngine* engine_;
  std::uint32_t tid_ = 0;
};

/// Factory helpers configuring the three baselines' cost profiles.
BaselineTuning StasisLikeTuning();
BaselineTuning BdbLikeTuning();
BaselineTuning ShoreLikeTuning(std::size_t partitions = 4);

}  // namespace rwd

#endif  // REWIND_BASELINES_ARIES_ENGINE_H_
