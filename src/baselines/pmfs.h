// A PMFS-like substrate: a byte-addressable, memory-mounted "file system"
// over the emulated NVM device (paper Section 5: baselines run on PMFS, and
// NVM latency is charged only for user-data writes, not for internal
// bookkeeping — we follow the same accounting).
#ifndef REWIND_BASELINES_PMFS_H_
#define REWIND_BASELINES_PMFS_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/nvm/nvm_manager.h"

namespace rwd {

/// Minimal byte-addressable file system: named, fixed-size extents in NVM.
/// Writes are charged NVM latency per touched cacheline plus a fence per
/// synchronous write, mimicking PMFS's optimized byte-addressable path.
class Pmfs {
 public:
  struct File {
    std::string name;
    char* base = nullptr;
    std::size_t size = 0;
    std::size_t append_off = 0;  // convenience cursor for log-style files
  };

  explicit Pmfs(NvmManager* nvm) : nvm_(nvm) {}

  /// Creates (or truncates) a file of `bytes` bytes.
  File* Create(const std::string& name, std::size_t bytes) {
    auto& f = files_[name];
    if (f == nullptr) f = std::make_unique<File>();
    if (f->base != nullptr) nvm_->Free(f->base);
    f->name = name;
    f->base = static_cast<char*>(nvm_->Alloc(bytes));
    f->size = bytes;
    f->append_off = 0;
    return f.get();
  }

  File* Open(const std::string& name) {
    auto it = files_.find(name);
    return it == files_.end() ? nullptr : it->second.get();
  }

  /// Synchronous write: data is durable when the call returns (PMFS write
  /// path: copy + cacheline writeback + fence).
  void Write(File* f, std::size_t off, const void* src, std::size_t n) {
    std::memcpy(f->base + off, src, n);
    nvm_->PersistRangeNT(f->base + off, n);
    nvm_->Fence();
  }

  /// Appends at the file cursor; returns the offset written.
  std::size_t Append(File* f, const void* src, std::size_t n) {
    std::size_t off = f->append_off;
    Write(f, off, src, n);
    f->append_off += n;
    return off;
  }

  void Read(const File* f, std::size_t off, void* dst, std::size_t n) const {
    std::memcpy(dst, f->base + off, n);
  }

  NvmManager* nvm() { return nvm_; }

 private:
  NvmManager* nvm_;
  std::unordered_map<std::string, std::unique_ptr<File>> files_;
};

}  // namespace rwd

#endif  // REWIND_BASELINES_PMFS_H_
