// File-backed write-ahead log with a volatile log buffer, as the baseline
// engines (Stasis / BerkeleyDB / Shore-MT analogues) use it.
#ifndef REWIND_BASELINES_WAL_FILE_H_
#define REWIND_BASELINES_WAL_FILE_H_

#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/baselines/pmfs.h"
#include "src/nvm/latency.h"

namespace rwd {

/// On-"disk" record header for the baseline log.
struct WalRecordHeader {
  std::uint64_t lsn = 0;
  std::uint64_t prev_lsn = 0;  // back-chain within the transaction
  /// Global sequence number across log partitions: a distributed log needs
  /// it to merge partitions into one redo order (cf. Wang & Johnson,
  /// PVLDB'14).
  std::uint64_t gsn = 0;
  std::uint32_t tid = 0;
  std::uint16_t type = 0;      // engine-defined
  std::uint16_t payload_bytes = 0;
};

/// A log stream: records accumulate in a volatile buffer and reach the PMFS
/// log file on Flush() (at commit, or when the buffer fills). This is the
/// classic block-era design whose commit-time synchronous flush REWIND's
/// in-NVM log structures eliminate.
class WalFile {
 public:
  WalFile(Pmfs* fs, const std::string& name, std::size_t file_bytes,
          std::uint32_t append_path_ns = 0,
          std::size_t buffer_bytes = 1 << 20)
      : fs_(fs),
        file_(fs->Create(name, file_bytes)),
        append_path_ns_(append_path_ns) {
    buffer_.reserve(buffer_bytes);
  }

  /// Appends a record; returns its LSN (= file offset + buffered offset).
  /// Thread-safe; the global latch is exactly the contention point that
  /// makes the baselines scale poorly (paper Fig. 9).
  std::uint64_t Append(const WalRecordHeader& hdr, const void* payload,
                       std::uint32_t path_ns = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    // Emulated software path of the original engine's log-insert code for
    // this record type, held under the log latch (see BaselineTuning) —
    // the serialization that makes the baselines scale poorly (Fig. 9).
    LatencyEmulator::Spin(path_ns != 0 ? path_ns : append_path_ns_);
    WalRecordHeader h = hdr;
    h.lsn = file_->append_off + buffer_.size();
    std::size_t n = sizeof(h) + h.payload_bytes;
    const char* p = reinterpret_cast<const char*>(&h);
    buffer_.insert(buffer_.end(), p, p + sizeof(h));
    if (h.payload_bytes != 0) {
      const char* q = static_cast<const char*>(payload);
      buffer_.insert(buffer_.end(), q, q + h.payload_bytes);
    }
    (void)n;
    return h.lsn;
  }

  /// Forces the buffer to the PMFS file (commit path).
  void Flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (buffer_.empty()) return;
    fs_->Append(file_, buffer_.data(), buffer_.size());
    buffer_.clear();
  }

  /// Durable prefix length in bytes.
  std::uint64_t durable_lsn() const { return file_->append_off; }
  std::uint64_t next_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return file_->append_off + buffer_.size();
  }

  /// Iterates durable records in order. `fn(header, payload)`; stops early
  /// on false.
  template <typename Fn>
  void ForEachDurable(Fn fn) const {
    std::size_t off = 0;
    while (off + sizeof(WalRecordHeader) <= file_->append_off) {
      WalRecordHeader h;
      fs_->Read(file_, off, &h, sizeof(h));
      const char* payload = file_->base + off + sizeof(h);
      if (!fn(h, payload)) return;
      off += sizeof(h) + h.payload_bytes;
    }
  }

  /// Drops everything (post-recovery truncation).
  void Truncate() {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.clear();
    file_->append_off = 0;
  }

  /// Drops the volatile buffer, as a crash would.
  void LoseBuffer() {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.clear();
  }

 private:
  Pmfs* fs_;
  Pmfs::File* file_;
  std::uint32_t append_path_ns_;
  mutable std::mutex mu_;
  std::vector<char> buffer_;
};

}  // namespace rwd

#endif  // REWIND_BASELINES_WAL_FILE_H_
