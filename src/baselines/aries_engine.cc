#include "src/baselines/aries_engine.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace rwd {

namespace {
// Serialized payload of an update/CLR record: the touched word plus the
// surrounding page-region images whose size models the baseline's logging
// granularity.
struct UpdatePayloadHeader {
  std::uint32_t pid;
  std::uint32_t page_off;
  std::uint64_t old_value;
  std::uint64_t new_value;
};
}  // namespace

AriesEngine::AriesEngine(NvmManager* nvm, const BaselineTuning& tuning,
                         std::size_t num_pages, const std::string& tag)
    : nvm_(nvm), tuning_(tuning), fs_(std::make_unique<Pmfs>(nvm)) {
  pool_ = std::make_unique<BufferPool>(fs_.get(), tag + ".data", num_pages);
  std::size_t log_bytes = tuning_.log_file_bytes != 0
                              ? tuning_.log_file_bytes
                              : num_pages * BufferPool::kPageBytes * 2;
  for (std::size_t p = 0; p < tuning_.log_partitions; ++p) {
    logs_.push_back(std::make_unique<WalFile>(
        fs_.get(), tag + ".log" + std::to_string(p), log_bytes,
        tuning_.update_path_ns));
  }
}

AriesEngine::~AriesEngine() = default;

std::uint32_t AriesEngine::Begin() {
  std::uint32_t tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(txn_mu_);
  auto& st = txns_[tid];
  st.partition = PartitionOf(tid);
  return tid;
}

void* AriesEngine::Alloc(std::size_t bytes) {
  bytes = (bytes + 15) & ~std::size_t{15};
  assert(bytes <= BufferPool::kPageBytes);
  std::lock_guard<std::mutex> lock(alloc_mu_);
  if (alloc_off_ + bytes > BufferPool::kPageBytes) {
    ++alloc_page_;
    alloc_off_ = 0;
    assert(alloc_page_ < pool_->num_pages() && "baseline DB file full");
  }
  void* p = pool_->frame_data(static_cast<std::uint32_t>(alloc_page_)) +
            alloc_off_;
  alloc_off_ += bytes;
  return p;
}

std::uint64_t AriesEngine::AppendUpdateRecord(std::uint32_t tid, RecType type,
                                              std::uint64_t* addr,
                                              std::uint64_t old_v,
                                              std::uint64_t new_v,
                                              std::uint64_t prev_lsn) {
  std::uint32_t pid = pool_->PidOf(addr);
  char* page = pool_->frame_data(pid);
  auto page_off = static_cast<std::uint32_t>(
      reinterpret_cast<char*>(addr) - page);

  // Serialize header + page-region images. The images are genuinely copied
  // out of the page: this is the memcpy traffic page-level logging pays.
  char payload[2048];
  UpdatePayloadHeader uh{pid, page_off, old_v, new_v};
  std::size_t n = 0;
  std::memcpy(payload + n, &uh, sizeof(uh));
  n += sizeof(uh);
  std::size_t region = std::min(tuning_.log_region_bytes,
                                sizeof(payload) - n);
  std::size_t copies = tuning_.before_and_after_images ? 2 : 1;
  for (std::size_t c = 0; c < copies && region > 0; ++c) {
    std::size_t start = page_off < region / 2 ? 0 : page_off - region / 2;
    std::size_t len = std::min(region, BufferPool::kPageBytes - start);
    if (n + len > sizeof(payload)) len = sizeof(payload) - n;
    std::memcpy(payload + n, page + start, len);
    n += len;
  }

  WalRecordHeader h;
  h.prev_lsn = prev_lsn;
  h.gsn = next_gsn_.fetch_add(1, std::memory_order_relaxed);
  h.tid = tid;
  h.type = type;
  h.payload_bytes = static_cast<std::uint16_t>(n);
  std::uint32_t path_ns = type == kClr ? tuning_.undo_path_ns
                                       : tuning_.update_path_ns;
  return LogOf(PartitionOf(tid)).Append(h, payload, path_ns);
}

void AriesEngine::Write(std::uint32_t tid, std::uint64_t* addr,
                        std::uint64_t value) {
  std::uint32_t pid = pool_->PidOf(addr);
  pool_->FixExclusive(pid);
  std::uint64_t old_v = *addr;
  std::uint64_t prev;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    prev = txns_[tid].last_lsn;
  }
  std::uint64_t lsn =
      AppendUpdateRecord(tid, kUpdate, addr, old_v, value, prev);
  *addr = value;
  pool_->set_page_lsn(pid, lsn);
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto& st = txns_[tid];
    st.last_lsn = lsn;
    if (tuning_.undo_buffers) st.undo.push_back({addr, old_v});
  }
  pool_->Unfix(pid);
}

void AriesEngine::Commit(std::uint32_t tid) {
  std::size_t part;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    auto& st = txns_[tid];
    part = st.partition;
    WalRecordHeader h;
    h.prev_lsn = st.last_lsn;
    h.gsn = next_gsn_.fetch_add(1, std::memory_order_relaxed);
    h.tid = tid;
    h.type = kCommit;
    h.payload_bytes = 0;
    LogOf(part).Append(h, nullptr);
  }
  // The block-era commit protocol: synchronous log force.
  LogOf(part).Flush();
  std::lock_guard<std::mutex> lock(txn_mu_);
  txns_.erase(tid);
}

void AriesEngine::Rollback(std::uint32_t tid) {
  if (tuning_.undo_buffers) {
    // Shore-MT style: undo straight from the volatile per-txn buffer.
    std::vector<UndoEntry> undo;
    {
      std::lock_guard<std::mutex> lock(txn_mu_);
      undo = txns_[tid].undo;
    }
    for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
      std::uint32_t pid = pool_->PidOf(it->addr);
      pool_->FixExclusive(pid);
      std::uint64_t prev;
      {
        std::lock_guard<std::mutex> lock(txn_mu_);
        prev = txns_[tid].last_lsn;
      }
      std::uint64_t lsn = AppendUpdateRecord(tid, kClr, it->addr, *it->addr,
                                             it->old_value, prev);
      *it->addr = it->old_value;
      pool_->set_page_lsn(pid, lsn);
      {
        std::lock_guard<std::mutex> lock(txn_mu_);
        txns_[tid].last_lsn = lsn;
      }
      pool_->Unfix(pid);
    }
  } else {
    // Classic path: walk the transaction's back-chain through the log —
    // flushing first so the chain is readable from the durable file.
    std::size_t part = PartitionOf(tid);
    LogOf(part).Flush();
    std::uint64_t lsn;
    {
      std::lock_guard<std::mutex> lock(txn_mu_);
      lsn = txns_[tid].last_lsn;
    }
    // Collect this transaction's updates by scanning the durable log (the
    // back-chain gives the order; the scan models log-file random access).
    std::vector<std::pair<WalRecordHeader, UpdatePayloadHeader>> mine;
    LogOf(part).ForEachDurable(
        [&](const WalRecordHeader& h, const char* payload) {
          if (h.tid == tid && h.type == kUpdate) {
            UpdatePayloadHeader uh;
            std::memcpy(&uh, payload, sizeof(uh));
            mine.emplace_back(h, uh);
          }
          return true;
        });
    (void)lsn;
    for (auto it = mine.rbegin(); it != mine.rend(); ++it) {
      std::uint32_t pid = it->second.pid;
      auto* addr = reinterpret_cast<std::uint64_t*>(
          pool_->frame_data(pid) + it->second.page_off);
      pool_->FixExclusive(pid);
      std::uint64_t prev;
      {
        std::lock_guard<std::mutex> lock(txn_mu_);
        prev = txns_[tid].last_lsn;
      }
      std::uint64_t clr = AppendUpdateRecord(tid, kClr, addr, *addr,
                                             it->second.old_value, prev);
      *addr = it->second.old_value;
      pool_->set_page_lsn(pid, clr);
      {
        std::lock_guard<std::mutex> lock(txn_mu_);
        txns_[tid].last_lsn = clr;
      }
      pool_->Unfix(pid);
    }
  }
  std::size_t part = PartitionOf(tid);
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    WalRecordHeader h;
    h.prev_lsn = txns_[tid].last_lsn;
    h.gsn = next_gsn_.fetch_add(1, std::memory_order_relaxed);
    h.tid = tid;
    h.type = kAbort;
    h.payload_bytes = 0;
    LogOf(part).Append(h, nullptr);
  }
  LogOf(part).Flush();
  std::lock_guard<std::mutex> lock(txn_mu_);
  txns_.erase(tid);
}

void AriesEngine::Checkpoint() {
  for (auto& log : logs_) log->Flush();
  pool_->WriteBackAll();
  bool quiescent;
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    quiescent = txns_.empty();
  }
  if (quiescent) {
    for (auto& log : logs_) log->Truncate();
  }
}

void AriesEngine::Recover() {
  pool_->ReloadAll();
  // Analysis: losers are transactions without COMMIT/ABORT terminators.
  std::unordered_map<std::uint32_t, bool> finished;
  for (auto& log : logs_) {
    log->ForEachDurable([&](const WalRecordHeader& h, const char*) {
      if (h.type == kCommit || h.type == kAbort) {
        finished[h.tid] = true;
      } else {
        finished.emplace(h.tid, false);
      }
      return true;
    });
  }
  // Redo: repeat history. With a distributed log the partitions must be
  // merged into one global order first — that is what the GSN provides.
  std::vector<std::pair<WalRecordHeader, UpdatePayloadHeader>> all;
  for (auto& log : logs_) {
    log->ForEachDurable([&](const WalRecordHeader& h, const char* payload) {
      if (h.type == kUpdate || h.type == kClr) {
        UpdatePayloadHeader uh;
        std::memcpy(&uh, payload, sizeof(uh));
        all.emplace_back(h, uh);
      }
      return true;
    });
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.first.gsn < b.first.gsn;
  });
  for (const auto& [h, uh] : all) {
    LatencyEmulator::Spin(tuning_.redo_path_ns);
    auto* addr = reinterpret_cast<std::uint64_t*>(
        pool_->frame_data(uh.pid) + uh.page_off);
    *addr = uh.new_value;
    pool_->set_page_lsn(uh.pid, h.lsn);
  }
  // Undo losers, newest first across all partitions.
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (it->first.type != kUpdate || finished[it->first.tid]) continue;
    auto* addr = reinterpret_cast<std::uint64_t*>(
        pool_->frame_data(it->second.pid) + it->second.page_off);
    *addr = it->second.old_value;
    pool_->set_page_lsn(it->second.pid, it->first.lsn);
  }
  pool_->WriteBackAll();
  for (auto& log : logs_) log->Truncate();
  std::lock_guard<std::mutex> lock(txn_mu_);
  txns_.clear();
}

void AriesEngine::SimulateCrashAndRecover() {
  for (auto& log : logs_) log->LoseBuffer();
  Recover();
}

std::uint64_t AriesEngine::log_bytes_durable() const {
  std::uint64_t n = 0;
  for (const auto& log : logs_) n += log->durable_lsn();
  return n;
}

BaselineTuning StasisLikeTuning() {
  BaselineTuning t;
  // Operation (logical) logging: compact records, but rollback/redo replay
  // whole operations from the log file.
  t.log_region_bytes = 32;
  t.before_and_after_images = false;
  t.log_partitions = 1;
  t.undo_buffers = false;
  // Operation logging: moderate insert path, expensive logical undo/redo
  // (operations are re-executed, not byte-copied).
  t.update_path_ns = 35000;
  t.undo_path_ns = 50000;
  t.redo_path_ns = 50000;
  return t;
}

BaselineTuning BdbLikeTuning() {
  BaselineTuning t;
  // Page-level physical logging: before + after page-region images.
  t.log_region_bytes = 512;
  t.before_and_after_images = true;
  t.log_partitions = 1;
  t.undo_buffers = false;
  // Page-level physical logging: heavier insert path, cheap physical undo
  // and redo (page images are copied back).
  t.update_path_ns = 45000;
  t.undo_path_ns = 18000;
  t.redo_path_ns = 25000;
  return t;
}

BaselineTuning ShoreLikeTuning(std::size_t partitions) {
  BaselineTuning t;
  // Page-level logging with per-core log partitions and volatile undo
  // buffers (fast rollback), as in the NVM-modified Shore-MT.
  t.log_region_bytes = 512;
  t.before_and_after_images = true;
  t.log_partitions = partitions;
  t.undo_buffers = true;
  // Heaviest single-threaded insert path (machinery optimized for
  // multi-threading), but near-free undo (volatile undo buffers) and the
  // cheapest redo (durable-cache mode keeps most pages current).
  t.update_path_ns = 90000;
  t.undo_path_ns = 4000;
  t.redo_path_ns = 12000;
  return t;
}

}  // namespace rwd
