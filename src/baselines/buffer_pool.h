// Page-based buffer manager over a PMFS data file: the block-era software
// stack the baseline engines carry and REWIND sheds.
#ifndef REWIND_BASELINES_BUFFER_POOL_H_
#define REWIND_BASELINES_BUFFER_POOL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "src/baselines/pmfs.h"

namespace rwd {

/// All-resident buffer pool (the paper's baselines are in-memory too): every
/// page has a DRAM frame, but access still goes through fix/unfix latching,
/// page-LSN maintenance and page-granular write-back — the block-heritage
/// costs the paper's Figure 7 (right) attributes to the DBMS stack.
///
/// Frames live in one contiguous DRAM arena so working-memory addresses map
/// to page ids by arithmetic (`PidOf`). The PMFS data file holds the durable
/// page images.
class BufferPool {
 public:
  static constexpr std::size_t kPageBytes = 4096;

  BufferPool(Pmfs* fs, const std::string& file_name, std::size_t num_pages)
      : fs_(fs),
        file_(fs->Create(file_name, num_pages * kPageBytes)),
        arena_(new char[num_pages * kPageBytes]),
        meta_(num_pages) {
    std::memset(arena_.get(), 0, num_pages * kPageBytes);
  }

  std::size_t num_pages() const { return meta_.size(); }
  char* frame_data(std::uint32_t pid) {
    return arena_.get() + std::size_t{pid} * kPageBytes;
  }

  /// Page id of a working-memory address (must lie in the arena).
  std::uint32_t PidOf(const void* addr) const {
    return static_cast<std::uint32_t>(
        (reinterpret_cast<const char*>(addr) - arena_.get()) / kPageBytes);
  }
  bool Contains(const void* addr) const {
    auto* p = reinterpret_cast<const char*>(addr);
    return p >= arena_.get() && p < arena_.get() + meta_.size() * kPageBytes;
  }

  /// Fixes a page exclusively (latched). Pair with Unfix().
  void FixExclusive(std::uint32_t pid) { meta_[pid].latch.lock(); }
  void Unfix(std::uint32_t pid) { meta_[pid].latch.unlock(); }

  std::uint64_t page_lsn(std::uint32_t pid) const {
    return meta_[pid].page_lsn;
  }
  void set_page_lsn(std::uint32_t pid, std::uint64_t lsn) {
    meta_[pid].page_lsn = lsn;
    meta_[pid].dirty = true;
  }
  bool dirty(std::uint32_t pid) const { return meta_[pid].dirty; }

  /// Writes a dirty frame back to the PMFS file (4 KiB, charged).
  void WriteBack(std::uint32_t pid) {
    if (!meta_[pid].dirty) return;
    fs_->Write(file_, std::size_t{pid} * kPageBytes, frame_data(pid),
               kPageBytes);
    meta_[pid].dirty = false;
  }

  /// Flushes every dirty page (checkpoint). Returns pages written.
  std::size_t WriteBackAll() {
    std::size_t n = 0;
    for (std::uint32_t pid = 0; pid < meta_.size(); ++pid) {
      if (meta_[pid].dirty) {
        WriteBack(pid);
        ++n;
      }
    }
    return n;
  }

  /// Reloads every frame from the durable file (after a crash the DRAM
  /// frames are gone).
  void ReloadAll() {
    for (std::uint32_t pid = 0; pid < meta_.size(); ++pid) {
      fs_->Read(file_, std::size_t{pid} * kPageBytes, frame_data(pid),
                kPageBytes);
      meta_[pid].dirty = false;
      meta_[pid].page_lsn = 0;
    }
  }

 private:
  struct PageMeta {
    std::uint64_t page_lsn = 0;
    bool dirty = false;
    std::mutex latch;
  };

  Pmfs* fs_;
  Pmfs::File* file_;
  std::unique_ptr<char[]> arena_;
  std::vector<PageMeta> meta_;
};

}  // namespace rwd

#endif  // REWIND_BASELINES_BUFFER_POOL_H_
