// Convenience constructors for the three baseline systems the paper
// compares against (Section 5.2). Each is the common AriesEngine with the
// cost profile of the original system; see DESIGN.md for the substitution
// rationale.
#ifndef REWIND_BASELINES_BASELINES_H_
#define REWIND_BASELINES_BASELINES_H_

#include <memory>
#include <string>

#include "src/baselines/aries_engine.h"

namespace rwd {

/// Stasis (Sears & Brewer, OSDI'06): flexible transactional storage with
/// operation (logical) logging over a page file.
inline std::unique_ptr<AriesEngine> MakeStasisLike(
    NvmManager* nvm, std::size_t num_pages = 16384,
    const std::string& tag = "stasis") {
  return std::make_unique<AriesEngine>(nvm, StasisLikeTuning(), num_pages,
                                       tag);
}

/// BerkeleyDB 6.0: page-level physical WAL, buffer pool, coarse latching.
inline std::unique_ptr<AriesEngine> MakeBdbLike(
    NvmManager* nvm, std::size_t num_pages = 16384,
    const std::string& tag = "bdb") {
  return std::make_unique<AriesEngine>(nvm, BdbLikeTuning(), num_pages, tag);
}

/// Shore-MT as modified for NVM by Wang & Johnson (PVLDB'14): distributed
/// per-core logs and volatile undo buffers.
inline std::unique_ptr<AriesEngine> MakeShoreLike(
    NvmManager* nvm, std::size_t num_pages = 16384,
    const std::string& tag = "shore", std::size_t partitions = 4) {
  return std::make_unique<AriesEngine>(nvm, ShoreLikeTuning(partitions),
                                       num_pages, tag);
}

}  // namespace rwd

#endif  // REWIND_BASELINES_BASELINES_H_
