// Full-state snapshot for follower resynchronization: a consistent Scan
// of the leader store plus the log position the stream resumes from.
#ifndef REWIND_REPL_SNAPSHOT_H_
#define REWIND_REPL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/repl/replication_log.h"

namespace rwd {
namespace repl {

struct StoreSnapshot {
  /// Stream position: records with gtid > this replay on top. The gtid
  /// is read BEFORE the scan, so records committed during the scan may
  /// be both inside the snapshot and replayed — safe, because put and
  /// delete replay idempotently.
  std::uint64_t gtid = 0;
  std::vector<std::pair<std::uint64_t, std::string>> kvs;
};

StoreSnapshot TakeSnapshot(KvStore* store, ReplicationLog* log);

}  // namespace repl
}  // namespace rwd

#endif  // REWIND_REPL_SNAPSHOT_H_
