#include "src/repl/snapshot.h"

namespace rwd {
namespace repl {

StoreSnapshot TakeSnapshot(KvStore* store, ReplicationLog* log) {
  StoreSnapshot snap;
  // Position first, state second: anything published between these two
  // reads is included in the scan AND replayed — idempotently — while
  // the reverse order could lose a batch forever.
  snap.gtid = log != nullptr ? log->last_gtid() : 0;
  store->Scan(1, ~std::size_t{0},
              [&](std::uint64_t key, std::string_view value) {
                snap.kvs.emplace_back(key, std::string(value));
                return true;
              });
  return snap;
}

}  // namespace repl
}  // namespace rwd
