// FollowerAgent: the follower's TCP replication client. Owns one thread
// that connects to the leader, sends REPL_SUBSCRIBE with the persisted
// applied gtid, installs a snapshot when the leader says the position is
// unreachable, then applies streamed REPL_BATCH frames through the
// ReplApplier and acks each one. Reconnects with backoff forever until
// Stop() — a leader restart or a dropped link is routine, not fatal.
#ifndef REWIND_REPL_FOLLOWER_AGENT_H_
#define REWIND_REPL_FOLLOWER_AGENT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "src/obs/metrics.h"
#include "src/repl/applier.h"
#include "src/repl/guard.h"

namespace rwd {
namespace repl {

/// Reconnect delay before attempt `attempt` (0-based): 50ms doubling to a
/// 2s cap, plus a deterministic seed-derived jitter of up to half the
/// base — so a fleet of followers restarting against one reborn leader
/// spreads out instead of thundering in lockstep. Pure function, exposed
/// for tests.
std::uint32_t ReconnectBackoffMs(std::uint32_t attempt, std::uint64_t seed);

class FollowerAgent {
 public:
  /// With a `guard`, the agent feeds it leader heartbeats / epochs (and
  /// refuses streams from stale, lower-epoch leaders). `force_snapshot`
  /// makes the FIRST successful subscribe request a full snapshot resync
  /// (kReplSubscribeSnapshot) — the rejoin path for a fenced ex-leader,
  /// whose own applied gtid is meaningless in the new leader's epoch.
  FollowerAgent(ReplApplier* applier, std::string leader_host,
                std::uint16_t leader_port, RewindGuard* guard = nullptr,
                bool force_snapshot = false);
  ~FollowerAgent();

  FollowerAgent(const FollowerAgent&) = delete;
  FollowerAgent& operator=(const FollowerAgent&) = delete;

  void Start();
  /// Idempotent and thread-safe (promotion calls it from a server worker
  /// thread while the agent thread is mid-recv).
  void Stop();

  bool connected() const { return connected_.load(std::memory_order_relaxed); }
  std::uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_loaded() const {
    return snapshots_loaded_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  /// One connect->subscribe->stream session; returns when the link drops
  /// or Stop() is called. True when the subscribe was accepted (resets
  /// the reconnect backoff).
  bool Session();
  int ConnectToLeader();

  ReplApplier* applier_;
  std::string host_;
  std::uint16_t port_;
  RewindGuard* guard_;
  bool force_snapshot_;
  bool forced_done_ = false;  ///< agent-thread only
  std::atomic<int> fd_{-1};
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> reconnects_{0};
  std::atomic<std::uint64_t> snapshots_loaded_{0};
  std::thread thread_;
  obs::Counter* reconnect_counter_;
  obs::Counter* snapshot_counter_;
};

}  // namespace repl
}  // namespace rwd

#endif  // REWIND_REPL_FOLLOWER_AGENT_H_
