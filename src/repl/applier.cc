#include "src/repl/applier.h"

#include <chrono>
#include <unordered_set>

#include "src/nvm/nvm_manager.h"

namespace rwd {
namespace repl {
namespace {

/// Snapshot install applies in bounded batches so one giant snapshot
/// doesn't hold every shard latch (or one huge NVM transaction) at once.
constexpr std::size_t kInstallChunk = 1024;

}  // namespace

ReplApplier::ReplApplier(KvStore* store)
    : store_(store),
      applied_gauge_(obs::Registry::Get().GetGauge("repl.applied_gtid")),
      applied_counter_(
          obs::Registry::Get().GetCounter("repl.records_applied")),
      skipped_counter_(
          obs::Registry::Get().GetCounter("repl.records_skipped")) {
  NvmManager& nvm = store_->runtime().nvm();
  slot_ = static_cast<std::uint64_t*>(nvm.heap().GetRoot("repl_gtid"));
  if (slot_ == nullptr) {
    slot_ = static_cast<std::uint64_t*>(nvm.Alloc(sizeof(std::uint64_t)));
    nvm.StoreNT(slot_, std::uint64_t{0});
    nvm.Fence();
    nvm.heap().SetRoot("repl_gtid", slot_);
  }
  applied_.store(*slot_, std::memory_order_release);
  applied_gauge_->Set(static_cast<double>(*slot_));
}

void ReplApplier::CommitGtid(std::uint64_t gtid) {
  NvmManager& nvm = store_->runtime().nvm();
  nvm.StoreNT(slot_, gtid);
  nvm.Fence();
  {
    std::lock_guard<std::mutex> lock(wait_mu_);
    applied_.store(gtid, std::memory_order_release);
  }
  wait_cv_.notify_all();
  applied_gauge_->Set(static_cast<double>(gtid));
}

bool ReplApplier::Apply(const ReplRecord& rec) {
  if (rec.gtid <= applied_.load(std::memory_order_acquire)) {
    skipped_count_.fetch_add(1, std::memory_order_relaxed);
    skipped_counter_->Add();
    return true;
  }
  // ApplyBatch mutates per-op `applied` flags; replay from a copy.
  std::vector<KvWriteOp> ops = rec.ops;
  store_->ApplyBatch(ops);
  // gtid persists only after ApplyBatch's durability fence returned: a
  // crash between the two re-applies this record on restart (idempotent),
  // never skips it.
  CommitGtid(rec.gtid);
  applied_count_.fetch_add(1, std::memory_order_relaxed);
  applied_counter_->Add();
  return true;
}

void ReplApplier::InstallSnapshot(
    std::uint64_t snap_gtid,
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs) {
  std::unordered_set<std::uint64_t> keep;
  keep.reserve(kvs.size());
  for (const auto& [key, value] : kvs) keep.insert(key);

  // Keys this follower holds that the snapshot lacks were deleted on the
  // leader during the gap; drop them or they resurrect forever.
  std::vector<std::uint64_t> stale;
  store_->Scan(1, ~std::size_t{0},
               [&](std::uint64_t key, std::string_view) {
                 if (keep.find(key) == keep.end()) stale.push_back(key);
                 return true;
               });

  std::vector<KvWriteOp> batch;
  auto flush = [&] {
    if (batch.empty()) return;
    store_->ApplyBatch(batch);
    batch.clear();
  };
  for (std::uint64_t key : stale) {
    KvWriteOp op;
    op.kind = KvWriteOp::Kind::kDelete;
    op.key = key;
    batch.push_back(std::move(op));
    if (batch.size() >= kInstallChunk) flush();
  }
  for (const auto& [key, value] : kvs) {
    KvWriteOp op;
    op.kind = KvWriteOp::Kind::kPut;
    op.key = key;
    op.value = value;
    batch.push_back(std::move(op));
    if (batch.size() >= kInstallChunk) flush();
  }
  flush();
  CommitGtid(snap_gtid);
}

bool ReplApplier::WaitForApplied(std::uint64_t gtid,
                                 std::uint32_t timeout_ms) {
  if (applied_.load(std::memory_order_acquire) >= gtid) return true;
  std::unique_lock<std::mutex> lock(wait_mu_);
  return wait_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return applied_.load(std::memory_order_acquire) >= gtid;
  });
}

}  // namespace repl
}  // namespace rwd
