#include "src/repl/replication_log.h"

#include <algorithm>
#include <chrono>

namespace rwd {
namespace repl {
namespace {

/// Steady-clock ns for subscriber staleness — independent of the obs
/// recording pause (health must stay accurate during crash tests).
std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ReplicationLog::ReplicationLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      last_gtid_gauge_(obs::Registry::Get().GetGauge("repl.last_gtid")),
      lag_gauge_(obs::Registry::Get().GetGauge("repl.lag_batches")),
      published_counter_(
          obs::Registry::Get().GetCounter("repl.records_published")) {
  // Publish zeros immediately so scrapes see the gauges before traffic.
  last_gtid_gauge_->Set(0);
  lag_gauge_->Set(0);
}

std::uint64_t ReplicationLog::Publish(const std::vector<KvWriteOp>& ops) {
  ReplRecord rec;
  rec.publish_ns = obs::RecordingEnabled() ? obs::NowNs() : 0;
  rec.ops.reserve(ops.size());
  for (const KvWriteOp& op : ops) {
    KvWriteOp copy;
    copy.kind = op.kind;
    copy.key = op.key;
    copy.value = op.value;
    copy.applied = true;
    rec.ops.push_back(std::move(copy));
  }
  std::uint64_t gtid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gtid = ++last_;
    rec.gtid = gtid;
    ring_.push_back(std::move(rec));
    while (ring_.size() > capacity_) ring_.pop_front();
    UpdateLagLocked();
  }
  records_published_.fetch_add(1, std::memory_order_relaxed);
  published_counter_->Add();
  last_gtid_gauge_->Set(static_cast<double>(gtid));
  cv_.notify_all();
  return gtid;
}

std::uint64_t ReplicationLog::last_gtid() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

bool ReplicationLog::CanResume(std::uint64_t after) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (after > last_) return false;  // ahead of us: another epoch's gtid
  if (after == last_) return true;  // caught up; ring contents irrelevant
  if (ring_.empty()) return false;
  return ring_.front().gtid <= after + 1;
}

ReplicationLog::PollResult ReplicationLog::Poll(std::uint64_t after,
                                                std::size_t max,
                                                std::uint32_t wait_ms,
                                                std::vector<ReplRecord>* out) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  if (after > last_) return PollResult::kGap;
  if (after == last_) {
    cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [&] { return last_ != after; });
    if (last_ == after) return PollResult::kOk;  // timeout, empty out
  }
  // There are records after `after` now; they must still be in the ring.
  if (ring_.empty() || ring_.front().gtid > after + 1) {
    return PollResult::kGap;
  }
  for (const ReplRecord& rec : ring_) {
    if (rec.gtid <= after) continue;
    out->push_back(rec);
    if (out->size() >= max) break;
  }
  return PollResult::kOk;
}

void ReplicationLog::Nudge() { cv_.notify_all(); }

std::uint64_t ReplicationLog::Subscribe(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t id = next_sub_id_++;
  subs_[id] = Sub{name, 0, SteadyNowNs()};
  UpdateLagLocked();
  return id;
}

void ReplicationLog::Ack(std::uint64_t id, std::uint64_t gtid) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = subs_.find(id);
    if (it == subs_.end()) return;
    it->second.acked = std::max(it->second.acked, gtid);
    it->second.last_ack_ns = SteadyNowNs();
    UpdateLagLocked();
  }
  cv_.notify_all();
}

void ReplicationLog::Unsubscribe(std::uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    subs_.erase(id);
    UpdateLagLocked();
  }
  // A departing subscriber can unblock semi-sync WaitAcked waiters.
  cv_.notify_all();
}

std::size_t ReplicationLog::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

std::uint64_t ReplicationLog::MinAckedLocked() const {
  std::uint64_t min_acked = ~std::uint64_t{0};
  for (const auto& [id, sub] : subs_) {
    min_acked = std::min(min_acked, sub.acked);
  }
  return min_acked;
}

std::uint64_t ReplicationLog::MaxAckedLocked() const {
  std::uint64_t max_acked = 0;
  for (const auto& [id, sub] : subs_) {
    max_acked = std::max(max_acked, sub.acked);
  }
  return max_acked;
}

void ReplicationLog::UpdateLagLocked() {
  double lag = 0;
  if (!subs_.empty()) {
    std::uint64_t min_acked = MinAckedLocked();
    lag = min_acked >= last_ ? 0
                             : static_cast<double>(last_ - min_acked);
  }
  lag_gauge_->Set(lag);
}

bool ReplicationLog::WaitAcked(std::uint64_t gtid, std::uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return subs_.empty() || MinAckedLocked() >= gtid;
  });
}

bool ReplicationLog::WaitAckedBySome(std::uint64_t gtid,
                                     std::uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !subs_.empty() && MaxAckedLocked() >= gtid;
  });
}

std::vector<ReplicationLog::SubscriberInfo> ReplicationLog::Subscribers()
    const {
  std::uint64_t now = SteadyNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SubscriberInfo> out;
  out.reserve(subs_.size());
  for (const auto& [id, sub] : subs_) {
    SubscriberInfo info;
    info.name = sub.name;
    info.acked = sub.acked;
    info.lag_batches = sub.acked >= last_ ? 0 : last_ - sub.acked;
    info.staleness_ms =
        now <= sub.last_ack_ns ? 0 : (now - sub.last_ack_ns) / 1000000;
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t ReplicationLog::lag_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (subs_.empty()) return 0;
  std::uint64_t min_acked = MinAckedLocked();
  return min_acked >= last_ ? 0 : last_ - min_acked;
}

}  // namespace repl
}  // namespace rwd
