#include "src/repl/shipper.h"

#include <vector>

namespace rwd {
namespace repl {
namespace {

/// Poll timeout: bounds both Stop() latency and the idle-hook cadence
/// (ack draining for ReplSession sinks).
constexpr std::uint32_t kPollWaitMs = 100;
constexpr std::size_t kMaxRecordsPerPoll = 256;

}  // namespace

Shipper::Shipper(ReplicationLog* log, std::uint64_t start_after, Sink sink,
                 IdleFn idle)
    : log_(log),
      sink_(std::move(sink)),
      idle_(std::move(idle)),
      shipped_(start_after),
      ship_hist_(obs::Registry::Get().GetHistogram("repl.ship")) {}

Shipper::~Shipper() { Stop(); }

void Shipper::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Shipper::Run() {
  std::vector<ReplRecord> batch;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (idle_ && !idle_()) return;
    std::uint64_t after = shipped_.load(std::memory_order_relaxed);
    ReplicationLog::PollResult res =
        log_->Poll(after, kMaxRecordsPerPoll, kPollWaitMs, &batch);
    if (res == ReplicationLog::PollResult::kGap) {
      gapped_.store(true, std::memory_order_relaxed);
      return;
    }
    for (const ReplRecord& rec : batch) {
      if (stop_.load(std::memory_order_relaxed)) return;
      if (rec.publish_ns != 0 && obs::RecordingEnabled()) {
        std::uint64_t now = obs::NowNs();
        if (now > rec.publish_ns) ship_hist_->Record(now - rec.publish_ns);
      }
      if (!sink_(rec)) return;
      shipped_.store(rec.gtid, std::memory_order_relaxed);
    }
  }
}

void Shipper::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (log_ != nullptr) log_->Nudge();
  if (thread_.joinable()) thread_.join();
}

}  // namespace repl
}  // namespace rwd
