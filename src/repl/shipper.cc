#include "src/repl/shipper.h"

#include <vector>

namespace rwd {
namespace repl {
namespace {

constexpr std::size_t kMaxRecordsPerPoll = 256;

}  // namespace

Shipper::Shipper(ReplicationLog* log, std::uint64_t start_after, Sink sink,
                 IdleFn idle, std::uint32_t poll_wait_ms)
    : log_(log),
      sink_(std::move(sink)),
      idle_(std::move(idle)),
      poll_wait_ms_(poll_wait_ms == 0 ? 100 : poll_wait_ms),
      shipped_(start_after),
      ship_hist_(obs::Registry::Get().GetHistogram("repl.ship")) {}

Shipper::~Shipper() { Stop(); }

void Shipper::Start() {
  thread_ = std::thread([this] { Run(); });
}

void Shipper::Run() {
  std::vector<ReplRecord> batch;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (idle_ && !idle_()) return;
    std::uint64_t after = shipped_.load(std::memory_order_relaxed);
    ReplicationLog::PollResult res =
        log_->Poll(after, kMaxRecordsPerPoll, poll_wait_ms_, &batch);
    if (res == ReplicationLog::PollResult::kGap) {
      gapped_.store(true, std::memory_order_relaxed);
      return;
    }
    for (const ReplRecord& rec : batch) {
      if (stop_.load(std::memory_order_relaxed)) return;
      if (rec.publish_ns != 0 && obs::RecordingEnabled()) {
        std::uint64_t now = obs::NowNs();
        if (now > rec.publish_ns) ship_hist_->Record(now - rec.publish_ns);
      }
      if (!sink_(rec)) return;
      shipped_.store(rec.gtid, std::memory_order_relaxed);
    }
  }
}

void Shipper::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (log_ != nullptr) log_->Nudge();
  if (thread_.joinable()) thread_.join();
}

}  // namespace repl
}  // namespace rwd
