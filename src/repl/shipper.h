// Shipper: drains a ReplicationLog from a position toward a sink. One
// shipper serves one follower; the sink is either a direct in-process
// apply hook (same binary, second KvStore) or a socket-send lambda (the
// leader-side ReplSession). Run() is the synchronous pump; Start() wraps
// it in an owned thread for the in-process topology.
#ifndef REWIND_REPL_SHIPPER_H_
#define REWIND_REPL_SHIPPER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "src/obs/metrics.h"
#include "src/repl/replication_log.h"

namespace rwd {
namespace repl {

class Shipper {
 public:
  /// Delivers one record; false stops the shipper (sink broken).
  using Sink = std::function<bool(const ReplRecord&)>;
  /// Called between polls (ack draining, liveness); false stops the
  /// shipper.
  using IdleFn = std::function<bool()>;

  /// Ships records with gtid > `start_after`. The sink owns delivery;
  /// the shipper only sequences and measures. `poll_wait_ms` bounds one
  /// Poll and therefore the idle-hook cadence — guarded ReplSessions
  /// lower it so lease heartbeats keep their schedule on a quiet log.
  Shipper(ReplicationLog* log, std::uint64_t start_after, Sink sink,
          IdleFn idle = nullptr, std::uint32_t poll_wait_ms = 100);
  ~Shipper();

  Shipper(const Shipper&) = delete;
  Shipper& operator=(const Shipper&) = delete;

  /// Spawns the pump on an owned thread (in-process follower topology).
  void Start();
  /// Synchronous pump; returns when stopped, the sink/idle hook fails,
  /// or the log reports a gap. Used directly by ReplSession threads.
  void Run();
  /// Idempotent; joins the owned thread if Start() was used.
  void Stop();

  /// True when Run() exited because the log could not serve the
  /// position (follower must resynchronize from a snapshot).
  bool gapped() const { return gapped_.load(std::memory_order_relaxed); }
  /// Highest gtid handed to the sink so far.
  std::uint64_t shipped_gtid() const {
    return shipped_.load(std::memory_order_relaxed);
  }

 private:
  ReplicationLog* log_;
  Sink sink_;
  IdleFn idle_;
  std::uint32_t poll_wait_ms_;
  std::atomic<std::uint64_t> shipped_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> gapped_{false};
  std::thread thread_;
  obs::Histogram* ship_hist_;  ///< publish-to-ship latency: repl.ship
};

}  // namespace repl
}  // namespace rwd

#endif  // REWIND_REPL_SHIPPER_H_
