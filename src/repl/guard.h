// RewindGuard: lease-based automatic failover and epoch fencing for
// RewindRepl. One guard runs per node and owns two things:
//
//  * The node's **fencing epoch** — a monotonically increasing u64,
//    persisted as the "repl_epoch" NVM catalog root so it survives
//    SIGKILL. Every promotion bumps it (to max-seen + 1) BEFORE the node
//    accepts its first write, so any two leaders in history have distinct,
//    ordered epochs. The epoch rides on REPL_SUBSCRIBE / REPL_ACK /
//    heartbeats / write acks; whoever sees a higher epoch than its own
//    knows it is stale.
//
//  * The node's **lease state**. A leader expects follower contact
//    (acks, including heartbeat acks) and self-fences — demotes to
//    read-only follower — when no follower has been heard from for a
//    full lease: if it cannot reach its follower, it must assume the
//    follower can't reach IT and is about to take over. A follower
//    expects leader heartbeats and self-promotes when they stop for
//    `ElectionDelayMs` (lease + heartbeat + deterministic jitter + a
//    replication-lag penalty, clamped under 2 lease intervals).
//
// The guard itself is transport-agnostic: `ReplSession` (leader side)
// and `FollowerAgent` (follower side) feed it observations; it reports
// role flips through `on_election` / `on_fence` callbacks, which the
// host wires to `KvServer::Promote()` / `Demote()` plus rejoin logic.
//
// Split-brain safety does NOT depend on clocks agreeing across nodes —
// only on each node's own steady clock ticking. A partitioned leader
// fences itself no later than one lease after losing its follower; the
// follower waits strictly longer than that (lease + heartbeat + jitter)
// before electing, so by the time the new leader can ack a write, the
// old one is read-only. Writes the old leader applied but never acked
// (fenced mid-batch) are discarded when it rejoins via forced snapshot.
#ifndef REWIND_REPL_GUARD_H_
#define REWIND_REPL_GUARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/kv/kv_store.h"
#include "src/obs/metrics.h"

namespace rwd {
namespace repl {

struct GuardConfig {
  /// Lease duration. A leader fences after this long without follower
  /// contact; a follower's election delay is derived from it (see
  /// ElectionDelayMs).
  std::uint32_t lease_ms = 1000;
  /// Heartbeat cadence. 0 derives lease_ms / 4 (clamped to >= 5ms).
  std::uint32_t heartbeat_ms = 0;
  /// Initial role. The epoch root may still demote a start_leader node
  /// immediately if a peer later presents a higher epoch.
  bool start_leader = true;
  /// The OTHER node's "host:port": the redirect hint carried in
  /// kNotLeader replies, and the rejoin target after a demotion. May be
  /// empty (hint-less fencing still works; clients fall back to their
  /// endpoint lists).
  std::string peer_addr;
  /// Seed for the deterministic election jitter (tests pin it; servers
  /// derive one from their port so two nodes never share a seed).
  std::uint64_t jitter_seed = 0;
};

class RewindGuard {
 public:
  /// Binds to the node's store and loads (or creates) the "repl_epoch"
  /// catalog root. Does not start the monitor thread.
  RewindGuard(KvStore* store, GuardConfig cfg);
  ~RewindGuard();

  RewindGuard(const RewindGuard&) = delete;
  RewindGuard& operator=(const RewindGuard&) = delete;

  /// Fired by the monitor when a follower's election delay lapses,
  /// INSTEAD of self-promoting — wire it to KvServer::Promote() so the
  /// epoch bump and the read_only flip stay ordered. When unset the
  /// guard promotes itself (library / test use). Set before Start().
  std::function<void()> on_election;
  /// Fired by the monitor right after this node demoted itself (lease
  /// lapse as leader, or a higher epoch was observed). The guard's own
  /// role is already follower; the host should make the server
  /// read-only and start a rejoin agent toward peer_addr.
  std::function<void()> on_fence;

  void Start();
  void Stop();

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  bool is_leader() const {
    return leader_.load(std::memory_order_acquire);
  }
  std::uint32_t lease_ms() const { return cfg_.lease_ms; }
  std::uint32_t heartbeat_ms() const { return heartbeat_ms_; }
  const std::string& leader_hint() const { return cfg_.peer_addr; }

  /// Takes leadership: persists epoch = max(own, max seen) + 1, then
  /// flips the role. Returns the new epoch. Idempotent-ish: calling as
  /// leader still bumps the epoch (a re-promotion fences any concurrent
  /// leader at the old epoch).
  std::uint64_t Promote();

  /// Drops to follower. The lease stays DISARMED until a heartbeat from
  /// the (new) leader arrives — a partitioned ex-leader must not win an
  /// election against silence it caused itself.
  void DemoteToFollower();

  /// Adopts `e` if it exceeds the current epoch (persisted). Role is
  /// untouched — demotion decisions belong to the monitor / callers.
  void AdoptEpoch(std::uint64_t e);

  /// Records an epoch observed on the wire. A follower adopts it
  /// immediately; a leader only records it and lets the monitor fence
  /// (so the fence and its callback run on one thread).
  void ObserveRemoteEpoch(std::uint64_t e);

  /// Follower side: a heartbeat (or subscribe reply) from the leader at
  /// `leader_epoch`, whose log head is `leader_gtid`, while we have
  /// applied `applied_gtid`. Renews the lease and adopts the epoch.
  /// Returns false — and renews nothing — when the sender's epoch is
  /// below ours (a stale leader; the caller should drop the session).
  bool ObserveLeaderHeartbeat(std::uint64_t leader_epoch,
                              std::uint64_t leader_gtid,
                              std::uint64_t applied_gtid);

  /// Leader side: a follower ack (data or heartbeat) arrived — renews
  /// the leader's own lease.
  void ObserveFollowerContact();

  /// True once any follower has ever contacted this leader. Gates both
  /// the leader's self-fencing (a node serving solo without a configured
  /// follower must not fence on silence) and the batcher's guarded
  /// semi-sync wait.
  bool expects_follower() const {
    return had_follower_.load(std::memory_order_acquire);
  }

  void CountFencedWrites(std::uint64_t n);
  void CountHeartbeatSent();

  /// Deterministic time a follower waits after the LAST heartbeat before
  /// electing itself: lease + heartbeat + jitter[0, heartbeat) + a lag
  /// penalty of (min(lag, 16) * heartbeat / 16) — the least-caught-up
  /// follower yields to better-positioned peers — clamped to
  /// 15/8 * lease so promotion lands within 2 lease intervals of the
  /// leader's death.
  std::uint32_t ElectionDelayMs(std::uint64_t lag_batches) const;

  std::uint64_t elections() const {
    return elections_.load(std::memory_order_relaxed);
  }
  std::uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  std::uint64_t lease_renewals() const {
    return renewals_.load(std::memory_order_relaxed);
  }
  std::uint64_t fenced_writes() const {
    return fenced_writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t heartbeats_sent() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

 private:
  void MonitorLoop();
  /// Persists `e` into the catalog root and publishes it. Caller holds
  /// persist_mu_.
  void StoreEpochLocked(std::uint64_t e);
  void SetRoleGauge(bool leader);

  KvStore* store_;
  GuardConfig cfg_;
  std::uint32_t heartbeat_ms_;
  std::uint32_t jitter_ms_;  ///< precomputed deterministic election jitter

  std::uint64_t* slot_ = nullptr;  ///< NVM cell behind "repl_epoch"
  std::mutex persist_mu_;          ///< serializes epoch persistence
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> max_seen_{0};  ///< highest epoch on the wire
  std::atomic<bool> leader_{false};

  // Lease clocks (steady-clock ns; 0 = never).
  std::atomic<std::uint64_t> last_contact_ns_{0};  ///< follower -> us
  std::atomic<std::uint64_t> last_hb_ns_{0};       ///< leader -> us
  std::atomic<bool> hb_armed_{false};  ///< follower lease armed
  std::atomic<bool> had_follower_{false};
  std::atomic<std::uint64_t> lag_{0};  ///< batches behind, per last hb

  std::atomic<std::uint64_t> elections_{0};
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> renewals_{0};
  std::atomic<std::uint64_t> fenced_writes_{0};
  std::atomic<std::uint64_t> heartbeats_{0};

  obs::Gauge* epoch_gauge_;
  obs::Gauge* role_gauge_;
  obs::Counter* renewals_counter_;
  obs::Counter* elections_counter_;
  obs::Counter* demotions_counter_;
  obs::Counter* fenced_counter_;
  obs::Counter* heartbeats_counter_;

  std::atomic<bool> stop_{false};
  std::thread monitor_;
};

}  // namespace repl
}  // namespace rwd

#endif  // REWIND_REPL_GUARD_H_
