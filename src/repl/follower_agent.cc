#include "src/repl/follower_agent.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "src/server/protocol.h"

namespace rwd {
namespace repl {
namespace {

/// Reconnect backoff; also the cadence at which Stop() is noticed while
/// the leader is down.
constexpr int kBackoffMs = 200;
/// recv timeout: bounds how long Stop() can be ignored mid-stream.
constexpr int kRecvTimeoutMs = 200;

bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

FollowerAgent::FollowerAgent(ReplApplier* applier, std::string leader_host,
                             std::uint16_t leader_port)
    : applier_(applier),
      host_(std::move(leader_host)),
      port_(leader_port),
      reconnect_counter_(
          obs::Registry::Get().GetCounter("repl.follower.reconnects")),
      snapshot_counter_(
          obs::Registry::Get().GetCounter("repl.follower.snapshots")) {}

FollowerAgent::~FollowerAgent() { Stop(); }

void FollowerAgent::Start() {
  thread_ = std::thread([this] { Run(); });
}

void FollowerAgent::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  int fd = fd_.load(std::memory_order_relaxed);
  // Shutdown (not close) unblocks the agent thread's recv without racing
  // the fd number against a concurrent reuse.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

int FollowerAgent::ConnectToLeader() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host_.c_str(), std::to_string(port_).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return -1;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                    res->ai_protocol);
  bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
  ::freeaddrinfo(res);
  if (!ok) {
    if (fd >= 0) ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = kRecvTimeoutMs / 1000;
  tv.tv_usec = (kRecvTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void FollowerAgent::Run() {
  bool first = true;
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!first) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      reconnect_counter_->Add();
    }
    first = false;
    Session();
    connected_.store(false, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(kBackoffMs));
  }
}

void FollowerAgent::Session() {
  int fd = ConnectToLeader();
  if (fd < 0) return;
  fd_.store(fd, std::memory_order_relaxed);

  // Frame reader over this session's socket. Timeouts (EAGAIN) are
  // retried until stop; anything else ends the session.
  std::string buf;
  std::size_t off = 0;
  auto fill_to = [&](std::size_t need) {
    while (buf.size() - off < need) {
      if (stop_.load(std::memory_order_relaxed)) return false;
      char chunk[65536];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        continue;
      }
      return false;
    }
    return true;
  };
  // Reads one [len][tag][payload] frame; false ends the session.
  auto read_frame = [&](std::uint8_t* tag, std::string* payload) {
    if (!fill_to(4)) return false;
    std::uint32_t len = serve::ReadU32(buf.data() + off);
    if (len < 1 || len > serve::kMaxFrameBytes) return false;
    if (!fill_to(4 + static_cast<std::size_t>(len))) return false;
    *tag = static_cast<std::uint8_t>(buf[off + 4]);
    payload->assign(buf.data() + off + 5, len - 1);
    off += 4 + len;
    if (off == buf.size()) {
      buf.clear();
      off = 0;
    }
    return true;
  };

  std::string out;
  serve::EncodeReplSubscribe(&out, applier_->applied_gtid());
  bool alive = SendAll(fd, out.data(), out.size());

  // Subscribe reply: [status][mode:u8][start:u64]. kBadRequest (e.g. the
  // target runs without a replication log) retries via the normal
  // backoff.
  std::uint8_t status = 0;
  std::string payload;
  alive = alive && read_frame(&status, &payload);
  if (alive && status == static_cast<std::uint8_t>(serve::Status::kOk) &&
      payload.size() == 9) {
    connected_.store(true, std::memory_order_relaxed);
    bool snapshotting = payload[0] != 0;
    std::vector<std::pair<std::uint64_t, std::string>> snap_kvs;
    while (alive && !stop_.load(std::memory_order_relaxed)) {
      std::uint8_t tag = 0;
      if (!read_frame(&tag, &payload)) break;
      if (tag == static_cast<std::uint8_t>(serve::Op::kReplSnapshot) &&
          snapshotting) {
        // [last:u8][snap_gtid:u64][n:u32] n*(key,len,bytes)
        if (payload.size() < 13) break;
        bool last = payload[0] != 0;
        std::uint64_t snap_gtid = serve::ReadU64(payload.data() + 1);
        if (!serve::DecodeScanPayload(
                std::string_view(payload).substr(9), &snap_kvs)) {
          break;
        }
        if (last) {
          applier_->InstallSnapshot(snap_gtid, snap_kvs);
          snap_kvs.clear();
          snapshotting = false;
          snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
          snapshot_counter_->Add();
          out.clear();
          serve::EncodeReplAck(&out, applier_->applied_gtid());
          alive = SendAll(fd, out.data(), out.size());
        }
      } else if (tag == static_cast<std::uint8_t>(serve::Op::kReplBatch) &&
                 !snapshotting) {
        ReplRecord rec;
        if (!DecodeRecordPayload(payload, &rec)) break;
        applier_->Apply(rec);
        out.clear();
        serve::EncodeReplAck(&out, applier_->applied_gtid());
        alive = SendAll(fd, out.data(), out.size());
      } else {
        break;  // protocol violation
      }
    }
  }

  fd_.store(-1, std::memory_order_relaxed);
  ::close(fd);
}

}  // namespace repl
}  // namespace rwd
