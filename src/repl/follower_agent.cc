#include "src/repl/follower_agent.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "src/server/protocol.h"

namespace rwd {
namespace repl {
namespace {

/// recv timeout: bounds how long Stop() can be ignored mid-stream.
constexpr int kRecvTimeoutMs = 200;

bool SendAll(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

std::uint32_t ReconnectBackoffMs(std::uint32_t attempt, std::uint64_t seed) {
  constexpr std::uint32_t kBase = 50;
  constexpr std::uint32_t kCap = 2000;
  std::uint32_t backoff =
      attempt >= 6 ? kCap : std::min(kCap, kBase << attempt);
  // splitmix64-style mix keyed on (seed, attempt): deterministic for a
  // given agent yet uncorrelated across agents.
  std::uint64_t x = seed ^ (0x9E3779B97F4A7C15ull * (attempt + 1));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return backoff + static_cast<std::uint32_t>(x % (backoff / 2 + 1));
}

FollowerAgent::FollowerAgent(ReplApplier* applier, std::string leader_host,
                             std::uint16_t leader_port, RewindGuard* guard,
                             bool force_snapshot)
    : applier_(applier),
      host_(std::move(leader_host)),
      port_(leader_port),
      guard_(guard),
      force_snapshot_(force_snapshot),
      reconnect_counter_(
          obs::Registry::Get().GetCounter("repl.reconnects")),
      snapshot_counter_(
          obs::Registry::Get().GetCounter("repl.follower.snapshots")) {}

FollowerAgent::~FollowerAgent() { Stop(); }

void FollowerAgent::Start() {
  thread_ = std::thread([this] { Run(); });
}

void FollowerAgent::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  int fd = fd_.load(std::memory_order_relaxed);
  // Shutdown (not close) unblocks the agent thread's recv without racing
  // the fd number against a concurrent reuse.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
}

int FollowerAgent::ConnectToLeader() {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host_.c_str(), std::to_string(port_).c_str(), &hints,
                    &res) != 0 ||
      res == nullptr) {
    return -1;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype | SOCK_CLOEXEC,
                    res->ai_protocol);
  bool ok = fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) == 0;
  ::freeaddrinfo(res);
  if (!ok) {
    if (fd >= 0) ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval tv{};
  tv.tv_sec = kRecvTimeoutMs / 1000;
  tv.tv_usec = (kRecvTimeoutMs % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

void FollowerAgent::Run() {
  bool first = true;
  std::uint32_t attempt = 0;
  // Jitter seed: the target endpoint + this object's address — stable
  // within a process, distinct across a restarting fleet.
  std::uint64_t seed =
      (static_cast<std::uint64_t>(port_) << 32) ^
      reinterpret_cast<std::uintptr_t>(this);
  while (!stop_.load(std::memory_order_relaxed)) {
    if (!first) {
      reconnects_.fetch_add(1, std::memory_order_relaxed);
      reconnect_counter_->Add();
    }
    first = false;
    bool streamed = Session();
    connected_.store(false, std::memory_order_relaxed);
    if (stop_.load(std::memory_order_relaxed)) break;
    // A session that actually subscribed resets the backoff: the link
    // was healthy until just now, so retry promptly and only back off
    // again if the leader stays unreachable.
    if (streamed) attempt = 0;
    std::uint32_t delay = ReconnectBackoffMs(attempt++, seed);
    // Sliced so Stop() is honoured within ~50ms even at the 2s cap.
    while (delay > 0 && !stop_.load(std::memory_order_relaxed)) {
      std::uint32_t slice = std::min<std::uint32_t>(delay, 50);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      delay -= slice;
    }
  }
}

bool FollowerAgent::Session() {
  int fd = ConnectToLeader();
  if (fd < 0) return false;
  fd_.store(fd, std::memory_order_relaxed);
  bool subscribed = false;

  // Frame reader over this session's socket. Timeouts (EAGAIN) are
  // retried until stop; anything else ends the session.
  std::string buf;
  std::size_t off = 0;
  auto fill_to = [&](std::size_t need) {
    while (buf.size() - off < need) {
      if (stop_.load(std::memory_order_relaxed)) return false;
      char chunk[65536];
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK)) {
        continue;
      }
      return false;
    }
    return true;
  };
  // Reads one [len][tag][payload] frame; false ends the session.
  auto read_frame = [&](std::uint8_t* tag, std::string* payload) {
    if (!fill_to(4)) return false;
    std::uint32_t len = serve::ReadU32(buf.data() + off);
    if (len < 1 || len > serve::kMaxFrameBytes) return false;
    if (!fill_to(4 + static_cast<std::size_t>(len))) return false;
    *tag = static_cast<std::uint8_t>(buf[off + 4]);
    payload->assign(buf.data() + off + 5, len - 1);
    off += 4 + len;
    if (off == buf.size()) {
      buf.clear();
      off = 0;
    }
    return true;
  };

  // A fenced ex-leader's first rejoin forces a snapshot: its applied
  // gtid belongs to its OWN former epoch and the snapshot's keep-set
  // reconciliation discards any divergent never-acked writes.
  std::uint64_t sub_pos = force_snapshot_ && !forced_done_
                              ? serve::kReplSubscribeSnapshot
                              : applier_->applied_gtid();
  std::uint64_t own_epoch = guard_ != nullptr ? guard_->epoch() : 0;
  std::string out;
  serve::EncodeReplSubscribe(&out, sub_pos, own_epoch);
  bool alive = SendAll(fd, out.data(), out.size());

  // Subscribe reply: [status][mode:u8][start:u64] plus a [epoch:u64]
  // trailer since PR 10 — both lengths accepted. kBadRequest (e.g. the
  // target runs without a replication log) and kNotLeader (the target is
  // itself fenced) retry via the normal backoff.
  std::uint8_t status = 0;
  std::string payload;
  alive = alive && read_frame(&status, &payload);
  if (alive && status == static_cast<std::uint8_t>(serve::Status::kOk) &&
      (payload.size() == 9 || payload.size() == 17)) {
    if (guard_ != nullptr && payload.size() == 17 &&
        !guard_->ObserveLeaderHeartbeat(serve::ReadU64(payload.data() + 9),
                                        0, applier_->applied_gtid())) {
      // The "leader" presented a LOWER epoch than ours: it is stale.
      // Drop the session rather than apply a fenced node's stream.
      fd_.store(-1, std::memory_order_relaxed);
      ::close(fd);
      return false;
    }
    subscribed = true;
    connected_.store(true, std::memory_order_relaxed);
    bool snapshotting = payload[0] != 0;
    std::vector<std::pair<std::uint64_t, std::string>> snap_kvs;
    while (alive && !stop_.load(std::memory_order_relaxed)) {
      std::uint8_t tag = 0;
      if (!read_frame(&tag, &payload)) break;
      if (tag == static_cast<std::uint8_t>(serve::Op::kReplHeartbeat)) {
        // [epoch:u64][last_gtid:u64]: renew the lease, answer with an
        // ack so the leader's lease renews too. While a snapshot is
        // still streaming the ack carries gtid 0 — the real applied
        // gtid is from another epoch and must not move our cursor.
        if (payload.size() != 16) break;
        std::uint64_t e = serve::ReadU64(payload.data());
        std::uint64_t leader_gtid = serve::ReadU64(payload.data() + 8);
        if (guard_ != nullptr &&
            !guard_->ObserveLeaderHeartbeat(e, leader_gtid,
                                            applier_->applied_gtid())) {
          break;  // stale leader mid-stream
        }
        out.clear();
        serve::EncodeReplAck(
            &out, snapshotting ? 0 : applier_->applied_gtid(),
            guard_ != nullptr ? guard_->epoch() : 0);
        alive = SendAll(fd, out.data(), out.size());
      } else if (tag ==
                     static_cast<std::uint8_t>(serve::Op::kReplSnapshot) &&
                 snapshotting) {
        // [last:u8][snap_gtid:u64][n:u32] n*(key,len,bytes)
        if (payload.size() < 13) break;
        bool last = payload[0] != 0;
        std::uint64_t snap_gtid = serve::ReadU64(payload.data() + 1);
        if (!serve::DecodeScanPayload(
                std::string_view(payload).substr(9), &snap_kvs)) {
          break;
        }
        if (last) {
          applier_->InstallSnapshot(snap_gtid, snap_kvs);
          snap_kvs.clear();
          snapshotting = false;
          forced_done_ = true;
          snapshots_loaded_.fetch_add(1, std::memory_order_relaxed);
          snapshot_counter_->Add();
          out.clear();
          serve::EncodeReplAck(&out, applier_->applied_gtid(),
                               guard_ != nullptr ? guard_->epoch() : 0);
          alive = SendAll(fd, out.data(), out.size());
        }
      } else if (tag == static_cast<std::uint8_t>(serve::Op::kReplBatch) &&
                 !snapshotting) {
        ReplRecord rec;
        if (!DecodeRecordPayload(payload, &rec)) break;
        applier_->Apply(rec);
        out.clear();
        serve::EncodeReplAck(&out, applier_->applied_gtid(),
                             guard_ != nullptr ? guard_->epoch() : 0);
        alive = SendAll(fd, out.data(), out.size());
      } else {
        break;  // protocol violation
      }
    }
  }

  fd_.store(-1, std::memory_order_relaxed);
  ::close(fd);
  return subscribed;
}

}  // namespace repl
}  // namespace rwd
