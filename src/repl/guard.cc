#include "src/repl/guard.h"

#include <algorithm>
#include <chrono>

#include "src/nvm/nvm_manager.h"

namespace rwd {
namespace repl {
namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// splitmix64 finalizer: turns an arbitrary seed into well-mixed bits so
/// two nodes seeded from adjacent ports still land on distinct jitter.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

RewindGuard::RewindGuard(KvStore* store, GuardConfig cfg)
    : store_(store),
      cfg_(std::move(cfg)),
      epoch_gauge_(obs::Registry::Get().GetGauge("repl.epoch")),
      role_gauge_(obs::Registry::Get().GetGauge("repl.role")),
      renewals_counter_(
          obs::Registry::Get().GetCounter("repl.lease_renewals")),
      elections_counter_(obs::Registry::Get().GetCounter("repl.elections")),
      demotions_counter_(obs::Registry::Get().GetCounter("repl.demotions")),
      fenced_counter_(
          obs::Registry::Get().GetCounter("repl.fenced_writes")),
      heartbeats_counter_(
          obs::Registry::Get().GetCounter("repl.heartbeats_sent")) {
  if (cfg_.lease_ms == 0) cfg_.lease_ms = 1000;
  heartbeat_ms_ = cfg_.heartbeat_ms != 0
                      ? cfg_.heartbeat_ms
                      : std::max<std::uint32_t>(5, cfg_.lease_ms / 4);
  jitter_ms_ = static_cast<std::uint32_t>(
      Mix(cfg_.jitter_seed) % std::max<std::uint32_t>(1, heartbeat_ms_));

  // The epoch lives behind its own catalog root, exactly like the
  // applier's "repl_gtid": found on re-attach, created at 0 otherwise.
  // On a DRAM heap the root exists but does not outlive the process —
  // acceptable there, since neither does the data.
  NvmManager& nvm = store_->runtime().nvm();
  slot_ = static_cast<std::uint64_t*>(nvm.heap().GetRoot("repl_epoch"));
  if (slot_ == nullptr) {
    slot_ = static_cast<std::uint64_t*>(nvm.Alloc(sizeof(std::uint64_t)));
    nvm.StoreNT(slot_, std::uint64_t{0});
    nvm.Fence();
    nvm.heap().SetRoot("repl_epoch", slot_);
  }
  epoch_.store(*slot_, std::memory_order_release);
  max_seen_.store(*slot_, std::memory_order_release);
  epoch_gauge_->Set(static_cast<double>(*slot_));
  leader_.store(cfg_.start_leader, std::memory_order_release);
  SetRoleGauge(cfg_.start_leader);
  if (cfg_.start_leader) {
    last_contact_ns_.store(NowNs(), std::memory_order_release);
  }
}

RewindGuard::~RewindGuard() { Stop(); }

void RewindGuard::Start() {
  stop_.store(false, std::memory_order_release);
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void RewindGuard::Stop() {
  stop_.store(true, std::memory_order_release);
  if (monitor_.joinable()) monitor_.join();
}

void RewindGuard::StoreEpochLocked(std::uint64_t e) {
  NvmManager& nvm = store_->runtime().nvm();
  nvm.StoreNT(slot_, e);
  nvm.Fence();
  epoch_.store(e, std::memory_order_release);
  epoch_gauge_->Set(static_cast<double>(e));
}

void RewindGuard::SetRoleGauge(bool leader) {
  role_gauge_->Set(leader ? 1.0 : 0.0);
}

std::uint64_t RewindGuard::Promote() {
  std::lock_guard<std::mutex> lock(persist_mu_);
  std::uint64_t e = std::max(epoch_.load(std::memory_order_acquire),
                             max_seen_.load(std::memory_order_acquire)) +
                    1;
  // Persist BEFORE taking the role: a SIGKILL after the first acked
  // write must come back knowing it led at epoch e, or a second
  // promotion elsewhere could reuse it.
  StoreEpochLocked(e);
  hb_armed_.store(false, std::memory_order_release);
  had_follower_.store(false, std::memory_order_release);
  last_contact_ns_.store(NowNs(), std::memory_order_release);
  leader_.store(true, std::memory_order_release);
  SetRoleGauge(true);
  return e;
}

void RewindGuard::DemoteToFollower() {
  bool was_leader = leader_.exchange(false, std::memory_order_acq_rel);
  // Disarmed until the NEW leader heartbeats us: during the partition
  // that fenced us there is nobody whose silence should elect us.
  hb_armed_.store(false, std::memory_order_release);
  had_follower_.store(false, std::memory_order_release);
  SetRoleGauge(false);
  if (was_leader) {
    demotions_.fetch_add(1, std::memory_order_relaxed);
    demotions_counter_->Add();
  }
}

void RewindGuard::AdoptEpoch(std::uint64_t e) {
  // max_seen_ via CAS max (no fetch_max pre-C++26).
  std::uint64_t seen = max_seen_.load(std::memory_order_relaxed);
  while (e > seen &&
         !max_seen_.compare_exchange_weak(seen, e,
                                          std::memory_order_acq_rel)) {
  }
  if (e <= epoch_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(persist_mu_);
  if (e > epoch_.load(std::memory_order_acquire)) StoreEpochLocked(e);
}

void RewindGuard::ObserveRemoteEpoch(std::uint64_t e) {
  if (!is_leader()) {
    AdoptEpoch(e);
    return;
  }
  std::uint64_t seen = max_seen_.load(std::memory_order_relaxed);
  while (e > seen &&
         !max_seen_.compare_exchange_weak(seen, e,
                                          std::memory_order_acq_rel)) {
  }
}

bool RewindGuard::ObserveLeaderHeartbeat(std::uint64_t leader_epoch,
                                         std::uint64_t leader_gtid,
                                         std::uint64_t applied_gtid) {
  if (leader_epoch < epoch_.load(std::memory_order_acquire)) return false;
  AdoptEpoch(leader_epoch);
  lag_.store(leader_gtid > applied_gtid ? leader_gtid - applied_gtid : 0,
             std::memory_order_relaxed);
  last_hb_ns_.store(NowNs(), std::memory_order_release);
  hb_armed_.store(true, std::memory_order_release);
  renewals_.fetch_add(1, std::memory_order_relaxed);
  renewals_counter_->Add();
  return true;
}

void RewindGuard::ObserveFollowerContact() {
  last_contact_ns_.store(NowNs(), std::memory_order_release);
  had_follower_.store(true, std::memory_order_release);
}

void RewindGuard::CountFencedWrites(std::uint64_t n) {
  fenced_writes_.fetch_add(n, std::memory_order_relaxed);
  fenced_counter_->Add(n);
}

void RewindGuard::CountHeartbeatSent() {
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  heartbeats_counter_->Add();
}

std::uint32_t RewindGuard::ElectionDelayMs(std::uint64_t lag_batches) const {
  std::uint64_t penalty =
      std::min<std::uint64_t>(lag_batches, 16) * heartbeat_ms_ / 16;
  std::uint64_t delay = std::uint64_t{cfg_.lease_ms} + heartbeat_ms_ +
                        jitter_ms_ + penalty;
  // Keep the total under 15/8 lease: the leader self-fenced at +lease,
  // and the acceptance bound is promotion within 2 lease intervals.
  std::uint64_t cap = std::uint64_t{cfg_.lease_ms} * 15 / 8;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(
      std::min(delay, std::max<std::uint64_t>(cap, cfg_.lease_ms + 1)),
      1));
}

void RewindGuard::MonitorLoop() {
  const std::uint32_t tick_ms = std::max<std::uint32_t>(2, heartbeat_ms_ / 2);
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(tick_ms));
    if (stop_.load(std::memory_order_acquire)) break;
    std::uint64_t now = NowNs();
    if (is_leader()) {
      bool stale =
          max_seen_.load(std::memory_order_acquire) >
          epoch_.load(std::memory_order_acquire);
      std::uint64_t last = last_contact_ns_.load(std::memory_order_acquire);
      bool lapsed = expects_follower() && last != 0 &&
                    now - last > std::uint64_t{cfg_.lease_ms} * 1000000ull;
      if (stale || lapsed) {
        // Fence: a higher epoch exists (someone got promoted past us) or
        // our follower went silent a full lease — either way we can no
        // longer prove our acks reach a majority of the pair.
        AdoptEpoch(max_seen_.load(std::memory_order_acquire));
        DemoteToFollower();
        if (on_fence) on_fence();
      }
    } else {
      if (!hb_armed_.load(std::memory_order_acquire)) continue;
      std::uint64_t last = last_hb_ns_.load(std::memory_order_acquire);
      std::uint64_t delay_ns =
          std::uint64_t{ElectionDelayMs(
              lag_.load(std::memory_order_relaxed))} *
          1000000ull;
      if (now - last > delay_ns) {
        hb_armed_.store(false, std::memory_order_release);
        elections_.fetch_add(1, std::memory_order_relaxed);
        elections_counter_->Add();
        if (on_election) {
          on_election();
        } else {
          Promote();
        }
      }
    }
  }
}

}  // namespace repl
}  // namespace rwd
