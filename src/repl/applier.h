// ReplApplier: the follower-side half of RewindRepl. Replays shipped
// records through the follower store's own ApplyBatch (the same
// crash-atomic group-commit path the leader uses) and persists the
// last-applied gtid as a named NVM catalog root, persisted strictly
// AFTER the batch's durability fence — so the recorded gtid can lag the
// applied state but never lead it, and replay after a follower crash
// re-applies at most a suffix, idempotently.
#ifndef REWIND_REPL_APPLIER_H_
#define REWIND_REPL_APPLIER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/obs/metrics.h"
#include "src/repl/replication_log.h"

namespace rwd {
namespace repl {

class ReplApplier {
 public:
  /// Binds to the follower store. On a file-backed store, finds or
  /// creates the "repl_gtid" catalog root and resumes from its value;
  /// DRAM stores start from 0.
  explicit ReplApplier(KvStore* store);

  ReplApplier(const ReplApplier&) = delete;
  ReplApplier& operator=(const ReplApplier&) = delete;

  /// Applies one record. Records at or below the persisted applied gtid
  /// are skipped (idempotent re-delivery after a crash or reconnect).
  /// Returns true when the record was applied or skipped as a duplicate.
  bool Apply(const ReplRecord& rec);

  /// Replaces the follower's state with a leader snapshot at `snap_gtid`:
  /// deletes keys the snapshot does not contain (a lost delete otherwise
  /// resurrects on this follower forever), upserts everything it does,
  /// then persists the gtid. Streaming resumes from snap_gtid.
  void InstallSnapshot(
      std::uint64_t snap_gtid,
      const std::vector<std::pair<std::uint64_t, std::string>>& kvs);

  /// Blocks until applied_gtid() >= gtid (read-your-writes waits).
  /// False on timeout.
  bool WaitForApplied(std::uint64_t gtid, std::uint32_t timeout_ms);

  std::uint64_t applied_gtid() const {
    return applied_.load(std::memory_order_acquire);
  }
  std::uint64_t records_applied() const {
    return applied_count_.load(std::memory_order_relaxed);
  }
  std::uint64_t records_skipped() const {
    return skipped_count_.load(std::memory_order_relaxed);
  }

  KvStore* store() { return store_; }

 private:
  /// Persists `gtid` into the catalog-rooted slot (file-backed only) and
  /// publishes it to waiters + the repl.applied_gtid gauge.
  void CommitGtid(std::uint64_t gtid);

  KvStore* store_;
  std::uint64_t* slot_ = nullptr;  ///< NVM cell behind the catalog root
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> applied_count_{0};
  std::atomic<std::uint64_t> skipped_count_{0};
  std::mutex wait_mu_;
  std::condition_variable wait_cv_;
  obs::Gauge* applied_gauge_;
  obs::Counter* applied_counter_;
  obs::Counter* skipped_counter_;
};

}  // namespace repl
}  // namespace rwd

#endif  // REWIND_REPL_APPLIER_H_
