// RewindRepl: log-shipping replication for RewindKV.
//
// The group-commit batcher (PR 3) already emits exactly ONE atomic
// cross-shard decision per batch — the ideal replication unit. The
// ReplicationLog gives every committed write batch a dense global sequence
// number (gtid) and keeps the most recent records in an in-memory ring;
// Shippers stream them to followers, which replay through their own
// ApplyBatch. gtids are an *epoch-local* sequence: they start at 1 for
// every leader process and are never persisted on the leader — a follower
// whose position the ring cannot serve (it fell behind, or the leader
// restarted and began a fresh epoch) resynchronizes from a full snapshot.
//
// Publishing happens while the involved shards' latches are held, so for
// any single key the record order in the log matches the commit order on
// the leader, and a record's gtid is assigned before the covering write is
// acked — an acked write's gtid is a valid read-your-writes token.
#ifndef REWIND_REPL_REPLICATION_LOG_H_
#define REWIND_REPL_REPLICATION_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/kv/kv_store.h"
#include "src/obs/metrics.h"
#include "src/server/protocol.h"

namespace rwd {
namespace repl {

/// One replication record: a committed write batch plus its global
/// sequence number.
struct ReplRecord {
  std::uint64_t gtid = 0;
  /// Leader steady-clock at publish (0 while recording is paused); feeds
  /// the publish-to-ship latency histogram, never crosses the wire.
  std::uint64_t publish_ns = 0;
  std::vector<KvWriteOp> ops;
};

/// Record wire codec (the REPL_BATCH frame payload):
///   [u64 gtid][u32 n] n*([u8 kind][u64 key][u32 vlen][bytes])
inline void EncodeRecordPayload(const ReplRecord& rec, std::string* out) {
  serve::AppendU64(out, rec.gtid);
  serve::AppendU32(out, static_cast<std::uint32_t>(rec.ops.size()));
  for (const KvWriteOp& op : rec.ops) {
    out->push_back(static_cast<char>(op.kind));
    serve::AppendU64(out, op.key);
    serve::AppendU32(out, static_cast<std::uint32_t>(op.value.size()));
    out->append(op.value);
  }
}

inline bool DecodeRecordPayload(std::string_view payload, ReplRecord* out) {
  if (payload.size() < 12) return false;
  out->gtid = serve::ReadU64(payload.data());
  std::uint32_t n = serve::ReadU32(payload.data() + 8);
  std::size_t off = 12;
  out->ops.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (payload.size() - off < 13) return false;
    KvWriteOp op;
    op.kind = static_cast<KvWriteOp::Kind>(
        static_cast<std::uint8_t>(payload[off]));
    op.key = serve::ReadU64(payload.data() + off + 1);
    std::uint32_t vlen = serve::ReadU32(payload.data() + off + 9);
    off += 13;
    if (payload.size() - off < vlen) return false;
    op.value.assign(payload.data() + off, vlen);
    off += vlen;
    out->ops.push_back(std::move(op));
  }
  return off == payload.size();
}

/// The leader-side replication core: an in-memory ring of the most recent
/// records plus a registry of subscriber cursors (for lag accounting and
/// semi-synchronous acks). All methods are thread-safe.
class ReplicationLog {
 public:
  enum class PollResult {
    kOk,   ///< `out` holds records (possibly none after a timeout)
    kGap,  ///< position not in the ring — the follower must resync
  };

  /// `capacity` bounds the ring (records, not bytes); a follower that
  /// falls further behind than this resynchronizes from a snapshot.
  explicit ReplicationLog(std::size_t capacity = 4096);

  ReplicationLog(const ReplicationLog&) = delete;
  ReplicationLog& operator=(const ReplicationLog&) = delete;

  /// Appends one record for `ops`, assigning the next gtid. Ops are
  /// copied (the caller's batch keeps its buffers). Called by KvStore
  /// while the involved shard latches are held, so per-key record order
  /// matches commit order. Returns the record's gtid; ops must be
  /// non-empty.
  std::uint64_t Publish(const std::vector<KvWriteOp>& ops);

  /// Highest gtid published so far (0 before the first record).
  std::uint64_t last_gtid() const;

  /// True when a subscriber that has applied up to `after` can resume
  /// from the ring (records after+1 .. last are all present).
  bool CanResume(std::uint64_t after) const;

  /// Copies up to `max` records with gtid > `after` into `out`. Blocks up
  /// to `wait_ms` for new records when none are immediately available.
  /// kGap means the position left the ring (or belongs to another epoch).
  PollResult Poll(std::uint64_t after, std::size_t max,
                  std::uint32_t wait_ms, std::vector<ReplRecord>* out);

  /// Wakes every Poll/WaitAcked waiter (used when tearing a shipper down
  /// without waiting out its poll timeout).
  void Nudge();

  // --- subscriber cursors (lag + semi-sync acks) ---

  /// Registers a follower cursor; the returned id keys Ack/Unsubscribe.
  std::uint64_t Subscribe(const std::string& name);
  void Ack(std::uint64_t id, std::uint64_t gtid);
  void Unsubscribe(std::uint64_t id);
  std::size_t subscriber_count() const;

  /// Blocks until every registered subscriber has acked `gtid` (or none
  /// remain registered). False on timeout — semi-sync callers decide
  /// whether to ack the client anyway.
  bool WaitAcked(std::uint64_t gtid, std::uint32_t timeout_ms);

  /// Blocks until AT LEAST ONE registered subscriber has acked `gtid`.
  /// Unlike WaitAcked, an empty subscriber set does NOT satisfy the
  /// wait — this is the guarded semi-sync predicate: when a partition
  /// tears the follower's session down, the write stays unacked instead
  /// of sailing through a momentarily-empty set. False on timeout.
  bool WaitAckedBySome(std::uint64_t gtid, std::uint32_t timeout_ms);

  /// last_gtid minus the slowest registered subscriber's ack (0 with no
  /// subscribers): how many batches the laggiest follower still misses.
  std::uint64_t lag_batches() const;

  /// One registered follower's health, snapshotted for REPL_STATUS and
  /// the STATS2 per-subscriber samples.
  struct SubscriberInfo {
    std::string name;
    std::uint64_t acked = 0;        ///< last acked gtid
    std::uint64_t lag_batches = 0;  ///< last_gtid - acked
    std::uint64_t staleness_ms = 0; ///< since the last ack (or subscribe)
  };
  std::vector<SubscriberInfo> Subscribers() const;

  std::uint64_t records_published() const {
    return records_published_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t MinAckedLocked() const;
  std::uint64_t MaxAckedLocked() const;
  void UpdateLagLocked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< new records AND ack progress
  std::deque<ReplRecord> ring_;
  std::uint64_t last_ = 0;
  std::uint64_t next_sub_id_ = 1;
  struct Sub {
    std::string name;
    std::uint64_t acked = 0;
    /// Steady-clock ns of the last Ack (subscribe time initially); drives
    /// the staleness column in Subscribers().
    std::uint64_t last_ack_ns = 0;
  };
  std::unordered_map<std::uint64_t, Sub> subs_;
  std::atomic<std::uint64_t> records_published_{0};

  obs::Gauge* last_gtid_gauge_;
  obs::Gauge* lag_gauge_;
  obs::Counter* published_counter_;
};

}  // namespace repl
}  // namespace rwd

#endif  // REWIND_REPL_REPLICATION_LOG_H_
