#include "src/log/adll.h"

namespace rwd {

AdllNode* Adll::Append(void* element) {
  // Set up the new node "off-line": it is not reachable from the list yet,
  // so these writes need no undo information.
  auto* n = static_cast<AdllNode*>(nvm_->Alloc(sizeof(AdllNode)));
  AdllNode init;
  init.next = nullptr;
  init.prior = c_->tail;
  init.element = element;
  nvm_->StoreNTObject(n, init);
  nvm_->Fence();

  // Undo information. last_tail must persist before to_append: to_append is
  // the critical update that commits us to redoing the append, and the redo
  // uses last_tail (Algorithm 1, lines 4-5).
  nvm_->StoreNT(&c_->last_tail, c_->tail);
  nvm_->StoreNT(&c_->to_append, n);
  nvm_->Fence();

  // Splice in. Each step is individually idempotent so RecoverAppend() can
  // repeat them.
  if (c_->head == nullptr) nvm_->StoreNT(&c_->head, n);
  if (c_->tail != nullptr) nvm_->StoreNT(&c_->tail->next, n);
  nvm_->StoreNT(&c_->tail, n);

  // Append finished; clear the undo information.
  nvm_->StoreNT(&c_->to_append, static_cast<AdllNode*>(nullptr));
  return n;
}

void Adll::RecoverAppend() {
  AdllNode* n = c_->to_append;
  if (c_->head == nullptr) nvm_->StoreNT(&c_->head, n);
  // Use last_tail, not tail: tail may already have advanced to n, and a
  // second crash during this recovery must still find the true predecessor.
  if (c_->last_tail != nullptr) nvm_->StoreNT(&c_->last_tail->next, n);
  nvm_->StoreNT(&c_->tail, n);
  nvm_->StoreNT(&c_->to_append, static_cast<AdllNode*>(nullptr));
  nvm_->Fence();
}

void Adll::Remove(AdllNode* node) {
  // Critical update: committing to the removal.
  nvm_->StoreNT(&c_->to_remove, node);
  nvm_->Fence();

  // The removal code never modifies `node` itself, so every step can be
  // safely re-executed during recovery.
  if (c_->head == node) nvm_->StoreNT(&c_->head, node->next);
  if (c_->tail == node) nvm_->StoreNT(&c_->tail, node->prior);
  if (node->prior != nullptr) nvm_->StoreNT(&node->prior->next, node->next);
  if (node->next != nullptr) nvm_->StoreNT(&node->next->prior, node->prior);

  nvm_->StoreNT(&c_->to_remove, static_cast<AdllNode*>(nullptr));
  // De-allocation of `node` is the caller's job, after this returns.
}

void Adll::RecoverRemove() {
  AdllNode* node = c_->to_remove;
  if (c_->head == node) nvm_->StoreNT(&c_->head, node->next);
  if (c_->tail == node) nvm_->StoreNT(&c_->tail, node->prior);
  if (node->prior != nullptr) nvm_->StoreNT(&node->prior->next, node->next);
  if (node->next != nullptr) nvm_->StoreNT(&node->next->prior, node->prior);
  nvm_->StoreNT(&c_->to_remove, static_cast<AdllNode*>(nullptr));
  nvm_->Fence();
}

void Adll::Recover() {
  if (c_->to_append != nullptr) RecoverAppend();
  if (c_->to_remove != nullptr) RecoverRemove();
  // Normalize a crash in the middle of Clear(): head is reset first there,
  // so an empty head with a stale tail means the clear must be completed.
  if (c_->head == nullptr && c_->tail != nullptr) {
    nvm_->StoreNT(&c_->tail, static_cast<AdllNode*>(nullptr));
  }
  if (c_->head == nullptr) {
    nvm_->StoreNT(&c_->last_tail, static_cast<AdllNode*>(nullptr));
  }
  nvm_->Fence();
}

void Adll::Clear() {
  AdllNode* first = c_->head;
  // Detach the whole chain atomically-enough: once head is null the list is
  // empty for every observer and for recovery; a crash below leaks nodes at
  // worst (paper Section 4.5 clears the log the same way: keep a temporary
  // pointer, swap in a fresh log, then de-allocate the old one).
  nvm_->StoreNT(&c_->head, static_cast<AdllNode*>(nullptr));
  nvm_->StoreNT(&c_->tail, static_cast<AdllNode*>(nullptr));
  nvm_->StoreNT(&c_->last_tail, static_cast<AdllNode*>(nullptr));
  nvm_->Fence();
  while (first != nullptr) {
    AdllNode* next = first->next;
    nvm_->Free(first);
    first = next;
  }
}

std::size_t Adll::CountNodes() const {
  std::size_t n = 0;
  for (AdllNode* p = c_->head; p != nullptr; p = p->next) ++n;
  return n;
}

}  // namespace rwd
