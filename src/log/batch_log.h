// "Batch" log: the hybrid bucketed log with grouped persistence
// (paper Section 3.3, "Multiple log records per cacheline").
#ifndef REWIND_LOG_BATCH_LOG_H_
#define REWIND_LOG_BATCH_LOG_H_

#include "src/log/bucket_log.h"

namespace rwd {

/// The Batch configuration: with 64-byte cachelines and 8-byte pointers the
/// default group of 8 records costs a single fence and a single
/// non-temporal persisted-index store (paper Section 3.3). The group size is
/// the tuning knob for fence-latency sensitivity (Figure 10).
class BatchLog : public BucketLog {
 public:
  static constexpr std::size_t kDefaultGroupSize = 8;

  BatchLog(NvmManager* nvm, std::size_t bucket_capacity,
           std::size_t group_size = kDefaultGroupSize,
           Adll::Control* existing = nullptr);
};

}  // namespace rwd

#endif  // REWIND_LOG_BATCH_LOG_H_
