// "Simple" log: records stored directly as ADLL elements (paper Section 3.2).
#ifndef REWIND_LOG_SIMPLE_LOG_H_
#define REWIND_LOG_SIMPLE_LOG_H_

#include "src/log/adll.h"
#include "src/log/ilog.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// The baseline REWIND log: one ADLL node per record. Every append costs
/// several non-consecutive non-temporal stores plus fences, which is what
/// the Optimized and Batch layouts improve on.
class SimpleLog : public ILog {
 public:
  /// `existing`, when non-null, is the persistent control block of a log a
  /// previous process left in a file-backed heap (from anchor() via the
  /// root catalog): the log re-attaches to it instead of allocating a fresh
  /// one; call Recover() afterwards to rebuild the volatile bookkeeping.
  explicit SimpleLog(NvmManager* nvm, Adll::Control* existing = nullptr);
  ~SimpleLog() override;

  void Append(LogRecord* rec) override;
  void Remove(LogRecord* rec) override;
  void Recover() override;
  void Clear() override;
  void ForEach(const std::function<bool(LogRecord*)>& fn) const override;
  void ForEachBackward(
      const std::function<bool(LogRecord*)>& fn) const override;
  std::size_t size() const override { return size_; }
  void* anchor() const override { return control_; }

 private:
  NvmManager* nvm_;
  Adll::Control* control_;  // in NVM
  bool owns_control_;       // false when re-attached to an existing block
  Adll list_;
  std::size_t size_ = 0;  // volatile; rebuilt by Recover()
};

}  // namespace rwd

#endif  // REWIND_LOG_SIMPLE_LOG_H_
