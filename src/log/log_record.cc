#include "src/log/log_record.h"

#include <sstream>

namespace rwd {

const char* LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kInvalid:
      return "INVALID";
    case LogRecordType::kUpdate:
      return "UPDATE";
    case LogRecordType::kClr:
      return "CLR";
    case LogRecordType::kEnd:
      return "END";
    case LogRecordType::kRollback:
      return "ROLLBACK";
    case LogRecordType::kDelete:
      return "DELETE";
    case LogRecordType::kCheckpoint:
      return "CHECKPOINT";
    case LogRecordType::kTxnPrepare:
      return "TXN_PREPARE";
    case LogRecordType::kTxnCommit:
      return "TXN_COMMIT";
    case LogRecordType::kTxnAbort:
      return "TXN_ABORT";
  }
  return "?";
}

std::string LogRecord::ToString() const {
  std::ostringstream os;
  os << LogRecordTypeName(type) << " lsn=" << lsn << " tid=" << tid;
  if (type == LogRecordType::kUpdate || type == LogRecordType::kClr) {
    os << " addr=0x" << std::hex << addr << std::dec << " old=" << old_value
       << " new=" << new_value;
  }
  if (type == LogRecordType::kClr) os << " undo_next=" << undo_next_lsn;
  if (type == LogRecordType::kTxnPrepare || type == LogRecordType::kTxnCommit ||
      type == LogRecordType::kTxnAbort) {
    os << " gtid=" << addr;
  }
  return os.str();
}

}  // namespace rwd
