#include "src/log/aavlt.h"

#include <algorithm>
#include <cassert>

namespace rwd {

Aavlt::Aavlt(NvmManager* nvm, std::size_t internal_bucket_capacity,
             AavltAnchor* existing)
    : nvm_(nvm),
      anchor_(existing != nullptr
                  ? existing
                  : static_cast<AavltAnchor*>(
                        nvm->Alloc(sizeof(AavltAnchor)))),
      owns_anchor_(existing == nullptr),
      anchor_releaser_{nvm, owns_anchor_ ? anchor_ : nullptr},
      ilog_(nvm, internal_bucket_capacity, /*group_size=*/0,
            &anchor_->log_control),
      root_slot_(&anchor_->root) {}

Aavlt::~Aavlt() {
  // A file-backed heap outlives the process; leave the tree for re-attach.
  // The owned anchor is freed by anchor_releaser_ AFTER ~BucketLog ran
  // (it is declared before ilog_), since the log's teardown still uses the
  // control block embedded in the anchor.
  if (nvm_->heap().file_backed()) return;
  Clear();
}

void Aavlt::LoggedStoreWord(void* addr, std::uint64_t value) {
  auto* word = static_cast<std::uint64_t*>(addr);
  std::uint64_t old = *word;
  if (old == value) return;
  // WAL for the tree's own state: record first (persist + fence), then the
  // non-temporal store of the new value.
  LogRecord local{};
  local.lsn = ++ilsn_;
  local.tid = 0;
  local.type = LogRecordType::kUpdate;
  local.flags = LogRecord::kFlagUndoable;
  local.addr = reinterpret_cast<std::uint64_t>(addr);
  local.old_value = old;
  local.new_value = value;
  auto* rec = static_cast<LogRecord*>(nvm_->Alloc(sizeof(LogRecord)));
  nvm_->StoreNTObject(rec, local);
  nvm_->Fence();
  ilog_.Append(rec);
  nvm_->StoreNT(word, value);
}

AavltNode* Aavlt::NewNode(std::uint64_t key, LogRecord* first) {
  // The node is unreachable until its parent link is (logged and) written,
  // so its initialization needs no undo information.
  auto* n = static_cast<AavltNode*>(nvm_->Alloc(sizeof(AavltNode)));
  AavltNode init;
  init.key = key;
  init.left = nullptr;
  init.right = nullptr;
  init.height = 1;
  init.recs_tail = first;
  nvm_->StoreNTObject(n, init);
  return n;
}

void Aavlt::LinkRecord(AavltNode* node, LogRecord* rec) {
  // The record is unreachable from the tree until recs_tail points at it, so
  // its chain pointer is written "off-line" without logging.
  nvm_->StoreNT(&rec->hint.chain.tx_prev, node->recs_tail);
  nvm_->Fence();
  LoggedStorePtr(&node->recs_tail, rec);
}

void Aavlt::UpdateHeight(AavltNode* t) {
  std::int64_t h = 1 + std::max(HeightOf(t->left), HeightOf(t->right));
  if (h != t->height) {
    LoggedStoreWord(&t->height, static_cast<std::uint64_t>(h));
  }
}

AavltNode* Aavlt::RotateRight(AavltNode* y) {
  AavltNode* x = y->left;
  AavltNode* t2 = x->right;
  LoggedStorePtr(&x->right, y);
  LoggedStorePtr(&y->left, t2);
  UpdateHeight(y);
  UpdateHeight(x);
  return x;
}

AavltNode* Aavlt::RotateLeft(AavltNode* y) {
  AavltNode* x = y->right;
  AavltNode* t2 = x->left;
  LoggedStorePtr(&x->left, y);
  LoggedStorePtr(&y->right, t2);
  UpdateHeight(y);
  UpdateHeight(x);
  return x;
}

AavltNode* Aavlt::Rebalance(AavltNode* t) {
  UpdateHeight(t);
  std::int64_t balance = HeightOf(t->left) - HeightOf(t->right);
  if (balance > 1) {
    if (HeightOf(t->left->left) < HeightOf(t->left->right)) {
      LoggedStorePtr(&t->left, RotateLeft(t->left));
    }
    return RotateRight(t);
  }
  if (balance < -1) {
    if (HeightOf(t->right->right) < HeightOf(t->right->left)) {
      LoggedStorePtr(&t->right, RotateRight(t->right));
    }
    return RotateLeft(t);
  }
  return t;
}

AavltNode* Aavlt::InsertRec(AavltNode* t, std::uint64_t key, LogRecord* rec) {
  if (t == nullptr) {
    nvm_->StoreNT(&rec->hint.chain.tx_prev, static_cast<LogRecord*>(nullptr));
    AavltNode* n = NewNode(key, rec);
    nvm_->Fence();
    ++txn_count_;
    return n;
  }
  if (key == t->key) {
    LinkRecord(t, rec);
    return t;
  }
  if (key < t->key) {
    AavltNode* c = InsertRec(t->left, key, rec);
    if (c != t->left) LoggedStorePtr(&t->left, c);
  } else {
    AavltNode* c = InsertRec(t->right, key, rec);
    if (c != t->right) LoggedStorePtr(&t->right, c);
  }
  return Rebalance(t);
}

void Aavlt::Insert(LogRecord* rec) {
  assert(ilog_.size() == 0 && "previous AAVLT operation not completed");
  AavltNode* new_root = InsertRec(root(), rec->tid, rec);
  if (new_root != root()) LoggedStorePtr(root_slot_, new_root);
  EndOp();
}

AavltNode* Aavlt::RemoveRec(AavltNode* t, std::uint64_t key) {
  if (t == nullptr) return nullptr;
  if (key < t->key) {
    AavltNode* c = RemoveRec(t->left, key);
    if (c != t->left) LoggedStorePtr(&t->left, c);
  } else if (key > t->key) {
    AavltNode* c = RemoveRec(t->right, key);
    if (c != t->right) LoggedStorePtr(&t->right, c);
  } else {
    if (t->left == nullptr || t->right == nullptr) {
      AavltNode* child = t->left != nullptr ? t->left : t->right;
      // De-allocation deferred until the operation completes.
      defer_free_.push_back(t);
      return child;
    }
    // Two children: move the in-order successor's payload here, then remove
    // the successor node from the right subtree.
    AavltNode* s = t->right;
    while (s->left != nullptr) s = s->left;
    LoggedStoreWord(&t->key, s->key);
    LoggedStorePtr(&t->recs_tail, s->recs_tail);
    AavltNode* c = RemoveRec(t->right, s->key);
    if (c != t->right) LoggedStorePtr(&t->right, c);
  }
  return Rebalance(t);
}

void Aavlt::RemoveTxn(std::uint32_t tid) {
  assert(ilog_.size() == 0 && "previous AAVLT operation not completed");
  bool present = false;
  for (AavltNode* t = root(); t != nullptr;) {
    if (tid == t->key) {
      present = true;
      break;
    }
    t = tid < t->key ? t->left : t->right;
  }
  if (!present) return;
  AavltNode* before = root();
  AavltNode* new_root = RemoveRec(before, tid);
  if (new_root != before) LoggedStorePtr(root_slot_, new_root);
  --txn_count_;
  EndOp();
}

LogRecord* Aavlt::ChainOf(std::uint32_t tid) const {
  AavltNode* t = root();
  while (t != nullptr) {
    if (tid == t->key) return t->recs_tail;
    t = tid < t->key ? t->left : t->right;
  }
  return nullptr;
}

void Aavlt::EndOp() {
  // The operation is complete. Commit it with an internal END record, then
  // clear the internal log with the END removed *last* (force-policy
  // clearing, paper Sections 3.4/4.6): a crash during clearing must not be
  // mistaken for a crash during the operation, or recovery would undo a
  // committed operation's remaining records.
  if (ilog_.size() != 0) {
    LogRecord local{};
    local.lsn = ++ilsn_;
    local.type = LogRecordType::kEnd;
    auto* end = static_cast<LogRecord*>(nvm_->Alloc(sizeof(LogRecord)));
    nvm_->StoreNTObject(end, local);
    nvm_->Fence();
    ilog_.Append(end);
    std::vector<LogRecord*> recs;
    recs.reserve(ilog_.size());
    ilog_.ForEach([&](LogRecord* r) {
      if (r != end) recs.push_back(r);
      return true;
    });
    for (LogRecord* r : recs) ilog_.Remove(r);
    ilog_.Remove(end);
    for (LogRecord* r : recs) nvm_->Free(r);
    nvm_->Free(end);
    ilog_.ReclaimBuckets();
  }
  for (AavltNode* n : defer_free_) nvm_->Free(n);
  defer_free_.clear();
}

void Aavlt::Recover() {
  ilog_.Recover();
  if (ilog_.size() != 0) {
    std::vector<LogRecord*> recs;  // newest first
    LogRecord* end = nullptr;
    ilog_.ForEach([&](LogRecord* r) {
      if (r->type == LogRecordType::kEnd) {
        end = r;
      } else {
        recs.push_back(r);
      }
      return true;
    });
    std::sort(recs.begin(), recs.end(),
              [](const LogRecord* a, const LogRecord* b) {
                return a->lsn > b->lsn;
              });
    if (end == nullptr) {
      // The crash interrupted the operation itself: undo, newest write
      // first. This is pure physical undo and idempotent, so a crash during
      // recovery simply restarts it (paper Section 3.4 / 4.5).
      for (LogRecord* r : recs) {
        nvm_->StoreNT(reinterpret_cast<std::uint64_t*>(r->addr),
                      r->old_value);
      }
      nvm_->Fence();
    }
    // Else: the END record shows the operation committed and the crash hit
    // the clearing phase — just finish clearing, END last. Removal proceeds
    // newest first so that a second crash leaves an oldest-prefix whose
    // re-undo is still idempotent.
    for (LogRecord* r : recs) ilog_.Remove(r);
    if (end != nullptr) ilog_.Remove(end);
    for (LogRecord* r : recs) nvm_->Free(r);
    if (end != nullptr) nvm_->Free(end);
    ilog_.ReclaimBuckets();
  }
  ilsn_ = 0;
  defer_free_.clear();
  // Rebuild the volatile transaction count.
  txn_count_ = 0;
  ForEachTxn([&](std::uint64_t, LogRecord*) {
    ++txn_count_;
    return true;
  });
}

void Aavlt::Clear() {
  // Post-order free of all nodes; the root slot is reset first so a crash
  // leaves an empty, consistent tree (leaked nodes at worst).
  std::vector<AavltNode*> stack;
  if (root() != nullptr) stack.push_back(root());
  nvm_->StoreNT(root_slot_, static_cast<AavltNode*>(nullptr));
  nvm_->Fence();
  while (!stack.empty()) {
    AavltNode* n = stack.back();
    stack.pop_back();
    if (n->left != nullptr) stack.push_back(n->left);
    if (n->right != nullptr) stack.push_back(n->right);
    nvm_->Free(n);
  }
  txn_count_ = 0;
}

namespace {
bool ForEachTxnRec(const AavltNode* t,
                   const std::function<bool(std::uint64_t, LogRecord*)>& fn) {
  if (t == nullptr) return true;
  if (!ForEachTxnRec(t->left, fn)) return false;
  if (!fn(t->key, t->recs_tail)) return false;
  return ForEachTxnRec(t->right, fn);
}

// Validates BST ordering within (lo, hi), exact heights, and AVL balance.
bool CheckRec(const AavltNode* t, const std::uint64_t* lo,
              const std::uint64_t* hi, std::int64_t* height) {
  if (t == nullptr) {
    *height = 0;
    return true;
  }
  if (lo != nullptr && t->key <= *lo) return false;
  if (hi != nullptr && t->key >= *hi) return false;
  std::int64_t hl = 0, hr = 0;
  if (!CheckRec(t->left, lo, &t->key, &hl)) return false;
  if (!CheckRec(t->right, &t->key, hi, &hr)) return false;
  if (t->height != 1 + std::max(hl, hr)) return false;
  if (hl - hr > 1 || hr - hl > 1) return false;
  *height = t->height;
  return true;
}
}  // namespace

void Aavlt::ForEachTxn(
    const std::function<bool(std::uint64_t, LogRecord*)>& fn) const {
  ForEachTxnRec(root(), fn);
}

std::int64_t Aavlt::HeightOf() const { return HeightOf(root()); }

bool Aavlt::CheckInvariants() const {
  std::int64_t h = 0;
  return CheckRec(root(), nullptr, nullptr, &h);
}

}  // namespace rwd
