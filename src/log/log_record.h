// ARIES-style log records stored in NVM (paper Sections 3.1, 4.1).
#ifndef REWIND_LOG_LOG_RECORD_H_
#define REWIND_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>

namespace rwd {

/// Record types. Matches the paper's vocabulary: UPDATE for user writes, CLR
/// for compensation (undo) records, END marks completed commit or rollback,
/// ROLLBACK marks a rollback in progress, DELETE defers memory
/// de-allocation past commit, CHECKPOINT marks the persistence horizon of a
/// cache-consistent checkpoint.
///
/// The last three types drive the store-level two-phase commit pipeline:
/// TXN_PREPARE (in a participant's log partition, addr = global txn id)
/// marks the transaction PREPARED — recovery must not roll it back without
/// consulting the coordinator; TXN_COMMIT / TXN_ABORT (in the coordinator's
/// dedicated log partition, addr = global txn id) record the coordinator's
/// decision for that global transaction.
enum class LogRecordType : std::uint16_t {
  kInvalid = 0,
  kUpdate = 1,
  kClr = 2,
  kEnd = 3,
  kRollback = 4,
  kDelete = 5,
  kCheckpoint = 6,
  kTxnPrepare = 7,
  kTxnCommit = 8,
  kTxnAbort = 9,
};

/// Returns a short human-readable name ("UPDATE", "CLR", ...).
const char* LogRecordTypeName(LogRecordType type);

/// A fixed-size (one cacheline) physical log record.
///
/// REWIND logs at 8-byte word granularity: `addr` is the persistent memory
/// word updated, `old_value`/`new_value` its before/after images. Larger
/// updates are logged as several records.
///
/// The trailing union holds *volatile* bookkeeping that the owning log
/// structure uses to locate the record for removal (1-layer logs) or to
/// chain a transaction's records (2-layer AAVLT). It is reconstructed during
/// recovery and never trusted across a crash.
struct alignas(64) LogRecord {
  std::uint64_t lsn = 0;           ///< Log sequence number (unique, rising).
  std::uint64_t addr = 0;          ///< Target word (persistent address), or
                                   ///< pointer payload for DELETE records.
  std::uint64_t old_value = 0;     ///< Before image (UPDATE) / undo value.
  std::uint64_t new_value = 0;     ///< After image (UPDATE/CLR).
  std::uint64_t undo_next_lsn = 0; ///< CLR: LSN of the next record to undo.
  std::uint32_t tid = 0;           ///< Owning transaction.
  LogRecordType type = LogRecordType::kInvalid;
  std::uint16_t flags = 0;

  /// Volatile location/chaining hints (see struct comment).
  union {
    struct {
      void* node;          ///< SimpleLog: owning ADLL node.
      std::uint32_t slot;  ///< Bucket logs: slot index in `node`'s bucket.
      std::uint32_t pad;
    } where;
    struct {
      LogRecord* tx_prev;  ///< AAVLT: previous record of the same txn.
      std::uint64_t pad;
    } chain;
  } hint = {{nullptr, 0, 0}};

  static constexpr std::uint16_t kFlagUndoable = 1u << 0;

  bool undoable() const { return (flags & kFlagUndoable) != 0; }

  /// Debug rendering, e.g. "UPDATE lsn=7 tid=3 addr=0x.. old=1 new=2".
  std::string ToString() const;
};

static_assert(sizeof(LogRecord) == 64, "LogRecord must fill one cacheline");

}  // namespace rwd

#endif  // REWIND_LOG_LOG_RECORD_H_
