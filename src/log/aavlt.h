// The Atomic AVL Tree (paper Section 3.4): the upper layer of two-layer
// logging. Indexes user log records by transaction id and recovers itself by
// logging its own structural writes to a private optimized bucket log.
#ifndef REWIND_LOG_AAVLT_H_
#define REWIND_LOG_AAVLT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/log/bucket_log.h"
#include "src/log/log_record.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// An AVL tree node in NVM. All fields are word-sized so every mutation is a
/// single loggable non-temporal store. `recs_tail` heads a backward chain of
/// the transaction's log records linked through LogRecord::hint.chain.tx_prev
/// (that hint field is *persistent* state in the two-layer configuration).
struct AavltNode {
  std::uint64_t key = 0;  ///< Transaction id.
  AavltNode* left = nullptr;
  AavltNode* right = nullptr;
  std::int64_t height = 1;
  LogRecord* recs_tail = nullptr;  ///< Newest record of this transaction.
};

/// Persistent anchor of an Aavlt: the internal bucket log's ADLL control
/// block plus the tree's root pointer, in one block so a single root-catalog
/// entry re-attaches the whole two-layer log after a real restart.
struct AavltAnchor {
  Adll::Control log_control;
  AavltNode* root = nullptr;
};

/// Recoverable AVL index over log records.
///
/// Each public mutation (Insert, RemoveTxn) forms one internal transaction:
/// every state-affecting word write is WAL-logged to the private bucket log
/// and applied with a non-temporal store; node de-allocation is deferred
/// until the operation completes (paper Section 3.4). Because only the last
/// operation can ever be pending, recovery is a single backward undo pass
/// over the internal log — which is idempotent, so repeated crashes during
/// recovery are safe.
///
/// Callers serialize operations (the transaction manager's latch).
class Aavlt {
 public:
  /// `existing`, when non-null, re-attaches to the persistent anchor a
  /// previous process left in a file-backed heap (see anchor()); call
  /// Recover() afterwards.
  Aavlt(NvmManager* nvm, std::size_t internal_bucket_capacity = 256,
        AavltAnchor* existing = nullptr);
  ~Aavlt();

  /// Indexes `rec` under its transaction id, creating the node on first use
  /// and rebalancing as needed. Atomic and recoverable.
  void Insert(LogRecord* rec);

  /// Removes the transaction's node (log clearing for one transaction).
  /// The chained records are the caller's to free — collect them with
  /// ChainOf() *before* calling this. Atomic and recoverable. No-op when the
  /// transaction is absent.
  void RemoveTxn(std::uint32_t tid);

  /// Newest record of `tid`, or null. Follow hint.chain.tx_prev backwards.
  LogRecord* ChainOf(std::uint32_t tid) const;

  /// Undoes any half-finished operation after a crash. Idempotent.
  void Recover();

  /// Frees every tree node (not the records). Used for wholesale clearing.
  void Clear();

  /// In-order visit of (tid, newest record) pairs. `fn` must not mutate the
  /// tree. Stops early when `fn` returns false.
  void ForEachTxn(
      const std::function<bool(std::uint64_t, LogRecord*)>& fn) const;

  std::size_t txn_count() const { return txn_count_; }
  /// Persistent anchor for the heap's root catalog.
  AavltAnchor* anchor() const { return anchor_; }
  /// Height of the tree (0 when empty); exposed for invariant tests.
  std::int64_t HeightOf() const;
  /// Validates AVL balance + BST order; aborts the test via return value.
  bool CheckInvariants() const;

 private:
  AavltNode* root() const { return *root_slot_; }
  AavltNode* NewNode(std::uint64_t key, LogRecord* first);
  void LinkRecord(AavltNode* node, LogRecord* rec);
  void LoggedStoreWord(void* addr, std::uint64_t value);
  template <typename T>
  void LoggedStorePtr(T** addr, T* value) {
    LoggedStoreWord(addr, reinterpret_cast<std::uint64_t>(value));
  }
  void UpdateHeight(AavltNode* t);
  static std::int64_t HeightOf(const AavltNode* t) {
    return t == nullptr ? 0 : t->height;
  }
  AavltNode* Rebalance(AavltNode* t);
  AavltNode* RotateLeft(AavltNode* y);
  AavltNode* RotateRight(AavltNode* y);
  AavltNode* InsertRec(AavltNode* t, std::uint64_t key, LogRecord* rec);
  AavltNode* RemoveRec(AavltNode* t, std::uint64_t key);
  void EndOp();

  /// Frees an owned anchor at destruction. Declared before ilog_ so it is
  /// destroyed AFTER ~BucketLog, whose teardown (Clear/ReclaimBuckets)
  /// still works through the control block embedded in the anchor —
  /// freeing the anchor first would hand ~BucketLog a free-listed block.
  struct AnchorReleaser {
    NvmManager* nvm = nullptr;
    AavltAnchor* anchor = nullptr;  // null = nothing to free
    ~AnchorReleaser() {
      if (anchor != nullptr && !nvm->heap().file_backed()) {
        nvm->Free(anchor);
      }
    }
  };

  NvmManager* nvm_;
  AavltAnchor* anchor_;     // in NVM; holds ilog_'s control + the root slot
  bool owns_anchor_;        // false when re-attached to an existing block
  AnchorReleaser anchor_releaser_;
  BucketLog ilog_;          // internal WAL (Optimized configuration)
  AavltNode** root_slot_;   // = &anchor_->root
  std::uint64_t ilsn_ = 0;  // internal record sequence (volatile)
  std::size_t txn_count_ = 0;
  std::vector<AavltNode*> defer_free_;
};

}  // namespace rwd

#endif  // REWIND_LOG_AAVLT_H_
