// The Atomic AVL Tree (paper Section 3.4): the upper layer of two-layer
// logging. Indexes user log records by transaction id and recovers itself by
// logging its own structural writes to a private optimized bucket log.
#ifndef REWIND_LOG_AAVLT_H_
#define REWIND_LOG_AAVLT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/log/bucket_log.h"
#include "src/log/log_record.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// An AVL tree node in NVM. All fields are word-sized so every mutation is a
/// single loggable non-temporal store. `recs_tail` heads a backward chain of
/// the transaction's log records linked through LogRecord::hint.chain.tx_prev
/// (that hint field is *persistent* state in the two-layer configuration).
struct AavltNode {
  std::uint64_t key = 0;  ///< Transaction id.
  AavltNode* left = nullptr;
  AavltNode* right = nullptr;
  std::int64_t height = 1;
  LogRecord* recs_tail = nullptr;  ///< Newest record of this transaction.
};

/// Recoverable AVL index over log records.
///
/// Each public mutation (Insert, RemoveTxn) forms one internal transaction:
/// every state-affecting word write is WAL-logged to the private bucket log
/// and applied with a non-temporal store; node de-allocation is deferred
/// until the operation completes (paper Section 3.4). Because only the last
/// operation can ever be pending, recovery is a single backward undo pass
/// over the internal log — which is idempotent, so repeated crashes during
/// recovery are safe.
///
/// Callers serialize operations (the transaction manager's latch).
class Aavlt {
 public:
  Aavlt(NvmManager* nvm, std::size_t internal_bucket_capacity = 256);
  ~Aavlt();

  /// Indexes `rec` under its transaction id, creating the node on first use
  /// and rebalancing as needed. Atomic and recoverable.
  void Insert(LogRecord* rec);

  /// Removes the transaction's node (log clearing for one transaction).
  /// The chained records are the caller's to free — collect them with
  /// ChainOf() *before* calling this. Atomic and recoverable. No-op when the
  /// transaction is absent.
  void RemoveTxn(std::uint32_t tid);

  /// Newest record of `tid`, or null. Follow hint.chain.tx_prev backwards.
  LogRecord* ChainOf(std::uint32_t tid) const;

  /// Undoes any half-finished operation after a crash. Idempotent.
  void Recover();

  /// Frees every tree node (not the records). Used for wholesale clearing.
  void Clear();

  /// In-order visit of (tid, newest record) pairs. `fn` must not mutate the
  /// tree. Stops early when `fn` returns false.
  void ForEachTxn(
      const std::function<bool(std::uint64_t, LogRecord*)>& fn) const;

  std::size_t txn_count() const { return txn_count_; }
  /// Height of the tree (0 when empty); exposed for invariant tests.
  std::int64_t HeightOf() const;
  /// Validates AVL balance + BST order; aborts the test via return value.
  bool CheckInvariants() const;

 private:
  AavltNode* root() const { return *root_slot_; }
  AavltNode* NewNode(std::uint64_t key, LogRecord* first);
  void LinkRecord(AavltNode* node, LogRecord* rec);
  void LoggedStoreWord(void* addr, std::uint64_t value);
  template <typename T>
  void LoggedStorePtr(T** addr, T* value) {
    LoggedStoreWord(addr, reinterpret_cast<std::uint64_t>(value));
  }
  void UpdateHeight(AavltNode* t);
  static std::int64_t HeightOf(const AavltNode* t) {
    return t == nullptr ? 0 : t->height;
  }
  AavltNode* Rebalance(AavltNode* t);
  AavltNode* RotateLeft(AavltNode* y);
  AavltNode* RotateRight(AavltNode* y);
  AavltNode* InsertRec(AavltNode* t, std::uint64_t key, LogRecord* rec);
  AavltNode* RemoveRec(AavltNode* t, std::uint64_t key);
  void EndOp();

  NvmManager* nvm_;
  BucketLog ilog_;          // internal WAL (Optimized configuration)
  AavltNode** root_slot_;   // in NVM
  std::uint64_t ilsn_ = 0;  // internal record sequence (volatile)
  std::size_t txn_count_ = 0;
  std::vector<AavltNode*> defer_free_;
};

}  // namespace rwd

#endif  // REWIND_LOG_AAVLT_H_
