// The Atomic Doubly-Linked List (paper Section 3.2, Algorithm 1): the
// keystone recoverable structure from which every REWIND log is built.
#ifndef REWIND_LOG_ADLL_H_
#define REWIND_LOG_ADLL_H_

#include <cstddef>

#include "src/nvm/nvm_manager.h"

namespace rwd {

/// A node of the ADLL. `element` points at the payload (a LogRecord for the
/// Simple log, a Bucket for the hybrid logs). Nodes live in NVM.
struct AdllNode {
  AdllNode* next = nullptr;
  AdllNode* prior = nullptr;
  void* element = nullptr;
};

/// A doubly-linked list whose append and remove operations are atomic with
/// respect to crashes and recoverable by redoing only the last pending
/// operation (paper Section 3.2).
///
/// Recovery relies on three single-word logging variables that are updated
/// with atomic non-temporal stores:
///   - `last_tail`: the tail before the pending append (so that recovery of
///     the append is itself re-executable);
///   - `to_append`: non-null iff an append is pending;
///   - `to_remove`: non-null iff a removal is pending.
///
/// All state updates use non-temporal stores so they are persistent in
/// program order; `Recover()` may run any number of times (including being
/// interrupted by further crashes) and always leaves the list consistent.
///
/// Thread safety is the caller's job: the owning log serializes structural
/// operations with its latch (paper Section 4.7).
class Adll {
 public:
  /// Persistent control block. Allocate in NVM and pass to the constructor;
  /// zero-initialized memory is a valid empty list.
  struct Control {
    AdllNode* head = nullptr;
    AdllNode* tail = nullptr;
    AdllNode* last_tail = nullptr;
    AdllNode* to_append = nullptr;
    AdllNode* to_remove = nullptr;
  };

  Adll(NvmManager* nvm, Control* control) : nvm_(nvm), c_(control) {}

  /// Appends a new node carrying `element`; returns the node. Atomic and
  /// recoverable per Algorithm 1.
  AdllNode* Append(void* element);

  /// Unlinks `node` from the list. Atomic and recoverable. The node's memory
  /// is *not* freed (callers defer de-allocation until after the operation
  /// completes, as the paper requires).
  void Remove(AdllNode* node);

  /// Completes any pending append/removal after a crash. Idempotent.
  void Recover();

  /// Unlinks every node and frees node memory. Performed as the paper's
  /// wholesale log clearing: the head pointer is reset first so that a crash
  /// mid-clear leaves an empty (recoverable) list and at worst leaks nodes.
  void Clear();

  AdllNode* head() const { return c_->head; }
  AdllNode* tail() const { return c_->tail; }
  bool empty() const { return c_->head == nullptr; }

  /// Walks the list counting nodes (volatile convenience).
  std::size_t CountNodes() const;

 private:
  void RecoverAppend();
  void RecoverRemove();

  NvmManager* nvm_;
  Control* c_;
};

}  // namespace rwd

#endif  // REWIND_LOG_ADLL_H_
