#include "src/log/simple_log.h"

namespace rwd {

SimpleLog::SimpleLog(NvmManager* nvm, Adll::Control* existing)
    : nvm_(nvm),
      control_(existing != nullptr
                   ? existing
                   : static_cast<Adll::Control*>(
                         nvm->Alloc(sizeof(Adll::Control)))),
      owns_control_(existing == nullptr),
      list_(nvm, control_) {}

SimpleLog::~SimpleLog() {
  // A file-backed heap outlives the process: the log *is* the durable
  // state, so teardown must leave it intact for the next attach.
  if (nvm_->heap().file_backed()) return;
  Clear();
  if (owns_control_) nvm_->Free(control_);
}

void SimpleLog::Append(LogRecord* rec) {
  AdllNode* node = list_.Append(rec);
  rec->hint.where.node = node;  // volatile locator for later removal
  ++size_;
}

void SimpleLog::Remove(LogRecord* rec) {
  auto* node = static_cast<AdllNode*>(rec->hint.where.node);
  list_.Remove(node);
  nvm_->Free(node);
  --size_;
}

void SimpleLog::Recover() {
  list_.Recover();
  // A record whose append was interrupted before the critical point may be
  // orphaned (allocated but never linked); it is simply leaked. Rebuild the
  // volatile locator hints and the size.
  size_ = 0;
  for (AdllNode* n = list_.head(); n != nullptr; n = n->next) {
    auto* rec = static_cast<LogRecord*>(n->element);
    rec->hint.where.node = n;
    ++size_;
  }
}

void SimpleLog::Clear() {
  list_.Clear();
  size_ = 0;
}

void SimpleLog::ForEach(const std::function<bool(LogRecord*)>& fn) const {
  for (AdllNode* n = list_.head(); n != nullptr;) {
    AdllNode* next = n->next;  // fn may remove the current record
    if (!fn(static_cast<LogRecord*>(n->element))) return;
    n = next;
  }
}

void SimpleLog::ForEachBackward(
    const std::function<bool(LogRecord*)>& fn) const {
  for (AdllNode* n = list_.tail(); n != nullptr;) {
    AdllNode* prior = n->prior;
    if (!fn(static_cast<LogRecord*>(n->element))) return;
    n = prior;
  }
}

}  // namespace rwd
