// "Optimized" hybrid log: an ADLL of fixed-size buckets of record pointers
// (paper Section 3.3, Figure 2). Also the base for the "Batch" variant.
#ifndef REWIND_LOG_BUCKET_LOG_H_
#define REWIND_LOG_BUCKET_LOG_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/log/adll.h"
#include "src/log/ilog.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// A fixed-size array of record pointers, the element type of the hybrid
/// log's ADLL. Lives in NVM.
///
/// Slot states: nullptr = never used (only at the end of the last bucket),
/// kTombstone = cleared by log clearing, otherwise a live record. Occupancy
/// is deliberately not persisted; it is reconstructed from the tombstones
/// during the analysis phase, which keeps removal a single atomic store.
struct Bucket {
  std::uint64_t capacity = 0;
  /// Batch variant: slots below this index are guaranteed persistent. The
  /// Optimized variant (which NT-stores every slot) keeps it at capacity.
  std::uint32_t persisted_upto = 0;
  /// Volatile: live (non-tombstone) slots; reconstructed on recovery.
  std::uint32_t live_count = 0;
  LogRecord* slots[];  // flexible array member

  static LogRecord* Tombstone() { return reinterpret_cast<LogRecord*>(1); }
  static std::size_t AllocBytes(std::size_t capacity) {
    return sizeof(Bucket) + capacity * sizeof(LogRecord*);
  }
};

/// Hybrid bucketed log. With `group_size == 0` this is the paper's
/// *Optimized* log: records are persisted individually and inserted with a
/// single non-temporal slot store. With `group_size == G > 0` it is the
/// *Batch* log: records and slots are written with cached stores and made
/// persistent one fence + one non-temporal persisted-index store per G
/// records (or on END/CHECKPOINT records, or when the bucket fills).
///
/// During recovery the Batch variant trusts only slots below each bucket's
/// `persisted_upto`, exactly as the paper prescribes; everything else is
/// discarded (leaked records are acceptable, lost ones are fine because the
/// WAL protocol defers the corresponding user writes until the group flush
/// — see TransactionManager).
class BucketLog : public ILog {
 public:
  /// `existing`, when non-null, re-attaches to the persistent control block
  /// a previous process left in a file-backed heap (see ILog::anchor());
  /// call Recover() afterwards to rebuild the volatile insertion state.
  BucketLog(NvmManager* nvm, std::size_t bucket_capacity,
            std::size_t group_size, Adll::Control* existing = nullptr);
  ~BucketLog() override;

  void Append(LogRecord* rec) override;
  void Remove(LogRecord* rec) override;
  void Recover() override;
  void Clear() override;
  void ForEach(const std::function<bool(LogRecord*)>& fn) const override;
  void ForEachBackward(
      const std::function<bool(LogRecord*)>& fn) const override;
  std::size_t size() const override { return size_; }

  /// Batch: persists the open group now.
  void Sync() override { FlushGroup(); }

  /// Invoked after each group flush, i.e. whenever appended records became
  /// persistent. The transaction manager uses it to release the user writes
  /// the WAL protocol was holding back.
  void set_group_flush_callback(std::function<void()> cb) {
    group_flush_cb_ = std::move(cb);
  }

  /// Frees buckets emptied by Remove(). Unlinked buckets are kept readable
  /// until this is called so that iteration interleaved with removal stays
  /// safe; the runtime reclaims at quiescent points.
  void ReclaimBuckets();

  std::size_t bucket_count() const { return list_.CountNodes(); }
  bool batch() const { return group_size_ > 0; }
  std::size_t group_size() const { return group_size_; }
  void* anchor() const override { return control_; }

 private:
  void AddBucket();
  void FlushGroup();
  Bucket* TailBucket() const {
    return tail_node_ ? static_cast<Bucket*>(tail_node_->element) : nullptr;
  }
  /// Index one past the last readable slot of `b` during iteration.
  std::uint32_t IterEnd(const AdllNode* node, const Bucket* b) const;

  NvmManager* nvm_;
  Adll::Control* control_;
  bool owns_control_;  // false when re-attached to an existing block
  Adll list_;
  std::size_t bucket_capacity_;
  std::size_t group_size_;

  // Volatile insertion state, rebuilt by Recover().
  AdllNode* tail_node_ = nullptr;
  std::uint32_t next_pos_ = 0;
  std::uint32_t group_start_ = 0;  // first slot of the open (unflushed) group
  std::size_t size_ = 0;
  std::vector<LogRecord*> pending_;       // batch: records awaiting flush
  std::vector<void*> reclaimable_;        // emptied buckets + their nodes
  std::function<void()> group_flush_cb_;
};

}  // namespace rwd

#endif  // REWIND_LOG_BUCKET_LOG_H_
