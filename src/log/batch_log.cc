#include "src/log/batch_log.h"

#include <cassert>

namespace rwd {

BatchLog::BatchLog(NvmManager* nvm, std::size_t bucket_capacity,
                   std::size_t group_size, Adll::Control* existing)
    : BucketLog(nvm, bucket_capacity, group_size, existing) {
  assert(group_size >= 1);
}

}  // namespace rwd
