// Common interface of the three one-layer log implementations.
#ifndef REWIND_LOG_ILOG_H_
#define REWIND_LOG_ILOG_H_

#include <cstddef>
#include <functional>
#include <mutex>

#include "src/log/log_record.h"

namespace rwd {

/// A recoverable, in-NVM sequence of log records.
///
/// Implementations: SimpleLog (records directly in an ADLL), BucketLog
/// ("Optimized": ADLL of fixed-size buckets, one NT store per insertion) and
/// BatchLog ("Batch": bucket layout with one fence + one persisted-index
/// store per group of records).
///
/// Threading: callers serialize Append/Remove/iteration with `latch()`; the
/// transaction manager holds it only briefly around insertions (paper
/// Section 4.7) and coarsely during clearing/checkpoints.
class ILog {
 public:
  virtual ~ILog() = default;

  /// Appends `rec`, making its membership persistent. The record contents
  /// themselves must already be persistent (or are persisted here, for the
  /// Batch log which owns record persistence timing).
  virtual void Append(LogRecord* rec) = 0;

  /// Removes a record previously appended (log clearing). Does not free the
  /// record; the caller de-allocates after removal completes.
  virtual void Remove(LogRecord* rec) = 0;

  /// Recovers the structure after a crash: completes the pending structural
  /// operation and rebuilds all volatile bookkeeping (insertion position,
  /// bucket occupancy, record location hints, size). Idempotent.
  virtual void Recover() = 0;

  /// Wholesale clearing: drops every record at once (paper Section 4.5).
  /// Frees log-owned memory but not the records, which the caller owns.
  virtual void Clear() = 0;

  /// Forward iteration in append order over live records. Stops early when
  /// `fn` returns false.
  virtual void ForEach(const std::function<bool(LogRecord*)>& fn) const = 0;

  /// Backward iteration (most recent first).
  virtual void ForEachBackward(
      const std::function<bool(LogRecord*)>& fn) const = 0;

  /// Number of live records.
  virtual std::size_t size() const = 0;

  /// The log's persistent control block (an Adll::Control for every
  /// one-layer layout). Registered in the heap's root catalog so a fresh
  /// process can re-attach after a real restart; pass it back to the
  /// implementation's constructor as `existing` to reopen the log.
  virtual void* anchor() const = 0;

  /// Ensures every appended record is persistent (Batch log flushes its
  /// open group; others are a no-op). Called before user writes may proceed
  /// under the WAL protocol.
  virtual void Sync() {}

  std::mutex& latch() { return latch_; }

 protected:
  mutable std::mutex latch_;
};

}  // namespace rwd

#endif  // REWIND_LOG_ILOG_H_
