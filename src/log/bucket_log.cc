#include "src/log/bucket_log.h"

#include <cassert>

namespace rwd {

BucketLog::BucketLog(NvmManager* nvm, std::size_t bucket_capacity,
                     std::size_t group_size, Adll::Control* existing)
    : nvm_(nvm),
      control_(existing != nullptr
                   ? existing
                   : static_cast<Adll::Control*>(
                         nvm->Alloc(sizeof(Adll::Control)))),
      owns_control_(existing == nullptr),
      list_(nvm, control_),
      bucket_capacity_(bucket_capacity),
      group_size_(group_size) {
  assert(bucket_capacity_ >= 2);
}

BucketLog::~BucketLog() {
  // A file-backed heap outlives the process: the log *is* the durable
  // state, so teardown must leave it intact for the next attach.
  if (nvm_->heap().file_backed()) return;
  Clear();
  ReclaimBuckets();
  if (owns_control_) nvm_->Free(control_);
}

void BucketLog::AddBucket() {
  // A tail bucket whose records were all cleared stays in place (Remove()
  // never drops the tail); retire it now that it is being superseded.
  if (tail_node_ != nullptr && TailBucket()->live_count == 0) {
    AdllNode* old = tail_node_;
    Bucket* ob = TailBucket();
    list_.Remove(old);
    reclaimable_.push_back(old);
    reclaimable_.push_back(ob);
  }
  auto* b = static_cast<Bucket*>(nvm_->Alloc(Bucket::AllocBytes(
      bucket_capacity_)));
  b->capacity = bucket_capacity_;
  b->persisted_upto = batch() ? 0 : static_cast<std::uint32_t>(
                                        bucket_capacity_);
  b->live_count = 0;
  // The zeroed slot array must be persistently zero: recovery distinguishes
  // never-used (null) from cleared (tombstone) slots.
  nvm_->PersistRangeNT(b, Bucket::AllocBytes(bucket_capacity_));
  nvm_->Fence();
  tail_node_ = list_.Append(b);  // atomic log expansion
  next_pos_ = 0;
  group_start_ = 0;
}

void BucketLog::Append(LogRecord* rec) {
  if (tail_node_ == nullptr || next_pos_ >= bucket_capacity_) {
    if (batch()) FlushGroup();  // persist the group under the old indices
    AddBucket();
  }
  Bucket* b = TailBucket();
  rec->hint.where.node = tail_node_;
  rec->hint.where.slot = next_pos_;
  LogRecord** slot = &b->slots[next_pos_];
  if (batch()) {
    // Cached stores; persistence deferred to the group flush.
    nvm_->Store(slot, rec);
    pending_.push_back(rec);
  } else {
    // Optimized: the record is already persistent (the transaction manager
    // persisted and fenced it); membership becomes persistent with exactly
    // one non-temporal store.
    nvm_->StoreNT(slot, rec);
  }
  ++next_pos_;
  ++b->live_count;
  ++size_;
  if (batch() &&
      (pending_.size() >= group_size_ || rec->type == LogRecordType::kEnd ||
       rec->type == LogRecordType::kCheckpoint ||
       next_pos_ >= bucket_capacity_)) {
    FlushGroup();
  }
}

void BucketLog::FlushGroup() {
  if (!batch()) return;
  if (tail_node_ == nullptr || group_start_ == next_pos_) {
    // No records pending — everything appended so far is persistent — but
    // the transaction manager may still hold user writes whose covering
    // flush was triggered by the very record that logged them. Release
    // them now; the callback is idempotent.
    if (group_flush_cb_) group_flush_cb_();
    return;
  }
  Bucket* b = TailBucket();
  // Persist the records themselves, then the slot pointers, then publish the
  // new horizon with a single fence + single non-temporal store (paper
  // Section 3.3: one fence and one NT store per group).
  for (LogRecord* rec : pending_) nvm_->FlushRange(rec, sizeof(LogRecord));
  nvm_->FlushRange(&b->slots[group_start_],
                   (next_pos_ - group_start_) * sizeof(LogRecord*));
  nvm_->Fence();
  nvm_->StoreNT(&b->persisted_upto, next_pos_);
  group_start_ = next_pos_;
  pending_.clear();
  if (group_flush_cb_) group_flush_cb_();
}

void BucketLog::Remove(LogRecord* rec) {
  auto* node = static_cast<AdllNode*>(rec->hint.where.node);
  auto* b = static_cast<Bucket*>(node->element);
  std::uint32_t slot = rec->hint.where.slot;
  assert(b->slots[slot] == rec);
  // A single atomic tombstone store; counts are reconstructed after a crash
  // from the tombstones themselves (paper Section 3.3, "Clearing the log").
  nvm_->StoreNT(&b->slots[slot], Bucket::Tombstone());
  --b->live_count;
  --size_;
  if (b->live_count == 0 && node != tail_node_) {
    list_.Remove(node);
    // Keep the memory readable for iterators in flight; reclaimed later.
    reclaimable_.push_back(node);
    reclaimable_.push_back(b);
  }
}

void BucketLog::ReclaimBuckets() {
  for (void* p : reclaimable_) nvm_->Free(p);
  reclaimable_.clear();
}

std::uint32_t BucketLog::IterEnd(const AdllNode* node, const Bucket* b) const {
  // Iteration sees every appended record, including the Batch log's open
  // (not yet persisted) group: a live rollback must undo unflushed updates
  // too. The persisted_upto horizon matters only during Recover(), which
  // resets next_pos_ to it and scrubs everything beyond.
  if (node == tail_node_) return next_pos_;
  return static_cast<std::uint32_t>(b->capacity);
}

void BucketLog::Recover() {
  list_.Recover();
  pending_.clear();
  size_ = 0;
  tail_node_ = list_.tail();
  for (AdllNode* n = list_.head(); n != nullptr; n = n->next) {
    auto* b = static_cast<Bucket*>(n->element);
    // Trust horizon: the Batch variant only believes slots below the
    // persisted index; the Optimized variant NT-stored every slot, so the
    // first null marks the insertion frontier.
    auto trusted = batch() ? b->persisted_upto
                           : static_cast<std::uint32_t>(b->capacity);
    std::uint32_t live = 0;
    std::uint32_t frontier = trusted;
    for (std::uint32_t i = 0; i < trusted; ++i) {
      LogRecord* r = b->slots[i];
      if (r == nullptr) {
        frontier = i;  // never-used cells start here (last bucket only)
        break;
      }
      if (r == Bucket::Tombstone()) continue;
      r->hint.where.node = n;
      r->hint.where.slot = i;
      ++live;
    }
    b->live_count = live;
    size_ += live;
    if (n == tail_node_) {
      next_pos_ = batch() ? b->persisted_upto : frontier;
      group_start_ = next_pos_;
      if (batch()) {
        // Anything beyond the horizon is untrusted debris (cachelines that
        // happened to be evicted before the crash). Scrub it so recovery
        // semantics do not depend on eviction luck.
        for (std::uint32_t i = next_pos_; i < b->capacity; ++i) {
          if (b->slots[i] != nullptr) {
            nvm_->StoreNT(&b->slots[i], static_cast<LogRecord*>(nullptr));
          }
        }
      }
    }
  }
  if (tail_node_ == nullptr) {
    next_pos_ = 0;
    group_start_ = 0;
  }
}

void BucketLog::Clear() {
  // Wholesale clearing (paper Section 4.5): detach and free every bucket.
  std::vector<void*> buckets;
  for (AdllNode* n = list_.head(); n != nullptr; n = n->next) {
    buckets.push_back(n->element);
  }
  list_.Clear();
  for (void* b : buckets) nvm_->Free(b);
  tail_node_ = nullptr;
  next_pos_ = 0;
  group_start_ = 0;
  size_ = 0;
  pending_.clear();
}

void BucketLog::ForEach(const std::function<bool(LogRecord*)>& fn) const {
  for (AdllNode* n = list_.head(); n != nullptr;) {
    AdllNode* next = n->next;
    auto* b = static_cast<Bucket*>(n->element);
    std::uint32_t end = IterEnd(n, b);
    for (std::uint32_t i = 0; i < end; ++i) {
      LogRecord* r = b->slots[i];
      if (r == nullptr) break;
      if (r == Bucket::Tombstone()) continue;
      if (!fn(r)) return;
    }
    n = next;
  }
}

void BucketLog::ForEachBackward(
    const std::function<bool(LogRecord*)>& fn) const {
  for (AdllNode* n = list_.tail(); n != nullptr;) {
    AdllNode* prior = n->prior;
    auto* b = static_cast<Bucket*>(n->element);
    std::uint32_t end = IterEnd(n, b);
    // Skip trailing never-used cells.
    while (end > 0 && b->slots[end - 1] == nullptr) --end;
    for (std::uint32_t i = end; i > 0; --i) {
      LogRecord* r = b->slots[i - 1];
      if (r == nullptr || r == Bucket::Tombstone()) continue;
      if (!fn(r)) return;
    }
    n = prior;
  }
}

}  // namespace rwd
