#include "src/kv/kv_store.h"

#include <algorithm>
#include <cstring>

namespace rwd {

KvStore::KvStore(const KvConfig& config)
    : KvStore(config, Runtime::OpenMode::kCreate) {}

std::unique_ptr<KvStore> KvStore::Open(const std::string& heap_file,
                                       KvConfig config) {
  config.rewind.nvm.heap_file = heap_file;
  return std::unique_ptr<KvStore>(
      new KvStore(config, Runtime::OpenMode::kAttach));
}

KvStore::KvStore(const KvConfig& config, Runtime::OpenMode open)
    : config_(config),
      // One partition per shard plus a trailing partition holding only the
      // two-phase commit coordinator's decision records.
      runtime_(std::make_unique<Runtime>(
          config.rewind, std::max<std::size_t>(config.shards, 1) + 1,
          /*coordinator_partition=*/std::max<std::size_t>(config.shards, 1),
          open)),
      store_txn_(std::make_unique<StoreTxn>(runtime_.get())) {
  std::size_t n = runtime_->partitions() - 1;
  NvmHeap& heap = runtime_->nvm().heap();
  shards_.reserve(n);
  if (open == Runtime::OpenMode::kAttach) {
    // The Runtime already recovered every partition against the reopened
    // heap; re-bind each shard's structures from the shard directory.
    auto* dir = static_cast<ShardDir*>(heap.GetRoot("kv_dir"));
    if (dir == nullptr) {
      throw HeapAttachError("KvStore: heap file '" + heap.file_path() +
                            "' has no shard directory (not a RewindKV "
                            "heap?)");
    }
    if (dir->shard_count != n) {
      throw HeapAttachError(
          "KvStore: heap file '" + heap.file_path() + "' was created with " +
          std::to_string(dir->shard_count) + " shards but config asks for " +
          std::to_string(n));
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto* primary = reinterpret_cast<void*>(dir->entries[i].primary);
      auto* secondary = reinterpret_cast<void*>(dir->entries[i].secondary);
      if (!heap.Contains(primary) || !heap.Contains(secondary)) {
        throw HeapAttachError(
            "KvStore: heap file '" + heap.file_path() + "' shard " +
            std::to_string(i) +
            " directory entry points outside the arena (corrupt "
            "directory)");
      }
      auto shard = std::make_unique<Shard>();
      shard->ops = std::make_unique<RewindOps>(&runtime_->tm(i));
      shard->primary = std::make_unique<BTree>(primary);
      shard->secondary = std::make_unique<PHash>(secondary);
      shards_.push_back(std::move(shard));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->ops = std::make_unique<RewindOps>(&runtime_->tm(i));
      shard->ops->BeginOp();
      shard->primary = std::make_unique<BTree>(shard->ops.get());
      shard->secondary = std::make_unique<PHash>(
          shard->ops.get(), config_.secondary_initial_capacity);
      shard->ops->CommitOp();
      shards_.push_back(std::move(shard));
    }
    // Persist the shard directory and hang it off the root catalog so a
    // fresh process can find every anchor again (done for DRAM heaps too —
    // the catalog is uniform, the directory just dies with the process).
    NvmManager& nvm = runtime_->nvm();
    auto* dir = static_cast<ShardDir*>(
        nvm.Alloc(sizeof(ShardDir) + n * sizeof(ShardDirEntry)));
    nvm.StoreNT(&dir->shard_count, static_cast<std::uint64_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      nvm.StoreNT(&dir->entries[i].primary,
                  reinterpret_cast<std::uint64_t>(
                      shards_[i]->primary->persistent_anchor()));
      nvm.StoreNT(&dir->entries[i].secondary,
                  reinterpret_cast<std::uint64_t>(
                      shards_[i]->secondary->persistent_anchor()));
    }
    nvm.Fence();
    heap.SetRoot("kv_dir", dir);
  }
  if (config_.checkpoint_period_ms != 0) {
    StartCheckpointDaemons(config_.checkpoint_period_ms);
  }
}

KvStore::~KvStore() { runtime_->StopCheckpointDaemon(); }

std::uint64_t* KvStore::NewValueBuffer(StorageOps* ops,
                                       std::string_view value) {
  std::size_t words = 1 + (value.size() + 7) / 8;
  auto* buf = static_cast<std::uint64_t*>(ops->AllocRaw(words * 8));
  ops->InitStore(&buf[0], value.size());
  for (std::size_t w = 0; w + 1 < words; ++w) {
    std::uint64_t word = 0;
    std::size_t off = w * 8;
    std::memcpy(&word, value.data() + off,
                std::min<std::size_t>(8, value.size() - off));
    ops->InitStore(&buf[1 + w], word);
  }
  ops->PublishInit(buf, words * 8);
  return buf;
}

void KvStore::PutInOp(Shard& s, std::uint64_t key, std::string_view value) {
  StorageOps* ops = s.ops.get();
  std::uint64_t* buf = NewValueBuffer(ops, value);
  auto buf_word = reinterpret_cast<std::uint64_t>(buf);
  // Single-probe upsert: the secondary index is probed once and reports
  // the predecessor buffer, so an overwrite needs one more B+-tree descent
  // and nothing else.
  std::uint64_t old_ptr = 0;
  if (s.secondary->UpsertOp(ops, key, buf_word, &old_ptr)) {
    std::uint64_t words[2] = {buf_word, value.size()};
    s.primary->UpdatePayloadWords(ops, key, words, 2);
    ops->DeferredFree(reinterpret_cast<void*>(old_ptr));
  } else {
    std::uint64_t payload[BTree::kPayloadWords] = {buf_word, value.size(), 0,
                                                   0};
    s.primary->Insert(ops, key, payload);
  }
}

void KvStore::EraseInOp(Shard& s, std::uint64_t key, std::uint64_t ptr) {
  StorageOps* ops = s.ops.get();
  s.primary->Remove(ops, key);
  s.secondary->EraseOp(ops, key);
  ops->DeferredFree(reinterpret_cast<void*>(ptr));
}

bool KvStore::DeleteInOp(Shard& s, std::uint64_t key) {
  std::uint64_t ptr = 0;
  if (!s.secondary->Get(s.ops.get(), key, &ptr)) return false;
  EraseInOp(s, key, ptr);
  return true;
}

bool KvStore::Put(std::uint64_t key, std::string_view value) {
  if (!ValidKey(key)) return false;
  Shard& s = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.stats.puts;
  s.ops->BeginOp();
  PutInOp(s, key, value);
  s.ops->CommitOp();
  return true;
}

bool KvStore::Get(std::uint64_t key, std::string* value_out) {
  if (!ValidKey(key)) return false;
  Shard& s = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.stats.gets;
  std::uint64_t ptr = 0;
  if (!s.secondary->Get(s.ops.get(), key, &ptr)) return false;
  ++s.stats.hits;
  const auto* buf = reinterpret_cast<const std::uint64_t*>(ptr);
  std::uint64_t size = s.ops->Load(&buf[0]);
  if (value_out != nullptr) {
    value_out->assign(reinterpret_cast<const char*>(buf + 1), size);
  }
  return true;
}

bool KvStore::Delete(std::uint64_t key) {
  if (!ValidKey(key)) return false;
  Shard& s = *shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.stats.deletes;
  std::uint64_t ptr = 0;
  if (!s.secondary->Get(s.ops.get(), key, &ptr)) return false;
  s.ops->BeginOp();
  EraseInOp(s, key, ptr);
  s.ops->CommitOp();
  return true;
}

std::size_t KvStore::Scan(
    std::uint64_t from_key, std::size_t max_items,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) {
  if (max_items == 0) return 0;
  // Shard-ordered latch acquisition: the scan sees one consistent cut.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& s : shards_) locks.emplace_back(s->mu);

  struct Item {
    std::uint64_t key;
    const std::uint64_t* buf;
    std::uint64_t size;
  };
  std::vector<Item> items;
  for (auto& sp : shards_) {
    Shard& s = *sp;
    ++s.stats.scans;
    StorageOps* ops = s.ops.get();
    s.primary->ScanRange(
        ops, from_key, ~std::uint64_t{0}, max_items,
        [&](std::uint64_t k, const void* payload) {
          const auto* p = static_cast<const std::uint64_t*>(payload);
          items.push_back({k,
                           reinterpret_cast<const std::uint64_t*>(
                               ops->Load(&p[0])),
                           ops->Load(&p[1])});
          return true;
        });
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.key < b.key; });
  std::size_t visited = 0;
  for (const Item& it : items) {
    if (visited == max_items) break;
    ++visited;
    if (!fn(it.key, std::string_view(
                        reinterpret_cast<const char*>(it.buf + 1), it.size))) {
      break;
    }
  }
  return visited;
}

bool KvStore::MultiPut(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs) {
  for (const auto& kv : kvs) {
    if (!ValidKey(kv.first)) return false;
  }
  std::vector<std::vector<const std::pair<std::uint64_t, std::string>*>>
      by_shard(shards_.size());
  for (const auto& kv : kvs) by_shard[ShardOf(kv.first)].push_back(&kv);

  // Latch the involved shards in ascending shard order, open one
  // transaction per shard, apply, then commit them all.
  std::vector<std::size_t> involved;
  std::vector<std::unique_lock<std::mutex>> locks;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    involved.push_back(i);
    locks.emplace_back(shards_[i]->mu);
  }
  for (std::size_t i : involved) shards_[i]->ops->BeginOp();
  for (std::size_t i : involved) {
    Shard& s = *shards_[i];
    for (const auto* kv : by_shard[i]) {
      PutInOp(s, kv->first, kv->second);
      ++s.stats.multiput_keys;
    }
  }
  CommitInvolved(involved);
  return true;
}

void KvStore::CommitInvolved(const std::vector<std::size_t>& involved) {
  // Shard index == Runtime partition index, so the open transactions map
  // directly onto two-phase commit participants. One shard takes the
  // plain-commit fast path inside StoreTxn. Either way StoreTxn ends
  // with the batch's single durability fence.
  std::vector<StoreTxn::Participant> participants;
  participants.reserve(involved.size());
  for (std::size_t i : involved) {
    participants.push_back({i, shards_[i]->ops->tid()});
  }
  store_txn_->Commit(participants);
}

void KvStore::ApplyBatch(std::vector<KvWriteOp>& ops) {
  if (ops.empty()) return;
  // Group op indexes by shard, preserving submission order within a shard.
  std::vector<std::vector<KvWriteOp*>> by_shard(shards_.size());
  for (KvWriteOp& op : ops) {
    op.applied = false;
    if (ValidKey(op.key)) by_shard[ShardOf(op.key)].push_back(&op);
  }
  // Latch the involved shards in ascending shard order (the same order
  // Scan and MultiPut use, so batches cannot deadlock against either),
  // open ONE transaction per shard, apply, commit them as one two-phase
  // decision, then pay a single durability fence for the whole batch.
  std::vector<std::size_t> involved;
  std::vector<std::unique_lock<std::mutex>> locks;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    involved.push_back(i);
    locks.emplace_back(shards_[i]->mu);
  }
  for (std::size_t i : involved) shards_[i]->ops->BeginOp();
  for (std::size_t i : involved) {
    Shard& s = *shards_[i];
    for (KvWriteOp* op : by_shard[i]) {
      if (op->kind == KvWriteOp::Kind::kPut) {
        PutInOp(s, op->key, op->value);
        op->applied = true;
      } else {
        op->applied = DeleteInOp(s, op->key);
      }
      ++s.stats.batched_writes;
    }
  }
  CommitInvolved(involved);
}

void KvStore::CrashAndRecover(double evict_probability, std::uint64_t seed) {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& s : shards_) locks.emplace_back(s->mu);
  runtime_->CrashAndRecover(evict_probability, seed);
  store_txn_->ResetAfterCrash();
  if (config_.checkpoint_period_ms != 0) {
    StartCheckpointDaemons(config_.checkpoint_period_ms);
  }
}

void KvStore::StartCheckpointDaemons(std::uint32_t period_ms) {
  // Replace any daemons already running (e.g. a cadence change); the
  // per-partition launcher itself deliberately does not stop others.
  runtime_->StopCheckpointDaemon();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    runtime_->StartPartitionCheckpointDaemon(i, period_ms);
  }
}

void KvStore::StopCheckpointDaemons() { runtime_->StopCheckpointDaemon(); }

void KvStore::CheckpointShard(std::size_t shard) {
  // No shard latch: the transaction manager is internally latched, and the
  // per-shard daemons checkpoint concurrently with operations the same way.
  runtime_->CheckpointPartition(shard);
}

std::uint64_t KvStore::Size() {
  std::uint64_t total = 0;
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    total += sp->primary->size(sp->ops.get());
  }
  return total;
}

KvShardStats KvStore::shard_stats(std::size_t shard) {
  Shard& s = *shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  KvShardStats stats = s.stats;
  stats.keys = s.primary->size(s.ops.get());
  return stats;
}

void KvStore::ResetStats() {
  for (auto& sp : shards_) {
    std::lock_guard<std::mutex> lock(sp->mu);
    sp->stats = KvShardStats{};
  }
}

}  // namespace rwd
