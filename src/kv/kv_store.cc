#include "src/kv/kv_store.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/nvm/atomic_mem.h"
#include "src/repl/replication_log.h"

namespace rwd {
namespace {

/// Width of the store's shared fan-out pool (caller included): the
/// configured value, or min(shards, hardware, 8) — there is never a
/// reason to fan one batch wider than its possible shard count.
std::size_t FanoutWidth(std::size_t configured, std::size_t shards) {
  if (configured != 0) return configured;
  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 2;
  return std::min<std::size_t>({std::max<std::size_t>(shards, 1), hw, 8});
}

/// Copies a value buffer's bytes with relaxed word loads (the latch-free
/// read path may race a writer; the caller validates the seqlock after the
/// copy and discards on conflict, so a torn copy is harmless).
/// Largest per-shard remainder the range-layout scan will attempt
/// latch-free: bounds the snapshot buffer and, more importantly, the
/// validation window — a long window under write traffic would never
/// validate and just burn two failed attempts per shard.
constexpr std::size_t kOptimisticSubScanMax = 128;

void CopyValueRelaxed(std::string* out, const std::uint64_t* payload,
                      std::uint64_t size) {
  out->resize(size);
  std::size_t off = 0;
  for (std::size_t w = 0; off < size; ++w, off += 8) {
    std::uint64_t word = RelaxedLoad64(&payload[w]);
    std::memcpy(&(*out)[off], &word, std::min<std::size_t>(8, size - off));
  }
}

}  // namespace

KvStore::KvStore(const KvConfig& config)
    : KvStore(config, Runtime::OpenMode::kCreate) {}

std::unique_ptr<KvStore> KvStore::Open(const std::string& heap_file,
                                       KvConfig config) {
  config.rewind.nvm.heap_file = heap_file;
  return std::unique_ptr<KvStore>(
      new KvStore(config, Runtime::OpenMode::kAttach));
}

KvStore::KvStore(const KvConfig& config, Runtime::OpenMode open)
    : config_(config),
      // One partition per shard plus a trailing partition holding only the
      // two-phase commit coordinator's decision records.
      runtime_(std::make_unique<Runtime>(
          config.rewind, std::max<std::size_t>(config.shards, 1) + 1,
          /*coordinator_partition=*/std::max<std::size_t>(config.shards, 1),
          open)),
      work_pool_(std::make_unique<WorkPool>(
          FanoutWidth(config.prepare_threads, config.shards))),
      store_txn_(std::make_unique<StoreTxn>(runtime_.get(),
                                            /*pool_threads=*/0,
                                            config.decision_truncate_batch,
                                            work_pool_.get())) {
  std::size_t n = runtime_->partitions() - 1;
  NvmHeap& heap = runtime_->nvm().heap();
  shards_.reserve(n);
  if (open == Runtime::OpenMode::kAttach) {
    // The Runtime already recovered every partition against the reopened
    // heap; re-bind each shard's structures from the shard directory.
    auto* dir = static_cast<ShardDir*>(heap.GetRoot("kv_dir"));
    if (dir == nullptr) {
      throw HeapAttachError("KvStore: heap file '" + heap.file_path() +
                            "' has no shard directory (not a RewindKV "
                            "heap?)");
    }
    if (dir->shard_count != n) {
      throw HeapAttachError(
          "KvStore: heap file '" + heap.file_path() + "' was created with " +
          std::to_string(dir->shard_count) + " shards but config asks for " +
          std::to_string(n));
    }
    if (dir->layout != static_cast<std::uint64_t>(config_.shard_layout)) {
      throw HeapAttachError(
          "KvStore: heap file '" + heap.file_path() + "' was created with " +
          std::string(dir->layout ==
                              static_cast<std::uint64_t>(ShardLayout::kRange)
                          ? "range"
                          : "hash") +
          "-partitioned shards but config asks for the other layout");
    }
    if (config_.shard_layout == ShardLayout::kRange) {
      // The key-range ownership that matters is the one the data was
      // written under: reconstruct it from the directory, not the config.
      std::vector<std::uint64_t> lo(n);
      for (std::size_t i = 0; i < n; ++i) lo[i] = dir->entries[i].range_lo;
      partitioner_ = std::make_unique<RangePartitioner>(std::move(lo));
    } else {
      partitioner_ = std::make_unique<HashPartitioner>(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto* primary = reinterpret_cast<void*>(dir->entries[i].primary);
      auto* secondary = reinterpret_cast<void*>(dir->entries[i].secondary);
      if (!heap.Contains(primary) || !heap.Contains(secondary)) {
        throw HeapAttachError(
            "KvStore: heap file '" + heap.file_path() + "' shard " +
            std::to_string(i) +
            " directory entry points outside the arena (corrupt "
            "directory)");
      }
      auto shard = std::make_unique<Shard>();
      shard->ops = std::make_unique<RewindOps>(&runtime_->tm(i));
      shard->primary = std::make_unique<BTree>(primary);
      shard->secondary = std::make_unique<PHash>(secondary);
      shards_.push_back(std::move(shard));
    }
  } else {
    if (config_.shard_layout == ShardLayout::kRange) {
      partitioner_ = RangePartitioner::EvenSplit(n, config_.range_max_key);
    } else {
      partitioner_ = std::make_unique<HashPartitioner>(n);
    }
    for (std::size_t i = 0; i < n; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->ops = std::make_unique<RewindOps>(&runtime_->tm(i));
      shard->ops->BeginOp();
      shard->primary = std::make_unique<BTree>(shard->ops.get());
      shard->secondary = std::make_unique<PHash>(
          shard->ops.get(), config_.secondary_initial_capacity);
      shard->ops->CommitOp();
      shards_.push_back(std::move(shard));
    }
    // Persist the shard directory and hang it off the root catalog so a
    // fresh process can find every anchor again (done for DRAM heaps too —
    // the catalog is uniform, the directory just dies with the process).
    NvmManager& nvm = runtime_->nvm();
    auto* dir = static_cast<ShardDir*>(
        nvm.Alloc(sizeof(ShardDir) + n * sizeof(ShardDirEntry)));
    nvm.StoreNT(&dir->shard_count, static_cast<std::uint64_t>(n));
    nvm.StoreNT(&dir->layout,
                static_cast<std::uint64_t>(config_.shard_layout));
    for (std::size_t i = 0; i < n; ++i) {
      nvm.StoreNT(&dir->entries[i].primary,
                  reinterpret_cast<std::uint64_t>(
                      shards_[i]->primary->persistent_anchor()));
      nvm.StoreNT(&dir->entries[i].secondary,
                  reinterpret_cast<std::uint64_t>(
                      shards_[i]->secondary->persistent_anchor()));
      nvm.StoreNT(&dir->entries[i].range_lo, partitioner_->LowerBound(i));
    }
    nvm.Fence();
    heap.SetRoot("kv_dir", dir);
  }
  if (config_.checkpoint_period_ms != 0) {
    StartCheckpointDaemons(config_.checkpoint_period_ms);
  }
}

KvStore::~KvStore() { runtime_->StopCheckpointDaemon(); }

std::uint64_t* KvStore::NewValueBuffer(StorageOps* ops,
                                       std::string_view value) {
  std::size_t words = 1 + (value.size() + 7) / 8;
  auto* buf = static_cast<std::uint64_t*>(ops->AllocRaw(words * 8));
  ops->InitStore(&buf[0], value.size());
  for (std::size_t w = 0; w + 1 < words; ++w) {
    std::uint64_t word = 0;
    std::size_t off = w * 8;
    std::memcpy(&word, value.data() + off,
                std::min<std::size_t>(8, value.size() - off));
    ops->InitStore(&buf[1 + w], word);
  }
  ops->PublishInit(buf, words * 8);
  return buf;
}

void KvStore::PutInOp(Shard& s, std::uint64_t key, std::string_view value) {
  StorageOps* ops = s.ops.get();
  std::uint64_t* buf = NewValueBuffer(ops, value);
  auto buf_word = reinterpret_cast<std::uint64_t>(buf);
  // Single-probe upsert: the secondary index is probed once and reports
  // the predecessor buffer, so an overwrite needs one more B+-tree descent
  // and nothing else.
  std::uint64_t old_ptr = 0;
  if (s.secondary->UpsertOp(ops, key, buf_word, &old_ptr)) {
    std::uint64_t words[2] = {buf_word, value.size()};
    s.primary->UpdatePayloadWords(ops, key, words, 2);
    ops->DeferredFree(reinterpret_cast<void*>(old_ptr));
  } else {
    std::uint64_t payload[BTree::kPayloadWords] = {buf_word, value.size(), 0,
                                                   0};
    s.primary->Insert(ops, key, payload);
  }
}

void KvStore::EraseInOp(Shard& s, std::uint64_t key, std::uint64_t ptr) {
  StorageOps* ops = s.ops.get();
  s.primary->Remove(ops, key);
  s.secondary->EraseOp(ops, key);
  ops->DeferredFree(reinterpret_cast<void*>(ptr));
}

bool KvStore::DeleteInOp(Shard& s, std::uint64_t key) {
  std::uint64_t ptr = 0;
  if (!s.secondary->Get(s.ops.get(), key, &ptr)) return false;
  EraseInOp(s, key, ptr);
  return true;
}

void KvStore::PublishRepl(const std::vector<KvWriteOp>& ops) {
  if (repl_log_ == nullptr || ops.empty()) return;
  std::uint64_t gtid = repl_log_->Publish(ops);
  last_pub_gtid_.store(gtid, std::memory_order_release);
}

bool KvStore::Put(std::uint64_t key, std::string_view value) {
  if (!ValidKey(key)) return false;
  Shard& s = *shards_[ShardOf(key)];
  std::lock_guard<std::shared_mutex> lock(s.mu);
  s.stats.puts.fetch_add(1, std::memory_order_relaxed);
  WriteBegin(s);
  s.ops->BeginOp();
  PutInOp(s, key, value);
  s.ops->CommitOp();
  WriteEnd(s);
  if (repl_log_ != nullptr) {
    KvWriteOp op;
    op.key = key;
    op.value = std::string(value);
    op.applied = true;
    PublishRepl({std::move(op)});
  }
  return true;
}

bool KvStore::TryOptimisticGet(Shard& s, std::uint64_t key,
                               std::string* value_out, bool* found) const {
  std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 & 1) return false;  // a writer is mutating this shard right now
  std::uint64_t ptr = 0;
  bool present = s.secondary->GetRelaxed(key, &ptr);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  if (!present) {
    // Validated miss: the probe saw a stable table with no such key.
    *found = false;
    return true;
  }
  const auto* buf = reinterpret_cast<const std::uint64_t*>(ptr);
  std::uint64_t size = RelaxedLoad64(&buf[0]);
  // Re-validate before trusting `size`: a stable counter proves `buf` was
  // the key's live buffer for the whole window (buffers are only freed —
  // and thus only recycled/scrubbed — after a writer on this shard logged
  // the overwrite or delete, which bumps the counter), so its header word
  // is the genuine length, not a torn read of reused memory.
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  if (value_out != nullptr) {
    CopyValueRelaxed(value_out, buf + 1, size);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  }
  *found = true;
  return true;
}

bool KvStore::Get(std::uint64_t key, std::string* value_out) {
  if (!ValidKey(key)) return false;
  Shard& s = *shards_[ShardOf(key)];
  // All read-path accounting goes to this thread's own stripe — one
  // relaxed add on a thread-private cacheline, nothing shared with other
  // readers. No clocks here either: per-op timing on this path measurably
  // halves the latch-free read rate (PR 5), so latency histograms live at
  // the server-op layer instead.
  ReadStripe& rs = s.stats.read[obs::ThreadStripe()];
  rs.gets.fetch_add(1, std::memory_order_relaxed);
  // Writer-starvation guard: when the shard has eaten a run of
  // back-to-back validation conflicts (a reader burst spinning against a
  // writer that holds the exclusive latch), stop feeding the spin — go
  // straight to the shared latch, which queues fairly behind the writer.
  // The fast path only LOADS the shared counter; it is written on
  // conflicts (already the slow path) and once per recovery read.
  const std::uint32_t limit = config_.starvation_retry_limit;
  bool starved =
      limit != 0 &&
      s.consec_retries.load(std::memory_order_relaxed) >= limit;
  if (config_.optimistic_reads && !starved) {
    // A couple of latch-free attempts; under a write burst the shared
    // latch is cheaper than spinning on validation conflicts.
    for (int attempt = 0; attempt < 2; ++attempt) {
      bool found = false;
      if (TryOptimisticGet(s, key, value_out, &found)) {
        rs.optimistic_hits.fetch_add(1, std::memory_order_relaxed);
        if (found) rs.hits.fetch_add(1, std::memory_order_relaxed);
        if (s.consec_retries.load(std::memory_order_relaxed) != 0) {
          s.consec_retries.store(0, std::memory_order_relaxed);
        }
        return found;
      }
      rs.optimistic_retries.fetch_add(1, std::memory_order_relaxed);
      s.consec_retries.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (starved) {
    rs.starvation_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  // Shared-latch fallback: excludes writers only; concurrent readers
  // proceed. With writers excluded the relaxed probe is exact (the Batch
  // WAL deferral is drained before a writer releases its latch), so the
  // locked path reads the same way the optimistic one does.
  std::shared_lock<std::shared_mutex> lock(s.mu);
  rs.read_latch_acquires.fetch_add(1, std::memory_order_relaxed);
  // A latched read completing means the writer burst has drained past us;
  // re-arm the optimistic path (the guard is an escape hatch, not a mode).
  if (s.consec_retries.load(std::memory_order_relaxed) != 0) {
    s.consec_retries.store(0, std::memory_order_relaxed);
  }
  std::uint64_t ptr = 0;
  if (!s.secondary->GetRelaxed(key, &ptr)) return false;
  rs.hits.fetch_add(1, std::memory_order_relaxed);
  const auto* buf = reinterpret_cast<const std::uint64_t*>(ptr);
  std::uint64_t size = RelaxedLoad64(&buf[0]);
  if (value_out != nullptr) {
    CopyValueRelaxed(value_out, buf + 1, size);
  }
  return true;
}

bool KvStore::Delete(std::uint64_t key) {
  if (!ValidKey(key)) return false;
  Shard& s = *shards_[ShardOf(key)];
  std::lock_guard<std::shared_mutex> lock(s.mu);
  s.stats.deletes.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t ptr = 0;
  if (!s.secondary->Get(s.ops.get(), key, &ptr)) return false;
  WriteBegin(s);
  s.ops->BeginOp();
  EraseInOp(s, key, ptr);
  s.ops->CommitOp();
  WriteEnd(s);
  if (repl_log_ != nullptr) {
    KvWriteOp op;
    op.kind = KvWriteOp::Kind::kDelete;
    op.key = key;
    op.applied = true;
    PublishRepl({std::move(op)});
  }
  return true;
}

std::size_t KvStore::Scan(
    std::uint64_t from_key, std::size_t max_items,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) {
  return ScanPage(from_key, max_items, fn).visited;
}

KvStore::ScanPageResult KvStore::ScanPage(
    std::uint64_t from_key, std::size_t max_items,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) {
  if (max_items == 0) return {};
  if (config_.shard_layout == ShardLayout::kRange) {
    return ScanPageRange(from_key, max_items, fn);
  }
  return ScanPageHash(from_key, max_items, fn);
}

bool KvStore::TryOptimisticSubScan(
    Shard& s, std::uint64_t from_key, std::size_t max_items,
    std::vector<std::pair<std::uint64_t, std::string>>* out, bool* shard_more,
    std::uint64_t* shard_next) const {
  std::uint64_t s1 = s.seq.load(std::memory_order_acquire);
  if (s1 & 1) return false;  // a writer is mutating this shard right now
  // Snapshot one pair beyond the budget so "does the shard go on?" is
  // decided inside the validated window, not by a separate racy probe.
  std::vector<std::pair<std::uint64_t, const std::uint64_t*>> snap;
  snap.reserve(max_items + 1);
  bool walk_ok =
      s.primary->SnapshotRangeRelaxed(from_key, max_items + 1, &snap);
  std::atomic_thread_fence(std::memory_order_acquire);
  if (!walk_ok || s.seq.load(std::memory_order_relaxed) != s1) return false;
  // A stable counter proves the leaf walk saw the shard's real (key,
  // payload-block) pairs. Same staged validation as TryOptimisticGet from
  // here: read every block's (value_ptr, size), validate — so the sizes
  // are genuine lengths, not torn reads of recycled blocks — then copy
  // the value bytes and validate once more.
  *shard_more = snap.size() > max_items;
  if (*shard_more) {
    *shard_next = snap.back().first;
    snap.pop_back();
  }
  struct Val {
    std::uint64_t key;
    const std::uint64_t* buf;
    std::uint64_t size;
  };
  std::vector<Val> vals;
  vals.reserve(snap.size());
  for (const auto& [k, blk] : snap) {
    vals.push_back({k,
                    reinterpret_cast<const std::uint64_t*>(
                        RelaxedLoad64(&blk[0])),
                    RelaxedLoad64(&blk[1])});
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (s.seq.load(std::memory_order_relaxed) != s1) return false;
  out->clear();
  out->reserve(vals.size());
  for (const Val& v : vals) {
    out->emplace_back(v.key, std::string());
    CopyValueRelaxed(&out->back().second, v.buf + 1, v.size);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  return s.seq.load(std::memory_order_relaxed) == s1;
}

KvStore::ScanPageResult KvStore::ScanPageRange(
    std::uint64_t from_key, std::size_t max_items,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) {
  ScanPageResult res;
  const std::size_t n = shards_.size();
  std::uint64_t cur = from_key;
  // Shards partition the key space in order: walk them one at a time from
  // the owner of from_key. At most ONE shard is latched (shared) at any
  // moment, and short tails skip even that via the seqlock sub-scan.
  for (std::size_t si = partitioner_->ShardOf(from_key); si < n; ++si) {
    Shard& s = *shards_[si];
    s.stats.scans.fetch_add(1, std::memory_order_relaxed);
    std::size_t remaining = max_items - res.visited;
    bool drained = false;
    if (config_.optimistic_reads && remaining <= kOptimisticSubScanMax) {
      // Only when the remainder fits one bounded attempt, so a single
      // validated snapshot covers this shard's whole segment and the
      // per-shard-cut guarantee holds on the latch-free path too.
      ReadStripe& rs = s.stats.read[obs::ThreadStripe()];
      std::vector<std::pair<std::uint64_t, std::string>> items;
      bool shard_more = false;
      std::uint64_t shard_next = 0;
      bool ok = false;
      for (int attempt = 0; attempt < 2 && !ok; ++attempt) {
        ok = TryOptimisticSubScan(s, cur, remaining, &items, &shard_more,
                                  &shard_next);
        if (!ok) {
          rs.scan_optimistic_retries.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (ok) {
        rs.scan_optimistic_hits.fetch_add(1, std::memory_order_relaxed);
        for (const auto& [k, v] : items) {
          ++res.visited;
          if (!fn(k, v)) {
            res.next_key = k;
            res.more = true;
            return res;
          }
        }
        if (shard_more) {  // budget filled with the shard still going
          res.next_key = shard_next;
          res.more = true;
          return res;
        }
        drained = true;
      }
    }
    if (!drained) {
      // Shared-latch fallback: excludes writers from THIS shard only for
      // the duration of its segment (the per-shard cut).
      std::shared_lock<std::shared_mutex> lock(s.mu);
      StorageOps* ops = s.ops.get();
      for (BTree::Cursor c = s.primary->Seek(ops, cur); c.Valid();
           c.Next(ops)) {
        if (res.visited == max_items) {
          res.next_key = c.key();
          res.more = true;
          return res;
        }
        const auto* p = static_cast<const std::uint64_t*>(c.payload());
        const auto* buf =
            reinterpret_cast<const std::uint64_t*>(ops->Load(&p[0]));
        std::uint64_t size = ops->Load(&p[1]);
        ++res.visited;
        if (!fn(c.key(), std::string_view(
                             reinterpret_cast<const char*>(buf + 1), size))) {
          res.next_key = c.key();
          res.more = true;
          return res;
        }
      }
    }
    if (si + 1 < n) cur = partitioner_->LowerBound(si + 1);
  }
  return res;  // every shard exhausted
}

KvStore::ScanPageResult KvStore::ScanPageHash(
    std::uint64_t from_key, std::size_t max_items,
    const std::function<bool(std::uint64_t, std::string_view)>& fn) {
  ScanPageResult res;
  const std::size_t n = shards_.size();
  // Shard-ordered SHARED latch acquisition: hash scatter means any shard
  // may own the next key in order, so correctness (one consistent cut
  // across the store — a cross-shard MultiPut is never observed torn)
  // requires excluding writers from every shard at the start. From there a
  // bounded k-way merge pulls the minimum cursor head one item at a time —
  // no global materialize+sort buffer — and a shard's latch drops the
  // moment its cursor exhausts, so the scan only keeps latching the shards
  // it is still pulling from.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(n);
  for (auto& s : shards_) locks.emplace_back(s->mu);
  std::vector<BTree::Cursor> cursors(n);
  for (std::size_t i = 0; i < n; ++i) {
    Shard& s = *shards_[i];
    s.stats.scans.fetch_add(1, std::memory_order_relaxed);
    cursors[i] = s.primary->Seek(s.ops.get(), from_key);
    if (!cursors[i].Valid()) locks[i].unlock();
  }
  for (;;) {
    // Linear min-select across the cursor heads: k == shard count, far
    // below the crossover where a heap would pay off.
    std::size_t min_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (cursors[i].Valid() &&
          (min_i == n || cursors[i].key() < cursors[min_i].key())) {
        min_i = i;
      }
    }
    if (min_i == n) return res;  // every cursor exhausted
    BTree::Cursor& c = cursors[min_i];
    if (res.visited == max_items) {
      res.next_key = c.key();
      res.more = true;
      return res;
    }
    Shard& s = *shards_[min_i];
    StorageOps* ops = s.ops.get();
    const auto* p = static_cast<const std::uint64_t*>(c.payload());
    const auto* buf = reinterpret_cast<const std::uint64_t*>(ops->Load(&p[0]));
    std::uint64_t size = ops->Load(&p[1]);
    ++res.visited;
    if (!fn(c.key(), std::string_view(reinterpret_cast<const char*>(buf + 1),
                                      size))) {
      res.next_key = c.key();
      res.more = true;
      return res;
    }
    c.Next(ops);
    if (!c.Valid()) locks[min_i].unlock();  // drained: let writers back in
  }
}

bool KvStore::MultiPut(
    const std::vector<std::pair<std::uint64_t, std::string>>& kvs) {
  for (const auto& kv : kvs) {
    if (!ValidKey(kv.first)) return false;
  }
  std::vector<std::vector<const std::pair<std::uint64_t, std::string>*>>
      by_shard(shards_.size());
  for (const auto& kv : kvs) by_shard[ShardOf(kv.first)].push_back(&kv);

  // Latch the involved shards exclusive in ascending shard order, open one
  // transaction per shard, apply, then commit them all.
  std::vector<std::size_t> involved;
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    involved.push_back(i);
    locks.emplace_back(shards_[i]->mu);
  }
  for (std::size_t i : involved) {
    WriteBegin(*shards_[i]);
    shards_[i]->ops->BeginOp();
  }
  for (std::size_t i : involved) {
    Shard& s = *shards_[i];
    for (const auto* kv : by_shard[i]) {
      PutInOp(s, kv->first, kv->second);
      s.stats.multiput_keys.fetch_add(1, std::memory_order_relaxed);
    }
  }
  CommitInvolved(involved);
  for (std::size_t i : involved) WriteEnd(*shards_[i]);
  if (repl_log_ != nullptr) {
    // Still under the involved shard latches: the record orders correctly
    // against every other writer touching these keys.
    std::vector<KvWriteOp> rec;
    rec.reserve(kvs.size());
    for (const auto& [key, value] : kvs) {
      KvWriteOp op;
      op.key = key;
      op.value = value;
      op.applied = true;
      rec.push_back(std::move(op));
    }
    PublishRepl(rec);
  }
  return true;
}

void KvStore::CommitInvolved(const std::vector<std::size_t>& involved) {
  // Shard index == Runtime partition index, so the open transactions map
  // directly onto two-phase commit participants. One shard takes the
  // plain-commit fast path inside StoreTxn; several fan the prepare and
  // commit phases out across StoreTxn's worker pool. Either way StoreTxn
  // ends with the batch's single durability fence.
  std::vector<StoreTxn::Participant> participants;
  participants.reserve(involved.size());
  for (std::size_t i : involved) {
    participants.push_back({i, shards_[i]->ops->tid()});
  }
  store_txn_->Commit(participants);
}

void KvStore::ApplyBatch(std::vector<KvWriteOp>& ops) {
  if (ops.empty()) return;
  // Group op indexes by shard, preserving submission order within a shard.
  std::vector<std::vector<KvWriteOp*>> by_shard(shards_.size());
  for (KvWriteOp& op : ops) {
    op.applied = false;
    if (ValidKey(op.key)) by_shard[ShardOf(op.key)].push_back(&op);
  }
  // Latch the involved shards exclusive in ascending shard order (the same
  // order Scan and MultiPut use, so batches cannot deadlock against
  // either), open ONE transaction per shard, apply, commit them as one
  // two-phase decision, then pay a single durability fence for the whole
  // batch.
  std::vector<std::size_t> involved;
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (by_shard[i].empty()) continue;
    involved.push_back(i);
    locks.emplace_back(shards_[i]->mu);
  }
  for (std::size_t i : involved) {
    WriteBegin(*shards_[i]);
    shards_[i]->ops->BeginOp();
  }
  // Fan the per-shard apply loops out across the shared pool: shards are
  // independent REWIND log partitions (own transaction manager, own log,
  // thread-safe NVM allocator), so an 8-shard batch applies on up to 8
  // cores instead of 1 and then flows into the already-parallel 2PC
  // prepare. The pool stands down while the crash injector is armed —
  // crash sweeps need the injected CrashException at a deterministic
  // persistence-event ordinal on the calling thread.
  bool fanout = involved.size() >= 2 && work_pool_->worker_count() > 0 &&
                !runtime_->nvm().crash_injector().armed();
  work_pool_->RunIndexed(involved.size(), fanout, [&](std::size_t idx) {
    Shard& s = *shards_[involved[idx]];
    for (KvWriteOp* op : by_shard[involved[idx]]) {
      if (op->kind == KvWriteOp::Kind::kPut) {
        PutInOp(s, op->key, op->value);
        op->applied = true;
      } else {
        op->applied = DeleteInOp(s, op->key);
      }
      s.stats.batched_writes.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (fanout) {
    parallel_applies_.fetch_add(1, std::memory_order_relaxed);
    if (obs::RecordingEnabled()) {
      // Last batch's fan-out width (gauge): how many shards one group
      // commit actually spread across.
      static obs::Gauge* fanout_gauge =
          obs::Registry::Get().GetGauge("batcher.apply_fanout");
      fanout_gauge->Set(static_cast<double>(involved.size()));
    }
  }
  CommitInvolved(involved);
  for (std::size_t i : involved) WriteEnd(*shards_[i]);
  if (repl_log_ != nullptr) {
    // Ship only the ops that took effect (a delete-miss has nothing to
    // replay); still under the involved shard latches.
    std::vector<KvWriteOp> rec;
    for (const KvWriteOp& op : ops) {
      if (op.applied) rec.push_back(op);
    }
    PublishRepl(rec);
  }
}

void KvStore::CrashAndRecover(double evict_probability, std::uint64_t seed) {
  std::vector<std::unique_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& s : shards_) locks.emplace_back(s->mu);
  // Recovery rewrites arena words without going through the per-shard
  // writer protocol, and optimistic readers take no latch — so force every
  // shard's seqlock odd for the duration (a reader starting now bails
  // immediately; one already mid-probe fails its re-validation), then
  // advance to a fresh even value. This also re-evens counters left odd by
  // writers the simulated power failure killed mid-mutation.
  for (auto& s : shards_) {
    s->seq.fetch_add(s->seq.load(std::memory_order_relaxed) % 2 ? 2 : 1,
                     std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_release);
  runtime_->CrashAndRecover(evict_probability, seed);
  store_txn_->ResetAfterCrash();
  for (auto& s : shards_) {
    s->seq.fetch_add(1, std::memory_order_release);
  }
  if (config_.checkpoint_period_ms != 0) {
    StartCheckpointDaemons(config_.checkpoint_period_ms);
  }
}

void KvStore::StartCheckpointDaemons(std::uint32_t period_ms) {
  // Replace any daemons already running (e.g. a cadence change); the
  // per-partition launcher itself deliberately does not stop others.
  runtime_->StopCheckpointDaemon();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    runtime_->StartPartitionCheckpointDaemon(i, period_ms);
  }
}

void KvStore::StopCheckpointDaemons() { runtime_->StopCheckpointDaemon(); }

void KvStore::CheckpointShard(std::size_t shard) {
  // No shard latch: the transaction manager is internally latched, and the
  // per-shard daemons checkpoint concurrently with operations the same way.
  runtime_->CheckpointPartition(shard);
}

std::uint64_t KvStore::Size() {
  std::uint64_t total = 0;
  for (auto& sp : shards_) {
    std::shared_lock<std::shared_mutex> lock(sp->mu);
    total += sp->primary->size(sp->ops.get());
  }
  return total;
}

KvShardStats KvStore::shard_stats(std::size_t shard) {
  Shard& s = *shards_[shard];
  KvShardStats stats;
  stats.puts = s.stats.puts.load(std::memory_order_relaxed);
  stats.deletes = s.stats.deletes.load(std::memory_order_relaxed);
  stats.scans = s.stats.scans.load(std::memory_order_relaxed);
  stats.multiput_keys = s.stats.multiput_keys.load(std::memory_order_relaxed);
  stats.batched_writes =
      s.stats.batched_writes.load(std::memory_order_relaxed);
  for (const ReadStripe& rs : s.stats.read) {
    stats.gets += rs.gets.load(std::memory_order_relaxed);
    stats.hits += rs.hits.load(std::memory_order_relaxed);
    stats.optimistic_hits +=
        rs.optimistic_hits.load(std::memory_order_relaxed);
    stats.optimistic_retries +=
        rs.optimistic_retries.load(std::memory_order_relaxed);
    stats.read_latch_acquires +=
        rs.read_latch_acquires.load(std::memory_order_relaxed);
    stats.starvation_fallbacks +=
        rs.starvation_fallbacks.load(std::memory_order_relaxed);
    stats.scan_optimistic_hits +=
        rs.scan_optimistic_hits.load(std::memory_order_relaxed);
    stats.scan_optimistic_retries +=
        rs.scan_optimistic_retries.load(std::memory_order_relaxed);
  }
  std::shared_lock<std::shared_mutex> lock(s.mu);
  stats.keys = s.primary->size(s.ops.get());
  return stats;
}

void KvStore::ResetStats() {
  for (auto& sp : shards_) {
    ShardCounters& c = sp->stats;
    for (std::atomic<std::uint64_t>* a :
         {&c.puts, &c.deletes, &c.scans, &c.multiput_keys,
          &c.batched_writes}) {
      a->store(0, std::memory_order_relaxed);
    }
    for (ReadStripe& rs : c.read) {
      for (std::atomic<std::uint64_t>* a :
           {&rs.gets, &rs.hits, &rs.optimistic_hits, &rs.optimistic_retries,
            &rs.read_latch_acquires, &rs.starvation_fallbacks,
            &rs.scan_optimistic_hits, &rs.scan_optimistic_retries}) {
        a->store(0, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace rwd
