// Shard-partitioning policies for RewindKV: how a key picks its shard.
#ifndef REWIND_KV_PARTITIONER_H_
#define REWIND_KV_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/hash.h"

namespace rwd {

/// Shard layout of a RewindKV store. The choice is recorded in the
/// persistent shard directory at creation and enforced on re-attach.
enum class ShardLayout : std::uint64_t {
  /// Keys scatter via Mix64(key) % shards: adjacent keys spread across
  /// shards (write balance), so an ordered scan must merge all shards.
  kHash = 0,
  /// Each shard owns one contiguous key range: an ordered scan visits
  /// shards one at a time in key order, never latching more than one.
  kRange = 1,
};

/// Pluggable key -> shard policy. Implementations are immutable after
/// construction and safe to call from any thread.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual std::size_t ShardOf(std::uint64_t key) const = 0;
  /// True when shard order equals key order (every key in shard i sorts
  /// before every key in shard i+1) — the property range scans exploit.
  virtual bool ordered() const = 0;
  /// Smallest key shard `shard` owns (range layout; 0 under hash, where
  /// ownership is not contiguous).
  virtual std::uint64_t LowerBound(std::size_t shard) const = 0;
  virtual ShardLayout layout() const = 0;
  virtual std::size_t shards() const = 0;
};

/// The seed-era layout: Mix64 scatter. Balanced under any key pattern,
/// order-free.
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(std::size_t shards) : shards_(shards) {}
  std::size_t ShardOf(std::uint64_t key) const override {
    return Mix64(key) % shards_;
  }
  bool ordered() const override { return false; }
  std::uint64_t LowerBound(std::size_t) const override { return 0; }
  ShardLayout layout() const override { return ShardLayout::kHash; }
  std::size_t shards() const override { return shards_; }

 private:
  std::size_t shards_;
};

/// Range layout: shard i owns [lower_bounds[i], lower_bounds[i+1]), the
/// last shard extending to the top of the valid key space. Bounds are
/// fixed at store creation (an even split of [1, range_max_key]) and
/// persisted per shard in the NVM shard directory, so a re-attached store
/// reconstructs the exact same ownership regardless of the attaching
/// config. Keys above the creation-time ceiling all land in the last
/// shard — legal, merely unbalanced.
class RangePartitioner final : public Partitioner {
 public:
  /// `lower_bounds` must be non-empty and ascending with
  /// lower_bounds[0] == 1 (the smallest valid key).
  explicit RangePartitioner(std::vector<std::uint64_t> lower_bounds)
      : lower_bounds_(std::move(lower_bounds)) {}

  /// Even split of the valid keys [1, range_max_key] across `shards`.
  static std::unique_ptr<RangePartitioner> EvenSplit(
      std::size_t shards, std::uint64_t range_max_key) {
    if (range_max_key < shards) range_max_key = shards;
    std::vector<std::uint64_t> lo(shards);
    std::uint64_t width = range_max_key / shards;
    for (std::size_t i = 0; i < shards; ++i) lo[i] = 1 + i * width;
    return std::make_unique<RangePartitioner>(std::move(lo));
  }

  std::size_t ShardOf(std::uint64_t key) const override {
    // Last bound <= key; keys below lower_bounds[0] clamp to shard 0.
    std::size_t lo = 0, hi = lower_bounds_.size();
    while (hi - lo > 1) {
      std::size_t mid = lo + (hi - lo) / 2;
      if (lower_bounds_[mid] <= key) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  bool ordered() const override { return true; }
  std::uint64_t LowerBound(std::size_t shard) const override {
    return lower_bounds_[shard];
  }
  ShardLayout layout() const override { return ShardLayout::kRange; }
  std::size_t shards() const override { return lower_bounds_.size(); }

 private:
  std::vector<std::uint64_t> lower_bounds_;
};

}  // namespace rwd

#endif  // REWIND_KV_PARTITIONER_H_
