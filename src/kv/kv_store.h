// RewindKV: an embedded, sharded, crash-recoverable key-value store built
// on the REWIND runtime — the paper's motivating use-case of co-designing
// application data structures with recoverable logging (the TPC-C
// "Opt. Data Structure D.Log" co-design, Fig. 11), grown into a reusable
// serving-store subsystem.
#ifndef REWIND_KV_KV_STORE_H_
#define REWIND_KV_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/hash.h"
#include "src/core/runtime.h"
#include "src/core/store_txn.h"
#include "src/kv/partitioner.h"
#include "src/obs/metrics.h"
#include "src/structures/btree.h"
#include "src/structures/phash.h"
#include "src/structures/storage_ops.h"

namespace rwd {

namespace repl {
class ReplicationLog;
}  // namespace repl

/// Configuration of a RewindKV instance.
struct KvConfig {
  /// REWIND configuration shared by every shard (log layout, policy, NVM).
  RewindConfig rewind;
  /// Number of shards; each shard owns one Runtime log partition (the
  /// paper's distributed log) plus its own primary and secondary index.
  /// One extra partition is created for the two-phase commit coordinator's
  /// decision log (StoreTxn).
  std::size_t shards = 4;
  /// Period of the per-shard checkpoint daemons; 0 leaves them off (the
  /// caller can checkpoint explicitly or start daemons later).
  std::uint32_t checkpoint_period_ms = 0;
  /// Initial capacity of each shard's secondary hash index.
  std::size_t secondary_initial_capacity = 64;
  /// Seqlock fast path for Get: probe the secondary index latch-free and
  /// validate the shard's sequence counter afterwards, so the dominant
  /// read-mostly op never touches the shard latch's cacheline. Reads fall
  /// back to the shared latch after repeated validation conflicts.
  bool optimistic_reads = true;
  /// Width of the store's shared fan-out pool (WorkPool), counting the
  /// calling thread: ApplyBatch's per-shard apply loops and StoreTxn's
  /// two-phase-commit prepare/END phases all fan out on it. 0 sizes it
  /// automatically from the shard count and the hardware, 1 forces the
  /// sequential (pre-fan-out) pipeline.
  std::size_t prepare_threads = 0;
  /// Writer-starvation guard for the latch-free read path: once this many
  /// consecutive optimistic attempts on one shard have failed validation
  /// (a reader burst spinning against back-to-back writers), readers skip
  /// straight to the shared latch until a read completes cleanly. 0
  /// disables the guard.
  std::uint32_t starvation_retry_limit = 16;
  /// Coordinator decision records consumed by committed 2PC transactions
  /// are erased lazily in batches of this size (StoreTxn); <= 1 restores
  /// the eager erase-per-commit behaviour.
  std::size_t decision_truncate_batch = 32;
  /// How keys map to shards (see partitioner.h). kHash scatters adjacent
  /// keys for write balance; kRange gives each shard a contiguous key
  /// range so scans stream one shard at a time. The layout is persisted in
  /// the shard directory; Open() refuses a mismatching config.
  ShardLayout shard_layout = ShardLayout::kHash;
  /// Range layout only: ceiling of the expected key space, split evenly
  /// across shards at creation ([1, range_max_key]). Keys above it are
  /// legal but all land in the last shard.
  std::uint64_t range_max_key = 1u << 20;
};

/// Per-shard operation counters (volatile; reset by ResetStats()).
struct KvShardStats {
  std::uint64_t puts = 0;
  std::uint64_t gets = 0;
  std::uint64_t hits = 0;  ///< gets that found the key
  std::uint64_t deletes = 0;
  std::uint64_t scans = 0;
  std::uint64_t multiput_keys = 0;
  std::uint64_t batched_writes = 0;  ///< ops applied through ApplyBatch
  std::uint64_t keys = 0;  ///< live keys (snapshot; filled by shard_stats())
  // --- concurrent read path ---
  std::uint64_t optimistic_hits = 0;     ///< Gets served latch-free
  std::uint64_t optimistic_retries = 0;  ///< seqlock validation conflicts
  std::uint64_t read_latch_acquires = 0; ///< shared-mode latch acquisitions
  std::uint64_t starvation_fallbacks = 0;  ///< reads that skipped the
                                           ///< optimistic path (guard hit)
  std::uint64_t scan_optimistic_hits = 0;  ///< per-shard sub-scans served
                                           ///< latch-free (range layout)
  std::uint64_t scan_optimistic_retries = 0;  ///< sub-scan seqlock conflicts
};

/// One write in an ApplyBatch group commit: a put or a delete, plus the
/// per-op outcome the caller acks from.
struct KvWriteOp {
  enum class Kind : std::uint8_t { kPut, kDelete };
  Kind kind = Kind::kPut;
  std::uint64_t key = 0;
  std::string value;  ///< puts only
  /// Out: true when the op took effect (put applied / delete found the
  /// key). Invalid keys leave it false without poisoning the batch.
  bool applied = false;
};

/// An embedded key-value store mapping non-zero 64-bit keys to byte-string
/// values. Keys map onto N shards through a pluggable Partitioner — hashed
/// (default) or range-partitioned (KvConfig::shard_layout); each shard
/// pairs a recoverable
/// B+-tree primary index (ordered, drives Scan) with a recoverable hash
/// table secondary index (O(1), drives Get), both updated atomically in ONE
/// REWIND transaction on the shard's own log partition — multi-structure
/// atomicity is exactly what the REWIND transaction manager provides and
/// ad-hoc persistence cannot.
///
/// Values live in immutable NVM buffers written off-line (InitStore) and
/// published by the logged index updates, so an overwrite is one logged
/// pointer swing and the old buffer is deferred-freed — the same
/// publish-then-swing idiom the B+-tree uses for splits.
///
/// Thread safety — the latch hierarchy, top down:
///   1. Readers first try the *optimistic* path: no latch at all. A
///      per-shard seqlock (even = stable, odd = writer in progress) is read,
///      the secondary index probed and the value copied with relaxed atomic
///      loads, and the seqlock re-validated; any conflict discards the
///      attempt. Correct because writers drain the Batch WAL deferral
///      before re-evening the counter, and freed buffers stay mapped (a
///      racy probe reads garbage, never faults, and is always discarded).
///   2. On conflict (or when KvConfig::optimistic_reads is off) Get — and
///      scans' per-shard sub-walks — take the shard latch in *shared*
///      mode: readers run concurrently with each other and exclude only
///      writers. (Range-layout scans first try an optimistic
///      seqlock-validated leaf snapshot per shard, the scan analogue of
///      path 1; see Scan.)
///   3. Writers (Put/Delete/MultiPut/ApplyBatch) take their shards'
///      latches *exclusive* and bump the seqlock around the mutation.
/// Hash-layout Scan / MultiPut / ApplyBatch / CrashAndRecover latch all
/// involved shards in ascending shard order (shard-ordered acquisition, so
/// they cannot deadlock against each other; shared and exclusive
/// acquisitions of the same ordered set cannot either). Range-layout scans
/// latch at most ONE shard at a time, so they order trivially.
///
/// Valid keys are [1, 2^64-2]: 0 and ~0 are the secondary index's empty and
/// tombstone sentinels. Operations on invalid keys return false.
class KvStore {
 public:
  explicit KvStore(const KvConfig& config);
  ~KvStore();

  /// Re-attaches to the file-backed store a previous process created with
  /// `config.rewind.nvm.heap_file` set (a *real* restart, not the
  /// in-process CrashAndRecover()): reopens the heap at its recorded base
  /// address, recovers every shard's log partition plus the coordinator
  /// decision log, and re-binds each shard's B+-tree and hash index from
  /// the persistent shard directory. `config` must match the creating
  /// configuration (shards, log layout, policy, heap size — all checked
  /// against the heap catalog's fingerprint). Throws HeapAttachError with
  /// a descriptive message on any mismatch; never attaches garbage.
  static std::unique_ptr<KvStore> Open(const std::string& heap_file,
                                       KvConfig config);

  KvStore(const KvStore&) = delete;
  KvStore& operator=(const KvStore&) = delete;

  /// Inserts or overwrites one key in a single shard-local transaction.
  /// Returns false (and does nothing) for an invalid key.
  bool Put(std::uint64_t key, std::string_view value);

  /// Reads a key's value into `*value_out` (may be null). Returns presence.
  bool Get(std::uint64_t key, std::string* value_out);

  /// Removes a key (primary, secondary and value buffer in one
  /// transaction). Returns presence.
  bool Delete(std::uint64_t key);

  /// Ordered scan: visits up to `max_items` live (key, value) pairs with
  /// key >= from_key in ascending key order, stopping early when `fn`
  /// returns false. The string_view is only valid during the callback.
  /// Returns the number of pairs visited (a pair whose callback returned
  /// false still counts — it was delivered).
  ///
  /// Consistency depends on the layout:
  ///  - kHash: every shard is latched (shared, ascending order) at the
  ///    start and items come off a bounded k-way merge of per-shard
  ///    cursors; a shard's latch is dropped as soon as its cursor
  ///    exhausts. The callback sees ONE consistent cut across the whole
  ///    store (a cross-shard MultiPut is all-new or all-old).
  ///  - kRange: shards are visited one at a time in key order — never
  ///    more than one latch held, no merge buffer — and short sub-scans
  ///    go through an optimistic seqlock-validated leaf snapshot that
  ///    skips even the shared latch. Each shard's segment is internally
  ///    consistent (PER-SHARD cut), but a write landing between shard
  ///    visits can appear mid-scan; a cross-shard group can be observed
  ///    partially applied across segment boundaries.
  std::size_t Scan(
      std::uint64_t from_key, std::size_t max_items,
      const std::function<bool(std::uint64_t, std::string_view)>& fn);

  /// Outcome of one ScanPage call.
  struct ScanPageResult {
    std::size_t visited = 0;  ///< pairs delivered to `fn`
    /// Key to resume from when `more`: the first pair past max_items, or
    /// the pair whose callback returned false (a resume RE-delivers it —
    /// the callback declining an item means it did not consume it).
    std::uint64_t next_key = 0;
    bool more = false;  ///< pairs (possibly) remain at/after next_key
  };

  /// The incremental core Scan is built on: same ordering/consistency/
  /// counting contract, but reports where to resume — the primitive behind
  /// the server's chunked SCAN_STREAM and the buffered scan's truncation
  /// trailer.
  ScanPageResult ScanPage(
      std::uint64_t from_key, std::size_t max_items,
      const std::function<bool(std::uint64_t, std::string_view)>& fn);

  /// Applies every (key, value) pair, grouped into one transaction per
  /// involved shard, with all involved shards latched for the duration:
  /// concurrent readers see either none or all of the batch. The involved
  /// shards commit through the store's two-phase pipeline (StoreTxn), so
  /// the whole batch is crash-atomic ACROSS shards: a crash at any
  /// persistence event recovers to all of the batch or none of it. Ends
  /// with one store-wide durability fence. Returns false (and applies
  /// nothing) if any key is invalid. Later duplicates of a key win.
  bool MultiPut(const std::vector<std::pair<std::uint64_t, std::string>>& kvs);

  /// Group commit: applies a heterogeneous batch of puts and deletes —
  /// typically coalesced from many client connections by RewindServe's
  /// batcher — as ONE transaction per involved shard, with all involved
  /// shards latched in ascending shard order for the duration, committed
  /// through the same two-phase pipeline as MultiPut (one atomic decision
  /// for the whole batch, not N independent shard transactions), then one
  /// store-wide durability fence (Runtime::CommitFence). The batch is
  /// crash-atomic across every involved shard, and the logging/ordering
  /// cost is paid once per shard per batch instead of once per op. Ops
  /// apply in submission order within each shard (later writes to a key
  /// win, a delete after a put in the same batch deletes). Each op's
  /// `applied` field reports its outcome; invalid keys fail individually.
  void ApplyBatch(std::vector<KvWriteOp>& ops);

  /// Simulates a whole-store power failure and recovers every shard's
  /// partition (paper Section 4.5), then restarts the checkpoint daemons
  /// if the config enabled them. Committed transactions survive; in-flight
  /// ones roll back.
  void CrashAndRecover(double evict_probability = 0.0, std::uint64_t seed = 0);

  /// Starts one checkpoint daemon per shard (independent cadences on
  /// independent log partitions). Stop with StopCheckpointDaemons().
  void StartCheckpointDaemons(std::uint32_t period_ms);
  void StopCheckpointDaemons();

  /// Checkpoints one shard's log partition.
  void CheckpointShard(std::size_t shard);

  std::size_t shards() const { return shards_.size(); }
  std::size_t ShardOf(std::uint64_t key) const {
    // Devirtualized hash fast path: ShardOf sits on the latch-free Get
    // path, where an indirect call is measurable at millions of ops/s.
    if (config_.shard_layout == ShardLayout::kHash) {
      return HashKey(key) % shards_.size();
    }
    return partitioner_->ShardOf(key);
  }
  const Partitioner& partitioner() const { return *partitioner_; }

  /// Total live keys across all shards.
  std::uint64_t Size();

  /// Snapshot of one shard's counters (keys filled from the primary index).
  KvShardStats shard_stats(std::size_t shard);
  void ResetStats();

  /// Participants currently in the PREPARED state of a two-phase commit
  /// (a gauge; nonzero only while a cross-shard commit is in flight).
  std::uint64_t prepared_txns() const { return store_txn_->prepared_now(); }

  /// ApplyBatch calls whose per-shard apply loops ran fanned out across
  /// the shared worker pool (the STATS v2 `kv.parallel_applies` counter;
  /// zero while the crash injector forces the sequential path).
  std::uint64_t parallel_applies() const {
    return parallel_applies_.load(std::memory_order_relaxed);
  }

  /// Live bytes in one shard's log partition (record count × record size).
  std::uint64_t ShardLogBytes(std::size_t shard) {
    return runtime_->tm(shard).LogSize() * sizeof(LogRecord);
  }

  StoreTxn& store_txn() { return *store_txn_; }
  Runtime& runtime() { return *runtime_; }

  // --- RewindRepl leader hook ---

  /// Attaches a replication log: from now on every committed write
  /// (Put/Delete/MultiPut/ApplyBatch) publishes one record while the
  /// involved shard latches are still held, so per-key record order
  /// matches commit order and the record's gtid exists before the write
  /// is acked. Pass nullptr to detach. Not thread-safe against in-flight
  /// writes — attach before serving traffic (or while quiesced).
  void SetReplicationLog(repl::ReplicationLog* log) { repl_log_ = log; }
  repl::ReplicationLog* replication_log() const { return repl_log_; }
  /// gtid of the most recently published record (0 before the first, or
  /// with no log attached). For the single-committer batcher this is the
  /// gtid of the batch ApplyBatch just applied.
  std::uint64_t replication_gtid() const {
    return last_pub_gtid_.load(std::memory_order_acquire);
  }

  /// True when the emulated NVM device is backed by a heap file (the store
  /// survives real process exits; see Open()).
  bool file_backed() { return runtime_->nvm().heap().file_backed(); }
  /// Heap bytes currently handed out by the NVM allocator.
  std::uint64_t heap_live_bytes() {
    return runtime_->nvm().heap().live_bytes();
  }
  /// Arena high watermark (next never-allocated offset; persisted in the
  /// catalog and used for the conservative allocator rebuild on attach).
  std::uint64_t heap_high_watermark() {
    return runtime_->nvm().heap().high_watermark();
  }

 private:
  /// Persistent shard directory, reachable from the heap catalog's
  /// "kv_dir" root: how many shards the store was created with, the shard
  /// layout, and, per shard, the anchors of its primary and secondary
  /// index plus (range layout) the lower bound of the key range it owns —
  /// so a re-attached store reconstructs the exact creation-time
  /// partitioning. The log partition mapping is positional (shard i ==
  /// Runtime partition i, coordinator last), recorded by the Runtime's own
  /// "tm<i>" roots.
  struct ShardDirEntry {
    std::uint64_t primary;    // BTree header
    std::uint64_t secondary;  // PHash anchor
    std::uint64_t range_lo;   // smallest owned key (0 under hash layout)
  };
  struct ShardDir {
    std::uint64_t shard_count;
    std::uint64_t layout;  // ShardLayout, as persisted word
    ShardDirEntry entries[];  // flexible array member
  };

  /// Attach body of Open().
  KvStore(const KvConfig& config, Runtime::OpenMode open);

  /// Read-path counters, striped per thread (obs::ThreadStripe) so the
  /// latch-free Get fast path bumps a thread-private cacheline instead of
  /// a shard-shared one — with 8+ reader threads the shared stats line was
  /// the hottest contended line left on the read path (PR 5 follow-up).
  /// The eight counters exactly fill one 64-byte line per stripe.
  struct alignas(64) ReadStripe {
    std::atomic<std::uint64_t> gets{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> optimistic_hits{0};
    std::atomic<std::uint64_t> optimistic_retries{0};
    std::atomic<std::uint64_t> read_latch_acquires{0};
    std::atomic<std::uint64_t> starvation_fallbacks{0};
    std::atomic<std::uint64_t> scan_optimistic_hits{0};
    std::atomic<std::uint64_t> scan_optimistic_retries{0};
  };

  /// Per-shard counters. Write-side counters stay single relaxed atomics
  /// (writers hold the exclusive latch — serialized anyway); read-side
  /// counters live in the stripes above and are summed by shard_stats().
  struct ShardCounters {
    std::atomic<std::uint64_t> puts{0};
    std::atomic<std::uint64_t> deletes{0};
    std::atomic<std::uint64_t> scans{0};
    std::atomic<std::uint64_t> multiput_keys{0};
    std::atomic<std::uint64_t> batched_writes{0};
    ReadStripe read[obs::kStripes];
  };

  struct alignas(64) Shard {
    std::unique_ptr<RewindOps> ops;
    std::unique_ptr<BTree> primary;
    std::unique_ptr<PHash> secondary;
    /// Reader-writer latch: Get (fallback) and Scan shared, writers
    /// exclusive.
    std::shared_mutex mu;
    /// Seqlock for the latch-free read path: even = stable, odd = a writer
    /// is mutating. Bumped (odd, then even) around every mutation while
    /// the exclusive latch is held; re-evened by CrashAndRecover for
    /// writers that died mid-bump to a simulated power failure.
    std::atomic<std::uint64_t> seq{0};
    /// Consecutive failed optimistic-read attempts on this shard since
    /// the last clean read; drives the writer-starvation guard. Shared
    /// across readers, but only written when nonzero or on a conflict —
    /// the uncontended fast path just reads it.
    std::atomic<std::uint32_t> consec_retries{0};
    ShardCounters stats;
  };

  /// Seqlock writer protocol. Begin: the odd bump must become visible
  /// before any of the mutation's data stores (release fence = StoreStore
  /// barrier), so a reader that observed new data cannot miss the odd
  /// counter. End: release increment pairing with readers' acquire load.
  static void WriteBegin(Shard& s) {
    s.seq.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
  }
  static void WriteEnd(Shard& s) {
    s.seq.fetch_add(1, std::memory_order_release);
  }

  /// One latch-free Get attempt. Returns false on a seqlock conflict
  /// (caller retries or falls back); on true, `*found` and `*value_out`
  /// carry a validated result.
  bool TryOptimisticGet(Shard& s, std::uint64_t key, std::string* value_out,
                        bool* found) const;

  /// Range-layout page: shards visited in key order, at most one latched.
  ScanPageResult ScanPageRange(
      std::uint64_t from_key, std::size_t max_items,
      const std::function<bool(std::uint64_t, std::string_view)>& fn);
  /// Hash-layout page: all-shard shared latch + bounded k-way cursor merge
  /// (global consistent cut; exhausted shards' latches drop early).
  ScanPageResult ScanPageHash(
      std::uint64_t from_key, std::size_t max_items,
      const std::function<bool(std::uint64_t, std::string_view)>& fn);

  /// One latch-free sub-scan attempt on shard `s` (range layout): leaf
  /// snapshot with relaxed loads, value copies, then seqlock validation.
  /// On success `*out` holds up to max_items validated pairs and
  /// *shard_more says whether the shard has further keys. Returns false on
  /// a seqlock conflict or an aborted walk (caller retries or latches).
  bool TryOptimisticSubScan(
      Shard& s, std::uint64_t from_key, std::size_t max_items,
      std::vector<std::pair<std::uint64_t, std::string>>* out,
      bool* shard_more, std::uint64_t* shard_next) const;

  static bool ValidKey(std::uint64_t key) {
    return key != 0 && key != ~std::uint64_t{0};
  }
  /// Decorrelates shard choice from key order so range-adjacent keys
  /// spread across shards.
  static std::uint64_t HashKey(std::uint64_t k) { return Mix64(k); }

  /// Writes `value` into a fresh off-line NVM buffer ([size][bytes...])
  /// and returns it published-but-unreachable; the caller links it in with
  /// logged index updates.
  static std::uint64_t* NewValueBuffer(StorageOps* ops,
                                       std::string_view value);

  /// Put body inside the shard's already-open transaction. Overwrites take
  /// the fast path: one secondary-index probe (PHash::UpsertOp) and one
  /// B+-tree descent (UpdatePayloadWords) instead of two of each.
  void PutInOp(Shard& s, std::uint64_t key, std::string_view value);

  /// Delete body inside the shard's already-open transaction; returns
  /// presence.
  bool DeleteInOp(Shard& s, std::uint64_t key);

  /// Unlinks a key already located at `ptr` inside the open transaction:
  /// primary remove, secondary erase, value buffer deferred-free.
  void EraseInOp(Shard& s, std::uint64_t key, std::uint64_t ptr);

  /// Commits the involved shards' open transactions: one shard commits
  /// directly, several go through the two-phase pipeline.
  void CommitInvolved(const std::vector<std::size_t>& involved);

  /// Publishes a committed write batch to the attached replication log
  /// (no-op without one). Must run with the involved shard latches held.
  void PublishRepl(const std::vector<KvWriteOp>& ops);

  KvConfig config_;
  std::unique_ptr<Partitioner> partitioner_;
  std::unique_ptr<Runtime> runtime_;
  /// Shared fan-out workers (declared before store_txn_: StoreTxn borrows
  /// the pool, so it must be destroyed after it).
  std::unique_ptr<WorkPool> work_pool_;
  std::unique_ptr<StoreTxn> store_txn_;
  std::vector<std::unique_ptr<Shard>> shards_;
  repl::ReplicationLog* repl_log_ = nullptr;
  std::atomic<std::uint64_t> last_pub_gtid_{0};
  std::atomic<std::uint64_t> parallel_applies_{0};
};

}  // namespace rwd

#endif  // REWIND_KV_KV_STORE_H_
