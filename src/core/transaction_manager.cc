#include "src/core/transaction_manager.h"

#include <algorithm>
#include <cassert>

#include "src/log/batch_log.h"
#include "src/log/simple_log.h"
#include "src/obs/metrics.h"

namespace rwd {

namespace {
constexpr std::uint64_t kUndoAll = ~std::uint64_t{0};
}

TransactionManager::TransactionManager(NvmManager* nvm,
                                       const RewindConfig& config,
                                       void* attach_anchor)
    : nvm_(nvm), config_(config) {
  if (config_.two_layer()) {
    // Two-layer logging: the AAVLT indexes user records and logs its own
    // maintenance to a private optimized bucket log (paper Section 3.4).
    index_ = std::make_unique<Aavlt>(nvm_, config_.bucket_capacity,
                                     static_cast<AavltAnchor*>(attach_anchor));
  } else {
    auto* control = static_cast<Adll::Control*>(attach_anchor);
    switch (config_.log_impl) {
      case LogImpl::kSimple:
        log_ = std::make_unique<SimpleLog>(nvm_, control);
        break;
      case LogImpl::kOptimized:
        log_ = std::make_unique<BucketLog>(nvm_, config_.bucket_capacity,
                                           /*group_size=*/0, control);
        break;
      case LogImpl::kBatch:
        log_ = std::make_unique<BatchLog>(nvm_, config_.bucket_capacity,
                                          config_.batch_group_size, control);
        break;
    }
    if (auto* bl = dynamic_cast<BucketLog*>(log_.get());
        bl != nullptr && bl->batch()) {
      bl->set_group_flush_callback([this] { FlushPendingWrites(); });
    }
  }
}

TransactionManager::~TransactionManager() = default;

std::uint32_t TransactionManager::Begin() {
  std::uint32_t tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  if (config_.two_layer()) {
    std::lock_guard<std::mutex> lock(latch_);
    table_.Touch(tid).status = TxnStatus::kRunning;
  }
  return tid;
}

LogRecord* TransactionManager::MakeRecord(LogRecordType type,
                                          std::uint32_t tid,
                                          std::uint64_t addr,
                                          std::uint64_t old_value,
                                          std::uint64_t new_value,
                                          std::uint64_t undo_next,
                                          std::uint16_t flags) {
  LogRecord local{};
  local.lsn = next_lsn_++;
  local.tid = tid;
  local.type = type;
  local.flags = flags;
  local.addr = addr;
  local.old_value = old_value;
  local.new_value = new_value;
  local.undo_next_lsn = undo_next;
  auto* rec = static_cast<LogRecord*>(nvm_->Alloc(sizeof(LogRecord)));
  if (!config_.two_layer() && config_.log_impl == LogImpl::kBatch) {
    // Batch: the record is persisted by the covering group flush.
    nvm_->StoreObject(rec, local);
  } else {
    // Simple/Optimized/2L: persist the record, then fence so its fields
    // have reached NVM before it becomes reachable (paper Section 4.2).
    nvm_->StoreNTObject(rec, local);
    nvm_->Fence();
  }
  return rec;
}

void TransactionManager::AppendLocked(LogRecord* rec) {
  if (config_.two_layer()) {
    index_->Insert(rec);
    auto& e = table_.Touch(rec->tid);
    e.last_lsn = rec->lsn;
  } else {
    log_->Append(rec);
  }
  ++stats_.records_logged;
}

void TransactionManager::ApplyWriteLocked(std::uint64_t* addr,
                                          std::uint64_t value) {
  bool batch = !config_.two_layer() && config_.log_impl == LogImpl::kBatch;
  if (batch) {
    // The WAL protocol holds the user write back until its log record is
    // persistent; the group-flush callback releases it.
    pending_writes_.push_back({addr, value});
    pending_count_.store(pending_writes_.size(), std::memory_order_release);
  } else if (config_.force()) {
    nvm_->StoreNT(addr, value);
  } else {
    nvm_->Store(addr, value);
  }
}

void TransactionManager::FlushPendingWrites() {
  for (const PendingWrite& w : pending_writes_) {
    if (config_.force()) {
      nvm_->StoreNT(w.addr, w.value);
    } else {
      nvm_->Store(w.addr, w.value);
    }
  }
  pending_writes_.clear();
  // Release: a reader observing 0 must also observe the stores above.
  pending_count_.store(0, std::memory_order_release);
}

void TransactionManager::Log(std::uint32_t tid, std::uint64_t* addr,
                             std::uint64_t old_value,
                             std::uint64_t new_value) {
  std::lock_guard<std::mutex> lock(latch_);
  LogRecord* rec = MakeRecord(
      LogRecordType::kUpdate, tid, reinterpret_cast<std::uint64_t>(addr),
      old_value, new_value, 0, LogRecord::kFlagUndoable);
  AppendLocked(rec);
}

void TransactionManager::Write(std::uint32_t tid, std::uint64_t* addr,
                               std::uint64_t value) {
  std::lock_guard<std::mutex> lock(latch_);
  // Read-your-writes: the current value may still be parked in the Batch
  // deferral buffer.
  std::uint64_t old_value = *addr;
  for (auto it = pending_writes_.rbegin(); it != pending_writes_.rend();
       ++it) {
    if (it->addr == addr) {
      old_value = it->value;
      break;
    }
  }
  LogRecord* rec = MakeRecord(
      LogRecordType::kUpdate, tid, reinterpret_cast<std::uint64_t>(addr),
      old_value, value, 0, LogRecord::kFlagUndoable);
  AppendLocked(rec);
  ApplyWriteLocked(addr, value);
}

std::uint64_t TransactionManager::Read(const std::uint64_t* addr) const {
  if (config_.two_layer() || config_.log_impl != LogImpl::kBatch) {
    return RelaxedLoad64(addr);
  }
  // Lock-free when the deferral buffer is empty — the steady state for
  // every thread but a writer inside its own critical section (commit,
  // prepare and rollback all drain the buffer before returning).
  if (pending_count_.load(std::memory_order_acquire) == 0) {
    return RelaxedLoad64(addr);
  }
  std::lock_guard<std::mutex> lock(latch_);
  for (auto it = pending_writes_.rbegin(); it != pending_writes_.rend();
       ++it) {
    if (it->addr == addr) return it->value;
  }
  return RelaxedLoad64(addr);
}

void TransactionManager::LogDelete(std::uint32_t tid, void* ptr) {
  std::lock_guard<std::mutex> lock(latch_);
  LogRecord* rec = MakeRecord(LogRecordType::kDelete, tid,
                              reinterpret_cast<std::uint64_t>(ptr), 0, 0, 0,
                              0);
  AppendLocked(rec);
}

std::vector<LogRecord*> TransactionManager::ChainRecordsLocked(
    std::uint32_t tid) const {
  std::vector<LogRecord*> recs;
  for (LogRecord* r = index_->ChainOf(tid); r != nullptr;
       r = r->hint.chain.tx_prev) {
    recs.push_back(r);
  }
  std::reverse(recs.begin(), recs.end());  // oldest first
  return recs;
}

void TransactionManager::FreeRecordLocked(LogRecord* rec) {
  nvm_->Free(rec);
}

void TransactionManager::ClearTransactionLocked(std::uint32_t tid,
                                                bool committed) {
  // Force-policy clearing (paper Sections 2, 4.6): remove this
  // transaction's records, END last, so that a crash mid-clear leads the
  // next attempt down exactly the same path.
  //
  // DELETE targets are freed only AFTER their record has durably left the
  // log (per record in 1L, after the atomic membership drop in 2L). The
  // other order is a use-after-free under concurrency: free the target
  // first and another shard's transaction may re-allocate the block before
  // this clear finishes; if a crash then lands mid-clear, the DELETE
  // record is still in the log, recovery replays the committed
  // de-allocation, and the replay frees the OTHER transaction's live
  // block. Removal-first turns that crash window into a bounded leak
  // (crash-leak semantics, paper Section 4.3) instead.
  std::vector<LogRecord*> to_free;
  std::vector<void*> delete_targets;
  LogRecord* end_rec = nullptr;
  if (config_.two_layer()) {
    std::vector<LogRecord*> recs = ChainRecordsLocked(tid);
    for (LogRecord* r : recs) {
      if (r->type == LogRecordType::kEnd) {
        end_rec = r;
      } else {
        if (r->type == LogRecordType::kDelete && committed) {
          delete_targets.push_back(reinterpret_cast<void*>(r->addr));
        }
        to_free.push_back(r);
      }
    }
    index_->RemoveTxn(tid);  // atomic: drops all membership at once
    table_.Erase(tid);
    for (void* target : delete_targets) nvm_->Free(target);
  } else {
    // One-layer logging keeps no per-transaction state, so clearing is a
    // full backward scan — this is exactly the commit-time cost that grows
    // with the number of skip records (paper Fig. 3, right).
    std::vector<LogRecord*> mine;
    log_->ForEachBackward([&](LogRecord* r) {
      if (r->tid == tid) mine.push_back(r);
      return true;
    });
    for (LogRecord* r : mine) {
      if (r->type == LogRecordType::kEnd) {
        end_rec = r;
        continue;
      }
      log_->Remove(r);
      if (r->type == LogRecordType::kDelete && committed) {
        nvm_->Free(reinterpret_cast<void*>(r->addr));
      }
      to_free.push_back(r);
    }
    if (end_rec != nullptr) log_->Remove(end_rec);
  }
  if (end_rec != nullptr) to_free.push_back(end_rec);
  for (LogRecord* r : to_free) FreeRecordLocked(r);
  if (auto* bl = dynamic_cast<BucketLog*>(log_.get())) bl->ReclaimBuckets();
}

void TransactionManager::Commit(std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(latch_);
  if (config_.force()) {
    // All user updates must be persistent *before* the END record is: under
    // the Batch log some may still be parked in the WAL deferral buffer, so
    // flush the open group (which releases them as NT stores) first. Then
    // fence, END, and clear this transaction's records (paper Section 4.3).
    if (log_) log_->Sync();
    nvm_->Fence();
    LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
    AppendLocked(end);
    if (log_) log_->Sync();
    ClearTransactionLocked(tid, /*committed=*/true);
  } else {
    LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
    AppendLocked(end);
    if (log_) log_->Sync();
    finished_txns_[tid] = true;
    if (config_.two_layer()) table_.Touch(tid).status = TxnStatus::kFinished;
  }
  ++stats_.commits;
}

void TransactionManager::RollbackLocked(std::uint32_t tid,
                                        std::uint64_t undo_horizon_lsn) {
  // Collect this transaction's undoable UPDATE records newest-first.
  std::vector<LogRecord*> updates;
  if (config_.two_layer()) {
    // Selective scan through the index (fast path; paper Section 4.4).
    for (LogRecord* r = index_->ChainOf(tid); r != nullptr;
         r = r->hint.chain.tx_prev) {
      if (r->type == LogRecordType::kUpdate && r->undoable() &&
          r->lsn < undo_horizon_lsn) {
        updates.push_back(r);
      }
    }
  } else {
    // One-layer: a full backward scan over the log, skipping interleaved
    // records of other transactions (the "skip records" cost).
    log_->ForEachBackward([&](LogRecord* r) {
      if (r->tid == tid && r->type == LogRecordType::kUpdate &&
          r->undoable() && r->lsn < undo_horizon_lsn) {
        updates.push_back(r);
      }
      return true;
    });
    std::sort(updates.begin(), updates.end(),
              [](const LogRecord* a, const LogRecord* b) {
                return a->lsn > b->lsn;
              });
  }
  for (LogRecord* r : updates) {
    // CLR first (logging the undo), then the compensating write. The CLR's
    // undo_next_lsn names the record it compensates: during recovery only
    // records older than the newest CLR's target still need undoing.
    LogRecord* clr =
        MakeRecord(LogRecordType::kClr, tid, r->addr, r->new_value,
                   r->old_value, r->lsn, 0);
    AppendLocked(clr);
    ApplyWriteLocked(reinterpret_cast<std::uint64_t*>(r->addr),
                     r->old_value);
  }
  if (config_.force()) {
    // The undos must be persistent before the rollback's END record is
    // (paper Section 4.4); release any Batch-deferred writes first.
    if (log_) log_->Sync();
    nvm_->Fence();
  }
}

void TransactionManager::Rollback(std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(latch_);
  LogRecord* marker =
      MakeRecord(LogRecordType::kRollback, tid, 0, 0, 0, 0, 0);
  AppendLocked(marker);
  if (config_.two_layer()) table_.Touch(tid).status = TxnStatus::kAborted;
  RollbackLocked(tid, kUndoAll);
  LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
  AppendLocked(end);
  if (log_) log_->Sync();
  if (config_.force()) {
    ClearTransactionLocked(tid, /*committed=*/false);
  } else {
    finished_txns_[tid] = false;
    if (config_.two_layer()) table_.Touch(tid).status = TxnStatus::kFinished;
  }
  ++stats_.rollbacks;
}

void TransactionManager::Prepare(std::uint32_t tid, std::uint64_t gtid) {
  std::lock_guard<std::mutex> lock(latch_);
  if (config_.force()) {
    // Exactly like Commit()'s force path: the user updates (some possibly
    // still parked in the Batch WAL deferral) must be persistent BEFORE
    // the prepare record can be — force-policy recovery has no redo, so a
    // durable TXN_PREPARE is a promise that the transaction's effects are
    // already all in NVM.
    if (log_) log_->Sync();
    nvm_->Fence();
  }
  LogRecord* rec = MakeRecord(LogRecordType::kTxnPrepare, tid, gtid, 0, 0,
                              0, 0);
  AppendLocked(rec);
  // Under no-force the records themselves carry the transaction (redo
  // replays them); a group flush makes them — and the prepare record —
  // reachable in append order, so a reachable TXN_PREPARE implies every
  // earlier record of the transaction is reachable too.
  if (log_) log_->Sync();
  nvm_->Fence();
  if (config_.two_layer()) {
    auto& e = table_.Touch(tid);
    e.status = TxnStatus::kPrepared;
    e.gtid = gtid;
  }
  ++stats_.prepares;
}

void TransactionManager::CommitPrepared(std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(latch_);
  // The user updates are already persistent (force) or re-creatable from
  // the persistent records (no-force redo) since Prepare(); only the END
  // and clearing remain.
  LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
  AppendLocked(end);
  if (log_) log_->Sync();
  if (config_.force()) {
    ClearTransactionLocked(tid, /*committed=*/true);
  } else {
    finished_txns_[tid] = true;
    if (config_.two_layer()) table_.Touch(tid).status = TxnStatus::kFinished;
  }
  ++stats_.commits;
}

void TransactionManager::RollbackPrepared(std::uint32_t tid) {
  Rollback(tid);
}

LogRecord* TransactionManager::LogDecision(std::uint64_t gtid, bool commit) {
  // Each decision gets its own tid so erasure maps onto per-transaction
  // removal in every log layout (2L removes the AAVLT chain by tid).
  std::uint32_t tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(latch_);
  LogRecord* rec = MakeRecord(
      commit ? LogRecordType::kTxnCommit : LogRecordType::kTxnAbort, tid,
      gtid, 0, 0, 0, 0);
  AppendLocked(rec);
  // The decision must be durable before any participant enters phase 2.
  if (log_) log_->Sync();
  nvm_->Fence();
  return rec;
}

void TransactionManager::EraseDecision(LogRecord* rec) {
  std::lock_guard<std::mutex> lock(latch_);
  EraseDecisionLocked(rec);
  if (auto* bl = dynamic_cast<BucketLog*>(log_.get())) bl->ReclaimBuckets();
}

void TransactionManager::EraseDecisions(const std::vector<LogRecord*>& recs) {
  if (recs.empty()) return;
  // One latch acquisition and one bucket-reclaim pass for the whole batch:
  // the presumed-commit retirement path (StoreTxn) erases decisions in
  // bulk, and paying the coarse-grained costs per record was most of what
  // the old per-commit erase round spent.
  std::lock_guard<std::mutex> lock(latch_);
  for (LogRecord* rec : recs) EraseDecisionLocked(rec);
  if (auto* bl = dynamic_cast<BucketLog*>(log_.get())) bl->ReclaimBuckets();
}

void TransactionManager::EraseDecisionLocked(LogRecord* rec) {
  if (config_.two_layer()) {
    index_->RemoveTxn(rec->tid);
    table_.Erase(rec->tid);
  } else {
    log_->Remove(rec);
  }
  FreeRecordLocked(rec);
}

void TransactionManager::ForEachRecordLocked(
    const std::function<bool(LogRecord*)>& fn) const {
  if (config_.two_layer()) {
    index_->ForEachTxn([&](std::uint64_t, LogRecord* tail) {
      for (LogRecord* r = tail; r != nullptr; r = r->hint.chain.tx_prev) {
        if (!fn(r)) return false;
      }
      return true;
    });
  } else {
    log_->ForEach(fn);
  }
}

bool TransactionManager::HasCommitDecision(std::uint64_t gtid) const {
  std::lock_guard<std::mutex> lock(latch_);
  bool found = false;
  ForEachRecordLocked([&](LogRecord* r) {
    if (r->type == LogRecordType::kTxnCommit && r->addr == gtid) {
      found = true;
      return false;  // stop
    }
    return true;
  });
  return found;
}

std::unordered_set<std::uint64_t>
TransactionManager::CollectCommitDecisions() {
  std::lock_guard<std::mutex> lock(latch_);
  RecoverLogStructure();
  std::unordered_set<std::uint64_t> decisions;
  ForEachRecordLocked([&](LogRecord* r) {
    if (r->type == LogRecordType::kTxnCommit) decisions.insert(r->addr);
    return true;
  });
  return decisions;
}

void TransactionManager::CommitNoClear(std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(latch_);
  if (log_) log_->Sync();
  nvm_->Fence();
  LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
  AppendLocked(end);
  if (log_) log_->Sync();
  finished_txns_[tid] = true;
  if (config_.two_layer()) table_.Touch(tid).status = TxnStatus::kFinished;
  ++stats_.commits;
}

void TransactionManager::Checkpoint() {
  // Timed from before the latch: what a checkpoint costs the system
  // includes the wait behind concurrent commits, not just the scan.
  static obs::Histogram* hist =
      obs::Registry::Get().GetHistogram("checkpoint.duration");
  static obs::Gauge* last = obs::Registry::Get().GetGauge("checkpoint.last_us");
  obs::ScopedTimer timer(hist, "checkpoint", last);
  std::lock_guard<std::mutex> lock(latch_);
  CheckpointLocked();
}

std::size_t TransactionManager::LogSize() const {
  std::lock_guard<std::mutex> lock(latch_);
  if (config_.two_layer()) {
    std::size_t n = 0;
    index_->ForEachTxn([&](std::uint64_t, LogRecord* tail) {
      for (LogRecord* r = tail; r != nullptr; r = r->hint.chain.tx_prev) ++n;
      return true;
    });
    return n;
  }
  return log_->size();
}

void TransactionManager::ForgetVolatileState() {
  std::lock_guard<std::mutex> lock(latch_);
  table_.Clear();
  pending_writes_.clear();
  pending_count_.store(0, std::memory_order_release);
  finished_txns_.clear();
  next_lsn_ = 1;
  next_tid_.store(1, std::memory_order_relaxed);
}

}  // namespace rwd
