// Store-level two-phase commit coordinator: turns N open shard
// transactions into ONE atomic, crash-recoverable decision.
//
// REWIND (the paper) makes each data structure's transaction crash-atomic
// on its own log; a store spanning several log partitions still risked
// applying a *prefix* of partitions when a crash landed between per-shard
// commits. StoreTxn closes that gap with the classic presumed-abort
// protocol, co-designed with the REWIND logs:
//
//   phase 1   every participant writes TXN_PREPARE (carrying the global
//             txn id) into its own partition and persists all its records
//   decision  the coordinator appends one TXN_COMMIT record to a dedicated
//             decision-log partition and fences — THE commit point
//   phase 2   every participant writes END (CommitPrepared); once all ENDs
//             are persistent the decision record is erased again
//
// Both logging phases touch independent per-partition logs, so a wide
// batch fans them out across a worker pool (the caller thread takes one
// participant itself; see WorkPool — shared with KvStore's per-shard
// apply fan-out) and joins before crossing into the next protocol step:
// cross-shard commit latency is max-of-shards instead of sum-of-shards,
// while the decision record keeps its place as the single serialization
// point. The protocol's crash-atomicity argument is untouched — it never
// depended on the order participants prepare in, only on "all prepares
// durable before the decision, all ENDs durable before the decision is
// erased", which the joins preserve.
//
// Decision retirement runs the *presumed-commit* variant: once the
// post-END fence has made every participant's END durable, the decision
// record is provably a recovery no-op (recovery treats a fully-ENDed
// decision as such and clears it), so the commit skips its own erase
// round entirely. Retired decisions accumulate on a backlog and are
// reclaimed `truncate_batch` at a time through ONE coordinator-latch
// acquisition (TransactionManager::EraseDecisions) instead of one
// latched erase (with its per-record log bookkeeping) per commit.
//
// Recovery (Runtime::RecoverAllPartitions) replays the contract: prepared
// transactions whose gtid has a persistent TXN_COMMIT are completed,
// everything else rolls back — so the whole multi-shard write is
// all-or-nothing no matter which persistence event the crash hit.
#ifndef REWIND_CORE_STORE_TXN_H_
#define REWIND_CORE_STORE_TXN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/work_pool.h"

namespace rwd {

/// Volatile counters exposed for stats/tests.
struct StoreTxnStats {
  std::uint64_t fast_commits = 0;       ///< single-participant fast path
  std::uint64_t two_phase_commits = 0;  ///< full prepare/decide/commit runs
  std::uint64_t prepared_now = 0;       ///< participants currently PREPARED
};

class StoreTxn {
 public:
  /// One open shard transaction taking part in a global commit.
  struct Participant {
    std::size_t partition = 0;  ///< Runtime log partition (shard index).
    std::uint32_t tid = 0;      ///< The shard-local transaction id.
  };

  /// The runtime must have been constructed with a coordinator partition;
  /// that partition's log holds only decision records.
  ///
  /// `pool_threads` sizes the prepare/commit fan-out: it is the total
  /// parallelism of a phase *including the calling thread*, so 1 forces
  /// the sequential pipeline (no pool at all) and 0 picks a width
  /// automatically (bounded by the participant count the runtime can ever
  /// produce and by the hardware). The pool also stands down whenever the
  /// crash injector is armed, keeping crash-sweep tests deterministic and
  /// delivering the injected CrashException on the calling thread.
  ///
  /// `shared_pool`, when non-null, is an externally owned WorkPool the
  /// phases fan out on instead of a private one (`pool_threads` is then
  /// ignored) — KvStore passes the pool its ApplyBatch apply loop already
  /// uses, so one set of workers serves the whole write pipeline.
  ///
  /// `truncate_batch` controls presumed-commit decision reclamation: the
  /// decision records of committed transactions are batched and erased
  /// `truncate_batch` at a time through one latched pass instead of one
  /// erase (with its log bookkeeping) per commit. <= 1 restores the eager
  /// per-commit erase; the eager path is also always used while the crash
  /// injector is armed (crash sweeps step through a deterministic
  /// persistence-event schedule). Lingering records are safe: recovery
  /// treats a decision whose participants all ENDed as a no-op and clears
  /// the log.
  explicit StoreTxn(Runtime* runtime, std::size_t pool_threads = 0,
                    std::size_t truncate_batch = 32,
                    WorkPool* shared_pool = nullptr);
  ~StoreTxn();

  StoreTxn(const StoreTxn&) = delete;
  StoreTxn& operator=(const StoreTxn&) = delete;

  /// Atomically commits the participants' open transactions. A single
  /// participant bypasses 2PC entirely (its shard transaction is already
  /// crash-atomic); several run the full prepare / decide / commit
  /// pipeline above, fanning each logging phase out across the pool. Both
  /// paths end with exactly one store-wide durability fence
  /// (Runtime::CommitFence), so callers ack right after this returns — no
  /// additional fence needed. The caller holds the shards' latches
  /// throughout, as KvStore's MultiPut/ApplyBatch do.
  void Commit(const std::vector<Participant>& participants);

  /// Rolls every participant back (no decision record needed: absence of
  /// TXN_COMMIT already means abort).
  void Abort(const std::vector<Participant>& participants);

  /// Number of participants currently sitting in the PREPARED state (the
  /// STATS gauge). Reset by ResetAfterCrash().
  std::uint64_t prepared_now() const {
    return prepared_now_.load(std::memory_order_relaxed);
  }
  std::uint64_t fast_commits() const {
    return fast_commits_.load(std::memory_order_relaxed);
  }
  std::uint64_t two_phase_commits() const {
    return two_phase_commits_.load(std::memory_order_relaxed);
  }
  /// Commits whose phases ran on the fan-out pool.
  std::uint64_t parallel_prepares() const {
    return parallel_prepares_.load(std::memory_order_relaxed);
  }
  /// Widest fan-out (participants of one parallel commit) seen so far.
  std::uint64_t max_prepare_fanout() const {
    return max_prepare_fanout_.load(std::memory_order_relaxed);
  }
  /// Total phase tasks executed by pool workers (excludes the caller's
  /// own share; test hook proving work actually ran off-thread). With a
  /// shared pool this counts every user of the pool, ApplyBatch included.
  std::uint64_t offloaded_tasks() const { return pool_->offloaded_tasks(); }

  /// Erases every backlogged consumed decision record now (tests, and
  /// graceful shutdown). Counts as one truncation when records flush.
  void FlushDecisionBacklog();
  /// Times the backlog has been flushed to the coordinator log (the
  /// STATS v2 `txn.decision_log_truncations` counter).
  std::uint64_t decision_log_truncations() const {
    return decision_truncations_.load(std::memory_order_relaxed);
  }
  /// 2PC commits that skipped their own decision-erase round because the
  /// post-END fence already made the decision a recovery no-op (the
  /// presumed-commit variant; STATS v2 `txn.presumed_commits`).
  std::uint64_t presumed_commits() const {
    return presumed_commits_.load(std::memory_order_relaxed);
  }
  /// Consumed decision records awaiting a batched erase.
  std::size_t decision_backlog() const;

  /// Clears the prepared gauge after a simulated power failure (the
  /// in-flight commit it counted no longer exists; recovery resolved it)
  /// and drops the decision backlog — recovery rebuilt the coordinator
  /// log, so the backlogged LogRecord pointers no longer name anything.
  void ResetAfterCrash();

 private:
  /// Consumes a committed transaction's decision record: eager erase, or
  /// presumed-commit (push onto the backlog, one wholesale latched erase
  /// every `truncate_batch_` commits).
  void RetireDecision(LogRecord* decision);
  /// Applies `fn` to every participant through the pool (see
  /// WorkPool::RunIndexed for the caller-participates/join/exception
  /// contract). Sequential when `parallel` is false.
  void ForEachParticipant(const std::vector<Participant>& participants,
                          bool parallel,
                          const std::function<void(const Participant&)>& fn);

  Runtime* runtime_;
  TransactionManager* coordinator_;
  std::atomic<std::uint64_t> next_gtid_{1};
  std::atomic<std::uint64_t> prepared_now_{0};
  std::atomic<std::uint64_t> fast_commits_{0};
  std::atomic<std::uint64_t> two_phase_commits_{0};
  std::atomic<std::uint64_t> parallel_prepares_{0};
  std::atomic<std::uint64_t> max_prepare_fanout_{0};
  std::atomic<std::uint64_t> presumed_commits_{0};

  // Presumed-commit decision reclamation.
  const std::size_t truncate_batch_;
  mutable std::mutex decisions_mu_;
  std::vector<LogRecord*> consumed_decisions_;
  std::atomic<std::uint64_t> decision_truncations_{0};

  // Fan-out pool: owned unless the constructor was handed a shared one.
  std::unique_ptr<WorkPool> owned_pool_;
  WorkPool* pool_;
};

}  // namespace rwd

#endif  // REWIND_CORE_STORE_TXN_H_
