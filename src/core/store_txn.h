// Store-level two-phase commit coordinator: turns N open shard
// transactions into ONE atomic, crash-recoverable decision.
//
// REWIND (the paper) makes each data structure's transaction crash-atomic
// on its own log; a store spanning several log partitions still risked
// applying a *prefix* of partitions when a crash landed between per-shard
// commits. StoreTxn closes that gap with the classic presumed-abort
// protocol, co-designed with the REWIND logs:
//
//   phase 1   every participant writes TXN_PREPARE (carrying the global
//             txn id) into its own partition and persists all its records
//   decision  the coordinator appends one TXN_COMMIT record to a dedicated
//             decision-log partition and fences — THE commit point
//   phase 2   every participant writes END (CommitPrepared); once all ENDs
//             are persistent the decision record is erased again
//
// Recovery (Runtime::RecoverAllPartitions) replays the contract: prepared
// transactions whose gtid has a persistent TXN_COMMIT are completed,
// everything else rolls back — so the whole multi-shard write is
// all-or-nothing no matter which persistence event the crash hit.
#ifndef REWIND_CORE_STORE_TXN_H_
#define REWIND_CORE_STORE_TXN_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/core/runtime.h"

namespace rwd {

/// Volatile counters exposed for stats/tests.
struct StoreTxnStats {
  std::uint64_t fast_commits = 0;       ///< single-participant fast path
  std::uint64_t two_phase_commits = 0;  ///< full prepare/decide/commit runs
  std::uint64_t prepared_now = 0;       ///< participants currently PREPARED
};

class StoreTxn {
 public:
  /// One open shard transaction taking part in a global commit.
  struct Participant {
    std::size_t partition = 0;  ///< Runtime log partition (shard index).
    std::uint32_t tid = 0;      ///< The shard-local transaction id.
  };

  /// The runtime must have been constructed with a coordinator partition;
  /// that partition's log holds only decision records.
  explicit StoreTxn(Runtime* runtime);

  StoreTxn(const StoreTxn&) = delete;
  StoreTxn& operator=(const StoreTxn&) = delete;

  /// Atomically commits the participants' open transactions. A single
  /// participant bypasses 2PC entirely (its shard transaction is already
  /// crash-atomic); several run the full prepare / decide / commit
  /// pipeline above. Both paths end with exactly one store-wide
  /// durability fence (Runtime::CommitFence), so callers ack right after
  /// this returns — no additional fence needed. The caller holds the
  /// shards' latches throughout, as KvStore's MultiPut/ApplyBatch do.
  void Commit(const std::vector<Participant>& participants);

  /// Rolls every participant back (no decision record needed: absence of
  /// TXN_COMMIT already means abort).
  void Abort(const std::vector<Participant>& participants);

  /// Number of participants currently sitting in the PREPARED state (the
  /// STATS gauge). Reset by ResetAfterCrash().
  std::uint64_t prepared_now() const {
    return prepared_now_.load(std::memory_order_relaxed);
  }
  std::uint64_t fast_commits() const {
    return fast_commits_.load(std::memory_order_relaxed);
  }
  std::uint64_t two_phase_commits() const {
    return two_phase_commits_.load(std::memory_order_relaxed);
  }

  /// Clears the prepared gauge after a simulated power failure (the
  /// in-flight commit it counted no longer exists; recovery resolved it).
  void ResetAfterCrash() {
    prepared_now_.store(0, std::memory_order_relaxed);
  }

 private:
  Runtime* runtime_;
  TransactionManager* coordinator_;
  std::atomic<std::uint64_t> next_gtid_{1};
  std::atomic<std::uint64_t> prepared_now_{0};
  std::atomic<std::uint64_t> fast_commits_{0};
  std::atomic<std::uint64_t> two_phase_commits_{0};
};

}  // namespace rwd

#endif  // REWIND_CORE_STORE_TXN_H_
