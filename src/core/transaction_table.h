// The transaction table (paper Section 4.1).
#ifndef REWIND_CORE_TRANSACTION_TABLE_H_
#define REWIND_CORE_TRANSACTION_TABLE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

namespace rwd {

/// Status of a transaction as tracked by the table.
enum class TxnStatus : std::uint8_t {
  kRunning,   ///< Active (or a loser found during analysis).
  kPrepared,  ///< TXN_PREPARE written; outcome owned by the coordinator.
  kAborted,   ///< Rollback in progress (a ROLLBACK record exists).
  kFinished,  ///< END record written (committed or fully rolled back).
};

/// Volatile transaction table. Constructed during recovery in every
/// configuration; additionally maintained during normal processing in the
/// two-layer configuration (paper Section 4.1). There is no dirty-page
/// table: NVM is byte-addressable.
class TransactionTable {
 public:
  struct Entry {
    TxnStatus status = TxnStatus::kRunning;
    std::uint64_t last_lsn = 0;       ///< Newest record of the transaction.
    std::uint64_t undo_next_lsn = 0;  ///< Next record to undo (2L rollback).
    std::uint64_t gtid = 0;  ///< Global txn id when prepared (0 otherwise).
  };

  Entry& Touch(std::uint32_t tid) { return map_[tid]; }
  Entry* Find(std::uint32_t tid) {
    auto it = map_.find(tid);
    return it == map_.end() ? nullptr : &it->second;
  }
  const Entry* Find(std::uint32_t tid) const {
    auto it = map_.find(tid);
    return it == map_.end() ? nullptr : &it->second;
  }
  void Erase(std::uint32_t tid) { map_.erase(tid); }
  void Clear() { map_.clear(); }
  std::size_t size() const { return map_.size(); }

  void ForEach(const std::function<void(std::uint32_t, Entry&)>& fn) {
    for (auto& [tid, entry] : map_) fn(tid, entry);
  }

 private:
  std::unordered_map<std::uint32_t, Entry> map_;
};

}  // namespace rwd

#endif  // REWIND_CORE_TRANSACTION_TABLE_H_
