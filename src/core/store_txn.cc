#include "src/core/store_txn.h"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "src/obs/metrics.h"

namespace rwd {
namespace {

/// 2PC phase histograms, created once on first commit. Function-local so
/// the registry is only touched when a store actually commits.
struct TxnMetrics {
  obs::Histogram* prepare = obs::Registry::Get().GetHistogram("txn.prepare");
  obs::Histogram* decision =
      obs::Registry::Get().GetHistogram("txn.decision");
  obs::Histogram* end = obs::Registry::Get().GetHistogram("txn.end");
  obs::Histogram* fence = obs::Registry::Get().GetHistogram("txn.fence");
  obs::Histogram* fast = obs::Registry::Get().GetHistogram("txn.fast_commit");
};

TxnMetrics& Metrics() {
  static TxnMetrics m;
  return m;
}

}  // namespace

StoreTxn::StoreTxn(Runtime* runtime, std::size_t pool_threads,
                   std::size_t truncate_batch, WorkPool* shared_pool)
    : runtime_(runtime),
      coordinator_(runtime->has_coordinator()
                       ? &runtime->tm(runtime->coordinator_partition())
                       : nullptr),
      truncate_batch_(truncate_batch) {
  if (coordinator_ == nullptr) {
    // Fail at construction, not at the first multi-participant commit.
    throw std::logic_error(
        "StoreTxn requires a Runtime built with a coordinator partition");
  }
  if (shared_pool != nullptr) {
    pool_ = shared_pool;
    return;
  }
  // Pool sizing: `pool_threads` counts the calling thread, so W workers =
  // width - 1. Auto (0) bounds the width by the widest possible commit
  // (every participant partition) and by the hardware.
  std::size_t width = pool_threads;
  if (width == 0) {
    std::size_t participants_max = runtime_->partitions() > 1
                                       ? runtime_->partitions() - 1
                                       : 1;
    std::size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) hw = 2;
    width = std::min<std::size_t>({participants_max, hw, 8});
  }
  owned_pool_ = std::make_unique<WorkPool>(width);
  pool_ = owned_pool_.get();
}

StoreTxn::~StoreTxn() {
  // Leave a clean coordinator log behind on graceful shutdown. With the
  // injector armed (a crash sweep died mid-flight) the backlogged
  // pointers may predate a recovery that rebuilt the log — and sweeps run
  // the eager path anyway, so there is nothing real to flush.
  if (!runtime_->nvm().crash_injector().armed()) FlushDecisionBacklog();
}

void StoreTxn::ForEachParticipant(
    const std::vector<Participant>& participants, bool parallel,
    const std::function<void(const Participant&)>& fn) {
  pool_->RunIndexed(participants.size(), parallel,
                    [&](std::size_t i) { fn(participants[i]); });
}

void StoreTxn::Commit(const std::vector<Participant>& participants) {
  if (participants.empty()) return;
  if (participants.size() == 1) {
    // Fast path: one shard transaction is already crash-atomic on its own
    // partition; 2PC would only add records and fences. The single fence
    // below is the batch durability barrier the caller acks behind.
    obs::ScopedTimer timer(Metrics().fast, "txn.fast_commit");
    runtime_->tm(participants[0].partition).Commit(participants[0].tid);
    runtime_->CommitFence();
    fast_commits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // With the crash injector armed the pool stands down: the injected
  // CrashException must surface at a deterministic persistence-event
  // ordinal on the calling thread, which a racing pool would scramble.
  bool parallel = !runtime_->nvm().crash_injector().armed();
  std::uint64_t gtid = next_gtid_.fetch_add(1, std::memory_order_relaxed);
  // Phase 1: every participant durable in the PREPARED state, fanned out
  // across the pool and joined. A crash anywhere up to (and including)
  // the decision append leaves no persistent TXN_COMMIT, so recovery
  // rolls every shard back.
  {
    obs::ScopedTimer timer(Metrics().prepare, "txn.prepare");
    ForEachParticipant(participants, parallel,
                       [this, gtid](const Participant& p) {
                         runtime_->tm(p.partition).Prepare(p.tid, gtid);
                         prepared_now_.fetch_add(1, std::memory_order_relaxed);
                       });
  }
  if (parallel && pool_->worker_count() > 0) {
    parallel_prepares_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t width = participants.size();
    std::uint64_t cur = max_prepare_fanout_.load(std::memory_order_relaxed);
    while (cur < width && !max_prepare_fanout_.compare_exchange_weak(
                              cur, width, std::memory_order_relaxed)) {
    }
  }
  // The commit point: one durable decision record in the dedicated
  // partition. From here the global transaction WILL commit, crash or not.
  LogRecord* decision;
  {
    obs::ScopedTimer timer(Metrics().decision, "txn.decision");
    decision = coordinator_->LogDecision(gtid, /*commit=*/true);
  }
  // Phase 2: finish every shard transaction, again max-of-shards wide.
  // CommitPrepared syncs each END's membership; the fence below — which
  // doubles as the batch durability barrier the caller acks behind —
  // persists them all before the decision record (the only thing that
  // could still commit an END-less shard after a crash) is erased.
  {
    obs::ScopedTimer timer(Metrics().end, "txn.end");
    ForEachParticipant(participants, parallel, [this](const Participant& p) {
      runtime_->tm(p.partition).CommitPrepared(p.tid);
      prepared_now_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  {
    obs::ScopedTimer timer(Metrics().fence, "txn.fence");
    runtime_->CommitFence();
  }
  RetireDecision(decision);
  two_phase_commits_.fetch_add(1, std::memory_order_relaxed);
}

void StoreTxn::RetireDecision(LogRecord* decision) {
  // Eager erase while the injector is armed: lazy batching would shift
  // which persistence-event ordinal each sweep step hits.
  if (truncate_batch_ <= 1 || runtime_->nvm().crash_injector().armed()) {
    coordinator_->EraseDecision(decision);
    return;
  }
  // Presumed-commit: every participant's END is durable behind the fence
  // that just ran, so this decision is already a recovery no-op — skip
  // its erase round. Reclamation is amortized: one wholesale latched
  // erase per truncate_batch_ commits.
  presumed_commits_.fetch_add(1, std::memory_order_relaxed);
  std::vector<LogRecord*> batch;
  {
    std::lock_guard<std::mutex> lock(decisions_mu_);
    consumed_decisions_.push_back(decision);
    if (consumed_decisions_.size() < truncate_batch_) return;
    batch.swap(consumed_decisions_);
  }
  coordinator_->EraseDecisions(batch);
  decision_truncations_.fetch_add(1, std::memory_order_relaxed);
}

void StoreTxn::FlushDecisionBacklog() {
  std::vector<LogRecord*> batch;
  {
    std::lock_guard<std::mutex> lock(decisions_mu_);
    batch.swap(consumed_decisions_);
  }
  if (batch.empty()) return;
  coordinator_->EraseDecisions(batch);
  decision_truncations_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t StoreTxn::decision_backlog() const {
  std::lock_guard<std::mutex> lock(decisions_mu_);
  return consumed_decisions_.size();
}

void StoreTxn::ResetAfterCrash() {
  prepared_now_.store(0, std::memory_order_relaxed);
  // Recovery rebuilt the coordinator partition; whatever the backlog
  // pointed at is gone (erasing now would corrupt the fresh log).
  std::lock_guard<std::mutex> lock(decisions_mu_);
  consumed_decisions_.clear();
}

void StoreTxn::Abort(const std::vector<Participant>& participants) {
  for (const Participant& p : participants) {
    runtime_->tm(p.partition).RollbackPrepared(p.tid);
  }
}

}  // namespace rwd
