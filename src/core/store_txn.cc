#include "src/core/store_txn.h"

#include <stdexcept>

namespace rwd {

StoreTxn::StoreTxn(Runtime* runtime)
    : runtime_(runtime),
      coordinator_(runtime->has_coordinator()
                       ? &runtime->tm(runtime->coordinator_partition())
                       : nullptr) {
  if (coordinator_ == nullptr) {
    // Fail at construction, not at the first multi-participant commit.
    throw std::logic_error(
        "StoreTxn requires a Runtime built with a coordinator partition");
  }
}

void StoreTxn::Commit(const std::vector<Participant>& participants) {
  if (participants.empty()) return;
  if (participants.size() == 1) {
    // Fast path: one shard transaction is already crash-atomic on its own
    // partition; 2PC would only add records and fences. The single fence
    // below is the batch durability barrier the caller acks behind.
    runtime_->tm(participants[0].partition).Commit(participants[0].tid);
    runtime_->CommitFence();
    fast_commits_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t gtid = next_gtid_.fetch_add(1, std::memory_order_relaxed);
  // Phase 1: every participant durable in the PREPARED state. A crash
  // anywhere up to (and including) the decision append leaves no
  // persistent TXN_COMMIT, so recovery rolls every shard back.
  for (const Participant& p : participants) {
    runtime_->tm(p.partition).Prepare(p.tid, gtid);
    prepared_now_.fetch_add(1, std::memory_order_relaxed);
  }
  // The commit point: one durable decision record in the dedicated
  // partition. From here the global transaction WILL commit, crash or not.
  LogRecord* decision = coordinator_->LogDecision(gtid, /*commit=*/true);
  // Phase 2: finish every shard transaction. CommitPrepared syncs each
  // END's membership; the fence below — which doubles as the batch
  // durability barrier the caller acks behind — persists them all before
  // the decision record (the only thing that could still commit an
  // END-less shard after a crash) is erased.
  for (const Participant& p : participants) {
    runtime_->tm(p.partition).CommitPrepared(p.tid);
    prepared_now_.fetch_sub(1, std::memory_order_relaxed);
  }
  runtime_->CommitFence();
  coordinator_->EraseDecision(decision);
  two_phase_commits_.fetch_add(1, std::memory_order_relaxed);
}

void StoreTxn::Abort(const std::vector<Participant>& participants) {
  for (const Participant& p : participants) {
    runtime_->tm(p.partition).RollbackPrepared(p.tid);
  }
}

}  // namespace rwd
