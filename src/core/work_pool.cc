#include "src/core/work_pool.h"

#include <exception>
#include <memory>

namespace rwd {

WorkPool::WorkPool(std::size_t width) {
  for (std::size_t i = 0; i + 1 < width; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkPool::~WorkPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    offloaded_tasks_.fetch_add(1, std::memory_order_relaxed);
  }
}

void WorkPool::RunIndexed(std::size_t n, bool parallel,
                          const std::function<void(std::size_t)>& fn) {
  if (!parallel || n < 2 || workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Offload indexes [1, n); the caller takes index 0 — the fan-out's
  // latency is max-of-parts, and a pool narrower than the fan-out still
  // makes progress (tasks queue and drain as workers free up).
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  auto join = std::make_shared<Join>();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (std::size_t i = 1; i < n; ++i) {
      queue_.emplace_back([join, i, &fn] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> l(join->mu);
          if (!join->error) join->error = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> l(join->mu);
          ++join->done;
        }
        join->cv.notify_one();
      });
    }
  }
  queue_cv_.notify_all();
  std::exception_ptr local;
  try {
    fn(0);
  } catch (...) {
    local = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(join->mu);
    join->cv.wait(lock, [&] { return join->done == n - 1; });
  }
  if (local) std::rethrow_exception(local);
  if (join->error) std::rethrow_exception(join->error);
}

}  // namespace rwd
