// Restart recovery (paper Section 4.5): recover the log structure itself,
// then analysis -> redo (no-force only) -> undo -> END records -> clearing.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/core/transaction_manager.h"
#include "src/log/bucket_log.h"
#include "src/obs/metrics.h"

namespace rwd {

namespace {
constexpr std::uint64_t kUndoAll = ~std::uint64_t{0};

/// Recovery phase histograms plus `.last_us` gauges (the gauges make the
/// most recent restart's cost directly readable from STATS v2 without
/// percentile math over a one-element histogram).
struct RecoveryMetrics {
  obs::Registry& reg = obs::Registry::Get();
  obs::Histogram* total = reg.GetHistogram("recovery.total");
  obs::Gauge* total_last = reg.GetGauge("recovery.last_us");
  obs::Histogram* analysis = reg.GetHistogram("recovery.analysis");
  obs::Gauge* analysis_last = reg.GetGauge("recovery.analysis.last_us");
  obs::Histogram* redo = reg.GetHistogram("recovery.redo");
  obs::Gauge* redo_last = reg.GetGauge("recovery.redo.last_us");
  obs::Histogram* resolve = reg.GetHistogram("recovery.resolve");
  obs::Gauge* resolve_last = reg.GetGauge("recovery.resolve.last_us");
  obs::Histogram* undo = reg.GetHistogram("recovery.undo");
  obs::Gauge* undo_last = reg.GetGauge("recovery.undo.last_us");
};

RecoveryMetrics& RecMetrics() {
  static RecoveryMetrics m;
  return m;
}

}  // namespace

void TransactionManager::RecoverLogStructure() {
  if (config_.two_layer()) {
    // First the AAVLT's private log, then the tree's pending operation; the
    // tree contents then drive the rest of recovery (paper Section 2:
    // "Recovery starts by recovering the simple data structure ... whose
    // contents are then used to recover the auxiliary log structure").
    index_->Recover();
  } else {
    log_->Recover();
  }
}

void TransactionManager::AnalysisPhase() {
  // Forward scan reconstructing the transaction table (paper Section 4.5)
  // plus the volatile LSN/TID counters.
  table_.Clear();
  std::uint64_t max_lsn = 0;
  std::uint32_t max_tid = 0;
  auto visit = [&](LogRecord* r) {
    max_lsn = std::max(max_lsn, r->lsn);
    max_tid = std::max(max_tid, r->tid);
    if (r->type == LogRecordType::kCheckpoint) return true;
    auto& e = table_.Touch(r->tid);
    e.last_lsn = std::max(e.last_lsn, r->lsn);
    switch (r->type) {
      case LogRecordType::kEnd:
        e.status = TxnStatus::kFinished;
        break;
      case LogRecordType::kRollback:
        e.status = TxnStatus::kAborted;
        break;
      case LogRecordType::kTxnPrepare:
        // LSN-ordered scan: a later END/ROLLBACK overrides this.
        e.status = TxnStatus::kPrepared;
        e.gtid = r->addr;
        break;
      default:
        break;  // UPDATE/CLR/DELETE/decision records leave the status as-is
    }
    return true;
  };
  if (config_.two_layer()) {
    // Analysis is a *forward* (LSN-ordered) scan; the index has no global
    // order, so the records must be gathered and sorted first — the slower
    // log iteration the paper blames for two-layer recovery times
    // (Fig. 4, right).
    std::vector<LogRecord*> all;
    index_->ForEachTxn([&](std::uint64_t, LogRecord* tail) {
      for (LogRecord* r = tail; r != nullptr; r = r->hint.chain.tx_prev) {
        all.push_back(r);
      }
      return true;
    });
    std::sort(all.begin(), all.end(),
              [](const LogRecord* a, const LogRecord* b) {
                return a->lsn < b->lsn;
              });
    for (LogRecord* r : all) visit(r);
  } else {
    log_->ForEach(visit);
  }
  next_lsn_ = max_lsn + 1;
  next_tid_.store(max_tid + 1, std::memory_order_relaxed);
}

void TransactionManager::RedoPhase() {
  // No-force only: repeat history. Physical redo of every UPDATE and CLR in
  // LSN order is idempotent; it also re-establishes the undos of a rollback
  // that was interrupted by the crash (paper Section 4.5).
  auto redo = [&](LogRecord* r) {
    if (r->type == LogRecordType::kUpdate || r->type == LogRecordType::kClr) {
      nvm_->Store(reinterpret_cast<std::uint64_t*>(r->addr), r->new_value);
    }
    return true;
  };
  if (config_.two_layer()) {
    // The 2L log has no global order: gather and sort — the slower
    // iteration the paper blames for 2L's recovery times (Fig. 4 right).
    std::vector<LogRecord*> all;
    index_->ForEachTxn([&](std::uint64_t, LogRecord* tail) {
      for (LogRecord* r = tail; r != nullptr; r = r->hint.chain.tx_prev) {
        all.push_back(r);
      }
      return true;
    });
    std::sort(all.begin(), all.end(),
              [](const LogRecord* a, const LogRecord* b) {
                return a->lsn < b->lsn;
              });
    for (LogRecord* r : all) redo(r);
  } else {
    log_->ForEach(redo);
  }
}

void TransactionManager::ResolvePreparedPhase(
    const PrepareResolver& resolve_prepared) {
  // Prepared-but-undecided transactions: the coordinator's decision log is
  // the single source of truth. A persistent TXN_COMMIT finishes the
  // transaction exactly as CommitPrepared() would have; everything else
  // stays kPrepared and is rolled back by the undo phase (presumed abort —
  // the decision record is written before any participant ENDs, so its
  // absence proves no participant committed).
  std::vector<std::uint32_t> prepared;
  table_.ForEach([&](std::uint32_t tid, TransactionTable::Entry& e) {
    if (e.status == TxnStatus::kPrepared && resolve_prepared != nullptr &&
        resolve_prepared(e.gtid)) {
      prepared.push_back(tid);
    }
  });
  for (std::uint32_t tid : prepared) {
    LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
    AppendLocked(end);
    table_.Touch(tid).status = TxnStatus::kFinished;
    finished_txns_[tid] = true;  // committed: honour its DELETE records
  }
  if (!prepared.empty() && log_) log_->Sync();
}

void TransactionManager::UndoPhase() {
  if (config_.two_layer()) {
    // Per-transaction undo through the index (paper Section 4.5,
    // "Two-layer logging").
    std::vector<std::uint32_t> losers;
    table_.ForEach([&](std::uint32_t tid, TransactionTable::Entry& e) {
      if (e.status != TxnStatus::kFinished) losers.push_back(tid);
    });
    std::sort(losers.begin(), losers.end());
    for (std::uint32_t tid : losers) {
      auto& e = *table_.Find(tid);
      if (e.status == TxnStatus::kRunning ||
          e.status == TxnStatus::kPrepared) {
        LogRecord* marker =
            MakeRecord(LogRecordType::kRollback, tid, 0, 0, 0, 0, 0);
        AppendLocked(marker);
        e.status = TxnStatus::kAborted;
      }
      // Horizon: the newest CLR tells how far the interrupted rollback got.
      std::uint64_t horizon = kUndoAll;
      for (LogRecord* r = index_->ChainOf(tid); r != nullptr;
           r = r->hint.chain.tx_prev) {
        if (r->type == LogRecordType::kClr) {
          if (horizon == kUndoAll) horizon = r->undo_next_lsn;
          if (config_.force()) {
            // Corner case (paper Section 4.4), generalized for the Batch
            // log: redo every CLR whose compensating write may not have
            // persisted; newest-to-oldest converges to the undo result.
            nvm_->StoreNT(reinterpret_cast<std::uint64_t*>(r->addr),
                          r->new_value);
          }
        }
      }
      RollbackLocked(tid, horizon);
      LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
      AppendLocked(end);
      e.status = TxnStatus::kFinished;
      finished_txns_[tid] = false;  // rolled back, not committed
    }
    return;
  }

  // One-layer logging: Algorithm 2 — undo every loser in a single backward
  // scan, tracking per-transaction undo horizons so records already undone
  // by a pre-crash rollback are skipped.
  std::unordered_map<std::uint32_t, std::uint64_t> undo_map;
  log_->ForEachBackward([&](LogRecord* r) {
    TransactionTable::Entry* e = table_.Find(r->tid);
    if (e == nullptr || e->status == TxnStatus::kFinished) return true;
    if (e->status == TxnStatus::kRunning ||
        e->status == TxnStatus::kPrepared) {
      LogRecord* marker =
          MakeRecord(LogRecordType::kRollback, r->tid, 0, 0, 0, 0, 0);
      AppendLocked(marker);
      e->status = TxnStatus::kAborted;
    }
    if (r->type == LogRecordType::kClr) {
      if (undo_map.find(r->tid) == undo_map.end()) {
        undo_map[r->tid] = r->undo_next_lsn;
      }
      if (config_.force()) {
        // Corner case (paper Section 4.4) generalized for the Batch log:
        // any CLR whose compensating write had not persisted by the crash
        // must be redone. Re-applying them newest-to-oldest converges to
        // the same state as the original undo sequence.
        nvm_->StoreNT(reinterpret_cast<std::uint64_t*>(r->addr),
                      r->new_value);
      }
    } else if (r->type == LogRecordType::kUpdate && r->undoable()) {
      auto it = undo_map.find(r->tid);
      if (it == undo_map.end() || r->lsn < it->second) {
        LogRecord* clr =
            MakeRecord(LogRecordType::kClr, r->tid, r->addr, r->new_value,
                       r->old_value, r->lsn, 0);
        AppendLocked(clr);
        ApplyWriteLocked(reinterpret_cast<std::uint64_t*>(r->addr),
                         r->old_value);
        undo_map[r->tid] = r->lsn;
      }
    }
    return true;
  });
  // The undo writes must be persistent before any END record is (the END
  // marks the rollback complete; under the Batch log the compensating
  // writes may still sit in the WAL deferral buffer).
  if (log_) log_->Sync();
  if (config_.force()) nvm_->Fence();
  // Add END records for every transaction that was not finished.
  table_.ForEach([&](std::uint32_t tid, TransactionTable::Entry& e) {
    if (e.status != TxnStatus::kFinished) {
      LogRecord* end = MakeRecord(LogRecordType::kEnd, tid, 0, 0, 0, 0, 0);
      AppendLocked(end);
      e.status = TxnStatus::kFinished;
      finished_txns_[tid] = false;
    }
  });
  if (log_) log_->Sync();
}

void TransactionManager::ClearAllAfterRecovery() {
  // After recovery every transaction is complete, so the whole log can be
  // dropped at once: remember the records, swap in the fresh structure, then
  // de-allocate (paper Section 4.5).
  //
  // DELETE records are honoured first: transactions that *committed* before
  // the crash release their deferred memory; rolled-back ones must not.
  std::unordered_set<std::uint32_t> rolled_back;
  for (const auto& [tid, committed] : finished_txns_) {
    if (!committed) rolled_back.insert(tid);
  }
  std::vector<LogRecord*> all;
  auto visit = [&](LogRecord* r) {
    all.push_back(r);
    if (r->type == LogRecordType::kRollback) rolled_back.insert(r->tid);
    return true;
  };
  if (config_.two_layer()) {
    index_->ForEachTxn([&](std::uint64_t, LogRecord* tail) {
      for (LogRecord* r = tail; r != nullptr; r = r->hint.chain.tx_prev) {
        visit(r);
      }
      return true;
    });
  } else {
    log_->ForEach(visit);
  }
  for (LogRecord* r : all) {
    if (r->type == LogRecordType::kDelete &&
        rolled_back.find(r->tid) == rolled_back.end()) {
      nvm_->Free(reinterpret_cast<void*>(r->addr));
    }
  }
  if (config_.two_layer()) {
    index_->Clear();
  } else {
    log_->Clear();
    if (auto* bl = dynamic_cast<BucketLog*>(log_.get())) {
      bl->ReclaimBuckets();
    }
  }
  for (LogRecord* r : all) nvm_->Free(r);
  // "When recovery finishes, we also clear the transaction table as all
  // transactions are henceforth considered completed."
  table_.Clear();
  finished_txns_.clear();
  pending_writes_.clear();
  pending_count_.store(0, std::memory_order_release);
}

void TransactionManager::Recover(const PrepareResolver& resolve_prepared) {
  std::lock_guard<std::mutex> lock(latch_);
  RecoveryMetrics& m = RecMetrics();
  obs::ScopedTimer total(m.total, "recovery", m.total_last);
  RecoverLogStructure();
  {
    obs::ScopedTimer t(m.analysis, "recovery.analysis", m.analysis_last);
    AnalysisPhase();
  }
  if (!config_.force()) {
    obs::ScopedTimer t(m.redo, "recovery.redo", m.redo_last);
    RedoPhase();
  }
  {
    obs::ScopedTimer t(m.resolve, "recovery.resolve", m.resolve_last);
    ResolvePreparedPhase(resolve_prepared);
  }
  {
    obs::ScopedTimer t(m.undo, "recovery.undo", m.undo_last);
    UndoPhase();
  }
  if (!config_.force()) {
    // Undone state was written with cached stores; persist it before the
    // log disappears.
    nvm_->FlushAllDirty();
  }
  ClearAllAfterRecovery();
  ++stats_.recoveries;
}

}  // namespace rwd
