// REWIND configuration: the design space of paper Section 2.
#ifndef REWIND_CORE_CONFIG_H_
#define REWIND_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/nvm/nvm_config.h"

namespace rwd {

/// Which log layout to use (paper Sections 3.2-3.3).
enum class LogImpl {
  kSimple,     ///< Records directly in the ADLL.
  kOptimized,  ///< Bucketed hybrid layout, one NT store per insertion.
  kBatch,      ///< Bucketed layout + grouped fences/persisted-index stores.
};

/// One- or two-layer logging (paper Sections 3.2 / 3.4).
enum class Layers {
  kOne,  ///< Log only; no per-transaction state during logging.
  kTwo,  ///< AAVLT index over transactions above the optimized bucket log.
};

/// Force or no-force treatment of user updates (paper Section 2).
enum class Policy {
  kForce,    ///< User updates NT-stored; 2-phase recovery; clear at commit.
  kNoForce,  ///< User updates cached; 3-phase recovery; clear at checkpoint.
};

/// Full configuration of a REWIND runtime.
struct RewindConfig {
  NvmConfig nvm;
  LogImpl log_impl = LogImpl::kBatch;
  Layers layers = Layers::kOne;
  Policy policy = Policy::kNoForce;
  /// Records per bucket (Optimized/Batch layouts). Paper default: 1000.
  std::size_t bucket_capacity = 1000;
  /// Records per fence group (Batch layout). Paper default: 8
  /// (64-byte cacheline / 8-byte pointer).
  std::size_t batch_group_size = 8;

  bool force() const { return policy == Policy::kForce; }
  bool two_layer() const { return layers == Layers::kTwo; }

  /// Short label such as "1L-NFP/Batch" for bench output.
  std::string Label() const {
    std::string s = two_layer() ? "2L-" : "1L-";
    s += force() ? "FP" : "NFP";
    switch (log_impl) {
      case LogImpl::kSimple:
        s += "/Simple";
        break;
      case LogImpl::kOptimized:
        s += "/Opt";
        break;
      case LogImpl::kBatch:
        s += "/Batch";
        break;
    }
    return s;
  }
};

}  // namespace rwd

#endif  // REWIND_CORE_CONFIG_H_
