// The public facade of the REWIND library.
#ifndef REWIND_CORE_RUNTIME_H_
#define REWIND_CORE_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/config.h"
#include "src/core/transaction_manager.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// Owns the emulated NVM device and one or more transaction managers.
///
/// The common case is a single shared log (one TransactionManager). Passing
/// `partitions > 1` creates a distributed log — one manager per partition —
/// which the paper's TPC-C co-design section uses to reduce log contention
/// ("REWIND Opt. Data Structure D.Log", Fig. 11); threads pick a partition
/// and all of a transaction's records go to that partition's log.
///
/// On construction the runtime inspects a persistent boot sector: a previous
/// unclean shutdown (or simulated crash) triggers full recovery, exactly as
/// an application relinking the REWIND library would experience at restart
/// (paper Section 4.1).
class Runtime {
 public:
  /// Sentinel for "no coordinator partition".
  static constexpr std::size_t kNoCoordinator = ~std::size_t{0};

  /// Create a fresh store, or re-attach to the file-backed heap a previous
  /// process left behind (`config.nvm.heap_file` names it). Attach re-maps
  /// the arena at its recorded base address, re-binds every partition's log
  /// to its catalog-registered anchor, and runs the full coordinator-ordered
  /// recovery (analysis -> redo/undo -> ResolvePrepared) against the
  /// reopened heap — exactly what a machine reboot looks like to REWIND.
  enum class OpenMode { kCreate, kAttach };

  /// `coordinator_partition`, when set, names the partition that holds
  /// only store-level two-phase commit decision records (TXN_COMMIT /
  /// TXN_ABORT, written through StoreTxn). Recovery — at boot and in
  /// CrashAndRecover() — then runs in coordinator order: first the
  /// decision log's structure is recovered and its persistent commit
  /// decisions collected, then every participant partition recovers with a
  /// resolver that commits or rolls back its prepared transactions
  /// accordingly, and finally the coordinator partition itself is
  /// recovered (clearing the now-consumed decisions).
  ///
  /// With `open == OpenMode::kAttach` the constructor throws
  /// HeapAttachError when the heap file is missing, carries a mismatched
  /// magic / format version / config fingerprint, or cannot be mapped at
  /// its recorded base address. The partition count and configuration must
  /// match what the store was created with (both feed the fingerprint).
  explicit Runtime(const RewindConfig& config, std::size_t partitions = 1,
                   std::size_t coordinator_partition = kNoCoordinator,
                   OpenMode open = OpenMode::kCreate);
  ~Runtime();

  /// Fingerprint of everything that must match between the creator of a
  /// heap file and a process re-attaching to it (log layout, layers,
  /// policy, bucket/batch geometry, NVM mode and size, partition count and
  /// coordinator). Stored in the heap catalog; mismatches fail attach.
  static std::uint64_t ConfigFingerprint(const RewindConfig& config,
                                         std::size_t partitions,
                                         std::size_t coordinator_partition);

  NvmManager& nvm() { return *nvm_; }
  TransactionManager& tm(std::size_t partition = 0) {
    return *tms_[partition];
  }
  std::size_t partitions() const { return tms_.size(); }
  std::size_t coordinator_partition() const { return coordinator_; }
  bool has_coordinator() const { return coordinator_ != kNoCoordinator; }
  const RewindConfig& config() const { return config_; }

  /// True if construction found an unclean shutdown and ran recovery.
  bool recovered_at_boot() const { return recovered_at_boot_; }

  /// Marks the shutdown clean; called by the destructor too. On a durable
  /// (file-backed) heap this first flushes every dirty cacheline so cached
  /// no-force state reaches the persistent image, then syncs the file.
  void Close();

  /// Test/bench helper: simulate a power failure (kCrashSim mode loses all
  /// unflushed cachelines, optionally randomly evicting some first), drop
  /// all volatile state, and run full recovery on every partition.
  void CrashAndRecover(double evict_probability = 0.0,
                       std::uint64_t seed = 0);

  /// Starts a background checkpointing thread covering every partition with
  /// the given period (no-force policy; paper Section 4.6). Replaces any
  /// running daemons. Stop with StopCheckpointDaemon().
  void StartCheckpointDaemon(std::uint32_t period_ms);

  /// Starts a daemon that checkpoints only `partition`, so shards of a
  /// larger system (e.g. RewindKV) run independent checkpoint cadences.
  /// Unlike StartCheckpointDaemon() this does not stop daemons already
  /// running for other partitions.
  void StartPartitionCheckpointDaemon(std::size_t partition,
                                      std::uint32_t period_ms);

  /// Stops every checkpoint daemon (whole-store and per-partition).
  void StopCheckpointDaemon();

  /// Checkpoints a single partition's log (shard-local hook).
  void CheckpointPartition(std::size_t partition);

  /// Group-commit durability hook: one persistent-memory fence ordering and
  /// persisting everything stored so far across every partition. A serving
  /// layer that coalesces many clients' writes into one transaction per
  /// shard (RewindServe's batcher) calls this once per batch window before
  /// acking, paying the fence cost the paper's Fig. 10 sweeps once per
  /// batch instead of once per request.
  void CommitFence();

  /// Re-runs restart recovery on one partition after dropping its volatile
  /// state — the shard-local counterpart of CrashAndRecover() (which the
  /// caller must still use after a simulated power failure, since a crash
  /// hits the whole NVM device). With a coordinator configured, prepared
  /// transactions found in the partition consult the live decision log.
  void RecoverPartition(std::size_t partition);

 private:
  struct BootSector {
    std::uint64_t magic;
    std::uint64_t open;  // 1 while the runtime is live
  };
  static constexpr std::uint64_t kBootMagic = 0x5245'5749'4e44'0001ull;

  /// Coordinator-ordered recovery of every partition (see constructor).
  void RecoverAllPartitions();

  RewindConfig config_;
  std::unique_ptr<NvmManager> nvm_;
  std::vector<std::unique_ptr<TransactionManager>> tms_;
  std::size_t coordinator_ = kNoCoordinator;
  BootSector* boot_ = nullptr;
  bool recovered_at_boot_ = false;

  /// Launches a daemon thread; `partition` == kAllPartitions covers all.
  void LaunchCheckpointThread(std::size_t partition, std::uint32_t period_ms);
  static constexpr std::size_t kAllPartitions = ~std::size_t{0};

  std::vector<std::thread> ckpt_threads_;
  std::mutex ckpt_mu_;
  std::condition_variable ckpt_cv_;
  bool ckpt_stop_ = false;
};

}  // namespace rwd

#endif  // REWIND_CORE_RUNTIME_H_
