// Cache-consistent log checkpointing (paper Section 4.6).
#include <vector>

#include "src/core/transaction_manager.h"
#include "src/log/bucket_log.h"

namespace rwd {

void TransactionManager::CheckpointLocked() {
  // Under a force policy the log is cleared at commit time; checkpoints are
  // a no-force mechanism.
  if (config_.force()) return;
  ++stats_.checkpoints;

  if (!config_.two_layer()) {
    // Mark the persistence horizon *before* flushing the cache: issuing the
    // flush first could make newly inserted records appear persistent
    // (paper Section 4.6).
    LogRecord* ckpt =
        MakeRecord(LogRecordType::kCheckpoint, 0, 0, 0, 0, 0, 0);
    AppendLocked(ckpt);
    log_->Sync();
  }
  nvm_->FlushAllDirty();

  if (config_.two_layer()) {
    // Remove each finished transaction's node; the removal itself is an
    // atomic recoverable AAVLT operation.
    for (const auto& [tid, committed] : finished_txns_) {
      std::vector<LogRecord*> recs = ChainRecordsLocked(tid);
      if (recs.empty()) continue;
      index_->RemoveTxn(tid);
      for (LogRecord* r : recs) {
        if (r->type == LogRecordType::kDelete && committed) {
          nvm_->Free(reinterpret_cast<void*>(r->addr));
        }
        FreeRecordLocked(r);
      }
      table_.Erase(tid);
    }
    finished_txns_.clear();
    return;
  }

  // One-layer: remove the records of finished transactions. END records are
  // removed last so that a crash during clearing makes the next checkpoint
  // repeat exactly the same work (paper Section 4.6). Stale CHECKPOINT
  // records are dropped along the way.
  std::vector<LogRecord*> ends;
  std::vector<LogRecord*> gone;
  log_->ForEach([&](LogRecord* r) {
    if (r->type == LogRecordType::kCheckpoint) {
      log_->Remove(r);
      gone.push_back(r);
      return true;
    }
    auto it = finished_txns_.find(r->tid);
    if (it == finished_txns_.end()) return true;
    if (r->type == LogRecordType::kEnd) {
      ends.push_back(r);
      return true;
    }
    // Removal before the target free (same discipline as
    // ClearTransactionLocked): a crash between the two leaks the block;
    // the other order lets a crash replay the de-allocation against a
    // block another transaction may have re-allocated meanwhile.
    log_->Remove(r);
    if (r->type == LogRecordType::kDelete && it->second) {
      nvm_->Free(reinterpret_cast<void*>(r->addr));
    }
    gone.push_back(r);
    return true;
  });
  for (LogRecord* r : ends) {
    log_->Remove(r);
    gone.push_back(r);
  }
  for (LogRecord* r : gone) FreeRecordLocked(r);
  if (auto* bl = dynamic_cast<BucketLog*>(log_.get())) bl->ReclaimBuckets();
  finished_txns_.clear();
}

}  // namespace rwd
