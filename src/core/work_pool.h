// A small shared fork/join worker pool for latency-critical fan-outs.
//
// Extracted from StoreTxn's 2PC prepare/END fan-out (PR 5) so the same
// workers can serve every caller-participating parallel phase in the
// store — today the two-phase commit phases AND KvStore::ApplyBatch's
// per-shard apply loop. One pool, one set of threads: a batch that fans
// its applies out and then fans its prepares out reuses the same warm
// workers instead of two pools fighting over the cores.
//
// The model is deliberately narrow: RunIndexed(n, fn) runs fn(0..n-1)
// with the CALLING thread taking index 0 and the workers taking [1, n),
// then joins before returning. The caller always participates, so a
// pool of width 1 (no worker threads at all) degrades to a plain
// sequential loop with zero synchronization — and so does any call with
// `parallel == false`, which is how crash-sweep determinism is enforced
// (the injected CrashException must surface on the calling thread at a
// stable persistence-event ordinal; see StoreTxn).
//
// Tasks never block on other tasks, so any number of concurrent
// RunIndexed calls (e.g. disjoint-shard batches) share the queue without
// deadlock: every caller drains its own share and waits only for its own
// n-1 offloaded indexes.
#ifndef REWIND_CORE_WORK_POOL_H_
#define REWIND_CORE_WORK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rwd {

class WorkPool {
 public:
  /// `width` is the total parallelism of a fan-out *including the calling
  /// thread*, so the pool spawns width - 1 workers; width <= 1 spawns none
  /// and every RunIndexed degrades to the sequential loop.
  explicit WorkPool(std::size_t width);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  /// Runs fn(0), fn(1), ..., fn(n-1). With `parallel` (and a nonzero
  /// worker count) indexes [1, n) are offloaded as pool tasks while the
  /// caller runs index 0, then joins; exceptions are rethrown on the
  /// calling thread after the join, the caller's own exception winning
  /// over any worker's (it fired first from this thread's point of view —
  /// notably an injected CrashException a crash-sweep test expects to
  /// catch). Sequential in-order execution otherwise.
  void RunIndexed(std::size_t n, bool parallel,
                  const std::function<void(std::size_t)>& fn);

  std::size_t worker_count() const { return workers_.size(); }

  /// Total tasks executed by pool workers (excludes every caller's own
  /// index-0 share; test hook proving work actually ran off-thread).
  std::uint64_t offloaded_tasks() const {
    return offloaded_tasks_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<std::uint64_t> offloaded_tasks_{0};
};

}  // namespace rwd

#endif  // REWIND_CORE_WORK_POOL_H_
