#include "src/core/runtime.h"

#include <chrono>
#include <unordered_set>

namespace rwd {

Runtime::Runtime(const RewindConfig& config, std::size_t partitions,
                 std::size_t coordinator_partition)
    : config_(config), nvm_(std::make_unique<NvmManager>(config.nvm)) {
  boot_ = static_cast<BootSector*>(nvm_->Alloc(sizeof(BootSector)));
  bool unclean = boot_->magic == kBootMagic && boot_->open == 1;
  nvm_->StoreNT(&boot_->magic, kBootMagic);
  nvm_->StoreNT(&boot_->open, std::uint64_t{1});
  nvm_->Fence();
  tms_.reserve(partitions == 0 ? 1 : partitions);
  for (std::size_t i = 0; i < std::max<std::size_t>(partitions, 1); ++i) {
    tms_.push_back(std::make_unique<TransactionManager>(nvm_.get(), config_));
  }
  if (coordinator_partition < tms_.size()) {
    coordinator_ = coordinator_partition;
  }
  if (unclean) {
    // In this emulated setting the heap is fresh per process, so an unclean
    // boot sector can only come from an in-process simulated crash; still,
    // run the full protocol for fidelity.
    RecoverAllPartitions();
    recovered_at_boot_ = true;
  }
}

void Runtime::RecoverAllPartitions() {
  // Coordinator-ordered recovery: collect the persistent commit decisions
  // first, resolve every participant's prepared transactions against them,
  // and only then recover (and thereby clear) the decision log itself.
  std::unordered_set<std::uint64_t> decisions;
  PrepareResolver resolver;
  if (has_coordinator()) {
    decisions = tms_[coordinator_]->CollectCommitDecisions();
    resolver = [&decisions](std::uint64_t gtid) {
      return decisions.count(gtid) != 0;
    };
  }
  for (std::size_t i = 0; i < tms_.size(); ++i) {
    if (i == coordinator_) continue;
    tms_[i]->Recover(resolver);
  }
  if (has_coordinator()) tms_[coordinator_]->Recover();
}

Runtime::~Runtime() {
  StopCheckpointDaemon();
  Close();
}

void Runtime::Close() {
  if (boot_ != nullptr) {
    nvm_->StoreNT(&boot_->open, std::uint64_t{0});
    nvm_->Fence();
  }
}

void Runtime::CrashAndRecover(double evict_probability, std::uint64_t seed) {
  StopCheckpointDaemon();
  nvm_->SimulateCrash(evict_probability, seed);
  for (auto& tm : tms_) tm->ForgetVolatileState();
  RecoverAllPartitions();
}

void Runtime::StartCheckpointDaemon(std::uint32_t period_ms) {
  StopCheckpointDaemon();
  LaunchCheckpointThread(kAllPartitions, period_ms);
}

void Runtime::StartPartitionCheckpointDaemon(std::size_t partition,
                                             std::uint32_t period_ms) {
  LaunchCheckpointThread(partition, period_ms);
}

void Runtime::LaunchCheckpointThread(std::size_t partition,
                                     std::uint32_t period_ms) {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_stop_ = false;
  }
  ckpt_threads_.emplace_back([this, partition, period_ms] {
    std::unique_lock<std::mutex> lock(ckpt_mu_);
    while (!ckpt_stop_) {
      if (ckpt_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                            [this] { return ckpt_stop_; })) {
        return;
      }
      lock.unlock();
      try {
        if (partition == kAllPartitions) {
          for (auto& tm : tms_) tm->Checkpoint();
        } else {
          tms_[partition]->Checkpoint();
        }
      } catch (const CrashException&) {
        // An armed crash injector fired on this daemon thread (kCrashSim):
        // the "machine" lost power, so the daemon just stops; the driving
        // thread runs SimulateCrash()/recovery as usual.
        return;
      }
      lock.lock();
    }
  });
}

void Runtime::StopCheckpointDaemon() {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.notify_all();
  for (auto& t : ckpt_threads_) {
    if (t.joinable()) t.join();
  }
  ckpt_threads_.clear();
}

void Runtime::CheckpointPartition(std::size_t partition) {
  tms_[partition]->Checkpoint();
}

void Runtime::CommitFence() { nvm_->Fence(); }

void Runtime::RecoverPartition(std::size_t partition) {
  tms_[partition]->ForgetVolatileState();
  PrepareResolver resolver;
  if (has_coordinator() && partition != coordinator_) {
    TransactionManager* coord = tms_[coordinator_].get();
    resolver = [coord](std::uint64_t gtid) {
      return coord->HasCommitDecision(gtid);
    };
  }
  tms_[partition]->Recover(resolver);
}

}  // namespace rwd
