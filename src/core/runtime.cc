#include "src/core/runtime.h"

#include <chrono>
#include <unordered_set>

namespace rwd {

namespace {
/// Stable catalog root name of partition `i`'s log anchor.
std::string TmRootName(std::size_t i) { return "tm" + std::to_string(i); }
}  // namespace

std::uint64_t Runtime::ConfigFingerprint(const RewindConfig& config,
                                         std::size_t partitions,
                                         std::size_t coordinator_partition) {
  // FNV-1a over the fields a re-attaching process must agree on. Not a
  // cryptographic bind — just enough for a descriptive failure instead of
  // attaching garbage.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ull;
    }
  };
  mix(static_cast<std::uint64_t>(config.log_impl));
  mix(static_cast<std::uint64_t>(config.layers));
  mix(static_cast<std::uint64_t>(config.policy));
  mix(config.bucket_capacity);
  mix(config.batch_group_size);
  mix(static_cast<std::uint64_t>(config.nvm.mode));
  mix(config.nvm.heap_bytes);
  mix(config.nvm.cacheline_bytes);
  mix(std::max<std::size_t>(partitions, 1));
  mix(coordinator_partition);
  return h;
}

Runtime::Runtime(const RewindConfig& config, std::size_t partitions,
                 std::size_t coordinator_partition, OpenMode open)
    : config_(config) {
  std::size_t n = std::max<std::size_t>(partitions, 1);
  config_.nvm.config_fingerprint =
      ConfigFingerprint(config_, n, coordinator_partition);
  nvm_ = std::make_unique<NvmManager>(config_.nvm,
                                      open == OpenMode::kAttach);
  NvmHeap& heap = nvm_->heap();
  bool unclean = false;
  if (open == OpenMode::kAttach) {
    boot_ = static_cast<BootSector*>(heap.GetRoot("boot"));
    if (boot_ == nullptr) {
      throw HeapAttachError("Runtime: heap file '" + heap.file_path() +
                            "' has no boot-sector root in its catalog");
    }
    unclean = boot_->magic == kBootMagic && boot_->open == 1;
  } else {
    boot_ = static_cast<BootSector*>(nvm_->Alloc(sizeof(BootSector)));
    heap.SetRoot("boot", boot_);
    unclean = boot_->magic == kBootMagic && boot_->open == 1;
  }
  nvm_->StoreNT(&boot_->magic, kBootMagic);
  nvm_->StoreNT(&boot_->open, std::uint64_t{1});
  nvm_->Fence();
  tms_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    void* anchor = nullptr;
    if (open == OpenMode::kAttach) {
      anchor = heap.GetRoot(TmRootName(i).c_str());
      if (anchor == nullptr) {
        throw HeapAttachError("Runtime: heap file '" + heap.file_path() +
                              "' has no log anchor for partition " +
                              std::to_string(i));
      }
    }
    tms_.push_back(
        std::make_unique<TransactionManager>(nvm_.get(), config_, anchor));
    if (open != OpenMode::kAttach) {
      heap.SetRoot(TmRootName(i).c_str(), tms_.back()->log_anchor());
    }
  }
  if (coordinator_partition < tms_.size()) {
    coordinator_ = coordinator_partition;
  }
  if (open == OpenMode::kAttach) {
    // Always run the full coordinator-ordered protocol on attach: it
    // rebuilds every partition's volatile state (log positions, txn table,
    // LSN/TID counters) and, after an unclean exit, replays/undoes exactly
    // as a machine reboot would. On a cleanly closed heap it is a no-op
    // beyond the rebuild.
    RecoverAllPartitions();
    recovered_at_boot_ = unclean;
  } else if (unclean) {
    // A DRAM heap is fresh per process, so an unclean boot sector can only
    // come from an in-process simulated crash; still, run the full
    // protocol for fidelity.
    RecoverAllPartitions();
    recovered_at_boot_ = true;
  }
}

void Runtime::RecoverAllPartitions() {
  // Coordinator-ordered recovery: collect the persistent commit decisions
  // first, resolve every participant's prepared transactions against them,
  // and only then recover (and thereby clear) the decision log itself.
  std::unordered_set<std::uint64_t> decisions;
  PrepareResolver resolver;
  if (has_coordinator()) {
    decisions = tms_[coordinator_]->CollectCommitDecisions();
    resolver = [&decisions](std::uint64_t gtid) {
      return decisions.count(gtid) != 0;
    };
  }
  for (std::size_t i = 0; i < tms_.size(); ++i) {
    if (i == coordinator_) continue;
    tms_[i]->Recover(resolver);
  }
  if (has_coordinator()) tms_[coordinator_]->Recover();
}

Runtime::~Runtime() {
  StopCheckpointDaemon();
  Close();
}

void Runtime::Close() {
  if (boot_ == nullptr) return;
  if (nvm_->heap().file_backed()) {
    // Cached (no-force) user state must reach the persistent image before
    // the shutdown is marked clean, or a re-attach would see a "clean"
    // heap missing its latest committed writes.
    nvm_->FlushAllDirty();
  }
  nvm_->StoreNT(&boot_->open, std::uint64_t{0});
  nvm_->Fence();
  nvm_->heap().SyncFile();
}

void Runtime::CrashAndRecover(double evict_probability, std::uint64_t seed) {
  StopCheckpointDaemon();
  nvm_->SimulateCrash(evict_probability, seed);
  for (auto& tm : tms_) tm->ForgetVolatileState();
  RecoverAllPartitions();
}

void Runtime::StartCheckpointDaemon(std::uint32_t period_ms) {
  StopCheckpointDaemon();
  LaunchCheckpointThread(kAllPartitions, period_ms);
}

void Runtime::StartPartitionCheckpointDaemon(std::size_t partition,
                                             std::uint32_t period_ms) {
  LaunchCheckpointThread(partition, period_ms);
}

void Runtime::LaunchCheckpointThread(std::size_t partition,
                                     std::uint32_t period_ms) {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_stop_ = false;
  }
  ckpt_threads_.emplace_back([this, partition, period_ms] {
    std::unique_lock<std::mutex> lock(ckpt_mu_);
    while (!ckpt_stop_) {
      if (ckpt_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                            [this] { return ckpt_stop_; })) {
        return;
      }
      lock.unlock();
      try {
        if (partition == kAllPartitions) {
          for (auto& tm : tms_) tm->Checkpoint();
        } else {
          tms_[partition]->Checkpoint();
        }
      } catch (const CrashException&) {
        // An armed crash injector fired on this daemon thread (kCrashSim):
        // the "machine" lost power, so the daemon just stops; the driving
        // thread runs SimulateCrash()/recovery as usual.
        return;
      }
      lock.lock();
    }
  });
}

void Runtime::StopCheckpointDaemon() {
  {
    std::lock_guard<std::mutex> lock(ckpt_mu_);
    ckpt_stop_ = true;
  }
  ckpt_cv_.notify_all();
  for (auto& t : ckpt_threads_) {
    if (t.joinable()) t.join();
  }
  ckpt_threads_.clear();
}

void Runtime::CheckpointPartition(std::size_t partition) {
  tms_[partition]->Checkpoint();
}

void Runtime::CommitFence() { nvm_->Fence(); }

void Runtime::RecoverPartition(std::size_t partition) {
  tms_[partition]->ForgetVolatileState();
  PrepareResolver resolver;
  if (has_coordinator() && partition != coordinator_) {
    TransactionManager* coord = tms_[coordinator_].get();
    resolver = [coord](std::uint64_t gtid) {
      return coord->HasCommitDecision(gtid);
    };
  }
  tms_[partition]->Recover(resolver);
}

}  // namespace rwd
