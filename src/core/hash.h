// Shared 64-bit hashing primitives.
#ifndef REWIND_CORE_HASH_H_
#define REWIND_CORE_HASH_H_

#include <cstdint>

namespace rwd {

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation used
/// for shard placement (KvStore) and deterministic value streams
/// (WorkloadDriver).
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace rwd

#endif  // REWIND_CORE_HASH_H_
