// The REWIND transaction recovery manager (paper Section 4).
#ifndef REWIND_CORE_TRANSACTION_MANAGER_H_
#define REWIND_CORE_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/config.h"
#include "src/core/transaction_table.h"
#include "src/log/aavlt.h"
#include "src/log/ilog.h"
#include "src/nvm/nvm_manager.h"

namespace rwd {

/// Statistics exposed for tests and benches.
struct TmStats {
  std::uint64_t records_logged = 0;
  std::uint64_t commits = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t prepares = 0;  ///< transactions taken through Prepare()
};

/// Consulted during recovery for every prepared-but-undecided transaction:
/// given its global transaction id, returns true iff the coordinator's
/// decision log shows a persistent TXN_COMMIT for it (commit the
/// transaction); false rolls it back (presumed abort).
using PrepareResolver = std::function<bool(std::uint64_t gtid)>;

/// Write-ahead logging and ARIES-style recovery for persistent in-memory
/// data structures.
///
/// The programmer-visible protocol matches the paper's Listing 2: `Begin()`
/// hands out a transaction id; every critical update is preceded by `Log()`
/// (or performed via `Write()`, which combines logging with the store and
/// honours the force policy and the Batch log's write deferral); `Commit()`
/// or `Rollback()` finish the transaction. De-allocation of persistent
/// memory goes through `LogDelete()` so it can be deferred past commit.
///
/// Configurations (paper Section 2): {Simple, Optimized, Batch} log layout ×
/// {one, two} logging layers × {force, no-force} policy.
///
/// Thread safety: all public methods are safe to call from multiple threads;
/// the log is latched briefly per record (fine-grained) and coarsely during
/// clearing, checkpoints and recovery (paper Section 4.7). Isolation between
/// transactions on *user* data is the programmer's job, as in the paper.
class TransactionManager {
 public:
  /// `attach_anchor`, when non-null, is the persistent log anchor a
  /// previous process registered in the heap's root catalog (log_anchor()):
  /// an Adll::Control* for one-layer configurations, an AavltAnchor* for
  /// two-layer. The manager re-attaches its log to it instead of allocating
  /// fresh control blocks; the caller must run Recover() before use.
  TransactionManager(NvmManager* nvm, const RewindConfig& config,
                     void* attach_anchor = nullptr);
  ~TransactionManager();

  /// Starts a transaction; returns its id.
  std::uint32_t Begin();

  /// WAL call: records that `addr` is about to change from `old_value` to
  /// `new_value`. The caller performs the store itself afterwards (paper
  /// Listing 2 style). Under the Batch log prefer Write(), which also
  /// sequences the store after the group flush.
  void Log(std::uint32_t tid, std::uint64_t* addr, std::uint64_t old_value,
           std::uint64_t new_value);

  /// Logs and applies a critical update: cached store under no-force,
  /// non-temporal store under force, deferred until the covering group flush
  /// under the Batch log (the paper's compiler reordering of user writes
  /// below the batched log calls, Section 3.3).
  void Write(std::uint32_t tid, std::uint64_t* addr, std::uint64_t value);

  /// Reads a persistent word with read-your-writes semantics under the
  /// Batch log's deferral; a relaxed-atomic load otherwise. Lock-free
  /// whenever no writes are parked in the deferral buffer (an atomic
  /// emptiness gauge is checked first), which is every instant outside a
  /// writer's critical section: Commit/Prepare/Rollback all drain the
  /// buffer before returning, so concurrent readers of a latched shard
  /// never pay this manager's latch.
  std::uint64_t Read(const std::uint64_t* addr) const;

  /// Logs a deferred de-allocation; the memory is freed after commit
  /// (force) or at the covering checkpoint / recovery (no-force). If the
  /// transaction rolls back the memory is kept alive.
  void LogDelete(std::uint32_t tid, void* ptr);

  /// Commits: force policy fences the user updates, writes END and clears
  /// the transaction's records; no-force just writes END (clearing happens
  /// at checkpoints).
  void Commit(std::uint32_t tid);

  /// Rolls the transaction back with CLRs, then writes END (paper 4.4).
  void Rollback(std::uint32_t tid);

  // --- store-level two-phase commit (participant side) ---

  /// Phase 1: moves `tid` into the PREPARED state under global id `gtid`.
  /// Writes a TXN_PREPARE record carrying `gtid` and makes every record of
  /// the transaction (and, under the force policy, its user updates)
  /// persistent. A prepared transaction survives checkpoints and is neither
  /// committed nor rolled back by recovery until the coordinator's decision
  /// is known.
  void Prepare(std::uint32_t tid, std::uint64_t gtid);

  /// Phase 2 (commit): finishes a prepared transaction — END record, then
  /// force-policy clearing or the no-force finished mark. The user updates
  /// were already persisted (force) or are covered by the persistent
  /// records (no-force redo) at Prepare() time.
  void CommitPrepared(std::uint32_t tid);

  /// Phase 2 (abort): rolls a prepared transaction back. Equivalent to
  /// Rollback(); named for symmetry in coordinator code.
  void RollbackPrepared(std::uint32_t tid);

  // --- store-level two-phase commit (coordinator side) ---

  /// Durably appends the coordinator's decision for `gtid` (TXN_COMMIT or
  /// TXN_ABORT) to this manager's log and returns the record so the
  /// coordinator can erase it once every participant finished phase 2.
  LogRecord* LogDecision(std::uint64_t gtid, bool commit);

  /// Removes a decision record written by LogDecision() (all participants
  /// have durable ENDs; the decision is no longer needed for recovery).
  void EraseDecision(LogRecord* rec);

  /// Bulk form of EraseDecision(): removes every record under ONE latch
  /// acquisition and one bucket-reclaim pass. The presumed-commit
  /// retirement path (StoreTxn) batches consumed decisions and reclaims
  /// them here instead of paying a latched erase round per commit.
  void EraseDecisions(const std::vector<LogRecord*>& recs);

  /// Live-log query: is there a TXN_COMMIT decision record for `gtid`?
  /// Used when a single partition re-runs recovery while the coordinator
  /// manager is still running (Runtime::RecoverPartition).
  bool HasCommitDecision(std::uint64_t gtid) const;

  /// Post-crash hook for the runtime: recovers this manager's log
  /// *structure* only (idempotent — the later full Recover() repeats it)
  /// and returns the set of global transaction ids with a persistent
  /// TXN_COMMIT decision record. Called on the coordinator partition
  /// before any participant partition recovers.
  std::unordered_set<std::uint64_t> CollectCommitDecisions();

  /// Bench/test hook: commits by writing END only, skipping the force
  /// policy's commit-time clearing. Reproduces the paper's Fig. 4 (right)
  /// scenario — a crash after transactions logged their END records but
  /// before the log was cleared.
  void CommitNoClear(std::uint32_t tid);

  /// Cache-consistent checkpoint (no-force; paper Section 4.6): CHECKPOINT
  /// record, full cache flush, then removal of finished transactions'
  /// records with ENDs removed last. A no-op under force policy.
  void Checkpoint();

  /// Full restart recovery (paper Section 4.5): recover the log structure,
  /// analysis, redo (no-force only), prepared-transaction resolution, undo,
  /// END records, log clearing. `resolve_prepared` decides the fate of
  /// prepared-but-undecided transactions; when absent they roll back
  /// (presumed abort — correct for a standalone manager, which writes no
  /// TXN_PREPARE records of its own).
  void Recover(const PrepareResolver& resolve_prepared = nullptr);

  /// Number of live log records (1L) or indexed records (2L).
  std::size_t LogSize() const;

  /// The log's persistent anchor, for the heap's root catalog (see the
  /// attach constructor above).
  void* log_anchor() const {
    return config_.two_layer() ? static_cast<void*>(index_->anchor())
                               : log_->anchor();
  }

  const RewindConfig& config() const { return config_; }
  NvmManager* nvm() { return nvm_; }
  const TmStats& stats() const { return stats_; }
  TransactionTable& txn_table() { return table_; }
  ILog* log() { return log_.get(); }
  Aavlt* index() { return index_.get(); }

  /// Test hook: drops all volatile state, as a process restart would. The
  /// persistent log structures are left as-is; call Recover() afterwards.
  void ForgetVolatileState();

 private:
  struct PendingWrite {
    std::uint64_t* addr;
    std::uint64_t value;
  };

  // --- unlatched internals (callers hold log latch) ---
  LogRecord* MakeRecord(LogRecordType type, std::uint32_t tid,
                        std::uint64_t addr, std::uint64_t old_value,
                        std::uint64_t new_value, std::uint64_t undo_next,
                        std::uint16_t flags);
  /// Appends to the 1L log or inserts into the 2L AAVLT.
  void AppendLocked(LogRecord* rec);
  /// Applies a user write honouring policy and Batch deferral.
  void ApplyWriteLocked(std::uint64_t* addr, std::uint64_t value);
  /// Releases writes held back by the Batch WAL deferral.
  void FlushPendingWrites();
  /// Removes and frees every record of `tid` (force-policy clearing):
  /// full backward scan in 1L, AAVLT chain in 2L. END removed last.
  void ClearTransactionLocked(std::uint32_t tid, bool committed);
  /// Rolls back `tid` from `undo_horizon_lsn` downwards, writing CLRs.
  /// Passing ~0 undoes everything.
  void RollbackLocked(std::uint32_t tid, std::uint64_t undo_horizon_lsn);
  /// Collects `tid`'s records, oldest first (helper for 2L paths).
  std::vector<LogRecord*> ChainRecordsLocked(std::uint32_t tid) const;
  /// Erase body shared by EraseDecision/EraseDecisions (no bucket reclaim).
  void EraseDecisionLocked(LogRecord* rec);
  /// Visits every live record in either layout (append order in 1L,
  /// per-transaction chains in 2L). Stops early when `fn` returns false.
  void ForEachRecordLocked(const std::function<bool(LogRecord*)>& fn) const;
  void FreeRecordLocked(LogRecord* rec);

  // --- recovery phases (recovery.cc) ---
  void RecoverLogStructure();
  void AnalysisPhase();
  void RedoPhase();
  /// Commits prepared transactions whose gtid the resolver confirms; the
  /// rest stay kPrepared and the undo phase rolls them back.
  void ResolvePreparedPhase(const PrepareResolver& resolve_prepared);
  void UndoPhase();
  void ClearAllAfterRecovery();

  // --- checkpoint internals (checkpoint.cc) ---
  void CheckpointLocked();

  NvmManager* nvm_;
  RewindConfig config_;
  std::unique_ptr<ILog> log_;     // 1L: the user log; 2L: unused
  std::unique_ptr<Aavlt> index_;  // 2L only
  TransactionTable table_;        // live in 2L; recovery-built in 1L
  mutable std::mutex latch_;      // serializes log access

  std::atomic<std::uint32_t> next_tid_{1};
  std::uint64_t next_lsn_ = 1;  // under latch_

  std::vector<PendingWrite> pending_writes_;  // Batch deferral
  /// pending_writes_.size(), maintained under latch_ but readable without
  /// it: Read()'s lock-free emptiness check (release-stored so a reader
  /// seeing 0 also sees the flushed user values).
  std::atomic<std::size_t> pending_count_{0};
  /// Finished but not yet cleared transactions -> true iff committed
  /// (rolled-back transactions must keep their DELETE targets alive).
  std::unordered_map<std::uint32_t, bool> finished_txns_;
  TmStats stats_;
};

}  // namespace rwd

#endif  // REWIND_CORE_TRANSACTION_MANAGER_H_
