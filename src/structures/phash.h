// A recoverable open-addressing hash table over REWIND (extra persistent
// structure demonstrating the library beyond the paper's examples).
#ifndef REWIND_STRUCTURES_PHASH_H_
#define REWIND_STRUCTURES_PHASH_H_

#include <cstdint>

#include "src/structures/storage_ops.h"

namespace rwd {

/// Persistent hash map from non-zero 64-bit keys to 64-bit values, using
/// linear probing with tombstones.
///
/// Growth is crash-safe by construction: the new table is built off-line
/// (InitStore), published with one logged pointer swing, and the old table
/// is deferred-freed — the same publish-then-swing idiom the B+-tree uses
/// for splits.
class PHash {
 public:
  /// `initial_capacity` is rounded up to a power of two (minimum 8).
  PHash(StorageOps* ops, std::size_t initial_capacity = 64);

  /// Re-attaches to the persistent anchor of a table a previous process
  /// built in a durable heap (see persistent_anchor()).
  explicit PHash(void* existing_anchor)
      : anchor_(static_cast<Anchor*>(existing_anchor)) {}

  /// The table's persistent anchor, for the heap's root catalog or an
  /// application directory block.
  void* persistent_anchor() const { return anchor_; }

  /// Inserts or overwrites. Each call is one transaction. `key` must be
  /// non-zero.
  void Put(StorageOps* ops, std::uint64_t key, std::uint64_t value);

  /// Removes a key inside its own transaction; returns presence.
  bool Erase(StorageOps* ops, std::uint64_t key);

  /// Put/Erase bodies that run inside the caller's already-open operation
  /// (no BeginOp/CommitOp of their own) — for composing multi-structure
  /// transactions, e.g. RewindKV updating a B+-tree primary and this
  /// secondary index atomically.
  void PutOp(StorageOps* ops, std::uint64_t key, std::uint64_t value);
  bool EraseOp(StorageOps* ops, std::uint64_t key);

  /// Single-probe upsert inside the caller's open operation: inserts or
  /// overwrites at the probe position reached by one descent of the chain,
  /// so callers that need the previous value (e.g. an overwriting KV Put)
  /// pay one probe instead of a Get followed by a PutOp. Returns true and
  /// fills `*old_value` (may be null) when the key already existed.
  bool UpsertOp(StorageOps* ops, std::uint64_t key, std::uint64_t value,
                std::uint64_t* old_value);

  /// Reads a value; returns presence.
  bool Get(StorageOps* ops, std::uint64_t key, std::uint64_t* value) const;

  /// Latch-free probe for seqlock readers: walks the chain with relaxed
  /// atomic loads directly on the persistent cells, bypassing StorageOps
  /// (no Batch-deferral lookup — the caller guarantees, via its seqlock
  /// protocol, that no writer holds parked deferred writes while the
  /// result is accepted). The probe may observe torn intermediate states
  /// when racing a writer; the caller MUST validate its sequence counter
  /// afterwards and discard the result on conflict. The probe is bounded
  /// (at most `capacity` cells) so a torn table can at worst return a
  /// wrong answer, never loop forever.
  bool GetRelaxed(std::uint64_t key, std::uint64_t* value) const;

  std::uint64_t size(StorageOps* ops) const {
    return ops->Load(&anchor_->size);
  }
  std::uint64_t capacity(StorageOps* ops) const {
    return ops->Load(&anchor_->capacity);
  }

 private:
  struct Cell {
    std::uint64_t key;  // 0 = empty, kTombKey = tombstone
    std::uint64_t value;
  };
  struct Anchor {
    std::uint64_t table;  // Cell*
    std::uint64_t capacity;
    std::uint64_t size;
    std::uint64_t used;  // live + tombstones, drives growth
  };
  static constexpr std::uint64_t kTombKey = ~std::uint64_t{0};

  static std::uint64_t Mix(std::uint64_t k) {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdull;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ull;
    k ^= k >> 33;
    return k;
  }

  Cell* TableOf(StorageOps* ops) const {
    return reinterpret_cast<Cell*>(ops->Load(&anchor_->table));
  }
  void Grow(StorageOps* ops);

  Anchor* anchor_;
};

}  // namespace rwd

#endif  // REWIND_STRUCTURES_PHASH_H_
