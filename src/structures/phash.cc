#include "src/structures/phash.h"

#include <cassert>

#include "src/nvm/atomic_mem.h"

namespace rwd {

PHash::PHash(StorageOps* ops, std::size_t initial_capacity) {
  std::uint64_t cap = 8;
  while (cap < initial_capacity) cap <<= 1;
  anchor_ = static_cast<Anchor*>(ops->AllocRaw(sizeof(Anchor)));
  auto* table = static_cast<Cell*>(ops->AllocRaw(cap * sizeof(Cell)));
  ops->PublishInit(table, cap * sizeof(Cell));
  ops->InitStore(&anchor_->table,
                 reinterpret_cast<std::uint64_t>(table));
  ops->InitStore(&anchor_->capacity, cap);
  ops->InitStore(&anchor_->size, 0);
  ops->InitStore(&anchor_->used, 0);
  ops->PublishInit(anchor_, sizeof(Anchor));
}

void PHash::Grow(StorageOps* ops) {
  std::uint64_t old_cap = ops->Load(&anchor_->capacity);
  Cell* old_table = TableOf(ops);
  std::uint64_t new_cap = old_cap * 2;
  // Build the successor table off-line: InitStores need no undo records.
  auto* nt = static_cast<Cell*>(ops->AllocRaw(new_cap * sizeof(Cell)));
  std::uint64_t live = 0;
  for (std::uint64_t i = 0; i < old_cap; ++i) {
    std::uint64_t k = ops->Load(&old_table[i].key);
    if (k == 0 || k == kTombKey) continue;
    std::uint64_t pos = Mix(k) & (new_cap - 1);
    while (ops->Load(&nt[pos].key) != 0) pos = (pos + 1) & (new_cap - 1);
    ops->InitStore(&nt[pos].key, k);
    ops->InitStore(&nt[pos].value, ops->Load(&old_table[i].value));
    ++live;
  }
  ops->PublishInit(nt, new_cap * sizeof(Cell));
  // Publish: logged pointer swing plus the dependent counters.
  ops->Store(&anchor_->table, reinterpret_cast<std::uint64_t>(nt));
  ops->Store(&anchor_->capacity, new_cap);
  ops->Store(&anchor_->used, live);
  ops->DeferredFree(old_table);
}

bool PHash::UpsertOp(StorageOps* ops, std::uint64_t key, std::uint64_t value,
                     std::uint64_t* old_value) {
  assert(key != 0 && key != kTombKey);
  if ((ops->Load(&anchor_->used) + 1) * 4 >=
      ops->Load(&anchor_->capacity) * 3) {
    Grow(ops);
  }
  std::uint64_t cap = ops->Load(&anchor_->capacity);
  Cell* table = TableOf(ops);
  std::uint64_t pos = Mix(key) & (cap - 1);
  std::uint64_t first_tomb = cap;  // sentinel: none seen
  for (;;) {
    std::uint64_t k = ops->Load(&table[pos].key);
    if (k == key) {
      if (old_value != nullptr) *old_value = ops->Load(&table[pos].value);
      ops->Store(&table[pos].value, value);
      return true;
    }
    if (k == kTombKey && first_tomb == cap) first_tomb = pos;
    if (k == 0) break;
    pos = (pos + 1) & (cap - 1);
  }
  bool reuse_tomb = first_tomb != cap;
  std::uint64_t target = reuse_tomb ? first_tomb : pos;
  ops->Store(&table[target].value, value);
  ops->Store(&table[target].key, key);
  ops->Store(&anchor_->size, ops->Load(&anchor_->size) + 1);
  if (!reuse_tomb) ops->Store(&anchor_->used, ops->Load(&anchor_->used) + 1);
  return false;
}

void PHash::PutOp(StorageOps* ops, std::uint64_t key, std::uint64_t value) {
  UpsertOp(ops, key, value, nullptr);
}

void PHash::Put(StorageOps* ops, std::uint64_t key, std::uint64_t value) {
  ops->BeginOp();
  PutOp(ops, key, value);
  ops->CommitOp();
}

bool PHash::EraseOp(StorageOps* ops, std::uint64_t key) {
  assert(key != 0 && key != kTombKey);
  std::uint64_t cap = ops->Load(&anchor_->capacity);
  Cell* table = TableOf(ops);
  std::uint64_t pos = Mix(key) & (cap - 1);
  for (;;) {
    std::uint64_t k = ops->Load(&table[pos].key);
    if (k == 0) return false;
    if (k == key) {
      ops->Store(&table[pos].key, kTombKey);
      ops->Store(&anchor_->size, ops->Load(&anchor_->size) - 1);
      return true;
    }
    pos = (pos + 1) & (cap - 1);
  }
}

bool PHash::Erase(StorageOps* ops, std::uint64_t key) {
  ops->BeginOp();
  bool present = EraseOp(ops, key);
  ops->CommitOp();
  return present;
}

bool PHash::GetRelaxed(std::uint64_t key, std::uint64_t* value) const {
  std::uint64_t cap = RelaxedLoad64(&anchor_->capacity);
  // Guard against a torn capacity/table pair mid-Grow: capacities are
  // powers of two ≥ 8, anything else means we raced the publish — report
  // absent and let the caller's seqlock validation reject the attempt.
  if (cap < 8 || (cap & (cap - 1)) != 0) return false;
  // Acquire fence: Grow publishes the table pointer BEFORE the doubled
  // capacity (both release stores), so a capacity observed here forces the
  // table load below to see at least that grow's table — the unsafe
  // pairing (old table, doubled capacity), whose probe could walk past the
  // old table's block, can never be observed. The benign inverse pairing
  // (new table, old capacity) just under-probes and is caught by the
  // caller's seqlock validation.
  std::atomic_thread_fence(std::memory_order_acquire);
  auto* table = reinterpret_cast<Cell*>(RelaxedLoad64(&anchor_->table));
  if (table == nullptr) return false;
  // Second acquire fence: a table pointer observed above was release-
  // published after its cells were initialized off-line; the probes below
  // must see those initializing stores, not pre-scrub garbage.
  std::atomic_thread_fence(std::memory_order_acquire);
  std::uint64_t pos = Mix(key) & (cap - 1);
  for (std::uint64_t probes = 0; probes < cap; ++probes) {
    std::uint64_t k = RelaxedLoad64(&table[pos].key);
    if (k == 0) return false;
    if (k == key) {
      if (value != nullptr) *value = RelaxedLoad64(&table[pos].value);
      return true;
    }
    pos = (pos + 1) & (cap - 1);
  }
  return false;
}

bool PHash::Get(StorageOps* ops, std::uint64_t key,
                std::uint64_t* value) const {
  std::uint64_t cap = ops->Load(&anchor_->capacity);
  Cell* table = TableOf(ops);
  std::uint64_t pos = Mix(key) & (cap - 1);
  for (;;) {
    std::uint64_t k = ops->Load(&table[pos].key);
    if (k == 0) return false;
    if (k == key) {
      if (value != nullptr) *value = ops->Load(&table[pos].value);
      return true;
    }
    pos = (pos + 1) & (cap - 1);
  }
}

}  // namespace rwd
